package veridevops_test

// One benchmark per experiment table of EXPERIMENTS.md, plus micro-
// benchmarks for the kernels each experiment exercises. The experiment
// functions themselves print the tables through cmd/vdo-bench; these
// benchmarks measure their cost and keep them exercised by
// `go test -bench=.`.

import (
	"math/rand"
	"testing"

	"veridevops/internal/automata"
	"veridevops/internal/bench"
	"veridevops/internal/core"
	"veridevops/internal/extract"
	"veridevops/internal/gwt"
	"veridevops/internal/host"
	"veridevops/internal/mc"
	"veridevops/internal/monitor"
	"veridevops/internal/nalabs"
	"veridevops/internal/pipeline"
	"veridevops/internal/stig"
	"veridevops/internal/tctl"
	"veridevops/internal/tears"
	"veridevops/internal/trace"
	"veridevops/internal/vulndb"
)

// BenchmarkE1StigRoundTrip regenerates the E1 table.
func BenchmarkE1StigRoundTrip(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.E1StigRoundTrip(1)
	}
}

// BenchmarkE1CatalogRun measures one audit+enforce sweep of the Ubuntu
// catalogue, the kernel of E1.
func BenchmarkE1CatalogRun(b *testing.B) {
	h := host.NewUbuntu1804()
	cat := stig.UbuntuCatalog(h)
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		host.DriftLinux(h, 3, rng)
		cat.Run(core.CheckAndEnforce)
	}
}

// BenchmarkE2Nalabs regenerates the E2 table.
func BenchmarkE2Nalabs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.E2Nalabs(1)
	}
}

// BenchmarkE2Analyze measures single-requirement analysis, the kernel of
// E2.
func BenchmarkE2Analyze(b *testing.B) {
	an := nalabs.NewAnalyzer()
	req := nalabs.Requirement{ID: "R", Text: "The system shall lock the session after 15 minutes of inactivity and notify the operator."}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		an.Analyze(req)
	}
}

// BenchmarkE3MonitorLatency regenerates the E3 table.
func BenchmarkE3MonitorLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.E3MonitorLatency(1)
	}
}

// BenchmarkE3SchedulerPoll measures one virtual-time protection run, the
// kernel of E3.
func BenchmarkE3SchedulerPoll(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := host.NewUbuntu1804()
		s := monitor.NewScheduler(10)
		s.Watch("V-219157", stig.NewV219157(h))
		s.Run(2000, nil)
	}
}

// BenchmarkE4ModelCheck regenerates the E4 table (the dominant cost is the
// discrete-time ablation on the largest plant).
func BenchmarkE4ModelCheck(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.E4ModelCheck()
	}
}

// BenchmarkE4ZoneReachability measures one zone-based verification, the
// kernel of E4.
func BenchmarkE4ZoneReachability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		plant := automata.CyclicPlant("plant", 16, []string{"a", "b", "c", "d"}, 10)
		net := automata.MustNetwork(plant, automata.ResponseTimedObserver("a", "c", 20))
		if _, _, _, err := mc.NewChecker(net).CheckErrorFree(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE5TestGen regenerates the E5 table.
func BenchmarkE5TestGen(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.E5TestGen(1)
	}
}

// BenchmarkE5AllEdges measures the all-edges generator on a 100-vertex
// model, the kernel of E5.
func BenchmarkE5AllEdges(b *testing.B) {
	m := gwt.RandomModel("m", 100, 100, rand.New(rand.NewSource(1)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gwt.AllEdges(m)
	}
}

// BenchmarkE6Pipeline regenerates the E6 table.
func BenchmarkE6Pipeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.E6Pipeline(1)
	}
}

// BenchmarkE6Simulate measures one 10k-commit simulation, the kernel of
// E6.
func BenchmarkE6Simulate(b *testing.B) {
	cfg := pipeline.DefaultConfig()
	for i := 0; i < b.N; i++ {
		pipeline.Simulate(cfg, 10000, rand.New(rand.NewSource(1)))
	}
}

// BenchmarkE7Tears regenerates the E7 table.
func BenchmarkE7Tears(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.E7Tears(1)
	}
}

// BenchmarkE7Evaluate measures G/A evaluation over a 100k-event log, the
// kernel of E7.
func BenchmarkE7Evaluate(b *testing.B) {
	tr := trace.New()
	trace.GenResponsePairs(tr, "req", "ack", 25000, 20, 1, 15, rand.New(rand.NewSource(1)))
	ga, err := tears.ParseGA("GA g: when req then ack within 10 ms")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tears.Evaluate(tr, ga)
	}
}

// BenchmarkE7bEngineRobustness regenerates the E7b table (fault-injected
// audits through the resilient engine).
func BenchmarkE7bEngineRobustness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.E7bEngineRobustness(1)
	}
}

// BenchmarkRunParallelEngine measures a parallel catalogue audit through
// the engine (the execution path under every RunParallel call), the
// kernel of E7b.
func BenchmarkRunParallelEngine(b *testing.B) {
	h := host.NewUbuntu1804()
	cat := stig.UbuntuCatalog(h)
	cat.Run(core.CheckAndEnforce)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cat.RunParallel(core.CheckOnly, 8)
	}
}

// BenchmarkE8Extract regenerates the E8 table.
func BenchmarkE8Extract(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.E8Extract()
	}
}

// BenchmarkE8Sentence measures single-sentence formalisation, the kernel
// of E8.
func BenchmarkE8Sentence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		extract.Extract("When an intrusion is detected, the monitor shall raise an alarm within 5 seconds.")
	}
}

// BenchmarkE9Liveness regenerates the E9 table (pending-lasso leads-to
// checking).
func BenchmarkE9Liveness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.E9Liveness()
	}
}

// BenchmarkE9LeadsTo measures one unbounded leads-to query, the kernel of
// E9.
func BenchmarkE9LeadsTo(b *testing.B) {
	for i := 0; i < b.N; i++ {
		plant := automata.CyclicPlant("plant", 16, []string{"a", "b", "c", "d"}, 5)
		if _, _, err := mc.CheckLeadsToNetwork(automata.MustNetwork(plant), "a", "c"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE10ComplianceSeries regenerates the E10 series.
func BenchmarkE10ComplianceSeries(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.E10ComplianceSeries(1)
	}
}

// BenchmarkE11VulnScan regenerates the E11 table.
func BenchmarkE11VulnScan(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.E11VulnScan(1)
	}
}

// BenchmarkE11CVSS measures base-score computation, the kernel of E11.
func BenchmarkE11CVSS(b *testing.B) {
	v, err := vulndb.ParseVector("CVSS:3.1/AV:N/AC:L/PR:L/UI:N/S:C/C:H/I:H/A:H")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if v.BaseScore() != 9.9 {
			b.Fatal("wrong score")
		}
	}
}

// BenchmarkE12SecurityLevels regenerates the E12 table.
func BenchmarkE12SecurityLevels(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.E12SecurityLevels(1)
	}
}

// BenchmarkE13FleetAudit regenerates the E13 table (sharded fleet audit
// with incremental caching).
func BenchmarkE13FleetAudit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.E13FleetAudit(1)
	}
}

// BenchmarkCatalogIDs measures repeated sorted-ID listing, the kernel the
// catalogue's sort cache accelerates (before the cache this re-sorted on
// every call).
func BenchmarkCatalogIDs(b *testing.B) {
	h := host.NewUbuntu1804()
	cat := stig.UbuntuCatalog(h)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cat.IDs()
	}
}

// BenchmarkCatalogRunEngineSweep measures repeated check-only engine
// sweeps of an unchanged catalogue — the fleet steady-state hot path that
// the cached sorted order speeds up (All() no longer re-sorts per sweep).
func BenchmarkCatalogRunEngineSweep(b *testing.B) {
	h := host.NewUbuntu1804()
	cat := stig.UbuntuCatalog(h)
	cat.Run(core.CheckAndEnforce)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cat.RunEngine(core.RunOptions{Mode: core.CheckOnly, Workers: 1})
	}
}

// BenchmarkTctlEval measures offline TCTL evaluation over a trace, used
// across E3b and the protection experiments.
func BenchmarkTctlEval(b *testing.B) {
	tr := trace.New()
	trace.GenResponsePairs(tr, "req", "ack", 1000, 20, 1, 15, rand.New(rand.NewSource(1)))
	f := tctl.GlobalResponseTimed("req", "ack", 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tctl.Holds(tr, f)
	}
}
