// Ubuntu hardening: audit a drifted Ubuntu 18.04 host against the full
// STIG catalogue, remediate, and keep it compliant with a reactive-
// protection monitor that heals further drift automatically.
package main

import (
	"fmt"
	"math/rand"

	"veridevops/internal/core"
	"veridevops/internal/host"
	"veridevops/internal/monitor"
	"veridevops/internal/stig"
)

func main() {
	h := host.NewUbuntu1804()
	cat := stig.UbuntuCatalog(h)
	cat.Run(core.CheckAndEnforce) // hardened baseline
	rng := rand.New(rand.NewSource(42))

	// An operator breaks things; the snapshot diff shows exactly what
	// changed before the audit says which requirements that violates.
	baseline := h.Snapshot()
	host.DriftLinux(h, 8, rng)
	fmt.Println("== what changed (snapshot diff) ==")
	fmt.Print(host.RenderDiff(host.Diff(baseline, h.Snapshot())))

	fmt.Println("\n== audit after drift ==")
	fmt.Print(cat.Run(core.CheckOnly))

	fmt.Println("\n== remediation ==")
	fmt.Print(cat.Run(core.CheckAndEnforce))

	// Reactive protection: a scheduler polls the catalogue in virtual
	// time and auto-enforces; we inject two more drift waves mid-run.
	fmt.Println("\n== reactive protection (virtual time) ==")
	s := monitor.NewScheduler(10)
	s.AutoEnforce = true
	s.WatchCatalog(cat)
	s.Run(1000, []monitor.TimedAction{
		{At: 200, Do: func() { host.DriftLinux(h, 3, rng) }},
		{At: 600, Do: func() { host.DriftLinux(h, 3, rng) }},
	})
	fmt.Print(monitor.Report(s.Alarms()))

	fmt.Println("\n== final audit ==")
	rep := cat.Run(core.CheckOnly)
	fmt.Print(rep)
	if rep.Compliance() == 1 {
		fmt.Println("host is compliant")
	}
}
