// Requirements analysis: run a small natural-language specification
// through the WP2 chain — smell detection (NALABS), boilerplate parsing
// (ReSA), pattern formalisation (extract), offline verification of the
// formalised requirements against a recorded trace (tctl), and live
// monitoring of the same patterns in virtual time (temporal).
package main

import (
	"fmt"

	"veridevops/internal/core"
	"veridevops/internal/extract"
	"veridevops/internal/nalabs"
	"veridevops/internal/resa"
	"veridevops/internal/tctl"
	"veridevops/internal/temporal"
	"veridevops/internal/trace"
)

func main() {
	document := `The system may, if needed, encrypt backups in a timely manner.
When a session is idle for 15 minutes, the terminal shall lock within 1000 ms.
While maintenance mode is active, the controller shall reject remote commands.`

	fmt.Println("== smell analysis (NALABS) ==")
	an := nalabs.NewAnalyzer()
	sentences := extract.SplitSentences(document)
	for i, s := range sentences {
		a := an.Analyze(nalabs.Requirement{ID: fmt.Sprintf("R%d", i+1), Text: s})
		fmt.Printf("R%d smelly=%v %v\n", i+1, a.Smelly(), a.Smells)
	}

	fmt.Println("\n== boilerplate parsing (ReSA) ==")
	for _, s := range sentences {
		r, err := resa.Parse(s)
		if err != nil {
			fmt.Printf("rejected: %v\n", err)
			continue
		}
		fmt.Printf("%-18s system=%q response=%q deadline=%d\n",
			r.Kind, r.System, r.Response, r.Deadline)
	}

	fmt.Println("\n== formalisation (extract) ==")
	var lockFormula tctl.Formula
	for _, ex := range extract.ExtractAll(sentences) {
		fmt.Printf("[%-11s] %s\n", ex.Confidence, ex.Formula)
		if ex.Rule == "" && ex.Pattern.Behaviour == tctl.Response {
			lockFormula = ex.Formula
		}
	}

	// A recorded trace: the session goes idle at t=100, the terminal
	// locks at t=800 — within the 1000ms budget.
	tr := trace.New()
	trace.GenPulse(tr, "a_session_is_idle_for_15_minutes", 100, 10)
	trace.GenPulse(tr, "lock", 800, 10)
	tr.SetEnd(5000)

	fmt.Println("\n== offline verification against the trace ==")
	if lockFormula != nil {
		v := tctl.Eval(tr, lockFormula)
		fmt.Printf("%s  =>  holds=%v\n", lockFormula, v.Holds)
	}

	fmt.Println("\n== live monitoring in virtual time ==")
	clk := temporal.NewSimClock()
	opt := temporal.Options{Clock: clk, Period: 50, Boundary: 100}
	mon := temporal.NewGlobalResponseTimed(
		temporal.TraceProbe(tr, "a_session_is_idle_for_15_minutes", clk),
		temporal.TraceProbe(tr, "lock", clk),
		1000, opt)
	fmt.Printf("%s\nTCTL: %s\nverdict: %v\n", mon, mon.TCTL(), mon.Check())
	_ = core.CheckPass
}
