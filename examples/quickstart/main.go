// Quickstart: define a security requirement as code, check it, enforce it,
// and re-check — the complete RQCODE loop in thirty lines.
package main

import (
	"fmt"

	"veridevops/internal/core"
	"veridevops/internal/host"
	"veridevops/internal/stig"
)

func main() {
	// A simulated Ubuntu 18.04 host that has drifted: someone installed
	// the legacy NIS package.
	h := host.NewUbuntu1804()
	h.Install("nis", "3.17")

	// The STIG finding V-219157 as a first-class value.
	req := stig.NewV219157(h)
	fmt.Println(req.FindingID(), "-", req.Severity())
	fmt.Println(req.Description())

	fmt.Println("check:  ", req.Check()) // FAIL: nis is installed

	// Requirements are enforceable: fix the host programmatically.
	fmt.Println("enforce:", req.Enforce())
	fmt.Println("recheck:", req.Check()) // PASS

	// The same loop over a whole catalogue.
	cat := stig.UbuntuCatalog(h)
	rep := cat.Run(core.CheckAndEnforce)
	fmt.Println()
	fmt.Print(rep)
}
