// DevSecOps pipeline: the end-to-end VeriDevOps story. Natural-language
// requirements are analyzed (NALABS), formalised to patterns (extract),
// verified against a design model (observer automata + model checking),
// turned into tests (GWT generation), and finally monitored at operations
// with the same formalised requirements — prevention and protection from
// one source of truth.
package main

import (
	"fmt"
	"math/rand"

	"veridevops/internal/automata"
	"veridevops/internal/extract"
	"veridevops/internal/gwt"
	"veridevops/internal/mc"
	"veridevops/internal/nalabs"
	"veridevops/internal/pipeline"
	"veridevops/internal/tears"
	"veridevops/internal/trace"
)

func main() {
	spec := []string{
		"When an intrusion is detected, the monitor shall raise an alarm within 40 ms.",
		"The server shall not store plaintext passwords.",
		"Privileged access requires prior multifactor authentication.",
	}

	// 1. Requirements quality (NALABS).
	fmt.Println("== 1. smell analysis ==")
	an := nalabs.NewAnalyzer()
	for i, s := range spec {
		a := an.Analyze(nalabs.Requirement{ID: fmt.Sprintf("R%d", i+1), Text: s})
		fmt.Printf("%s smelly=%v %v\n", a.ID, a.Smelly(), a.Smells)
	}

	// 2. Formalisation (extract -> TCTL).
	fmt.Println("\n== 2. formalisation ==")
	exs := extract.ExtractAll(spec)
	for _, ex := range exs {
		fmt.Printf("[%s] %s\n", ex.Confidence, ex.Formula)
	}

	// 3. Prevention: verify the response requirement against the design
	// model (a plant emitting intrusion then alarm every 10 time units).
	fmt.Println("\n== 3. model checking (prevention) ==")
	plant := automata.CyclicPlant("ids", 4,
		[]string{"intrusion_detected", "scan", "alarm_raised", "idle"}, 10)
	obs := automata.ResponseTimedObserver("intrusion_detected", "alarm_raised", 40)
	holds, witness, stats, err := mc.NewChecker(automata.MustNetwork(plant, obs)).CheckErrorFree()
	if err != nil {
		panic(err)
	}
	fmt.Printf("A[] !err = %v (states=%d)\n", holds, stats.StatesExplored)
	if !holds {
		fmt.Println("counterexample:", witness)
	}

	// 4. Prevention: generate security tests from a behaviour model.
	fmt.Println("\n== 4. test generation ==")
	model := gwt.RandomModel("ids-behaviour", 6, 4, rand.New(rand.NewSource(1)))
	tcs := gwt.AllEdges(model)
	fmt.Printf("%d test cases, %d steps, edge coverage %.0f%%\n",
		len(tcs), gwt.TotalSteps(tcs), 100*gwt.EdgeCoverage(model, tcs))

	// 5. Protection: evaluate the same requirement as a guarded assertion
	// over an operations log.
	fmt.Println("\n== 5. runtime log evaluation (protection) ==")
	tr := trace.New()
	trace.GenResponsePairs(tr, "intrusion_detected", "alarm_raised", 50, 100, 5, 35,
		rand.New(rand.NewSource(2)))
	ga, err := tears.ParseGA("GA ids: when intrusion_detected then alarm_raised within 40 ms")
	if err != nil {
		panic(err)
	}
	fmt.Print(tears.Overview(tears.EvaluateAll(tr, []tears.GA{ga})))

	// 6. The quantified claim: prevention + protection beat either alone.
	fmt.Println("\n== 6. pipeline simulation ==")
	for _, mode := range []struct{ prev, prot bool }{{true, true}, {true, false}, {false, true}} {
		cfg := pipeline.DefaultConfig()
		cfg.Prevention, cfg.Protection = mode.prev, mode.prot
		fmt.Println(pipeline.Simulate(cfg, 5000, rand.New(rand.NewSource(3))))
	}
}
