// Security levels: the standards-facing loop. An advisory feed is matched
// against a drifted host (vulndb), patch requirements remediate it, the
// STIG catalogue is enforced, and the combined compliance report rolls up
// into IEC 62443 achieved-security-level verdicts per foundational
// requirement class.
package main

import (
	"fmt"
	"math/rand"

	"veridevops/internal/core"
	"veridevops/internal/host"
	"veridevops/internal/iec62443"
	"veridevops/internal/stig"
	"veridevops/internal/vulndb"
)

func main() {
	h := host.NewUbuntu1804()
	w := host.NewWindows10()
	lin := stig.UbuntuCatalog(h)
	win := stig.Win10Catalog(w)
	lin.Run(core.CheckAndEnforce)
	win.Run(core.CheckAndEnforce)

	// Operations drift + a vulnerable package appears.
	rng := rand.New(rand.NewSource(7))
	host.DriftLinux(h, 8, rng)
	host.DriftWindows(w, 5, rng)
	h.Install("openssl", "1.0.2")

	// 1. Vulnerability scan.
	db, err := vulndb.NewDB([]vulndb.Advisory{
		{ID: "CVE-2026-1111", Package: "openssl", FixedIn: "1.1.1",
			Vector:  "CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H",
			Summary: "Remote code execution in the TLS handshake."},
		{ID: "CVE-2026-2222", Package: "nis", // matches only if drift installed it
			Vector:  "CVSS:3.1/AV:A/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H",
			Summary: "Legacy NIS protocol weakness; no fix, remove the package."},
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("== 1. vulnerability scan ==")
	for _, m := range db.Scan(h) {
		fmt.Printf("%s %s %s installed=%s score=%.1f (%s)\n",
			m.Advisory.ID, m.Severity, m.Advisory.Package, m.Installed, m.Score, m.Advisory.Summary)
	}

	// 2. Patch requirements remediate the scan.
	fmt.Println("\n== 2. patch enforcement ==")
	fmt.Print(vulndb.Catalog(db, h).Run(core.CheckAndEnforce))
	fmt.Printf("post-patch matches: %d\n", len(db.Scan(h)))

	// 3. The drifted STIG posture, assessed against IEC 62443.
	combined := func() core.Report {
		a := lin.Run(core.CheckOnly)
		b := win.Run(core.CheckOnly)
		return core.Report{Results: append(a.Results, b.Results...)}
	}
	fmt.Println("\n== 3. IEC 62443 assessment (drifted) ==")
	assessment, err := iec62443.Assess(combined(), iec62443.BuiltinTags(), iec62443.TypicalTarget())
	if err != nil {
		panic(err)
	}
	fmt.Print(assessment)

	// 4. Enforce the catalogues and re-assess.
	lin.Run(core.CheckAndEnforce)
	win.Run(core.CheckAndEnforce)
	fmt.Println("\n== 4. IEC 62443 assessment (enforced) ==")
	assessment, err = iec62443.Assess(combined(), iec62443.BuiltinTags(), iec62443.TypicalTarget())
	if err != nil {
		panic(err)
	}
	fmt.Print(assessment)
}
