// Windows 10 audit policy: walk the Windows 10 STIG pattern hierarchy
// (AuditPolicyRequirement and its subcategory refinements), check a fresh
// host through the auditpol text interface, and enforce the guide.
package main

import (
	"fmt"

	"veridevops/internal/core"
	"veridevops/internal/host"
	"veridevops/internal/stig"
)

func main() {
	w := host.NewWindows10()
	guide := stig.Windows10SecurityTechnicalImplementationGuide{Host: w}

	// Inspect the pattern hierarchy: every finding knows its category,
	// subcategory and required inclusion setting.
	fmt.Println("== Windows 10 STIG findings ==")
	for _, r := range guide.AllSTIGs() {
		ap := r.(*stig.AuditPolicyRequirement)
		fmt.Printf("%s  %-20s >> %-26s requires %q\n",
			ap.FindingID(), ap.GetCategory(), ap.GetSubcategory(), ap.GetInclusionSetting())
	}

	// The raw auditpol interface the patterns drive underneath.
	ap := host.AuditPol{W: w}
	out, err := ap.Run("/get", `/subcategory:"Sensitive Privilege Use"`)
	if err != nil {
		panic(err)
	}
	fmt.Println("\n== auditpol /get before enforcement ==")
	fmt.Print(out)

	fmt.Println("\n== audit -> enforce -> re-audit ==")
	fmt.Print(guide.Catalog().Run(core.CheckAndEnforce))

	out, _ = ap.Run("/get", `/subcategory:"Sensitive Privilege Use"`)
	fmt.Println("\n== auditpol /get after enforcement ==")
	fmt.Print(out)
}
