// Package veridevops is a self-contained Go reproduction of the VeriDevOps
// framework ("VeriDevOps: Automated Protection and Prevention to Meet
// Security Requirements in DevOps", DATE 2021) and its D2.7 patterns
// catalogue.
//
// The implementation lives under internal/ (see DESIGN.md for the full
// inventory):
//
//   - core:      RQCODE concepts (Checkable / Enforceable requirements)
//   - engine:    fault-tolerant execution (panic recovery, retry/backoff,
//     worker pools, deterministic fault injection) behind every audit
//     and monitor poll
//   - temporal:  the temporal pattern monitors (MonitoringLoop family)
//   - tctl:      TCTL formulas, parser, trace evaluation, SPS patterns
//   - automata:  timed automata + PSP observer templates
//   - mc:        zone-based (DBM) and discrete-time model checkers
//   - host:      simulated Ubuntu / Windows 10 hosts
//   - stig:      the Ubuntu 18.04 and Windows 10 STIG catalogues
//   - nalabs:    requirements bad-smell metrics
//   - resa:      boilerplate requirements language
//   - extract:   rule-based NL-to-pattern formalisation
//   - gwt:       Given-When-Then models + test generation + concretisation
//   - tears:     guarded assertions over signal logs
//   - monitor:   reactive-protection scheduler
//   - pipeline:  DevSecOps pipeline simulator
//   - vulndb:    CVSS v3.1 scoring + advisory matching + patch requirements
//   - iec62443:  security-level assessment over catalogue reports
//   - catalogue: patterns-catalogue document generator
//   - bench:     the E1-E12 experiment suite (EXPERIMENTS.md)
//
// Executables live under cmd/ and runnable examples under examples/.
package veridevops
