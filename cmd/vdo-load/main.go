// Command vdo-load is the mega-fleet load harness: it synthesizes a
// parameterized fleet (10k–1M hosts) from a topology spec, replays a
// seeded churn stream — package upgrades/downgrades, compliance drift,
// service flapping, config edits, hosts joining/leaving/unreachable —
// through a token-bucket rate limiter while incremental sweeps run on
// the fleet coordinator, and reports change→verdict detection latency
// percentiles plus replay throughput. Time is virtual: a fixed seed
// reproduces the event stream and the latency distribution exactly.
//
// Usage:
//
//	vdo-load [-hosts N] [-topology PATH] [-rate EV_PER_SEC] [-burst N]
//	         [-duration D] [-sweep-every D] [-shards N] [-workers N]
//	         [-seed N] [-metrics]
//	vdo-load -bench [-hosts N] [-o BENCH_load.json] [-seed N] [-commit HASH]
//
// Exit status: 0 replay completed, 2 usage or I/O error.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"veridevops/internal/loadgen"
	"veridevops/internal/report"
	"veridevops/internal/telemetry"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("vdo-load", flag.ContinueOnError)
	fs.SetOutput(stderr)
	hosts := fs.Int("hosts", 10_000, "synthesized fleet size")
	topoPath := fs.String("topology", "", "topology spec JSON (default: built-in three-tier spec)")
	rate := fs.Float64("rate", 1000, "offered churn load, events per virtual second")
	burst := fs.Int("burst", 16, "token-bucket burst capacity")
	duration := fs.Duration("duration", 10*time.Second, "virtual replay duration")
	sweepEvery := fs.Duration("sweep-every", 500*time.Millisecond, "virtual interval between incremental sweeps")
	shards := fs.Int("shards", 8, "shard goroutines per sweep (host-level parallelism)")
	workers := fs.Int("workers", 2, "engine workers per catalogue run inside a shard")
	seed := fs.Int64("seed", 1, "seed for synthesis and churn")
	showMetrics := fs.Bool("metrics", false, "print the telemetry metrics registry after the replay")
	benchMode := fs.Bool("bench", false, "run the rate matrix and write the BENCH_load.json perf record")
	out := fs.String("o", "BENCH_load.json", "output file for -bench JSON")
	commit := fs.String("commit", "", "commit hash recorded in -bench provenance (default: build info)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *hosts < 1 || *rate <= 0 || *duration <= 0 || *sweepEvery <= 0 {
		fmt.Fprintln(stderr, "vdo-load: -hosts must be >= 1 and -rate/-duration/-sweep-every positive")
		return 2
	}

	top := loadgen.DefaultTopology()
	if *topoPath != "" {
		f, err := os.Open(*topoPath)
		if err != nil {
			fmt.Fprintf(stderr, "vdo-load: %v\n", err)
			return 2
		}
		top, err = loadgen.ParseTopology(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(stderr, "vdo-load: %v\n", err)
			return 2
		}
	}

	if *benchMode {
		return runBench(stdout, stderr, top, *hosts, *shards, *workers, *seed, *out, *commit)
	}

	var mets *telemetry.Metrics
	if *showMetrics {
		mets = telemetry.NewMetrics()
	}
	fmt.Fprintf(stdout, "synthesizing %d hosts (seed %d)...\n", *hosts, *seed)
	st, err := replay(top, *hosts, *seed, loadgen.DriverOptions{
		Duration:   *duration,
		SweepEvery: *sweepEvery,
		Rate:       *rate,
		Burst:      *burst,
		Shards:     *shards,
		Workers:    *workers,
		Metrics:    mets,
	})
	if err != nil {
		fmt.Fprintf(stderr, "vdo-load: %v\n", err)
		return 2
	}

	t := report.New(fmt.Sprintf("load replay: %d hosts, %v virtual at %.0f ev/s (seed %d)",
		st.Hosts, st.VirtualDuration, st.OfferedRate, *seed),
		"measure", "value")
	t.AddRow("events applied / skipped", fmt.Sprintf("%d / %d", st.Events, st.Skipped))
	t.AddRow("drift events", st.Drift)
	t.AddRow("joins / leaves", fmt.Sprintf("%d / %d", st.Joins, st.Leaves))
	t.AddRow("outages / restores", fmt.Sprintf("%d / %d", st.Outages, st.Restores))
	t.AddRow("detected / orphaned / pending", fmt.Sprintf("%d / %d / %d", st.Detected, st.Orphaned, st.Pending))
	t.AddRow("sweeps", st.Sweeps)
	t.AddRow("host audits executed / cached", fmt.Sprintf("%d / %d", st.HostsReaudited, st.CacheReplays))
	t.AddRow("detect p50 / p95 / p99 ms", fmt.Sprintf("%s / %s / %s",
		report.Millis(st.Detect.P50), report.Millis(st.Detect.P95), report.Millis(st.Detect.P99)))
	t.AddRow("detect max ms", report.Millis(st.Detect.Max))
	t.AddRow("achieved virtual ev/s", fmt.Sprintf("%.1f", st.AchievedRate))
	t.AddRow("replay wall ms", report.Millis(st.ReplayWall))
	t.AddRow("real ev/s", fmt.Sprintf("%.0f", st.RealEventsPerSec))
	t.WriteText(stdout)

	if mets != nil {
		fmt.Fprintln(stdout)
		mets.Table("metrics").WriteText(stdout)
	}
	return 0
}

// replay synthesizes a fresh fleet and churn engine and runs one load
// replay; synthesis and churn draw adjacent seeds so one -seed pins the
// whole experiment.
func replay(top loadgen.Topology, hosts int, seed int64, opts loadgen.DriverOptions) (loadgen.LoadStats, error) {
	f, err := loadgen.Synthesize(top, hosts, seed)
	if err != nil {
		return loadgen.LoadStats{}, err
	}
	c := loadgen.NewChurn(f, top.Mix, seed+1)
	return loadgen.Run(f, c, opts)
}

// runBench produces the BENCH_load.json perf record: the same fleet
// size replayed at increasing churn rates, each row reporting applied
// events, detection-latency percentiles on the virtual clock (seeded,
// reproducible) and real replay throughput (machine-dependent, hence
// the provenance meta).
func runBench(stdout, stderr io.Writer, top loadgen.Topology, hosts, shards, workers int, seed int64, out, commit string) int {
	const (
		benchDuration = 10 * time.Second
		benchSweep    = 500 * time.Millisecond
	)
	t := report.New(fmt.Sprintf(
		"mega-fleet load harness: %d hosts, %v virtual replay, sweep every %v (seed %d)",
		hosts, benchDuration, benchSweep, seed),
		"scenario", "hosts", "rate-ev-s", "events", "drift", "detected",
		"detect-p50-ms", "detect-p95-ms", "detect-p99-ms", "detect-max-ms",
		"sweeps", "hosts-reaudited", "cache-replays", "replay-wall-ms", "real-ev-s")
	t.Meta = report.Provenance(commit)

	for _, rate := range []float64{500, 2000, 8000} {
		st, err := replay(top, hosts, seed, loadgen.DriverOptions{
			Duration:   benchDuration,
			SweepEvery: benchSweep,
			Rate:       rate,
			Burst:      16,
			Shards:     shards,
			Workers:    workers,
		})
		if err != nil {
			fmt.Fprintf(stderr, "vdo-load: %v\n", err)
			return 2
		}
		t.AddRow(fmt.Sprintf("churn replay @ %.0f ev/s", rate), st.Hosts, rate,
			st.Events, st.Drift, st.Detected,
			report.Millis(st.Detect.P50), report.Millis(st.Detect.P95),
			report.Millis(st.Detect.P99), report.Millis(st.Detect.Max),
			st.Sweeps, st.HostsReaudited, st.CacheReplays,
			report.Millis(st.ReplayWall), st.RealEventsPerSec)
	}

	t.Note = fmt.Sprintf(
		"detection latency is virtual (change admitted -> next sweep's verdict; bound by the %v sweep interval) and deterministic in the seed; replay-wall and real-ev-s are machine-dependent",
		benchSweep)
	t.WriteText(stdout)
	f, err := os.Create(out)
	if err != nil {
		fmt.Fprintf(stderr, "vdo-load: %v\n", err)
		return 2
	}
	defer f.Close()
	if err := t.WriteJSON(f); err != nil {
		fmt.Fprintf(stderr, "vdo-load: %v\n", err)
		return 2
	}
	fmt.Fprintf(stdout, "wrote %s\n", out)
	return 0
}
