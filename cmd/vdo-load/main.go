// Command vdo-load is the mega-fleet load harness: it synthesizes a
// parameterized fleet (10k–1M hosts) from a topology spec, replays a
// seeded churn stream — package upgrades/downgrades, compliance drift,
// service flapping, config edits, hosts joining/leaving/unreachable —
// through a token-bucket rate limiter while incremental sweeps run on
// the fleet coordinator, and reports change→verdict detection latency
// percentiles plus replay throughput. Time is virtual: a fixed seed
// reproduces the event stream and the latency distribution exactly.
//
// With -push the replay feeds a fleet.Streamer instead of batch sweeps:
// every churn event marks its host dirty through the event-log
// subscription and a flush every -window re-evaluates only the checks
// the dependency index maps to the dirty keys, with a fallback sweep
// still running every -sweep-every. The same seed admits the identical
// event stream in both modes, so sweep vs push is directly comparable.
//
// Usage:
//
//	vdo-load [-hosts N] [-topology PATH] [-rate EV_PER_SEC] [-burst N]
//	         [-duration D] [-sweep-every D] [-shards N] [-workers N]
//	         [-seed N] [-metrics] [-push] [-window D] [-assert-p99 D]
//	         [-slowest N]
//	vdo-load -bench [-hosts N] [-o BENCH_load.json] [-seed N] [-commit HASH]
//	vdo-load -bench-serve [-hosts N] [-o BENCH_serve.json] [-seed N] [-commit HASH]
//
// Exit status: 0 replay completed, 1 -assert-p99 violated, 2 usage or
// I/O error.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"veridevops/internal/loadgen"
	"veridevops/internal/report"
	"veridevops/internal/telemetry"
	"veridevops/internal/telemetry/store"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("vdo-load", flag.ContinueOnError)
	fs.SetOutput(stderr)
	hosts := fs.Int("hosts", 10_000, "synthesized fleet size")
	topoPath := fs.String("topology", "", "topology spec JSON (default: built-in three-tier spec)")
	rate := fs.Float64("rate", 1000, "offered churn load, events per virtual second")
	burst := fs.Int("burst", 16, "token-bucket burst capacity")
	duration := fs.Duration("duration", 10*time.Second, "virtual replay duration")
	sweepEvery := fs.Duration("sweep-every", 500*time.Millisecond, "virtual interval between incremental sweeps")
	shards := fs.Int("shards", 8, "shard goroutines per sweep (host-level parallelism)")
	workers := fs.Int("workers", 2, "engine workers per catalogue run inside a shard")
	seed := fs.Int64("seed", 1, "seed for synthesis and churn")
	showMetrics := fs.Bool("metrics", false, "print the telemetry metrics registry after the replay")
	push := fs.Bool("push", false, "stream deltas through the dependency index instead of batch sweeps")
	window := fs.Duration("window", 50*time.Millisecond, "virtual dirty-key coalescing window between -push flushes")
	slowest := fs.Int("slowest", 0, "keep spans in the trace store and print the N slowest host audits (push: deltas) after the replay")
	assertP99 := fs.Duration("assert-p99", 0, "exit 1 unless detection p99 is strictly below this bound (0 disables)")
	benchMode := fs.Bool("bench", false, "run the rate matrix and write the BENCH_load.json perf record")
	benchServe := fs.Bool("bench-serve", false, "run the sweep-vs-push matrix and write the BENCH_serve.json perf record")
	out := fs.String("o", "", "output file for -bench/-bench-serve JSON (default BENCH_load.json / BENCH_serve.json)")
	commit := fs.String("commit", "", "commit hash recorded in -bench provenance (default: build info)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *hosts < 1 || *rate <= 0 || *duration <= 0 || *sweepEvery <= 0 {
		fmt.Fprintln(stderr, "vdo-load: -hosts must be >= 1 and -rate/-duration/-sweep-every positive")
		return 2
	}
	if *push && *window <= 0 {
		fmt.Fprintln(stderr, "vdo-load: -window must be positive in -push mode")
		return 2
	}
	if *benchMode && *benchServe {
		fmt.Fprintln(stderr, "vdo-load: -bench and -bench-serve are mutually exclusive")
		return 2
	}

	top := loadgen.DefaultTopology()
	if *topoPath != "" {
		f, err := os.Open(*topoPath)
		if err != nil {
			fmt.Fprintf(stderr, "vdo-load: %v\n", err)
			return 2
		}
		top, err = loadgen.ParseTopology(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(stderr, "vdo-load: %v\n", err)
			return 2
		}
	}

	if *benchMode {
		if *out == "" {
			*out = "BENCH_load.json"
		}
		return runBench(stdout, stderr, top, *hosts, *shards, *workers, *seed, *out, *commit)
	}
	if *benchServe {
		if *out == "" {
			*out = "BENCH_serve.json"
		}
		return runBenchServe(stdout, stderr, top, *hosts, *shards, *workers, *seed, *out, *commit)
	}

	var mets *telemetry.Metrics
	if *showMetrics {
		mets = telemetry.NewMetrics()
	}
	var spanStore *store.Store
	var tracer *telemetry.Tracer
	if *slowest > 0 {
		spanStore = store.New(store.Config{})
		tracer = telemetry.New(nil, telemetry.WithSink(spanStore))
	}
	fmt.Fprintf(stdout, "synthesizing %d hosts (seed %d)...\n", *hosts, *seed)
	st, err := replay(top, *hosts, *seed, loadgen.DriverOptions{
		Duration:   *duration,
		SweepEvery: *sweepEvery,
		Push:       *push,
		Window:     *window,
		Rate:       *rate,
		Burst:      *burst,
		Shards:     *shards,
		Workers:    *workers,
		Metrics:    mets,
		Trace:      tracer,
	})
	if err != nil {
		fmt.Fprintf(stderr, "vdo-load: %v\n", err)
		return 2
	}

	t := report.New(fmt.Sprintf("load replay (%s): %d hosts, %v virtual at %.0f ev/s (seed %d)",
		st.Mode, st.Hosts, st.VirtualDuration, st.OfferedRate, *seed),
		"measure", "value")
	t.AddRow("events applied / skipped", fmt.Sprintf("%d / %d", st.Events, st.Skipped))
	t.AddRow("drift events", st.Drift)
	t.AddRow("joins / leaves", fmt.Sprintf("%d / %d", st.Joins, st.Leaves))
	t.AddRow("outages / restores", fmt.Sprintf("%d / %d", st.Outages, st.Restores))
	t.AddRow("detected / orphaned / pending", fmt.Sprintf("%d / %d / %d", st.Detected, st.Orphaned, st.Pending))
	if st.Mode == "push" {
		t.AddRow("flush window", st.Window.String())
		t.AddRow("flushes / delta hosts", fmt.Sprintf("%d / %d", st.Flushes, st.DeltaHosts))
		t.AddRow("checks evaluated / executed", fmt.Sprintf("%d / %d", st.ChecksEvaluated, st.ChecksExecuted))
		t.AddRow("checks per event", fmt.Sprintf("%.2f", st.ChecksPerEvent))
		t.AddRow("alarms / repairs", fmt.Sprintf("%d / %d", st.Alarms, st.Repairs))
	}
	t.AddRow("sweeps", st.Sweeps)
	t.AddRow("host audits executed / cached", fmt.Sprintf("%d / %d", st.HostsReaudited, st.CacheReplays))
	t.AddRow("detect p50 / p95 / p99 ms", fmt.Sprintf("%s / %s / %s",
		report.Millis(st.Detect.P50), report.Millis(st.Detect.P95), report.Millis(st.Detect.P99)))
	t.AddRow("detect max ms", report.Millis(st.Detect.Max))
	t.AddRow("achieved virtual ev/s", fmt.Sprintf("%.1f", st.AchievedRate))
	t.AddRow("replay wall ms", report.Millis(st.ReplayWall))
	t.AddRow("real ev/s", fmt.Sprintf("%.0f", st.RealEventsPerSec))
	t.WriteText(stdout)

	if mets != nil {
		fmt.Fprintln(stdout)
		mets.Table("metrics").WriteText(stdout)
	}
	if spanStore != nil {
		tracer.Flush()
		spanStore.Flush()
		name := "host"
		if *push {
			name = "delta" // push-mode flushes root a trace per delta, not per host audit
		}
		res, err := spanStore.Query(fmt.Sprintf("name=%s | slowest %d", name, *slowest))
		if err != nil {
			fmt.Fprintf(stderr, "vdo-load: %v\n", err)
			return 2
		}
		fmt.Fprintln(stdout)
		res.WriteText(stdout)
	}
	if *assertP99 > 0 && st.Detect.P99 >= *assertP99 {
		fmt.Fprintf(stderr, "vdo-load: detection p99 %v not below asserted bound %v\n", st.Detect.P99, *assertP99)
		return 1
	}
	return 0
}

// replay synthesizes a fresh fleet and churn engine and runs one load
// replay; synthesis and churn draw adjacent seeds so one -seed pins the
// whole experiment.
func replay(top loadgen.Topology, hosts int, seed int64, opts loadgen.DriverOptions) (loadgen.LoadStats, error) {
	f, err := loadgen.Synthesize(top, hosts, seed)
	if err != nil {
		return loadgen.LoadStats{}, err
	}
	c := loadgen.NewChurn(f, top.Mix, seed+1)
	return loadgen.Run(f, c, opts)
}

// runBench produces the BENCH_load.json perf record: the same fleet
// size replayed at increasing churn rates, each row reporting applied
// events, detection-latency percentiles on the virtual clock (seeded,
// reproducible) and real replay throughput (machine-dependent, hence
// the provenance meta).
func runBench(stdout, stderr io.Writer, top loadgen.Topology, hosts, shards, workers int, seed int64, out, commit string) int {
	const (
		benchDuration = 10 * time.Second
		benchSweep    = 500 * time.Millisecond
	)
	t := report.New(fmt.Sprintf(
		"mega-fleet load harness: %d hosts, %v virtual replay, sweep every %v (seed %d)",
		hosts, benchDuration, benchSweep, seed),
		"scenario", "hosts", "rate-ev-s", "events", "drift", "detected",
		"detect-p50-ms", "detect-p95-ms", "detect-p99-ms", "detect-max-ms",
		"sweeps", "hosts-reaudited", "cache-replays", "replay-wall-ms", "real-ev-s")
	t.Meta = report.Provenance(commit)

	for _, rate := range []float64{500, 2000, 8000} {
		st, err := replay(top, hosts, seed, loadgen.DriverOptions{
			Duration:   benchDuration,
			SweepEvery: benchSweep,
			Rate:       rate,
			Burst:      16,
			Shards:     shards,
			Workers:    workers,
		})
		if err != nil {
			fmt.Fprintf(stderr, "vdo-load: %v\n", err)
			return 2
		}
		t.AddRow(fmt.Sprintf("churn replay @ %.0f ev/s", rate), st.Hosts, rate,
			st.Events, st.Drift, st.Detected,
			report.Millis(st.Detect.P50), report.Millis(st.Detect.P95),
			report.Millis(st.Detect.P99), report.Millis(st.Detect.Max),
			st.Sweeps, st.HostsReaudited, st.CacheReplays,
			report.Millis(st.ReplayWall), st.RealEventsPerSec)
	}

	t.Note = fmt.Sprintf(
		"detection latency is virtual (change admitted -> next sweep's verdict; bound by the %v sweep interval) and deterministic in the seed; replay-wall and real-ev-s are machine-dependent",
		benchSweep)
	t.WriteText(stdout)
	return writeBenchJSON(stdout, stderr, t, out)
}

// runBenchServe produces the BENCH_serve.json perf record: sweep vs
// push on the identical seeded event stream at each churn rate, so the
// p99 ratio isolates the evaluation strategy. Push rows also record how
// many checks each event cost through the dependency index.
func runBenchServe(stdout, stderr io.Writer, top loadgen.Topology, hosts, shards, workers int, seed int64, out, commit string) int {
	const (
		benchDuration = 10 * time.Second
		benchSweep    = 500 * time.Millisecond
		benchWindow   = 25 * time.Millisecond
	)
	t := report.New(fmt.Sprintf(
		"streaming evaluator: sweep (every %v) vs push (window %v, fallback %v), %d hosts, %v virtual (seed %d)",
		benchSweep, benchWindow, benchSweep, hosts, benchDuration, seed),
		"scenario", "mode", "rate-ev-s", "events", "detected",
		"detect-p50-ms", "detect-p95-ms", "detect-p99-ms", "detect-max-ms",
		"flushes", "checks-evaluated", "checks-executed", "checks-per-event",
		"hosts-reaudited", "cache-replays", "replay-wall-ms", "real-ev-s")
	t.Meta = report.Provenance(commit)

	var ratios []string
	for _, rate := range []float64{500, 2000} {
		var p99 [2]time.Duration
		for i, push := range []bool{false, true} {
			opts := loadgen.DriverOptions{
				Duration:   benchDuration,
				SweepEvery: benchSweep,
				Push:       push,
				Window:     benchWindow,
				Rate:       rate,
				Burst:      16,
				Shards:     shards,
				Workers:    workers,
			}
			st, err := replay(top, hosts, seed, opts)
			if err != nil {
				fmt.Fprintf(stderr, "vdo-load: %v\n", err)
				return 2
			}
			p99[i] = st.Detect.P99
			t.AddRow(fmt.Sprintf("churn replay @ %.0f ev/s", rate), st.Mode, rate,
				st.Events, st.Detected,
				report.Millis(st.Detect.P50), report.Millis(st.Detect.P95),
				report.Millis(st.Detect.P99), report.Millis(st.Detect.Max),
				st.Flushes, st.ChecksEvaluated, st.ChecksExecuted,
				fmt.Sprintf("%.2f", st.ChecksPerEvent),
				st.HostsReaudited, st.CacheReplays,
				report.Millis(st.ReplayWall), st.RealEventsPerSec)
		}
		if p99[1] > 0 {
			ratios = append(ratios, fmt.Sprintf("%.1fx @ %.0f ev/s",
				float64(p99[0])/float64(p99[1]), rate))
		}
	}

	t.Note = fmt.Sprintf(
		"both modes admit the identical seeded event stream; push p99 reduction vs sweep: %s; checks-per-event counts dependency-index subset evaluations against the full catalogue a sweep would run",
		strings.Join(ratios, ", "))
	t.WriteText(stdout)
	return writeBenchJSON(stdout, stderr, t, out)
}

func writeBenchJSON(stdout, stderr io.Writer, t *report.Table, out string) int {
	f, err := os.Create(out)
	if err != nil {
		fmt.Fprintf(stderr, "vdo-load: %v\n", err)
		return 2
	}
	defer f.Close()
	if err := t.WriteJSON(f); err != nil {
		fmt.Fprintf(stderr, "vdo-load: %v\n", err)
		return 2
	}
	fmt.Fprintf(stdout, "wrote %s\n", out)
	return 0
}
