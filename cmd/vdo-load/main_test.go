package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"veridevops/internal/report"
)

func runCapture(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errb bytes.Buffer
	code := run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestSmallReplay(t *testing.T) {
	code, out, errb := runCapture(t,
		"-hosts", "200", "-duration", "2s", "-sweep-every", "250ms",
		"-rate", "100", "-shards", "4", "-workers", "1", "-seed", "1")
	if code != 0 {
		t.Fatalf("exit = %d\nstdout:\n%s\nstderr:\n%s", code, out, errb)
	}
	for _, want := range []string{
		"synthesizing 200 hosts",
		"load replay (sweep):",
		"detect p50 / p95 / p99 ms",
		"sweeps",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestReplayDeterministicAcrossRuns(t *testing.T) {
	args := []string{"-hosts", "150", "-duration", "2s", "-sweep-every", "200ms",
		"-rate", "80", "-shards", "4", "-workers", "1", "-seed", "9"}
	_, a, _ := runCapture(t, args...)
	_, b, _ := runCapture(t, args...)
	// Everything above the wall-clock rows is seed-determined.
	cut := func(s string) string {
		i := strings.Index(s, "replay wall ms")
		if i < 0 {
			t.Fatalf("output missing wall row:\n%s", s)
		}
		return s[:i]
	}
	if cut(a) != cut(b) {
		t.Errorf("identical seeds produced different virtual results:\n--- a ---\n%s\n--- b ---\n%s", a, b)
	}
}

func TestReplayWithMetrics(t *testing.T) {
	code, out, _ := runCapture(t,
		"-hosts", "60", "-duration", "1s", "-sweep-every", "250ms",
		"-rate", "50", "-shards", "2", "-workers", "1", "-metrics")
	if code != 0 {
		t.Fatalf("exit = %d\n%s", code, out)
	}
	if !strings.Contains(out, "load.detect") || !strings.Contains(out, "load.events") {
		t.Errorf("metrics table missing load.* entries:\n%s", out)
	}
}

func TestCustomTopologyFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "top.json")
	spec := `{"classes": [{"name": "tiny", "weight": 1}], "mix": {"config_edit": 1}}`
	if err := os.WriteFile(path, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	code, out, errb := runCapture(t,
		"-topology", path, "-hosts", "20", "-duration", "1s",
		"-sweep-every", "250ms", "-rate", "20", "-shards", "2", "-workers", "1")
	if code != 0 {
		t.Fatalf("exit = %d\nstdout:\n%s\nstderr:\n%s", code, out, errb)
	}
	// The tiny class has no config distribution, so every config-edit
	// draw either hits the 1-in-8 drift branch or is skipped — the
	// replay still completes.
	if !strings.Contains(out, "load replay (sweep):") {
		t.Errorf("replay did not run:\n%s", out)
	}
}

func TestBenchWritesRecord(t *testing.T) {
	if testing.Short() {
		t.Skip("bench matrix in -short mode")
	}
	path := filepath.Join(t.TempDir(), "BENCH_load.json")
	code, out, errb := runCapture(t,
		"-bench", "-hosts", "300", "-shards", "4", "-workers", "1",
		"-seed", "2", "-o", path, "-commit", "deadbeef")
	if code != 0 {
		t.Fatalf("exit = %d\nstdout:\n%s\nstderr:\n%s", code, out, errb)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rec report.Table
	if err := json.Unmarshal(data, &rec); err != nil {
		t.Fatalf("bench record not JSON: %v", err)
	}
	if len(rec.Rows) != 3 {
		t.Errorf("bench rows = %d, want 3 (one per rate)", len(rec.Rows))
	}
	if rec.Meta["commit"] != "deadbeef" || rec.Meta["goos"] == "" {
		t.Errorf("provenance meta = %v", rec.Meta)
	}
	for _, col := range []string{"detect-p50-ms", "detect-p95-ms", "detect-p99-ms", "real-ev-s"} {
		found := false
		for _, c := range rec.Columns {
			found = found || c == col
		}
		if !found {
			t.Errorf("bench record missing column %s; have %v", col, rec.Columns)
		}
	}
}

func TestUsageErrors(t *testing.T) {
	for name, args := range map[string][]string{
		"bad flag":      {"-definitely-not-a-flag"},
		"zero hosts":    {"-hosts", "0"},
		"zero rate":     {"-rate", "0"},
		"zero duration": {"-duration", "0s"},
		"missing topo":  {"-topology", filepath.Join(t.TempDir(), "absent.json")},
	} {
		if code, _, _ := runCapture(t, args...); code != 2 {
			t.Errorf("%s: exit = %d, want 2", name, code)
		}
	}
	// An invalid spec file is also a usage error.
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte(`{"classes": []}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if code, _, _ := runCapture(t, "-topology", path); code != 2 {
		t.Errorf("invalid topology: exit != 2")
	}
}

func TestPushReplayAndAssertP99(t *testing.T) {
	args := []string{"-hosts", "100", "-duration", "2s", "-sweep-every", "500ms",
		"-push", "-window", "50ms", "-rate", "100", "-shards", "4", "-workers", "1",
		"-seed", "3"}
	code, out, errb := runCapture(t, append(args, "-assert-p99", "500ms")...)
	if code != 0 {
		t.Fatalf("exit = %d\nstdout:\n%s\nstderr:\n%s", code, out, errb)
	}
	for _, want := range []string{
		"load replay (push):",
		"flush window",
		"checks per event",
		"flushes / delta hosts",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// An impossible bound trips the assertion exit code.
	code, _, errb = runCapture(t, append(args, "-assert-p99", "1ns")...)
	if code != 1 || !strings.Contains(errb, "not below asserted bound") {
		t.Errorf("impossible bound: exit = %d, stderr %q; want 1", code, errb)
	}
}

func TestBenchServeWritesRecord(t *testing.T) {
	if testing.Short() {
		t.Skip("bench matrix in -short mode")
	}
	path := filepath.Join(t.TempDir(), "BENCH_serve.json")
	code, out, errb := runCapture(t,
		"-bench-serve", "-hosts", "200", "-shards", "4", "-workers", "1",
		"-seed", "2", "-o", path, "-commit", "deadbeef")
	if code != 0 {
		t.Fatalf("exit = %d\nstdout:\n%s\nstderr:\n%s", code, out, errb)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rec report.Table
	if err := json.Unmarshal(data, &rec); err != nil {
		t.Fatalf("bench record not JSON: %v", err)
	}
	if len(rec.Rows) != 4 {
		t.Errorf("bench rows = %d, want 4 (2 rates x 2 modes)", len(rec.Rows))
	}
	if rec.Meta["commit"] != "deadbeef" {
		t.Errorf("provenance meta = %v", rec.Meta)
	}
	for _, col := range []string{"mode", "detect-p99-ms", "checks-per-event", "flushes"} {
		found := false
		for _, c := range rec.Columns {
			found = found || c == col
		}
		if !found {
			t.Errorf("bench record missing column %s; have %v", col, rec.Columns)
		}
	}
	if !strings.Contains(rec.Note, "p99 reduction") {
		t.Errorf("note missing the speedup summary: %q", rec.Note)
	}
}

func TestPushUsageErrors(t *testing.T) {
	if code, _, _ := runCapture(t, "-push", "-window", "0s"); code != 2 {
		t.Error("zero window in push mode accepted")
	}
	if code, _, _ := runCapture(t, "-bench", "-bench-serve"); code != 2 {
		t.Error("-bench with -bench-serve accepted")
	}
}
