package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"veridevops/internal/telemetry"
)

// TestPatchTraceFlag: -patch -trace emits a patch → check → enforce span
// tree for the remediation run.
func TestPatchTraceFlag(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	code, out, errb := runCapture(t, "-feed", writeFeed(t),
		"-packages", "openssl=1.0.2", "-patch", "-trace", path, "-metrics")
	if code != 0 {
		t.Fatalf("exit = %d\nstdout:\n%s\nstderr:\n%s", code, out, errb)
	}
	for _, want := range []string{"wrote span trace to " + path, "where the time went", "== metrics =="} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	recs, err := telemetry.ReadJSONL(f)
	if err != nil {
		t.Fatalf("trace not valid JSONL: %v", err)
	}
	roots := telemetry.BuildTree(recs)
	if len(roots) != 1 || roots[0].Name != "patch" {
		t.Fatalf("roots = %+v, want one patch span", roots)
	}
	var sawCheck, sawEnforce bool
	roots[0].Walk(func(n *telemetry.Node) {
		switch n.Name {
		case "check":
			sawCheck = true
		case "enforce":
			sawEnforce = true
		}
	})
	if !sawCheck || !sawEnforce {
		t.Errorf("check/enforce spans = %v/%v, want both", sawCheck, sawEnforce)
	}
}
