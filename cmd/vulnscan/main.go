// Command vulnscan scans a simulated host's package inventory against an
// advisory feed, prints the findings, and optionally remediates by
// generating and enforcing patch requirements — the WP2 vulnerability-
// database path end to end.
//
// Usage:
//
//	vulnscan -feed advisories.json [-packages "openssl=1.0.2,nginx=1.18"] [-patch]
//	         [-workers N] [-telemetry] [-trace PATH] [-metrics]
//	vulnscan -generate "openssl,nginx" -per 3 -seed 1    (emit a synthetic feed)
//
// Exit status: 0 clean, 1 vulnerabilities open, 2 usage error.
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strings"

	"veridevops/internal/core"
	"veridevops/internal/host"
	"veridevops/internal/report"
	"veridevops/internal/telemetry"
	"veridevops/internal/vulndb"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("vulnscan", flag.ContinueOnError)
	fs.SetOutput(stderr)
	feedPath := fs.String("feed", "", "advisory feed JSON")
	packages := fs.String("packages", "", "comma-separated name=version pairs installed on the host")
	patch := fs.Bool("patch", false, "generate and enforce patch requirements")
	generate := fs.String("generate", "", "emit a synthetic feed for these comma-separated packages")
	per := fs.Int("per", 3, "advisories per package for -generate")
	seed := fs.Int64("seed", 1, "seed for -generate")
	workers := fs.Int("workers", 1, "enforce patch requirements with N parallel workers")
	showTelemetry := fs.Bool("telemetry", false, "print engine telemetry for the -patch run")
	tracePath := fs.String("trace", "", "write a JSONL span trace of the -patch run to this file")
	showMetrics := fs.Bool("metrics", false, "collect and print the telemetry metrics registry for the -patch run")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *workers < 1 {
		fmt.Fprintln(stderr, "vulnscan: -workers must be >= 1")
		return 2
	}

	if *generate != "" {
		feed := vulndb.GenerateFeed(strings.Split(*generate, ","), *per, rand.New(rand.NewSource(*seed)))
		db, err := vulndb.NewDB(feed)
		if err != nil {
			fmt.Fprintf(stderr, "vulnscan: %v\n", err)
			return 2
		}
		if err := db.WriteJSON(stdout); err != nil {
			fmt.Fprintf(stderr, "vulnscan: %v\n", err)
			return 2
		}
		return 0
	}

	if *feedPath == "" {
		fmt.Fprintln(stderr, "usage: vulnscan -feed advisories.json [-packages n=v,...] [-patch]")
		return 2
	}
	f, err := os.Open(*feedPath)
	if err != nil {
		fmt.Fprintf(stderr, "vulnscan: %v\n", err)
		return 2
	}
	db, err := vulndb.ReadJSON(f)
	f.Close()
	if err != nil {
		fmt.Fprintf(stderr, "vulnscan: %v\n", err)
		return 2
	}

	h := host.NewLinux()
	if *packages != "" {
		for _, pair := range strings.Split(*packages, ",") {
			name, version, ok := strings.Cut(strings.TrimSpace(pair), "=")
			if !ok || name == "" {
				fmt.Fprintf(stderr, "vulnscan: bad -packages entry %q (want name=version)\n", pair)
				return 2
			}
			h.Install(name, version)
		}
	}

	matches := db.Scan(h)
	t := report.New("vulnerability scan", "advisory", "package", "installed", "fixed-in", "score", "severity")
	for _, m := range matches {
		t.AddRow(m.Advisory.ID, m.Advisory.Package, m.Installed, m.Advisory.FixedIn, m.Score, m.Severity.String())
	}
	s := vulndb.Summarize(matches)
	t.Note = fmt.Sprintf("%d matches (%d critical, %d high, %d medium, %d low), max score %.1f",
		s.Matches, s.Critical, s.High, s.Medium, s.Low, s.MaxScore)
	if err := t.WriteText(stdout); err != nil {
		fmt.Fprintf(stderr, "vulnscan: %v\n", err)
		return 2
	}

	if *patch && len(matches) > 0 {
		var tracer *telemetry.Tracer
		var traceFile *os.File
		if *tracePath != "" {
			tf, err := os.Create(*tracePath)
			if err != nil {
				fmt.Fprintf(stderr, "vulnscan: %v\n", err)
				return 2
			}
			traceFile = tf
			tracer = telemetry.New(tf)
		} else if *showMetrics {
			tracer = telemetry.New(nil)
		}
		var mets *telemetry.Metrics
		if *showMetrics {
			mets = telemetry.NewMetrics()
		}
		root := tracer.Root("patch")

		cat := vulndb.Catalog(db, h)
		rep, st := cat.RunEngine(core.RunOptions{
			Mode: core.CheckAndEnforce, Workers: *workers, Span: root, Metrics: mets,
		})
		root.End()
		fmt.Fprint(stdout, rep)
		if *showTelemetry {
			if err := st.Table("engine telemetry").WriteText(stdout); err != nil {
				fmt.Fprintf(stderr, "vulnscan: %v\n", err)
				return 2
			}
		}
		if tracer != nil {
			if err := tracer.Flush(); err != nil {
				fmt.Fprintf(stderr, "vulnscan: flush trace: %v\n", err)
				return 2
			}
			if traceFile != nil {
				traceFile.Close()
				fmt.Fprintf(stdout, "wrote span trace to %s\n", *tracePath)
			}
			report.SpanTable("where the time went (top 10 span names)", tracer.Breakdown(), 10).WriteText(stdout)
		}
		if mets != nil {
			mets.Table("metrics").WriteText(stdout)
		}
		matches = db.Scan(h)
		fmt.Fprintf(stdout, "post-patch matches: %d\n", len(matches))
	}
	if len(matches) > 0 {
		return 1
	}
	return 0
}
