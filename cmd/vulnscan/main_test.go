package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runCapture(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errb bytes.Buffer
	code := run(args, &out, &errb)
	return code, out.String(), errb.String()
}

const feedJSON = `[
  {"id":"CVE-1","package":"openssl","fixed_in":"1.1.1","vector":"CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H","summary":"RCE."},
  {"id":"CVE-2","package":"nginx","vector":"CVSS:3.1/AV:L/AC:L/PR:L/UI:N/S:U/C:H/I:N/A:N","summary":"Unfixable."}
]`

func writeFeed(t *testing.T) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), "feed.json")
	if err := os.WriteFile(p, []byte(feedJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestScanFindsVulnerabilities(t *testing.T) {
	code, out, _ := runCapture(t, "-feed", writeFeed(t), "-packages", "openssl=1.0.2,nginx=1.18")
	if code != 1 {
		t.Fatalf("exit = %d\n%s", code, out)
	}
	for _, want := range []string{"CVE-1", "9.80", "critical", "CVE-2", "1 critical"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestScanCleanHost(t *testing.T) {
	code, out, _ := runCapture(t, "-feed", writeFeed(t), "-packages", "openssl=1.1.1")
	if code != 0 {
		t.Fatalf("exit = %d\n%s", code, out)
	}
}

func TestPatchRemediates(t *testing.T) {
	code, out, _ := runCapture(t, "-feed", writeFeed(t), "-packages", "openssl=1.0.2,nginx=1.18", "-patch")
	if code != 0 {
		t.Fatalf("patched host should exit 0: %d\n%s", code, out)
	}
	if !strings.Contains(out, "post-patch matches: 0") {
		t.Errorf("output:\n%s", out)
	}
}

func TestGenerateFeedOutput(t *testing.T) {
	code, out, _ := runCapture(t, "-generate", "a,b", "-per", "2", "-seed", "3")
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	if !strings.Contains(out, "CVE-2026-00001") || !strings.Contains(out, `"package": "b"`) {
		t.Errorf("feed:\n%s", out)
	}
}

func TestUsageErrors(t *testing.T) {
	if code, _, _ := runCapture(t); code != 2 {
		t.Error("missing feed should exit 2")
	}
	if code, _, _ := runCapture(t, "-feed", "/nonexistent.json"); code != 2 {
		t.Error("unreadable feed should exit 2")
	}
	if code, _, _ := runCapture(t, "-feed", writeFeed(t), "-packages", "malformed"); code != 2 {
		t.Error("bad packages flag should exit 2")
	}
}

func TestPatchParallelWithTelemetry(t *testing.T) {
	code, out, _ := runCapture(t, "-feed", writeFeed(t),
		"-packages", "openssl=1.0.2,nginx=1.18", "-patch", "-workers", "4", "-telemetry")
	if code != 0 {
		t.Fatalf("exit = %d\n%s", code, out)
	}
	for _, want := range []string{"engine telemetry", "attempts", "post-patch matches: 0"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestBadWorkersFlag(t *testing.T) {
	if code, _, _ := runCapture(t, "-feed", writeFeed(t), "-workers", "0"); code != 2 {
		t.Errorf("-workers 0 exit = %d, want 2", code)
	}
}
