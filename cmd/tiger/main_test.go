package main

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"veridevops/internal/gwt"
)

func runCapture(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errb bytes.Buffer
	code := run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func writeModel(t *testing.T) string {
	t.Helper()
	m := gwt.RandomModel("m", 5, 3, rand.New(rand.NewSource(1)))
	p := filepath.Join(t.TempDir(), "model.json")
	f, err := os.Create(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	return p
}

func TestAllEdgesScripts(t *testing.T) {
	p := writeModel(t)
	code, out, errb := runCapture(t, "-model", p)
	if code != 0 {
		t.Fatalf("exit = %d\n%s", code, errb)
	}
	if !strings.Contains(errb, "edge coverage 100%") {
		t.Errorf("stderr = %q", errb)
	}
	if !strings.Contains(out, "#!/bin/sh") || !strings.Contains(out, `step "step`) {
		t.Errorf("scripts:\n%s", out)
	}
}

func TestAbstractJSON(t *testing.T) {
	p := writeModel(t)
	code, out, _ := runCapture(t, "-model", p, "-abstract", "-generator", "random", "-coverage", "0.5")
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	tcs, err := gwt.ReadAbstractTests(strings.NewReader(out))
	if err != nil || len(tcs) == 0 {
		t.Errorf("abstract output unparseable: %v", err)
	}
}

func TestWeightedGenerator(t *testing.T) {
	p := writeModel(t)
	code, _, errb := runCapture(t, "-model", p, "-generator", "weighted")
	if code != 0 {
		t.Fatalf("exit = %d\n%s", code, errb)
	}
}

func TestSignalsConcretisation(t *testing.T) {
	p := writeModel(t)
	sp := filepath.Join(t.TempDir(), "signals.xml")
	if err := os.WriteFile(sp, []byte(`<signals><signal name="s" type="bool" min="0" max="1"/></signals>`), 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, errb := runCapture(t, "-model", p, "-signals", sp)
	if code != 0 {
		t.Fatalf("exit = %d\n%s", code, errb)
	}
}

func TestGraphMLModel(t *testing.T) {
	doc := `<graphml><graph id="g">
	  <node id="a"/><node id="b"/>
	  <edge id="e0" source="a" target="b"/><edge id="e1" source="b" target="a"/>
	</graph></graphml>`
	p := filepath.Join(t.TempDir(), "model.graphml")
	if err := os.WriteFile(p, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, errb := runCapture(t, "-model", p)
	if code != 0 {
		t.Fatalf("exit = %d\n%s", code, errb)
	}
	if !strings.Contains(errb, "edge coverage 100%") {
		t.Errorf("stderr = %q", errb)
	}
}

func TestUsageErrors(t *testing.T) {
	if code, _, _ := runCapture(t); code != 2 {
		t.Error("missing model should exit 2")
	}
	if code, _, _ := runCapture(t, "-model", "/nonexistent.json"); code != 2 {
		t.Error("unreadable model should exit 2")
	}
	p := writeModel(t)
	if code, _, _ := runCapture(t, "-model", p, "-generator", "bogus"); code != 2 {
		t.Error("unknown generator should exit 2")
	}
	if code, _, _ := runCapture(t, "-model", p, "-signals", "/nonexistent.xml"); code != 2 {
		t.Error("unreadable signals should exit 2")
	}
}
