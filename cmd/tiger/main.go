// Command tiger generates abstract test paths from a GraphWalker-style
// model and concretises them into scripts — the TIGER workflow of
// VeriDevOps D2.7.
//
// Usage:
//
//	tiger -model model.json [-generator all-edges|random|weighted]
//	      [-coverage 1.0] [-seed 1] [-signals signals.xml] [-abstract]
//
// Without -signals, steps are emitted through the fallback mapping
// ("step <name>"); with -abstract the abstract test cases are printed as
// JSON instead of scripts. Exit status: 0 ok, 2 usage error.
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strings"

	"veridevops/internal/gwt"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tiger", flag.ContinueOnError)
	fs.SetOutput(stderr)
	modelPath := fs.String("model", "", "model JSON file")
	generator := fs.String("generator", "all-edges", "all-edges|random|weighted")
	coverage := fs.Float64("coverage", 1.0, "edge-coverage stop condition for random generators")
	seed := fs.Int64("seed", 1, "random generator seed")
	signalsPath := fs.String("signals", "", "signal XML file for concretisation")
	abstract := fs.Bool("abstract", false, "emit abstract test cases as JSON")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *modelPath == "" {
		fmt.Fprintln(stderr, "usage: tiger -model model.json [flags]")
		return 2
	}
	mf, err := os.Open(*modelPath)
	if err != nil {
		fmt.Fprintf(stderr, "tiger: %v\n", err)
		return 2
	}
	var model *gwt.Model
	if strings.HasSuffix(strings.ToLower(*modelPath), ".graphml") {
		model, err = gwt.ReadGraphML(mf)
	} else {
		model, err = gwt.ReadJSON(mf)
	}
	mf.Close()
	if err != nil {
		fmt.Fprintf(stderr, "tiger: %v\n", err)
		return 2
	}

	var tcs []gwt.TestCase
	rng := rand.New(rand.NewSource(*seed))
	switch *generator {
	case "all-edges":
		tcs = gwt.AllEdges(model)
	case "random":
		tcs = gwt.RandomWalk(model, rng, gwt.EdgeCoverageAtLeast(*coverage))
	case "weighted":
		tcs = gwt.WeightedRandomWalk(model, rng, gwt.EdgeCoverageAtLeast(*coverage))
	default:
		fmt.Fprintf(stderr, "tiger: unknown generator %q\n", *generator)
		return 2
	}
	fmt.Fprintf(stderr, "tiger: %d test cases, %d steps, edge coverage %.0f%%\n",
		len(tcs), gwt.TotalSteps(tcs), 100*gwt.EdgeCoverage(model, tcs))

	if *abstract {
		if err := gwt.WriteAbstractTests(stdout, tcs); err != nil {
			fmt.Fprintf(stderr, "tiger: %v\n", err)
			return 2
		}
		return 0
	}

	var signals []gwt.Signal
	if *signalsPath != "" {
		sf, err := os.Open(*signalsPath)
		if err != nil {
			fmt.Fprintf(stderr, "tiger: %v\n", err)
			return 2
		}
		signals, err = gwt.ReadSignalsXML(sf)
		sf.Close()
		if err != nil {
			fmt.Fprintf(stderr, "tiger: %v\n", err)
			return 2
		}
	}
	gen, err := gwt.NewTestGenerator(signals, nil, "step %q")
	if err != nil {
		fmt.Fprintf(stderr, "tiger: %v\n", err)
		return 2
	}
	scripts, err := gen.Concretize(tcs)
	if err != nil {
		fmt.Fprintf(stderr, "tiger: %v\n", err)
		return 2
	}
	creator := gwt.ScriptCreator{Header: []string{"#!/bin/sh", "set -e"}}
	for _, sc := range scripts {
		if err := creator.Render(stdout, sc); err != nil {
			fmt.Fprintf(stderr, "tiger: %v\n", err)
			return 2
		}
		fmt.Fprintln(stdout)
	}
	return 0
}
