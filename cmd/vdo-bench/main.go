// Command vdo-bench regenerates every experiment table of EXPERIMENTS.md.
//
// Usage:
//
//	vdo-bench [-seed N] [-json] [-only E3]
//
// Exit status: 0 ok, 2 usage error.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"veridevops/internal/bench"
	"veridevops/internal/report"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("vdo-bench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	seed := fs.Int64("seed", 1, "experiment seed")
	jsonOut := fs.Bool("json", false, "emit JSON instead of text tables")
	mdOut := fs.Bool("markdown", false, "emit markdown tables")
	csvOut := fs.Bool("csv", false, "emit CSV tables")
	only := fs.String("only", "", "run only experiments whose title contains this substring (e.g. E3)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	var tables []*report.Table
	for _, t := range bench.All(*seed) {
		if *only != "" && !strings.Contains(t.Title, *only) {
			continue
		}
		tables = append(tables, t)
	}
	if len(tables) == 0 {
		fmt.Fprintf(stderr, "vdo-bench: no experiment matches %q\n", *only)
		return 2
	}
	for _, t := range tables {
		var err error
		switch {
		case *jsonOut:
			err = t.WriteJSON(stdout)
		case *mdOut:
			_, err = fmt.Fprintln(stdout, t.Markdown())
		case *csvOut:
			err = t.WriteCSV(stdout)
		default:
			err = t.WriteText(stdout)
		}
		if err != nil {
			fmt.Fprintf(stderr, "vdo-bench: %v\n", err)
			return 2
		}
	}
	return 0
}
