package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func runCapture(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errb bytes.Buffer
	code := run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestOnlyE6Text(t *testing.T) {
	code, out, _ := runCapture(t, "-only", "E6")
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	if !strings.Contains(out, "E6: prevention vs protection") {
		t.Errorf("output:\n%.200s", out)
	}
	if strings.Contains(out, "E1:") {
		t.Error("-only must filter other tables")
	}
}

func TestOnlyE8JSON(t *testing.T) {
	code, out, _ := runCapture(t, "-only", "E8", "-json")
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	var doc struct {
		Title string     `json:"title"`
		Rows  [][]string `json:"rows"`
	}
	if err := json.Unmarshal([]byte(out), &doc); err != nil {
		t.Fatalf("json output unparseable: %v", err)
	}
	if !strings.HasPrefix(doc.Title, "E8") || len(doc.Rows) == 0 {
		t.Errorf("doc = %+v", doc)
	}
}

func TestMarkdownAndCSVModes(t *testing.T) {
	code, out, _ := runCapture(t, "-only", "E8", "-markdown")
	if code != 0 || !strings.Contains(out, "### E8") || !strings.Contains(out, "|---|") {
		t.Errorf("markdown mode:\n%.200s", out)
	}
	code, out, _ = runCapture(t, "-only", "E8", "-csv")
	if code != 0 || !strings.HasPrefix(out, "behaviour,sentences,accuracy") {
		t.Errorf("csv mode:\n%.200s", out)
	}
}

func TestNoMatch(t *testing.T) {
	code, _, errb := runCapture(t, "-only", "E99")
	if code != 2 || !strings.Contains(errb, "no experiment matches") {
		t.Errorf("code=%d stderr=%q", code, errb)
	}
}

func TestBadFlag(t *testing.T) {
	if code, _, _ := runCapture(t, "-bogus"); code != 2 {
		t.Error("bad flag should exit 2")
	}
}
