// Command nalabs analyzes a natural-language requirements corpus for bad
// smells, the CLI counterpart of the NALABS GUI.
//
// Usage:
//
//	nalabs [-id-col 0] [-text-col 1] [-metrics] [-csv] file.csv
//	nalabs -generate 100 -rate 0.3 -seed 7    (emit a seeded corpus)
//
// Exit status: 0 no smells, 1 smells found, 2 usage error.
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"

	"veridevops/internal/nalabs"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("nalabs", flag.ContinueOnError)
	fs.SetOutput(stderr)
	idCol := fs.Int("id-col", 0, "zero-based CSV column holding the REQ ID")
	textCol := fs.Int("text-col", 1, "zero-based CSV column holding the requirement text")
	metrics := fs.Bool("metrics", false, "print the corpus summary with metric means")
	csvOut := fs.Bool("csv", false, "emit per-requirement metric values as CSV")
	generate := fs.Int("generate", 0, "instead of analyzing, emit N seeded requirements as CSV")
	rate := fs.Float64("rate", 0.3, "smell rate for -generate")
	seed := fs.Int64("seed", 1, "seed for -generate")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *generate > 0 {
		corpus := nalabs.GenerateCorpus(*generate, *rate, rand.New(rand.NewSource(*seed)))
		reqs := make([]nalabs.Requirement, len(corpus))
		for i, lr := range corpus {
			reqs[i] = lr.Requirement
		}
		if err := nalabs.WriteCSV(stdout, reqs); err != nil {
			fmt.Fprintf(stderr, "nalabs: %v\n", err)
			return 2
		}
		return 0
	}

	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: nalabs [flags] file.csv")
		return 2
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		fmt.Fprintf(stderr, "nalabs: %v\n", err)
		return 2
	}
	defer f.Close()
	reqs, err := nalabs.ReadCSV(f, *idCol, *textCol)
	if err != nil {
		fmt.Fprintf(stderr, "nalabs: %v\n", err)
		return 2
	}
	an := nalabs.NewAnalyzer()
	rep := an.AnalyzeAll(reqs)

	switch {
	case *csvOut:
		if err := nalabs.WriteResultsCSV(stdout, an, rep); err != nil {
			fmt.Fprintf(stderr, "nalabs: %v\n", err)
			return 2
		}
	default:
		fmt.Fprint(stdout, rep)
		if *metrics {
			fmt.Fprintln(stdout)
			fmt.Fprint(stdout, rep.Summary())
		}
	}
	if rep.SmellyCount() > 0 {
		return 1
	}
	return 0
}
