package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runCapture(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errb bytes.Buffer
	code := run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func writeTemp(t *testing.T, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), "reqs.csv")
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestGenerateEmitsCSV(t *testing.T) {
	code, out, _ := runCapture(t, "-generate", "5", "-seed", "2")
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 6 { // header + 5
		t.Errorf("lines = %d:\n%s", len(lines), out)
	}
	if lines[0] != "id,text" {
		t.Errorf("header = %q", lines[0])
	}
}

func TestAnalyzeCleanCorpus(t *testing.T) {
	p := writeTemp(t, "id,text\nR1,The system shall encrypt data.\n")
	code, out, _ := runCapture(t, p)
	if code != 0 {
		t.Fatalf("clean corpus should exit 0: %d\n%s", code, out)
	}
	if !strings.Contains(out, "total: 0/1 smelly") {
		t.Errorf("output:\n%s", out)
	}
}

func TestAnalyzeSmellyCorpus(t *testing.T) {
	p := writeTemp(t, "id,text\nR1,The system may possibly respond as appropriate.\n")
	code, out, _ := runCapture(t, p)
	if code != 1 {
		t.Fatalf("smelly corpus should exit 1: %d\n%s", code, out)
	}
}

func TestMetricsSummary(t *testing.T) {
	p := writeTemp(t, "id,text\nR1,The system shall encrypt data.\n")
	_, out, _ := runCapture(t, "-metrics", p)
	if !strings.Contains(out, "mean ARI") {
		t.Errorf("summary missing:\n%s", out)
	}
}

func TestCSVOutput(t *testing.T) {
	p := writeTemp(t, "id,text\nR1,The system may respond.\n")
	code, out, _ := runCapture(t, "-csv", p)
	if code != 1 {
		t.Fatalf("exit = %d", code)
	}
	if !strings.HasPrefix(out, "id,") || !strings.Contains(out, "optionality") {
		t.Errorf("csv output:\n%s", out)
	}
}

func TestUsageErrors(t *testing.T) {
	if code, _, _ := runCapture(t); code != 2 {
		t.Error("missing file should exit 2")
	}
	if code, _, _ := runCapture(t, "/nonexistent/file.csv"); code != 2 {
		t.Error("unreadable file should exit 2")
	}
	if code, _, _ := runCapture(t, "-bogus"); code != 2 {
		t.Error("bad flag should exit 2")
	}
	p := writeTemp(t, "only-one-column\n")
	if code, _, _ := runCapture(t, p); code != 2 {
		t.Error("short rows should exit 2")
	}
}
