package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runCapture(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errb bytes.Buffer
	code := run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestUbuntuCompliantBaseline(t *testing.T) {
	code, out, _ := runCapture(t, "-os", "ubuntu")
	if code != 0 {
		t.Fatalf("exit = %d\n%s", code, out)
	}
	if !strings.Contains(out, "compliance: 100.0%") {
		t.Errorf("output:\n%s", out)
	}
}

func TestUbuntuDriftAudit(t *testing.T) {
	code, out, _ := runCapture(t, "-os", "ubuntu", "-drift", "10", "-seed", "3")
	if code != 1 {
		t.Fatalf("drifted audit should exit 1, got %d\n%s", code, out)
	}
	if !strings.Contains(out, "FAIL") {
		t.Errorf("expected failing findings:\n%s", out)
	}
}

func TestUbuntuDriftEnforce(t *testing.T) {
	code, out, _ := runCapture(t, "-os", "ubuntu", "-drift", "10", "-seed", "3", "-enforce")
	if code != 0 {
		t.Fatalf("enforcement should restore compliance, got %d\n%s", code, out)
	}
}

func TestWin10FreshFails(t *testing.T) {
	code, out, _ := runCapture(t, "-os", "win10")
	if code != 1 {
		t.Fatalf("fresh win10 should be non-compliant, got %d\n%s", code, out)
	}
}

func TestWin10Enforce(t *testing.T) {
	code, _, _ := runCapture(t, "-os", "win10", "-enforce")
	if code != 0 {
		t.Fatal("win10 enforcement should succeed")
	}
}

func TestVerbosePrintsFindings(t *testing.T) {
	_, out, _ := runCapture(t, "-os", "ubuntu", "-verbose")
	if !strings.Contains(out, "Finding ID: V-219157") {
		t.Errorf("verbose output missing finding documents:\n%.300s", out)
	}
}

func TestExtraCatalogLoaded(t *testing.T) {
	p := filepath.Join(t.TempDir(), "extra.json")
	doc := `[{"kind":"package","id":"EXT-100","severity":"high","package":"telnetd"}]`
	if err := os.WriteFile(p, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	code, out, _ := runCapture(t, "-os", "ubuntu", "-catalog", p)
	if code != 0 {
		t.Fatalf("exit = %d\n%s", code, out)
	}
	if !strings.Contains(out, "EXT-100") {
		t.Errorf("extra finding missing from report:\n%s", out)
	}
}

func TestExtraCatalogErrors(t *testing.T) {
	if code, _, _ := runCapture(t, "-os", "ubuntu", "-catalog", "/nonexistent.json"); code != 2 {
		t.Error("unreadable catalogue should exit 2")
	}
	p := filepath.Join(t.TempDir(), "dup.json")
	doc := `[{"kind":"package","id":"V-219157","package":"nis"}]` // collides with builtin
	if err := os.WriteFile(p, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	if code, _, _ := runCapture(t, "-os", "ubuntu", "-catalog", p); code != 2 {
		t.Error("duplicate finding ID should exit 2")
	}
}

func TestUnknownOS(t *testing.T) {
	code, _, errb := runCapture(t, "-os", "plan9")
	if code != 2 || !strings.Contains(errb, "unknown -os") {
		t.Errorf("code=%d stderr=%q", code, errb)
	}
}

func TestBadFlag(t *testing.T) {
	code, _, _ := runCapture(t, "-bogus")
	if code != 2 {
		t.Errorf("bad flag should exit 2, got %d", code)
	}
}

func TestParallelAuditMatchesSequential(t *testing.T) {
	_, seq, _ := runCapture(t, "-os", "ubuntu", "-drift", "10", "-seed", "3")
	_, par, _ := runCapture(t, "-os", "ubuntu", "-drift", "10", "-seed", "3", "-workers", "8")
	if seq != par {
		t.Errorf("parallel audit output differs from sequential:\n--- seq ---\n%s--- par ---\n%s", seq, par)
	}
}

func TestTelemetryFlagPrintsEngineTable(t *testing.T) {
	code, out, _ := runCapture(t, "-os", "ubuntu", "-workers", "4", "-retries", "2", "-telemetry")
	if code != 0 {
		t.Fatalf("exit = %d\n%s", code, out)
	}
	for _, want := range []string{"engine telemetry", "attempts", "retries", "workers"} {
		if !strings.Contains(out, want) {
			t.Errorf("telemetry output missing %q:\n%s", want, out)
		}
	}
}

func TestBadWorkerAndRetryFlags(t *testing.T) {
	if code, _, _ := runCapture(t, "-os", "ubuntu", "-workers", "0"); code != 2 {
		t.Errorf("-workers 0 exit = %d, want 2", code)
	}
	if code, _, _ := runCapture(t, "-os", "ubuntu", "-retries", "-1"); code != 2 {
		t.Errorf("-retries -1 exit = %d, want 2", code)
	}
}
