// Command rqcode audits and enforces the RQCODE STIG catalogues against a
// simulated host, mirroring the Main/Windows10SecurityTechnicalImplementationGuide
// entry points of the reference repository.
//
// Usage:
//
//	rqcode -os ubuntu|win10 [-enforce] [-drift N] [-seed N] [-verbose]
//	       [-workers N] [-retries N] [-telemetry] [-trace PATH] [-metrics]
//
// Exit status: 0 fully compliant, 1 findings open, 2 usage error.
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"

	"veridevops/internal/core"
	"veridevops/internal/engine"
	"veridevops/internal/host"
	"veridevops/internal/report"
	"veridevops/internal/stig"
	"veridevops/internal/telemetry"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("rqcode", flag.ContinueOnError)
	fs.SetOutput(stderr)
	osName := fs.String("os", "ubuntu", "target host: ubuntu or win10")
	enforce := fs.Bool("enforce", false, "remediate failing findings")
	drift := fs.Int("drift", 0, "apply N random compliance-breaking mutations first")
	seed := fs.Int64("seed", 1, "drift seed")
	verbose := fs.Bool("verbose", false, "print each finding's document")
	catalogPath := fs.String("catalog", "", "load an additional JSON catalogue of findings")
	workers := fs.Int("workers", 1, "audit the catalogue with N parallel workers")
	retries := fs.Int("retries", 0, "retry INCOMPLETE checks up to N times (exponential backoff)")
	showTelemetry := fs.Bool("telemetry", false, "print per-finding engine telemetry (attempts, retries, recovered panics)")
	tracePath := fs.String("trace", "", "write a JSONL span trace (run/check/attempt) to this file")
	showMetrics := fs.Bool("metrics", false, "collect and print the telemetry metrics registry after the run")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *workers < 1 || *retries < 0 {
		fmt.Fprintln(stderr, "rqcode: -workers must be >= 1 and -retries >= 0")
		return 2
	}

	rng := rand.New(rand.NewSource(*seed))
	var cat *core.Catalog
	hosts := stig.Hosts{}
	switch *osName {
	case "ubuntu":
		h := host.NewUbuntu1804()
		hosts.Linux = h
		cat = stig.UbuntuCatalog(h)
		cat.Run(core.CheckAndEnforce) // establish the hardened baseline
		host.DriftLinux(h, *drift, rng)
	case "win10":
		w := host.NewWindows10()
		hosts.Windows = w
		cat = stig.Win10Catalog(w)
		host.DriftWindows(w, *drift, rng)
	default:
		fmt.Fprintf(stderr, "rqcode: unknown -os %q (want ubuntu or win10)\n", *osName)
		return 2
	}

	if *catalogPath != "" {
		f, err := os.Open(*catalogPath)
		if err != nil {
			fmt.Fprintf(stderr, "rqcode: %v\n", err)
			return 2
		}
		extra, err := stig.LoadCatalog(f, hosts)
		f.Close()
		if err != nil {
			fmt.Fprintf(stderr, "rqcode: %v\n", err)
			return 2
		}
		for _, r := range extra.All() {
			if err := cat.Register(r); err != nil {
				fmt.Fprintf(stderr, "rqcode: %v\n", err)
				return 2
			}
		}
	}

	mode := core.CheckOnly
	if *enforce {
		mode = core.CheckAndEnforce
	}

	var tracer *telemetry.Tracer
	var traceFile *os.File
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fmt.Fprintf(stderr, "rqcode: %v\n", err)
			return 2
		}
		traceFile = f
		tracer = telemetry.New(f)
	} else if *showMetrics {
		tracer = telemetry.New(nil)
	}
	var mets *telemetry.Metrics
	if *showMetrics {
		mets = telemetry.NewMetrics()
	}
	root := tracer.Root("run").Tag("os", *osName)

	rep, st := cat.RunEngine(core.RunOptions{
		Mode:    mode,
		Workers: *workers,
		Checks:  engine.Policy{MaxAttempts: 1 + *retries},
		Span:    root,
		Metrics: mets,
	})
	root.End()
	if *verbose {
		// Statuses come from the engine report rather than re-checking each
		// requirement directly: the run already audited the catalogue with
		// panic recovery, retries and attempt spans, and Before is the
		// verdict at audit time (pre-enforcement).
		status := make(map[string]core.CheckStatus, len(rep.Results))
		for _, res := range rep.Results {
			status[res.FindingID] = res.Before
		}
		for _, r := range cat.All() {
			fmt.Fprintf(stdout,
				"Finding ID: %s\nSeverity: %s\nSTIG: %s\nDescription: %s\nCheck Text: %s\nFix Text: %s\nStatus: %s\n\n",
				r.FindingID(), r.Severity(), r.STIG(), r.Description(),
				r.CheckText(), r.FixText(), status[r.FindingID()])
		}
	}
	fmt.Fprint(stdout, rep)
	if *showTelemetry {
		if err := st.Table("engine telemetry").WriteText(stdout); err != nil {
			fmt.Fprintf(stderr, "rqcode: %v\n", err)
			return 2
		}
	}
	if tracer != nil {
		if err := tracer.Flush(); err != nil {
			fmt.Fprintf(stderr, "rqcode: flush trace: %v\n", err)
			return 2
		}
		if traceFile != nil {
			traceFile.Close()
			fmt.Fprintf(stdout, "wrote span trace to %s\n", *tracePath)
		}
		report.SpanTable("where the time went (top 10 span names)", tracer.Breakdown(), 10).WriteText(stdout)
	}
	if mets != nil {
		mets.Table("metrics").WriteText(stdout)
	}
	if rep.Compliance() < 1 {
		return 1
	}
	return 0
}
