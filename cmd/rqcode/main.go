// Command rqcode audits and enforces the RQCODE STIG catalogues against a
// simulated host, mirroring the Main/Windows10SecurityTechnicalImplementationGuide
// entry points of the reference repository.
//
// Usage:
//
//	rqcode -os ubuntu|win10 [-enforce] [-drift N] [-seed N] [-verbose]
//	       [-workers N] [-retries N] [-telemetry]
//
// Exit status: 0 fully compliant, 1 findings open, 2 usage error.
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"

	"veridevops/internal/core"
	"veridevops/internal/engine"
	"veridevops/internal/host"
	"veridevops/internal/stig"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("rqcode", flag.ContinueOnError)
	fs.SetOutput(stderr)
	osName := fs.String("os", "ubuntu", "target host: ubuntu or win10")
	enforce := fs.Bool("enforce", false, "remediate failing findings")
	drift := fs.Int("drift", 0, "apply N random compliance-breaking mutations first")
	seed := fs.Int64("seed", 1, "drift seed")
	verbose := fs.Bool("verbose", false, "print each finding's document")
	catalogPath := fs.String("catalog", "", "load an additional JSON catalogue of findings")
	workers := fs.Int("workers", 1, "audit the catalogue with N parallel workers")
	retries := fs.Int("retries", 0, "retry INCOMPLETE checks up to N times (exponential backoff)")
	telemetry := fs.Bool("telemetry", false, "print per-finding engine telemetry (attempts, retries, recovered panics)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *workers < 1 || *retries < 0 {
		fmt.Fprintln(stderr, "rqcode: -workers must be >= 1 and -retries >= 0")
		return 2
	}

	rng := rand.New(rand.NewSource(*seed))
	var cat *core.Catalog
	hosts := stig.Hosts{}
	switch *osName {
	case "ubuntu":
		h := host.NewUbuntu1804()
		hosts.Linux = h
		cat = stig.UbuntuCatalog(h)
		cat.Run(core.CheckAndEnforce) // establish the hardened baseline
		host.DriftLinux(h, *drift, rng)
	case "win10":
		w := host.NewWindows10()
		hosts.Windows = w
		cat = stig.Win10Catalog(w)
		host.DriftWindows(w, *drift, rng)
	default:
		fmt.Fprintf(stderr, "rqcode: unknown -os %q (want ubuntu or win10)\n", *osName)
		return 2
	}

	if *catalogPath != "" {
		f, err := os.Open(*catalogPath)
		if err != nil {
			fmt.Fprintf(stderr, "rqcode: %v\n", err)
			return 2
		}
		extra, err := stig.LoadCatalog(f, hosts)
		f.Close()
		if err != nil {
			fmt.Fprintf(stderr, "rqcode: %v\n", err)
			return 2
		}
		for _, r := range extra.All() {
			if err := cat.Register(r); err != nil {
				fmt.Fprintf(stderr, "rqcode: %v\n", err)
				return 2
			}
		}
	}

	if *verbose {
		for _, r := range cat.All() {
			fmt.Fprintf(stdout,
				"Finding ID: %s\nSeverity: %s\nSTIG: %s\nDescription: %s\nCheck Text: %s\nFix Text: %s\nStatus: %s\n\n",
				r.FindingID(), r.Severity(), r.STIG(), r.Description(),
				r.CheckText(), r.FixText(), r.Check())
		}
	}

	mode := core.CheckOnly
	if *enforce {
		mode = core.CheckAndEnforce
	}
	rep, st := cat.RunEngine(core.RunOptions{
		Mode:    mode,
		Workers: *workers,
		Checks:  engine.Policy{MaxAttempts: 1 + *retries},
	})
	fmt.Fprint(stdout, rep)
	if *telemetry {
		if err := st.Table("engine telemetry").WriteText(stdout); err != nil {
			fmt.Fprintf(stderr, "rqcode: %v\n", err)
			return 2
		}
	}
	if rep.Compliance() < 1 {
		return 1
	}
	return 0
}
