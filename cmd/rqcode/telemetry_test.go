package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"veridevops/internal/telemetry"
)

// TestTraceFlagWritesRunSpanTree: -trace emits a run → check → attempt
// tree covering every Ubuntu finding.
func TestTraceFlagWritesRunSpanTree(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	code, out, errb := runCapture(t, "-os", "ubuntu", "-trace", path)
	if code != 0 {
		t.Fatalf("exit = %d\nstdout:\n%s\nstderr:\n%s", code, out, errb)
	}
	if !strings.Contains(out, "wrote span trace to "+path) {
		t.Errorf("missing trace confirmation:\n%s", out)
	}

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	recs, err := telemetry.ReadJSONL(f)
	if err != nil {
		t.Fatalf("trace not valid JSONL: %v", err)
	}
	roots := telemetry.BuildTree(recs)
	if len(roots) != 1 || roots[0].Name != "run" || roots[0].Tags["os"] != "ubuntu" {
		t.Fatalf("roots = %+v, want one run span tagged os=ubuntu", roots)
	}
	checks, attempts := 0, 0
	roots[0].Walk(func(n *telemetry.Node) {
		switch n.Name {
		case "check":
			checks++
		case "attempt":
			attempts++
		}
	})
	if checks != 8 {
		t.Errorf("check spans = %d, want 8", checks)
	}
	if attempts < checks {
		t.Errorf("attempt spans = %d, want >= %d", attempts, checks)
	}
}

func TestMetricsFlagPrintsRegistry(t *testing.T) {
	code, out, _ := runCapture(t, "-os", "ubuntu", "-metrics")
	if code != 0 {
		t.Fatalf("exit = %d\n%s", code, out)
	}
	for _, want := range []string{"where the time went", "== metrics ==", "engine.checks"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}
