// Command catalogue prints the generated RQCODE patterns-catalogue
// reference document (the Go analogue of deliverable D2.7) to stdout.
//
// Usage:
//
//	catalogue > CATALOGUE.md
package main

import (
	"fmt"
	"os"

	"veridevops/internal/catalogue"
)

func main() {
	if _, err := fmt.Print(catalogue.Markdown()); err != nil {
		fmt.Fprintf(os.Stderr, "catalogue: %v\n", err)
		os.Exit(1)
	}
}
