// Command vdo-scenario executes declarative timed incident scenarios
// against the fleet stack and fuzzes the mutation grammar for
// cross-mode divergence.
//
// In run mode it loads one spec file or every *.json under a directory,
// executes each on the virtual clock — sweep mode by default, push mode
// with -push, or both with -both (which additionally cross-checks that
// the two evaluation strategies agree on every final verdict) — and
// prints the structured report: per-step provenance, guarded-assertion
// verdicts and the final compliance state.
//
// In fuzz mode (-fuzz N) it generates N random scenarios from the
// mutation grammar, runs each through the sweep-vs-push equivalence
// oracle, and shrinks the first failure to a minimal reproducer.
//
// Usage:
//
//	vdo-scenario [-run PATH] [-push | -both] [-shards N] [-workers N]
//	             [-verify-reads] [-v] [-slowest N]
//	vdo-scenario -fuzz N [-seed N] [-shards N] [-workers N]
//
// Exit status: 0 all scenarios passed (or fuzz found no divergence),
// 1 a scenario failed or the fuzzer found a divergence, 2 usage or I/O
// error.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"veridevops/internal/scenario"
	"veridevops/internal/telemetry"
	"veridevops/internal/telemetry/store"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("vdo-scenario", flag.ContinueOnError)
	fs.SetOutput(stderr)
	runPath := fs.String("run", "examples/scenarios", "scenario spec file, or directory of *.json specs")
	push := fs.Bool("push", false, "evaluate through the push streamer instead of batch sweeps")
	both := fs.Bool("both", false, "run each scenario in both modes and cross-check final verdicts")
	fuzzN := fs.Int("fuzz", 0, "fuzz N generated scenarios through the cross-mode oracle instead of running specs")
	seed := fs.Int64("seed", 1, "base seed for -fuzz generation")
	shards := fs.Int("shards", 4, "shard goroutines per evaluation pass")
	workers := fs.Int("workers", 1, "engine workers per catalogue run inside a shard")
	verifyReads := fs.Bool("verify-reads", false, "run the dynamic declared-reads oracle over each fleet's final catalogues; undeclared reads fail the run")
	verbose := fs.Bool("v", false, "print the full virtual-time schedule of each run")
	slowest := fs.Int("slowest", 0, "keep spans in the trace store and print the N slowest evaluations")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *push && *both {
		fmt.Fprintln(stderr, "vdo-scenario: -push and -both are mutually exclusive")
		return 2
	}

	opts := scenario.Options{Push: *push, Shards: *shards, Workers: *workers, VerifyReads: *verifyReads}
	var spanStore *store.Store
	if *slowest > 0 {
		spanStore = store.New(store.Config{})
		opts.Trace = telemetry.New(nil, telemetry.WithSink(spanStore))
	}

	if *fuzzN > 0 {
		fr := scenario.Fuzz(*fuzzN, *seed, opts)
		fmt.Fprintln(stdout, fr)
		if fr.Failed() {
			return 1
		}
		return 0
	}

	paths, err := specPaths(*runPath)
	if err != nil {
		fmt.Fprintf(stderr, "vdo-scenario: %v\n", err)
		return 2
	}
	failed := 0
	for _, p := range paths {
		specFile, err := os.Open(p)
		if err != nil {
			fmt.Fprintf(stderr, "vdo-scenario: %v\n", err)
			return 2
		}
		sp, err := scenario.Parse(specFile)
		specFile.Close()
		if err != nil {
			fmt.Fprintf(stderr, "vdo-scenario: %s: %v\n", p, err)
			return 2
		}
		modes := []bool{*push}
		if *both {
			modes = []bool{false, true}
		}
		for _, pushMode := range modes {
			o := opts
			o.Push = pushMode
			res, err := scenario.Run(sp, o)
			if err != nil {
				fmt.Fprintf(stderr, "vdo-scenario: %s: %v\n", p, err)
				return 2
			}
			fmt.Fprint(stdout, res.Report())
			if *verbose {
				for _, line := range res.Schedule {
					fmt.Fprintf(stdout, "    %s\n", line)
				}
			}
			if res.Failed() {
				failed++
			}
		}
		if *both {
			if msg := scenario.Oracle(sp, opts); msg != "" {
				fmt.Fprintf(stdout, "scenario %s: cross-mode DIVERGENCE: %s\n", sp.Name, msg)
				failed++
			} else {
				fmt.Fprintf(stdout, "scenario %s: sweep and push agree on all final verdicts\n", sp.Name)
			}
		}
	}
	fmt.Fprintf(stdout, "%d scenario(s), %d failure(s)\n", len(paths), failed)

	if spanStore != nil {
		opts.Trace.Flush()
		spanStore.Flush()
		name := "host"
		if *push {
			name = "delta" // push-mode flushes root a trace per delta, not per host audit
		}
		res, err := spanStore.Query(fmt.Sprintf("name=%s | slowest %d", name, *slowest))
		if err != nil {
			fmt.Fprintf(stderr, "vdo-scenario: %v\n", err)
			return 2
		}
		fmt.Fprintln(stdout)
		res.WriteText(stdout)
	}
	if failed > 0 {
		return 1
	}
	return 0
}

// specPaths expands one path into the sorted list of spec files it
// names: the file itself, or every *.json immediately under a directory.
func specPaths(path string) ([]string, error) {
	info, err := os.Stat(path)
	if err != nil {
		return nil, err
	}
	if !info.IsDir() {
		return []string{path}, nil
	}
	entries, err := os.ReadDir(path)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".json") {
			out = append(out, filepath.Join(path, e.Name()))
		}
	}
	sort.Strings(out)
	if len(out) == 0 {
		return nil, fmt.Errorf("no *.json scenario specs under %s", path)
	}
	return out, nil
}
