package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"veridevops/internal/automata"
)

func runCapture(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errb bytes.Buffer
	code := run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestFormulaMode(t *testing.T) {
	code, out, _ := runCapture(t, "-formula", "req -->[<=20] ack")
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	for _, want := range []string{"formula:", "req -->[<=20] ack", "desugared:", "A[]", "signals:", "ack req"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestFormulaParseError(t *testing.T) {
	code, _, errb := runCapture(t, "-formula", "((")
	if code != 2 || !strings.Contains(errb, "propas:") {
		t.Errorf("code=%d stderr=%q", code, errb)
	}
}

func TestSentenceMode(t *testing.T) {
	code, out, _ := runCapture(t, "-sentence",
		"Globally, it is always the case that if intrusion holds, then alarm eventually holds within 50 time units.")
	if code != 0 {
		t.Fatalf("exit = %d\n%s", code, out)
	}
	for _, want := range []string{
		"template:  global-response-timed",
		"pattern:   response/globally",
		"formula:   intrusion -->[<=50] alarm",
		"observer:  obs_response_intrusion_alarm",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if code, _, _ := runCapture(t, "-sentence", "gibberish"); code != 2 {
		t.Error("unparseable sentence should exit 2")
	}
}

func TestPatternHolds(t *testing.T) {
	// latency a->c is 2*10=20 on the 4-ring; deadline 20 holds.
	code, out, _ := runCapture(t, "-pattern", "response", "-p", "a", "-s", "c", "-d", "20", "-plant", "4", "-period", "10")
	if code != 0 {
		t.Fatalf("exit = %d\n%s", code, out)
	}
	if !strings.Contains(out, "A[] !err = true") {
		t.Errorf("output:\n%s", out)
	}
}

func TestPatternViolated(t *testing.T) {
	code, out, _ := runCapture(t, "-pattern", "response", "-p", "a", "-s", "c", "-d", "19", "-plant", "4", "-period", "10")
	if code != 1 {
		t.Fatalf("exit = %d\n%s", code, out)
	}
	if !strings.Contains(out, "witness:") {
		t.Errorf("violation without witness:\n%s", out)
	}
}

func TestPatternDiscreteAblation(t *testing.T) {
	code, out, _ := runCapture(t, "-pattern", "response", "-p", "a", "-s", "c", "-d", "20", "-plant", "4", "-discrete")
	if code != 0 {
		t.Fatalf("exit = %d\n%s", code, out)
	}
	if !strings.Contains(out, "A[] !err = true") {
		t.Errorf("output:\n%s", out)
	}
}

func TestModelMode(t *testing.T) {
	plant := automata.CyclicPlant("plant", 3, []string{"a", "b", "c"}, 5)
	net := automata.MustNetwork(plant, automata.AbsenceObserver("zz"))
	p := filepath.Join(t.TempDir(), "net.json")
	f, err := os.Create(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := net.WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	code, out, _ := runCapture(t, "-model", p)
	if code != 0 {
		t.Fatalf("exit = %d\n%s", code, out)
	}
	if !strings.Contains(out, "A[] !err = true") {
		t.Errorf("output:\n%s", out)
	}
}

func TestUppaalExport(t *testing.T) {
	xml := filepath.Join(t.TempDir(), "out.xml")
	code, out, _ := runCapture(t, "-pattern", "response", "-p", "a", "-s", "c", "-d", "20", "-plant", "4", "-uppaal", xml)
	if code != 0 {
		t.Fatalf("exit = %d\n%s", code, out)
	}
	data, err := os.ReadFile(xml)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "<nta>") {
		t.Error("uppaal export missing <nta>")
	}
}

func TestUsageErrors(t *testing.T) {
	if code, _, _ := runCapture(t); code != 2 {
		t.Error("no mode should exit 2")
	}
	if code, _, _ := runCapture(t, "-pattern", "bogus"); code != 2 {
		t.Error("unknown pattern should exit 2")
	}
	if code, _, _ := runCapture(t, "-model", "/nonexistent.json"); code != 2 {
		t.Error("unreadable model should exit 2")
	}
}
