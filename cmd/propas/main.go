// Command propas compiles specification patterns to TCTL and observer
// automata and model-checks them against plant models — the PROPAS
// workflow of VeriDevOps D2.7 in one binary.
//
// Usage:
//
//	propas -formula "req -->[<=20] ack"              (parse + print TCTL)
//	propas -pattern response -p a -s c -d 20 -plant 4 -period 10
//	    (build the observer, compose with an n-location cyclic plant
//	     emitting a,b,c,..., and verify A[] !err)
//	propas -model net.json [-uppaal out.xml]         (verify a network file)
//
// Exit status: 0 property holds, 1 violated, 2 usage error.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"veridevops/internal/automata"
	"veridevops/internal/mc"
	"veridevops/internal/sps"
	"veridevops/internal/tctl"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("propas", flag.ContinueOnError)
	fs.SetOutput(stderr)
	formula := fs.String("formula", "", "TCTL formula to parse and echo")
	sentence := fs.String("sentence", "", "structured-English pattern sentence to formalise")
	pattern := fs.String("pattern", "", "observer pattern: absence|response|precedence|existence|minsep")
	p := fs.String("p", "p", "primary event")
	s := fs.String("s", "s", "secondary event (response/precedence)")
	d := fs.Int64("d", 10, "deadline / separation in time units")
	plantN := fs.Int("plant", 4, "cyclic plant size (locations)")
	period := fs.Int64("period", 10, "plant step period")
	discrete := fs.Bool("discrete", false, "use the discrete-time checker (ablation)")
	modelPath := fs.String("model", "", "verify a network JSON file (A[] !err) instead of building one")
	uppaal := fs.String("uppaal", "", "also export the network as UPPAAL XML to this file")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *formula != "" {
		f, err := tctl.Parse(*formula)
		if err != nil {
			fmt.Fprintf(stderr, "propas: %v\n", err)
			return 2
		}
		fmt.Fprintf(stdout, "formula:    %s\n", f)
		fmt.Fprintf(stdout, "simplified: %s\n", tctl.Simplify(f))
		fmt.Fprintf(stdout, "desugared:  %s\n", tctl.Desugar(f))
		fmt.Fprintf(stdout, "signals:    %v\n", tctl.Props(f))
		return 0
	}

	if *sentence != "" {
		res, err := sps.Parse(*sentence)
		if err != nil {
			fmt.Fprintf(stderr, "propas: %v\n", err)
			return 2
		}
		fmt.Fprintf(stdout, "template:  %s\n", res.Template)
		fmt.Fprintf(stdout, "pattern:   %s/%s\n", res.Pattern.Behaviour, res.Pattern.Scope)
		fmt.Fprintf(stdout, "formula:   %s\n", res.Formula)
		if obs, err := automata.FromPattern(res.Pattern); err == nil {
			fmt.Fprintf(stdout, "observer:  %s\n", obs.Name)
		} else {
			fmt.Fprintf(stdout, "observer:  (not reachability-checkable: %v)\n", err)
		}
		return 0
	}

	var net *automata.Network
	switch {
	case *modelPath != "":
		f, err := os.Open(*modelPath)
		if err != nil {
			fmt.Fprintf(stderr, "propas: %v\n", err)
			return 2
		}
		net, err = automata.ReadJSON(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(stderr, "propas: %v\n", err)
			return 2
		}
	case *pattern != "":
		var obs *automata.Automaton
		switch *pattern {
		case "absence":
			obs = automata.AbsenceObserver(*p)
		case "response":
			obs = automata.ResponseTimedObserver(*p, *s, *d)
		case "precedence":
			obs = automata.PrecedenceObserver(*p, *s)
		case "existence":
			obs = automata.ExistenceBoundedObserver(*p, *d)
		case "minsep":
			obs = automata.MinSeparationObserver(*p, *d)
		default:
			fmt.Fprintf(stderr, "propas: unknown pattern %q\n", *pattern)
			return 2
		}
		labels := make([]string, *plantN)
		for i := range labels {
			labels[i] = fmt.Sprintf("ev%d", i)
		}
		labels[0] = *p
		if *plantN > 2 {
			labels[2] = *s
		}
		plant := automata.CyclicPlant("plant", *plantN, labels, *period)
		var err error
		net, err = automata.NewNetwork(plant, obs)
		if err != nil {
			fmt.Fprintf(stderr, "propas: %v\n", err)
			return 2
		}
		fmt.Fprintf(stdout, "observer:  %s\n", obs.Name)
		fmt.Fprintf(stdout, "plant:     %d locations, period %d\n", *plantN, *period)
	default:
		fmt.Fprintln(stderr, "usage: propas -formula <tctl> | -pattern <name> [flags] | -model net.json")
		return 2
	}

	if *uppaal != "" {
		f, err := os.Create(*uppaal)
		if err != nil {
			fmt.Fprintf(stderr, "propas: %v\n", err)
			return 2
		}
		err = automata.WriteUppaalXML(f, net)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintf(stderr, "propas: %v\n", err)
			return 2
		}
		fmt.Fprintf(stdout, "uppaal:    wrote %s\n", *uppaal)
	}
	return check(stdout, net, *discrete)
}

// check verifies A[] !err and prints the verdict.
func check(stdout io.Writer, net *automata.Network, discrete bool) int {
	var holds bool
	var witness []string
	var stats mc.Stats
	var err error
	if discrete {
		holds, witness, stats, err = mc.NewDiscreteChecker(net).CheckErrorFree()
	} else {
		holds, witness, stats, err = mc.NewChecker(net).CheckErrorFree()
	}
	if err != nil {
		fmt.Fprintf(stdout, "propas: %v\n", err)
		return 2
	}
	fmt.Fprintf(stdout, "verdict:   A[] !err = %v\n", holds)
	fmt.Fprintf(stdout, "explored:  %d states, %d transitions\n", stats.StatesExplored, stats.Transitions)
	if !holds {
		fmt.Fprintf(stdout, "witness:   %v\n", witness)
		return 1
	}
	return 0
}
