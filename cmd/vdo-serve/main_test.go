package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func runCapture(t *testing.T, ctx context.Context, args ...string) (int, string, string) {
	t.Helper()
	var out, errb bytes.Buffer
	code := run(ctx, args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestServeRunsForDuration(t *testing.T) {
	code, out, errb := runCapture(t, context.Background(),
		"-hosts", "100", "-duration", "300ms", "-window", "25ms",
		"-sweep-fallback", "150ms", "-rate", "200", "-shards", "4",
		"-workers", "1", "-seed", "7")
	if code != 0 {
		t.Fatalf("exit = %d\nstdout:\n%s\nstderr:\n%s", code, out, errb)
	}
	for _, want := range []string{
		"vdo-serve: 100 hosts",
		"baseline: compliance",
		"status t=",
		"vdo-serve session: ",
		"flushes / delta evaluations",
		"checks per event",
		"final compliance",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// The streamer keeps the incremental cache stamped, so the fallback
	// sweep must not re-audit (the "0 / N" executed/cached row).
	if !strings.Contains(out, "fallback audits executed / cached  0 /") {
		t.Errorf("fallback sweeps re-audited hosts:\n%s", out)
	}
}

func TestServeStopsOnContextCancel(t *testing.T) {
	// -duration 0 means run until the signal context fires; the test
	// stands in for SIGINT with a deadline.
	ctx, cancel := context.WithTimeout(context.Background(), 250*time.Millisecond)
	defer cancel()
	code, out, _ := runCapture(t, ctx,
		"-hosts", "50", "-window", "20ms", "-sweep-fallback", "0s",
		"-rate", "100", "-shards", "2", "-workers", "1", "-quiet")
	if code != 0 {
		t.Fatalf("exit = %d\n%s", code, out)
	}
	if !strings.Contains(out, "vdo-serve session: ") {
		t.Errorf("no shutdown summary after cancellation:\n%s", out)
	}
	if strings.Contains(out, "ALARM") || strings.Contains(out, "status t=") {
		t.Errorf("-quiet still printed live lines:\n%s", out)
	}
}

func TestServeMetricsAndTopology(t *testing.T) {
	path := filepath.Join(t.TempDir(), "top.json")
	spec := `{"classes": [{"name": "tiny", "weight": 1}], "mix": {"config_edit": 1}}`
	if err := os.WriteFile(path, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	code, out, errb := runCapture(t, context.Background(),
		"-topology", path, "-hosts", "20", "-duration", "150ms",
		"-window", "25ms", "-rate", "50", "-shards", "2", "-workers", "1",
		"-metrics", "-quiet")
	if code != 0 {
		t.Fatalf("exit = %d\nstdout:\n%s\nstderr:\n%s", code, out, errb)
	}
	if !strings.Contains(out, "stream.flushes") {
		t.Errorf("metrics table missing stream.* entries:\n%s", out)
	}
}

func TestServeUsageErrors(t *testing.T) {
	for name, args := range map[string][]string{
		"bad flag":       {"-definitely-not-a-flag"},
		"zero hosts":     {"-hosts", "0"},
		"zero rate":      {"-rate", "0"},
		"zero window":    {"-window", "0s"},
		"negative sweep": {"-sweep-fallback", "-1s"},
		"missing topo":   {"-topology", filepath.Join(t.TempDir(), "absent.json")},
	} {
		if code, _, _ := runCapture(t, context.Background(), args...); code != 2 {
			t.Errorf("%s: exit = %d, want 2", name, code)
		}
	}
}
