// Command vdo-serve is the streaming compliance daemon: it synthesizes
// a fleet, subscribes a fleet.Streamer to every host's event log, and
// keeps a live compliance view while seeded churn mutates the fleet in
// real time. Every -window the streamer flushes — coalescing the state
// keys dirtied since the last flush and re-running only the checks the
// dependency index maps to them — and every -sweep-fallback a full
// incremental sweep runs as the safety net for state the index cannot
// localise (all cache replays when the index is healthy). Violation
// episodes print as ALARM/REPAIR lines as they open and close.
//
// Unlike vdo-load, which replays on a virtual clock for reproducible
// latency measurement, vdo-serve runs on the real clock: it is the
// long-running deployment shape of the same evaluator. SIGINT/SIGTERM
// (or -duration elapsing) drains a final flush and prints the session
// summary before exiting.
//
// Usage:
//
//	vdo-serve [-hosts N] [-topology PATH] [-rate EV_PER_SEC] [-burst N]
//	          [-window D] [-sweep-fallback D] [-duration D] [-shards N]
//	          [-workers N] [-seed N] [-quiet] [-metrics] [-slowest N]
//
// -duration 0 runs until a signal arrives. Exit status: 0 clean
// shutdown, 2 usage or I/O error.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"veridevops/internal/core"
	"veridevops/internal/fleet"
	"veridevops/internal/loadgen"
	"veridevops/internal/report"
	"veridevops/internal/telemetry"
	"veridevops/internal/telemetry/store"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("vdo-serve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	hosts := fs.Int("hosts", 1000, "synthesized fleet size")
	topoPath := fs.String("topology", "", "topology spec JSON (default: built-in three-tier spec)")
	rate := fs.Float64("rate", 100, "offered churn load, events per second")
	burst := fs.Int("burst", 16, "token-bucket burst capacity")
	window := fs.Duration("window", 50*time.Millisecond, "dirty-key coalescing window between flushes")
	sweepFallback := fs.Duration("sweep-fallback", 500*time.Millisecond, "interval between fallback sweeps (0 disables)")
	duration := fs.Duration("duration", 0, "stop after this long (0: run until SIGINT/SIGTERM)")
	shards := fs.Int("shards", 8, "dirty hosts evaluated concurrently per flush")
	workers := fs.Int("workers", 2, "engine workers per catalogue run inside a shard")
	seed := fs.Int64("seed", 1, "seed for synthesis and churn")
	quiet := fs.Bool("quiet", false, "suppress ALARM/REPAIR and status lines; summary only")
	showMetrics := fs.Bool("metrics", false, "print the telemetry metrics registry in the summary")
	slowest := fs.Int("slowest", 0, "keep spans in the trace store and print the N slowest delta evaluations in the summary")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *hosts < 1 || *rate <= 0 || *window <= 0 || *duration < 0 || *sweepFallback < 0 {
		fmt.Fprintln(stderr, "vdo-serve: -hosts must be >= 1, -rate/-window positive, -duration/-sweep-fallback non-negative")
		return 2
	}

	top := loadgen.DefaultTopology()
	if *topoPath != "" {
		f, err := os.Open(*topoPath)
		if err != nil {
			fmt.Fprintf(stderr, "vdo-serve: %v\n", err)
			return 2
		}
		top, err = loadgen.ParseTopology(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(stderr, "vdo-serve: %v\n", err)
			return 2
		}
	}

	f, err := loadgen.Synthesize(top, *hosts, *seed)
	if err != nil {
		fmt.Fprintf(stderr, "vdo-serve: %v\n", err)
		return 2
	}
	churn := loadgen.NewChurn(f, top.Mix, *seed+1)
	bucket, err := loadgen.NewTokenBucket(*rate, *burst)
	if err != nil {
		fmt.Fprintf(stderr, "vdo-serve: %v\n", err)
		return 2
	}

	var mets *telemetry.Metrics
	if *showMetrics {
		mets = telemetry.NewMetrics()
	}
	var spanStore *store.Store
	var tracer *telemetry.Tracer
	if *slowest > 0 {
		// Bound the resident window so a long-lived daemon keeps only the
		// recent past: error traces always survive tail sampling, healthy
		// deltas 1 in 4.
		spanStore = store.New(store.Config{TailKeepOK1In: 4})
		tracer = telemetry.New(nil, telemetry.WithSink(spanStore))
	}
	coord := fleet.NewCoordinator()
	s := fleet.NewStreamer(coord, fleet.StreamOptions{
		Mode:    core.CheckOnly,
		Shards:  *shards,
		Workers: *workers,
		Dedup:   true,
		Metrics: mets,
		Trace:   tracer,
	})
	for _, h := range f.Hosts() {
		s.Watch(h.Target(), h.Linux.Log())
	}
	sweepOpts := fleet.Options{
		Mode:        core.CheckOnly,
		Shards:      *shards,
		Workers:     *workers,
		Incremental: true,
		Dedup:       true,
		Metrics:     mets,
	}

	if *duration > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *duration)
		defer cancel()
	}

	fmt.Fprintf(stdout, "vdo-serve: %d hosts, window %v, fallback %v, %.0f ev/s (seed %d)\n",
		*hosts, *window, *sweepFallback, *rate, *seed)
	s.Flush(0) // prime the verdict baseline before churn starts
	if !*quiet {
		p, fl, inc := s.Counts()
		fmt.Fprintf(stdout, "baseline: compliance %.4f (%d pass / %d fail / %d incomplete)\n",
			s.Compliance(), p, fl, inc)
	}
	// Steady-state counters start after priming: the baseline's
	// whole-catalogue runs would otherwise swamp checks-per-event.
	primed := s.Stats()

	// The daemon is the deployment shape of the evaluator: its cadence
	// is wall-clock by design (virtual time lives in the loadgen
	// driver), so the raw tickers are legitimate here.
	//
	//lint:ignore clockuse the serve loop is driven by the real clock; determinism is the loadgen driver's job
	tick := time.NewTicker(*window)
	defer tick.Stop()
	var fallbackC <-chan time.Time
	if *sweepFallback > 0 {
		//lint:ignore clockuse fallback sweeps are wall-clock scheduled alongside the flush ticker
		fb := time.NewTicker(*sweepFallback)
		defer fb.Stop()
		fallbackC = fb.C
	}

	var (
		start    = time.Now()
		admitted time.Duration // last churn admission instant
		events   int
		skipped  int
		sweeps   int
		replays  int
		reaudits int
	)
	admit := func(elapsed time.Duration) {
		for {
			at := bucket.When(admitted)
			if at > elapsed {
				return
			}
			bucket.Take(at)
			admitted = at
			ev, ok := churn.Step()
			if !ok {
				skipped++
				continue
			}
			events++
			switch ev.Kind {
			case loadgen.HostJoin:
				if h, ok := f.Get(ev.Host); ok {
					s.Watch(h.Target(), h.Linux.Log())
				}
			case loadgen.HostLeave:
				s.Unwatch(ev.Host)
			}
		}
	}
	flush := func(elapsed time.Duration) {
		fr := s.Flush(elapsed)
		if *quiet {
			return
		}
		for _, a := range fr.Alarms {
			fmt.Fprintf(stdout, "ALARM  t=%-8v %s %s %v\n", a.At.Round(time.Millisecond), a.Host, a.Finding, a.Status)
		}
		if fr.Repairs > 0 {
			fmt.Fprintf(stdout, "REPAIR t=%-8v %d episode(s) closed\n", fr.At.Round(time.Millisecond), fr.Repairs)
		}
	}

	for done := false; !done; {
		select {
		case <-ctx.Done():
			done = true
		case now := <-tick.C:
			elapsed := now.Sub(start)
			admit(elapsed)
			flush(elapsed)
		case <-fallbackC:
			_, st := coord.Sweep(f.Targets(), sweepOpts)
			sweeps++
			replays += st.CachedHosts
			reaudits += st.Hosts - st.CachedHosts
			if !*quiet {
				p, fl, inc := s.Counts()
				fmt.Fprintf(stdout, "status t=%-8v hosts=%d compliance=%.4f (%d/%d/%d) cached=%d/%d\n",
					time.Since(start).Round(time.Millisecond), s.Hosts(),
					s.Compliance(), p, fl, inc, st.CachedHosts, st.Hosts)
			}
		}
	}

	// Drain: one final flush so nothing dirty is dropped on shutdown.
	flush(time.Since(start))
	writeSummary(stdout, s, f, primed, time.Since(start), events, skipped, sweeps, replays, reaudits)
	if mets != nil {
		fmt.Fprintln(stdout)
		mets.Table("metrics").WriteText(stdout)
	}
	if spanStore != nil {
		tracer.Flush()
		spanStore.Flush()
		res, err := spanStore.Query(fmt.Sprintf("name=delta | slowest %d", *slowest))
		if err != nil {
			fmt.Fprintf(stderr, "vdo-serve: %v\n", err)
			return 2
		}
		fmt.Fprintln(stdout)
		res.WriteText(stdout)
	}
	return 0
}

// writeSummary prints the end-of-session roll-up: uptime, churn volume,
// streaming counters (steady-state: the priming baseline in primed is
// subtracted out) and the final live compliance view.
func writeSummary(w io.Writer, s *fleet.Streamer, f *loadgen.Fleet, primed fleet.StreamStats,
	uptime time.Duration, events, skipped, sweeps, replays, reaudits int) {
	st := s.Stats()
	st.Flushes -= primed.Flushes
	st.Events -= primed.Events
	st.DeltaHosts -= primed.DeltaHosts
	st.FullAudits -= primed.FullAudits
	st.ChecksEvaluated -= primed.ChecksEvaluated
	st.ChecksExecuted -= primed.ChecksExecuted
	pass, fail, incomplete := s.Counts()
	t := report.New(fmt.Sprintf("vdo-serve session: %d hosts, uptime %v",
		s.Hosts(), uptime.Round(time.Millisecond)),
		"measure", "value")
	t.AddRow("churn events applied / skipped", fmt.Sprintf("%d / %d", events, skipped))
	t.AddRow("flushes / delta evaluations", fmt.Sprintf("%d / %d", st.Flushes, st.DeltaHosts))
	t.AddRow("events consumed / full audits", fmt.Sprintf("%d / %d", st.Events, st.FullAudits))
	t.AddRow("checks evaluated / executed", fmt.Sprintf("%d / %d", st.ChecksEvaluated, st.ChecksExecuted))
	if st.Events > 0 {
		t.AddRow("checks per event", fmt.Sprintf("%.2f", float64(st.ChecksEvaluated)/float64(st.Events)))
	}
	t.AddRow("alarms / repairs", fmt.Sprintf("%d / %d", st.Alarms, st.Repairs))
	// The localization gauges are a property of the watched catalogues,
	// not of the session's churn, so the priming baseline is not
	// subtracted from them.
	t.AddRow("read localization", fmt.Sprintf("%s (%d indexed / %d unindexed checks)",
		report.Percent(st.ReadLocalization()), st.IndexedChecks, st.UnindexedChecks))
	t.AddRow("fallback sweeps", sweeps)
	t.AddRow("fallback audits executed / cached", fmt.Sprintf("%d / %d", reaudits, replays))
	t.AddRow("final compliance", fmt.Sprintf("%.4f (%d pass / %d fail / %d incomplete)",
		s.Compliance(), pass, fail, incomplete))
	t.AddRow("fleet size / down", fmt.Sprintf("%d / %d", f.Size(), f.DownCount()))
	t.WriteText(w)
}
