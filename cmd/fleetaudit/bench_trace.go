// Trace-store benchmark (-bench-trace): how fast the embeddable trace
// backend ingests spans, what its query layer costs over a full ring,
// and what attaching it as the tracer's sink adds to a real sweep.
//
// Three row families land in BENCH_trace.json:
//
//   - ingest: spans pushed straight through Store.Offer in 8-span
//     traces, at default sampling and with 1-in-8 OK tail sampling;
//     plus the tracer end-to-end path (pooled spans -> collector ->
//     sink) with the pooling-off and single-collector ablations.
//   - query: p50/p99 latency of the canonical query shapes (name
//     filter, outcome filter, p99 by tag, trace reconstruction) over
//     a ring filled to capacity.
//   - overhead: best-of-3 four-shard sweep wall, telemetry off versus
//     tracer+store sink on.
package main

import (
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"veridevops/internal/fleet"
	"veridevops/internal/report"
	"veridevops/internal/telemetry"
	"veridevops/internal/telemetry/store"
)

// fillStore pushes n spans into st as 8-span traces (one root plus
// seven checks, every 257th check FAIL) and returns the wall time.
func fillStore(st *store.Store, n int) time.Duration {
	const perTrace = 8
	hosts := [...]string{"web-0", "web-1", "web-2", "db-0", "db-1", "cache-0"}
	t0 := time.Now()
	var id uint64
	for off := 0; off < n; off += perTrace {
		root := id + perTrace // root ends last, so buffer children first
		trace := root
		for j := 0; j < perTrace-1; j++ {
			id++
			status := "PASS"
			if id%257 == 0 {
				status = "FAIL"
			}
			st.Offer(telemetry.SpanData{
				ID: id, Parent: root, Trace: trace, Name: "check",
				Start: time.Unix(0, int64(id)*1000), Dur: time.Duration(100+id%900) * time.Microsecond,
				Tags: []string{"host", hosts[(id/perTrace)%uint64(len(hosts))], "status", status},
			})
		}
		id++
		st.Offer(telemetry.SpanData{
			ID: id, Parent: 0, Trace: trace, Name: "host",
			Start: time.Unix(0, int64(id)*1000), Dur: time.Duration(1000+id%900) * time.Microsecond,
			Tags:  []string{"host", hosts[(id/perTrace)%uint64(len(hosts))]},
		})
	}
	return time.Since(t0)
}

// benchTracerIngest drives spans through the real Tracer (pool ->
// collector -> sink) into a store and returns spans/sec wall time.
func benchTracerIngest(n int, opts ...telemetry.Option) (time.Duration, *store.Store) {
	st := store.New(store.Config{})
	opts = append(opts, telemetry.WithSink(st))
	tr := telemetry.New(nil, opts...)
	const perTrace = 8
	t0 := time.Now()
	for off := 0; off < n; off += perTrace {
		root := tr.Root("host").Tag("host", "web-0")
		for j := 0; j < perTrace-1; j++ {
			root.Child("check").Tag("status", "PASS").End()
		}
		root.End()
	}
	wall := time.Since(t0)
	st.Flush()
	return wall, st
}

func perSec(n int, wall time.Duration) string {
	if wall <= 0 {
		return "-"
	}
	return fmt.Sprintf("%.2fM", float64(n)/wall.Seconds()/1e6)
}

func runBenchTrace(stdout, stderr io.Writer, seed int64, out, commit string) int {
	const (
		nSpans    = 1 << 20 // ingest workload: 1Mi spans in 8-span traces
		queryIter = 200     // per cheap query; trace reconstruction runs fewer
	)

	t := report.New("trace store: ingestion throughput, query latency over a full ring, sweep overhead",
		"scenario", "spans", "wall-ms", "spans-per-sec-M", "p50-us", "p99-us")
	t.Meta = report.Provenance(commit)

	// Overhead is measured first, before the multi-million-span ingest
	// workloads grow the heap: the sweep under test is ~8ms of mostly
	// sleep, and GC cycles paced by a bloated heap would swamp it. The
	// rows themselves land at the bottom of the table.
	const nHosts = 16
	mkFleet := func() []fleet.Target {
		targets, _ := fleet.LinuxFleet(nHosts)
		for i := range targets {
			targets[i] = fleet.WithProbeDelay(targets[i], 100*time.Microsecond)
		}
		return targets
	}
	var offWall, onWall time.Duration
	var sweepSpans int
	for run := 0; run < 3; run++ {
		_, st := fleet.Sweep(mkFleet(), fleet.Options{Shards: 4, Workers: 4})
		if run == 0 || st.Wall < offWall {
			offWall = st.Wall
		}
		// A sweep emits a few hundred spans; a right-sized ring keeps the
		// store's preallocation from dwarfing the sweep under test.
		sink := store.New(store.Config{Capacity: 1 << 14})
		tr := telemetry.New(nil, telemetry.WithSink(sink))
		_, st = fleet.Sweep(mkFleet(), fleet.Options{Shards: 4, Workers: 4, Trace: tr})
		tr.Flush()
		sink.Flush()
		sweepSpans = sink.Resident()
		if run == 0 || st.Wall < onWall {
			onWall = st.Wall
		}
	}

	// Ingestion: straight through Offer, default sampling then 1-in-8
	// OK tail sampling (error traces always kept).
	for _, row := range []struct {
		name string
		cfg  store.Config
	}{
		{"ingest: Offer, defaults", store.Config{}},
		{"ingest: Offer, tail-sample 1/8 OK", store.Config{TailKeepOK1In: 8}},
	} {
		st := store.New(row.cfg)
		wall := fillStore(st, nSpans)
		st.Flush()
		t.AddRow(row.name, nSpans, report.Millis(wall), perSec(nSpans, wall), "-", "-")
	}

	// Tracer end-to-end: the pooled hot path, then the two ablations
	// that motivated it.
	for _, row := range []struct {
		name string
		opts []telemetry.Option
	}{
		{"ingest: tracer+sink, pooled, 8 collectors", nil},
		{"ingest: tracer+sink, pooling off", []telemetry.Option{telemetry.WithPooling(false)}},
		{"ingest: tracer+sink, 1 collector", []telemetry.Option{telemetry.WithCollectors(1)}},
	} {
		wall, _ := benchTracerIngest(nSpans, row.opts...)
		t.AddRow(row.name, nSpans, report.Millis(wall), perSec(nSpans, wall), "-", "-")
	}

	// Query latency over a ring filled to capacity. The ingest rows
	// above left megabytes of dead stores behind; collect them now so
	// GC assists don't land inside the timed iterations.
	full := store.New(store.Config{})
	fillStore(full, 1<<21) // overfill so the ring wraps and sits at capacity
	full.Flush()
	resident := full.Resident()
	runtime.GC()
	for _, q := range []struct {
		name, expr string
		iters      int
	}{
		{"query: name filter, slowest 5", "name=host | slowest 5", queryIter},
		{"query: outcome filter, slowest 5", "outcome=fail | slowest 5", queryIter},
		{"query: p99 by host", "name=check | p99 by host", queryIter / 4},
		{"query: trace reconstruction", "| traces 5", queryIter / 10},
	} {
		if _, err := full.Query(q.expr); err != nil { // warm the path untimed
			fmt.Fprintf(stderr, "fleetaudit: %v\n", err)
			return 2
		}
		lat := telemetry.NewQuantiles()
		for i := 0; i < q.iters; i++ {
			t0 := time.Now()
			if _, err := full.Query(q.expr); err != nil {
				fmt.Fprintf(stderr, "fleetaudit: %v\n", err)
				return 2
			}
			lat.Observe(time.Since(t0))
		}
		qs := lat.Snapshot()
		t.AddRow(q.name, resident, "-", "-",
			fmt.Sprintf("%.0f", float64(qs.P50.Nanoseconds())/1e3),
			fmt.Sprintf("%.0f", float64(qs.P99.Nanoseconds())/1e3))
	}

	// Overhead rows: the 4-shard sweep with the store attached as the
	// tracer's sink, against the untraced baseline (measured up top).
	t.AddRow("overhead: 4-shard sweep, telemetry off", 0, report.Millis(offWall), "-", "-", "-")
	t.AddRow("overhead: 4-shard sweep, tracer+store sink", sweepSpans, report.Millis(onWall), "-", "-", "-")

	t.Note = fmt.Sprintf(
		"seed %d; ingest pushes %d spans as 8-span traces; queries run against %d resident spans (ring at capacity); sweep overhead vs off %s, best of 3",
		seed, nSpans, resident, report.Percent(float64(onWall-offWall)/float64(offWall)))

	t.WriteText(stdout)
	f, err := os.Create(out)
	if err != nil {
		fmt.Fprintf(stderr, "fleetaudit: %v\n", err)
		return 2
	}
	defer f.Close()
	if err := t.WriteJSON(f); err != nil {
		fmt.Fprintf(stderr, "fleetaudit: %v\n", err)
		return 2
	}
	fmt.Fprintf(stdout, "wrote %s\n", out)
	return 0
}
