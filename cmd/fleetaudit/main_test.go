package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"veridevops/internal/report"
)

func runCapture(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errb bytes.Buffer
	code := run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestCleanFleetIsCompliant(t *testing.T) {
	code, out, _ := runCapture(t, "-hosts", "4", "-shards", "2", "-drift", "0")
	if code != 0 {
		t.Fatalf("exit = %d\n%s", code, out)
	}
	if !strings.Contains(out, "fleet compliant: 32 requirements pass on 4 hosts") {
		t.Errorf("missing compliance line:\n%s", out)
	}
}

func TestDriftedFleetExitsNonZero(t *testing.T) {
	code, out, _ := runCapture(t, "-hosts", "4", "-shards", "2", "-drift", "2", "-seed", "3")
	if code != 1 {
		t.Fatalf("exit = %d\n%s", code, out)
	}
	if !strings.Contains(out, "fleet non-compliant") {
		t.Errorf("missing non-compliance line:\n%s", out)
	}
}

func TestEnforceRemediatesDrift(t *testing.T) {
	code, out, _ := runCapture(t, "-hosts", "4", "-shards", "2", "-drift", "3", "-enforce")
	if code != 0 {
		t.Fatalf("enforced fleet must end compliant, exit = %d\n%s", code, out)
	}
}

func TestUnreachableHostDegrades(t *testing.T) {
	code, out, _ := runCapture(t, "-hosts", "4", "-shards", "2", "-drift", "0", "-down", "1")
	if code != 1 {
		t.Fatalf("exit = %d\n%s", code, out)
	}
	if !strings.Contains(out, "true") || !strings.Contains(out, "degraded") {
		t.Errorf("degraded host not visible:\n%s", out)
	}
}

func TestIncrementalReSweepShowsCacheHits(t *testing.T) {
	code, out, _ := runCapture(t, "-hosts", "8", "-shards", "4", "-drift", "0", "-incremental", "-telemetry")
	if code != 1 { // the injected drift leaves a violation open
		t.Fatalf("exit = %d\n%s", code, out)
	}
	if !strings.Contains(out, "incremental re-sweep") {
		t.Fatalf("missing incremental section:\n%s", out)
	}
	if !strings.Contains(out, "7 hosts cached") {
		t.Errorf("expected 7 cached hosts in summary:\n%s", out)
	}
	if !strings.Contains(out, "shards") || !strings.Contains(out, "wall-ms") {
		t.Errorf("telemetry tables missing:\n%s", out)
	}
}

func TestFaultInjectionWithRetriesStillCompletes(t *testing.T) {
	code, out, _ := runCapture(t, "-hosts", "4", "-shards", "2", "-drift", "0", "-faults", "-retries", "6")
	// Retries recover transients; rare residual panics may leave errors,
	// but every requirement must have a verdict either way.
	if code != 0 && code != 1 {
		t.Fatalf("exit = %d\n%s", code, out)
	}
	if !strings.Contains(out, "32 requirements") {
		t.Errorf("audit did not cover the whole fleet:\n%s", out)
	}
}

func TestBenchWritesJSON(t *testing.T) {
	p := filepath.Join(t.TempDir(), "BENCH_fleet.json")
	code, out, _ := runCapture(t, "-bench", "-o", p)
	if code != 0 {
		t.Fatalf("exit = %d\n%s", code, out)
	}
	data, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	var tbl report.Table
	if err := json.Unmarshal(data, &tbl); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(tbl.Rows) != 5 {
		t.Errorf("rows = %d, want 5 scenarios", len(tbl.Rows))
	}
	if !strings.Contains(tbl.Rows[0][0], "sequential") {
		t.Errorf("first row must be the sequential baseline: %v", tbl.Rows[0])
	}
}

func TestUsageErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-hosts", "0"},
		{"-drift", "9", "-hosts", "4"},
		{"-down", "9", "-hosts", "4"},
		{"-retries", "0"},
		{"-nonsense"},
	} {
		if code, _, _ := runCapture(t, args...); code != 2 {
			t.Errorf("args %v: exit = %d, want 2", args, code)
		}
	}
}
