package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"veridevops/internal/report"
)

func runCapture(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errb bytes.Buffer
	code := run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestCleanFleetIsCompliant(t *testing.T) {
	code, out, _ := runCapture(t, "-hosts", "4", "-shards", "2", "-drift", "0")
	if code != 0 {
		t.Fatalf("exit = %d\n%s", code, out)
	}
	if !strings.Contains(out, "fleet compliant: 32 requirements pass on 4 hosts") {
		t.Errorf("missing compliance line:\n%s", out)
	}
}

func TestDriftedFleetExitsNonZero(t *testing.T) {
	code, out, _ := runCapture(t, "-hosts", "4", "-shards", "2", "-drift", "2", "-seed", "3")
	if code != 1 {
		t.Fatalf("exit = %d\n%s", code, out)
	}
	if !strings.Contains(out, "fleet non-compliant") {
		t.Errorf("missing non-compliance line:\n%s", out)
	}
}

func TestEnforceRemediatesDrift(t *testing.T) {
	code, out, _ := runCapture(t, "-hosts", "4", "-shards", "2", "-drift", "3", "-enforce")
	if code != 0 {
		t.Fatalf("enforced fleet must end compliant, exit = %d\n%s", code, out)
	}
}

func TestUnreachableHostDegrades(t *testing.T) {
	code, out, _ := runCapture(t, "-hosts", "4", "-shards", "2", "-drift", "0", "-down", "1")
	if code != 1 {
		t.Fatalf("exit = %d\n%s", code, out)
	}
	if !strings.Contains(out, "true") || !strings.Contains(out, "degraded") {
		t.Errorf("degraded host not visible:\n%s", out)
	}
}

func TestIncrementalReSweepShowsCacheHits(t *testing.T) {
	code, out, _ := runCapture(t, "-hosts", "8", "-shards", "4", "-drift", "0", "-incremental", "-telemetry")
	if code != 1 { // the injected drift leaves a violation open
		t.Fatalf("exit = %d\n%s", code, out)
	}
	if !strings.Contains(out, "incremental re-sweep") {
		t.Fatalf("missing incremental section:\n%s", out)
	}
	if !strings.Contains(out, "7 hosts cached") {
		t.Errorf("expected 7 cached hosts in summary:\n%s", out)
	}
	if !strings.Contains(out, "shards") || !strings.Contains(out, "wall-ms") {
		t.Errorf("telemetry tables missing:\n%s", out)
	}
}

func TestFaultInjectionWithRetriesStillCompletes(t *testing.T) {
	code, out, _ := runCapture(t, "-hosts", "4", "-shards", "2", "-drift", "0", "-faults", "-retries", "6")
	// Retries recover transients; rare residual panics may leave errors,
	// but every requirement must have a verdict either way.
	if code != 0 && code != 1 {
		t.Fatalf("exit = %d\n%s", code, out)
	}
	if !strings.Contains(out, "32 requirements") {
		t.Errorf("audit did not cover the whole fleet:\n%s", out)
	}
}

func TestBenchWritesJSON(t *testing.T) {
	p := filepath.Join(t.TempDir(), "BENCH_fleet.json")
	code, out, _ := runCapture(t, "-bench", "-o", p, "-commit", "deadbeef")
	if code != 0 {
		t.Fatalf("exit = %d\n%s", code, out)
	}
	data, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	var tbl report.Table
	if err := json.Unmarshal(data, &tbl); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(tbl.Rows) != 10 {
		t.Errorf("rows = %d, want 10 scenarios", len(tbl.Rows))
	}
	if !strings.Contains(tbl.Rows[0][0], "sequential") {
		t.Errorf("first row must be the sequential baseline: %v", tbl.Rows[0])
	}
	var scenarios []string
	for _, row := range tbl.Rows {
		scenarios = append(scenarios, row[0])
	}
	joined := strings.Join(scenarios, "\n")
	for _, want := range []string{"work-stealing", "static affinity", "dedup on", "dedup off", "restart-resume"} {
		if !strings.Contains(joined, want) {
			t.Errorf("bench matrix missing the %q scenario:\n%s", want, joined)
		}
	}
	// Provenance travels with the record.
	for _, key := range []string{"goos", "goarch", "cpus", "commit"} {
		if tbl.Meta[key] == "" {
			t.Errorf("bench meta missing %q: %v", key, tbl.Meta)
		}
	}
	if tbl.Meta["commit"] != "deadbeef" {
		t.Errorf("commit = %q, want the -commit override", tbl.Meta["commit"])
	}
}

func TestCacheFilePersistsAcrossInvocations(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.json")
	// First invocation: cold start, saves the cache.
	code, out, _ := runCapture(t, "-hosts", "6", "-shards", "3", "-drift", "0", "-cache-file", path)
	if code != 0 {
		t.Fatalf("exit = %d\n%s", code, out)
	}
	if !strings.Contains(out, "starting cold") || !strings.Contains(out, "saved 6 cached hosts") {
		t.Errorf("first run must start cold and save:\n%s", out)
	}
	// Second invocation resumes: every host replays from the file.
	code, out, _ = runCapture(t, "-hosts", "6", "-shards", "3", "-drift", "0", "-cache-file", path)
	if code != 0 {
		t.Fatalf("exit = %d\n%s", code, out)
	}
	if !strings.Contains(out, "resumed 6 cached hosts") {
		t.Errorf("second run must resume from the cache file:\n%s", out)
	}
	if !strings.Contains(out, "6 hosts cached, hit rate 100%") {
		t.Errorf("resumed sweep must be all cache hits:\n%s", out)
	}
}

func TestCorruptCacheFileFallsBackCold(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.json")
	if err := os.WriteFile(path, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	code, out, errOut := runCapture(t, "-hosts", "4", "-shards", "2", "-drift", "0", "-cache-file", path)
	if code != 0 {
		t.Fatalf("exit = %d\n%s", code, out)
	}
	if !strings.Contains(errOut, "cache discarded") {
		t.Errorf("corrupt cache must be reported:\n%s", errOut)
	}
	if !strings.Contains(out, "saved 4 cached hosts") {
		t.Errorf("cold fallback must still audit and re-save:\n%s", out)
	}
}

func TestDedupFlagReportsDedupTraffic(t *testing.T) {
	code, out, _ := runCapture(t, "-hosts", "8", "-shards", "4", "-drift", "0", "-dedup")
	if code != 0 {
		t.Fatalf("exit = %d\n%s", code, out)
	}
	if !strings.Contains(out, "dedup 88%") {
		t.Errorf("8 identical hosts must dedup 7/8 of checks:\n%s", out)
	}
}

func TestSchedFlagValidated(t *testing.T) {
	if code, _, _ := runCapture(t, "-sched", "nonsense"); code != 2 {
		t.Error("invalid -sched must be a usage error")
	}
	code, out, _ := runCapture(t, "-hosts", "4", "-shards", "2", "-drift", "0", "-sched", "static")
	if code != 0 {
		t.Fatalf("static scheduling run failed: %d\n%s", code, out)
	}
}

func TestProfilesWritten(t *testing.T) {
	dir := t.TempDir()
	cpu, mem := filepath.Join(dir, "cpu.pprof"), filepath.Join(dir, "mem.pprof")
	code, out, _ := runCapture(t, "-hosts", "4", "-shards", "2", "-drift", "0",
		"-cpuprofile", cpu, "-memprofile", mem)
	if code != 0 {
		t.Fatalf("exit = %d\n%s", code, out)
	}
	for _, p := range []string{cpu, mem} {
		if fi, err := os.Stat(p); err != nil || fi.Size() == 0 {
			t.Errorf("profile %s missing or empty (err=%v)", p, err)
		}
	}
}

func TestUsageErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-hosts", "0"},
		{"-drift", "9", "-hosts", "4"},
		{"-down", "9", "-hosts", "4"},
		{"-retries", "0"},
		{"-nonsense"},
	} {
		if code, _, _ := runCapture(t, args...); code != 2 {
			t.Errorf("args %v: exit = %d, want 2", args, code)
		}
	}
}
