package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"veridevops/internal/telemetry"
)

// TestTraceFlagEmitsFullSpanTree: -trace must write parseable JSONL whose
// reassembled tree covers all five levels — sweep, shard, host, check,
// attempt — for every host in the fleet.
func TestTraceFlagEmitsFullSpanTree(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	code, out, errb := runCapture(t, "-hosts", "4", "-shards", "2", "-drift", "0", "-trace", path)
	if code != 0 {
		t.Fatalf("exit = %d\nstdout:\n%s\nstderr:\n%s", code, out, errb)
	}
	if !strings.Contains(out, "wrote span trace to "+path) {
		t.Errorf("missing trace confirmation:\n%s", out)
	}
	if !strings.Contains(out, "where the time went") {
		t.Errorf("missing span breakdown table:\n%s", out)
	}

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	recs, err := telemetry.ReadJSONL(f)
	if err != nil {
		t.Fatalf("trace file is not valid JSONL: %v", err)
	}
	roots := telemetry.BuildTree(recs)
	if len(roots) != 1 || roots[0].Name != "sweep" {
		t.Fatalf("roots = %+v, want one sweep span", roots)
	}
	counts := map[string]int{}
	roots[0].Walk(func(n *telemetry.Node) { counts[n.Name]++ })
	for _, level := range []string{"sweep", "shard", "host", "check", "attempt"} {
		if counts[level] == 0 {
			t.Errorf("no %q spans in trace (counts: %v)", level, counts)
		}
	}
	if counts["host"] != 4 {
		t.Errorf("host spans = %d, want 4", counts["host"])
	}
	if counts["check"] != 32 {
		t.Errorf("check spans = %d, want 32 (4 hosts x 8 requirements)", counts["check"])
	}
}

// TestMetricsFlagPrintsRegistry: bare -metrics collects through an
// aggregate-only tracer and prints both the span and metric tables.
func TestMetricsFlagPrintsRegistry(t *testing.T) {
	code, out, _ := runCapture(t, "-hosts", "4", "-shards", "2", "-drift", "0", "-metrics")
	if code != 0 {
		t.Fatalf("exit = %d\n%s", code, out)
	}
	for _, want := range []string{"where the time went", "== metrics ==", "engine.checks", "fleet.sweep_wall", "fleet.utilization"} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "NaN") || strings.Contains(out, "Inf") {
		t.Errorf("metrics output leaks non-finite values:\n%s", out)
	}
}

// TestTracedIncrementalSweepStaysFinite: the fully-cached shape through
// the real CLI — prime via -cache-file, re-run 100% cached with tracing
// and metrics on — must render finite stats.
func TestTracedIncrementalSweepStaysFinite(t *testing.T) {
	cache := filepath.Join(t.TempDir(), "cache.json")
	code, _, _ := runCapture(t, "-hosts", "4", "-shards", "2", "-drift", "0", "-cache-file", cache)
	if code != 0 {
		t.Fatalf("prime exit = %d", code)
	}
	code, out, errb := runCapture(t, "-hosts", "4", "-shards", "2", "-drift", "0",
		"-cache-file", cache, "-metrics", "-telemetry")
	if code != 0 {
		t.Fatalf("cached exit = %d\nstdout:\n%s\nstderr:\n%s", code, out, errb)
	}
	if !strings.Contains(out, "resumed 4 cached hosts") {
		t.Fatalf("sweep did not resume from cache:\n%s", out)
	}
	if strings.Contains(out, "NaN") || strings.Contains(out, "Inf") {
		t.Errorf("fully-cached traced sweep leaks non-finite values:\n%s", out)
	}
}

// TestBenchTelemetryWritesJSON: -bench-telemetry writes a valid JSON
// table with provenance metadata to its own default output file.
func TestBenchTelemetryWritesJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("bench matrix in -short mode")
	}
	out := filepath.Join(t.TempDir(), "BENCH_telemetry.json")
	code, stdout, errb := runCapture(t, "-bench-telemetry", "-o", out, "-commit", "testhash")
	if code != 0 {
		t.Fatalf("exit = %d\nstdout:\n%s\nstderr:\n%s", code, stdout, errb)
	}
	b, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var tbl struct {
		Title string            `json:"title"`
		Meta  map[string]string `json:"meta"`
		Rows  [][]string        `json:"rows"`
	}
	if err := json.Unmarshal(b, &tbl); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if tbl.Meta["commit"] != "testhash" || tbl.Meta["goos"] == "" {
		t.Errorf("provenance meta = %v", tbl.Meta)
	}
	// 3 shard counts x 3 telemetry modes + the fully-cached row.
	if len(tbl.Rows) != 10 {
		t.Errorf("rows = %d, want 10", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		for _, cell := range row {
			if cell == "NaN" || strings.Contains(cell, "Inf") {
				t.Errorf("non-finite cell %q in row %v", cell, row)
			}
		}
	}
}
