// Command fleetaudit audits a simulated fleet of hardened Ubuntu hosts
// through the work-stealing fleet coordinator: N hosts' STIG catalogues
// are pulled off affinity-seeded shard queues (idle shards steal from
// loaded ones; -sched static restores pure affinity bucketing), each
// shard running its hosts' checks on an engine worker pool. Drifted,
// faulty and unreachable hosts exercise the degradation paths; the
// incremental mode demonstrates the version-keyed audit cache, -dedup
// the cross-host check memo, and -cache-file persists the incremental
// cache across invocations.
//
// The sweep's spans can stay resident instead of (or as well as)
// streaming to JSONL: -trace-query attaches the embeddable trace store
// (internal/telemetry/store) to the tracer and runs a TraceQL-ish
// expression against everything the sweep recorded — filter by span
// name/outcome/duration/tags, `slowest K`, `p50/p95/p99 by KEY`,
// `count by KEY`, `traces K` (full trees). With -vclock, -shards 1 and
// -workers 1 the whole trace — IDs, durations, query output — is
// deterministic for a given seed. -timeout arms the engine's
// per-attempt deadline (with -faults, injected slowdowns sleep 4x the
// deadline, so seeded checks time out deterministically).
//
// Usage:
//
//	fleetaudit [-hosts N] [-shards N] [-workers N] [-drift N] [-down N]
//	           [-faults] [-retries N] [-timeout D] [-seed N]
//	           [-incremental] [-enforce] [-sched steal|static] [-dedup]
//	           [-cache-file PATH] [-telemetry] [-trace PATH] [-metrics]
//	           [-trace-query EXPR] [-vclock] [-trace-capacity N]
//	           [-trace-keep-ok N] [-trace-head N]
//	           [-cpuprofile PATH] [-memprofile PATH]
//	fleetaudit -bench [-o BENCH_fleet.json] [-seed N] [-commit HASH]
//	fleetaudit -bench-telemetry [-o BENCH_telemetry.json] [-assert-overhead PCT]
//	fleetaudit -bench-trace [-o BENCH_trace.json] [-seed N] [-commit HASH]
//
// Exit status: 0 fleet fully compliant, 1 violations or errors open,
// 2 usage error (or, with -assert-overhead, threshold exceeded).
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"veridevops/internal/core"
	"veridevops/internal/engine"
	"veridevops/internal/fleet"
	"veridevops/internal/host"
	"veridevops/internal/report"
	"veridevops/internal/telemetry"
	"veridevops/internal/telemetry/store"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("fleetaudit", flag.ContinueOnError)
	fs.SetOutput(stderr)
	hosts := fs.Int("hosts", 16, "fleet size")
	shards := fs.Int("shards", 4, "shard goroutines (host-level parallelism)")
	workers := fs.Int("workers", 4, "engine workers per catalogue run inside a shard")
	drift := fs.Int("drift", 4, "hosts drifted from the hardened baseline (3 mutations each)")
	down := fs.Int("down", 0, "hosts marked unreachable (degrade to ERROR verdicts)")
	faults := fs.Bool("faults", false, "inject seeded panics/transients/slowdowns into every check")
	retries := fs.Int("retries", 1, "attempt budget per check (recovers injected transients)")
	timeout := fs.Duration("timeout", 0, "per-attempt deadline (0 disables; with -faults, slowdowns sleep 4x this)")
	seed := fs.Int64("seed", 1, "seed for drift and fault injection")
	incremental := fs.Bool("incremental", false, "after the full sweep, drift one host and re-sweep incrementally")
	enforce := fs.Bool("enforce", false, "remediate failing requirements (CheckAndEnforce)")
	sched := fs.String("sched", "steal", "host scheduling: steal (work-stealing, default) or static (pure affinity)")
	dedup := fs.Bool("dedup", false, "dedup identical checks across hosts within a sweep (audit-only)")
	cacheFile := fs.String("cache-file", "", "persist the incremental cache here across invocations")
	showTelemetry := fs.Bool("telemetry", false, "print per-shard and per-host engine telemetry")
	tracePath := fs.String("trace", "", "write a JSONL span trace (sweep/shard/host/check/attempt) to this file")
	showMetrics := fs.Bool("metrics", false, "collect and print the telemetry metrics registry after the run")
	traceQuery := fs.String("trace-query", "", "keep the sweep's spans in the trace store and run this query (see internal/telemetry/store)")
	vclock := fs.Bool("vclock", false, "stamp spans on a deterministic virtual clock (1us per reading)")
	traceCap := fs.Int("trace-capacity", 0, "trace store span capacity (default 262144)")
	traceKeepOK := fs.Int("trace-keep-ok", 0, "tail-sample: keep 1 in N healthy traces (error traces always kept; 0/1 keeps all)")
	traceHead := fs.Int("trace-head", 0, "head-sample: buffer only 1 in N traces at all (0/1 keeps all)")
	benchMode := fs.Bool("bench", false, "run the sharding/stealing/dedup/caching benchmark matrix instead of one audit")
	benchTelemetryMode := fs.Bool("bench-telemetry", false, "run the tracing-overhead benchmark matrix instead of one audit")
	benchTraceMode := fs.Bool("bench-trace", false, "run the trace-store ingestion/query benchmark matrix instead of one audit")
	assertOverhead := fs.Float64("assert-overhead", 0, "with -bench-telemetry: exit 1 if the 4-shard spans overhead exceeds this percentage (0 disables)")
	out := fs.String("o", "", "output file for bench JSON (default BENCH_fleet.json / BENCH_telemetry.json / BENCH_trace.json)")
	commit := fs.String("commit", "", "commit hash recorded in -bench provenance (default: build info)")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := fs.String("memprofile", "", "write a heap profile to this file on exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *hosts < 1 || *drift < 0 || *down < 0 || *retries < 1 {
		fmt.Fprintln(stderr, "fleetaudit: -hosts must be >= 1 and -drift/-down/-retries non-negative")
		return 2
	}
	if *timeout < 0 || *traceCap < 0 || *traceKeepOK < 0 || *traceHead < 0 {
		fmt.Fprintln(stderr, "fleetaudit: -timeout/-trace-capacity/-trace-keep-ok/-trace-head must be non-negative")
		return 2
	}
	if *drift > *hosts || *down > *hosts {
		fmt.Fprintln(stderr, "fleetaudit: -drift and -down cannot exceed -hosts")
		return 2
	}
	scheduling := fleet.ScheduleWorkStealing
	switch *sched {
	case "steal":
	case "static":
		scheduling = fleet.ScheduleStatic
	default:
		fmt.Fprintln(stderr, "fleetaudit: -sched must be steal or static")
		return 2
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(stderr, "fleetaudit: %v\n", err)
			return 2
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(stderr, "fleetaudit: %v\n", err)
			return 2
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(stderr, "fleetaudit: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(stderr, "fleetaudit: %v\n", err)
			}
		}()
	}

	if *benchTelemetryMode {
		if *out == "" {
			*out = "BENCH_telemetry.json"
		}
		return runBenchTelemetry(stdout, stderr, *seed, *out, *commit, *assertOverhead)
	}
	if *benchTraceMode {
		if *out == "" {
			*out = "BENCH_trace.json"
		}
		return runBenchTrace(stdout, stderr, *seed, *out, *commit)
	}
	if *benchMode {
		if *out == "" {
			*out = "BENCH_fleet.json"
		}
		return runBench(stdout, stderr, *seed, *out, *commit)
	}

	// -trace streams spans to the file; -trace-query keeps them resident
	// in the store instead (both compose); bare -metrics still builds an
	// aggregate-only tracer so the span-name breakdown can print.
	var tracer *telemetry.Tracer
	var traceFile *os.File
	var spanStore *store.Store
	var tracerOpts []telemetry.Option
	if *vclock {
		tracerOpts = append(tracerOpts, telemetry.WithClock(telemetry.NewVirtualClock(time.Microsecond)))
	}
	if *traceQuery != "" {
		spanStore = store.New(store.Config{
			Capacity:      *traceCap,
			HeadKeep1In:   *traceHead,
			TailKeepOK1In: *traceKeepOK,
		})
		tracerOpts = append(tracerOpts, telemetry.WithSink(spanStore))
	}
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fmt.Fprintf(stderr, "fleetaudit: %v\n", err)
			return 2
		}
		traceFile = f
		tracer = telemetry.New(f, tracerOpts...)
	} else if *showMetrics || spanStore != nil {
		tracer = telemetry.New(nil, tracerOpts...)
	}
	var mets *telemetry.Metrics
	if *showMetrics {
		mets = telemetry.NewMetrics()
	}

	targets, machines := fleet.LinuxFleet(*hosts)
	rng := rand.New(rand.NewSource(*seed))
	for _, i := range rng.Perm(*hosts)[:*drift] {
		host.DriftLinux(machines[i], 3, rng)
	}
	for i := 0; i < *down; i++ {
		machines[i].SetUnreachable(true)
	}
	if *faults {
		// With a deadline armed, slowdowns sleep 4x the deadline so the
		// seeded slow checks become deterministic timeouts.
		slowDelay := 100 * time.Microsecond
		if *timeout > 0 {
			slowDelay = 4 * *timeout
		}
		plan := engine.FaultPlan{
			PanicProb: 0.04, TransientProb: 0.30,
			SlowProb: 0.10, SlowDelay: slowDelay,
		}
		for i := range targets {
			targets[i] = fleet.WithFaults(targets[i], *seed+int64(i)*100, plan)
		}
	}

	opts := fleet.Options{
		Mode:       core.CheckOnly,
		Shards:     *shards,
		Workers:    *workers,
		Checks:     engine.Policy{MaxAttempts: *retries, AttemptTimeout: *timeout},
		Scheduling: scheduling,
		Dedup:      *dedup,
		Trace:      tracer,
		Metrics:    mets,
	}
	if *enforce {
		opts.Mode = core.CheckAndEnforce
	}

	coord := fleet.NewCoordinator()
	if *cacheFile != "" {
		if err := coord.LoadCache(*cacheFile); err != nil {
			if os.IsNotExist(err) {
				fmt.Fprintf(stdout, "cache file %s absent, starting cold\n", *cacheFile)
			} else {
				fmt.Fprintf(stderr, "fleetaudit: cache discarded, starting cold: %v\n", err)
			}
		} else {
			fmt.Fprintf(stdout, "resumed %d cached hosts from %s\n", coord.CachedHosts(), *cacheFile)
			opts.Incremental = true
		}
	}
	rep, st := coord.Sweep(targets, opts)
	printSweep(stdout, "full sweep", rep, st, *showTelemetry)

	if *incremental {
		host.DriftLinux(machines[rng.Intn(*hosts)], 3, rng)
		opts.Incremental = true
		rep, st = coord.Sweep(targets, opts)
		fmt.Fprintln(stdout)
		printSweep(stdout, "incremental re-sweep (1 host drifted)", rep, st, *showTelemetry)
	}

	if tracer != nil {
		if err := tracer.Flush(); err != nil {
			fmt.Fprintf(stderr, "fleetaudit: flush trace: %v\n", err)
			return 2
		}
		if traceFile != nil {
			traceFile.Close()
			fmt.Fprintf(stdout, "wrote span trace to %s\n", *tracePath)
		}
		fmt.Fprintln(stdout)
		report.SpanTable("where the time went (top 10 span names)", tracer.Breakdown(), 10).WriteText(stdout)
	}
	if mets != nil {
		fmt.Fprintln(stdout)
		mets.Table("metrics").WriteText(stdout)
	}
	if spanStore != nil {
		spanStore.Flush()
		res, err := spanStore.Query(*traceQuery)
		if err != nil {
			fmt.Fprintf(stderr, "fleetaudit: trace query: %v\n", err)
			return 2
		}
		sst := spanStore.Stats()
		fmt.Fprintf(stdout, "\ntrace store: %d spans resident from %d traces (%d offered, %d sampled out, %d evicted)\n",
			sst.Resident, sst.Traces, sst.Offered, sst.HeadDropped+sst.TailDropped, sst.Evicted)
		res.WriteText(stdout)
	}

	if *cacheFile != "" {
		if err := coord.SaveCache(*cacheFile); err != nil {
			fmt.Fprintf(stderr, "fleetaudit: save cache: %v\n", err)
		} else {
			fmt.Fprintf(stdout, "saved %d cached hosts to %s\n", coord.CachedHosts(), *cacheFile)
		}
	}

	pass, fail, inc := rep.Counts()
	if fail+inc > 0 {
		fmt.Fprintf(stdout, "fleet non-compliant: %d pass, %d fail, %d incomplete\n", pass, fail, inc)
		return 1
	}
	fmt.Fprintf(stdout, "fleet compliant: %d requirements pass on %d hosts\n", pass, st.Hosts)
	return 0
}

func printSweep(w io.Writer, title string, rep fleet.FleetReport, st fleet.FleetStats, telemetry bool) {
	t := report.New(title, "host", "shard", "cached", "degraded", "pass", "fail", "incomplete", "compliance")
	for _, hr := range rep.Hosts {
		pass, fail, inc := hr.Report.Counts()
		t.AddRow(hr.Target, hr.Shard, hr.FromCache, hr.Degraded, pass, fail, inc, hr.Report.Compliance())
	}
	t.Note = st.Summary()
	t.WriteText(w)
	if telemetry {
		st.ShardTable(title + ": shards").WriteText(w)
		st.HostTable(title + ": hosts").WriteText(w)
	}
}

// runBench produces the BENCH_fleet.json perf record (E13 + E14): the
// sequential baseline versus the sharded sweep at 1/4/16 shards, the
// incremental re-sweep, static versus work-stealing scheduling on a
// skewed fleet, cross-host dedup off/on, and a restart-resume through the
// persistent cache file. Every check pays a simulated probe round-trip,
// the live-audit shape where all four mechanisms pay.
func runBench(stdout, stderr io.Writer, seed int64, out, commit string) int {
	const (
		nHosts     = 16
		probeDelay = 100 * time.Microsecond
	)
	mkFleet := func() ([]fleet.Target, []*host.Linux) {
		targets, machines := fleet.LinuxFleet(nHosts)
		for i := range targets {
			targets[i] = fleet.WithProbeDelay(targets[i], probeDelay)
		}
		return targets, machines
	}

	t := report.New("fleet benchmark: 16 hosts x 8 requirements, 100us probe round-trip (skew rows: 160 hosts, 1ms probes, one host 10x slower)",
		"scenario", "shards", "workers", "requirements-run", "cache-hit-rate", "wall-ms", "speedup-vs-sequential", "errors")
	t.Meta = report.Provenance(commit)

	// Sequential baseline: per-host RunEngine, one worker, one at a time.
	targets, _ := mkFleet()
	t0 := time.Now()
	for _, tg := range targets {
		tg.Catalog.RunEngine(core.RunOptions{Mode: core.CheckOnly, Workers: 1})
	}
	seqWall := time.Since(t0)
	t.AddRow("sequential per-host RunEngine", 1, 1, nHosts*8, "-", report.Millis(seqWall), 1.0, 0)

	speedup := func(w time.Duration) float64 { return float64(seqWall) / float64(w) }
	for _, shards := range []int{1, 4, 16} {
		targets, _ := mkFleet()
		_, st := fleet.Sweep(targets, fleet.Options{Shards: shards, Workers: 4})
		t.AddRow("full sharded sweep", shards, 4, st.Requirements, "-",
			report.Millis(st.Wall), speedup(st.Wall), st.Errors)
	}

	// Incremental: prime, drift 1 of 16 hosts, re-sweep.
	targets, machines := mkFleet()
	coord := fleet.NewCoordinator()
	coord.Sweep(targets, fleet.Options{Shards: 16, Workers: 4})
	host.DriftLinux(machines[3], 3, rand.New(rand.NewSource(seed)))
	_, st := coord.Sweep(targets, fleet.Options{Shards: 16, Workers: 4, Incremental: true})
	t.AddRow("incremental re-sweep (1/16 hosts changed)", 16, 4,
		st.CacheMisses, report.Percent(st.CacheHitRate()),
		report.Millis(st.Wall), speedup(st.Wall), st.Errors)
	incrNote := fmt.Sprintf(
		"incremental sweep re-executed %d of %d requirements (cache hit rate %s)",
		st.CacheMisses, st.CacheHits+st.CacheMisses, report.Percent(st.CacheHitRate()))

	// E14a — static versus work-stealing on the skewed fleet: 160 hosts
	// over 16 shards with a 1ms probe round-trip, one host (from the most
	// populated affinity bucket, so it has the most shard co-tenants) 10x
	// slower than the rest. One worker per shard keeps the rows
	// sleep-dominated so the comparison isolates scheduling; the fleet is
	// sized so the slow host's own wall sits near total-work/shards, the
	// regime where stealing's floor is the theoretical optimum. Both
	// coordinators sweep once to learn per-host costs, then the measured
	// sweep runs.
	skewWall := map[fleet.Scheduling]time.Duration{}
	skewImbalance := map[fleet.Scheduling]float64{}
	var skewSteals int
	for _, sched := range []fleet.Scheduling{fleet.ScheduleStatic, fleet.ScheduleWorkStealing} {
		skTargets, _ := fleet.SkewedFleet(160, 16, time.Millisecond, 10)
		skCoord := fleet.NewCoordinator()
		skOpts := fleet.Options{Shards: 16, Workers: 1, Scheduling: sched}
		skCoord.Sweep(skTargets, skOpts) // cost-learning pass
		_, skSt := skCoord.Sweep(skTargets, skOpts)
		skewWall[sched] = skSt.Wall
		skewImbalance[sched] = skSt.LoadImbalance
		name := "skewed fleet, static affinity"
		if sched == fleet.ScheduleWorkStealing {
			name = "skewed fleet, work-stealing"
			skewSteals = skSt.Steals
		}
		t.AddRow(name, 16, 1, skSt.Requirements, "-", report.Millis(skSt.Wall), "-", skSt.Errors)
	}
	stealGain := 1 - float64(skewWall[fleet.ScheduleWorkStealing])/float64(skewWall[fleet.ScheduleStatic])

	// E14b — cross-host dedup on the homogeneous 16-host fleet.
	var dedupRate float64
	for _, dedup := range []bool{false, true} {
		ddTargets, _ := mkFleet()
		_, ddSt := fleet.Sweep(ddTargets, fleet.Options{Shards: 4, Workers: 4, Dedup: dedup})
		name, executed := "homogeneous fleet, dedup off", ddSt.Requirements
		if dedup {
			name, executed = "homogeneous fleet, dedup on", ddSt.DedupMisses
			dedupRate = ddSt.DedupRate()
		}
		t.AddRow(name, 4, 4, executed, "-", report.Millis(ddSt.Wall), speedup(ddSt.Wall), ddSt.Errors)
	}

	// E14c — restart-resume: persist the primed cache, reload it in a
	// fresh coordinator, and re-sweep incrementally with 1 host drifted.
	cachePath, err := persistAndResume(seed, t)
	if err != nil {
		fmt.Fprintf(stderr, "fleetaudit: %v\n", err)
		return 2
	}
	defer os.Remove(cachePath)

	t.Note = fmt.Sprintf(
		"seed %d; sequential baseline %s ms; %s; work stealing cut the skewed-fleet wall by %.0f%% (%d hosts stolen, load imbalance %.2f -> %.2f); dedup executed 8 of 128 checks (rate %s)",
		seed, report.Millis(seqWall), incrNote, 100*stealGain, skewSteals,
		skewImbalance[fleet.ScheduleStatic], skewImbalance[fleet.ScheduleWorkStealing],
		report.Percent(dedupRate))

	t.WriteText(stdout)
	f, err := os.Create(out)
	if err != nil {
		fmt.Fprintf(stderr, "fleetaudit: %v\n", err)
		return 2
	}
	defer f.Close()
	if err := t.WriteJSON(f); err != nil {
		fmt.Fprintf(stderr, "fleetaudit: %v\n", err)
		return 2
	}
	fmt.Fprintf(stdout, "wrote %s\n", out)
	return 0
}

// lineCountWriter counts JSONL records as they stream past, so the bench
// can report how many spans a traced sweep emitted without keeping them.
type lineCountWriter struct{ lines int }

func (c *lineCountWriter) Write(p []byte) (int, error) {
	for _, b := range p {
		if b == '\n' {
			c.lines++
		}
	}
	return len(p), nil
}

// runBenchTelemetry produces the BENCH_telemetry.json perf record (E15):
// the full sweep at 1/4/16 shards with telemetry off, spans only, and
// spans+metrics, plus a fully-cached incremental re-sweep traced end to
// end — the case whose all-replay stats must stay finite. Each cell is
// the best of three runs so scheduler noise doesn't masquerade as
// tracing overhead; -assert-overhead turns the 4-shard spans cell into
// a regression gate.
func runBenchTelemetry(stdout, stderr io.Writer, seed int64, out, commit string, assertOverhead float64) int {
	const (
		nHosts     = 16
		probeDelay = 100 * time.Microsecond
		benchRuns  = 5
	)
	mkFleet := func() []fleet.Target {
		targets, _ := fleet.LinuxFleet(nHosts)
		for i := range targets {
			targets[i] = fleet.WithProbeDelay(targets[i], probeDelay)
		}
		return targets
	}

	t := report.New("telemetry overhead: 16 hosts x 8 requirements, 100us probe round-trip",
		"scenario", "shards", "telemetry", "spans-emitted", "wall-ms", "overhead-vs-off")
	t.Meta = report.Provenance(commit)

	var spans4Overhead float64
	for _, shards := range []int{1, 4, 16} {
		var offWall time.Duration
		for _, mode := range []string{"off", "spans", "spans+metrics"} {
			var bestWall time.Duration
			spans := 0
			for run := 0; run < benchRuns; run++ {
				targets := mkFleet()
				opts := fleet.Options{Shards: shards, Workers: 4}
				var cw *lineCountWriter
				if mode != "off" {
					cw = &lineCountWriter{}
					opts.Trace = telemetry.New(cw)
				}
				if mode == "spans+metrics" {
					opts.Metrics = telemetry.NewMetrics()
				}
				_, st := fleet.Sweep(targets, opts)
				if cw != nil {
					opts.Trace.Flush()
					spans = cw.lines
				}
				if run == 0 || st.Wall < bestWall {
					bestWall = st.Wall
				}
			}
			overhead := "-"
			if mode == "off" {
				offWall = bestWall
			} else {
				frac := float64(bestWall-offWall) / float64(offWall)
				overhead = report.Percent(frac)
				if shards == 4 && mode == "spans" {
					spans4Overhead = 100 * frac
				}
			}
			t.AddRow("full sweep", shards, mode, spans, report.Millis(bestWall), overhead)
		}
	}

	// The fully-cached re-sweep: every host replays, no check executes,
	// and the traced stats must render finite (the LoadImbalance guard).
	targets := mkFleet()
	coord := fleet.NewCoordinator()
	coord.Sweep(targets, fleet.Options{Shards: 4, Workers: 4})
	cw := &lineCountWriter{}
	tr := telemetry.New(cw)
	_, st := coord.Sweep(targets, fleet.Options{
		Shards: 4, Workers: 4, Incremental: true, Trace: tr, Metrics: telemetry.NewMetrics(),
	})
	tr.Flush()
	t.AddRow("fully-cached incremental re-sweep", 4, "spans+metrics",
		cw.lines, report.Millis(st.Wall), "-")

	t.Note = fmt.Sprintf(
		"seed %d; overhead = (traced - untraced) / untraced wall per shard count, best of %d runs per cell; cached re-sweep hit rate %s, load imbalance %s",
		seed, benchRuns, report.Percent(st.CacheHitRate()), report.Float(st.LoadImbalance))

	t.WriteText(stdout)
	f, err := os.Create(out)
	if err != nil {
		fmt.Fprintf(stderr, "fleetaudit: %v\n", err)
		return 2
	}
	defer f.Close()
	if err := t.WriteJSON(f); err != nil {
		fmt.Fprintf(stderr, "fleetaudit: %v\n", err)
		return 2
	}
	fmt.Fprintf(stdout, "wrote %s\n", out)
	if assertOverhead > 0 && spans4Overhead > assertOverhead {
		fmt.Fprintf(stderr, "fleetaudit: 4-shard spans overhead %.1f%% exceeds threshold %.1f%%\n",
			spans4Overhead, assertOverhead)
		return 1
	}
	if assertOverhead > 0 {
		fmt.Fprintf(stdout, "4-shard spans overhead %.1f%% within threshold %.1f%%\n",
			spans4Overhead, assertOverhead)
	}
	return 0
}

// persistAndResume primes a coordinator on a probe-delayed fleet, saves
// its cache to a temp file, resumes a fresh coordinator from it and adds
// the restart-resume row: the resumed sweep must hit exactly like the
// uninterrupted one would.
func persistAndResume(seed int64, t *report.Table) (string, error) {
	const nHosts = 16
	targets, machines := fleet.LinuxFleet(nHosts)
	for i := range targets {
		targets[i] = fleet.WithProbeDelay(targets[i], 100*time.Microsecond)
	}
	coord := fleet.NewCoordinator()
	coord.Sweep(targets, fleet.Options{Shards: 16, Workers: 4})
	f, err := os.CreateTemp("", "fleet-cache-*.json")
	if err != nil {
		return "", err
	}
	path := f.Name()
	f.Close()
	if err := coord.SaveCache(path); err != nil {
		return path, err
	}

	host.DriftLinux(machines[5], 3, rand.New(rand.NewSource(seed+7)))
	resumed := fleet.NewCoordinator()
	if err := resumed.LoadCache(path); err != nil {
		return path, err
	}
	_, st := resumed.Sweep(targets, fleet.Options{Shards: 16, Workers: 4, Incremental: true})
	t.AddRow("restart-resume from cache file (1/16 hosts changed)", 16, 4,
		st.CacheMisses, report.Percent(st.CacheHitRate()),
		report.Millis(st.Wall), "-", st.Errors)
	return path, nil
}
