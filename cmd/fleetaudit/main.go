// Command fleetaudit audits a simulated fleet of hardened Ubuntu hosts
// through the sharded fleet coordinator: N hosts' STIG catalogues are
// spread across shard goroutines with host-affinity scheduling, each
// shard running its hosts' checks on an engine worker pool. Drifted,
// faulty and unreachable hosts exercise the degradation paths; the
// incremental mode demonstrates the version-keyed audit cache.
//
// Usage:
//
//	fleetaudit [-hosts N] [-shards N] [-workers N] [-drift N] [-down N]
//	           [-faults] [-retries N] [-seed N] [-incremental] [-enforce]
//	           [-telemetry]
//	fleetaudit -bench [-o BENCH_fleet.json] [-seed N]
//
// Exit status: 0 fleet fully compliant, 1 violations or errors open,
// 2 usage error.
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"time"

	"veridevops/internal/core"
	"veridevops/internal/engine"
	"veridevops/internal/fleet"
	"veridevops/internal/host"
	"veridevops/internal/report"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("fleetaudit", flag.ContinueOnError)
	fs.SetOutput(stderr)
	hosts := fs.Int("hosts", 16, "fleet size")
	shards := fs.Int("shards", 4, "shard goroutines (host-level parallelism)")
	workers := fs.Int("workers", 4, "engine workers per catalogue run inside a shard")
	drift := fs.Int("drift", 4, "hosts drifted from the hardened baseline (3 mutations each)")
	down := fs.Int("down", 0, "hosts marked unreachable (degrade to ERROR verdicts)")
	faults := fs.Bool("faults", false, "inject seeded panics/transients/slowdowns into every check")
	retries := fs.Int("retries", 1, "attempt budget per check (recovers injected transients)")
	seed := fs.Int64("seed", 1, "seed for drift and fault injection")
	incremental := fs.Bool("incremental", false, "after the full sweep, drift one host and re-sweep incrementally")
	enforce := fs.Bool("enforce", false, "remediate failing requirements (CheckAndEnforce)")
	telemetry := fs.Bool("telemetry", false, "print per-shard and per-host engine telemetry")
	benchMode := fs.Bool("bench", false, "run the sharding/caching benchmark matrix instead of one audit")
	out := fs.String("o", "BENCH_fleet.json", "output file for -bench JSON")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *hosts < 1 || *drift < 0 || *down < 0 || *retries < 1 {
		fmt.Fprintln(stderr, "fleetaudit: -hosts must be >= 1 and -drift/-down/-retries non-negative")
		return 2
	}
	if *drift > *hosts || *down > *hosts {
		fmt.Fprintln(stderr, "fleetaudit: -drift and -down cannot exceed -hosts")
		return 2
	}

	if *benchMode {
		return runBench(stdout, stderr, *seed, *out)
	}

	targets, machines := fleet.LinuxFleet(*hosts)
	rng := rand.New(rand.NewSource(*seed))
	for _, i := range rng.Perm(*hosts)[:*drift] {
		host.DriftLinux(machines[i], 3, rng)
	}
	for i := 0; i < *down; i++ {
		machines[i].SetUnreachable(true)
	}
	if *faults {
		plan := engine.FaultPlan{
			PanicProb: 0.04, TransientProb: 0.30,
			SlowProb: 0.10, SlowDelay: 100 * time.Microsecond,
		}
		for i := range targets {
			targets[i] = fleet.WithFaults(targets[i], *seed+int64(i)*100, plan)
		}
	}

	opts := fleet.Options{
		Mode:    core.CheckOnly,
		Shards:  *shards,
		Workers: *workers,
		Checks:  engine.Policy{MaxAttempts: *retries},
	}
	if *enforce {
		opts.Mode = core.CheckAndEnforce
	}

	coord := fleet.NewCoordinator()
	rep, st := coord.Sweep(targets, opts)
	printSweep(stdout, "full sweep", rep, st, *telemetry)

	if *incremental {
		host.DriftLinux(machines[rng.Intn(*hosts)], 3, rng)
		opts.Incremental = true
		rep, st = coord.Sweep(targets, opts)
		fmt.Fprintln(stdout)
		printSweep(stdout, "incremental re-sweep (1 host drifted)", rep, st, *telemetry)
	}

	pass, fail, inc := rep.Counts()
	if fail+inc > 0 {
		fmt.Fprintf(stdout, "fleet non-compliant: %d pass, %d fail, %d incomplete\n", pass, fail, inc)
		return 1
	}
	fmt.Fprintf(stdout, "fleet compliant: %d requirements pass on %d hosts\n", pass, st.Hosts)
	return 0
}

func printSweep(w io.Writer, title string, rep fleet.FleetReport, st fleet.FleetStats, telemetry bool) {
	t := report.New(title, "host", "shard", "cached", "degraded", "pass", "fail", "incomplete", "compliance")
	for _, hr := range rep.Hosts {
		pass, fail, inc := hr.Report.Counts()
		t.AddRow(hr.Target, hr.Shard, hr.FromCache, hr.Degraded, pass, fail, inc, hr.Report.Compliance())
	}
	t.Note = st.Summary()
	t.WriteText(w)
	if telemetry {
		st.ShardTable(title + ": shards").WriteText(w)
		st.HostTable(title + ": hosts").WriteText(w)
	}
}

// runBench produces the BENCH_fleet.json perf record: sequential per-host
// auditing versus the sharded sweep at 1/4/16 shards, plus the
// incremental re-sweep with 1/16 hosts changed. Every check pays a 100µs
// simulated probe round-trip, the live-audit shape where sharding pays.
func runBench(stdout, stderr io.Writer, seed int64, out string) int {
	const (
		nHosts     = 16
		probeDelay = 100 * time.Microsecond
	)
	mkFleet := func() ([]fleet.Target, []*host.Linux) {
		targets, machines := fleet.LinuxFleet(nHosts)
		for i := range targets {
			targets[i] = fleet.WithProbeDelay(targets[i], probeDelay)
		}
		return targets, machines
	}

	t := report.New("fleet benchmark: 16 hosts x 8 requirements, 100us probe round-trip",
		"scenario", "shards", "workers", "requirements-run", "cache-hit-rate", "wall-ms", "speedup-vs-sequential", "errors")

	// Sequential baseline: per-host RunEngine, one worker, one at a time.
	targets, _ := mkFleet()
	t0 := time.Now()
	for _, tg := range targets {
		tg.Catalog.RunEngine(core.RunOptions{Mode: core.CheckOnly, Workers: 1})
	}
	seqWall := time.Since(t0)
	t.AddRow("sequential per-host RunEngine", 1, 1, nHosts*8, "-", report.Millis(seqWall), 1.0, 0)

	speedup := func(w time.Duration) float64 { return float64(seqWall) / float64(w) }
	for _, shards := range []int{1, 4, 16} {
		targets, _ := mkFleet()
		_, st := fleet.Sweep(targets, fleet.Options{Shards: shards, Workers: 4})
		t.AddRow("full sharded sweep", shards, 4, st.Requirements, "-",
			report.Millis(st.Wall), speedup(st.Wall), st.Errors)
	}

	// Incremental: prime, drift 1 of 16 hosts, re-sweep.
	targets, machines := mkFleet()
	coord := fleet.NewCoordinator()
	coord.Sweep(targets, fleet.Options{Shards: 16, Workers: 4})
	host.DriftLinux(machines[3], 3, rand.New(rand.NewSource(seed)))
	_, st := coord.Sweep(targets, fleet.Options{Shards: 16, Workers: 4, Incremental: true})
	t.AddRow("incremental re-sweep (1/16 hosts changed)", 16, 4,
		st.CacheMisses, report.Percent(st.CacheHitRate()),
		report.Millis(st.Wall), speedup(st.Wall), st.Errors)
	t.Note = fmt.Sprintf(
		"seed %d; sequential baseline %s ms; incremental sweep re-executed %d of %d requirements (cache hit rate %s)",
		seed, report.Millis(seqWall), st.CacheMisses, st.CacheHits+st.CacheMisses,
		report.Percent(st.CacheHitRate()))

	t.WriteText(stdout)
	f, err := os.Create(out)
	if err != nil {
		fmt.Fprintf(stderr, "fleetaudit: %v\n", err)
		return 2
	}
	defer f.Close()
	if err := t.WriteJSON(f); err != nil {
		fmt.Fprintf(stderr, "fleetaudit: %v\n", err)
		return 2
	}
	fmt.Fprintf(stdout, "wrote %s\n", out)
	return 0
}
