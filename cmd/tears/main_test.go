package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runCapture(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errb bytes.Buffer
	code := run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

const passingLog = `signal,time,value
intrusion,100,1
intrusion,101,0
alarm,110,1
alarm,111,0
end,500,0
`

func TestPassingGA(t *testing.T) {
	ga := writeTemp(t, "r.ga", "GA g: when intrusion then alarm within 20 ms\n")
	log := writeTemp(t, "s.csv", passingLog)
	code, out, _ := runCapture(t, "-ga", ga, "-log", log)
	if code != 0 {
		t.Fatalf("exit = %d\n%s", code, out)
	}
	if !strings.Contains(out, "PASS") || !strings.Contains(out, "summary: 1 pass") {
		t.Errorf("overview:\n%s", out)
	}
}

func TestFailingGA(t *testing.T) {
	ga := writeTemp(t, "r.ga", "GA g: when intrusion then alarm within 5 ms\n")
	log := writeTemp(t, "s.csv", passingLog)
	code, out, _ := runCapture(t, "-ga", ga, "-log", log)
	if code != 1 {
		t.Fatalf("exit = %d\n%s", code, out)
	}
	if !strings.Contains(out, "FAIL") {
		t.Errorf("overview:\n%s", out)
	}
}

func TestParseErrorsReported(t *testing.T) {
	ga := writeTemp(t, "r.ga", "garbage\nGA g: when a then b\n")
	log := writeTemp(t, "s.csv", "a,0,0\n")
	code, _, errb := runCapture(t, "-ga", ga, "-log", log)
	if code != 0 { // remaining valid GA is vacuous => pass
		t.Fatalf("exit = %d", code)
	}
	if !strings.Contains(errb, "line 1") {
		t.Errorf("stderr = %q", errb)
	}
}

func TestUsageErrors(t *testing.T) {
	if code, _, _ := runCapture(t); code != 2 {
		t.Error("missing flags should exit 2")
	}
	if code, _, _ := runCapture(t, "-ga", "/nope", "-log", "/nope"); code != 2 {
		t.Error("unreadable ga should exit 2")
	}
	ga := writeTemp(t, "r.ga", "all garbage\n")
	log := writeTemp(t, "s.csv", "a,0,0\n")
	if code, _, _ := runCapture(t, "-ga", ga, "-log", log); code != 2 {
		t.Error("no valid G/As should exit 2")
	}
	ga2 := writeTemp(t, "r2.ga", "GA g: when a then b\n")
	bad := writeTemp(t, "bad.csv", "a,notatime,1\n")
	if code, _, _ := runCapture(t, "-ga", ga2, "-log", bad); code != 2 {
		t.Error("bad log should exit 2")
	}
}
