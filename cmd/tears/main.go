// Command tears evaluates a guarded-assertion (G/A) file against a signal
// log and prints the ANALYSIS overview, the batch counterpart of the
// NAPKIN environment.
//
// Usage:
//
//	tears -ga requirements.ga -log signals.csv
//
// The log is trace CSV ("signal,time,value"); the G/A file holds one
// "GA <name>: when <guard> then <assert> [within N ms]" per line.
// Exit status: 0 all pass, 1 violations, 2 usage error.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"veridevops/internal/tears"
	"veridevops/internal/trace"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tears", flag.ContinueOnError)
	fs.SetOutput(stderr)
	gaPath := fs.String("ga", "", "guarded-assertions file")
	logPath := fs.String("log", "", "signal log CSV")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *gaPath == "" || *logPath == "" {
		fmt.Fprintln(stderr, "usage: tears -ga file.ga -log signals.csv")
		return 2
	}

	gaText, err := os.ReadFile(*gaPath)
	if err != nil {
		fmt.Fprintf(stderr, "tears: %v\n", err)
		return 2
	}
	gas, errs := tears.ParseFile(string(gaText))
	for _, e := range errs {
		fmt.Fprintf(stderr, "tears: %v\n", e)
	}
	if len(gas) == 0 {
		fmt.Fprintf(stderr, "tears: no valid G/As in %s\n", *gaPath)
		return 2
	}

	lf, err := os.Open(*logPath)
	if err != nil {
		fmt.Fprintf(stderr, "tears: %v\n", err)
		return 2
	}
	tr, err := trace.ReadCSV(lf)
	lf.Close()
	if err != nil {
		fmt.Fprintf(stderr, "tears: %v\n", err)
		return 2
	}

	verdicts := tears.EvaluateAll(tr, gas)
	fmt.Fprint(stdout, tears.Overview(verdicts))
	for _, v := range verdicts {
		if !v.Passed() {
			return 1
		}
	}
	return 0
}
