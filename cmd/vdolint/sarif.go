package main

import (
	"encoding/json"
	"io"

	"veridevops/internal/analysis"
)

// Minimal SARIF 2.1.0 writer (stdlib only): one run, one rule per
// analyzer that can report, one result per finding. The shape is the
// subset GitHub code scanning ingests — ruleId, level, message, and a
// physical location with a repo-relative URI.

const (
	sarifSchema  = "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json"
	sarifVersion = "2.1.0"
)

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// emitSARIF renders the findings as a SARIF 2.1.0 log. The rule table
// lists the static suite plus any extra analyzer names the findings
// carry (the dynamic oracle reports as "keyreads-dynamic").
func emitSARIF(w io.Writer, findings []analysis.Finding) error {
	var rules []sarifRule
	known := map[string]bool{}
	for _, a := range analyzers {
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifMessage{Text: a.Doc}})
		known[a.Name] = true
	}
	for _, f := range findings {
		if !known[f.Analyzer] {
			known[f.Analyzer] = true
			rules = append(rules, sarifRule{ID: f.Analyzer,
				ShortDescription: sarifMessage{Text: "declared-reads dynamic oracle violation"}})
		}
	}
	results := make([]sarifResult, 0, len(findings))
	for _, f := range findings {
		level := "error"
		if f.Severity == analysis.SeverityWarning {
			level = "warning"
		}
		line := f.Line
		if line < 1 {
			// SARIF regions are 1-based; synthetic findings (the dynamic
			// oracle) carry no real position.
			line = 1
		}
		results = append(results, sarifResult{
			RuleID:  f.Analyzer,
			Level:   level,
			Message: sarifMessage{Text: f.Message},
			Locations: []sarifLocation{{PhysicalLocation: sarifPhysical{
				ArtifactLocation: sarifArtifact{URI: f.File},
				Region:           sarifRegion{StartLine: line, StartColumn: f.Col},
			}}},
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(sarifLog{
		Schema:  sarifSchema,
		Version: sarifVersion,
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "vdolint", Rules: rules}},
			Results: results,
		}},
	})
}
