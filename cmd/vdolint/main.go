// Command vdolint is the repository's multichecker: it loads the
// packages named by its arguments (go list patterns, default ./...),
// runs every internal/analysis analyzer over them — including their
// test files — and prints the surviving findings.
//
// Usage:
//
//	vdolint [-json|-sarif] [-dynamic] [packages]
//
// Exit codes: 0 when the tree is clean, 1 when findings were reported,
// 2 when the packages could not be loaded or the flags were wrong.
// Findings are printed file:line:col: analyzer: message, relative to
// the module root; -json emits the same findings as a JSON array for
// machine consumption (CI annotations, dashboards) and -sarif as a
// SARIF 2.1.0 log for code-scanning upload. The two are mutually
// exclusive.
//
// -dynamic skips the static suite and runs the declared-reads runtime
// oracle instead: every entry of the shipped catalogues executes on
// fresh simulated hosts with a read recorder attached, and mismatches
// between recorded and declared state keys are reported as
// "keyreads-dynamic" findings (see internal/fleet.VerifyReads).
//
// Suppression: //lint:ignore <analyzer>[,<analyzer>] reason on or
// directly above the flagged line, //lint:file-ignore for a whole file.
// The reason is mandatory; a directive without one is itself a finding.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"veridevops/internal/analysis"
	"veridevops/internal/analysis/clockuse"
	"veridevops/internal/analysis/ctxprobe"
	"veridevops/internal/analysis/directcheck"
	"veridevops/internal/analysis/keyreads"
	"veridevops/internal/analysis/lockedchan"
	"veridevops/internal/analysis/reqmeta"
	"veridevops/internal/analysis/spanend"
)

// analyzers is the full suite, in the order their findings are
// documented in README.md.
var analyzers = []*analysis.Analyzer{
	spanend.Analyzer,
	directcheck.Analyzer,
	ctxprobe.Analyzer,
	clockuse.Analyzer,
	lockedchan.Analyzer,
	reqmeta.Analyzer,
	keyreads.Analyzer,
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("vdolint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	asJSON := fs.Bool("json", false, "emit findings as a JSON array")
	asSARIF := fs.Bool("sarif", false, "emit findings as a SARIF 2.1.0 log")
	dynamic := fs.Bool("dynamic", false, "run the declared-reads runtime oracle instead of the static suite")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: vdolint [-json|-sarif] [-dynamic] [packages]\n\nAnalyzers:\n")
		for _, a := range analyzers {
			fmt.Fprintf(stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *asJSON && *asSARIF {
		fmt.Fprintln(stderr, "vdolint: -json and -sarif are mutually exclusive")
		return 2
	}

	var findings []analysis.Finding
	if *dynamic {
		findings = dynamicFindings()
	} else {
		patterns := fs.Args()
		if len(patterns) == 0 {
			patterns = []string{"./..."}
		}
		cwd, err := os.Getwd()
		if err != nil {
			fmt.Fprintf(stderr, "vdolint: %v\n", err)
			return 2
		}
		units, err := analysis.Load(cwd, patterns...)
		if err != nil {
			fmt.Fprintf(stderr, "vdolint: %v\n", err)
			return 2
		}
		findings, err = analysis.Run(units, analyzers, moduleRoot(cwd))
		if err != nil {
			fmt.Fprintf(stderr, "vdolint: %v\n", err)
			return 2
		}
	}

	var err error
	if *asSARIF {
		err = emitSARIF(stdout, findings)
	} else {
		err = emit(stdout, findings, *asJSON)
	}
	if err != nil {
		fmt.Fprintf(stderr, "vdolint: %v\n", err)
		return 2
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}

// emit renders findings as text lines or a JSON array.
func emit(w io.Writer, findings []analysis.Finding, asJSON bool) error {
	if asJSON {
		if findings == nil {
			findings = []analysis.Finding{}
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(findings)
	}
	for _, f := range findings {
		if _, err := fmt.Fprintln(w, f.String()); err != nil {
			return err
		}
	}
	return nil
}

// moduleRoot resolves the enclosing module's directory so findings
// print module-relative paths; it falls back to cwd when the module
// cannot be determined (the paths are then printed as produced).
func moduleRoot(cwd string) string {
	cmd := exec.Command("go", "env", "GOMOD")
	cmd.Dir = cwd
	var out bytes.Buffer
	cmd.Stdout = &out
	if err := cmd.Run(); err != nil {
		return cwd
	}
	gomod := strings.TrimSpace(out.String())
	if gomod == "" || gomod == os.DevNull {
		return cwd
	}
	return filepath.Dir(gomod)
}
