package main

import (
	"veridevops/internal/analysis"
	"veridevops/internal/core"
	"veridevops/internal/fleet"
	"veridevops/internal/host"
	"veridevops/internal/stig"
	"veridevops/internal/vulndb"
)

// The -dynamic mode is the runtime counterpart of the static keyreads
// analyzer: instead of proving the declared-reads contract from source,
// it executes every entry of the shipped catalogues on fresh simulated
// hosts with a host.ReadRecorder attached (fleet.VerifyReads) and
// reports every mismatch between recorded and declared state keys.
// Violations surface as findings under the synthetic "keyreads-dynamic"
// analyzer name so all three output formats (text, -json, -sarif) work
// unchanged: undeclared reads are errors, overdeclared/unlocalized are
// warnings, and the usual exit-code contract applies (1 on any finding).

// dynamicBundles enumerates the catalogue bundles the oracle covers:
// the two shipped STIG catalogues plus one instance of each generic
// pattern that is not part of a catalogue (service, registry, vulndb
// patch), so the whole requirement surface is exercised.
func dynamicBundles() []struct {
	name  string
	cat   *core.Catalog
	hosts []fleet.Recordable
} {
	l := host.NewUbuntu1804()
	w := host.NewWindows10()
	pl := host.NewUbuntu1804()
	pw := host.NewWindows10()
	pl.Install("openssl", "1.0.0") // vulnerable: the patch check reads both pkg slots
	pats := core.NewCatalog()
	pats.MustRegister(&stig.UbuntuServicePattern{
		Finding: core.Finding{ID: "DYN-SVC-1", Sev: "medium", Desc: "auditd must be active"},
		Host:    pl, ServiceName: "auditd", MustBeActive: true,
	})
	pats.MustRegister(&stig.RegistryRequirement{
		Finding: core.Finding{ID: "DYN-REG-1", Sev: "medium", Desc: "policy value must be set"},
		Host:    pw, Key: `HKLM\Software\Policies\System\EnableLUA`, Want: "1",
	})
	pats.MustRegister(vulndb.NewPatchRequirement(pl, vulndb.Advisory{
		ID: "CVE-2026-9999", Package: "openssl", FixedIn: "1.0.2",
		Vector: "CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H", Summary: "synthetic oracle advisory",
	}))
	return []struct {
		name  string
		cat   *core.Catalog
		hosts []fleet.Recordable
	}{
		{"ubuntu", stig.UbuntuCatalog(l), []fleet.Recordable{l}},
		{"win10", stig.Win10Catalog(w), []fleet.Recordable{w}},
		{"patterns", pats, []fleet.Recordable{pl, pw}},
	}
}

// dynamicFindings runs the oracle over every bundle and converts the
// violations to findings.
func dynamicFindings() []analysis.Finding {
	var out []analysis.Finding
	for _, b := range dynamicBundles() {
		for _, v := range fleet.VerifyReads(b.cat, b.hosts...) {
			sev := analysis.SeverityWarning
			if v.Fatal() {
				sev = analysis.SeverityError
			}
			out = append(out, analysis.Finding{
				Analyzer: "keyreads-dynamic",
				File:     "(dynamic)",
				Message:  v.String(),
				Package:  b.name,
				Severity: sev,
			})
		}
	}
	return out
}
