package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"veridevops/internal/analysis"
)

func TestRunCleanPackage(t *testing.T) {
	var out, errb bytes.Buffer
	// The analysis framework itself must be clean; a non-zero exit here
	// means either a real regression or a broken loader.
	code := run([]string{"../../internal/analysis"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr %q, stdout %q", code, errb.String(), out.String())
	}
	if out.Len() != 0 {
		t.Errorf("clean run produced output: %q", out.String())
	}
}

func TestRunBadFlag(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-nope"}, &out, &errb); code != 2 {
		t.Fatalf("exit %d for unknown flag, want 2", code)
	}
}

func TestRunBadPattern(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"./no/such/dir/..."}, &out, &errb); code != 2 {
		t.Fatalf("exit %d for unloadable pattern, want 2", code)
	}
}

func TestEmitText(t *testing.T) {
	findings := []analysis.Finding{
		{Analyzer: "spanend", File: "a.go", Line: 3, Col: 2, Message: "leak", Package: "p"},
		{Analyzer: "reqmeta", File: "b.go", Line: 9, Col: 1, Message: "empty ID", Package: "p"},
	}
	var out bytes.Buffer
	if err := emit(&out, findings, false); err != nil {
		t.Fatal(err)
	}
	want := "a.go:3:2: spanend: leak\nb.go:9:1: reqmeta: empty ID\n"
	if out.String() != want {
		t.Errorf("emit text = %q, want %q", out.String(), want)
	}
}

func TestEmitJSON(t *testing.T) {
	findings := []analysis.Finding{
		{Analyzer: "lockedchan", File: "c.go", Line: 7, Col: 4, Message: "send under lock", Package: "p"},
	}
	var out bytes.Buffer
	if err := emit(&out, findings, true); err != nil {
		t.Fatal(err)
	}
	var decoded []analysis.Finding
	if err := json.Unmarshal(out.Bytes(), &decoded); err != nil {
		t.Fatalf("emit -json produced invalid JSON: %v\n%s", err, out.String())
	}
	if len(decoded) != 1 || decoded[0] != findings[0] {
		t.Errorf("round-trip mismatch: %+v", decoded)
	}
}

func TestEmitJSONEmpty(t *testing.T) {
	var out bytes.Buffer
	if err := emit(&out, nil, true); err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(out.String()); got != "[]" {
		t.Errorf("empty JSON emit = %q, want []", got)
	}
}
