package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"veridevops/internal/analysis"
)

func TestRunCleanPackage(t *testing.T) {
	var out, errb bytes.Buffer
	// The analysis framework itself must be clean; a non-zero exit here
	// means either a real regression or a broken loader.
	code := run([]string{"../../internal/analysis"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr %q, stdout %q", code, errb.String(), out.String())
	}
	if out.Len() != 0 {
		t.Errorf("clean run produced output: %q", out.String())
	}
}

func TestRunBadFlag(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-nope"}, &out, &errb); code != 2 {
		t.Fatalf("exit %d for unknown flag, want 2", code)
	}
}

func TestRunBadPattern(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"./no/such/dir/..."}, &out, &errb); code != 2 {
		t.Fatalf("exit %d for unloadable pattern, want 2", code)
	}
}

func TestEmitText(t *testing.T) {
	findings := []analysis.Finding{
		{Analyzer: "spanend", File: "a.go", Line: 3, Col: 2, Message: "leak", Package: "p"},
		{Analyzer: "reqmeta", File: "b.go", Line: 9, Col: 1, Message: "empty ID", Package: "p"},
	}
	var out bytes.Buffer
	if err := emit(&out, findings, false); err != nil {
		t.Fatal(err)
	}
	want := "a.go:3:2: spanend: leak\nb.go:9:1: reqmeta: empty ID\n"
	if out.String() != want {
		t.Errorf("emit text = %q, want %q", out.String(), want)
	}
}

func TestEmitJSON(t *testing.T) {
	findings := []analysis.Finding{
		{Analyzer: "lockedchan", File: "c.go", Line: 7, Col: 4, Message: "send under lock", Package: "p"},
	}
	var out bytes.Buffer
	if err := emit(&out, findings, true); err != nil {
		t.Fatal(err)
	}
	var decoded []analysis.Finding
	if err := json.Unmarshal(out.Bytes(), &decoded); err != nil {
		t.Fatalf("emit -json produced invalid JSON: %v\n%s", err, out.String())
	}
	if len(decoded) != 1 || decoded[0] != findings[0] {
		t.Errorf("round-trip mismatch: %+v", decoded)
	}
}

func TestRunJSONSarifExclusive(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-json", "-sarif"}, &out, &errb); code != 2 {
		t.Fatalf("exit %d for -json -sarif, want 2", code)
	}
	if !strings.Contains(errb.String(), "mutually exclusive") {
		t.Errorf("stderr %q misses the exclusivity message", errb.String())
	}
}

func TestRunDynamicOracleClean(t *testing.T) {
	var out, errb bytes.Buffer
	// The shipped catalogues must satisfy the declared-reads contract at
	// runtime: a non-zero exit here is a real soundness regression.
	code := run([]string{"-dynamic"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr %q, stdout %q", code, errb.String(), out.String())
	}
	if out.Len() != 0 {
		t.Errorf("clean dynamic run produced output: %q", out.String())
	}
}

func TestEmitSARIF(t *testing.T) {
	findings := []analysis.Finding{
		{Analyzer: "keyreads", File: "a.go", Line: 3, Col: 2, Message: "under-declared", Package: "p", Severity: analysis.SeverityError},
		{Analyzer: "keyreads-dynamic", File: "(dynamic)", Message: "overdeclared [pkg:x]", Package: "patterns", Severity: analysis.SeverityWarning},
	}
	var out bytes.Buffer
	if err := emitSARIF(&out, findings); err != nil {
		t.Fatal(err)
	}
	var log sarifLog
	if err := json.Unmarshal(out.Bytes(), &log); err != nil {
		t.Fatalf("emitSARIF produced invalid JSON: %v\n%s", err, out.String())
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 {
		t.Fatalf("log = %+v", log)
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "vdolint" {
		t.Errorf("driver = %q, want vdolint", run.Tool.Driver.Name)
	}
	// One rule per static analyzer plus the dynamic pseudo-analyzer.
	if want := len(analyzers) + 1; len(run.Tool.Driver.Rules) != want {
		t.Errorf("rules = %d, want %d", len(run.Tool.Driver.Rules), want)
	}
	if len(run.Results) != 2 {
		t.Fatalf("results = %+v", run.Results)
	}
	if r := run.Results[0]; r.RuleID != "keyreads" || r.Level != "error" ||
		r.Locations[0].PhysicalLocation.Region.StartLine != 3 {
		t.Errorf("static result = %+v", r)
	}
	if r := run.Results[1]; r.Level != "warning" ||
		r.Locations[0].PhysicalLocation.Region.StartLine != 1 {
		t.Errorf("dynamic result = %+v (line must clamp to 1)", r)
	}
}

func TestEmitJSONEmpty(t *testing.T) {
	var out bytes.Buffer
	if err := emit(&out, nil, true); err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(out.String()); got != "[]" {
		t.Errorf("empty JSON emit = %q, want []", got)
	}
}
