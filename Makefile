GO ?= go

.PHONY: check vet build test race fleet-race bench bench-fleet bench-steal tables

# check is the CI gate: vet, build everything, then the full test suite
# under the race detector (the engine, core and monitor packages are
# concurrent by construction, so -race is not optional). fleet-race is
# part of race via ./..., listed separately for a focused re-run.
check: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# fleet-race exercises just the concurrency-heavy fleet paths under the
# race detector (already covered by race; this is the quick loop).
fleet-race:
	$(GO) test -race ./internal/fleet/ ./internal/engine/ ./internal/core/ ./cmd/fleetaudit/

# bench-steal runs the scheduler-focused pair: skewed-fleet static vs
# work-stealing, and dedup off vs on.
bench-steal:
	$(GO) test -run=^$$ -bench='BenchmarkFleetSkewedSweep|BenchmarkFleetDedupSweep' -benchmem ./internal/fleet/

# bench runs the experiment benchmarks once each (correctness smoke, not a
# timing run), then the fleet + catalogue timing benchmarks with -benchmem
# and regenerates the BENCH_fleet.json perf record.
bench: bench-fleet
	$(GO) test -run=^$$ -bench=. -benchtime=1x .

bench-fleet:
	$(GO) test -run=^$$ -bench='BenchmarkFleet|BenchmarkCatalog' -benchmem ./internal/fleet/ .
	$(GO) run ./cmd/fleetaudit -bench -o BENCH_fleet.json

# tables regenerates every EXPERIMENTS.md table on stdout.
tables:
	$(GO) run ./cmd/vdo-bench -markdown
