GO ?= go

.PHONY: check vet lint verify-reads sarif build test race fleet-race trace-race bench bench-fleet bench-steal bench-telemetry bench-trace bench-load bench-serve smoke-load smoke-serve smoke-trace smoke-scenario tables

# check is the CI gate: vet, the repository's own analyzers, build
# everything, then the full test suite under the race detector (the
# engine, core and monitor packages are concurrent by construction, so
# -race is not optional), the dynamic declared-reads oracle, and finally
# the small-N load-harness smoke replays in both sweep and push modes
# plus the tracing-overhead gate. fleet-race is part of race via ./...,
# listed separately for a focused re-run.
check: vet lint build race verify-reads smoke-load smoke-serve smoke-trace smoke-scenario

vet:
	$(GO) vet ./...

# lint runs the seven repository analyzers (spanend, directcheck,
# ctxprobe, clockuse, lockedchan, reqmeta, keyreads) over every package
# including tests. See README "Static analysis" for what each enforces
# and how to suppress a finding with a recorded reason.
lint:
	$(GO) run ./cmd/vdolint ./...

# verify-reads is the dynamic counterpart of the keyreads analyzer: it
# executes every shipped catalogue entry on fresh simulated hosts with a
# read recorder attached and fails on any mismatch between recorded and
# declared state keys, then replays the scenario corpus in both modes
# with the same oracle over each fleet's final catalogues.
verify-reads:
	$(GO) run ./cmd/vdolint -dynamic
	$(GO) run ./cmd/vdo-scenario -run examples/scenarios -both -verify-reads

# sarif writes the static findings as a SARIF 2.1.0 log for
# code-scanning upload; the exit code is ignored here (the lint target
# is the gate), so the log is produced even when findings exist.
sarif:
	$(GO) run ./cmd/vdolint -sarif ./... > vdolint.sarif || true

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# fleet-race exercises just the concurrency-heavy fleet paths under the
# race detector (already covered by race; this is the quick loop).
fleet-race:
	$(GO) test -race ./internal/fleet/ ./internal/engine/ ./internal/core/ ./cmd/fleetaudit/

# trace-race runs the telemetry-focused tests under the race detector:
# spans are emitted concurrently from shard goroutines and engine workers,
# so the tracer's locking is load-bearing.
trace-race:
	$(GO) test -race -run 'Trace|Telemetry|Span' ./internal/telemetry/ ./internal/fleet/ ./internal/engine/ ./internal/core/ ./internal/monitor/ ./cmd/fleetaudit/

# bench-telemetry runs the tracing-overhead benchmarks (the disabled path
# must hold 0 allocs/op, the enabled path 0 steady-state allocs) and
# regenerates the BENCH_telemetry.json record.
bench-telemetry:
	$(GO) test -run=^$$ -bench='BenchmarkTelemetry' -benchmem ./internal/telemetry/ ./internal/fleet/
	$(GO) run ./cmd/fleetaudit -bench-telemetry -o BENCH_telemetry.json

# bench-trace runs the trace-store benchmarks (pooled ingestion, query
# scans over a full ring) and regenerates the BENCH_trace.json record:
# Offer/tracer ingestion throughput, query latency percentiles, and the
# store-as-sink sweep overhead.
bench-trace:
	$(GO) test -run=^$$ -bench='BenchmarkStore|BenchmarkQuery' -benchmem ./internal/telemetry/store/
	$(GO) run ./cmd/fleetaudit -bench-trace -o BENCH_trace.json

# bench-steal runs the scheduler-focused pair: skewed-fleet static vs
# work-stealing, and dedup off vs on.
bench-steal:
	$(GO) test -run=^$$ -bench='BenchmarkFleetSkewedSweep|BenchmarkFleetDedupSweep' -benchmem ./internal/fleet/

# bench runs the experiment benchmarks once each (correctness smoke, not a
# timing run), then the fleet + catalogue timing benchmarks with -benchmem
# and regenerates the BENCH_fleet.json perf record.
bench: bench-fleet
	$(GO) test -run=^$$ -bench=. -benchtime=1x .

bench-fleet:
	$(GO) test -run=^$$ -bench='BenchmarkFleet|BenchmarkCatalog' -benchmem ./internal/fleet/ .
	$(GO) run ./cmd/fleetaudit -bench -o BENCH_fleet.json

# bench-load runs the mega-fleet load-harness benchmarks (synthesis
# cost, end-to-end replay) and regenerates the BENCH_load.json record:
# 10k synthesized hosts replayed at 500/2000/8000 churn events per
# virtual second while incremental sweeps measure change->verdict
# detection latency.
bench-load:
	$(GO) test -run=^$$ -bench='BenchmarkLoad' -benchmem ./internal/loadgen/
	$(GO) run ./cmd/vdo-load -bench -o BENCH_load.json

# bench-serve regenerates the BENCH_serve.json record: sweep vs push on
# the identical seeded event stream (10k hosts, 500/2000 ev/s), the
# change->verdict latency comparison the streaming evaluator exists for.
bench-serve:
	$(GO) run ./cmd/vdo-load -bench-serve -o BENCH_serve.json

# smoke-load is the small-N load-harness replay CI runs: 500 hosts, 2s
# of virtual churn on the deterministic clock. It completes in seconds
# and fails loudly if synthesis, churn or the driver regress.
smoke-load:
	$(GO) run ./cmd/vdo-load -hosts 500 -duration 2s -sweep-every 250ms -rate 200 -shards 4 -workers 2 -seed 1

# smoke-serve is the push-mode smoke under the race detector: the same
# small-N churn streamed through the dependency index, asserting the
# tentpole property — detection p99 strictly below the sweep interval.
smoke-serve:
	$(GO) run -race ./cmd/vdo-load -hosts 500 -duration 2s -push -window 50ms -sweep-every 500ms -rate 200 -shards 4 -workers 2 -seed 1 -assert-p99 500ms

# smoke-scenario replays the timed incident-scenario corpus in both
# evaluation modes — every scenario must pass its assertions and the
# sweep/push final verdicts must agree — then fuzzes 25 random
# mutation-grammar walks (pinned seed) through the same cross-mode
# equivalence oracle.
smoke-scenario:
	$(GO) run ./cmd/vdo-scenario -run examples/scenarios -both
	$(GO) run ./cmd/vdo-scenario -fuzz 25 -seed 1

# smoke-trace is the tracing-overhead regression gate: the telemetry
# overhead matrix (best of 5 per cell) must keep the 4-shard spans
# overhead under 25% of the untraced sweep, or the target exits 1. The
# sweep under test is ~8ms of mostly sleep, so single-digit percentages
# are noise on a loaded runner; 25% still catches the 31-33% overhead
# the per-collector sharding removed. The JSON goes to /dev/null;
# bench-trace / bench-telemetry write the real records.
smoke-trace:
	$(GO) run ./cmd/fleetaudit -bench-telemetry -assert-overhead 25 -o /dev/null

# tables regenerates every EXPERIMENTS.md table on stdout.
tables:
	$(GO) run ./cmd/vdo-bench -markdown
