GO ?= go

.PHONY: check vet build test race bench tables

# check is the CI gate: vet, build everything, then the full test suite
# under the race detector (the engine, core and monitor packages are
# concurrent by construction, so -race is not optional).
check: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench runs the experiment benchmarks once each (correctness smoke, not a
# timing run).
bench:
	$(GO) test -run=^$$ -bench=. -benchtime=1x .

# tables regenerates every EXPERIMENTS.md table on stdout.
tables:
	$(GO) run ./cmd/vdo-bench -markdown
