GO ?= go

.PHONY: check vet lint build test race fleet-race trace-race bench bench-fleet bench-steal bench-telemetry tables

# check is the CI gate: vet, the repository's own analyzers, build
# everything, then the full test suite under the race detector (the
# engine, core and monitor packages are concurrent by construction, so
# -race is not optional). fleet-race is part of race via ./..., listed
# separately for a focused re-run.
check: vet lint build race

vet:
	$(GO) vet ./...

# lint runs the six repository analyzers (spanend, directcheck,
# ctxprobe, clockuse, lockedchan, reqmeta) over every package including
# tests. See README "Static analysis" for what each enforces and how to
# suppress a finding with a recorded reason.
lint:
	$(GO) run ./cmd/vdolint ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# fleet-race exercises just the concurrency-heavy fleet paths under the
# race detector (already covered by race; this is the quick loop).
fleet-race:
	$(GO) test -race ./internal/fleet/ ./internal/engine/ ./internal/core/ ./cmd/fleetaudit/

# trace-race runs the telemetry-focused tests under the race detector:
# spans are emitted concurrently from shard goroutines and engine workers,
# so the tracer's locking is load-bearing.
trace-race:
	$(GO) test -race -run 'Trace|Telemetry|Span' ./internal/telemetry/ ./internal/fleet/ ./internal/engine/ ./internal/core/ ./internal/monitor/ ./cmd/fleetaudit/

# bench-telemetry runs the tracing-overhead benchmarks (the disabled path
# must hold 0 allocs/op) and regenerates the BENCH_telemetry.json record.
bench-telemetry:
	$(GO) test -run=^$$ -bench='BenchmarkTelemetry' -benchmem ./internal/telemetry/ ./internal/fleet/
	$(GO) run ./cmd/fleetaudit -bench-telemetry -o BENCH_telemetry.json

# bench-steal runs the scheduler-focused pair: skewed-fleet static vs
# work-stealing, and dedup off vs on.
bench-steal:
	$(GO) test -run=^$$ -bench='BenchmarkFleetSkewedSweep|BenchmarkFleetDedupSweep' -benchmem ./internal/fleet/

# bench runs the experiment benchmarks once each (correctness smoke, not a
# timing run), then the fleet + catalogue timing benchmarks with -benchmem
# and regenerates the BENCH_fleet.json perf record.
bench: bench-fleet
	$(GO) test -run=^$$ -bench=. -benchtime=1x .

bench-fleet:
	$(GO) test -run=^$$ -bench='BenchmarkFleet|BenchmarkCatalog' -benchmem ./internal/fleet/ .
	$(GO) run ./cmd/fleetaudit -bench -o BENCH_fleet.json

# tables regenerates every EXPERIMENTS.md table on stdout.
tables:
	$(GO) run ./cmd/vdo-bench -markdown
