package stig

import (
	"strings"
	"testing"

	"veridevops/internal/core"
	"veridevops/internal/host"
)

const findingDoc = `Finding ID: V-900001
Version: UBTU-18-999999
Rule ID: SV-900001r1_rule
Severity: high
STIG: Canonical Ubuntu 18.04 LTS STIG
Date: 2021-06-16
Description: The legacy ftp server provides an unencrypted file transfer
service. Note: anonymous access makes this worse.
Check Text: Verify the ftpd package is not installed:
dpkg -l | grep ftpd
Fix Text: Remove the package: sudo apt-get remove ftpd

Finding ID: V-900002
Severity: medium
Description: Second finding.
`

func TestImportFindings(t *testing.T) {
	fs, err := ImportFindings(strings.NewReader(findingDoc))
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 2 {
		t.Fatalf("findings = %d, want 2", len(fs))
	}
	f := fs[0]
	if f.ID != "V-900001" || f.Sev != "high" || f.Ver != "UBTU-18-999999" {
		t.Errorf("finding = %+v", f)
	}
	// Multi-line values are joined, including the prose colon line.
	if !strings.Contains(f.Desc, "unencrypted file transfer service") ||
		!strings.Contains(f.Desc, "Note: anonymous access") {
		t.Errorf("Description = %q", f.Desc)
	}
	if !strings.Contains(f.CheckTxt, "dpkg -l | grep ftpd") {
		t.Errorf("CheckText = %q", f.CheckTxt)
	}
	if fs[1].ID != "V-900002" || fs[1].Desc != "Second finding." {
		t.Errorf("second = %+v", fs[1])
	}
}

func TestImportRoundTripsFindingString(t *testing.T) {
	orig := core.Finding{
		ID: "V-123", Ver: "VER-1", Rule: "SV-1", IA: "IA-1", Sev: "low",
		Desc: "Some description.", Guide: "Some STIG", Published: "2020-01-01",
		CheckTxt: "Check it.", FixTxt: "Fix it.",
	}
	fs, err := ImportFindings(strings.NewReader(orig.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 1 {
		t.Fatalf("findings = %d", len(fs))
	}
	got := fs[0]
	if got.ID != orig.ID || got.Sev != orig.Sev || got.Desc != orig.Desc ||
		got.CheckTxt != orig.CheckTxt || got.FixTxt != orig.FixTxt ||
		got.Guide != orig.Guide || got.Published != orig.Published {
		t.Errorf("round trip changed the finding:\n%+v\n%+v", orig, got)
	}
}

func TestImportErrors(t *testing.T) {
	if _, err := ImportFindings(strings.NewReader("stray content\n")); err == nil {
		t.Error("content outside a finding must error")
	}
	if _, err := ImportFindings(strings.NewReader("Finding ID: \nSeverity: low\n")); err == nil {
		t.Error("empty finding ID must error")
	}
	fs, err := ImportFindings(strings.NewReader(""))
	if err != nil || len(fs) != 0 {
		t.Error("empty input yields no findings")
	}
}

func TestImportedFindingDrivesPattern(t *testing.T) {
	fs, err := ImportFindings(strings.NewReader(findingDoc))
	if err != nil {
		t.Fatal(err)
	}
	h := host.NewLinux()
	h.Install("ftpd", "0.1")
	req, err := NewPackageRequirement(fs[0], h, "ftpd", false)
	if err != nil {
		t.Fatal(err)
	}
	if req.Check() != core.CheckFail {
		t.Error("banned ftpd installed: FAIL expected")
	}
	if req.Enforce() != core.EnforceSuccess || req.Check() != core.CheckPass {
		t.Error("enforcement should remove ftpd")
	}
	if req.FindingID() != "V-900001" {
		t.Error("metadata lost")
	}
	// The instantiated requirement registers like any catalogue entry.
	cat := core.NewCatalog()
	cat.MustRegister(req)
	if cat.Run(core.CheckOnly).Compliance() != 1 {
		t.Error("catalogue run failed")
	}
}

func TestNewPackageRequirementValidation(t *testing.T) {
	if _, err := NewPackageRequirement(core.Finding{}, nil, "x", false); err == nil {
		t.Error("missing ID must error")
	}
	if _, err := NewPackageRequirement(core.Finding{ID: "V-1"}, nil, "", false); err == nil {
		t.Error("empty package must error")
	}
}
