package stig

import (
	"fmt"

	"veridevops/internal/core"
	"veridevops/internal/host"
)

// Additional reusable requirement patterns. D2.7 notes the encoded STIG
// set "is not exhaustive [and] continuously updated"; these are the
// extension points new findings instantiate, alongside UbuntuPackagePattern
// and UbuntuConfigPattern.

// UbuntuServicePattern requires a service to be active or inactive
// ("systemctl is-active" style checks in STIG check texts).
type UbuntuServicePattern struct {
	core.Finding
	Host *host.Linux
	// ServiceName is the systemd unit under requirement.
	ServiceName string
	// MustBeActive selects between "must run" and "must be disabled".
	MustBeActive bool
}

// Check reports whether the service state matches the requirement.
func (u *UbuntuServicePattern) Check() core.CheckStatus {
	if u.Host == nil {
		return core.CheckIncomplete
	}
	return core.CheckBool(u.Host.ServiceActive(u.ServiceName) == u.MustBeActive)
}

// Enforce enables or disables the service and verifies the change took
// effect.
func (u *UbuntuServicePattern) Enforce() core.EnforcementStatus {
	if u.Host == nil {
		return core.EnforceIncomplete
	}
	if u.MustBeActive {
		u.Host.EnableService(u.ServiceName)
	} else {
		u.Host.DisableService(u.ServiceName)
	}
	if u.Check() != core.CheckPass {
		return core.EnforceFailure
	}
	return core.EnforceSuccess
}

// CheckStateKeys declares the single service slot the check reads (see
// core.KeyReader).
func (u *UbuntuServicePattern) CheckStateKeys() []string {
	return []string{host.ServiceKey(u.ServiceName).String()}
}

// String renders the requirement.
func (u *UbuntuServicePattern) String() string {
	verb := "must be disabled"
	if u.MustBeActive {
		verb = "must be enabled and active"
	}
	return fmt.Sprintf("[%s] The %s service %s. Status: %s",
		u.FindingID(), u.ServiceName, verb, u.Check())
}

// RegistryRequirement requires a Windows registry value, the pattern
// behind the large family of registry-based Windows 10 STIG findings.
type RegistryRequirement struct {
	core.Finding
	Host *host.Windows
	// Key is the full registry path (hive\path\name form).
	Key string
	// Want is the required value.
	Want string
}

// Check reports whether the registry value matches.
func (r *RegistryRequirement) Check() core.CheckStatus {
	if r.Host == nil {
		return core.CheckIncomplete
	}
	v, ok := r.Host.Registry(r.Key)
	return core.CheckBool(ok && v == r.Want)
}

// Enforce writes the required value.
func (r *RegistryRequirement) Enforce() core.EnforcementStatus {
	if r.Host == nil {
		return core.EnforceIncomplete
	}
	r.Host.SetRegistry(r.Key, r.Want)
	return core.EnforceSuccess
}

// CheckStateKeys declares the single registry slot the check reads (see
// core.KeyReader).
func (r *RegistryRequirement) CheckStateKeys() []string {
	return []string{host.RegistryKey(r.Key).String()}
}

// String renders the requirement.
func (r *RegistryRequirement) String() string {
	return fmt.Sprintf("[%s] Registry %s must be %q. Status: %s",
		r.FindingID(), r.Key, r.Want, r.Check())
}

var (
	_ core.CheckableEnforceableRequirement = (*UbuntuPackagePattern)(nil)
	_ core.CheckableEnforceableRequirement = (*UbuntuConfigPattern)(nil)
	_ core.CheckableEnforceableRequirement = (*UbuntuServicePattern)(nil)
	_ core.CheckableEnforceableRequirement = (*AuditPolicyRequirement)(nil)
	_ core.CheckableEnforceableRequirement = (*RegistryRequirement)(nil)

	// Every pattern declares the state keys its Check reads, so the whole
	// catalogue is indexable for push-based incremental evaluation.
	_ core.KeyReader = (*UbuntuPackagePattern)(nil)
	_ core.KeyReader = (*UbuntuConfigPattern)(nil)
	_ core.KeyReader = (*UbuntuServicePattern)(nil)
	_ core.KeyReader = (*AuditPolicyRequirement)(nil)
	_ core.KeyReader = (*RegistryRequirement)(nil)
)
