package stig

import (
	"strings"
	"testing"

	"veridevops/internal/core"
	"veridevops/internal/host"
)

func TestUbuntuServicePatternBanned(t *testing.T) {
	h := host.NewLinux()
	h.EnableService("telnet")
	req := &UbuntuServicePattern{
		Finding:     core.Finding{ID: "EXT-SVC-1", Sev: "high"},
		Host:        h,
		ServiceName: "telnet",
	}
	if req.Check() != core.CheckFail {
		t.Error("active banned service should FAIL")
	}
	if req.Enforce() != core.EnforceSuccess {
		t.Error("enforce should succeed")
	}
	if req.Check() != core.CheckPass {
		t.Error("disabled service should PASS")
	}
	if !strings.Contains(req.String(), "must be disabled") {
		t.Errorf("String = %q", req.String())
	}
}

func TestUbuntuServicePatternRequired(t *testing.T) {
	h := host.NewLinux()
	req := &UbuntuServicePattern{
		Finding:      core.Finding{ID: "EXT-SVC-2"},
		Host:         h,
		ServiceName:  "auditd",
		MustBeActive: true,
	}
	if req.Check() != core.CheckFail {
		t.Error("inactive required service should FAIL")
	}
	req.Enforce()
	if !h.ServiceActive("auditd") || req.Check() != core.CheckPass {
		t.Error("enforcement should start the service")
	}
	if !strings.Contains(req.String(), "must be enabled") {
		t.Errorf("String = %q", req.String())
	}
}

func TestUbuntuServicePatternNilHost(t *testing.T) {
	req := &UbuntuServicePattern{ServiceName: "x"}
	if req.Check() != core.CheckIncomplete || req.Enforce() != core.EnforceIncomplete {
		t.Error("nil host should be INCOMPLETE")
	}
}

func TestRegistryRequirement(t *testing.T) {
	w := host.NewWindows10()
	req := &RegistryRequirement{
		Finding: core.Finding{ID: "EXT-REG-1"},
		Host:    w,
		Key:     `HKLM\SOFTWARE\Policies\Microsoft\Windows\System\EnableSmartScreen`,
		Want:    "1",
	}
	if req.Check() != core.CheckFail {
		t.Error("unset value should FAIL")
	}
	w.SetRegistry(req.Key, "0")
	if req.Check() != core.CheckFail {
		t.Error("wrong value should FAIL")
	}
	if req.Enforce() != core.EnforceSuccess || req.Check() != core.CheckPass {
		t.Error("enforcement should set the value")
	}
	if !strings.Contains(req.String(), "EnableSmartScreen") {
		t.Errorf("String = %q", req.String())
	}
}

func TestRegistryRequirementNilHost(t *testing.T) {
	req := &RegistryRequirement{Key: "k", Want: "v"}
	if req.Check() != core.CheckIncomplete || req.Enforce() != core.EnforceIncomplete {
		t.Error("nil host should be INCOMPLETE")
	}
}

func TestExtensionPatternsRegisterInCatalog(t *testing.T) {
	h := host.NewLinux()
	w := host.NewWindows10()
	cat := core.NewCatalog()
	cat.MustRegister(&UbuntuServicePattern{
		Finding: core.Finding{ID: "EXT-SVC-3"}, Host: h, ServiceName: "rlogin",
	})
	cat.MustRegister(&RegistryRequirement{
		Finding: core.Finding{ID: "EXT-REG-2"}, Host: w, Key: `HKLM\X`, Want: "1",
	})
	rep := cat.Run(core.CheckAndEnforce)
	if rep.Compliance() != 1 {
		t.Errorf("extension patterns should enforce cleanly:\n%s", rep)
	}
}
