// Package stig implements the concrete security requirements of VeriDevOps
// D2.7: the rqcode.stigs.ubuntu and rqcode.stigs.win10 catalogues. Each
// finding is a core.CheckableEnforceableRequirement whose Check/Enforce
// operate on the simulated hosts of internal/host (standing in for live
// dpkg/auditpol access; see DESIGN.md).
package stig

import (
	"context"
	"fmt"

	"veridevops/internal/core"
	"veridevops/internal/host"
)

// UbuntuPackagePattern is the reusable security-requirement pattern from
// the STIG repository: "package NAME must (not) be installed". It mirrors
// rqcode.stigs.ubuntu.UbuntuPackagePattern.
type UbuntuPackagePattern struct {
	core.Finding
	Host *host.Linux
	// PackageName is the dpkg package under requirement.
	PackageName string
	// MustBeInstalled selects between "required" and "banned".
	MustBeInstalled bool
}

// Check reports whether the package state matches the requirement.
func (u *UbuntuPackagePattern) Check() core.CheckStatus {
	return u.CheckCtx(context.Background())
}

// CheckCtx is Check with cooperative cancellation: the dpkg probe
// observes ctx at its boundary, so an attempt the engine already
// abandoned (AttemptTimeout) unwinds instead of running on.
func (u *UbuntuPackagePattern) CheckCtx(ctx context.Context) core.CheckStatus {
	if u.Host == nil {
		return core.CheckIncomplete
	}
	return core.CheckBool(u.Host.InstalledCtx(ctx, u.PackageName) == u.MustBeInstalled)
}

// CheckStateDigest returns the canonical digest of the host state the
// check reads — the package's installed flag plus the requirement's
// expectation — for cross-host dedup of identical check work (see
// core.CheckFingerprint). The digest probe reads the host inventory
// directly, modelling a cached fleet inventory snapshot that is far
// cheaper than the per-check transport round-trip the audit itself pays.
func (u *UbuntuPackagePattern) CheckStateDigest() (string, bool) {
	if u.Host == nil {
		return "", false
	}
	return fmt.Sprintf("pkg:%s=%t;want=%t",
		u.PackageName, u.Host.Installed(u.PackageName), u.MustBeInstalled), true
}

// CheckStateKeys declares the single state slot the check reads — the
// package's installed flag — in host.StateKey canonical form, so the
// fleet's reverse dependency index can re-run exactly this check when a
// pkg event for the package arrives (see core.KeyReader).
func (u *UbuntuPackagePattern) CheckStateKeys() []string {
	return []string{host.PackageKey(u.PackageName).String()}
}

// Enforce installs or removes the package to satisfy the requirement and
// verifies the mutation took effect; a host that denies the change (for
// example a read-only host) yields FAILURE.
func (u *UbuntuPackagePattern) Enforce() core.EnforcementStatus {
	if u.Host == nil {
		return core.EnforceIncomplete
	}
	if u.MustBeInstalled {
		u.Host.Install(u.PackageName, "stig-enforced")
	} else {
		u.Host.Remove(u.PackageName)
	}
	if u.Check() != core.CheckPass {
		return core.EnforceFailure
	}
	return core.EnforceSuccess
}

// String renders the requirement in the toString style of the reference
// class.
func (u *UbuntuPackagePattern) String() string {
	verb := "must not be installed"
	if u.MustBeInstalled {
		verb = "must be installed"
	}
	return fmt.Sprintf("[%s] The %s package %s. Status: %s",
		u.FindingID(), u.PackageName, verb, u.Check())
}

// UbuntuConfigPattern is the companion pattern for key-value configuration
// requirements ("FILE must set KEY to VALUE"), used by the findings whose
// STIG check text greps a configuration file rather than dpkg.
type UbuntuConfigPattern struct {
	core.Finding
	Host  *host.Linux
	File  string
	Key   string
	Value string
}

// Check reports whether the configuration key has the required value.
func (u *UbuntuConfigPattern) Check() core.CheckStatus {
	return u.CheckCtx(context.Background())
}

// CheckCtx is Check with cooperative cancellation at the config-probe
// boundary (see UbuntuPackagePattern.CheckCtx).
func (u *UbuntuConfigPattern) CheckCtx(ctx context.Context) core.CheckStatus {
	if u.Host == nil {
		return core.CheckIncomplete
	}
	v, ok := u.Host.ConfigCtx(ctx, u.File, u.Key)
	return core.CheckBool(ok && v == u.Value)
}

// CheckStateDigest returns the canonical digest of the configuration
// state the check reads, for cross-host dedup (see
// UbuntuPackagePattern.CheckStateDigest).
func (u *UbuntuConfigPattern) CheckStateDigest() (string, bool) {
	if u.Host == nil {
		return "", false
	}
	v, ok := u.Host.Config(u.File, u.Key)
	return fmt.Sprintf("cfg:%s:%s=%q,%t;want=%q", u.File, u.Key, v, ok, u.Value), true
}

// CheckStateKeys declares the single configuration slot the check reads
// (see core.KeyReader).
func (u *UbuntuConfigPattern) CheckStateKeys() []string {
	return []string{host.ConfigKey(u.File, u.Key).String()}
}

// Enforce writes the required value and verifies it took effect.
func (u *UbuntuConfigPattern) Enforce() core.EnforcementStatus {
	if u.Host == nil {
		return core.EnforceIncomplete
	}
	u.Host.SetConfig(u.File, u.Key, u.Value)
	if u.Check() != core.CheckPass {
		return core.EnforceFailure
	}
	return core.EnforceSuccess
}

// String renders the requirement.
func (u *UbuntuConfigPattern) String() string {
	return fmt.Sprintf("[%s] %s must set %s to %s. Status: %s",
		u.FindingID(), u.File, u.Key, u.Value, u.Check())
}

const ubuntuGuide = "Canonical Ubuntu 18.04 LTS STIG"

func ubuntuFinding(id, version, sev, desc, check, fix string) core.Finding {
	return core.Finding{
		ID:        id,
		Ver:       version,
		Rule:      "SV-" + id[2:] + "r610931_rule",
		Sev:       sev,
		Desc:      desc,
		Guide:     ubuntuGuide,
		Published: "2021-06-16",
		CheckTxt:  check,
		FixTxt:    fix,
	}
}

// NewV219157 — the NIS package must not be installed.
// https://www.stigviewer.com/stig/canonical_ubuntu_18.04_lts/2021-06-16/finding/V-219157
func NewV219157(h *host.Linux) *UbuntuPackagePattern {
	return &UbuntuPackagePattern{
		Finding: ubuntuFinding("V-219157", "UBTU-18-010017", "medium",
			"Removing the Network Information Service (NIS) package decreases the risk of the accidental (or intentional) activation of NIS or NIS+ services.",
			"Verify the NIS package is not installed: dpkg -l | grep nis",
			"Remove the NIS package: sudo apt-get remove nis"),
		Host: h, PackageName: "nis", MustBeInstalled: false,
	}
}

// NewV219158 — the rsh-server package must not be installed.
// https://www.stigviewer.com/stig/canonical_ubuntu_18.04_lts/2021-06-16/finding/V-219158
func NewV219158(h *host.Linux) *UbuntuPackagePattern {
	return &UbuntuPackagePattern{
		Finding: ubuntuFinding("V-219158", "UBTU-18-010019", "high",
			"The rsh-server service provides an unencrypted remote access service that does not provide for the confidentiality and integrity of user passwords or the remote session.",
			"Verify the rsh-server package is not installed: dpkg -l | grep rsh-server",
			"Remove the rsh-server package: sudo apt-get remove rsh-server"),
		Host: h, PackageName: "rsh-server", MustBeInstalled: false,
	}
}

// NewV219161 — an SSH server must be installed so that remote access
// sessions are encrypted and centrally controllable.
// https://www.stigviewer.com/stig/canonical_ubuntu_18.04_lts/2021-06-16/finding/V-219161
func NewV219161(h *host.Linux) *UbuntuPackagePattern {
	return &UbuntuPackagePattern{
		Finding: ubuntuFinding("V-219161", "UBTU-18-010023", "high",
			"Remote access services which lack automated control capabilities increase risk. The operating system must provide a controlled, encrypted remote access method capable of enforcement actions.",
			"Verify the openssh-server package is installed: dpkg -l | grep openssh-server",
			"Install the openssh-server package: sudo apt-get install openssh-server"),
		Host: h, PackageName: "openssh-server", MustBeInstalled: true,
	}
}

// NewV219177 — passwords must be stored with a strong one-way hash
// (ENCRYPT_METHOD SHA512 in /etc/login.defs). The deliverable wraps this in
// the package pattern; the underlying STIG check text greps login.defs, so
// the config pattern is used here.
// https://www.stigviewer.com/stig/canonical_ubuntu_18.04_lts/2021-06-16/finding/V-219177
func NewV219177(h *host.Linux) *UbuntuConfigPattern {
	return &UbuntuConfigPattern{
		Finding: ubuntuFinding("V-219177", "UBTU-18-010104", "high",
			"Passwords need to be protected at all times, and encryption is the standard method for protecting passwords. If passwords are not encrypted, they can be plainly read and easily compromised.",
			"Verify ENCRYPT_METHOD is SHA512 in /etc/login.defs: grep -i encrypt_method /etc/login.defs",
			"Edit /etc/login.defs and set ENCRYPT_METHOD SHA512"),
		Host: h, File: "/etc/login.defs", Key: "ENCRYPT_METHOD", Value: "SHA512",
	}
}

// NewV219304 — the vlock package must be installed so users can manually
// lock their sessions.
// https://www.stigviewer.com/stig/canonical_ubuntu_18.04_lts/2021-06-16/finding/V-219304
func NewV219304(h *host.Linux) *UbuntuPackagePattern {
	return &UbuntuPackagePattern{
		Finding: ubuntuFinding("V-219304", "UBTU-18-010403", "medium",
			"The operating system needs to provide users with the ability to manually invoke a session lock so users may secure their session should the need arise to temporarily vacate the immediate physical vicinity.",
			"Verify the vlock package is installed: dpkg -l | grep vlock",
			"Install the vlock package: sudo apt-get install vlock"),
		Host: h, PackageName: "vlock", MustBeInstalled: true,
	}
}

// NewV219318 — the libpam-pkcs11 package must be installed for multifactor
// (smart card) authentication.
// https://www.stigviewer.com/stig/canonical_ubuntu_18.04_lts/2021-06-16/finding/V-219318
func NewV219318(h *host.Linux) *UbuntuPackagePattern {
	return &UbuntuPackagePattern{
		Finding: ubuntuFinding("V-219318", "UBTU-18-010425", "medium",
			"Using an authentication device, such as a CAC or token that is separate from the information system, ensures that even if the information system is compromised, that compromise will not affect credentials stored on the authentication device.",
			"Verify the libpam-pkcs11 package is installed: dpkg -l | grep libpam-pkcs11",
			"Install the libpam-pkcs11 package: sudo apt-get install libpam-pkcs11"),
		Host: h, PackageName: "libpam-pkcs11", MustBeInstalled: true,
	}
}

// NewV219319 — the opensc-pkcs11 package must be installed to accept PIV
// credentials.
// https://www.stigviewer.com/stig/canonical_ubuntu_18.04_lts/2021-06-16/finding/V-219319
func NewV219319(h *host.Linux) *UbuntuPackagePattern {
	return &UbuntuPackagePattern{
		Finding: ubuntuFinding("V-219319", "UBTU-18-010426", "medium",
			"The use of PIV credentials facilitates standardization and reduces the risk of unauthorized access. DoD has mandated the use of the CAC to support identity management and personal authentication.",
			"Verify the opensc-pkcs11 package is installed: dpkg -l | grep opensc-pkcs11",
			"Install the opensc-pkcs11 package: sudo apt-get install opensc-pkcs11"),
		Host: h, PackageName: "opensc-pkcs11", MustBeInstalled: true,
	}
}

// NewV219343 — a file-integrity tool (AIDE) must be installed to verify
// the correct operation of security functions.
// https://www.stigviewer.com/stig/canonical_ubuntu_18.04_lts/2021-06-16/finding/V-219343
func NewV219343(h *host.Linux) *UbuntuPackagePattern {
	return &UbuntuPackagePattern{
		Finding: ubuntuFinding("V-219343", "UBTU-18-010450", "medium",
			"Without verification of the security functions, security functions may not operate correctly and the failure may go unnoticed. Security function verification includes file integrity monitoring of the software enforcing the security policy.",
			"Verify the aide package is installed: dpkg -l | grep aide",
			"Install the aide package: sudo apt-get install aide"),
		Host: h, PackageName: "aide", MustBeInstalled: true,
	}
}

// UbuntuCatalog registers every implemented Ubuntu 18.04 finding against
// the host, mirroring the rqcode.stigs.ubuntu.Main instantiation example.
func UbuntuCatalog(h *host.Linux) *core.Catalog {
	c := core.NewCatalog()
	c.MustRegister(NewV219157(h))
	c.MustRegister(NewV219158(h))
	c.MustRegister(NewV219161(h))
	c.MustRegister(NewV219177(h))
	c.MustRegister(NewV219304(h))
	c.MustRegister(NewV219318(h))
	c.MustRegister(NewV219319(h))
	c.MustRegister(NewV219343(h))
	return c
}
