package stig_test

import (
	"testing"

	"veridevops/internal/core"
	"veridevops/internal/fleet"
	"veridevops/internal/host"
	"veridevops/internal/stig"
)

// The declared-reads contract behind the reverse dependency index is
// verified mechanically here: instead of hand-maintained byte-identity
// assertions (pre-PR-10), the dynamic oracle records which state keys
// each check actually reads (host.ReadRecorder) and cross-checks them
// against CheckStateKeys, and the mutator side is tied in by asserting
// the event key every mutation logs is one of the keys the check read.

// patternCases enumerates one requirement per pattern kind with the
// mutation touching the slot it reads.
func patternCases(l *host.Linux, w *host.Windows) []struct {
	name   string
	req    core.CheckableEnforceableRequirement
	rec    fleet.Recordable
	log    *host.EventLog
	mutate func()
} {
	return []struct {
		name   string
		req    core.CheckableEnforceableRequirement
		rec    fleet.Recordable
		log    *host.EventLog
		mutate func()
	}{
		{"package", stig.NewV219343(l), l, l.Log(), func() { l.Install("aide", "1") }},
		{"config", stig.NewV219177(l), l, l.Log(), func() { l.SetConfig("/etc/login.defs", "ENCRYPT_METHOD", "MD5") }},
		{"service", &stig.UbuntuServicePattern{Finding: core.Finding{ID: "T-1", Sev: "medium", Desc: "auditd must run"}, Host: l, ServiceName: "auditd", MustBeActive: true},
			l, l.Log(), func() { l.EnableService("auditd") }},
		{"audit", stig.NewV63447(w), w, w.Log(), func() {
			_ = w.SetAudit("User Account Management", host.AuditSetting{Failure: true})
		}},
		{"registry", &stig.RegistryRequirement{Finding: core.Finding{ID: "T-2", Sev: "medium", Desc: "policy value"}, Host: w, Key: `HKLM\X`, Want: "1"},
			w, w.Log(), func() { w.SetRegistry(`HKLM\X`, "1") }},
	}
}

// TestPatternReadsCoverMutatorKeys replaces the old byte-identity
// assertions: for every pattern kind, the key the mutator logs must be
// one the check was recorded reading AND one the check declares —
// otherwise a change never re-triggers its check under push evaluation.
func TestPatternReadsCoverMutatorKeys(t *testing.T) {
	l := host.NewLinux()
	w := host.NewWindows10()
	for _, c := range patternCases(l, w) {
		cat := core.NewCatalog()
		cat.MustRegister(c.req)
		rec := host.NewReadRecorder()
		c.rec.SetRecorder(rec)
		cat.RunEngine(core.RunOptions{Mode: core.CheckOnly, Workers: 1})
		c.rec.SetRecorder(nil)
		read := map[string]bool{}
		for _, k := range rec.Keys() {
			read[k] = true
		}
		if len(read) == 0 {
			t.Errorf("%s: check recorded no reads", c.name)
			continue
		}
		declared := map[string]bool{}
		keys, ok := core.CheckKeys(c.req)
		if !ok {
			t.Errorf("%s: declares no state keys", c.name)
			continue
		}
		for _, k := range keys {
			declared[k] = true
		}
		before := c.log.Len()
		c.mutate()
		evs := c.log.Since(before)
		if len(evs) != 1 {
			t.Errorf("%s: mutation logged %d events, want 1", c.name, len(evs))
			continue
		}
		key := evs[0].Key.String()
		if !read[key] {
			t.Errorf("%s: mutator key %q was not among recorded reads %v", c.name, key, rec.Keys())
		}
		if !declared[key] {
			t.Errorf("%s: mutator key %q not declared in %v", c.name, key, keys)
		}
	}
}

// TestCatalogueReadsMatchDeclarations runs the dynamic oracle over the
// shipped catalogues plus one instance of each generic pattern: zero
// violations of any kind — every recorded read declared, every declared
// key actually read on the seed host states.
func TestCatalogueReadsMatchDeclarations(t *testing.T) {
	l := host.NewUbuntu1804()
	w := host.NewWindows10()

	for _, tc := range []struct {
		name  string
		cat   *core.Catalog
		hosts []fleet.Recordable
	}{
		{"ubuntu", stig.UbuntuCatalog(l), []fleet.Recordable{l}},
		{"win10", stig.Win10Catalog(w), []fleet.Recordable{w}},
		{"patterns", patternCatalog(l, w), []fleet.Recordable{l, w}},
	} {
		for _, v := range fleet.VerifyReads(tc.cat, tc.hosts...) {
			t.Errorf("%s: %s", tc.name, v)
		}
	}
}

// patternCatalog registers one instance of each generic pattern that is
// not part of a shipped catalogue, so the oracle covers the whole
// pattern surface.
func patternCatalog(l *host.Linux, w *host.Windows) *core.Catalog {
	cat := core.NewCatalog()
	cat.MustRegister(&stig.UbuntuServicePattern{Finding: core.Finding{ID: "T-svc", Sev: "medium", Desc: "auditd must run"}, Host: l, ServiceName: "auditd", MustBeActive: true})
	cat.MustRegister(&stig.RegistryRequirement{Finding: core.Finding{ID: "T-reg", Sev: "medium", Desc: "policy value"}, Host: w, Key: `HKLM\X`, Want: "1"})
	return cat
}

// TestCatalogsFullyIndexable verifies every registered Ubuntu and Win10
// finding declares its read keys: no silent fallback-to-full-sweep
// entries hide in the shipped catalogues.
func TestCatalogsFullyIndexable(t *testing.T) {
	for _, c := range []*core.Catalog{
		stig.UbuntuCatalog(host.NewUbuntu1804()),
		stig.Win10Catalog(host.NewWindows10()),
	} {
		for _, req := range c.All() {
			if _, ok := core.CheckKeys(req); !ok {
				t.Errorf("%s declares no state keys", req.FindingID())
			}
		}
	}
}
