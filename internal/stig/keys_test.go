package stig

import (
	"testing"

	"veridevops/internal/core"
	"veridevops/internal/host"
)

// TestPatternsDeclareMutatorKeys pins the load-bearing contract of the
// reverse dependency index: the key a pattern declares via
// core.KeyReader must be byte-identical to the key the corresponding
// host mutator attaches to its event — otherwise a change never
// re-triggers its check under push evaluation.
func TestPatternsDeclareMutatorKeys(t *testing.T) {
	l := host.NewLinux()
	w := host.NewWindows10()

	cases := []struct {
		name   string
		req    core.Requirement
		mutate func()
	}{
		{"package", NewV219343(l), func() { l.Install("aide", "1") }},
		{"config", NewV219177(l), func() { l.SetConfig("/etc/login.defs", "ENCRYPT_METHOD", "MD5") }},
		{"service", &UbuntuServicePattern{Finding: core.Finding{ID: "T-1"}, Host: l, ServiceName: "auditd", MustBeActive: true},
			func() { l.EnableService("auditd") }},
		{"audit", NewV63447(w), func() {
			if err := w.SetAudit("User Account Management", host.AuditSetting{Failure: true}); err != nil {
				t.Fatal(err)
			}
		}},
		{"registry", &RegistryRequirement{Finding: core.Finding{ID: "T-2"}, Host: w, Key: `HKLM\X`, Want: "1"},
			func() { w.SetRegistry(`HKLM\X`, "1") }},
	}
	logs := map[string]*host.EventLog{
		"package": l.Log(), "config": l.Log(), "service": l.Log(),
		"audit": w.Log(), "registry": w.Log(),
	}

	for _, c := range cases {
		keys, ok := core.CheckKeys(c.req)
		if !ok || len(keys) != 1 {
			t.Errorf("%s: CheckKeys = (%v, %v), want exactly one key", c.name, keys, ok)
			continue
		}
		log := logs[c.name]
		before := log.Len()
		c.mutate()
		evs := log.Since(before)
		if len(evs) != 1 {
			t.Errorf("%s: mutation logged %d events, want 1", c.name, len(evs))
			continue
		}
		if got := evs[0].Key.String(); got != keys[0] {
			t.Errorf("%s: mutator key %q != declared key %q", c.name, got, keys[0])
		}
	}
}

// TestUbuntuCatalogFullyIndexable verifies every registered Ubuntu and
// Win10 finding declares its read keys: no silent fallback-to-full-sweep
// entries hide in the shipped catalogues.
func TestUbuntuCatalogFullyIndexable(t *testing.T) {
	for _, c := range []*core.Catalog{
		UbuntuCatalog(host.NewUbuntu1804()),
		Win10Catalog(host.NewWindows10()),
	} {
		for _, req := range c.All() {
			if _, ok := core.CheckKeys(req); !ok {
				t.Errorf("%s declares no state keys", req.FindingID())
			}
		}
	}
}
