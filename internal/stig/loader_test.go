package stig

import (
	"strings"
	"testing"

	"veridevops/internal/core"
	"veridevops/internal/host"
)

const catalogJSON = `[
  {"kind":"package","id":"EXT-001","severity":"high","package":"telnetd",
   "description":"Telnet transmits credentials in cleartext."},
  {"kind":"package","id":"EXT-002","severity":"medium","package":"auditd","must_be_installed":true},
  {"kind":"config","id":"EXT-003","file":"/etc/ssh/sshd_config","key":"PermitRootLogin","value":"no"},
  {"kind":"service","id":"EXT-004","service":"rlogin"},
  {"kind":"service","id":"EXT-005","service":"auditd","must_be_active":true},
  {"kind":"audit","id":"EXT-006","category":"Policy Change","subcategory":"Audit Policy Change","success":true},
  {"kind":"registry","id":"EXT-007","key":"HKLM\\Policies\\EnableSmartScreen","value":"1"}
]`

func TestLoadCatalog(t *testing.T) {
	h := host.NewLinux()
	w := host.NewWindows10()
	h.Install("telnetd", "0.1")
	h.EnableService("rlogin")

	cat, err := LoadCatalog(strings.NewReader(catalogJSON), Hosts{Linux: h, Windows: w})
	if err != nil {
		t.Fatal(err)
	}
	if cat.Len() != 7 {
		t.Fatalf("catalogue = %d entries, want 7", cat.Len())
	}
	before := cat.Run(core.CheckOnly)
	if before.Compliance() == 1 {
		t.Fatal("host violates several loaded findings")
	}
	after := cat.Run(core.CheckAndEnforce)
	if after.Compliance() != 1 {
		t.Errorf("enforcement incomplete:\n%s", after)
	}
	// Spot checks of each pattern's effect.
	if h.Installed("telnetd") || !h.Installed("auditd") {
		t.Error("package patterns not applied")
	}
	if v, _ := h.Config("/etc/ssh/sshd_config", "PermitRootLogin"); v != "no" {
		t.Error("config pattern not applied")
	}
	if h.ServiceActive("rlogin") || !h.ServiceActive("auditd") {
		t.Error("service patterns not applied")
	}
	if s, _ := w.GetAudit("Audit Policy Change"); !s.Success {
		t.Error("audit pattern not applied")
	}
	if v, _ := w.Registry(`HKLM\Policies\EnableSmartScreen`); v != "1" {
		t.Error("registry pattern not applied")
	}
}

func TestLoadCatalogMetadata(t *testing.T) {
	h := host.NewLinux()
	cat, err := LoadCatalog(strings.NewReader(catalogJSON), Hosts{Linux: h, Windows: host.NewWindows10()})
	if err != nil {
		t.Fatal(err)
	}
	req, ok := cat.Lookup("EXT-001")
	if !ok {
		t.Fatal("EXT-001 missing")
	}
	if req.Severity() != "high" || !strings.Contains(req.Description(), "cleartext") {
		t.Errorf("metadata lost: sev=%q desc=%q", req.Severity(), req.Description())
	}
}

func TestLoadCatalogErrors(t *testing.T) {
	h := host.NewLinux()
	w := host.NewWindows10()
	both := Hosts{Linux: h, Windows: w}
	cases := []struct {
		name, doc string
		hosts     Hosts
	}{
		{"malformed json", "[{", both},
		{"unknown kind", `[{"kind":"frobnicate","id":"X"}]`, both},
		{"missing id", `[{"kind":"package","package":"x"}]`, both},
		{"package without name", `[{"kind":"package","id":"X"}]`, both},
		{"config without key", `[{"kind":"config","id":"X","file":"/f"}]`, both},
		{"service without name", `[{"kind":"service","id":"X"}]`, both},
		{"audit without subcategory", `[{"kind":"audit","id":"X","success":true}]`, both},
		{"audit without flags", `[{"kind":"audit","id":"X","subcategory":"Logon"}]`, both},
		{"registry without key", `[{"kind":"registry","id":"X"}]`, both},
		{"linux kind without host", `[{"kind":"package","id":"X","package":"p"}]`, Hosts{Windows: w}},
		{"windows kind without host", `[{"kind":"registry","id":"X","key":"k"}]`, Hosts{Linux: h}},
		{"duplicate ids", `[{"kind":"package","id":"X","package":"a"},{"kind":"package","id":"X","package":"b"}]`, both},
	}
	for _, c := range cases {
		if _, err := LoadCatalog(strings.NewReader(c.doc), c.hosts); err == nil {
			t.Errorf("%s: LoadCatalog should fail", c.name)
		}
	}
}
