package stig

import (
	"testing"

	"veridevops/internal/core"
	"veridevops/internal/host"
	"veridevops/internal/monitor"
)

// Failure injection: a read-only host denies every mutation, so
// enforcement must report FAILURE instead of silently claiming success.

func TestPackageEnforceFailsOnReadOnlyHost(t *testing.T) {
	h := host.NewUbuntu1804()
	h.Install("nis", "1")
	h.SetReadOnly(true)

	req := NewV219157(h)
	if req.Check() != core.CheckFail {
		t.Fatal("precondition: nis installed")
	}
	if got := req.Enforce(); got != core.EnforceFailure {
		t.Errorf("Enforce = %v, want FAILURE on read-only host", got)
	}
	if req.Check() != core.CheckFail {
		t.Error("read-only host must still be non-compliant")
	}
	h.SetReadOnly(false)
	if req.Enforce() != core.EnforceSuccess || req.Check() != core.CheckPass {
		t.Error("enforcement must succeed once the host is writable")
	}
}

func TestConfigEnforceFailsOnReadOnlyHost(t *testing.T) {
	h := host.NewLinux()
	h.SetReadOnly(true)
	req := NewV219177(h)
	if got := req.Enforce(); got != core.EnforceFailure {
		t.Errorf("Enforce = %v, want FAILURE", got)
	}
}

func TestServiceEnforceFailsOnReadOnlyHost(t *testing.T) {
	h := host.NewLinux()
	h.EnableService("telnet")
	h.SetReadOnly(true)
	req := &UbuntuServicePattern{Finding: core.Finding{ID: "EXT-1"}, Host: h, ServiceName: "telnet"}
	if got := req.Enforce(); got != core.EnforceFailure {
		t.Errorf("Enforce = %v, want FAILURE", got)
	}
}

func TestDeniedMutationsAreLogged(t *testing.T) {
	h := host.NewLinux()
	h.SetReadOnly(true)
	before := h.Log().Len()
	h.Install("nis", "1")
	h.Remove("nis")
	h.SetConfig("/f", "k", "v")
	evs := h.Log().Since(before)
	if len(evs) != 3 {
		t.Fatalf("denied events = %d, want 3", len(evs))
	}
	for _, e := range evs {
		if e.Action != "apt.install.denied" && e.Action != "apt.remove.denied" && e.Action != "config.set.denied" {
			t.Errorf("unexpected action %q", e.Action)
		}
	}
}

func TestCatalogReportsEnforcementFailures(t *testing.T) {
	h := host.NewUbuntu1804()
	cat := UbuntuCatalog(h)
	cat.Run(core.CheckAndEnforce) // harden
	h.Install("nis", "1")
	h.SetReadOnly(true)

	rep := cat.Run(core.CheckAndEnforce)
	if rep.Compliance() == 1 {
		t.Fatal("read-only host cannot be brought compliant")
	}
	found := false
	for _, res := range rep.Results {
		if res.FindingID == "V-219157" {
			if !res.Enforced || res.Enforcement != core.EnforceFailure || res.After != core.CheckFail {
				t.Errorf("V-219157 result = %+v", res)
			}
			found = true
		}
	}
	if !found {
		t.Fatal("V-219157 missing from report")
	}
}

func TestMonitorRecordsFailedRepairs(t *testing.T) {
	h := host.NewUbuntu1804()
	s := monitor.NewScheduler(10)
	s.AutoEnforce = true
	s.WatchEnforceable("V-219157", NewV219157(h))
	s.Run(200, []monitor.TimedAction{
		{At: 40, Do: func() { h.Install("nis", "1"); h.SetReadOnly(true) }},
	})
	alarms := s.Alarms()
	if len(alarms) != 1 {
		t.Fatalf("alarms = %d, want 1 (episode persists)", len(alarms))
	}
	a := alarms[0]
	if !a.Enforced || a.Enforcement != core.EnforceFailure || a.RepairedAt != -1 {
		t.Errorf("alarm = %+v, want failed enforcement with no repair", a)
	}
}

func TestUnreachableHostAuditCompletesAllError(t *testing.T) {
	// Connectivity fault: every probe panics. The engine must recover each
	// panic into an ERROR verdict and the audit must still complete.
	h := host.NewUbuntu1804()
	cat := UbuntuCatalog(h)
	cat.Run(core.CheckAndEnforce) // harden while reachable
	h.SetUnreachable(true)

	rep, st := cat.RunEngine(core.RunOptions{Mode: core.CheckOnly, Workers: 4})
	if len(rep.Results) != len(cat.All()) {
		t.Fatalf("results = %d, want %d (audit must complete)", len(rep.Results), len(cat.All()))
	}
	for _, r := range rep.Results {
		if r.After != core.CheckError {
			t.Errorf("%s = %v, want ERROR while unreachable", r.FindingID, r.After)
		}
	}
	if st.Errors != len(rep.Results) || st.Panics < len(rep.Results) {
		t.Errorf("telemetry = %+v, want every requirement errored via a recovered panic", st)
	}

	h.SetUnreachable(false)
	if c := cat.Run(core.CheckOnly).Compliance(); c != 1 {
		t.Errorf("compliance after reconnect = %v, want 1 (outage must not corrupt state)", c)
	}
}
