package stig

import (
	"context"
	"math/rand"
	"strings"
	"testing"

	"veridevops/internal/core"
	"veridevops/internal/host"
)

func TestUbuntuPackagePatternBanned(t *testing.T) {
	h := host.NewLinux()
	req := NewV219157(h) // nis must not be installed
	if req.Check() != core.CheckPass {
		t.Error("absent banned package should PASS")
	}
	h.Install("nis", "3.17")
	if req.Check() != core.CheckFail {
		t.Error("installed banned package should FAIL")
	}
	if req.Enforce() != core.EnforceSuccess {
		t.Error("enforcement should succeed")
	}
	if req.Check() != core.CheckPass {
		t.Error("after enforcement the check should PASS")
	}
}

func TestUbuntuPackagePatternRequired(t *testing.T) {
	h := host.NewLinux()
	req := NewV219304(h) // vlock must be installed
	if req.Check() != core.CheckFail {
		t.Error("missing required package should FAIL")
	}
	if req.Enforce() != core.EnforceSuccess {
		t.Error("enforcement should succeed")
	}
	if !h.Installed("vlock") {
		t.Error("enforcement should install the package")
	}
	if req.Check() != core.CheckPass {
		t.Error("after enforcement the check should PASS")
	}
}

func TestUbuntuPatternNilHost(t *testing.T) {
	req := &UbuntuPackagePattern{PackageName: "nis"}
	if req.Check() != core.CheckIncomplete {
		t.Error("nil host check should be INCOMPLETE")
	}
	if req.Enforce() != core.EnforceIncomplete {
		t.Error("nil host enforce should be INCOMPLETE")
	}
	cfg := &UbuntuConfigPattern{File: "/f", Key: "k", Value: "v"}
	if cfg.Check() != core.CheckIncomplete || cfg.Enforce() != core.EnforceIncomplete {
		t.Error("nil host config pattern should be INCOMPLETE")
	}
}

func TestUbuntuConfigPattern(t *testing.T) {
	h := host.NewLinux()
	req := NewV219177(h) // ENCRYPT_METHOD SHA512
	if req.Check() != core.CheckFail {
		t.Error("unset key should FAIL")
	}
	h.SetConfig("/etc/login.defs", "ENCRYPT_METHOD", "MD5")
	if req.Check() != core.CheckFail {
		t.Error("wrong value should FAIL")
	}
	if req.Enforce() != core.EnforceSuccess {
		t.Error("enforcement should succeed")
	}
	if req.Check() != core.CheckPass {
		t.Error("after enforcement the check should PASS")
	}
	if !strings.Contains(req.String(), "ENCRYPT_METHOD") {
		t.Errorf("String = %q", req.String())
	}
}

func TestUbuntuFindingMetadata(t *testing.T) {
	h := host.NewLinux()
	req := NewV219158(h)
	if req.FindingID() != "V-219158" {
		t.Errorf("FindingID = %q", req.FindingID())
	}
	if req.Severity() != "high" {
		t.Errorf("Severity = %q", req.Severity())
	}
	if req.STIG() != "Canonical Ubuntu 18.04 LTS STIG" {
		t.Errorf("STIG = %q", req.STIG())
	}
	if !strings.Contains(req.Description(), "rsh-server") {
		t.Error("description should mention rsh-server")
	}
	if !strings.Contains(req.String(), "V-219158") {
		t.Errorf("String = %q", req.String())
	}
	var _ core.CheckableEnforceableRequirement = req
}

func TestUbuntuCatalogRoundTrip(t *testing.T) {
	h := host.NewUbuntu1804()
	rng := rand.New(rand.NewSource(17))
	host.DriftLinux(h, 12, rng)

	cat := UbuntuCatalog(h)
	if cat.Len() != 8 {
		t.Fatalf("catalogue has %d findings, want 8", cat.Len())
	}
	before := cat.Run(core.CheckOnly)
	if before.Compliance() == 1 {
		t.Fatal("drifted host should not be fully compliant")
	}
	after := cat.Run(core.CheckAndEnforce)
	if after.Compliance() != 1 {
		t.Errorf("after enforcement compliance = %.2f, want 1.0\n%s",
			after.Compliance(), after)
	}
	// Idempotence: a second audit run stays compliant without enforcing.
	again := cat.Run(core.CheckOnly)
	if again.Compliance() != 1 {
		t.Error("compliance should persist")
	}
}

func TestWin10AuditRequirementCheckEnforce(t *testing.T) {
	w := host.NewWindows10()
	req := NewV63487(w) // Sensitive Privilege Use success auditing
	if req.Check() != core.CheckFail {
		t.Error("fresh Windows 10 should FAIL the sensitive-privilege-use audit")
	}
	if req.Enforce() != core.EnforceSuccess {
		t.Error("enforcement should succeed")
	}
	if req.Check() != core.CheckPass {
		t.Error("after enforcement the check should PASS")
	}
	// The success flag was enabled without touching failure.
	s, _ := w.GetAudit("Sensitive Privilege Use")
	if !s.Success || s.Failure {
		t.Errorf("setting = %v, want success only", s)
	}
}

func TestWin10PreservesUnconstrainedFlag(t *testing.T) {
	w := host.NewWindows10()
	if err := w.SetAudit("Logon", host.AuditSetting{Success: true}); err != nil {
		t.Fatal(err)
	}
	req := NewV63463(w) // Logon failures
	if req.Check() != core.CheckFail {
		t.Fatal("failure auditing off: must FAIL")
	}
	req.Enforce()
	s, _ := w.GetAudit("Logon")
	if !s.Success || !s.Failure {
		t.Errorf("enforcement must preserve the success flag: %v", s)
	}
	// V-63467 (Logon successes) now passes without enforcement.
	if NewV63467(w).Check() != core.CheckPass {
		t.Error("success flag should satisfy V-63467")
	}
}

func TestWin10PatternAccessors(t *testing.T) {
	w := host.NewWindows10()
	req := NewV63449(w)
	if req.GetCategory() != "Account Management" {
		t.Errorf("GetCategory = %q", req.GetCategory())
	}
	if req.GetSubcategory() != "User Account Management" {
		t.Errorf("GetSubcategory = %q", req.GetSubcategory())
	}
	if req.GetInclusionSetting() != "Failure" {
		t.Errorf("GetInclusionSetting = %q", req.GetInclusionSetting())
	}
	if req.GetSuccess() != "" || req.GetFailure() != "enable" {
		t.Errorf("flags = %q/%q", req.GetSuccess(), req.GetFailure())
	}
	both := &AuditPolicyRequirement{WantSuccess: true, WantFailure: true}
	if both.GetInclusionSetting() != "Success and Failure" {
		t.Errorf("GetInclusionSetting = %q", both.GetInclusionSetting())
	}
	if !strings.Contains(req.String(), "User Account Management") {
		t.Errorf("String = %q", req.String())
	}
}

func TestWin10NilHost(t *testing.T) {
	req := &AuditPolicyRequirement{Subcategory: "Logon"}
	if req.Check() != core.CheckIncomplete {
		t.Error("nil host check should be INCOMPLETE")
	}
	if req.Enforce() != core.EnforceIncomplete {
		t.Error("nil host enforce should be INCOMPLETE")
	}
}

func TestWin10UnknownSubcategoryIncomplete(t *testing.T) {
	w := host.NewWindows10()
	req := &AuditPolicyRequirement{AP: host.AuditPol{W: w}, Subcategory: "Ghost"}
	if req.Check() != core.CheckIncomplete {
		t.Error("unknown subcategory should be INCOMPLETE")
	}
	req.WantSuccess = true
	if req.Enforce() != core.EnforceFailure {
		t.Error("enforcing an unknown subcategory should FAIL")
	}
}

func TestWindows10GuideRoundTrip(t *testing.T) {
	w := host.NewWindows10()
	guide := Windows10SecurityTechnicalImplementationGuide{Host: w}
	if got := len(guide.AllSTIGs()); got != 6 {
		t.Fatalf("AllSTIGs = %d findings, want 6", got)
	}
	cat := guide.Catalog()
	before := cat.Run(core.CheckOnly)
	if before.Compliance() == 1 {
		t.Fatal("fresh Windows 10 should not be compliant")
	}
	after := cat.Run(core.CheckAndEnforce)
	if after.Compliance() != 1 {
		t.Errorf("after enforcement compliance = %.2f, want 1.0\n%s", after.Compliance(), after)
	}
}

func TestWin10CatalogDriftRecovery(t *testing.T) {
	w := host.NewWindows10()
	cat := Win10Catalog(w)
	cat.Run(core.CheckAndEnforce) // harden
	host.DriftWindows(w, 6, rand.New(rand.NewSource(3)))
	mid := cat.Run(core.CheckOnly)
	if mid.Compliance() == 1 {
		t.Skip("drift happened to hit only unconstrained subcategories")
	}
	after := cat.Run(core.CheckAndEnforce)
	if after.Compliance() != 1 {
		t.Error("re-enforcement should restore compliance")
	}
}

func TestUbuntuFindingIDsMatchDeliverable(t *testing.T) {
	// The catalogue must expose exactly the findings listed in D2.7.
	h := host.NewLinux()
	got := UbuntuCatalog(h).IDs()
	want := []string{
		"V-219157", "V-219158", "V-219161", "V-219177",
		"V-219304", "V-219318", "V-219319", "V-219343",
	}
	if len(got) != len(want) {
		t.Fatalf("IDs = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("IDs = %v, want %v", got, want)
		}
	}
}

func TestWin10FindingIDsMatchDeliverable(t *testing.T) {
	got := Win10Catalog(host.NewWindows10()).IDs()
	want := []string{"V-63447", "V-63449", "V-63463", "V-63467", "V-63483", "V-63487"}
	if len(got) != len(want) {
		t.Fatalf("IDs = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("IDs = %v, want %v", got, want)
		}
	}
}

func TestUbuntuCheckStateDigests(t *testing.T) {
	a, b := host.NewUbuntu1804(), host.NewUbuntu1804()
	ra, rb := NewV219157(a), NewV219157(b)
	da, ok := ra.CheckStateDigest()
	if !ok {
		t.Fatal("package pattern must digest its state")
	}
	db, _ := rb.CheckStateDigest()
	if da != db {
		t.Errorf("identical hosts digest differently: %q vs %q", da, db)
	}
	// Diverging the read state diverges the digest.
	b.Install("nis", "0.legacy")
	if db2, _ := rb.CheckStateDigest(); db2 == da {
		t.Error("digest ignored the package state the check reads")
	}
	// Config pattern likewise.
	ca, _ := NewV219177(a).CheckStateDigest()
	cb, _ := NewV219177(b).CheckStateDigest()
	if ca != cb {
		t.Errorf("config digests diverge on identical config: %q vs %q", ca, cb)
	}
	b.SetConfig("/etc/login.defs", "ENCRYPT_METHOD", "MD5")
	if cb2, _ := NewV219177(b).CheckStateDigest(); cb2 == ca {
		t.Error("config digest ignored the value the check reads")
	}
	// Nil-host patterns are undigestable, not wrong.
	if _, ok := (&UbuntuPackagePattern{}).CheckStateDigest(); ok {
		t.Error("nil host must not digest")
	}
}

func TestUbuntuCheckCtxMatchesCheck(t *testing.T) {
	h := host.NewUbuntu1804()
	for _, r := range UbuntuCatalog(h).All() {
		cc, ok := r.(core.ContextChecker)
		if !ok {
			t.Fatalf("%s does not implement ContextChecker", r.FindingID())
		}
		if got, want := cc.CheckCtx(context.Background()), r.Check(); got != want {
			t.Errorf("%s: CheckCtx = %s, Check = %s", r.FindingID(), got, want)
		}
	}
}
