package stig

import (
	"fmt"

	"veridevops/internal/core"
	"veridevops/internal/host"
)

// AuditPolicyRequirement is the Windows 10 STIG requirement pattern for
// advanced audit-policy settings, mirroring
// rqcode.patterns.win10.AuditPolicyRequirement. It checks and enforces
// through the auditpol text interface (host.AuditPol), the Go analogue of
// the reference implementation forking auditpol.exe.
type AuditPolicyRequirement struct {
	core.Finding
	AP host.AuditPol
	// Category and Subcategory locate the policy in the auditpol taxonomy.
	Category, Subcategory string
	// WantSuccess / WantFailure are the audit flags the finding requires
	// to be enabled.
	WantSuccess, WantFailure bool
}

// GetCategory returns the audit category, as in the reference class.
func (r *AuditPolicyRequirement) GetCategory() string { return r.Category }

// GetSubcategory returns the audit subcategory.
func (r *AuditPolicyRequirement) GetSubcategory() string { return r.Subcategory }

// GetInclusionSetting renders the required setting ("Success", "Failure"
// or "Success and Failure").
func (r *AuditPolicyRequirement) GetInclusionSetting() string {
	return host.AuditSetting{Success: r.WantSuccess, Failure: r.WantFailure}.String()
}

// GetSuccess renders the required success flag.
func (r *AuditPolicyRequirement) GetSuccess() string {
	if r.WantSuccess {
		return "enable"
	}
	return ""
}

// GetFailure renders the required failure flag.
func (r *AuditPolicyRequirement) GetFailure() string {
	if r.WantFailure {
		return "enable"
	}
	return ""
}

// Check runs auditpol /get and verifies that the required flags are set.
// Flags the finding does not require are left unconstrained, matching the
// STIG check text ("if the system does not audit the following, this is a
// finding").
func (r *AuditPolicyRequirement) Check() core.CheckStatus {
	if r.AP.W == nil {
		return core.CheckIncomplete
	}
	out, err := r.AP.Run("/get", fmt.Sprintf("/subcategory:%q", r.Subcategory))
	if err != nil {
		return core.CheckIncomplete
	}
	s, err := host.ParseSetting(out, r.Subcategory)
	if err != nil {
		return core.CheckIncomplete
	}
	if r.WantSuccess && !s.Success {
		return core.CheckFail
	}
	if r.WantFailure && !s.Failure {
		return core.CheckFail
	}
	return core.CheckPass
}

// CheckStateKeys declares the single audit-policy subcategory the check
// reads (see core.KeyReader).
func (r *AuditPolicyRequirement) CheckStateKeys() []string {
	return []string{host.AuditKey(r.Subcategory).String()}
}

// Enforce runs auditpol /set enabling the required flags, preserving flags
// the finding does not constrain.
func (r *AuditPolicyRequirement) Enforce() core.EnforcementStatus {
	if r.AP.W == nil {
		return core.EnforceIncomplete
	}
	args := []string{"/set", fmt.Sprintf("/subcategory:%q", r.Subcategory)}
	if r.WantSuccess {
		args = append(args, "/success:enable")
	}
	if r.WantFailure {
		args = append(args, "/failure:enable")
	}
	if _, err := r.AP.Run(args...); err != nil {
		return core.EnforceFailure
	}
	return core.EnforceSuccess
}

// String renders the requirement.
func (r *AuditPolicyRequirement) String() string {
	return fmt.Sprintf("[%s] Audit %s >> %s must include %s. Status: %s",
		r.FindingID(), r.Category, r.Subcategory, r.GetInclusionSetting(), r.Check())
}

// The intermediate pattern layers of the reference hierarchy
// (AccountManagementRequirement, LogonLogoffRequirement,
// PrivilegeUseRequirement and their subcategory refinements) become
// constructor helpers: Go composes by embedding rather than subclassing,
// and the only state each layer adds is the category/subcategory pair.

func newAccountManagement(sub string) AuditPolicyRequirement {
	return AuditPolicyRequirement{Category: "Account Management", Subcategory: sub}
}

func newUserAccountManagement() AuditPolicyRequirement {
	return newAccountManagement("User Account Management")
}

func newLogonLogoff(sub string) AuditPolicyRequirement {
	return AuditPolicyRequirement{Category: "Logon/Logoff", Subcategory: sub}
}

func newLogon() AuditPolicyRequirement { return newLogonLogoff("Logon") }

func newPrivilegeUse(sub string) AuditPolicyRequirement {
	return AuditPolicyRequirement{Category: "Privilege Use", Subcategory: sub}
}

func newSensitivePrivilegeUse() AuditPolicyRequirement {
	return newPrivilegeUse("Sensitive Privilege Use")
}

const win10Guide = "Windows 10 STIG"

const auditTrailDesc = "Maintaining an audit trail of system activity logs can help identify configuration errors, troubleshoot service disruptions, and analyze compromises that have occurred, as well as detect attacks."

func win10Finding(id, version string, sub, setting string) core.Finding {
	return core.Finding{
		ID:        id,
		Ver:       version,
		Rule:      "SV-" + id[2:] + "r1_rule",
		Sev:       "medium",
		Desc:      auditTrailDesc + " " + sub + " auditing of " + setting + " events is required.",
		Guide:     win10Guide,
		Published: "2016-10-28",
		CheckTxt:  fmt.Sprintf("Run auditpol /get /subcategory:%q and verify %s is audited.", sub, setting),
		FixTxt:    fmt.Sprintf("Configure the policy: auditpol /set /subcategory:%q with %s auditing.", sub, setting),
	}
}

// NewV63447 — audit User Account Management successes.
// https://www.stigviewer.com/stig/windows_10/2016-10-28/finding/V-63447
func NewV63447(w *host.Windows) *AuditPolicyRequirement {
	r := newUserAccountManagement()
	r.Finding = win10Finding("V-63447", "WN10-AU-000030", "User Account Management", "Success")
	r.AP = host.AuditPol{W: w}
	r.WantSuccess = true
	return &r
}

// NewV63449 — audit User Account Management failures.
// https://www.stigviewer.com/stig/windows_10/2016-10-28/finding/V-63449
func NewV63449(w *host.Windows) *AuditPolicyRequirement {
	r := newUserAccountManagement()
	r.Finding = win10Finding("V-63449", "WN10-AU-000035", "User Account Management", "Failure")
	r.AP = host.AuditPol{W: w}
	r.WantFailure = true
	return &r
}

// NewV63463 — audit Logon failures.
// https://www.stigviewer.com/stig/windows_10/2016-10-28/finding/V-63463
func NewV63463(w *host.Windows) *AuditPolicyRequirement {
	r := newLogon()
	r.Finding = win10Finding("V-63463", "WN10-AU-000075", "Logon", "Failure")
	r.AP = host.AuditPol{W: w}
	r.WantFailure = true
	return &r
}

// NewV63467 — audit Logon successes.
// https://www.stigviewer.com/stig/windows_10/2016-10-28/finding/V-63467
func NewV63467(w *host.Windows) *AuditPolicyRequirement {
	r := newLogon()
	r.Finding = win10Finding("V-63467", "WN10-AU-000080", "Logon", "Success")
	r.AP = host.AuditPol{W: w}
	r.WantSuccess = true
	return &r
}

// NewV63483 — audit Sensitive Privilege Use failures.
// https://www.stigviewer.com/stig/windows_10/2016-10-28/finding/V-63483
func NewV63483(w *host.Windows) *AuditPolicyRequirement {
	r := newSensitivePrivilegeUse()
	r.Finding = win10Finding("V-63483", "WN10-AU-000110", "Sensitive Privilege Use", "Failure")
	r.AP = host.AuditPol{W: w}
	r.WantFailure = true
	return &r
}

// NewV63487 — audit Sensitive Privilege Use successes.
// https://www.stigviewer.com/stig/windows_10/2016-10-28/finding/V-63487
func NewV63487(w *host.Windows) *AuditPolicyRequirement {
	r := newSensitivePrivilegeUse()
	r.Finding = win10Finding("V-63487", "WN10-AU-000115", "Sensitive Privilege Use", "Success")
	r.AP = host.AuditPol{W: w}
	r.WantSuccess = true
	return &r
}

// Windows10SecurityTechnicalImplementationGuide aggregates the implemented
// Windows 10 findings, mirroring the reference instantiation class of the
// same name.
type Windows10SecurityTechnicalImplementationGuide struct {
	Host *host.Windows
}

// AllSTIGs returns every implemented finding bound to the host.
func (g Windows10SecurityTechnicalImplementationGuide) AllSTIGs() []core.CheckableEnforceableRequirement {
	return []core.CheckableEnforceableRequirement{
		NewV63447(g.Host),
		NewV63449(g.Host),
		NewV63463(g.Host),
		NewV63467(g.Host),
		NewV63483(g.Host),
		NewV63487(g.Host),
	}
}

// Catalog registers the findings in a core.Catalog.
func (g Windows10SecurityTechnicalImplementationGuide) Catalog() *core.Catalog {
	c := core.NewCatalog()
	for _, r := range g.AllSTIGs() {
		c.MustRegister(r)
	}
	return c
}

// Win10Catalog is shorthand for the guide catalogue over a host.
func Win10Catalog(w *host.Windows) *core.Catalog {
	return Windows10SecurityTechnicalImplementationGuide{Host: w}.Catalog()
}
