package stig

import (
	"encoding/json"
	"fmt"
	"io"

	"veridevops/internal/core"
	"veridevops/internal/host"
)

// Data-driven catalogues: D2.7's known-issues section notes that "the
// current set of STIG patterns is not exhaustive [and] is continuously
// updated". This loader lets maintainers extend the catalogue without
// recompiling: findings are described in JSON, each naming the reusable
// pattern it instantiates and its parameters.
//
// Supported pattern kinds and their parameters:
//
//	package   — package (string), must_be_installed (bool)      [Linux]
//	config    — file, key, value (strings)                      [Linux]
//	service   — service (string), must_be_active (bool)         [Linux]
//	audit     — category, subcategory (strings), success, failure (bools) [Windows]
//	registry  — key, value (strings)                            [Windows]

// CatalogEntry is one finding definition in a catalogue file.
type CatalogEntry struct {
	Kind string `json:"kind"`

	// Finding metadata.
	ID       string `json:"id"`
	Version  string `json:"version,omitempty"`
	Severity string `json:"severity,omitempty"`
	STIG     string `json:"stig,omitempty"`
	Desc     string `json:"description,omitempty"`
	Check    string `json:"check_text,omitempty"`
	Fix      string `json:"fix_text,omitempty"`

	// Pattern parameters (kind-dependent).
	Package         string `json:"package,omitempty"`
	MustBeInstalled bool   `json:"must_be_installed,omitempty"`
	File            string `json:"file,omitempty"`
	Key             string `json:"key,omitempty"`
	Value           string `json:"value,omitempty"`
	Service         string `json:"service,omitempty"`
	MustBeActive    bool   `json:"must_be_active,omitempty"`
	Category        string `json:"category,omitempty"`
	Subcategory     string `json:"subcategory,omitempty"`
	Success         bool   `json:"success,omitempty"`
	Failure         bool   `json:"failure,omitempty"`
}

func (e CatalogEntry) finding() core.Finding {
	return core.Finding{
		ID: e.ID, Ver: e.Version, Sev: e.Severity, Guide: e.STIG,
		Desc: e.Desc, CheckTxt: e.Check, FixTxt: e.Fix,
	}
}

// Hosts carries the targets a loaded catalogue may bind to; either may be
// nil when the file contains no findings for that platform.
type Hosts struct {
	Linux   *host.Linux
	Windows *host.Windows
}

// Instantiate builds the concrete requirement for one entry.
func (e CatalogEntry) Instantiate(hosts Hosts) (core.CheckableEnforceableRequirement, error) {
	if e.ID == "" {
		return nil, fmt.Errorf("stig: catalogue entry without id (kind %q)", e.Kind)
	}
	needLinux := func() (*host.Linux, error) {
		if hosts.Linux == nil {
			return nil, fmt.Errorf("stig: %s: kind %q needs a Linux host", e.ID, e.Kind)
		}
		return hosts.Linux, nil
	}
	switch e.Kind {
	case "package":
		h, err := needLinux()
		if err != nil {
			return nil, err
		}
		if e.Package == "" {
			return nil, fmt.Errorf("stig: %s: package kind needs a package name", e.ID)
		}
		return &UbuntuPackagePattern{Finding: e.finding(), Host: h,
			PackageName: e.Package, MustBeInstalled: e.MustBeInstalled}, nil
	case "config":
		h, err := needLinux()
		if err != nil {
			return nil, err
		}
		if e.File == "" || e.Key == "" {
			return nil, fmt.Errorf("stig: %s: config kind needs file and key", e.ID)
		}
		return &UbuntuConfigPattern{Finding: e.finding(), Host: h,
			File: e.File, Key: e.Key, Value: e.Value}, nil
	case "service":
		h, err := needLinux()
		if err != nil {
			return nil, err
		}
		if e.Service == "" {
			return nil, fmt.Errorf("stig: %s: service kind needs a service name", e.ID)
		}
		return &UbuntuServicePattern{Finding: e.finding(), Host: h,
			ServiceName: e.Service, MustBeActive: e.MustBeActive}, nil
	case "audit":
		if hosts.Windows == nil {
			return nil, fmt.Errorf("stig: %s: audit kind needs a Windows host", e.ID)
		}
		if e.Subcategory == "" {
			return nil, fmt.Errorf("stig: %s: audit kind needs a subcategory", e.ID)
		}
		if !e.Success && !e.Failure {
			return nil, fmt.Errorf("stig: %s: audit kind needs success and/or failure", e.ID)
		}
		return &AuditPolicyRequirement{Finding: e.finding(),
			AP: host.AuditPol{W: hosts.Windows}, Category: e.Category,
			Subcategory: e.Subcategory, WantSuccess: e.Success, WantFailure: e.Failure}, nil
	case "registry":
		if hosts.Windows == nil {
			return nil, fmt.Errorf("stig: %s: registry kind needs a Windows host", e.ID)
		}
		if e.Key == "" {
			return nil, fmt.Errorf("stig: %s: registry kind needs a key", e.ID)
		}
		return &RegistryRequirement{Finding: e.finding(), Host: hosts.Windows,
			Key: e.Key, Want: e.Value}, nil
	default:
		return nil, fmt.Errorf("stig: %s: unknown pattern kind %q", e.ID, e.Kind)
	}
}

// LoadCatalog reads a JSON catalogue file (an array of entries) and
// registers every instantiated requirement.
func LoadCatalog(r io.Reader, hosts Hosts) (*core.Catalog, error) {
	var entries []CatalogEntry
	if err := json.NewDecoder(r).Decode(&entries); err != nil {
		return nil, fmt.Errorf("stig: catalogue json: %w", err)
	}
	cat := core.NewCatalog()
	for _, e := range entries {
		req, err := e.Instantiate(hosts)
		if err != nil {
			return nil, err
		}
		if err := cat.Register(req); err != nil {
			return nil, err
		}
	}
	return cat, nil
}
