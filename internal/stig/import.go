package stig

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"veridevops/internal/core"
	"veridevops/internal/host"
)

// Finding-document importer: parses the "Key: value" text layout used by
// stigviewer exports and by core.Finding.String, so catalogue maintainers
// can paste finding documents and instantiate patterns from them. A file
// may contain several findings; each starts at a "Finding ID:" line.

var findingKeys = map[string]func(*core.Finding, string){
	"Finding ID":  func(f *core.Finding, v string) { f.ID = v },
	"Version":     func(f *core.Finding, v string) { f.Ver = v },
	"Rule ID":     func(f *core.Finding, v string) { f.Rule = v },
	"IA Controls": func(f *core.Finding, v string) { f.IA = v },
	"Severity":    func(f *core.Finding, v string) { f.Sev = v },
	"STIG":        func(f *core.Finding, v string) { f.Guide = v },
	"Date":        func(f *core.Finding, v string) { f.Published = v },
	"Description": func(f *core.Finding, v string) { f.Desc = v },
	"Check Text":  func(f *core.Finding, v string) { f.CheckTxt = v },
	"Fix Text":    func(f *core.Finding, v string) { f.FixTxt = v },
}

// ImportFindings parses finding documents from r. Values may span several
// lines; a value ends at the next known "Key:" line or at the next
// finding. Unknown "Key:" lines inside a finding are treated as value
// continuation, since STIG prose routinely contains colons.
func ImportFindings(r io.Reader) ([]core.Finding, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)

	var out []core.Finding
	var cur *core.Finding
	var curKey string
	var curVal strings.Builder

	flushField := func() {
		if cur == nil || curKey == "" {
			return
		}
		findingKeys[curKey](cur, strings.TrimSpace(curVal.String()))
		curKey = ""
		curVal.Reset()
	}
	flushFinding := func() error {
		flushField()
		if cur == nil {
			return nil
		}
		if cur.ID == "" {
			return fmt.Errorf("stig: finding without a Finding ID")
		}
		out = append(out, *cur)
		cur = nil
		return nil
	}

	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		trimmed := strings.TrimSpace(line)

		key, val, isKey := splitKey(trimmed)
		switch {
		case isKey && key == "Finding ID":
			if err := flushFinding(); err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
			cur = &core.Finding{}
			curKey, curVal = "Finding ID", strings.Builder{}
			curVal.WriteString(val)
		case isKey && cur != nil:
			flushField()
			curKey = key
			curVal.WriteString(val)
		case cur != nil && curKey != "":
			// Continuation line of the current value.
			if trimmed != "" {
				if curVal.Len() > 0 {
					curVal.WriteByte(' ')
				}
				curVal.WriteString(trimmed)
			}
		case trimmed == "":
			// Blank line outside a value: ignore.
		default:
			return nil, fmt.Errorf("stig: line %d: content outside a finding: %q", lineNo, trimmed)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("stig: import: %w", err)
	}
	if err := flushFinding(); err != nil {
		return nil, err
	}
	return out, nil
}

// splitKey recognises "Key: value" lines for known keys.
func splitKey(line string) (key, val string, ok bool) {
	i := strings.Index(line, ":")
	if i < 0 {
		return "", "", false
	}
	k := strings.TrimSpace(line[:i])
	if _, known := findingKeys[k]; !known {
		return "", "", false
	}
	return k, strings.TrimSpace(line[i+1:]), true
}

// NewPackageRequirement instantiates the package pattern for an imported
// finding: the mechanical step a catalogue maintainer performs after
// pasting a finding document — pick the reusable pattern, bind the
// parameters.
func NewPackageRequirement(f core.Finding, h *host.Linux, pkg string, mustBeInstalled bool) (*UbuntuPackagePattern, error) {
	if f.ID == "" {
		return nil, fmt.Errorf("stig: finding has no ID")
	}
	if pkg == "" {
		return nil, fmt.Errorf("stig: %s: empty package name", f.ID)
	}
	return &UbuntuPackagePattern{
		Finding: f, Host: h, PackageName: pkg, MustBeInstalled: mustBeInstalled,
	}, nil
}
