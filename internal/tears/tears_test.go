package tears

import (
	"math/rand"
	"strings"
	"testing"

	"veridevops/internal/trace"
)

func TestParseGA(t *testing.T) {
	ga, err := ParseGA("GA lockout: when failed_logins >= 3 then locked within 100 ms")
	if err != nil {
		t.Fatal(err)
	}
	if ga.Name != "lockout" || ga.Within != 100 {
		t.Errorf("parsed %+v", ga)
	}
	if ga.Guard.String() != "failed_logins >= 3" || ga.Assert.String() != "locked" {
		t.Errorf("guard=%q assert=%q", ga.Guard, ga.Assert)
	}
}

func TestParseGAImmediate(t *testing.T) {
	ga, err := ParseGA("GA safe: when door_open then alarm_armed && camera_on")
	if err != nil {
		t.Fatal(err)
	}
	if ga.Within != 0 {
		t.Errorf("Within = %d, want 0", ga.Within)
	}
}

func TestParseGAErrors(t *testing.T) {
	bad := []string{
		"",
		"when x then y",
		"GA : when x then y",
		"GA n: when then y",
		"GA n: when (x then y",
		"GA n: when x then A[] y",     // temporal operator in predicate
		"GA n: when A<> x then y",     // temporal operator in guard
		"GA n: when x then y within ", // broken window
	}
	for _, line := range bad {
		if _, err := ParseGA(line); err == nil {
			t.Errorf("ParseGA(%q) should fail", line)
		}
	}
}

func TestGAStringRoundTrip(t *testing.T) {
	for _, line := range []string{
		"GA a: when x > 2 then y within 50 ms",
		"GA b: when x && !z then y || w",
	} {
		ga, err := ParseGA(line)
		if err != nil {
			t.Fatal(err)
		}
		ga2, err := ParseGA(ga.String())
		if err != nil {
			t.Fatalf("re-parse %q: %v", ga.String(), err)
		}
		if ga2.Guard.String() != ga.Guard.String() || ga2.Within != ga.Within {
			t.Errorf("round trip changed %q -> %q", ga.String(), ga2.String())
		}
	}
}

func TestParseFile(t *testing.T) {
	text := `
# alarm requirements
GA g1: when intrusion then alarm within 10 ms

garbage line
GA g2: when mode == 2 then !remote_cmds
`
	gas, errs := ParseFile(text)
	if len(gas) != 2 {
		t.Errorf("parsed %d G/As, want 2", len(gas))
	}
	if len(errs) != 1 || !strings.Contains(errs[0].Error(), "line 5") {
		t.Errorf("errs = %v", errs)
	}
}

func TestEvaluateImmediatePass(t *testing.T) {
	tr := trace.New()
	tr.SetBool("door_open", 10, true)
	tr.SetBool("alarm_armed", 0, true)
	tr.SetEnd(100)
	ga, _ := ParseGA("GA g: when door_open then alarm_armed")
	v := Evaluate(tr, ga)
	if !v.Passed() || v.Vacuous() {
		t.Errorf("verdict = %+v", v)
	}
	if v.Activations == 0 {
		t.Error("guard held; activations expected")
	}
}

func TestEvaluateImmediateFailure(t *testing.T) {
	tr := trace.New()
	tr.SetBool("door_open", 10, true)
	tr.SetBool("alarm_armed", 0, true)
	tr.SetBool("alarm_armed", 50, false) // violation window [50, ...]
	tr.SetEnd(100)
	ga, _ := ParseGA("GA g: when door_open then alarm_armed")
	v := Evaluate(tr, ga)
	if v.Passed() {
		t.Fatal("expected failure")
	}
	if v.Violations[0].At != 50 {
		t.Errorf("first violation at %d, want 50", v.Violations[0].At)
	}
}

func TestEvaluateWindowed(t *testing.T) {
	tr := trace.New()
	trace.GenPulse(tr, "intrusion", 100, 5)
	trace.GenPulse(tr, "alarm", 140, 5)
	tr.SetEnd(1000)

	pass, _ := ParseGA("GA g: when intrusion then alarm within 40 ms")
	if v := Evaluate(tr, pass); !v.Passed() || v.Activations != 1 {
		t.Errorf("within 40: %+v", v)
	}
	fail, _ := ParseGA("GA g: when intrusion then alarm within 39 ms")
	if v := Evaluate(tr, fail); v.Passed() {
		t.Error("within 39 must fail (alarm at +40)")
	}
}

func TestEvaluateWindowedRisingEdgesOnly(t *testing.T) {
	// Guard holds for a long interval: one activation, not one per change
	// point.
	tr := trace.New()
	tr.SetBool("g", 10, true)
	tr.SetBool("other", 20, true) // extra change points inside the interval
	tr.SetBool("other", 30, false)
	tr.SetBool("g", 90, false)
	tr.SetBool("a", 15, true)
	tr.SetEnd(200)
	ga, _ := ParseGA("GA g: when g then a within 10 ms")
	v := Evaluate(tr, ga)
	if v.Activations != 1 {
		t.Errorf("Activations = %d, want 1 (rising edge)", v.Activations)
	}
	if !v.Passed() {
		t.Error("a holds at +5; should pass")
	}
}

func TestEvaluateVacuous(t *testing.T) {
	tr := trace.New()
	tr.SetEnd(100)
	ga, _ := ParseGA("GA g: when never_true then whatever")
	v := Evaluate(tr, ga)
	if !v.Passed() || !v.Vacuous() {
		t.Errorf("verdict = %+v, want vacuous pass", v)
	}
}

func TestEvaluateNumericPredicates(t *testing.T) {
	tr := trace.New()
	tr.SetNum("failed_logins", 0, 0)
	tr.SetNum("failed_logins", 40, 3)
	tr.SetBool("locked", 60, true)
	tr.SetEnd(200)
	ga, _ := ParseGA("GA g: when failed_logins >= 3 then locked within 25 ms")
	v := Evaluate(tr, ga)
	if !v.Passed() {
		t.Errorf("locked at +20 <= 25: %+v", v)
	}
	tight, _ := ParseGA("GA g: when failed_logins >= 3 then locked within 19 ms")
	if Evaluate(tr, tight).Passed() {
		t.Error("locked at +20 > 19: must fail")
	}
}

func TestEvaluateAllAndOverview(t *testing.T) {
	tr := trace.New()
	trace.GenPulse(tr, "intrusion", 100, 5)
	trace.GenPulse(tr, "alarm", 120, 5)
	tr.SetEnd(500)
	gas, errs := ParseFile(`
GA fast: when intrusion then alarm within 30 ms
GA slow: when intrusion then alarm within 5 ms
GA idle: when ghost_signal then alarm
`)
	if len(errs) != 0 {
		t.Fatal(errs)
	}
	verdicts := EvaluateAll(tr, gas)
	if len(verdicts) != 3 {
		t.Fatal("want 3 verdicts")
	}
	if !verdicts[0].Passed() || verdicts[1].Passed() || !verdicts[2].Vacuous() {
		t.Errorf("verdicts = %+v", verdicts)
	}
	ov := Overview(verdicts)
	for _, want := range []string{"fast", "PASS", "slow", "FAIL", "vacuous", "summary: 2 pass (1 vacuous), 1 fail"} {
		if !strings.Contains(ov, want) {
			t.Errorf("overview missing %q:\n%s", want, ov)
		}
	}
}

func TestEvaluateScalesLinearly(t *testing.T) {
	// Sanity check on a large random log: evaluation completes and counts
	// every activation.
	tr := trace.New()
	rng := rand.New(rand.NewSource(1))
	n := trace.GenResponsePairs(tr, "req", "ack", 500, 20, 1, 9, rng)
	_ = n
	ga, _ := ParseGA("GA g: when req then ack within 10 ms")
	v := Evaluate(tr, ga)
	if v.Activations != 500 {
		t.Errorf("Activations = %d, want 500", v.Activations)
	}
	if !v.Passed() {
		t.Errorf("all responses within 9 <= 10 ms; %d violations", len(v.Violations))
	}
}
