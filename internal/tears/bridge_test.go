package tears

import (
	"strings"
	"testing"

	"veridevops/internal/gwt"
	"veridevops/internal/trace"
)

func TestFromScenario(t *testing.T) {
	sc := gwt.Scenario{
		Name:  "lockout after failed logins",
		Given: []string{"a registered user"},
		When:  []string{"the user fails to log in three times"},
		Then:  []string{"the account is locked"},
	}
	ga, err := FromScenario(sc, 50)
	if err != nil {
		t.Fatal(err)
	}
	if ga.Name != "lockout_after_failed_logins" {
		t.Errorf("Name = %q", ga.Name)
	}
	if ga.Within != 50 {
		t.Errorf("Within = %d", ga.Within)
	}
	if !strings.Contains(ga.Guard.String(), "a_registered_user") ||
		!strings.Contains(ga.Guard.String(), "the_user_fails_to_log_in_three_times") {
		t.Errorf("Guard = %q", ga.Guard)
	}
	if ga.Assert.String() != "the_account_is_locked" {
		t.Errorf("Assert = %q", ga.Assert)
	}
}

func TestFromScenarioEvaluates(t *testing.T) {
	sc := gwt.Scenario{
		Name: "alarm",
		When: []string{"intrusion detected"},
		Then: []string{"alarm raised"},
	}
	ga, err := FromScenario(sc, 20)
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.New()
	trace.GenPulse(tr, "intrusion_detected", 100, 5)
	trace.GenPulse(tr, "alarm_raised", 110, 5)
	tr.SetEnd(500)
	if v := Evaluate(tr, ga); !v.Passed() || v.Activations != 1 {
		t.Errorf("verdict = %+v", v)
	}
}

func TestFromScenarioInvalid(t *testing.T) {
	if _, err := FromScenario(gwt.Scenario{Name: "x"}, 0); err == nil {
		t.Error("scenario without When/Then must fail")
	}
}

func TestFromScenarios(t *testing.T) {
	scs := []gwt.Scenario{
		{Name: "ok", When: []string{"a"}, Then: []string{"b"}},
		{Name: "broken"},
	}
	gas, errs := FromScenarios(scs, 0)
	if len(gas) != 1 || len(errs) != 1 {
		t.Errorf("gas=%d errs=%d", len(gas), len(errs))
	}
	if !strings.Contains(errs[0].Error(), "broken") {
		t.Errorf("errs = %v", errs)
	}
}
