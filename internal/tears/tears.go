// Package tears implements TEARS-style independent guarded assertions
// (G/As) from VeriDevOps D2.7: requirements of the form "when <guard> then
// <assertion> [within N ms]" evaluated over recorded signal logs
// (internal/trace), producing per-assertion verdicts and the analysis
// overview report the NAPKIN environment generates for a session.
//
// G/A syntax, one per line:
//
//	GA <name>: when <guard> then <assertion> [within <N> ms]
//	# comment
//
// Guard and assertion are state predicates over signals: boolean signal
// names, comparisons (x > 5, mode == 2), combined with &&, || and !.
package tears

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"

	"veridevops/internal/tctl"
	"veridevops/internal/trace"
)

// GA is one guarded assertion.
type GA struct {
	Name string
	// Guard and Assert are propositional tctl formulas (no temporal
	// operators).
	Guard  tctl.Formula
	Assert tctl.Formula
	// Within is the response window in ticks; 0 means the assertion must
	// hold at the very instants the guard holds.
	Within trace.Time
	// Source is the original specification line.
	Source string
}

// String reconstructs the canonical G/A line.
func (g GA) String() string {
	s := fmt.Sprintf("GA %s: when %s then %s", g.Name, g.Guard, g.Assert)
	if g.Within > 0 {
		s += fmt.Sprintf(" within %d ms", g.Within)
	}
	return s
}

var gaRe = regexp.MustCompile(`^GA\s+([A-Za-z0-9_.-]+)\s*:\s*when\s+(.+?)\s+then\s+(.+?)(?:\s+within\s+(\d+)\s*ms)?$`)

// ParseGA parses one guarded-assertion line.
func ParseGA(line string) (GA, error) {
	ga := GA{Source: line}
	m := gaRe.FindStringSubmatch(strings.TrimSpace(line))
	if m == nil {
		return ga, fmt.Errorf("tears: line does not match 'GA <name>: when <guard> then <assert> [within N ms]': %q", line)
	}
	ga.Name = m[1]
	var err error
	if ga.Guard, err = parsePredicate(m[2]); err != nil {
		return ga, fmt.Errorf("tears: %s: guard: %w", ga.Name, err)
	}
	if ga.Assert, err = parsePredicate(m[3]); err != nil {
		return ga, fmt.Errorf("tears: %s: assertion: %w", ga.Name, err)
	}
	if m[4] != "" {
		n, err := strconv.ParseInt(m[4], 10, 64)
		if err != nil {
			return ga, fmt.Errorf("tears: %s: bad window %q", ga.Name, m[4])
		}
		ga.Within = n
	}
	return ga, nil
}

// parsePredicate parses a state predicate, rejecting temporal operators.
func parsePredicate(s string) (tctl.Formula, error) {
	f, err := tctl.Parse(s)
	if err != nil {
		return nil, err
	}
	if err := assertPropositional(f); err != nil {
		return nil, err
	}
	return f, nil
}

func assertPropositional(f tctl.Formula) error {
	switch n := f.(type) {
	case tctl.Prop, tctl.True, tctl.False, tctl.Cmp:
		return nil
	case tctl.Not:
		return assertPropositional(n.F)
	case tctl.And:
		if err := assertPropositional(n.L); err != nil {
			return err
		}
		return assertPropositional(n.R)
	case tctl.Or:
		if err := assertPropositional(n.L); err != nil {
			return err
		}
		return assertPropositional(n.R)
	case tctl.Imply:
		if err := assertPropositional(n.L); err != nil {
			return err
		}
		return assertPropositional(n.R)
	default:
		return fmt.Errorf("temporal operator %q not allowed in a G/A predicate", f.String())
	}
}

// ParseFile parses a multi-line G/A specification, skipping blanks and '#'
// comments. All parse errors are collected.
func ParseFile(text string) ([]GA, []error) {
	var gas []GA
	var errs []error
	for i, raw := range strings.Split(text, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		ga, err := ParseGA(line)
		if err != nil {
			errs = append(errs, fmt.Errorf("line %d: %w", i+1, err))
			continue
		}
		gas = append(gas, ga)
	}
	return gas, errs
}

// Violation is one observed G/A failure.
type Violation struct {
	// At is the change point where the guard held.
	At trace.Time
	// Deadline is At+Within for windowed assertions (equal to At for
	// immediate ones).
	Deadline trace.Time
}

// Verdict is the evaluation result of one G/A over one log.
type Verdict struct {
	GA GA
	// Activations counts change points (immediate) or guard rising edges
	// (windowed) at which the G/A was armed.
	Activations int
	Violations  []Violation
}

// Passed reports whether the G/A held throughout the log.
func (v Verdict) Passed() bool { return len(v.Violations) == 0 }

// Vacuous reports whether the guard never held (the G/A was never
// exercised) — TEARS flags these in the overview since a vacuously-passing
// assertion gives no confidence.
func (v Verdict) Vacuous() bool { return v.Activations == 0 }

// evalAt evaluates a propositional formula at one instant.
func evalAt(tr *trace.Trace, f tctl.Formula, t trace.Time) bool {
	switch n := f.(type) {
	case tctl.True:
		return true
	case tctl.False:
		return false
	case tctl.Prop:
		return tr.BoolAt(n.Name, t)
	case tctl.Cmp:
		x := tr.NumAt(n.Signal, t)
		switch n.Op {
		case tctl.Lt:
			return x < n.Value
		case tctl.Le:
			return x <= n.Value
		case tctl.Gt:
			return x > n.Value
		case tctl.Ge:
			return x >= n.Value
		case tctl.Eq:
			return x == n.Value
		default:
			return x != n.Value
		}
	case tctl.Not:
		return !evalAt(tr, n.F, t)
	case tctl.And:
		return evalAt(tr, n.L, t) && evalAt(tr, n.R, t)
	case tctl.Or:
		return evalAt(tr, n.L, t) || evalAt(tr, n.R, t)
	case tctl.Imply:
		return !evalAt(tr, n.L, t) || evalAt(tr, n.R, t)
	default:
		panic(fmt.Sprintf("tears: non-propositional node %T", f))
	}
}

// Evaluate checks one G/A against a log.
//
// Immediate G/As (Within == 0) require the assertion at every change point
// where the guard holds. Windowed G/As are armed at every rising edge of
// the guard and require some change point within the window (inclusive) at
// which the assertion holds.
func Evaluate(tr *trace.Trace, ga GA) Verdict {
	v := Verdict{GA: ga}
	points := tr.ChangePoints()
	if ga.Within == 0 {
		for _, t := range points {
			if !evalAt(tr, ga.Guard, t) {
				continue
			}
			v.Activations++
			if !evalAt(tr, ga.Assert, t) {
				v.Violations = append(v.Violations, Violation{At: t, Deadline: t})
			}
		}
		return v
	}
	prev := false
	for i, t := range points {
		g := evalAt(tr, ga.Guard, t)
		if g && !prev {
			v.Activations++
			served := false
			for j := i; j < len(points) && points[j] <= t+ga.Within; j++ {
				if evalAt(tr, ga.Assert, points[j]) {
					served = true
					break
				}
			}
			if !served {
				v.Violations = append(v.Violations, Violation{At: t, Deadline: t + ga.Within})
			}
		}
		prev = g
	}
	return v
}

// EvaluateAll checks every G/A against the log.
func EvaluateAll(tr *trace.Trace, gas []GA) []Verdict {
	out := make([]Verdict, 0, len(gas))
	for _, ga := range gas {
		out = append(out, Evaluate(tr, ga))
	}
	return out
}

// Overview renders the ANALYSIS_overview report for a set of verdicts.
func Overview(verdicts []Verdict) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-20s %-8s %-12s %-12s %s\n", "GA", "VERDICT", "ACTIVATIONS", "VIOLATIONS", "NOTE")
	pass, fail, vac := 0, 0, 0
	for _, v := range verdicts {
		verdict := "PASS"
		note := ""
		switch {
		case !v.Passed():
			verdict = "FAIL"
			fail++
			note = fmt.Sprintf("first at t=%d", v.Violations[0].At)
		case v.Vacuous():
			vac++
			note = "vacuous (guard never held)"
			pass++
		default:
			pass++
		}
		fmt.Fprintf(&b, "%-20s %-8s %-12d %-12d %s\n", v.GA.Name, verdict, v.Activations, len(v.Violations), note)
	}
	fmt.Fprintf(&b, "summary: %d pass (%d vacuous), %d fail\n", pass, vac, fail)
	return b.String()
}
