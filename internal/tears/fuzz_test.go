package tears

import "testing"

// FuzzParseGA checks that the G/A parser is total and accepted lines
// round-trip through their canonical rendering.
func FuzzParseGA(f *testing.F) {
	seeds := []string{
		"GA g: when a then b",
		"GA g: when a && !b then c || d within 100 ms",
		"GA lockout: when failed_logins >= 3 then locked within 100 ms",
		"GA x: when t > 1.5 then u == 0",
		"", "GA", "GA : when a then b", "GA g: when then b",
		"GA g: when A[] a then b", "ga g: when a then b",
		"GA g: when a then b within -5 ms",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		ga, err := ParseGA(input)
		if err != nil {
			return
		}
		again, err := ParseGA(ga.String())
		if err != nil {
			t.Fatalf("canonical form %q of %q does not reparse: %v", ga.String(), input, err)
		}
		if again.Within != ga.Within || again.Guard.String() != ga.Guard.String() {
			t.Fatalf("round trip changed the G/A: %q vs %q", ga.String(), again.String())
		}
	})
}
