package tears

import (
	"fmt"
	"strings"

	"veridevops/internal/gwt"
	"veridevops/internal/resa"
	"veridevops/internal/trace"
)

// Bridge from Given-When-Then scenarios to guarded assertions: D2.7 groups
// GWT and TEARS as sibling semi-structured specification styles, and a
// scenario's When/Then pair is exactly a guard/assertion pair. The Given
// steps become additional guard conjuncts (preconditions that must hold
// when the stimulus fires).

// FromScenario converts one scenario into a G/A. Step phrases are slugged
// into signal names; the deadline (0 = immediate) applies to the Then
// assertion.
func FromScenario(sc gwt.Scenario, within trace.Time) (GA, error) {
	if err := sc.Validate(); err != nil {
		return GA{}, err
	}
	var guard []string
	for _, g := range sc.Given {
		guard = append(guard, resa.Slug(g))
	}
	for _, w := range sc.When {
		guard = append(guard, resa.Slug(w))
	}
	var asserts []string
	for _, th := range sc.Then {
		asserts = append(asserts, resa.Slug(th))
	}
	line := fmt.Sprintf("GA %s: when %s then %s",
		resa.Slug(sc.Name),
		strings.Join(guard, " && "),
		strings.Join(asserts, " && "))
	if within > 0 {
		line += fmt.Sprintf(" within %d ms", within)
	}
	return ParseGA(line)
}

// FromScenarios converts a scenario list, collecting per-scenario errors.
func FromScenarios(scs []gwt.Scenario, within trace.Time) ([]GA, []error) {
	var gas []GA
	var errs []error
	for _, sc := range scs {
		ga, err := FromScenario(sc, within)
		if err != nil {
			errs = append(errs, fmt.Errorf("%s: %w", sc.Name, err))
			continue
		}
		gas = append(gas, ga)
	}
	return gas, errs
}
