package fleet

import (
	"math"
	"testing"
	"time"
)

// drain pulls the scheduler dry from one shard and returns the host
// indices in dispatch order plus which were steals.
func drain(s *stealScheduler, shard int) (order []int, stolen []bool) {
	for {
		i, st, ok := s.next(shard)
		if !ok {
			return
		}
		order = append(order, i)
		stolen = append(stolen, st)
	}
}

func TestSchedulerLPTOrdersOwnQueue(t *testing.T) {
	// 4 hosts, all affine to shard 0, costs 10/40/20/30: dispatch must be
	// most-expensive-first (indices 1, 3, 2, 0).
	costs := []time.Duration{10, 40, 20, 30}
	s := newStealScheduler(4, 2, func(int) int { return 0 }, costs, false)
	order, stolen := drain(s, 0)
	want := []int{1, 3, 2, 0}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("dispatch order = %v, want %v", order, want)
		}
		if stolen[i] {
			t.Error("own-queue dispatch flagged as steal")
		}
	}
}

func TestSchedulerUnknownCostsTieBreakByIndex(t *testing.T) {
	// Cold coordinator: all costs 0 → uniform default cost → name order.
	s := newStealScheduler(3, 1, func(int) int { return 0 }, make([]time.Duration, 3), false)
	order, _ := drain(s, 0)
	for i, idx := range order {
		if idx != i {
			t.Fatalf("cold dispatch order = %v, want index order", order)
		}
	}
}

func TestSchedulerStealsFromMostLoadedVictim(t *testing.T) {
	// Shard 0 empty; shard 1 holds cost 5, shard 2 holds costs 30+20.
	// An idle shard 0 must steal shard 2's most expensive host (idx 1).
	affinity := []int{1, 2, 2}
	costs := []time.Duration{5, 30, 20}
	s := newStealScheduler(3, 3, func(i int) int { return affinity[i] }, costs, false)
	i, stolen, ok := s.next(0)
	if !ok || !stolen {
		t.Fatalf("idle shard did not steal: idx=%d stolen=%v ok=%v", i, stolen, ok)
	}
	if i != 1 {
		t.Errorf("stole host %d, want 1 (most expensive of the most loaded shard)", i)
	}
	// Victim accounting moved: next steal must come from shard 2 again
	// (remaining 20 > shard 1's 5).
	if i2, stolen2, _ := s.next(0); i2 != 2 || !stolen2 {
		t.Errorf("second steal = %d, want 2", i2)
	}
	if i3, _, _ := s.next(0); i3 != 0 {
		t.Errorf("third steal = %d, want 0", i3)
	}
	st := FleetStats{PerShard: make([]ShardStats, 3)}
	s.apply(&st)
	if st.Steals != 3 || st.PerShard[0].Steals != 3 {
		t.Errorf("steal accounting = %d total / %+v", st.Steals, st.PerShard)
	}
}

func TestSchedulerStaticNeverSteals(t *testing.T) {
	affinity := []int{1, 1, 1}
	s := newStealScheduler(3, 2, func(i int) int { return affinity[i] }, nil, true)
	if _, _, ok := s.next(0); ok {
		t.Error("static shard with an empty bucket must retire, not steal")
	}
	order, _ := drain(s, 1)
	if len(order) != 3 {
		t.Errorf("own bucket dispatched %d hosts, want 3", len(order))
	}
}

func TestSweepStaticPlacementIsAffinity(t *testing.T) {
	targets, _ := LinuxFleet(8)
	rep, st := Sweep(targets, Options{Shards: 4, Workers: 1, Scheduling: ScheduleStatic})
	if st.Steals != 0 {
		t.Errorf("static sweep stole %d hosts", st.Steals)
	}
	for _, hr := range rep.Hosts {
		if hr.Stolen {
			t.Errorf("%s marked stolen under static scheduling", hr.Target)
		}
		if want := Affinity(hr.Target, st.Shards); hr.Shard != want {
			t.Errorf("%s ran on shard %d, affinity %d", hr.Target, hr.Shard, want)
		}
	}
}

func TestSweepStolenHostsRunOffTheirHomeShard(t *testing.T) {
	// A deliberately skewed fleet: with one host far slower than the
	// rest, idle shards must steal, and every stolen host must have run
	// away from its affinity home.
	targets, _ := SkewedFleet(32, 4, 200*time.Microsecond, 20)
	coord := NewCoordinator()
	coord.Sweep(targets, Options{Shards: 4, Workers: 1}) // learn costs
	rep, st := coord.Sweep(targets, Options{Shards: 4, Workers: 1})
	if st.Steals == 0 {
		t.Fatal("skewed sweep recorded no steals")
	}
	stolen := 0
	for _, hr := range rep.Hosts {
		if !hr.Stolen {
			continue
		}
		stolen++
		if hr.Shard == Affinity(hr.Target, st.Shards) {
			t.Errorf("%s marked stolen but ran on its home shard %d", hr.Target, hr.Shard)
		}
	}
	if stolen != st.Steals {
		t.Errorf("per-host stolen flags = %d, shard steal counters = %d", stolen, st.Steals)
	}
	if st.QueueWait <= 0 {
		t.Error("dispatch latency accounting is empty")
	}
}

func TestSchedulingModesAgreeOnVerdicts(t *testing.T) {
	verdicts := func(sched Scheduling) map[string]string {
		targets, _ := SkewedFleet(16, 4, 50*time.Microsecond, 10)
		rep, _ := Sweep(targets, Options{Shards: 4, Workers: 2, Scheduling: sched})
		out := map[string]string{}
		for _, hr := range rep.Hosts {
			for _, r := range hr.Report.Results {
				out[hr.Target+"/"+r.FindingID] = r.After.String()
			}
		}
		return out
	}
	static, steal := verdicts(ScheduleStatic), verdicts(ScheduleWorkStealing)
	if len(static) != len(steal) {
		t.Fatalf("verdict counts diverge: %d vs %d", len(static), len(steal))
	}
	for k, v := range static {
		if steal[k] != v {
			t.Errorf("%s: static %s, stealing %s", k, v, steal[k])
		}
	}
}

func TestUtilizationCountsActiveShardsOnly(t *testing.T) {
	// The regression shape: capacity math must not divide by shards that
	// never had work. Two of four shards active, both fully busy → 100%.
	st := FleetStats{
		Shards: 4, ActiveShards: 2, Workers: 1,
		Wall: time.Second, Busy: 2 * time.Second,
	}
	if u := st.Utilization(); math.Abs(u-1) > 1e-9 {
		t.Errorf("Utilization = %v, want 1.0 (active-shard capacity only)", u)
	}
	// End to end: request as many shards as targets; FNV affinity leaves
	// some buckets empty under static scheduling, and ActiveShards must
	// reflect the placement, not the configuration.
	for n := 3; n <= 10; n++ {
		targets, _ := LinuxFleet(n)
		_, st := Sweep(targets, Options{Shards: 64, Workers: 1, Scheduling: ScheduleStatic})
		if st.Shards != n {
			t.Fatalf("shards not clamped: %d", st.Shards)
		}
		if st.ActiveShards < 1 || st.ActiveShards > st.Shards {
			t.Fatalf("ActiveShards = %d out of range", st.ActiveShards)
		}
		active := 0
		for _, sh := range st.PerShard {
			if sh.Hosts > 0 {
				active++
			}
		}
		if active != st.ActiveShards {
			t.Errorf("n=%d: ActiveShards = %d, per-shard rows say %d", n, st.ActiveShards, active)
		}
		if st.ActiveShards < st.Shards {
			return // found the empty-bucket shape and it was handled
		}
	}
	t.Log("no empty affinity bucket in tested range; direct-math case still covers the fix")
}

func TestLoadImbalanceBounds(t *testing.T) {
	targets, _ := LinuxFleet(12)
	_, st := Sweep(targets, Options{Shards: 4, Workers: 1})
	if st.LoadImbalance != 0 && st.LoadImbalance < 1 {
		t.Errorf("LoadImbalance = %v, must be 0 (unmeasured) or >= 1", st.LoadImbalance)
	}
}
