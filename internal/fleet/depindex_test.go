package fleet

import (
	"reflect"
	"testing"

	"veridevops/internal/core"
	"veridevops/internal/host"
	"veridevops/internal/stig"
)

func TestBuildDepIndexCoversUbuntuCatalog(t *testing.T) {
	h := host.NewUbuntu1804()
	x := BuildDepIndex(stig.UbuntuCatalog(h))
	if x.Findings() != 8 {
		t.Fatalf("Findings = %d, want 8", x.Findings())
	}
	if len(x.Unindexed()) != 0 {
		t.Errorf("Unindexed = %v, want none (every stig pattern declares keys)", x.Unindexed())
	}
	if got := x.Lookup("pkg:nis"); !reflect.DeepEqual(got, []string{"V-219157"}) {
		t.Errorf("Lookup(pkg:nis) = %v, want [V-219157]", got)
	}
	got := x.Affected([]string{"pkg:aide", "cfg:/etc/login.defs:ENCRYPT_METHOD"})
	if !reflect.DeepEqual(got, []string{"V-219177", "V-219343"}) {
		t.Errorf("Affected = %v, want [V-219177 V-219343]", got)
	}
	// A key nothing reads affects nothing on a fully-indexed catalogue.
	if got := x.Affected([]string{"cfg:/etc/motd:banner"}); got != nil {
		t.Errorf("Affected(irrelevant) = %v, want nil", got)
	}
	if got := x.Affected(nil); got != nil {
		t.Errorf("Affected(nil) = %v, want nil", got)
	}
}

// plainReq declares no keys: the unindexed shape.
type plainReq struct {
	core.Finding
	core.CheckFunc
	core.EnforceFunc
}

func TestDepIndexUnindexedAlwaysAffected(t *testing.T) {
	h := host.NewUbuntu1804()
	c := core.NewCatalog()
	c.MustRegister(stig.NewV219343(h)) // declares pkg:aide
	c.MustRegister(&plainReq{Finding: core.Finding{ID: "V-000001"}})
	x := BuildDepIndex(c)
	if !reflect.DeepEqual(x.Unindexed(), []string{"V-000001"}) {
		t.Fatalf("Unindexed = %v", x.Unindexed())
	}
	// The unindexed check rides along with every delta, even an
	// irrelevant one: its reads are unknown.
	if got := x.Affected([]string{"cfg:/etc/motd:banner"}); !reflect.DeepEqual(got, []string{"V-000001"}) {
		t.Errorf("Affected(irrelevant) = %v, want [V-000001]", got)
	}
	if got := x.Affected([]string{"pkg:aide"}); !reflect.DeepEqual(got, []string{"V-000001", "V-219343"}) {
		t.Errorf("Affected(pkg:aide) = %v, want [V-000001 V-219343]", got)
	}
}

// TestDepIndexOrderIndependent pins the determinism satellite: two
// catalogues holding the same requirements registered in opposite
// orders build deeply-equal indexes — construction iterates the
// ID-sorted Catalog.All, never a map.
func TestDepIndexOrderIndependent(t *testing.T) {
	h := host.NewUbuntu1804()
	build := func(reverse bool) *DepIndex {
		reqs := stig.UbuntuCatalog(h).All()
		if reverse {
			for i, j := 0, len(reqs)-1; i < j; i, j = i+1, j-1 {
				reqs[i], reqs[j] = reqs[j], reqs[i]
			}
		}
		c := core.NewCatalog()
		for _, r := range reqs {
			c.MustRegister(r)
		}
		return BuildDepIndex(c)
	}
	a, b := build(false), build(true)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("indexes differ by registration order:\n%+v\n%+v", a, b)
	}
	// And rebuilding from the same catalogue is stable.
	if c := build(false); !reflect.DeepEqual(a, c) {
		t.Errorf("rebuild differs:\n%+v\n%+v", a, c)
	}
}
