package fleet

import (
	"testing"
	"time"

	"veridevops/internal/core"
	"veridevops/internal/host"
)

// The fleet benchmarks model the live-audit shape: every check pays a
// probe round-trip (100µs here), so wall-clock scales with parallelism.
// `make bench` runs these with -benchmem and regenerates BENCH_fleet.json
// via cmd/fleetaudit -bench.

const benchProbeDelay = 100 * time.Microsecond

func benchFleet(n int) []Target {
	targets, _ := LinuxFleet(n)
	for i := range targets {
		targets[i] = WithProbeDelay(targets[i], benchProbeDelay)
	}
	return targets
}

// BenchmarkFleetSequentialBaseline is the pre-fleet shape: one RunEngine
// per host, one after another, single worker.
func BenchmarkFleetSequentialBaseline(b *testing.B) {
	targets := benchFleet(16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, t := range targets {
			t.Catalog.RunEngine(core.RunOptions{Mode: core.CheckOnly, Workers: 1})
		}
	}
}

// BenchmarkFleetSweep measures a full sharded sweep of 16 hosts at 1, 4
// and 16 shards (4 workers per shard).
func BenchmarkFleetSweep(b *testing.B) {
	for _, shards := range []int{1, 4, 16} {
		b.Run(map[int]string{1: "shards-1", 4: "shards-4", 16: "shards-16"}[shards], func(b *testing.B) {
			targets := benchFleet(16)
			opts := Options{Shards: shards, Workers: 4}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				Sweep(targets, opts)
			}
		})
	}
}

// BenchmarkFleetIncrementalSweep measures the steady-state re-sweep: one
// host of 16 drifts between sweeps, the other 15 replay from cache.
func BenchmarkFleetIncrementalSweep(b *testing.B) {
	targets, hosts := LinuxFleet(16)
	for i := range targets {
		targets[i] = WithProbeDelay(targets[i], benchProbeDelay)
	}
	coord := NewCoordinator()
	opts := Options{Shards: 16, Workers: 4, Incremental: true}
	coord.Sweep(targets, Options{Shards: 16, Workers: 4}) // prime
	rng := newRng(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		host.DriftLinux(hosts[i%16], 1, rng)
		coord.Sweep(targets, opts)
	}
}
