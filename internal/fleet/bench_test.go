package fleet

import (
	"testing"
	"time"

	"veridevops/internal/core"
	"veridevops/internal/host"
	"veridevops/internal/telemetry"
)

// The fleet benchmarks model the live-audit shape: every check pays a
// probe round-trip (100µs here), so wall-clock scales with parallelism.
// `make bench` runs these with -benchmem and regenerates BENCH_fleet.json
// via cmd/fleetaudit -bench.

const benchProbeDelay = 100 * time.Microsecond

func benchFleet(n int) []Target {
	targets, _ := LinuxFleet(n)
	for i := range targets {
		targets[i] = WithProbeDelay(targets[i], benchProbeDelay)
	}
	return targets
}

// BenchmarkFleetSequentialBaseline is the pre-fleet shape: one RunEngine
// per host, one after another, single worker.
func BenchmarkFleetSequentialBaseline(b *testing.B) {
	targets := benchFleet(16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, t := range targets {
			t.Catalog.RunEngine(core.RunOptions{Mode: core.CheckOnly, Workers: 1})
		}
	}
}

// BenchmarkFleetSweep measures a full sharded sweep of 16 hosts at 1, 4
// and 16 shards (4 workers per shard).
func BenchmarkFleetSweep(b *testing.B) {
	for _, shards := range []int{1, 4, 16} {
		b.Run(map[int]string{1: "shards-1", 4: "shards-4", 16: "shards-16"}[shards], func(b *testing.B) {
			targets := benchFleet(16)
			opts := Options{Shards: shards, Workers: 4}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				Sweep(targets, opts)
			}
		})
	}
}

// BenchmarkFleetSkewedSweep measures the work-stealing win on the skewed
// fleet shape: one host 10× slower than its shard co-tenants. Static
// scheduling paces the sweep at the slow bucket; stealing drains the
// bucket's healthy hosts onto idle shards. `make bench-steal` runs this
// pair side by side.
func BenchmarkFleetSkewedSweep(b *testing.B) {
	for _, mode := range []struct {
		name  string
		sched Scheduling
	}{{"static", ScheduleStatic}, {"stealing", ScheduleWorkStealing}} {
		b.Run(mode.name, func(b *testing.B) {
			targets, _ := SkewedFleet(256, 16, 20*time.Microsecond, 10)
			coord := NewCoordinator()
			opts := Options{Shards: 16, Workers: 4, Scheduling: mode.sched}
			coord.Sweep(targets, opts) // learn per-host costs
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				coord.Sweep(targets, opts)
			}
		})
	}
}

// BenchmarkFleetDedupSweep measures cross-host check dedup on a
// homogeneous probe-delayed fleet: with dedup on, each distinct check
// executes once per sweep instead of once per host.
func BenchmarkFleetDedupSweep(b *testing.B) {
	for _, dedup := range []bool{false, true} {
		name := "off"
		if dedup {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			targets := benchFleet(16)
			opts := Options{Shards: 4, Workers: 4, Dedup: dedup}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				Sweep(targets, opts)
			}
		})
	}
}

// BenchmarkTelemetrySweepTraced measures the full-instrumentation tax on
// a sweep: telemetry off (nil tracer/metrics), aggregate-only spans, and
// spans with metrics. `make bench-telemetry` runs this alongside the
// micro benchmarks in internal/telemetry.
func BenchmarkTelemetrySweepTraced(b *testing.B) {
	for _, mode := range []string{"off", "spans", "spans+metrics"} {
		b.Run(mode, func(b *testing.B) {
			targets := benchFleet(16)
			opts := Options{Shards: 4, Workers: 4}
			if mode != "off" {
				opts.Trace = telemetry.New(nil)
			}
			if mode == "spans+metrics" {
				opts.Metrics = telemetry.NewMetrics()
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				Sweep(targets, opts)
			}
		})
	}
}

// BenchmarkFleetIncrementalSweep measures the steady-state re-sweep: one
// host of 16 drifts between sweeps, the other 15 replay from cache.
func BenchmarkFleetIncrementalSweep(b *testing.B) {
	targets, hosts := LinuxFleet(16)
	for i := range targets {
		targets[i] = WithProbeDelay(targets[i], benchProbeDelay)
	}
	coord := NewCoordinator()
	opts := Options{Shards: 16, Workers: 4, Incremental: true}
	coord.Sweep(targets, Options{Shards: 16, Workers: 4}) // prime
	rng := newRng(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		host.DriftLinux(hosts[i%16], 1, rng)
		coord.Sweep(targets, opts)
	}
}
