package fleet

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"time"

	"veridevops/internal/core"
)

// Persistent incremental cache: SaveCache serialises the coordinator's
// per-host reports (and observed cost table) to JSON, LoadCache restores
// them, so a restarted coordinator resumes incremental sweeps — and LPT
// scheduling estimates — where the previous process stopped instead of
// re-auditing the whole fleet cold.

// cacheSchema versions the on-disk layout. LoadCache refuses any other
// value: an old or future file degrades to a cold start, never to a
// misread cache.
const cacheSchema = 1

// ErrCacheSchema marks a cache file whose schema version is not the one
// this build writes. errors.Is(err, ErrCacheSchema) distinguishes it from
// I/O and syntax failures; either way the coordinator is left cold.
var ErrCacheSchema = errors.New("fleet: unrecognised cache schema")

type cacheFile struct {
	Schema int                      `json:"schema"`
	Hosts  map[string]cacheFileHost `json:"hosts"`
}

type cacheFileHost struct {
	Version uint64      `json:"version"`
	CostNS  int64       `json:"cost_ns,omitempty"`
	Report  core.Report `json:"report"`
}

// SaveCache writes the coordinator's incremental cache and cost table to
// path, overwriting any previous file.
func (c *Coordinator) SaveCache(path string) error {
	c.mu.Lock()
	f := cacheFile{Schema: cacheSchema, Hosts: make(map[string]cacheFileHost, len(c.cache))}
	for name, e := range c.cache {
		f.Hosts[name] = cacheFileHost{
			Version: e.version,
			CostNS:  int64(c.costs[name]),
			Report:  e.report,
		}
	}
	// Cost-only hosts (audited but unversioned) keep their LPT estimate.
	for name, cost := range c.costs {
		if _, ok := f.Hosts[name]; !ok {
			f.Hosts[name] = cacheFileHost{CostNS: int64(cost)}
		}
	}
	c.mu.Unlock()
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return fmt.Errorf("fleet: encode cache: %w", err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadCache replaces the coordinator's cache and cost table with the
// contents of path. On any failure — unreadable file, corrupt JSON, a
// schema version this build does not write — the coordinator is left
// with an empty cache (a cold start, exactly as if the file were absent)
// and the error is returned for logging.
func (c *Coordinator) LoadCache(path string) error {
	c.mu.Lock()
	c.cache = make(map[string]cacheEntry)
	c.costs = make(map[string]time.Duration)
	c.mu.Unlock()
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var f cacheFile
	if err := json.Unmarshal(data, &f); err != nil {
		return fmt.Errorf("fleet: corrupt cache file %s: %w", path, err)
	}
	if f.Schema != cacheSchema {
		return fmt.Errorf("%w: file %s has schema %d, this build reads %d",
			ErrCacheSchema, path, f.Schema, cacheSchema)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for name, h := range f.Hosts {
		if len(h.Report.Results) > 0 || h.Version > 0 {
			c.cache[name] = cacheEntry{version: h.Version, report: h.Report}
		}
		if h.CostNS > 0 {
			c.costs[name] = time.Duration(h.CostNS)
		}
	}
	return nil
}
