package fleet

import (
	"sort"
	"sync"
	"time"

	"veridevops/internal/core"
	"veridevops/internal/engine"
	"veridevops/internal/host"
	"veridevops/internal/telemetry"
)

// Streamer is the push-based incremental evaluator: it subscribes to
// per-host EventLog tails, coalesces the state keys dirtied since the
// last flush, maps them through each host's DepIndex to the affected
// checks, and re-runs only those — routing the work through the same
// shard pool, engine retry/fault tolerance, dedup memo and incremental
// cache the batch sweeps use. Between flushes it maintains a live
// fleet-compliance view (per-host, per-finding verdicts) and raises one
// alarm per violation episode, the monitor package's dedup discipline.
//
// The coalescing window is the caller's flush cadence: event
// notifications only mark hosts dirty (cheap, lock-one-map cheap), and
// the actual evaluation happens when the owner calls Flush — the
// vdo-serve daemon ticks Flush on a real clock, the loadgen driver on
// the virtual one, tests whenever they like. Watch, Unwatch and the
// read accessors are safe for concurrent use; Flush calls must not
// overlap each other (same contract as Coordinator.Sweep).
type Streamer struct {
	coord *Coordinator
	opts  StreamOptions

	mu    sync.Mutex
	hosts map[string]*streamHost
	dirty map[string]bool
	stats StreamStats
	// pass/fail/incomplete are the live fleet-wide verdict counts,
	// updated incrementally as deltas fold in.
	pass, fail, incomplete int
}

// StreamOptions configures a Streamer's evaluations.
type StreamOptions struct {
	// Mode selects audit-only or audit-and-remediate deltas.
	Mode core.RunMode
	// Shards is how many dirty hosts evaluate concurrently per flush.
	Shards int
	// Workers is the engine pool size inside each host's delta run.
	Workers int
	// Checks is the per-check resilience policy (see core.RunOptions).
	Checks engine.Policy
	// Dedup shares one single-flight check memo across each flush's
	// hosts, as batch sweeps do (audit-only flushes; see Options.Dedup).
	Dedup bool
	// Trace, when non-nil, records each flush as a span tree: a "flush"
	// root with one "delta" child per dirty host (tagged host, full,
	// checks) and the catalogue runner's spans below.
	Trace *telemetry.Tracer
	// Metrics, when non-nil, accumulates stream.* counters/histograms
	// alongside the engine and fleet metrics of the underlying runs.
	Metrics *telemetry.Metrics
}

func (o StreamOptions) normalized() StreamOptions {
	if o.Shards < 1 {
		o.Shards = 1
	}
	if o.Workers < 1 {
		o.Workers = 1
	}
	return o
}

// evalOptions is the Options shape the delta evaluations run under.
func (o StreamOptions) evalOptions() Options {
	return Options{
		Mode:    o.Mode,
		Shards:  o.Shards,
		Workers: o.Workers,
		Checks:  o.Checks,
		Dedup:   o.Dedup,
		Metrics: o.Metrics,
	}
}

// streamHost is the streamer's per-host state: the audit target, its
// event source, its dependency index, the tail cursor, and the live
// verdict view.
type streamHost struct {
	target Target
	log    *host.EventLog
	index  *DepIndex
	cancel func()
	// cursor is the next EventLog sequence to consume (host.EventLog.Tail).
	cursor int
	// primed flips after the first evaluation; until then every flush
	// runs the full catalogue, because there is no verdict baseline to
	// delta against.
	primed bool
	// status holds the host's current verdict per finding ID.
	status map[string]core.CheckStatus
	// inViolation dedups alarms per violation episode: an alarm is
	// raised when a finding enters non-PASS and not again until it has
	// passed in between (the monitor package's discipline).
	inViolation map[string]bool
}

// StreamStats is the streamer's cumulative telemetry.
type StreamStats struct {
	// Flushes counts Flush calls that found at least one dirty host.
	Flushes int
	// Events is the total number of tailed events consumed.
	Events int
	// DeltaHosts counts per-flush dirty-host evaluations (a host dirty
	// in N flushes counts N times).
	DeltaHosts int
	// FullAudits counts evaluations that ran the whole catalogue
	// (priming, unkeyed events, connectivity flips).
	FullAudits int
	// ChecksEvaluated sums the checks each delta asked the engine to
	// resolve; ChecksExecuted subtracts dedup replays. ChecksEvaluated /
	// Events is the O(changed keys) efficiency headline: it must sit far
	// below the catalogue size when deltas dominate.
	ChecksEvaluated int
	ChecksExecuted  int
	// Alarms and Repairs count violation episodes opened and closed.
	Alarms  int
	Repairs int
	// IndexedChecks / UnindexedChecks are gauges, not counters: how many
	// catalogue entries across the currently watched hosts the dependency
	// index can localize (core.KeyReader declared) versus must fan out to
	// conservatively on every event. Snapshotted by Stats() from the
	// per-host indexes.
	IndexedChecks   int
	UnindexedChecks int
}

// ReadLocalization is IndexedChecks / (IndexedChecks + UnindexedChecks)
// in [0,1]; 0 when nothing is watched. See FleetStats.ReadLocalization.
func (s StreamStats) ReadLocalization() float64 {
	total := s.IndexedChecks + s.UnindexedChecks
	if total == 0 {
		return 0
	}
	return float64(s.IndexedChecks) / float64(total)
}

// Alarm is one violation-episode opening observed by a flush: a finding
// on a host moved from PASS (or unknown) to the recorded non-PASS
// status.
type Alarm struct {
	At      time.Duration
	Host    string
	Finding string
	Status  core.CheckStatus
}

// DeltaResult is one host's evaluation within a flush.
type DeltaResult struct {
	Host string
	// Full marks a whole-catalogue run (priming, unkeyed event, net
	// flip); otherwise only the Checks affected checks ran.
	Full bool
	// Events is how many tailed events this delta coalesced.
	Events int
	// Checks is how many catalogue entries were evaluated.
	Checks int
	// Result is the underlying audit outcome; its Report is always the
	// full merged per-host report regardless of Full.
	Result HostResult
}

// FlushResult is the outcome of one coalescing window.
type FlushResult struct {
	// At is the caller's timestamp for the flush (virtual or real).
	At    time.Duration
	Hosts []DeltaResult
	// Events / ChecksEvaluated / ChecksExecuted are this flush's slice
	// of the cumulative StreamStats counters.
	Events          int
	ChecksEvaluated int
	ChecksExecuted  int
	// Alarms holds the violation episodes this flush opened; Repairs
	// counts the ones it closed.
	Alarms  []Alarm
	Repairs int
	// Wall is the real elapsed time of the flush.
	Wall time.Duration
}

// NewStreamer returns a streamer evaluating through the coordinator's
// incremental cache (so fallback sweeps on the same coordinator see the
// streamer's merged reports and vice versa).
func NewStreamer(coord *Coordinator, opts StreamOptions) *Streamer {
	return &Streamer{
		coord: coord,
		opts:  opts.normalized(),
		hosts: map[string]*streamHost{},
		dirty: map[string]bool{},
	}
}

// Watch registers a target and its event source. The host starts dirty
// and unprimed: its first flush runs the full catalogue to establish the
// verdict baseline, and every subsequent flush deltas from the event
// tail. Re-watching a name replaces the previous registration.
func (s *Streamer) Watch(t Target, log *host.EventLog) {
	sh := &streamHost{
		target:      t,
		log:         log,
		index:       BuildDepIndex(t.Catalog),
		status:      map[string]core.CheckStatus{},
		inViolation: map[string]bool{},
	}
	if log != nil {
		name := t.Name
		sh.cancel = log.Subscribe(func(host.Event) { s.markDirty(name) })
		// Events already in the log are covered by the priming full run;
		// the tail picks up strictly newer ones. An event landing between
		// Subscribe and Len is both covered by the priming run and
		// re-delivered by the tail — harmless, never lost.
		sh.cursor = log.Len()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if old := s.hosts[t.Name]; old != nil {
		s.detachLocked(old)
	}
	s.hosts[t.Name] = sh
	s.dirty[t.Name] = true
}

// Unwatch removes a target: its subscription is cancelled, its verdicts
// leave the live view, and its cache entry is dropped (the host is gone;
// a returning host of the same name must re-audit, not replay).
func (s *Streamer) Unwatch(name string) {
	s.mu.Lock()
	sh := s.hosts[name]
	if sh != nil {
		s.detachLocked(sh)
		delete(s.hosts, name)
		delete(s.dirty, name)
	}
	s.mu.Unlock()
	if sh != nil {
		s.coord.Invalidate(name)
	}
}

// detachLocked cancels a host's subscription and removes its verdicts
// from the live counts; callers hold s.mu.
func (s *Streamer) detachLocked(sh *streamHost) {
	if sh.cancel != nil {
		sh.cancel()
	}
	for _, st := range sh.status {
		s.countLocked(st, -1)
	}
}

// countLocked moves one verdict in or out of the live counts.
func (s *Streamer) countLocked(st core.CheckStatus, delta int) {
	switch st {
	case core.CheckPass:
		s.pass += delta
	case core.CheckFail:
		s.fail += delta
	default:
		s.incomplete += delta
	}
}

func (s *Streamer) markDirty(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.hosts[name]; ok {
		s.dirty[name] = true
	}
}

// Hosts reports how many targets are watched.
func (s *Streamer) Hosts() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.hosts)
}

// DirtyHosts reports how many watched hosts have unconsumed events.
func (s *Streamer) DirtyHosts() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.dirty)
}

// Counts returns the live fleet-wide verdict counts. Hosts not yet
// primed contribute nothing.
func (s *Streamer) Counts() (pass, fail, incomplete int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pass, s.fail, s.incomplete
}

// Compliance is the live fraction of PASS verdicts across the fleet; an
// empty (or unprimed) view is fully compliant, matching
// FleetReport.Compliance.
func (s *Streamer) Compliance() float64 {
	pass, fail, inc := s.Counts()
	total := pass + fail + inc
	if total == 0 {
		return 1
	}
	return float64(pass) / float64(total)
}

// Stats returns the cumulative streamer telemetry, with the
// read-localization gauges snapshotted from the currently watched hosts.
func (s *Streamer) Stats() StreamStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	for _, sh := range s.hosts {
		st.IndexedChecks += len(sh.index.Indexed())
		st.UnindexedChecks += len(sh.index.Unindexed())
	}
	return st
}

// deltaPlan is one dirty host's work for a flush, computed under no
// locks from the host's event tail.
type deltaPlan struct {
	sh     *streamHost
	events []host.Event
	next   int
	full   bool
	// only is the affected-check subset; nil when full. A non-nil empty
	// only means the delta touches no checks at all: the plan degrades
	// to a cache re-stamp (Coordinator.Refresh) with no evaluation.
	only []string
}

// Flush evaluates every host dirtied since the previous flush and folds
// the fresh verdicts into the live view. now is the caller's timestamp
// (virtual or real), recorded on the result and its alarms. Dirty hosts
// are planned and folded in name order, so a given event history always
// yields the same batches, the same verdict sequence and the same alarm
// order regardless of goroutine interleaving; only the evaluation in
// between is parallel.
func (s *Streamer) Flush(now time.Duration) FlushResult {
	t0 := time.Now()
	fr := FlushResult{At: now}

	// Snapshot and clear the dirty set. Events arriving after the
	// snapshot re-dirty their host and wait for the next flush; events
	// arriving between a host's Tail below and the fold are re-delivered
	// next flush too, because the cursor only advances to what was
	// tailed.
	s.mu.Lock()
	if len(s.dirty) == 0 {
		s.mu.Unlock()
		return fr
	}
	names := make([]string, 0, len(s.dirty))
	for name := range s.dirty {
		names = append(names, name)
	}
	sort.Strings(names)
	s.dirty = map[string]bool{}
	plans := make([]deltaPlan, 0, len(names))
	for _, name := range names {
		if sh := s.hosts[name]; sh != nil {
			plans = append(plans, deltaPlan{sh: sh})
		}
	}
	s.mu.Unlock()

	// Plan: tail each host's log and coalesce its dirty keys into the
	// affected-check subset. Sequential and allocation-light; the
	// expensive part is the evaluation below.
	for i := range plans {
		p := &plans[i]
		sh := p.sh
		if sh.log != nil {
			p.events, p.next = sh.log.Tail(sh.cursor)
		}
		p.full = !sh.primed
		var keys []string
		seen := map[string]bool{}
		for _, ev := range p.events {
			// Unkeyed events (bulk provisioning, legacy appends) and
			// connectivity flips touch the whole host.
			if ev.Key.IsZero() || ev.Key.Kind == host.KeyNet {
				p.full = true
				break
			}
			if k := ev.Key.String(); !seen[k] {
				seen[k] = true
				keys = append(keys, k)
			}
		}
		if !p.full {
			sort.Strings(keys)
			p.only = sh.index.Affected(keys)
			if p.only == nil {
				// Distinguish "no affected checks" (re-stamp only) from
				// the nil that means "run everything".
				p.only = []string{}
			}
		}
	}

	var memo *core.CheckMemo
	if s.opts.Dedup && s.opts.Mode == core.CheckOnly {
		memo = core.NewCheckMemo()
	}
	var root *telemetry.Span
	if s.opts.Trace != nil {
		root = s.opts.Trace.Root("flush").TagInt("hosts", len(plans))
	}
	evalOpts := s.opts.evalOptions()

	// Evaluate: dirty hosts fan out over the shard pool; each host's
	// subset (or full catalogue) runs through the coordinator's delta
	// path, sharing this flush's memo and span tree.
	results, _ := engine.Map(plans, s.opts.Shards, func(i int, p deltaPlan) HostResult {
		var sp *telemetry.Span
		if root != nil {
			// ChildTrace: each per-host delta is one change→verdict unit,
			// rooted as its own trace for the store's slowest-trace search.
			sp = root.ChildTrace("delta").Tag("host", p.sh.target.Name).TagBool("full", p.full)
		}
		var hr HostResult
		if p.full {
			hr = s.coord.applyDelta(p.sh.target, nil, i%s.opts.Shards, evalOpts, memo, sp)
		} else if len(p.only) == 0 {
			// Zero affected checks: verdicts cannot have moved; re-stamp
			// the cache at the current version so fallback sweeps still
			// replay instead of re-auditing.
			s.coord.Refresh(p.sh.target)
			if e, ok := s.coord.lookup(p.sh.target.Name); ok {
				hr = HostResult{Target: p.sh.target.Name, FromCache: true, Report: e.report}
				hr.Degraded = degradedReport(e.report)
			} else {
				hr = HostResult{Target: p.sh.target.Name}
			}
		} else {
			hr = s.coord.applyDelta(p.sh.target, p.only, i%s.opts.Shards, evalOpts, memo, sp)
		}
		if sp != nil {
			sp.TagInt("checks", len(p.only)).End()
		}
		return hr
	})
	root.End()

	// Fold: advance cursors, refresh the live view, open/close violation
	// episodes — in plan (name) order, so alarms and counts are
	// deterministic.
	s.mu.Lock()
	for i, hr := range results {
		p := plans[i]
		sh := p.sh
		if _, still := s.hosts[sh.target.Name]; !still {
			// Unwatched mid-flush: drop the result; detachLocked already
			// removed its verdicts.
			continue
		}
		sh.cursor = p.next
		sh.primed = true

		checks := len(p.only)
		if p.full {
			checks = len(hr.Report.Results)
		}
		executed := 0
		if !hr.FromCache {
			executed = hr.Stats.Requirements - hr.Stats.DedupHits
		}
		fr.Hosts = append(fr.Hosts, DeltaResult{
			Host: sh.target.Name, Full: p.full, Events: len(p.events),
			Checks: checks, Result: hr,
		})
		fr.Events += len(p.events)
		fr.ChecksEvaluated += checks
		fr.ChecksExecuted += executed

		for _, r := range hr.Report.Results {
			old, had := sh.status[r.FindingID]
			if had {
				if old == r.After {
					continue
				}
				s.countLocked(old, -1)
			}
			sh.status[r.FindingID] = r.After
			s.countLocked(r.After, +1)
		}
		// Episode bookkeeping runs over the full merged report so a
		// subset delta can both open and close episodes it touched.
		for _, r := range hr.Report.Results {
			if r.After != core.CheckPass {
				if !sh.inViolation[r.FindingID] {
					sh.inViolation[r.FindingID] = true
					fr.Alarms = append(fr.Alarms, Alarm{
						At: now, Host: sh.target.Name, Finding: r.FindingID, Status: r.After,
					})
				}
			} else if sh.inViolation[r.FindingID] {
				delete(sh.inViolation, r.FindingID)
				fr.Repairs++
			}
		}
	}
	fr.Wall = time.Since(t0)

	s.stats.Flushes++
	s.stats.Events += fr.Events
	s.stats.DeltaHosts += len(fr.Hosts)
	for _, d := range fr.Hosts {
		if d.Full {
			s.stats.FullAudits++
		}
	}
	s.stats.ChecksEvaluated += fr.ChecksEvaluated
	s.stats.ChecksExecuted += fr.ChecksExecuted
	s.stats.Alarms += len(fr.Alarms)
	s.stats.Repairs += fr.Repairs
	compliance := 1.0
	if total := s.pass + s.fail + s.incomplete; total > 0 {
		compliance = float64(s.pass) / float64(total)
	}
	s.mu.Unlock()

	recordFlushMetrics(s.opts.Metrics, fr, compliance)
	return fr
}

// recordFlushMetrics folds one flush into the shared metrics registry.
func recordFlushMetrics(m *telemetry.Metrics, fr FlushResult, compliance float64) {
	if m == nil {
		return
	}
	m.Add("stream.flushes", 1)
	m.Add("stream.events", int64(fr.Events))
	m.Add("stream.dirty_hosts", int64(len(fr.Hosts)))
	m.Add("stream.checks_evaluated", int64(fr.ChecksEvaluated))
	m.Add("stream.checks_executed", int64(fr.ChecksExecuted))
	m.Add("stream.alarms", int64(len(fr.Alarms)))
	m.Add("stream.repairs", int64(fr.Repairs))
	m.Observe("stream.flush_wall", fr.Wall)
	m.SetGauge("stream.compliance", compliance)
}
