package fleet

import (
	"sort"
	"sync"
	"time"
)

// Scheduling selects how a sweep places hosts on shards.
type Scheduling int

const (
	// ScheduleWorkStealing (the default) seeds every shard's queue with
	// its affinity hosts ordered most-expensive-first — LPT over the
	// coordinator's observed per-host audit costs — and lets a shard whose
	// queue drains steal the most expensive remaining host from the most
	// loaded victim. Affinity survives as the tiebreak: a host runs on its
	// home shard unless that shard is the bottleneck.
	ScheduleWorkStealing Scheduling = iota
	// ScheduleStatic is the pure-affinity behaviour: a shard audits
	// exactly its affinity bucket and retires when it drains, even while
	// other shards are still loaded.
	ScheduleStatic
)

// schedItem is one queued host: its index into the sweep's sorted target
// slice and its estimated audit cost.
type schedItem struct {
	idx  int
	cost time.Duration
}

// stealScheduler hands hosts to shard workers. It is the pull source
// behind engine.Pull: shards call next concurrently, so all state is
// behind one mutex. Queues are seeded deterministically (affinity
// placement, LPT order, name-order tiebreak); only the dynamic placement
// — who ends up executing a stolen host — depends on runtime timing.
type stealScheduler struct {
	mu    sync.Mutex
	start time.Time
	// static disables stealing: next serves only the shard's own queue.
	static bool
	// queues[s] is shard s's pending hosts, most expensive first; pop
	// from the front.
	queues [][]schedItem
	// remaining[s] is the summed estimated cost still queued on shard s,
	// the victim-selection key.
	remaining []time.Duration
	// steals[s] counts hosts shard s executed from another shard's queue;
	// queueWait[s] sums, over the hosts shard s dispatched, the time each
	// spent enqueued before dispatch (sweep start to dequeue).
	steals    []int
	queueWait []time.Duration
}

// newStealScheduler seeds per-shard queues from the targets' affinity
// homes. costs is indexed like ts; unknown hosts (zero cost) are assumed
// to cost the mean of the known ones, so a cold coordinator still
// balances by count.
func newStealScheduler(n int, shards int, affinityOf func(i int) int, costs []time.Duration, static bool) *stealScheduler {
	var known time.Duration
	knownN := 0
	for _, c := range costs {
		if c > 0 {
			known += c
			knownN++
		}
	}
	defaultCost := time.Duration(1)
	if knownN > 0 {
		defaultCost = known / time.Duration(knownN)
	}

	s := &stealScheduler{
		start:     time.Now(),
		static:    static,
		queues:    make([][]schedItem, shards),
		remaining: make([]time.Duration, shards),
		steals:    make([]int, shards),
		queueWait: make([]time.Duration, shards),
	}
	for i := 0; i < n; i++ {
		cost := defaultCost
		if i < len(costs) && costs[i] > 0 {
			cost = costs[i]
		}
		home := affinityOf(i)
		s.queues[home] = append(s.queues[home], schedItem{idx: i, cost: cost})
		s.remaining[home] += cost
	}
	for home := range s.queues {
		q := s.queues[home]
		sort.SliceStable(q, func(a, b int) bool {
			if q[a].cost != q[b].cost {
				return q[a].cost > q[b].cost
			}
			return q[a].idx < q[b].idx
		})
	}
	return s
}

// next hands shard its next host: from its own queue while one remains,
// then (work-stealing only) the most expensive remaining host of the most
// loaded victim. ok=false retires the shard — under stealing that means
// the whole sweep is drained, under static that its own bucket is.
func (s *stealScheduler) next(shard int) (idx int, stolen bool, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	victim := shard
	if len(s.queues[shard]) == 0 {
		if s.static {
			return 0, false, false
		}
		victim = -1
		for v := range s.queues {
			if len(s.queues[v]) == 0 {
				continue
			}
			if victim < 0 || s.remaining[v] > s.remaining[victim] {
				victim = v
			}
		}
		if victim < 0 {
			return 0, false, false
		}
		stolen = true
		s.steals[shard]++
	}
	it := s.queues[victim][0]
	s.queues[victim] = s.queues[victim][1:]
	s.remaining[victim] -= it.cost
	s.queueWait[shard] += time.Since(s.start)
	return it.idx, stolen, true
}

// apply folds the scheduler's accounting into the sweep roll-up.
func (s *stealScheduler) apply(st *FleetStats) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range st.PerShard {
		if i < len(s.steals) {
			st.PerShard[i].Steals = s.steals[i]
			st.PerShard[i].QueueWait = s.queueWait[i]
			st.Steals += s.steals[i]
			st.QueueWait += s.queueWait[i]
		}
	}
}
