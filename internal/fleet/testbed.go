package fleet

import (
	"fmt"
	"time"

	"veridevops/internal/core"
	"veridevops/internal/engine"
	"veridevops/internal/host"
	"veridevops/internal/stig"
)

// This file builds the simulated fleets behind cmd/fleetaudit, the E13
// experiment and the fleet benchmarks: N hardened Ubuntu hosts, optional
// per-check probe latency (the shape where sharding pays) and seeded
// fault injection (the shape where degradation must not stall a sweep).

// LinuxFleet returns n hardened simulated Ubuntu hosts named host-00,
// host-01, ... as fleet targets wired to their event-log versions, plus
// the hosts themselves for drift and outage injection. Each host gets its
// own STIG catalogue; hardening runs before return, so a fresh sweep is
// fully compliant.
func LinuxFleet(n int) ([]Target, []*host.Linux) {
	targets := make([]Target, n)
	hosts := make([]*host.Linux, n)
	for i := 0; i < n; i++ {
		h := host.NewUbuntu1804()
		cat := stig.UbuntuCatalog(h)
		cat.Run(core.CheckAndEnforce)
		hosts[i] = h
		targets[i] = Target{
			Name:    fmt.Sprintf("host-%02d", i),
			Catalog: cat,
			Version: h.Log().Version,
		}
	}
	return targets, hosts
}

// WithProbeDelay replaces a target's catalogue with one whose every check
// stalls delay before delegating, modelling the ssh/WinRM round-trip a
// live audit agent pays per probe. Metadata and Enforce pass through.
func WithProbeDelay(t Target, delay time.Duration) Target {
	plan := engine.FaultPlan{SlowProb: 1, SlowDelay: delay}
	slowed := core.NewCatalog()
	for _, r := range t.Catalog.All() {
		slowed.MustRegister(core.InjectFaults(r, engine.NewFaultInjector(0, plan)))
	}
	t.Catalog = slowed
	return t
}

// WithFaults replaces a target's catalogue with one whose checks misbehave
// per plan, one injector per requirement seeded seed+index — the E7b
// construction, so identical seeds and plans give identical fault
// schedules regardless of shard interleaving.
func WithFaults(t Target, seed int64, plan engine.FaultPlan) Target {
	faulted := core.NewCatalog()
	for i, r := range t.Catalog.All() {
		faulted.MustRegister(core.InjectFaults(r, engine.NewFaultInjector(seed+int64(i), plan)))
	}
	t.Catalog = faulted
	return t
}
