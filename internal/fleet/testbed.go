package fleet

import (
	"fmt"
	"time"

	"veridevops/internal/core"
	"veridevops/internal/engine"
	"veridevops/internal/host"
	"veridevops/internal/stig"
)

// This file builds the simulated fleets behind cmd/fleetaudit, the E13
// experiment and the fleet benchmarks: N hardened Ubuntu hosts, optional
// per-check probe latency (the shape where sharding pays) and seeded
// fault injection (the shape where degradation must not stall a sweep).

// LinuxFleet returns n hardened simulated Ubuntu hosts named host-00,
// host-01, ... as fleet targets wired to their event-log versions, plus
// the hosts themselves for drift and outage injection. Each host gets its
// own STIG catalogue; hardening runs before return, so a fresh sweep is
// fully compliant.
func LinuxFleet(n int) ([]Target, []*host.Linux) {
	targets := make([]Target, n)
	hosts := make([]*host.Linux, n)
	for i := 0; i < n; i++ {
		h := host.NewUbuntu1804()
		cat := stig.UbuntuCatalog(h)
		cat.Run(core.CheckAndEnforce)
		hosts[i] = h
		targets[i] = Target{
			Name:    fmt.Sprintf("host-%02d", i),
			Catalog: cat,
			Version: h.Log().Version,
		}
	}
	return targets, hosts
}

// WithProbeDelay replaces a target's catalogue with one whose every check
// stalls delay before delegating, modelling the ssh/WinRM round-trip a
// live audit agent pays per probe. Metadata and Enforce pass through.
func WithProbeDelay(t Target, delay time.Duration) Target {
	plan := engine.FaultPlan{SlowProb: 1, SlowDelay: delay}
	slowed := core.NewCatalog()
	for _, r := range t.Catalog.All() {
		slowed.MustRegister(core.InjectFaults(r, engine.NewFaultInjector(0, plan)))
	}
	t.Catalog = slowed
	return t
}

// SkewedFleet builds the work-stealing benchmark shape: n probe-delayed
// hosts of which one — picked deterministically from the most populated
// affinity bucket at the given shard count, where static scheduling hurts
// the most co-tenants — pays skew× the probe delay. It returns the
// targets and the slow host's name.
func SkewedFleet(n, shards int, delay time.Duration, skew int) ([]Target, string) {
	targets, _ := LinuxFleet(n)
	buckets := make([]int, shards)
	for _, t := range targets {
		buckets[Affinity(t.Name, shards)]++
	}
	biggest := 0
	for s, c := range buckets {
		if c > buckets[biggest] {
			biggest = s
		}
	}
	slow := ""
	for i := range targets {
		d := delay
		if slow == "" && Affinity(targets[i].Name, shards) == biggest {
			slow = targets[i].Name
			d = delay * time.Duration(skew)
		}
		targets[i] = WithProbeDelay(targets[i], d)
	}
	return targets, slow
}

// WithFaults replaces a target's catalogue with one whose checks misbehave
// per plan, one injector per requirement seeded seed+index — the E7b
// construction, so identical seeds and plans give identical fault
// schedules regardless of shard interleaving.
func WithFaults(t Target, seed int64, plan engine.FaultPlan) Target {
	faulted := core.NewCatalog()
	for i, r := range t.Catalog.All() {
		faulted.MustRegister(core.InjectFaults(r, engine.NewFaultInjector(seed+int64(i), plan)))
	}
	t.Catalog = faulted
	return t
}
