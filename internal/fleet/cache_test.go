package fleet

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"veridevops/internal/host"
)

func TestSaveLoadCacheRestartResume(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fleet-cache.json")

	// First process: full sweep, drift two hosts, persist.
	targets, hosts := LinuxFleet(8)
	coord := NewCoordinator()
	coord.Sweep(targets, Options{Shards: 4, Workers: 2})
	host.DriftLinux(hosts[2], 3, newRng(5))
	host.DriftLinux(hosts[6], 2, newRng(6))
	if err := coord.SaveCache(path); err != nil {
		t.Fatal(err)
	}

	// The uninterrupted coordinator's incremental sweep is the reference.
	wantRep, wantSt := coord.Sweep(targets, Options{Shards: 4, Workers: 2, Incremental: true})

	// Second process: fresh coordinator resumes from the file. The same
	// two hosts re-run, the other six replay, and the report matches the
	// uninterrupted run exactly.
	resumed := NewCoordinator()
	if err := resumed.LoadCache(path); err != nil {
		t.Fatal(err)
	}
	if resumed.CachedHosts() != 8 {
		t.Fatalf("restored %d hosts, want 8", resumed.CachedHosts())
	}
	gotRep, gotSt := resumed.Sweep(targets, Options{Shards: 4, Workers: 2, Incremental: true})
	if gotSt.CachedHosts != wantSt.CachedHosts || gotSt.CachedHosts != 6 {
		t.Errorf("CachedHosts = %d, uninterrupted run had %d (want 6)",
			gotSt.CachedHosts, wantSt.CachedHosts)
	}
	if gotSt.CacheHitRate() != wantSt.CacheHitRate() {
		t.Errorf("hit rate = %v, uninterrupted run had %v",
			gotSt.CacheHitRate(), wantSt.CacheHitRate())
	}
	if !reflect.DeepEqual(reportVerdicts(gotRep), reportVerdicts(wantRep)) {
		t.Error("restart-resume sweep verdicts diverge from the uninterrupted run")
	}

	// The persisted cost table seeds LPT scheduling on the new process.
	costs := resumed.snapshotCosts(targets)
	nonzero := 0
	for _, c := range costs {
		if c > 0 {
			nonzero++
		}
	}
	if nonzero != 8 {
		t.Errorf("restored %d cost estimates, want 8", nonzero)
	}
}

func reportVerdicts(r FleetReport) map[string]string {
	out := map[string]string{}
	for _, hr := range r.Hosts {
		for _, res := range hr.Report.Results {
			out[hr.Target+"/"+res.FindingID] = res.After.String()
		}
	}
	return out
}

func TestLoadCacheCorruptFileColdStarts(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.json")
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	targets, _ := LinuxFleet(3)
	coord := NewCoordinator()
	coord.Sweep(targets, Options{Shards: 1, Workers: 1}) // warm, then poison
	if err := coord.LoadCache(path); err == nil {
		t.Fatal("corrupt cache file must error")
	}
	if coord.CachedHosts() != 0 {
		t.Error("corrupt load must leave the coordinator cold")
	}
	// Cold fallback still sweeps correctly.
	_, st := coord.Sweep(targets, Options{Shards: 2, Workers: 1, Incremental: true})
	if st.CachedHosts != 0 || st.CacheMisses == 0 {
		t.Errorf("cold fallback sweep = %+v, want full run", st)
	}
}

func TestLoadCacheSchemaMismatchColdStarts(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.json")
	if err := os.WriteFile(path, []byte(`{"schema": 99, "hosts": {}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	coord := NewCoordinator()
	err := coord.LoadCache(path)
	if !errors.Is(err, ErrCacheSchema) {
		t.Fatalf("err = %v, want ErrCacheSchema", err)
	}
	if coord.CachedHosts() != 0 {
		t.Error("schema mismatch must leave the coordinator cold")
	}
}

func TestLoadCacheMissingFileColdStarts(t *testing.T) {
	coord := NewCoordinator()
	err := coord.LoadCache(filepath.Join(t.TempDir(), "absent.json"))
	if err == nil {
		t.Fatal("missing file must error")
	}
	if coord.CachedHosts() != 0 {
		t.Error("missing file must leave the coordinator cold")
	}
}

// TestSaveLoadCacheCostOnlyHosts covers the unversioned-target corner:
// a host audited without a Version probe records an LPT cost estimate
// but never a cache entry, so SaveCache writes it as a cost-only record
// (Version 0, empty report). LoadCache must restore the cost without
// inventing a cache entry, and a schema-mismatch file must cold-start
// with costs empty too.
func TestSaveLoadCacheCostOnlyHosts(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.json")
	targets, _ := LinuxFleet(3)
	targets[1].Version = nil // cost-only: audited but unversioned

	coord := NewCoordinator()
	coord.Sweep(targets, Options{Shards: 1, Workers: 1})
	if coord.CachedHosts() != 2 {
		t.Fatalf("cached %d hosts, want 2 (unversioned host must not cache)", coord.CachedHosts())
	}
	if err := coord.SaveCache(path); err != nil {
		t.Fatal(err)
	}

	restored := NewCoordinator()
	if err := restored.LoadCache(path); err != nil {
		t.Fatal(err)
	}
	if restored.CachedHosts() != 2 {
		t.Errorf("restored %d cache entries, want 2 (cost-only record must not become one)",
			restored.CachedHosts())
	}
	costs := restored.snapshotCosts(targets)
	for i, c := range costs {
		if c <= 0 {
			t.Errorf("restored cost for %s = %v, want > 0", targets[i].Name, c)
		}
	}

	// A schema this build does not write degrades to a fully cold start:
	// no cache entries and no cost estimates, even though the file holds
	// both.
	if err := os.WriteFile(path,
		[]byte(`{"schema": 99, "hosts": {"host-01": {"version": 0, "cost_ns": 12345, "report": {"Results": null}}}}`),
		0o644); err != nil {
		t.Fatal(err)
	}
	cold := NewCoordinator()
	if err := cold.LoadCache(path); !errors.Is(err, ErrCacheSchema) {
		t.Fatalf("err = %v, want ErrCacheSchema", err)
	}
	for i, c := range cold.snapshotCosts(targets) {
		if c != 0 {
			t.Errorf("schema-mismatch load kept cost for %s = %v, want 0", targets[i].Name, c)
		}
	}
}

func TestSaveCacheRoundTripsInvalidation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.json")
	targets, _ := LinuxFleet(4)
	coord := NewCoordinator()
	coord.Sweep(targets, Options{Shards: 2, Workers: 1})
	coord.Invalidate("host-01")
	if err := coord.SaveCache(path); err != nil {
		t.Fatal(err)
	}
	restored := NewCoordinator()
	if err := restored.LoadCache(path); err != nil {
		t.Fatal(err)
	}
	if restored.CachedHosts() != 3 {
		t.Errorf("restored %d hosts, want 3 (invalidation persisted)", restored.CachedHosts())
	}
	_, st := restored.Sweep(targets, Options{Shards: 2, Workers: 1, Incremental: true})
	if st.CachedHosts != 3 {
		t.Errorf("resumed sweep cached %d hosts, want 3", st.CachedHosts)
	}
}
