package fleet

import (
	"fmt"
	"time"

	"veridevops/internal/engine"
	"veridevops/internal/report"
)

// ShardStats is the per-shard telemetry of one sweep.
type ShardStats struct {
	Shard int
	// Hosts is how many targets have affinity to this shard; Cached how
	// many of them were replayed from the incremental cache.
	Hosts  int
	Cached int
	// Requirements counts verdicts produced by the shard, cached included.
	Requirements int
	// Wall is the shard goroutine's elapsed time; Busy the summed
	// per-requirement durations of its executed hosts.
	Wall time.Duration
	Busy time.Duration
	// Attempts / Retries / Panics / Timeouts / Errors sum the executed
	// hosts' run telemetry.
	Attempts int
	Retries  int
	Panics   int
	Timeouts int
	Errors   int
}

// HostStats is the compact per-host row of a FleetStats.
type HostStats struct {
	Target       string
	Shard        int
	Requirements int
	Errors       int
	FromCache    bool
	Degraded     bool
	Wall         time.Duration
}

// FleetStats merges the per-shard RunStats of one sweep into a fleet-wide
// roll-up: the telemetry cmd/fleetaudit renders and BENCH_fleet.json
// records.
type FleetStats struct {
	Hosts   int
	Shards  int
	Workers int
	// Requirements counts verdicts across the fleet, cached included.
	Requirements int
	// Wall is the whole sweep's elapsed time; Busy the summed
	// per-requirement durations across every executed host
	// (Busy / (Shards*Workers*Wall) measures pool utilisation).
	Wall time.Duration
	Busy time.Duration
	// Attempts / Retries / Panics / Timeouts / Errors sum over executed
	// hosts.
	Attempts int
	Retries  int
	Panics   int
	Timeouts int
	Errors   int
	// CachedHosts counts targets replayed from the incremental cache;
	// DegradedHosts targets whose every verdict was ERROR.
	CachedHosts   int
	DegradedHosts int
	// CacheHits / CacheMisses count requirement verdicts replayed versus
	// re-executed. They are only accounted on incremental sweeps; a full
	// sweep reports 0/0.
	CacheHits   int
	CacheMisses int
	// PerShard and PerHost hold the detail rows, ordered by shard index
	// and target name respectively.
	PerShard []ShardStats
	PerHost  []HostStats
}

// CacheHitRate is CacheHits / (CacheHits + CacheMisses) in [0,1]; 0 when
// the sweep was not incremental.
func (s FleetStats) CacheHitRate() float64 {
	total := s.CacheHits + s.CacheMisses
	if total == 0 {
		return 0
	}
	return float64(s.CacheHits) / float64(total)
}

// Utilization is Busy / (Shards * Workers * Wall) in [0,1]: how much of
// the two-level pool's total capacity the sweep kept busy.
func (s FleetStats) Utilization() float64 {
	return engine.PoolStats{Workers: s.Shards * s.Workers, Wall: s.Wall, Busy: s.Busy}.Utilization()
}

// Summary renders the roll-up as one line.
func (s FleetStats) Summary() string {
	return fmt.Sprintf(
		"fleet: %d hosts over %d shards x %d workers, %d requirements (%d hosts cached, hit rate %s), %d attempts (%d retries, %d panics recovered, %d timeouts), %d errors (%d hosts degraded), wall %s ms, utilization %s",
		s.Hosts, s.Shards, s.Workers, s.Requirements, s.CachedHosts,
		report.Percent(s.CacheHitRate()), s.Attempts, s.Retries, s.Panics,
		s.Timeouts, s.Errors, s.DegradedHosts, report.Millis(s.Wall),
		report.Percent(s.Utilization()))
}

// ShardTable renders the per-shard telemetry.
func (s FleetStats) ShardTable(title string) *report.Table {
	t := report.New(title, "shard", "hosts", "cached", "requirements",
		"attempts", "retries", "panics", "timeouts", "errors", "wall-ms")
	for _, sh := range s.PerShard {
		t.AddRow(sh.Shard, sh.Hosts, sh.Cached, sh.Requirements, sh.Attempts,
			sh.Retries, sh.Panics, sh.Timeouts, sh.Errors, report.Millis(sh.Wall))
	}
	t.Note = s.Summary()
	return t
}

// HostTable renders the per-host telemetry.
func (s FleetStats) HostTable(title string) *report.Table {
	t := report.New(title, "host", "shard", "requirements", "errors", "cached", "degraded", "wall-ms")
	for _, h := range s.PerHost {
		t.AddRow(h.Target, h.Shard, h.Requirements, h.Errors, h.FromCache,
			h.Degraded, report.Millis(h.Wall))
	}
	t.Note = s.Summary()
	return t
}

// Canonical returns the stats with every timing field zeroed — the form
// the determinism tests compare. Everything else (verdict counts, cache
// accounting, shard assignment, attempt/panic telemetry) is a
// deterministic function of the fleet, the seed and the fault plan.
func (s FleetStats) Canonical() FleetStats {
	s.Wall, s.Busy = 0, 0
	shards := make([]ShardStats, len(s.PerShard))
	copy(shards, s.PerShard)
	for i := range shards {
		shards[i].Wall, shards[i].Busy = 0, 0
	}
	s.PerShard = shards
	hosts := make([]HostStats, len(s.PerHost))
	copy(hosts, s.PerHost)
	for i := range hosts {
		hosts[i].Wall = 0
	}
	s.PerHost = hosts
	return s
}

// aggregate folds per-host results and shard walls into the roll-up.
func aggregate(results []HostResult, shardWalls []time.Duration, ps engine.PoolStats, opts Options) FleetStats {
	st := FleetStats{
		Hosts:    len(results),
		Shards:   opts.Shards,
		Workers:  opts.Workers,
		Wall:     ps.Wall,
		PerShard: make([]ShardStats, opts.Shards),
		PerHost:  make([]HostStats, 0, len(results)),
	}
	for i := range st.PerShard {
		st.PerShard[i].Shard = i
		if i < len(shardWalls) {
			st.PerShard[i].Wall = shardWalls[i]
		}
	}
	for _, hr := range results {
		sh := &st.PerShard[hr.Shard]
		reqs := len(hr.Report.Results)
		st.Requirements += reqs
		sh.Hosts++
		sh.Requirements += reqs
		st.PerHost = append(st.PerHost, HostStats{
			Target:       hr.Target,
			Shard:        hr.Shard,
			Requirements: reqs,
			Errors:       hr.Stats.Errors,
			FromCache:    hr.FromCache,
			Degraded:     hr.Degraded,
			Wall:         hr.Stats.Wall,
		})
		if hr.FromCache {
			st.CachedHosts++
			sh.Cached++
			st.CacheHits += reqs
			continue
		}
		if opts.Incremental {
			st.CacheMisses += reqs
		}
		if hr.Degraded {
			st.DegradedHosts++
		}
		st.Busy += hr.Stats.Busy
		sh.Busy += hr.Stats.Busy
		st.Attempts += hr.Stats.Attempts
		sh.Attempts += hr.Stats.Attempts
		st.Retries += hr.Stats.Retries
		sh.Retries += hr.Stats.Retries
		st.Panics += hr.Stats.Panics
		sh.Panics += hr.Stats.Panics
		st.Timeouts += hr.Stats.Timeouts
		sh.Timeouts += hr.Stats.Timeouts
		st.Errors += hr.Stats.Errors
		sh.Errors += hr.Stats.Errors
	}
	return st
}
