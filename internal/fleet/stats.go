package fleet

import (
	"fmt"
	"time"

	"veridevops/internal/core"
	"veridevops/internal/engine"
	"veridevops/internal/report"
)

// ShardStats is the per-shard telemetry of one sweep.
type ShardStats struct {
	Shard int
	// Hosts is how many targets have affinity to this shard; Cached how
	// many of them were replayed from the incremental cache.
	Hosts  int
	Cached int
	// Requirements counts verdicts produced by the shard, cached included.
	Requirements int
	// Wall is the shard goroutine's elapsed time; Busy the summed
	// per-requirement durations of its executed hosts.
	Wall time.Duration
	Busy time.Duration
	// Attempts / Retries / Panics / Timeouts / Errors sum the executed
	// hosts' run telemetry.
	Attempts int
	Retries  int
	Panics   int
	Timeouts int
	Errors   int
	// Steals counts hosts this shard executed from another shard's queue;
	// QueueWait sums, over the hosts this shard dispatched, the time each
	// spent enqueued before dispatch. Both are placement telemetry and
	// depend on runtime timing under work stealing.
	Steals    int
	QueueWait time.Duration
}

// HostStats is the compact per-host row of a FleetStats.
type HostStats struct {
	Target       string
	Shard        int
	Requirements int
	Errors       int
	FromCache    bool
	// Stolen marks a host executed away from its affinity home.
	Stolen   bool
	Degraded bool
	Wall     time.Duration
}

// FleetStats merges the per-shard RunStats of one sweep into a fleet-wide
// roll-up: the telemetry cmd/fleetaudit renders and BENCH_fleet.json
// records.
type FleetStats struct {
	Hosts   int
	Shards  int
	Workers int
	// Requirements counts verdicts across the fleet, cached included.
	Requirements int
	// Wall is the whole sweep's elapsed time; Busy the summed
	// per-requirement durations across every executed host
	// (Busy / (Shards*Workers*Wall) measures pool utilisation).
	Wall time.Duration
	Busy time.Duration
	// Attempts / Retries / Panics / Timeouts / Errors sum over executed
	// hosts.
	Attempts int
	Retries  int
	Panics   int
	Timeouts int
	Errors   int
	// CachedHosts counts targets replayed from the incremental cache;
	// DegradedHosts targets whose every verdict was ERROR.
	CachedHosts   int
	DegradedHosts int
	// CacheHits / CacheMisses count requirement verdicts replayed versus
	// re-executed. They are only accounted on incremental sweeps; a full
	// sweep reports 0/0.
	CacheHits   int
	CacheMisses int
	// DedupHits / DedupMisses count check executions saved versus paid by
	// cross-host dedup (Options.Dedup): a miss is the first arrival that
	// executed a distinct fingerprint, a hit a verdict replayed from the
	// sweep's shared memo. Both stay 0 when dedup is off. The totals are
	// deterministic; which host pays the miss is not.
	DedupHits   int
	DedupMisses int
	// Steals counts hosts executed away from their affinity home;
	// QueueWait sums dispatch latency across shards. Both are placement
	// telemetry (see ShardStats).
	Steals    int
	QueueWait time.Duration
	// IndexedChecks / UnindexedChecks count catalogue entries across the
	// fleet (per target, shared catalogues counted once per host) that do
	// or do not declare their read set via core.KeyReader. Unindexed
	// checks cannot be localized by the reverse dependency index: push
	// evaluation must conservatively re-run them on every event of their
	// host, so a non-zero count here is conservative fan-out made visible.
	IndexedChecks   int
	UnindexedChecks int
	// ActiveShards counts shards that executed or replayed at least one
	// host. Affinity hashing can leave buckets empty under static
	// scheduling, so capacity-derived metrics use this, not Shards.
	ActiveShards int
	// LoadImbalance is max(shard wall) / mean(active shard wall), >= 1
	// when measurable and 0 when not: 1.0 means perfectly balanced
	// shards, the value work stealing pushes towards.
	LoadImbalance float64
	// PerShard and PerHost hold the detail rows, ordered by shard index
	// and target name respectively.
	PerShard []ShardStats
	PerHost  []HostStats
}

// CacheHitRate is CacheHits / (CacheHits + CacheMisses) in [0,1]; 0 when
// the sweep was not incremental.
func (s FleetStats) CacheHitRate() float64 {
	total := s.CacheHits + s.CacheMisses
	if total == 0 {
		return 0
	}
	return float64(s.CacheHits) / float64(total)
}

// DedupRate is DedupHits / (DedupHits + DedupMisses) in [0,1]; 0 when
// dedup was off or nothing was memoisable.
func (s FleetStats) DedupRate() float64 {
	total := s.DedupHits + s.DedupMisses
	if total == 0 {
		return 0
	}
	return float64(s.DedupHits) / float64(total)
}

// ReadLocalization is IndexedChecks / (IndexedChecks + UnindexedChecks)
// in [0,1]: the fraction of the fleet's checks the dependency index can
// re-run selectively under push evaluation. 1.0 means every event fans
// out to exactly its readers; anything less marks conservative full
// re-runs. 0 when the fleet declared nothing (or localization was not
// measured).
func (s FleetStats) ReadLocalization() float64 {
	total := s.IndexedChecks + s.UnindexedChecks
	if total == 0 {
		return 0
	}
	return float64(s.IndexedChecks) / float64(total)
}

// Utilization is Busy / (ActiveShards * Workers * Wall) in [0,1]: how
// much of the capacity the sweep actually deployed it kept busy. The
// denominator counts active shards, not configured ones — affinity
// hashing can leave buckets empty (most visibly with Shards near the
// host count), and an idle-by-construction shard is not wasted capacity
// the sweep could have used.
func (s FleetStats) Utilization() float64 {
	return engine.PoolStats{Workers: s.ActiveShards * s.Workers, Wall: s.Wall, Busy: s.Busy}.Utilization()
}

// Summary renders the roll-up as one line.
func (s FleetStats) Summary() string {
	return fmt.Sprintf(
		"fleet: %d hosts over %d shards (%d active) x %d workers, %d requirements (%d hosts cached, hit rate %s, dedup %s), %d attempts (%d retries, %d panics recovered, %d timeouts), %d errors (%d hosts degraded), %d stolen, wall %s ms, utilization %s, read localization %s (%d unindexed)",
		s.Hosts, s.Shards, s.ActiveShards, s.Workers, s.Requirements,
		s.CachedHosts, report.Percent(s.CacheHitRate()),
		report.Percent(s.DedupRate()), s.Attempts, s.Retries, s.Panics,
		s.Timeouts, s.Errors, s.DegradedHosts, s.Steals, report.Millis(s.Wall),
		report.Percent(s.Utilization()),
		report.Percent(s.ReadLocalization()), s.UnindexedChecks)
}

// ShardTable renders the per-shard telemetry.
func (s FleetStats) ShardTable(title string) *report.Table {
	t := report.New(title, "shard", "hosts", "cached", "stolen", "requirements",
		"attempts", "retries", "panics", "timeouts", "errors", "wait-ms", "wall-ms")
	for _, sh := range s.PerShard {
		t.AddRow(sh.Shard, sh.Hosts, sh.Cached, sh.Steals, sh.Requirements, sh.Attempts,
			sh.Retries, sh.Panics, sh.Timeouts, sh.Errors,
			report.Millis(sh.QueueWait), report.Millis(sh.Wall))
	}
	t.Note = s.Summary()
	return t
}

// HostTable renders the per-host telemetry.
func (s FleetStats) HostTable(title string) *report.Table {
	t := report.New(title, "host", "shard", "requirements", "errors", "cached", "stolen", "degraded", "wall-ms")
	for _, h := range s.PerHost {
		t.AddRow(h.Target, h.Shard, h.Requirements, h.Errors, h.FromCache,
			h.Stolen, h.Degraded, report.Millis(h.Wall))
	}
	t.Note = s.Summary()
	return t
}

// Canonical returns the stats with every timing- and placement-dependent
// field zeroed — the form the determinism tests compare. Verdict counts,
// cache accounting, dedup totals and attempt/panic telemetry are
// deterministic functions of the fleet, the seed and the fault plan;
// which shard a host lands on under work stealing is not, so Canonical
// drops the per-shard rows and neutralises per-host placement the same
// way it neutralises wall clocks.
func (s FleetStats) Canonical() FleetStats {
	s.Wall, s.Busy = 0, 0
	s.Steals, s.QueueWait = 0, 0
	s.ActiveShards = 0
	s.LoadImbalance = 0
	s.PerShard = nil
	hosts := make([]HostStats, len(s.PerHost))
	copy(hosts, s.PerHost)
	for i := range hosts {
		hosts[i].Wall = 0
		hosts[i].Shard = 0
		hosts[i].Stolen = false
	}
	s.PerHost = hosts
	return s
}

// countLocalization fills the read-localization counters: per target,
// how many catalogue entries declare their read set (core.KeyReader)
// versus not. A catalogue shared by several targets is measured once
// but counted per host, matching the per-host fan-out cost an
// unindexed check imposes on push evaluation.
func countLocalization(st *FleetStats, ts []Target) {
	memo := map[*core.Catalog][2]int{}
	for _, t := range ts {
		if t.Catalog == nil {
			continue
		}
		cnt, ok := memo[t.Catalog]
		if !ok {
			for _, req := range t.Catalog.All() {
				if _, declared := core.CheckKeys(req); declared {
					cnt[0]++
				} else {
					cnt[1]++
				}
			}
			memo[t.Catalog] = cnt
		}
		st.IndexedChecks += cnt[0]
		st.UnindexedChecks += cnt[1]
	}
}

// aggregate folds per-host results and shard walls into the roll-up.
func aggregate(results []HostResult, shardWalls []time.Duration, ps engine.PoolStats, opts Options) FleetStats {
	st := FleetStats{
		Hosts:    len(results),
		Shards:   opts.Shards,
		Workers:  opts.Workers,
		Wall:     ps.Wall,
		PerShard: make([]ShardStats, opts.Shards),
		PerHost:  make([]HostStats, 0, len(results)),
	}
	for i := range st.PerShard {
		st.PerShard[i].Shard = i
		if i < len(shardWalls) {
			st.PerShard[i].Wall = shardWalls[i]
		}
	}
	for _, hr := range results {
		sh := &st.PerShard[hr.Shard]
		reqs := len(hr.Report.Results)
		st.Requirements += reqs
		sh.Hosts++
		sh.Requirements += reqs
		st.PerHost = append(st.PerHost, HostStats{
			Target:       hr.Target,
			Shard:        hr.Shard,
			Requirements: reqs,
			Errors:       hr.Stats.Errors,
			FromCache:    hr.FromCache,
			Stolen:       hr.Stolen,
			Degraded:     hr.Degraded,
			Wall:         hr.Stats.Wall,
		})
		// Degraded is counted before the cache branch: a replayed host
		// whose cached report was degraded is still a degraded host, and
		// skipping it here made Summary() contradict the HostTable rows.
		if hr.Degraded {
			st.DegradedHosts++
		}
		if hr.FromCache {
			st.CachedHosts++
			sh.Cached++
			st.CacheHits += reqs
			continue
		}
		if opts.Incremental {
			st.CacheMisses += reqs
		}
		st.Busy += hr.Stats.Busy
		sh.Busy += hr.Stats.Busy
		st.Attempts += hr.Stats.Attempts
		sh.Attempts += hr.Stats.Attempts
		st.Retries += hr.Stats.Retries
		sh.Retries += hr.Stats.Retries
		st.Panics += hr.Stats.Panics
		sh.Panics += hr.Stats.Panics
		st.Timeouts += hr.Stats.Timeouts
		sh.Timeouts += hr.Stats.Timeouts
		st.Errors += hr.Stats.Errors
		sh.Errors += hr.Stats.Errors
		st.DedupHits += hr.Stats.DedupHits
		st.DedupMisses += hr.Stats.DedupMisses
	}
	var wallSum time.Duration
	var wallMax time.Duration
	for _, sh := range st.PerShard {
		if sh.Hosts == 0 {
			continue
		}
		st.ActiveShards++
		wallSum += sh.Wall
		if sh.Wall > wallMax {
			wallMax = sh.Wall
		}
	}
	if st.ActiveShards > 0 && wallSum > 0 {
		st.LoadImbalance = float64(wallMax) * float64(st.ActiveShards) / float64(wallSum)
	}
	return st
}
