package fleet

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"

	"veridevops/internal/core"
	"veridevops/internal/host"
)

func streamFixture(t *testing.T, n int) (*Streamer, []Target, []*host.Linux) {
	t.Helper()
	targets, hosts := LinuxFleet(n)
	s := NewStreamer(NewCoordinator(), StreamOptions{Shards: 2, Workers: 1})
	for i, tg := range targets {
		s.Watch(tg, hosts[i].Log())
	}
	return s, targets, hosts
}

func TestStreamerPrimesThenDeltas(t *testing.T) {
	s, _, hosts := streamFixture(t, 3)

	// First flush primes every host with a full catalogue run.
	fr := s.Flush(0)
	if len(fr.Hosts) != 3 {
		t.Fatalf("priming flush evaluated %d hosts, want 3", len(fr.Hosts))
	}
	for _, d := range fr.Hosts {
		if !d.Full || d.Checks != 8 {
			t.Errorf("priming delta %s: full=%v checks=%d, want full 8", d.Host, d.Full, d.Checks)
		}
	}
	if c := s.Compliance(); c != 1 {
		t.Fatalf("primed compliance = %v, want 1", c)
	}
	if pass, fail, inc := s.Counts(); pass != 24 || fail != 0 || inc != 0 {
		t.Fatalf("counts = %d/%d/%d, want 24/0/0", pass, fail, inc)
	}

	// Nothing dirty: flush is a no-op.
	if fr := s.Flush(time.Second); len(fr.Hosts) != 0 || fr.Events != 0 {
		t.Fatalf("idle flush = %+v, want empty", fr)
	}

	// One package drifts on one host: exactly one check re-runs.
	hosts[1].Remove("aide")
	fr = s.Flush(2 * time.Second)
	if len(fr.Hosts) != 1 || fr.Hosts[0].Host != "host-01" {
		t.Fatalf("delta flush hosts = %+v, want just host-01", fr.Hosts)
	}
	d := fr.Hosts[0]
	if d.Full || d.Checks != 1 || d.Events != 1 {
		t.Errorf("delta = full=%v checks=%d events=%d, want subset of 1 check from 1 event", d.Full, d.Checks, d.Events)
	}
	if fr.ChecksEvaluated != 1 {
		t.Errorf("ChecksEvaluated = %d, want 1", fr.ChecksEvaluated)
	}
	want := []Alarm{{At: 2 * time.Second, Host: "host-01", Finding: "V-219343", Status: core.CheckFail}}
	if !reflect.DeepEqual(fr.Alarms, want) {
		t.Errorf("Alarms = %+v, want %+v", fr.Alarms, want)
	}
	if pass, fail, _ := s.Counts(); pass != 23 || fail != 1 {
		t.Errorf("counts after drift = %d pass %d fail, want 23/1", pass, fail)
	}

	// Re-violating without repair does not re-alarm (episode dedup)...
	hosts[1].Remove("aide")
	if fr := s.Flush(3 * time.Second); len(fr.Alarms) != 0 {
		t.Errorf("duplicate violation re-alarmed: %+v", fr.Alarms)
	}
	// ...and repairing closes the episode.
	hosts[1].Install("aide", "1")
	fr = s.Flush(4 * time.Second)
	if fr.Repairs != 1 || len(fr.Alarms) != 0 {
		t.Errorf("repair flush = %d repairs %d alarms, want 1/0", fr.Repairs, len(fr.Alarms))
	}
	if c := s.Compliance(); c != 1 {
		t.Errorf("post-repair compliance = %v, want 1", c)
	}

	st := s.Stats()
	if st.Flushes != 4 || st.FullAudits != 3 {
		t.Errorf("stats = %+v, want 4 flushes, 3 full audits", st)
	}
}

func TestStreamerNetFlipForcesFullAudit(t *testing.T) {
	s, _, hosts := streamFixture(t, 1)
	s.Flush(0)

	hosts[0].SetUnreachable(true)
	fr := s.Flush(time.Second)
	if len(fr.Hosts) != 1 || !fr.Hosts[0].Full {
		t.Fatalf("net.down delta = %+v, want a full audit", fr.Hosts)
	}
	if !fr.Hosts[0].Result.Degraded {
		t.Error("unreachable host not reported degraded")
	}
	if len(fr.Alarms) != 8 {
		t.Errorf("degraded host raised %d alarms, want 8 (every check errored)", len(fr.Alarms))
	}

	hosts[0].SetUnreachable(false)
	fr = s.Flush(2 * time.Second)
	if len(fr.Hosts) != 1 || !fr.Hosts[0].Full {
		t.Fatalf("net.up delta = %+v, want a full audit", fr.Hosts)
	}
	if fr.Repairs != 8 {
		t.Errorf("recovery closed %d episodes, want 8", fr.Repairs)
	}
	if c := s.Compliance(); c != 1 {
		t.Errorf("post-recovery compliance = %v", c)
	}
}

func TestStreamerZeroCheckDeltaRestampsCache(t *testing.T) {
	targets, hosts := LinuxFleet(1)
	coord := NewCoordinator()
	s := NewStreamer(coord, StreamOptions{})
	s.Watch(targets[0], hosts[0].Log())
	s.Flush(0)

	// A mutation no check reads: the delta maps to zero checks.
	hosts[0].SetConfig("/etc/motd", "banner", "hi")
	fr := s.Flush(time.Second)
	if len(fr.Hosts) != 1 {
		t.Fatalf("flush hosts = %+v", fr.Hosts)
	}
	d := fr.Hosts[0]
	if d.Full || d.Checks != 0 || !d.Result.FromCache {
		t.Errorf("zero-check delta = full=%v checks=%d fromCache=%v, want re-stamp replay", d.Full, d.Checks, d.Result.FromCache)
	}
	if fr.ChecksEvaluated != 0 || len(fr.Alarms) != 0 {
		t.Errorf("zero-check delta evaluated %d checks, %d alarms", fr.ChecksEvaluated, len(fr.Alarms))
	}

	// The re-stamp keeps the coordinator cache warm: a fallback
	// incremental sweep replays instead of re-auditing.
	_, st := coord.Sweep(targets, Options{Incremental: true})
	if st.CachedHosts != 1 {
		t.Errorf("fallback sweep re-audited after re-stamp (CachedHosts = %d)", st.CachedHosts)
	}
}

func TestStreamerUnwatchRemovesHost(t *testing.T) {
	s, targets, hosts := streamFixture(t, 2)
	s.Flush(0)
	if pass, _, _ := s.Counts(); pass != 16 {
		t.Fatalf("primed pass = %d", pass)
	}

	s.Unwatch(targets[0].Name)
	if s.Hosts() != 1 {
		t.Fatalf("Hosts = %d after Unwatch, want 1", s.Hosts())
	}
	if pass, _, _ := s.Counts(); pass != 8 {
		t.Errorf("pass = %d after Unwatch, want 8 (departed host's verdicts dropped)", pass)
	}
	// Events from the departed host no longer dirty the streamer.
	hosts[0].Remove("aide")
	if fr := s.Flush(time.Second); len(fr.Hosts) != 0 {
		t.Errorf("departed host still evaluated: %+v", fr.Hosts)
	}
	// The survivor still streams.
	hosts[1].Remove("aide")
	if fr := s.Flush(2 * time.Second); len(fr.Hosts) != 1 || fr.Hosts[0].Host != targets[1].Name {
		t.Errorf("survivor delta = %+v", fr.Hosts)
	}
}

func TestStreamerSharedMemoDedupsAcrossHosts(t *testing.T) {
	targets, hosts := LinuxFleet(8)
	s := NewStreamer(NewCoordinator(), StreamOptions{Shards: 4, Dedup: true})
	for i, tg := range targets {
		s.Watch(tg, hosts[i].Log())
	}
	fr := s.Flush(0)
	if fr.ChecksEvaluated != 64 {
		t.Fatalf("priming evaluated %d checks, want 64", fr.ChecksEvaluated)
	}
	// Homogeneous fleet: 8 distinct fingerprints execute, the rest replay.
	if fr.ChecksExecuted != 8 {
		t.Errorf("priming executed %d checks, want 8 (dedup across identical hosts)", fr.ChecksExecuted)
	}

	// The same drift on every host dedups its re-check too.
	for _, h := range hosts {
		h.Remove("aide")
	}
	fr = s.Flush(time.Second)
	if fr.ChecksEvaluated != 8 || fr.ChecksExecuted != 1 {
		t.Errorf("drift flush = %d evaluated / %d executed, want 8 / 1", fr.ChecksEvaluated, fr.ChecksExecuted)
	}
	if len(fr.Alarms) != 8 {
		t.Errorf("alarms = %d, want 8 (one per host, replayed verdicts included)", len(fr.Alarms))
	}
}

// TestStreamerDeterministic is the streamer half of the determinism
// satellite: the same seeded mutation script replayed against fresh
// fixtures yields identical coalescing batches, verdict sequences and
// alarm streams, byte for byte, regardless of shard interleaving.
func TestStreamerDeterministic(t *testing.T) {
	type runRecord struct {
		Batches [][]string
		Checks  []int
		Alarms  [][]Alarm
		Pass    int
		Fail    int
	}
	run := func(shards int) runRecord {
		targets, hosts := LinuxFleet(16)
		s := NewStreamer(NewCoordinator(), StreamOptions{Shards: shards, Workers: 2, Dedup: true})
		for i, tg := range targets {
			s.Watch(tg, hosts[i].Log())
		}
		s.Flush(0)
		rng := rand.New(rand.NewSource(42))
		var rec runRecord
		for step := 1; step <= 20; step++ {
			// A burst of seeded mutations across random hosts.
			for n := 0; n < 1+rng.Intn(4); n++ {
				h := hosts[rng.Intn(len(hosts))]
				switch rng.Intn(4) {
				case 0:
					h.Remove("aide")
				case 1:
					h.Install("aide", "1")
				case 2:
					h.SetConfig("/etc/login.defs", "ENCRYPT_METHOD", "MD5")
				case 3:
					h.Install("nis", "1")
				}
			}
			fr := s.Flush(time.Duration(step) * time.Second)
			var batch []string
			for _, d := range fr.Hosts {
				batch = append(batch, fmt.Sprintf("%s/full=%v/ev=%d/ck=%d", d.Host, d.Full, d.Events, d.Checks))
			}
			rec.Batches = append(rec.Batches, batch)
			rec.Checks = append(rec.Checks, fr.ChecksEvaluated)
			rec.Alarms = append(rec.Alarms, fr.Alarms)
		}
		rec.Pass, rec.Fail, _ = s.Counts()
		return rec
	}
	a := run(4)
	b := run(4)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same seed, same topology, different stream:\n%+v\n%+v", a, b)
	}
	// Shard count is placement telemetry, not semantics: the batches,
	// verdicts and alarms must not move when parallelism changes.
	c := run(1)
	if !reflect.DeepEqual(a, c) {
		t.Errorf("shard count changed the stream:\n%+v\n%+v", a, c)
	}
}

// TestStreamerConcurrentEventsRace drives appends from many goroutines
// while flushes and accessors run: the -race regression for the
// subscription and dirty-set paths. Verdict outcomes are asserted only
// at the end, once the writers are quiet.
func TestStreamerConcurrentEventsRace(t *testing.T) {
	s, _, hosts := streamFixture(t, 4)
	s.Flush(0)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for _, h := range hosts {
		wg.Add(1)
		go func(h *host.Linux) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if i%2 == 0 {
					h.Remove("aide")
				} else {
					h.Install("aide", "1")
				}
			}
		}(h)
	}
	for i := 0; i < 20; i++ {
		s.Flush(time.Duration(i) * time.Millisecond)
		s.Compliance()
		s.DirtyHosts()
	}
	close(stop)
	wg.Wait()

	// Writers quiet: every host ends installed; drain and verify.
	for _, h := range hosts {
		h.Install("aide", "1")
	}
	s.Flush(time.Second)
	if c := s.Compliance(); c != 1 {
		t.Errorf("final compliance = %v, want 1", c)
	}
}
