package fleet

import (
	"reflect"
	"testing"

	"veridevops/internal/core"
)

func TestApplyDeltaSubsetMergesIntoCache(t *testing.T) {
	targets, hosts := LinuxFleet(1)
	coord := NewCoordinator()
	opts := Options{Incremental: true}

	// Prime: full sweep, everything compliant and cached.
	rep, _ := coord.Sweep(targets, opts)
	if c := rep.Compliance(); c != 1 {
		t.Fatalf("primed compliance = %v, want 1", c)
	}

	// Drift one package, then delta exactly its check.
	hosts[0].Remove("aide")
	hr := coord.ApplyDelta(targets[0], []string{"V-219343"}, opts)
	if hr.Stats.Requirements != 1 {
		t.Errorf("delta evaluated %d checks, want 1", hr.Stats.Requirements)
	}
	if got := len(hr.Report.Results); got != 8 {
		t.Fatalf("merged report has %d results, want the full 8", got)
	}
	for _, r := range hr.Report.Results {
		want := core.CheckPass
		if r.FindingID == "V-219343" {
			want = core.CheckFail
		}
		if r.After != want {
			t.Errorf("%s = %v, want %v", r.FindingID, r.After, want)
		}
	}

	// The merged verdicts are cached at the post-drift version: an
	// incremental sweep replays them without re-auditing.
	rep, st := coord.Sweep(targets, opts)
	if st.CachedHosts != 1 {
		t.Errorf("re-sweep executed the host; want a cache replay (CachedHosts = %d)", st.CachedHosts)
	}
	if !reflect.DeepEqual(rep.Failing(), []string{"host-00/V-219343"}) {
		t.Errorf("Failing = %v, want [host-00/V-219343]", rep.Failing())
	}
}

func TestApplyDeltaWithoutBaseRunsFully(t *testing.T) {
	targets, _ := LinuxFleet(1)
	coord := NewCoordinator()
	hr := coord.ApplyDelta(targets[0], []string{"V-219343"}, Options{Incremental: true})
	if hr.Stats.Requirements != 8 {
		t.Errorf("cold delta evaluated %d checks, want full 8 (nothing to merge into)", hr.Stats.Requirements)
	}
	if hr.FromCache {
		t.Error("cold delta must execute, not replay")
	}
}

func TestApplyDeltaNilOnlyIsFullAudit(t *testing.T) {
	targets, _ := LinuxFleet(1)
	coord := NewCoordinator()
	hr := coord.ApplyDelta(targets[0], nil, Options{})
	if hr.Stats.Requirements != 8 {
		t.Errorf("nil-only delta evaluated %d checks, want 8", hr.Stats.Requirements)
	}
}

func TestRefreshRestampsStaleVersion(t *testing.T) {
	targets, hosts := LinuxFleet(1)
	coord := NewCoordinator()
	opts := Options{Incremental: true}
	coord.Sweep(targets, opts)

	// A mutation no check reads: version moves, verdicts don't.
	hosts[0].SetConfig("/etc/motd", "banner", "hello")
	_, st := coord.Sweep(targets, opts)
	if st.CachedHosts != 0 {
		t.Fatalf("stale-version sweep replayed cache; want a re-audit")
	}

	hosts[0].SetConfig("/etc/motd", "banner", "bye")
	if !coord.Refresh(targets[0]) {
		t.Fatal("Refresh found no cache entry")
	}
	_, st = coord.Sweep(targets, opts)
	if st.CachedHosts != 1 {
		t.Errorf("post-Refresh sweep re-audited; want a cache replay")
	}

	// Refresh without a cache entry reports false.
	coord.Invalidate(targets[0].Name)
	if coord.Refresh(targets[0]) {
		t.Error("Refresh on missing entry = true")
	}
}

func TestMergeReport(t *testing.T) {
	base := core.Report{Results: []core.Result{
		{FindingID: "V-1", After: core.CheckPass},
		{FindingID: "V-3", After: core.CheckPass},
	}}
	partial := core.Report{Results: []core.Result{
		{FindingID: "V-3", After: core.CheckFail},
		{FindingID: "V-2", After: core.CheckPass},
	}}
	got := mergeReport(base, partial)
	want := []core.Result{
		{FindingID: "V-1", After: core.CheckPass},
		{FindingID: "V-2", After: core.CheckPass},
		{FindingID: "V-3", After: core.CheckFail},
	}
	if !reflect.DeepEqual(got.Results, want) {
		t.Errorf("mergeReport = %+v, want %+v", got.Results, want)
	}
	// Inputs are not mutated, and an empty partial copies the base.
	if base.Results[1].After != core.CheckPass {
		t.Error("mergeReport mutated its base input")
	}
	cp := mergeReport(base, core.Report{})
	if !reflect.DeepEqual(cp.Results, base.Results) {
		t.Errorf("empty-partial merge = %+v", cp.Results)
	}
	cp.Results[0].After = core.CheckError
	if base.Results[0].After == core.CheckError {
		t.Error("empty-partial merge aliases the base")
	}
}
