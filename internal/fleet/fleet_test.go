package fleet

import (
	"math/rand"
	"strings"
	"testing"

	"veridevops/internal/core"
	"veridevops/internal/host"
)

func newRng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func TestAffinityStableAndInRange(t *testing.T) {
	for _, shards := range []int{1, 2, 4, 16} {
		for i := 0; i < 50; i++ {
			name := "host-" + strings.Repeat("x", i%5) + string(rune('a'+i%26))
			s1 := Affinity(name, shards)
			s2 := Affinity(name, shards)
			if s1 != s2 {
				t.Fatalf("affinity unstable for %q", name)
			}
			if s1 < 0 || s1 >= shards {
				t.Fatalf("affinity %d out of range [0,%d)", s1, shards)
			}
		}
	}
}

func TestSweepMatchesPerHostRunEngine(t *testing.T) {
	targets, hosts := LinuxFleet(6)
	host.DriftLinux(hosts[2], 3, newRng(1))
	host.DriftLinux(hosts[5], 3, newRng(2))

	rep, st := Sweep(targets, Options{Shards: 3, Workers: 2})
	if len(rep.Hosts) != 6 {
		t.Fatalf("hosts = %d, want 6", len(rep.Hosts))
	}
	if st.Hosts != 6 || st.Shards != 3 || st.Workers != 2 {
		t.Errorf("stats header = %+v", st)
	}
	// Hosts come back in name order with their own sequential verdicts.
	for i, hr := range rep.Hosts {
		if i > 0 && rep.Hosts[i-1].Target >= hr.Target {
			t.Fatalf("hosts out of order: %s then %s", rep.Hosts[i-1].Target, hr.Target)
		}
		want := targets[i].Catalog.Run(core.CheckOnly)
		if len(want.Results) != len(hr.Report.Results) {
			t.Fatalf("%s: %d results, want %d", hr.Target, len(hr.Report.Results), len(want.Results))
		}
		for j := range want.Results {
			if want.Results[j].FindingID != hr.Report.Results[j].FindingID ||
				want.Results[j].After != hr.Report.Results[j].After {
				t.Errorf("%s result %d diverges from sequential run", hr.Target, j)
			}
		}
	}
	if rep.Compliance() >= 1 {
		t.Error("drifted fleet cannot be fully compliant")
	}
}

func TestSweepEmptyFleet(t *testing.T) {
	rep, st := Sweep(nil, Options{Shards: 4, Workers: 4})
	if len(rep.Hosts) != 0 || st.Hosts != 0 {
		t.Errorf("empty fleet produced output: %+v %+v", rep, st)
	}
	if rep.Compliance() != 1 {
		t.Error("empty fleet should be fully compliant")
	}
}

func TestSweepShardsClampedToTargets(t *testing.T) {
	targets, _ := LinuxFleet(2)
	_, st := Sweep(targets, Options{Shards: 64, Workers: 0})
	if st.Shards != 2 {
		t.Errorf("shards = %d, want clamp to 2", st.Shards)
	}
	if st.Workers != 1 {
		t.Errorf("workers = %d, want floor 1", st.Workers)
	}
}

func TestUnreachableHostDegradesWithoutStallingFleet(t *testing.T) {
	targets, hosts := LinuxFleet(4)
	hosts[1].SetUnreachable(true)

	rep, st := Sweep(targets, Options{Shards: 2, Workers: 2})
	var down, up int
	for _, hr := range rep.Hosts {
		if hr.Target == "host-01" {
			if !hr.Degraded {
				t.Error("unreachable host not marked degraded")
			}
			for _, r := range hr.Report.Results {
				if r.After != core.CheckError {
					t.Errorf("unreachable host verdict %s = %s, want ERROR", r.FindingID, r.After)
				}
			}
			down++
			continue
		}
		up++
		if hr.Degraded {
			t.Errorf("%s wrongly degraded", hr.Target)
		}
		for _, r := range hr.Report.Results {
			if r.After != core.CheckPass {
				t.Errorf("healthy host %s verdict %s = %s, want PASS", hr.Target, r.FindingID, r.After)
			}
		}
	}
	if down != 1 || up != 3 {
		t.Fatalf("down=%d up=%d", down, up)
	}
	if st.DegradedHosts != 1 {
		t.Errorf("DegradedHosts = %d, want 1", st.DegradedHosts)
	}
	if st.Panics == 0 {
		t.Error("unreachable probes must surface as recovered panics")
	}
}

func TestIncrementalSweepReusesUnchangedHosts(t *testing.T) {
	targets, hosts := LinuxFleet(8)
	coord := NewCoordinator()

	// Full sweep primes the cache.
	_, st1 := coord.Sweep(targets, Options{Shards: 4, Workers: 2})
	if st1.CachedHosts != 0 || st1.CacheHits != 0 {
		t.Fatalf("full sweep must not report cache traffic: %+v", st1)
	}
	if coord.CachedHosts() != 8 {
		t.Fatalf("cache primed with %d hosts, want 8", coord.CachedHosts())
	}

	// Drift one host; incremental re-sweep re-runs only that host.
	host.DriftLinux(hosts[3], 3, newRng(3))
	rep2, st2 := coord.Sweep(targets, Options{Shards: 4, Workers: 2, Incremental: true})
	if st2.CachedHosts != 7 {
		t.Errorf("CachedHosts = %d, want 7", st2.CachedHosts)
	}
	if st2.CacheMisses != len(targets[3].Catalog.IDs()) {
		t.Errorf("CacheMisses = %d, want one catalogue's worth", st2.CacheMisses)
	}
	if rate := st2.CacheHitRate(); rate < 0.85 {
		t.Errorf("cache hit rate = %v, want 7/8", rate)
	}
	// The changed host's fresh verdicts must reflect the drift.
	for _, hr := range rep2.Hosts {
		if hr.Target == "host-03" {
			if hr.FromCache {
				t.Error("drifted host must not be served from cache")
			}
			if _, fail, _ := hr.Report.Counts(); fail == 0 {
				t.Error("drifted host should have failing verdicts")
			}
		} else if !hr.FromCache {
			t.Errorf("%s re-ran despite unchanged state", hr.Target)
		}
	}

	// A third sweep with nothing changed is all cache.
	_, st3 := coord.Sweep(targets, Options{Shards: 4, Workers: 2, Incremental: true})
	if st3.CachedHosts != 8 || st3.CacheMisses != 0 {
		t.Errorf("steady-state sweep = %+v, want all-cached", st3)
	}
	if st3.Attempts != 0 {
		t.Errorf("steady-state sweep executed %d attempts, want 0", st3.Attempts)
	}
}

func TestIncrementalFallsBackOnCacheMiss(t *testing.T) {
	targets, _ := LinuxFleet(3)
	coord := NewCoordinator()
	// First sweep straight in incremental mode: cold cache, full run.
	_, st := coord.Sweep(targets, Options{Shards: 2, Workers: 1, Incremental: true})
	if st.CachedHosts != 0 {
		t.Errorf("cold incremental sweep served %d hosts from cache", st.CachedHosts)
	}
	if st.CacheMisses == 0 {
		t.Error("cold incremental sweep must account its misses")
	}
	// Invalidate one host; only it re-runs next time.
	coord.Invalidate("host-01")
	_, st2 := coord.Sweep(targets, Options{Shards: 2, Workers: 1, Incremental: true})
	if st2.CachedHosts != 2 {
		t.Errorf("CachedHosts after Invalidate = %d, want 2", st2.CachedHosts)
	}
	coord.InvalidateAll()
	if coord.CachedHosts() != 0 {
		t.Error("InvalidateAll left entries behind")
	}
}

func TestOutageAdvancesVersionAndInvalidatesCache(t *testing.T) {
	targets, hosts := LinuxFleet(2)
	coord := NewCoordinator()
	coord.Sweep(targets, Options{Shards: 1, Workers: 1})

	// The net.down log entry advances the version, so the incremental
	// sweep re-audits the host and degrades it instead of serving the
	// stale all-PASS report.
	hosts[0].SetUnreachable(true)
	rep, st := coord.Sweep(targets, Options{Shards: 1, Workers: 1, Incremental: true})
	if st.CachedHosts != 1 {
		t.Errorf("CachedHosts = %d, want 1 (only the healthy host)", st.CachedHosts)
	}
	if !rep.Hosts[0].Degraded {
		t.Error("downed host served stale cached verdicts")
	}
}

func TestTargetWithoutVersionAlwaysRuns(t *testing.T) {
	targets, _ := LinuxFleet(2)
	targets[1].Version = nil
	coord := NewCoordinator()
	coord.Sweep(targets, Options{Shards: 1, Workers: 1})
	_, st := coord.Sweep(targets, Options{Shards: 1, Workers: 1, Incremental: true})
	if st.CachedHosts != 1 {
		t.Errorf("CachedHosts = %d, want 1: unversioned targets are uncacheable", st.CachedHosts)
	}
}

func TestFleetReportFailingAndTables(t *testing.T) {
	targets, hosts := LinuxFleet(2)
	hosts[1].Install("nis", "0.legacy")
	rep, st := Sweep(targets, Options{Shards: 2, Workers: 1})
	failing := rep.Failing()
	if len(failing) != 1 || !strings.HasPrefix(failing[0], "host-01/") {
		t.Errorf("Failing = %v", failing)
	}
	for _, s := range []string{st.Summary(), st.ShardTable("shards").String(), st.HostTable("hosts").String()} {
		if !strings.Contains(s, "host") && !strings.Contains(s, "shard") {
			t.Errorf("rendering looks empty: %q", s)
		}
	}
}
