package fleet

import (
	"sort"

	"veridevops/internal/core"
)

// DepIndex is the reverse dependency index of one catalogue: host-state
// key (host.StateKey canonical form, "pkg:nis") → the finding IDs of the
// checks that read that slot (core.KeyReader). It is what turns a host
// event delta into the exact set of checks to re-run — O(changed keys)
// instead of O(requirements) — for the push-based streaming evaluator.
//
// Requirements that declare no keys are collected as unindexed: the
// index cannot localise their reads, so Affected conservatively includes
// them in every delta (and the daemon's fallback sweep re-covers them
// periodically regardless).
//
// A DepIndex is immutable after construction and safe for concurrent
// reads.
type DepIndex struct {
	byKey     map[string][]string
	indexed   []string
	unindexed []string
	findings  int
}

// BuildDepIndex builds the index of a catalogue. Construction iterates
// Catalog.All, which returns entries in finding-ID order, and every
// slice the index holds is sorted — so two indexes built from equal
// catalogues are deeply equal regardless of registration or
// map-iteration order.
func BuildDepIndex(c *core.Catalog) *DepIndex {
	x := &DepIndex{byKey: map[string][]string{}}
	if c == nil {
		return x
	}
	for _, req := range c.All() {
		x.findings++
		keys, ok := core.CheckKeys(req)
		if !ok {
			x.unindexed = append(x.unindexed, req.FindingID())
			continue
		}
		x.indexed = append(x.indexed, req.FindingID())
		for _, k := range keys {
			x.byKey[k] = append(x.byKey[k], req.FindingID())
		}
	}
	// All() is ID-sorted, so appends already are too — but a requirement
	// may declare duplicate keys; dedup each posting list defensively.
	for k, ids := range x.byKey {
		x.byKey[k] = dedupSorted(ids)
	}
	return x
}

// dedupSorted removes adjacent duplicates from an already-sorted list.
func dedupSorted(ids []string) []string {
	out := ids[:0]
	for _, id := range ids {
		if len(out) == 0 || out[len(out)-1] != id {
			out = append(out, id)
		}
	}
	return out
}

// Lookup returns the finding IDs reading exactly this key (unindexed
// findings excluded), sorted. The returned slice is shared; callers must
// not mutate it.
func (x *DepIndex) Lookup(key string) []string { return x.byKey[key] }

// Affected maps a set of changed state keys to the sorted, deduplicated
// finding IDs that must be re-checked: every check reading one of the
// keys, plus every unindexed check (their reads are unknown, so any
// change might concern them). Keys no check reads contribute nothing —
// Affected of an irrelevant change on a fully-indexed catalogue is
// empty.
func (x *DepIndex) Affected(keys []string) []string {
	var out []string
	out = append(out, x.unindexed...)
	for _, k := range keys {
		out = append(out, x.byKey[k]...)
	}
	if len(out) == 0 {
		return nil
	}
	sort.Strings(out)
	return dedupSorted(out)
}

// Unindexed returns the finding IDs that declare no state keys, sorted.
// The returned slice is shared; callers must not mutate it.
func (x *DepIndex) Unindexed() []string { return x.unindexed }

// Indexed returns the finding IDs that declare at least one key, sorted.
// The returned slice is shared; callers must not mutate it.
func (x *DepIndex) Indexed() []string { return x.indexed }

// Keys reports how many distinct state keys the index covers.
func (x *DepIndex) Keys() int { return len(x.byKey) }

// Findings reports how many catalogue entries the index was built from.
func (x *DepIndex) Findings() int { return x.findings }
