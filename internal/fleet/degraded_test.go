package fleet

import (
	"testing"
	"time"

	"veridevops/internal/core"
	"veridevops/internal/engine"
)

// TestDegradedHostCountedOnCacheReplay is the regression test for the
// FleetStats roll-up undercount: a host whose cached report is degraded
// (primed while unreachable) must still count in DegradedHosts when a
// later incremental sweep replays it from cache, so Summary() agrees
// with the HostTable rows showing Degraded=true.
func TestDegradedHostCountedOnCacheReplay(t *testing.T) {
	targets, hosts := LinuxFleet(4)
	hosts[1].SetUnreachable(true)

	coord := NewCoordinator()
	_, st1 := coord.Sweep(targets, Options{Shards: 2, Workers: 2})
	if st1.DegradedHosts != 1 {
		t.Fatalf("full sweep DegradedHosts = %d, want 1", st1.DegradedHosts)
	}

	// Nothing changed since the full sweep, so every host replays from
	// cache — including the degraded one, which must stay counted.
	rep, st2 := coord.Sweep(targets, Options{Shards: 2, Workers: 2, Incremental: true})
	if st2.CachedHosts != 4 {
		t.Fatalf("CachedHosts = %d, want 4 (all replayed)", st2.CachedHosts)
	}
	if st2.DegradedHosts != 1 {
		t.Errorf("cached re-sweep DegradedHosts = %d, want 1", st2.DegradedHosts)
	}
	var degradedRows int
	for _, h := range st2.PerHost {
		if h.Degraded {
			degradedRows++
			if !h.FromCache {
				t.Errorf("host %s degraded but not from cache on an unchanged re-sweep", h.Target)
			}
		}
	}
	if degradedRows != st2.DegradedHosts {
		t.Errorf("Summary says %d degraded hosts, HostTable rows say %d",
			st2.DegradedHosts, degradedRows)
	}
	for _, hr := range rep.Hosts {
		if hr.Target == "host-01" && (!hr.FromCache || !hr.Degraded) {
			t.Errorf("host-01 result = cached %v degraded %v, want true/true",
				hr.FromCache, hr.Degraded)
		}
	}
}

// TestAggregateCountsDegradedCachedHost pins the aggregate() fix at the
// unit level: a cache-replayed degraded result must reach DegradedHosts.
func TestAggregateCountsDegradedCachedHost(t *testing.T) {
	results := []HostResult{
		{Target: "a", FromCache: true, Degraded: true},
		{Target: "b", Degraded: true},
		{Target: "c"},
	}
	st := aggregate(results, []time.Duration{0}, engine.PoolStats{},
		Options{Shards: 1, Workers: 1, Incremental: true}.normalized(len(results)))
	if st.DegradedHosts != 2 {
		t.Errorf("DegradedHosts = %d, want 2 (one executed, one cached)", st.DegradedHosts)
	}
	if st.CachedHosts != 1 {
		t.Errorf("CachedHosts = %d, want 1", st.CachedHosts)
	}
}

// TestDegradedReportShape pins the replay-time recomputation helper.
func TestDegradedReportShape(t *testing.T) {
	if degradedReport(core.Report{}) {
		t.Error("empty report must not read as degraded")
	}
	allErr := core.Report{Results: []core.Result{
		{FindingID: "V-1", After: core.CheckError},
		{FindingID: "V-2", After: core.CheckError},
	}}
	if !degradedReport(allErr) {
		t.Error("all-ERROR report must read as degraded")
	}
	mixed := core.Report{Results: []core.Result{
		{FindingID: "V-1", After: core.CheckError},
		{FindingID: "V-2", After: core.CheckPass},
	}}
	if degradedReport(mixed) {
		t.Error("partially healthy report must not read as degraded")
	}
}
