package fleet

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
	"time"

	"veridevops/internal/core"
	"veridevops/internal/engine"
	"veridevops/internal/telemetry"
)

// TestSweepSpanTreeCoversAllLevels runs a traced sweep and checks the
// exported span forest covers every level — sweep, shard, host, check,
// attempt — with per-level counts matching the fleet shape. Run under
// -race (make trace-race) this also exercises concurrent span emission
// from shard goroutines.
func TestSweepSpanTreeCoversAllLevels(t *testing.T) {
	const nHosts = 4
	targets, _ := LinuxFleet(nHosts)
	var buf bytes.Buffer
	tr := telemetry.New(&buf)
	m := telemetry.NewMetrics()

	rep, st := Sweep(targets, Options{Shards: 2, Workers: 2, Trace: tr, Metrics: m})
	if err := tr.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	if len(rep.Hosts) != nHosts {
		t.Fatalf("hosts = %d", len(rep.Hosts))
	}

	recs, err := telemetry.ReadJSONL(&buf)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	roots := telemetry.BuildTree(recs)
	if len(roots) != 1 || roots[0].Name != "sweep" {
		t.Fatalf("roots = %+v, want one sweep span", roots)
	}

	counts := map[string]int{}
	hosts := map[string]bool{}
	roots[0].Walk(func(n *telemetry.Node) {
		counts[n.Name]++
		if n.Name == "host" {
			hosts[n.Tags["host"]] = true
		}
	})
	if counts["shard"] < 1 || counts["shard"] > 2 {
		t.Errorf("shard spans = %d, want 1..2", counts["shard"])
	}
	if counts["host"] != nHosts {
		t.Errorf("host spans = %d, want %d", counts["host"], nHosts)
	}
	if len(hosts) != nHosts {
		t.Errorf("distinct host tags = %d, want %d", len(hosts), nHosts)
	}
	if counts["check"] != st.Requirements {
		t.Errorf("check spans = %d, want %d requirements", counts["check"], st.Requirements)
	}
	if counts["attempt"] != st.Attempts {
		t.Errorf("attempt spans = %d, want %d attempts", counts["attempt"], st.Attempts)
	}

	if got := m.Counter("fleet.hosts"); got != nHosts {
		t.Errorf("fleet.hosts = %d, want %d", got, nHosts)
	}
	if h := m.Histogram("fleet.host_wall"); h.Count != nHosts {
		t.Errorf("fleet.host_wall count = %d, want %d", h.Count, nHosts)
	}
}

// TestSweepTracedMatchesUntracedVerdicts: tracing must observe, never
// perturb — same fleet, same verdicts with and without a tracer.
func TestSweepTracedMatchesUntracedVerdicts(t *testing.T) {
	plain, _ := LinuxFleet(4)
	traced, _ := LinuxFleet(4)
	repPlain, _ := Sweep(plain, Options{Shards: 2, Workers: 2})
	tr := telemetry.New(nil)
	repTraced, _ := Sweep(traced, Options{Shards: 2, Workers: 2, Trace: tr, Metrics: telemetry.NewMetrics()})
	p1, f1, i1 := repPlain.Counts()
	p2, f2, i2 := repTraced.Counts()
	if p1 != p2 || f1 != f2 || i1 != i2 {
		t.Errorf("verdicts diverge: untraced %d/%d/%d, traced %d/%d/%d", p1, f1, i1, p2, f2, i2)
	}
}

// TestFullyCachedSweepFiniteStats is the LoadImbalance NaN regression: a
// 100%-cache-hit incremental re-sweep (no host re-executed) must report
// finite ratios everywhere, render cleanly, and stay valid JSON.
func TestFullyCachedSweepFiniteStats(t *testing.T) {
	const nHosts = 8
	targets, _ := LinuxFleet(nHosts)
	coord := NewCoordinator()
	coord.Sweep(targets, Options{Shards: 4, Workers: 2})

	// Nothing drifted: every host replays from the cache.
	rep, st := coord.Sweep(targets, Options{Shards: 4, Workers: 2, Incremental: true, Trace: telemetry.New(nil)})
	for _, h := range rep.Hosts {
		if !h.FromCache {
			t.Fatalf("host %s not cached — the sweep is not the regression shape", h.Target)
		}
	}
	if st.CachedHosts != nHosts || st.CacheHitRate() != 1 {
		t.Fatalf("cached = %d, hit rate = %v", st.CachedHosts, st.CacheHitRate())
	}
	for name, v := range map[string]float64{
		"LoadImbalance": st.LoadImbalance,
		"Utilization":   st.Utilization(),
		"CacheHitRate":  st.CacheHitRate(),
		"DedupRate":     st.DedupRate(),
	} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Errorf("%s = %v, want finite", name, v)
		}
	}
	if strings.Contains(st.Summary(), "NaN") {
		t.Errorf("summary contains NaN: %s", st.Summary())
	}
	b, err := json.Marshal(st.ShardTable("cached sweep"))
	if err != nil {
		t.Fatalf("stats table does not JSON-encode: %v", err)
	}
	if !json.Valid(b) {
		t.Error("encoded stats table is invalid JSON")
	}
}

// TestAggregateZeroWallShards hits the zero-denominator directly: every
// host replayed and every shard wall zero (the pathological form the
// LoadImbalance guard exists for) must define the ratio as 0, not NaN.
func TestAggregateZeroWallShards(t *testing.T) {
	results := []HostResult{
		{Target: "host-00", Shard: 0, FromCache: true},
		{Target: "host-01", Shard: 1, FromCache: true},
	}
	st := aggregate(results, []time.Duration{0, 0}, engine.PoolStats{Workers: 2}, Options{
		Shards: 2, Workers: 1, Incremental: true, Mode: core.CheckOnly,
	})
	if st.ActiveShards != 2 {
		t.Fatalf("active shards = %d, want 2", st.ActiveShards)
	}
	if math.IsNaN(st.LoadImbalance) || math.IsInf(st.LoadImbalance, 0) {
		t.Fatalf("LoadImbalance = %v, want finite", st.LoadImbalance)
	}
	if st.LoadImbalance != 0 {
		t.Errorf("LoadImbalance = %v, want 0 when no shard did measurable work", st.LoadImbalance)
	}
	if u := st.Utilization(); math.IsNaN(u) || math.IsInf(u, 0) {
		t.Errorf("Utilization = %v, want finite", u)
	}
}

// TestTracedIncrementalAndDedupSweep exercises the cache-replay and
// dedup-hit span shapes: cached hosts carry cached=true and no check
// children; deduped checks carry dedup_hit with no attempt children.
func TestTracedIncrementalAndDedupSweep(t *testing.T) {
	targets, _ := LinuxFleet(4)
	coord := NewCoordinator()
	coord.Sweep(targets, Options{Shards: 2, Workers: 2})

	var buf bytes.Buffer
	tr := telemetry.New(&buf)
	_, st := coord.Sweep(targets, Options{Shards: 2, Workers: 2, Incremental: true, Trace: tr})
	tr.Flush()
	recs, err := telemetry.ReadJSONL(&buf)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	roots := telemetry.BuildTree(recs)
	cachedHosts := 0
	roots[0].Walk(func(n *telemetry.Node) {
		if n.Name == "host" && n.Tags["cached"] == "true" {
			cachedHosts++
			if len(n.Children) != 0 {
				t.Errorf("cached host %s has %d children, want none", n.Tags["host"], len(n.Children))
			}
		}
	})
	if cachedHosts != st.CachedHosts {
		t.Errorf("cached host spans = %d, want %d", cachedHosts, st.CachedHosts)
	}

	// Dedup sweep: replayed checks are tagged and attempt-free.
	ddTargets, _ := LinuxFleet(4)
	var ddBuf bytes.Buffer
	ddTr := telemetry.New(&ddBuf)
	_, ddSt := Sweep(ddTargets, Options{Shards: 2, Workers: 2, Dedup: true, Trace: ddTr})
	ddTr.Flush()
	ddRecs, err := telemetry.ReadJSONL(&ddBuf)
	if err != nil {
		t.Fatalf("read dedup trace: %v", err)
	}
	hits := 0
	for _, root := range telemetry.BuildTree(ddRecs) {
		root.Walk(func(n *telemetry.Node) {
			if n.Name == "check" && n.Tags["dedup_hit"] == "true" {
				hits++
				if len(n.Children) != 0 {
					t.Errorf("dedup-hit check %s has attempt children", n.Tags["finding"])
				}
			}
		})
	}
	if hits != ddSt.DedupHits {
		t.Errorf("dedup-hit spans = %d, want %d", hits, ddSt.DedupHits)
	}
}
