package fleet

import (
	"strings"
	"testing"

	"veridevops/internal/core"
	"veridevops/internal/host"
	"veridevops/internal/stig"
)

// mixedCatalog holds 8 indexed stig checks plus one unindexed plainReq.
func mixedCatalog(h *host.Linux) *core.Catalog {
	cat := stig.UbuntuCatalog(h)
	cat.MustRegister(&plainReq{
		Finding:     core.Finding{ID: "V-000009", Sev: "low", Desc: "undeclared probe"},
		CheckFunc:   func() core.CheckStatus { return core.CheckPass },
		EnforceFunc: func() core.EnforcementStatus { return core.EnforceSuccess },
	})
	return cat
}

func TestSweepReadLocalizationCounts(t *testing.T) {
	h1, h2 := host.NewUbuntu1804(), host.NewUbuntu1804()
	shared := mixedCatalog(h1)
	targets := []Target{
		// Two targets share one catalogue: counted once per host.
		{Name: "a", Catalog: shared},
		{Name: "b", Catalog: shared},
		{Name: "c", Catalog: stig.UbuntuCatalog(h2)},
		{Name: "nil-cat"},
	}
	_, st := Sweep(targets, Options{Shards: 2, Workers: 1})
	if st.IndexedChecks != 2*8+8 || st.UnindexedChecks != 2 {
		t.Fatalf("indexed/unindexed = %d/%d, want 24/2", st.IndexedChecks, st.UnindexedChecks)
	}
	want := float64(24) / 26
	if got := st.ReadLocalization(); got != want {
		t.Fatalf("ReadLocalization = %v, want %v", got, want)
	}
	if !strings.Contains(st.Summary(), "read localization") {
		t.Fatalf("Summary misses localization: %s", st.Summary())
	}
	// Deterministic: Canonical keeps the localization counters.
	c := st.Canonical()
	if c.IndexedChecks != st.IndexedChecks || c.UnindexedChecks != st.UnindexedChecks {
		t.Fatalf("Canonical dropped localization counters: %+v", c)
	}
}

func TestStreamerStatsReadLocalizationGauges(t *testing.T) {
	h := host.NewUbuntu1804()
	s := NewStreamer(NewCoordinator(), StreamOptions{Shards: 1, Workers: 1})
	s.Watch(Target{Name: "h0", Catalog: mixedCatalog(h), Version: h.Log().Version}, h.Log())
	st := s.Stats()
	if st.IndexedChecks != 8 || st.UnindexedChecks != 1 {
		t.Fatalf("indexed/unindexed = %d/%d, want 8/1", st.IndexedChecks, st.UnindexedChecks)
	}
	if got, want := st.ReadLocalization(), float64(8)/9; got != want {
		t.Fatalf("ReadLocalization = %v, want %v", got, want)
	}
	// Gauge semantics: unwatching removes the host's checks from the view.
	s.Unwatch("h0")
	if st := s.Stats(); st.IndexedChecks != 0 || st.UnindexedChecks != 0 {
		t.Fatalf("after Unwatch indexed/unindexed = %d/%d, want 0/0", st.IndexedChecks, st.UnindexedChecks)
	}
	if (StreamStats{}).ReadLocalization() != 0 {
		t.Fatal("empty ReadLocalization should be 0")
	}
}
