package fleet

import (
	"sort"
	"time"

	"veridevops/internal/core"
	"veridevops/internal/telemetry"
)

// Delta evaluation: the subset path of push-based incremental
// evaluation. Where Sweep re-audits whole hosts whose version moved,
// ApplyDelta re-runs only the checks a host-state change affects
// (per DepIndex) and merges the fresh verdicts into the host's cached
// report, so the cache — and everything reading it, fallback sweeps
// included — stays coherent between full audits.

// ApplyDelta audits the named subset of a target's catalogue (only) and
// merges the verdicts into the target's cached report, which it returns.
// only == nil runs the whole catalogue (the path for unkeyed events,
// connectivity flips and never-audited hosts); a subset call without a
// cached base report also falls back to a full run, because there is
// nothing sound to merge into. The merged report is cached at the
// host's pre-run state version, exactly like Sweep's auditOne, so a
// mutation racing the delta forces a re-audit rather than being lost.
func (c *Coordinator) ApplyDelta(t Target, only []string, opts Options) HostResult {
	opts = opts.normalized(1)
	var memo *core.CheckMemo
	if opts.Dedup && opts.Mode == core.CheckOnly {
		memo = core.NewCheckMemo()
	}
	var span *telemetry.Span
	if opts.Trace != nil {
		span = opts.Trace.Root("delta").Tag("host", t.Name)
		defer span.End()
	}
	return c.applyDelta(t, only, 0, opts, memo, span)
}

// applyDelta is ApplyDelta with the caller-owned memo and span threaded
// through — the form the Streamer uses so one flush shares a single
// dedup memo and span tree across all its dirty hosts.
func (c *Coordinator) applyDelta(t Target, only []string, shard int, opts Options, memo *core.CheckMemo, span *telemetry.Span) HostResult {
	if only == nil {
		return c.auditOne(t, shard, opts, memo, span)
	}
	base, ok := c.lookup(t.Name)
	if !ok {
		return c.auditOne(t, shard, opts, memo, span)
	}
	hr := HostResult{Target: t.Name, Shard: shard}
	if t.Catalog == nil {
		return hr
	}
	var version uint64
	if t.Version != nil {
		version = t.Version()
	}
	t0 := time.Now()
	partial, st := t.Catalog.RunEngine(core.RunOptions{
		Mode:    opts.Mode,
		Workers: opts.Workers,
		Checks:  opts.Checks,
		Memo:    memo,
		Span:    span,
		Metrics: opts.Metrics,
		Only:    only,
	})
	c.recordCost(t.Name, time.Since(t0))
	hr.Report = mergeReport(base.report, partial)
	hr.Stats = st
	hr.Degraded = degradedReport(hr.Report)
	if t.Version != nil {
		c.store(t.Name, version, hr.Report)
	}
	return hr
}

// Refresh re-stamps a target's cached report at the host's current state
// version, reporting whether a cached report existed. It is the
// zero-check delta path: when every event in a host's delta maps to no
// checks at all (a config key nothing reads), the verdicts cannot have
// changed, but the version-keyed cache entry has gone stale — without
// the re-stamp the next fallback sweep would needlessly re-audit the
// whole host.
func (c *Coordinator) Refresh(t Target) bool {
	if t.Version == nil {
		return false
	}
	version := t.Version()
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.cache[t.Name]
	if !ok {
		return false
	}
	e.version = version
	c.cache[t.Name] = e
	return true
}

// mergeReport overlays the verdicts of a subset run onto a full base
// report: results present in partial replace the base entry of the same
// finding, new findings are inserted, and the merged report keeps
// finding-ID order. Neither input is mutated.
func mergeReport(base, partial core.Report) core.Report {
	if len(partial.Results) == 0 {
		out := core.Report{Results: make([]core.Result, len(base.Results))}
		copy(out.Results, base.Results)
		return out
	}
	byID := make(map[string]core.Result, len(partial.Results))
	for _, r := range partial.Results {
		byID[r.FindingID] = r
	}
	out := core.Report{Results: make([]core.Result, 0, len(base.Results)+len(partial.Results))}
	for _, r := range base.Results {
		if fresh, ok := byID[r.FindingID]; ok {
			out.Results = append(out.Results, fresh)
			delete(byID, r.FindingID)
			continue
		}
		out.Results = append(out.Results, r)
	}
	if len(byID) > 0 {
		for _, r := range byID {
			out.Results = append(out.Results, r)
		}
		sort.Slice(out.Results, func(i, j int) bool {
			return out.Results[i].FindingID < out.Results[j].FindingID
		})
	}
	return out
}
