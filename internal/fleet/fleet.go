// Package fleet is the operations-scale layer of the VeriDevOps
// reproduction: a coordinator that audits N hosts × M requirements across
// a two-level worker pool — shard goroutines pulling hosts from a dynamic
// scheduler, and engine.Map workers inside each host's catalogue run.
//
// Scheduling is work-stealing with affinity as the tiebreak. Each shard's
// queue is seeded with its affinity hosts (a stable FNV-1a hash of the
// host name) ordered most-expensive-first, using the per-host audit costs
// the coordinator observed on earlier sweeps (LPT); a shard whose queue
// drains steals the most expensive remaining host from the most loaded
// shard instead of idling. On a balanced fleet every host runs on its
// home shard — transport state and caches stay shard-local, exactly the
// old static placement — while a skewed fleet (one slow host, uneven
// buckets) converges towards equal shard walls instead of being paced by
// the unluckiest bucket. ScheduleStatic restores the pure-affinity
// behaviour for comparison.
//
// Cross-host check dedup (Options.Dedup) exploits fleet homogeneity: on
// audit-only sweeps, requirements that fingerprint their read state
// (core.CheckFingerprint) execute once per distinct (finding, state)
// pair per sweep and replay the verdict to every identical co-tenant,
// through one single-flight core.CheckMemo shared by all shards.
//
// A Coordinator carries an incremental-audit cache between sweeps, keyed
// on each host's monotonic state version (host.EventLog.Version): a
// re-sweep re-runs only hosts whose state advanced since the last pass and
// replays the cached report for the rest, so steady-state fleet sweeps are
// dominated by changed hosts only. Any cache miss falls back to a full
// run of that host. SaveCache/LoadCache persist the cache (and the
// observed cost table) across coordinator restarts; a corrupt or
// unrecognised cache file degrades to a cold start.
//
// Unreachable hosts (host.Linux.SetUnreachable) degrade instead of
// stalling the fleet: their probes panic, the fault-tolerant engine
// recovers each panic into an ERROR verdict, and the remaining shards
// proceed untouched.
package fleet

import (
	"hash/fnv"
	"sort"
	"sync"
	"time"

	"veridevops/internal/core"
	"veridevops/internal/engine"
	"veridevops/internal/telemetry"
)

// Target is one audited host: a name, its requirement catalogue, and an
// optional state-version probe for incremental sweeps.
type Target struct {
	// Name identifies the host; it is the cache key and the affinity key,
	// so it must be unique and stable across sweeps.
	Name string
	// Catalog is the host's requirement catalogue.
	Catalog *core.Catalog
	// Version reports the host's monotonic state version (typically the
	// host event log's Version method). nil disables incremental caching
	// for this target: every sweep re-audits it.
	Version func() uint64
}

// Options configures one fleet sweep.
type Options struct {
	// Mode selects audit-only or audit-and-remediate.
	Mode core.RunMode
	// Shards is the host-level parallelism: how many shard goroutines run
	// catalogues concurrently. Clamped to [1, number of targets].
	Shards int
	// Workers is the engine.Map pool size inside each host's catalogue
	// run; values <= 1 run a host's checks sequentially.
	Workers int
	// Checks is the per-check resilience policy (see core.RunOptions).
	Checks engine.Policy
	// Incremental reuses cached per-host reports for targets whose state
	// version is unchanged since the coordinator last audited them.
	Incremental bool
	// Scheduling selects host placement; the zero value is
	// ScheduleWorkStealing (see the package comment).
	Scheduling Scheduling
	// Dedup enables cross-host check dedup on audit-only sweeps: checks
	// with equal fingerprints execute once per sweep and replay
	// everywhere else. Ignored in CheckAndEnforce mode — enforcement
	// mutates per-host state and is never deduped.
	Dedup bool
	// Trace, when non-nil, records the sweep as a span tree: one "sweep"
	// root, a "shard" span per active shard goroutine, a "host" span per
	// target (tagged host, stolen, cached, degraded) and the catalogue
	// runner's "check"/"attempt"/"enforce" spans below. Nil — telemetry
	// disabled — adds zero allocations to the sweep.
	Trace *telemetry.Tracer
	// Metrics, when non-nil, accumulates sweep counters (fleet.hosts,
	// fleet.cache.replays, fleet.steals, ...), gauges (fleet.utilization,
	// fleet.load_imbalance) and duration histograms (fleet.host_wall,
	// fleet.shard_wall, fleet.queue_wait, fleet.sweep_wall), alongside
	// the catalogue runner's engine.* metrics.
	Metrics *telemetry.Metrics
}

func (o Options) normalized(targets int) Options {
	if o.Shards < 1 {
		o.Shards = 1
	}
	if targets > 0 && o.Shards > targets {
		o.Shards = targets
	}
	if o.Workers < 1 {
		o.Workers = 1
	}
	return o
}

// HostResult is the outcome of auditing one target.
type HostResult struct {
	Target string
	// Shard is the shard the target's work ran on: its affinity home
	// unless the host was stolen by an idle shard.
	Shard int
	// Stolen marks a host executed away from its affinity home by the
	// work-stealing scheduler.
	Stolen bool
	// FromCache marks a result replayed from the incremental cache; its
	// Stats are zero because nothing executed.
	FromCache bool
	// Degraded marks a host whose every check ended in ERROR — the
	// unreachable-host shape.
	Degraded bool
	Report   core.Report
	Stats    core.RunStats
}

// FleetReport aggregates the per-host reports of one sweep, ordered by
// target name.
type FleetReport struct {
	Hosts []HostResult
}

// Counts sums the final-status buckets over every host.
func (r FleetReport) Counts() (pass, fail, incomplete int) {
	for _, h := range r.Hosts {
		p, f, i := h.Report.Counts()
		pass, fail, incomplete = pass+p, fail+f, incomplete+i
	}
	return
}

// Compliance is the fraction of all requirements across the fleet whose
// final status is PASS; an empty fleet is fully compliant.
func (r FleetReport) Compliance() float64 {
	pass, fail, inc := r.Counts()
	total := pass + fail + inc
	if total == 0 {
		return 1
	}
	return float64(pass) / float64(total)
}

// Failing returns "host/finding" identifiers for every requirement whose
// final status is not PASS.
func (r FleetReport) Failing() []string {
	var out []string
	for _, h := range r.Hosts {
		for _, id := range h.Report.Failing() {
			out = append(out, h.Target+"/"+id)
		}
	}
	return out
}

// cacheEntry is one host's memoised audit outcome.
type cacheEntry struct {
	// version is the host state version observed immediately before the
	// cached run. Capturing the pre-run version is conservative: any
	// mutation during or after the run (drift, enforcement, an outage
	// flip) advances the live version past it and forces a re-audit.
	version uint64
	report  core.Report
}

// Coordinator shards fleet sweeps and carries the incremental cache
// between them. The zero value is not usable; call NewCoordinator. A
// Coordinator is safe for concurrent use by its own shard workers, but
// Sweep calls themselves must not overlap.
type Coordinator struct {
	mu    sync.Mutex
	cache map[string]cacheEntry
	// costs is the observed per-host audit wall of the most recent
	// executed (non-cached) run, the LPT estimate the scheduler orders
	// queues by. Hosts never audited cost 0 (the scheduler substitutes
	// the fleet mean).
	costs map[string]time.Duration
}

// NewCoordinator returns a coordinator with an empty cache.
func NewCoordinator() *Coordinator {
	return &Coordinator{
		cache: make(map[string]cacheEntry),
		costs: make(map[string]time.Duration),
	}
}

// Invalidate drops one host's cached report, forcing its next incremental
// audit to run fully.
func (c *Coordinator) Invalidate(name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.cache, name)
}

// InvalidateAll drops the whole cache.
func (c *Coordinator) InvalidateAll() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.cache = make(map[string]cacheEntry)
}

// CachedHosts reports how many hosts currently have a cached report.
func (c *Coordinator) CachedHosts() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.cache)
}

func (c *Coordinator) lookup(name string) (cacheEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.cache[name]
	return e, ok
}

func (c *Coordinator) store(name string, version uint64, rep core.Report) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.cache[name] = cacheEntry{version: version, report: rep}
}

// snapshotCosts returns the observed audit cost of each target, indexed
// like ts; 0 for hosts never executed.
func (c *Coordinator) snapshotCosts(ts []Target) []time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]time.Duration, len(ts))
	for i, t := range ts {
		out[i] = c.costs[t.Name]
	}
	return out
}

// recordCost remembers an executed host's audit wall for future LPT
// ordering.
func (c *Coordinator) recordCost(name string, wall time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if wall > 0 {
		c.costs[name] = wall
	}
}

// Affinity returns the shard a host name is pinned to under the given
// shard count: a stable FNV-1a hash, so a host keeps its shard across
// sweeps and across fleets that contain different co-tenants.
func Affinity(name string, shards int) int {
	if shards <= 1 {
		return 0
	}
	h := fnv.New32a()
	h.Write([]byte(name))
	return int(h.Sum32() % uint32(shards))
}

// Sweep is a one-shot fleet audit with no cache carried over; equivalent
// to NewCoordinator().Sweep(targets, opts).
func Sweep(targets []Target, opts Options) (FleetReport, FleetStats) {
	return NewCoordinator().Sweep(targets, opts)
}

// Sweep audits every target and returns the merged report and telemetry.
// Shard goroutines pull hosts from the work-stealing scheduler (see the
// package comment; ScheduleStatic restores pure affinity buckets), and
// within a shard each host's catalogue runs on its own engine.Map pool of
// opts.Workers. The report lists hosts in name order regardless of shard
// interleaving; verdicts never depend on placement, only placement
// telemetry does.
func (c *Coordinator) Sweep(targets []Target, opts Options) (FleetReport, FleetStats) {
	opts = opts.normalized(len(targets))
	if len(targets) == 0 {
		return FleetReport{}, FleetStats{Shards: 0, Workers: opts.Workers}
	}

	ts := make([]Target, len(targets))
	copy(ts, targets)
	sort.Slice(ts, func(i, j int) bool { return ts[i].Name < ts[j].Name })

	var memo *core.CheckMemo
	if opts.Dedup && opts.Mode == core.CheckOnly {
		memo = core.NewCheckMemo()
	}
	sched := newStealScheduler(len(ts), opts.Shards,
		func(i int) int { return Affinity(ts[i].Name, opts.Shards) },
		c.snapshotCosts(ts), opts.Scheduling == ScheduleStatic)

	// Span bookkeeping is allocated only when tracing is on, so the
	// disabled path stays allocation-identical to an untraced sweep.
	var root *telemetry.Span
	var shardSpans []*telemetry.Span
	if opts.Trace != nil {
		root = opts.Trace.Root("sweep").
			TagInt("hosts", len(ts)).TagInt("shards", opts.Shards).TagInt("workers", opts.Workers)
		shardSpans = make([]*telemetry.Span, opts.Shards)
	}

	// results is written at distinct indices: the scheduler hands each
	// host index out exactly once. shardSpans[shard] is touched only by
	// shard's own goroutine (engine.Pull calls next and the task on it).
	results := make([]HostResult, len(ts))
	shardWalls, ps := engine.Pull(opts.Shards, func(shard int) (func(), bool) {
		i, stolen, ok := sched.next(shard)
		if !ok {
			if shardSpans != nil {
				shardSpans[shard].End()
			}
			return nil, false
		}
		if shardSpans != nil && shardSpans[shard] == nil {
			shardSpans[shard] = root.Child("shard").TagInt("shard", shard)
		}
		return func() {
			var hs *telemetry.Span
			if shardSpans != nil {
				// ChildTrace: each host audit roots its own trace (tree
				// link to the shard preserved), so the trace store can
				// sample and rank per host, not per whole sweep.
				hs = shardSpans[shard].ChildTrace("host").
					Tag("host", ts[i].Name).TagBool("stolen", stolen)
			}
			hr := c.auditOne(ts[i], shard, opts, memo, hs)
			hr.Stolen = stolen
			if hs != nil {
				hs.TagBool("cached", hr.FromCache)
				if hr.Degraded {
					hs.TagBool("degraded", true)
				}
				hs.End()
			}
			results[i] = hr
		}, true
	})

	rep := FleetReport{Hosts: results}
	st := aggregate(results, shardWalls, ps, opts)
	countLocalization(&st, ts)
	sched.apply(&st)
	root.TagInt("steals", st.Steals).TagInt("cached_hosts", st.CachedHosts).End()
	recordSweepMetrics(opts.Metrics, st)
	return rep, st
}

// recordSweepMetrics folds one sweep's roll-up into the shared metrics
// registry. Histograms only observe shards that did work, so idle
// affinity buckets don't drag the distributions to zero.
func recordSweepMetrics(m *telemetry.Metrics, st FleetStats) {
	if m == nil {
		return
	}
	m.Add("fleet.sweeps", 1)
	m.Add("fleet.hosts", int64(st.Hosts))
	m.Add("fleet.cache.replays", int64(st.CachedHosts))
	m.Add("fleet.hosts.degraded", int64(st.DegradedHosts))
	m.Add("fleet.steals", int64(st.Steals))
	m.SetGauge("fleet.utilization", st.Utilization())
	m.SetGauge("fleet.load_imbalance", st.LoadImbalance)
	m.Observe("fleet.sweep_wall", st.Wall)
	for _, sh := range st.PerShard {
		if sh.Hosts == 0 {
			continue
		}
		m.Observe("fleet.shard_wall", sh.Wall)
		m.Observe("fleet.queue_wait", sh.QueueWait)
	}
}

// auditOne audits a single target, consulting and priming the incremental
// cache when the target exposes a version probe, and routing checks
// through the sweep's shared dedup memo when one is wired. span, when
// non-nil, is the host's span; the catalogue run parents its check spans
// there.
func (c *Coordinator) auditOne(t Target, shard int, opts Options, memo *core.CheckMemo, span *telemetry.Span) HostResult {
	hr := HostResult{Target: t.Name, Shard: shard}
	if t.Catalog == nil {
		return hr
	}
	versioned := t.Version != nil
	var version uint64
	if versioned {
		version = t.Version()
		if opts.Incremental {
			if e, ok := c.lookup(t.Name); ok && e.version == version {
				hr.FromCache = true
				hr.Report = e.report
				// Stats are zero on a replay, so Degraded must be
				// recomputed from the cached verdicts: a host that was
				// unreachable when the cache was primed is still reported
				// degraded by the sweeps that replay it.
				hr.Degraded = degradedReport(e.report)
				return hr
			}
		}
	}
	t0 := time.Now()
	rep, st := t.Catalog.RunEngine(core.RunOptions{
		Mode:    opts.Mode,
		Workers: opts.Workers,
		Checks:  opts.Checks,
		Memo:    memo,
		Span:    span,
		Metrics: opts.Metrics,
	})
	wall := time.Since(t0)
	c.recordCost(t.Name, wall)
	opts.Metrics.Observe("fleet.host_wall", wall)
	hr.Report, hr.Stats = rep, st
	hr.Degraded = st.Requirements > 0 && st.Errors == st.Requirements
	if versioned {
		// Prime the cache on every versioned run — full sweeps included —
		// so the first incremental sweep after a full one already hits.
		c.store(t.Name, version, rep)
	}
	return hr
}

// degradedReport reports whether a replayed report has the degraded
// shape: at least one verdict and every final status ERROR — the same
// judgement auditOne makes from live RunStats, recomputed from the
// verdicts because a cache replay carries zero stats.
func degradedReport(rep core.Report) bool {
	if len(rep.Results) == 0 {
		return false
	}
	for _, r := range rep.Results {
		if r.After != core.CheckError {
			return false
		}
	}
	return true
}
