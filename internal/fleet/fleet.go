// Package fleet is the operations-scale layer of the VeriDevOps
// reproduction: a coordinator that audits N hosts × M requirements by
// sharding (host, catalogue) work units across a two-level worker pool —
// engine.Map over shards, and engine.Map workers inside each host's
// catalogue run. Scheduling is host-affine: a host's checks always land on
// the same shard (a stable hash of the host name), so per-host transport
// state, caches and rate limits stay shard-local across sweeps.
//
// A Coordinator carries an incremental-audit cache between sweeps, keyed
// on each host's monotonic state version (host.EventLog.Version): a
// re-sweep re-runs only hosts whose state advanced since the last pass and
// replays the cached report for the rest, so steady-state fleet sweeps are
// dominated by changed hosts only. Any cache miss falls back to a full
// run of that host.
//
// Unreachable hosts (host.Linux.SetUnreachable) degrade instead of
// stalling the fleet: their probes panic, the fault-tolerant engine
// recovers each panic into an ERROR verdict, and the remaining shards
// proceed untouched.
package fleet

import (
	"hash/fnv"
	"sort"
	"sync"
	"time"

	"veridevops/internal/core"
	"veridevops/internal/engine"
)

// Target is one audited host: a name, its requirement catalogue, and an
// optional state-version probe for incremental sweeps.
type Target struct {
	// Name identifies the host; it is the cache key and the affinity key,
	// so it must be unique and stable across sweeps.
	Name string
	// Catalog is the host's requirement catalogue.
	Catalog *core.Catalog
	// Version reports the host's monotonic state version (typically the
	// host event log's Version method). nil disables incremental caching
	// for this target: every sweep re-audits it.
	Version func() uint64
}

// Options configures one fleet sweep.
type Options struct {
	// Mode selects audit-only or audit-and-remediate.
	Mode core.RunMode
	// Shards is the host-level parallelism: how many shard goroutines run
	// catalogues concurrently. Clamped to [1, number of targets].
	Shards int
	// Workers is the engine.Map pool size inside each host's catalogue
	// run; values <= 1 run a host's checks sequentially.
	Workers int
	// Checks is the per-check resilience policy (see core.RunOptions).
	Checks engine.Policy
	// Incremental reuses cached per-host reports for targets whose state
	// version is unchanged since the coordinator last audited them.
	Incremental bool
}

func (o Options) normalized(targets int) Options {
	if o.Shards < 1 {
		o.Shards = 1
	}
	if targets > 0 && o.Shards > targets {
		o.Shards = targets
	}
	if o.Workers < 1 {
		o.Workers = 1
	}
	return o
}

// HostResult is the outcome of auditing one target.
type HostResult struct {
	Target string
	// Shard is the shard the target's work ran on (its affinity home,
	// also when the result was replayed from cache).
	Shard int
	// FromCache marks a result replayed from the incremental cache; its
	// Stats are zero because nothing executed.
	FromCache bool
	// Degraded marks a host whose every check ended in ERROR — the
	// unreachable-host shape.
	Degraded bool
	Report   core.Report
	Stats    core.RunStats
}

// FleetReport aggregates the per-host reports of one sweep, ordered by
// target name.
type FleetReport struct {
	Hosts []HostResult
}

// Counts sums the final-status buckets over every host.
func (r FleetReport) Counts() (pass, fail, incomplete int) {
	for _, h := range r.Hosts {
		p, f, i := h.Report.Counts()
		pass, fail, incomplete = pass+p, fail+f, incomplete+i
	}
	return
}

// Compliance is the fraction of all requirements across the fleet whose
// final status is PASS; an empty fleet is fully compliant.
func (r FleetReport) Compliance() float64 {
	pass, fail, inc := r.Counts()
	total := pass + fail + inc
	if total == 0 {
		return 1
	}
	return float64(pass) / float64(total)
}

// Failing returns "host/finding" identifiers for every requirement whose
// final status is not PASS.
func (r FleetReport) Failing() []string {
	var out []string
	for _, h := range r.Hosts {
		for _, id := range h.Report.Failing() {
			out = append(out, h.Target+"/"+id)
		}
	}
	return out
}

// cacheEntry is one host's memoised audit outcome.
type cacheEntry struct {
	// version is the host state version observed immediately before the
	// cached run. Capturing the pre-run version is conservative: any
	// mutation during or after the run (drift, enforcement, an outage
	// flip) advances the live version past it and forces a re-audit.
	version uint64
	report  core.Report
}

// Coordinator shards fleet sweeps and carries the incremental cache
// between them. The zero value is not usable; call NewCoordinator. A
// Coordinator is safe for concurrent use by its own shard workers, but
// Sweep calls themselves must not overlap.
type Coordinator struct {
	mu    sync.Mutex
	cache map[string]cacheEntry
}

// NewCoordinator returns a coordinator with an empty cache.
func NewCoordinator() *Coordinator {
	return &Coordinator{cache: make(map[string]cacheEntry)}
}

// Invalidate drops one host's cached report, forcing its next incremental
// audit to run fully.
func (c *Coordinator) Invalidate(name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.cache, name)
}

// InvalidateAll drops the whole cache.
func (c *Coordinator) InvalidateAll() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.cache = make(map[string]cacheEntry)
}

// CachedHosts reports how many hosts currently have a cached report.
func (c *Coordinator) CachedHosts() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.cache)
}

func (c *Coordinator) lookup(name string) (cacheEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.cache[name]
	return e, ok
}

func (c *Coordinator) store(name string, version uint64, rep core.Report) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.cache[name] = cacheEntry{version: version, report: rep}
}

// Affinity returns the shard a host name is pinned to under the given
// shard count: a stable FNV-1a hash, so a host keeps its shard across
// sweeps and across fleets that contain different co-tenants.
func Affinity(name string, shards int) int {
	if shards <= 1 {
		return 0
	}
	h := fnv.New32a()
	h.Write([]byte(name))
	return int(h.Sum32() % uint32(shards))
}

// Sweep is a one-shot fleet audit with no cache carried over; equivalent
// to NewCoordinator().Sweep(targets, opts).
func Sweep(targets []Target, opts Options) (FleetReport, FleetStats) {
	return NewCoordinator().Sweep(targets, opts)
}

// Sweep audits every target and returns the merged report and telemetry.
// Targets are bucketed onto shards by name affinity; shards run
// concurrently on an engine.Map pool, and within a shard each host's
// catalogue runs on its own engine.Map pool of opts.Workers. The report
// lists hosts in name order regardless of shard interleaving.
func (c *Coordinator) Sweep(targets []Target, opts Options) (FleetReport, FleetStats) {
	opts = opts.normalized(len(targets))
	if len(targets) == 0 {
		return FleetReport{}, FleetStats{Shards: 0, Workers: opts.Workers}
	}

	ts := make([]Target, len(targets))
	copy(ts, targets)
	sort.Slice(ts, func(i, j int) bool { return ts[i].Name < ts[j].Name })

	buckets := make([][]int, opts.Shards)
	for i, t := range ts {
		s := Affinity(t.Name, opts.Shards)
		buckets[s] = append(buckets[s], i)
	}

	// results is written at distinct indices by distinct shard goroutines.
	results := make([]HostResult, len(ts))
	shardWalls, ps := engine.Map(buckets, opts.Shards, func(si int, bucket []int) time.Duration {
		t0 := time.Now()
		for _, i := range bucket {
			results[i] = c.auditOne(ts[i], si, opts)
		}
		return time.Since(t0)
	})

	rep := FleetReport{Hosts: results}
	return rep, aggregate(results, shardWalls, ps, opts)
}

// auditOne audits a single target, consulting and priming the incremental
// cache when the target exposes a version probe.
func (c *Coordinator) auditOne(t Target, shard int, opts Options) HostResult {
	hr := HostResult{Target: t.Name, Shard: shard}
	if t.Catalog == nil {
		return hr
	}
	versioned := t.Version != nil
	var version uint64
	if versioned {
		version = t.Version()
		if opts.Incremental {
			if e, ok := c.lookup(t.Name); ok && e.version == version {
				hr.FromCache = true
				hr.Report = e.report
				return hr
			}
		}
	}
	rep, st := t.Catalog.RunEngine(core.RunOptions{
		Mode:    opts.Mode,
		Workers: opts.Workers,
		Checks:  opts.Checks,
	})
	hr.Report, hr.Stats = rep, st
	hr.Degraded = st.Requirements > 0 && st.Errors == st.Requirements
	if versioned {
		// Prime the cache on every versioned run — full sweeps included —
		// so the first incremental sweep after a full one already hits.
		c.store(t.Name, version, rep)
	}
	return hr
}
