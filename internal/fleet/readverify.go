package fleet

import (
	"fmt"
	"sort"

	"veridevops/internal/core"
	"veridevops/internal/host"
)

// Dynamic declared-reads oracle: run every catalogue entry one at a
// time with a host.ReadRecorder attached and compare the state keys the
// check actually read against the keys it declares via
// core.KeyReader.CheckStateKeys. This closes the hole the static
// keyreads analyzer must leave open — reads through function values,
// cross-package helpers, or data-dependent key names — at the cost of
// only observing the paths the current host state exercises.
//
// Verdict semantics differ from the static side accordingly:
//
//   - an undeclared recorded read is a hard violation (push-mode
//     unsoundness, observed, not inferred);
//   - a declared key that was not read is advisory only — short-circuit
//     evaluation legitimately skips reads on some states;
//   - a check that reads but implements no KeyReader is advisory
//     ("unlocalized"): DepIndex already treats it conservatively.

// Violation kinds.
const (
	// ViolationUndeclared marks a recorded read no declared key covers.
	ViolationUndeclared = "undeclared"
	// ViolationOverdeclared marks declared keys the run never read
	// (advisory: may be state-dependent short-circuiting).
	ViolationOverdeclared = "overdeclared"
	// ViolationUnlocalized marks a check that read host state but
	// declares nothing (no KeyReader / empty declaration).
	ViolationUnlocalized = "unlocalized"
)

// ReadViolation is one mismatch between a check's recorded reads and
// its declaration.
type ReadViolation struct {
	// Finding is the catalogue entry's finding ID.
	Finding string
	// Kind is one of the Violation* constants.
	Kind string
	// Keys are the offending state keys (recorded-but-undeclared, or
	// declared-but-unread), sorted.
	Keys []string
	// Declared and Read are the full key sets, sorted, for diagnostics.
	Declared []string
	Read     []string
}

func (v ReadViolation) String() string {
	return fmt.Sprintf("%s: %s %v (declared %v, read %v)", v.Finding, v.Kind, v.Keys, v.Declared, v.Read)
}

// Fatal reports whether the violation is a soundness failure (an
// undeclared read) rather than an advisory finding.
func (v ReadViolation) Fatal() bool { return v.Kind == ViolationUndeclared }

// Recordable is a host that accepts a read recorder; *host.Linux and
// *host.Windows implement it.
type Recordable interface {
	SetRecorder(rec *host.ReadRecorder)
}

// VerifyReads runs every entry of the catalogue individually (engine-
// routed, CheckOnly, no dedup memo — a memo's state digests would read
// the hosts outside the check) with a recorder attached to the given
// hosts, and returns the violations sorted by finding ID then kind.
// The caller must ensure nothing else touches the hosts concurrently;
// recorders are detached before returning. Checks on unreachable hosts
// record nothing (the accessor panics before reading) and therefore
// surface at worst as overdeclared, never as undeclared.
func VerifyReads(cat *core.Catalog, hosts ...Recordable) []ReadViolation {
	rec := host.NewReadRecorder()
	for _, h := range hosts {
		h.SetRecorder(rec)
	}
	defer func() {
		for _, h := range hosts {
			h.SetRecorder(nil)
		}
	}()

	var out []ReadViolation
	for _, req := range cat.All() {
		rec.Reset()
		cat.RunEngine(core.RunOptions{Mode: core.CheckOnly, Workers: 1, Only: []string{req.FindingID()}})
		read := rec.Keys()
		declared, localized := core.CheckKeys(req)
		sort.Strings(declared)

		if !localized {
			if len(read) > 0 {
				out = append(out, ReadViolation{
					Finding: req.FindingID(), Kind: ViolationUnlocalized,
					Keys: read, Declared: declared, Read: read,
				})
			}
			continue
		}
		declSet := make(map[string]bool, len(declared))
		for _, k := range declared {
			declSet[k] = true
		}
		readSet := make(map[string]bool, len(read))
		var undeclared []string
		for _, k := range read {
			readSet[k] = true
			if !declSet[k] {
				undeclared = append(undeclared, k)
			}
		}
		var unread []string
		for _, k := range declared {
			if !readSet[k] {
				unread = append(unread, k)
			}
		}
		if len(undeclared) > 0 {
			out = append(out, ReadViolation{
				Finding: req.FindingID(), Kind: ViolationUndeclared,
				Keys: undeclared, Declared: declared, Read: read,
			})
		}
		if len(unread) > 0 {
			out = append(out, ReadViolation{
				Finding: req.FindingID(), Kind: ViolationOverdeclared,
				Keys: unread, Declared: declared, Read: read,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Finding != out[j].Finding {
			return out[i].Finding < out[j].Finding
		}
		return out[i].Kind < out[j].Kind
	})
	return out
}

// FatalViolations filters to soundness failures.
func FatalViolations(vs []ReadViolation) []ReadViolation {
	var out []ReadViolation
	for _, v := range vs {
		if v.Fatal() {
			out = append(out, v)
		}
	}
	return out
}
