package fleet

import (
	"testing"
	"time"

	"veridevops/internal/core"
	"veridevops/internal/host"
)

// Seeded regression for the declared-reads contract: an intentionally
// under-declared check makes sweep and push evaluation diverge (the
// dependency index never re-triggers the check when the hidden slot
// changes), the dynamic oracle (VerifyReads) catches exactly that hole,
// and once the read is declared the two modes agree again — the same
// equivalence property the scenario fuzzer's sweep-vs-push oracle
// enforces over the shipped catalogues.

// leakyCheck reads two package slots unconditionally but declares the
// second only when declareHidden is set.
type leakyCheck struct {
	core.Finding
	H             *host.Linux
	Declared      string
	Hidden        string
	declareHidden bool
}

func (c *leakyCheck) Check() core.CheckStatus {
	//lint:ignore directcheck test fixture probes its host directly to model a leaky pattern
	a := c.H.Installed(c.Declared)
	b := c.H.Installed(c.Hidden) // read before combining: no short-circuit
	return core.CheckBool(a && b)
}

func (c *leakyCheck) Enforce() core.EnforcementStatus { return core.EnforceSuccess }

func (c *leakyCheck) CheckStateKeys() []string {
	keys := []string{host.PackageKey(c.Declared).String()}
	if c.declareHidden {
		keys = append(keys, host.PackageKey(c.Hidden).String())
	}
	return keys
}

func leakyFixture(declareHidden bool) (*Streamer, Target, *host.Linux, *core.Catalog) {
	h := host.NewLinux()
	h.Install("base", "1")
	h.Install("hidden", "1")
	cat := core.NewCatalog()
	cat.MustRegister(&leakyCheck{
		Finding:       core.Finding{ID: "LEAK-1", Sev: "high", Desc: "reads base and hidden packages"},
		H:             h,
		Declared:      "base",
		Hidden:        "hidden",
		declareHidden: declareHidden,
	})
	tg := Target{Name: "h0", Catalog: cat, Version: h.Log().Version}
	s := NewStreamer(NewCoordinator(), StreamOptions{Shards: 1, Workers: 1})
	s.Watch(tg, h.Log())
	return s, tg, h, cat
}

func TestUnderDeclaredReadDivergesSweepVsPush(t *testing.T) {
	s, tg, h, cat := leakyFixture(false)

	s.Flush(0) // prime
	if pass, fail, _ := s.Counts(); pass != 1 || fail != 0 {
		t.Fatalf("primed counts = %d/%d, want 1 pass", pass, fail)
	}

	// The hidden (undeclared) slot drifts: the dependency index maps the
	// pkg:hidden event to no check, so push keeps the stale PASS.
	h.Remove("hidden")
	s.Flush(time.Second)
	if pass, fail, _ := s.Counts(); pass != 1 || fail != 0 {
		t.Fatalf("push counts after hidden drift = %d/%d; under-declared check unexpectedly re-ran", pass, fail)
	}

	// A fresh sweep sees the truth: FAIL. This is the divergence.
	rep, _ := NewCoordinator().Sweep([]Target{tg}, Options{Shards: 1, Workers: 1})
	if pass, fail, _ := rep.Counts(); pass != 0 || fail != 1 {
		t.Fatalf("sweep counts = %d/%d, want 1 fail", pass, fail)
	}

	// The dynamic oracle pinpoints the hole: an undeclared pkg:hidden read.
	vs := FatalViolations(VerifyReads(cat, h))
	if len(vs) != 1 || vs[0].Finding != "LEAK-1" || vs[0].Kind != ViolationUndeclared {
		t.Fatalf("VerifyReads fatal violations = %v, want one undeclared on LEAK-1", vs)
	}
	if len(vs[0].Keys) != 1 || vs[0].Keys[0] != "pkg:hidden" {
		t.Fatalf("violation keys = %v, want [pkg:hidden]", vs[0].Keys)
	}
}

func TestDeclaredReadKeepsSweepAndPushEquivalent(t *testing.T) {
	s, tg, h, cat := leakyFixture(true)

	s.Flush(0)
	h.Remove("hidden")
	s.Flush(time.Second)
	// Declared: the event re-triggers the check; push sees the FAIL.
	if pass, fail, _ := s.Counts(); pass != 0 || fail != 1 {
		t.Fatalf("push counts after hidden drift = %d/%d, want 1 fail", pass, fail)
	}
	rep, _ := NewCoordinator().Sweep([]Target{tg}, Options{Shards: 1, Workers: 1})
	if pass, fail, _ := rep.Counts(); pass != 0 || fail != 1 {
		t.Fatalf("sweep counts = %d/%d, want 1 fail — modes must agree", pass, fail)
	}
	// And the oracle is clean: both reads declared, both keys read.
	if vs := VerifyReads(cat, h); len(vs) != 0 {
		t.Fatalf("VerifyReads = %v, want no violations", vs)
	}
}
