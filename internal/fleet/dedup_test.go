package fleet

import (
	"reflect"
	"testing"
	"time"

	"veridevops/internal/core"
	"veridevops/internal/engine"
	"veridevops/internal/host"
)

func TestDedupHomogeneousFleetExecutesEachCheckOnce(t *testing.T) {
	// 16 identically-hardened hosts × 8 checks: with dedup on, each
	// distinct (finding, state) pair executes once and the other 15 hosts
	// replay — 8 misses, 120 hits, a 93.75% dedup rate.
	targets, _ := LinuxFleet(16)
	rep, st := Sweep(targets, Options{Shards: 4, Workers: 2, Dedup: true})
	if st.DedupMisses != 8 {
		t.Errorf("DedupMisses = %d, want 8 (one per distinct check)", st.DedupMisses)
	}
	if st.DedupHits != 120 {
		t.Errorf("DedupHits = %d, want 120", st.DedupHits)
	}
	if rate := st.DedupRate(); rate < 0.9 {
		t.Errorf("dedup rate = %v, want >= 0.90", rate)
	}
	if st.Attempts != 8 {
		t.Errorf("fleet executed %d attempts, want 8 (the rest replayed)", st.Attempts)
	}
	if rep.Compliance() != 1 {
		t.Errorf("compliance = %v, replayed verdicts must match", rep.Compliance())
	}
}

func TestDedupMatchesNonDedupVerdicts(t *testing.T) {
	sweep := func(dedup bool) map[string]string {
		targets, hosts := LinuxFleet(8)
		host.DriftLinux(hosts[3], 3, newRng(11))
		host.DriftLinux(hosts[5], 2, newRng(12))
		rep, _ := Sweep(targets, Options{Shards: 4, Workers: 2, Dedup: dedup})
		return reportVerdicts(rep)
	}
	plain, deduped := sweep(false), sweep(true)
	if !reflect.DeepEqual(plain, deduped) {
		t.Error("dedup changed sweep verdicts")
	}
}

func TestDedupDistinguishesDivergentState(t *testing.T) {
	// A drifted host's state digests differently, so its checks must
	// execute instead of replaying a compliant co-tenant's PASS.
	targets, hosts := LinuxFleet(4)
	hosts[2].Install("nis", "0.legacy") // V-219157 violation on host-02 only
	rep, st := Sweep(targets, Options{Shards: 2, Workers: 1, Dedup: true})
	for _, hr := range rep.Hosts {
		_, fail, _ := hr.Report.Counts()
		if hr.Target == "host-02" && fail == 0 {
			t.Error("drifted host replayed a compliant verdict")
		}
		if hr.Target != "host-02" && fail != 0 {
			t.Errorf("%s inherited the drifted host's failure", hr.Target)
		}
	}
	// host-02 diverges on exactly one finding: 8 shared + 1 distinct.
	if st.DedupMisses != 9 {
		t.Errorf("DedupMisses = %d, want 9", st.DedupMisses)
	}
}

func TestDedupIgnoredInEnforceMode(t *testing.T) {
	targets, hosts := LinuxFleet(4)
	for i := range hosts {
		host.DriftLinux(hosts[i], 2, newRng(int64(20+i)))
	}
	rep, st := Sweep(targets, Options{Shards: 2, Workers: 1, Mode: core.CheckAndEnforce, Dedup: true})
	if st.DedupHits != 0 || st.DedupMisses != 0 {
		t.Errorf("enforce-mode sweep reported dedup traffic: %d/%d", st.DedupHits, st.DedupMisses)
	}
	if rep.Compliance() != 1 {
		t.Error("enforcement must still remediate every host individually")
	}
}

func TestDedupOffByDefault(t *testing.T) {
	targets, _ := LinuxFleet(4)
	_, st := Sweep(targets, Options{Shards: 2, Workers: 1})
	if st.DedupHits != 0 || st.DedupMisses != 0 {
		t.Errorf("dedup accounted without opt-in: %d/%d", st.DedupHits, st.DedupMisses)
	}
}

func TestDedupSkipsFaultyRequirements(t *testing.T) {
	// Verdict-changing fault plans make a check nondeterministic, so it
	// must never share a memo entry — each host pays its own execution.
	plan := engine.FaultPlan{TransientProb: 0.3}
	targets, _ := LinuxFleet(3)
	for i := range targets {
		targets[i] = WithFaults(targets[i], int64(i)*7, plan)
	}
	pol := engine.Policy{MaxAttempts: 3, Sleep: func(time.Duration) {}}
	_, st := Sweep(targets, Options{Shards: 2, Workers: 1, Dedup: true, Checks: pol})
	if st.DedupHits != 0 || st.DedupMisses != 0 {
		t.Errorf("faulty checks joined the memo: %d/%d", st.DedupHits, st.DedupMisses)
	}
}

func TestDedupDeterministicTotals(t *testing.T) {
	// Which host pays a miss is scheduling-dependent; the Canonical
	// roll-up — dedup totals included — must not be.
	run := func() FleetStats {
		targets, hosts := LinuxFleet(12)
		host.DriftLinux(hosts[4], 3, newRng(31))
		_, st := Sweep(targets, Options{Shards: 4, Workers: 4, Dedup: true})
		return st.Canonical()
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Errorf("deduped sweeps diverge:\n%+v\n%+v", a, b)
	}
	if a.DedupHits == 0 {
		t.Error("homogeneous fleet produced no dedup hits")
	}
}
