package fleet

import (
	"reflect"
	"testing"
	"time"

	"veridevops/internal/engine"
	"veridevops/internal/host"
)

// faultedFleet builds a fleet whose checks misbehave on a seeded schedule:
// one injector per requirement, seeds derived from the host index, so two
// builds with the same seed share an identical fault plan.
func faultedFleet(n int, seed int64) ([]Target, []*host.Linux) {
	plan := engine.FaultPlan{
		PanicProb: 0.05, TransientProb: 0.25,
		SlowProb: 0.05, SlowDelay: 10 * time.Microsecond,
	}
	targets, hosts := LinuxFleet(n)
	for i := range targets {
		targets[i] = WithFaults(targets[i], seed+int64(i)*100, plan)
	}
	return targets, hosts
}

// TestFleetDeterminism: the same seed and fault plan must produce the
// identical FleetStats modulo timing fields, across repeated sweeps and
// across shard counts' worth of goroutine interleavings. Run under -race
// by `make check`.
func TestFleetDeterminism(t *testing.T) {
	pol := engine.Policy{MaxAttempts: 4, Sleep: func(time.Duration) {}}
	run := func() (FleetStats, FleetStats) {
		targets, hosts := faultedFleet(8, 42)
		hosts[5].SetUnreachable(true)
		coord := NewCoordinator()
		_, full := coord.Sweep(targets, Options{Shards: 4, Workers: 4, Checks: pol})
		host.DriftLinux(hosts[2], 3, newRng(7))
		_, incr := coord.Sweep(targets, Options{Shards: 4, Workers: 4, Checks: pol, Incremental: true})
		return full.Canonical(), incr.Canonical()
	}

	full1, incr1 := run()
	full2, incr2 := run()
	if !reflect.DeepEqual(full1, full2) {
		t.Errorf("full sweeps diverge:\n%+v\n%+v", full1, full2)
	}
	if !reflect.DeepEqual(incr1, incr2) {
		t.Errorf("incremental sweeps diverge:\n%+v\n%+v", incr1, incr2)
	}
	if full1.Wall != 0 || incr1.Wall != 0 {
		t.Error("Canonical must zero timing fields")
	}
}

// TestFleetDeterminismAcrossShardCounts: verdict-level outcomes must not
// depend on the shard count (the fault schedule is per-requirement, so
// interleaving cannot change it).
func TestFleetDeterminismAcrossShardCounts(t *testing.T) {
	pol := engine.Policy{MaxAttempts: 4, Sleep: func(time.Duration) {}}
	verdicts := func(shards int) map[string]string {
		targets, _ := faultedFleet(6, 99)
		rep, _ := Sweep(targets, Options{Shards: shards, Workers: 2, Checks: pol})
		out := map[string]string{}
		for _, hr := range rep.Hosts {
			for _, r := range hr.Report.Results {
				out[hr.Target+"/"+r.FindingID] = r.After.String()
			}
		}
		return out
	}
	base := verdicts(1)
	for _, shards := range []int{2, 6} {
		if got := verdicts(shards); !reflect.DeepEqual(base, got) {
			t.Errorf("verdicts diverge between 1 and %d shards", shards)
		}
	}
}
