package mc

import (
	"math/rand"
	"testing"

	"veridevops/internal/automata"
)

// respNet builds plant || response-observer: a 4-step cyclic plant emitting
// a,b,c,d every `period`, observed for "every a is followed by c within d".
// Ground truth: c occurs exactly 2*period after a.
func respNet(period, deadline int64) *automata.Network {
	plant := automata.CyclicPlant("plant", 4, []string{"a", "b", "c", "d"}, period)
	obs := automata.ResponseTimedObserver("a", "c", deadline)
	return automata.MustNetwork(plant, obs)
}

func TestResponseObserverSatisfied(t *testing.T) {
	// Latency is exactly 20; deadline 20 is met.
	holds, wit, stats, err := NewChecker(respNet(10, 20)).CheckErrorFree()
	if err != nil {
		t.Fatal(err)
	}
	if !holds {
		t.Errorf("deadline 20 must hold (latency 20); witness %v", wit)
	}
	if stats.StatesExplored == 0 {
		t.Error("no states explored")
	}
}

func TestResponseObserverViolated(t *testing.T) {
	holds, wit, _, err := NewChecker(respNet(10, 19)).CheckErrorFree()
	if err != nil {
		t.Fatal(err)
	}
	if holds {
		t.Error("deadline 19 must be violated (latency 20)")
	}
	if len(wit) == 0 {
		t.Error("violation must come with a witness")
	}
	// The witness must contain the trigger event.
	found := false
	for _, l := range wit {
		if l == "a" {
			found = true
		}
	}
	if !found {
		t.Errorf("witness %v should contain the trigger 'a'", wit)
	}
}

func TestAbsenceObserver(t *testing.T) {
	plant := automata.CyclicPlant("plant", 3, []string{"a", "b", "c"}, 5)
	net := automata.MustNetwork(plant, automata.AbsenceObserver("c"))
	holds, _, _, err := NewChecker(net).CheckErrorFree()
	if err != nil {
		t.Fatal(err)
	}
	if holds {
		t.Error("plant emits c; absence must be violated")
	}

	net2 := automata.MustNetwork(
		automata.CyclicPlant("plant", 3, []string{"a", "b", "x"}, 5),
		automata.AbsenceObserver("c"))
	holds2, _, _, err := NewChecker(net2).CheckErrorFree()
	if err != nil {
		t.Fatal(err)
	}
	if !holds2 {
		t.Error("plant never emits c; absence must hold")
	}
}

func TestPrecedenceObserver(t *testing.T) {
	// Plant emits auth then access: precedence holds.
	ok := automata.CyclicPlant("plant", 2, []string{"auth", "access"}, 5)
	net := automata.MustNetwork(ok, automata.PrecedenceObserver("access", "auth"))
	holds, _, _, err := NewChecker(net).CheckErrorFree()
	if err != nil {
		t.Fatal(err)
	}
	if !holds {
		t.Error("auth precedes access; precedence must hold")
	}

	// Plant emits access first: violated.
	bad := automata.CyclicPlant("plant", 2, []string{"access", "auth"}, 5)
	net2 := automata.MustNetwork(bad, automata.PrecedenceObserver("access", "auth"))
	holds2, _, _, err := NewChecker(net2).CheckErrorFree()
	if err != nil {
		t.Fatal(err)
	}
	if holds2 {
		t.Error("access before auth; precedence must fail")
	}
}

func TestExistenceBoundedObserver(t *testing.T) {
	// c first occurs at 3*period = 15.
	plant := automata.CyclicPlant("plant", 3, []string{"a", "b", "c"}, 5)
	net := automata.MustNetwork(plant, automata.ExistenceBoundedObserver("c", 15))
	holds, _, _, err := NewChecker(net).CheckErrorFree()
	if err != nil {
		t.Fatal(err)
	}
	if !holds {
		t.Error("c occurs at 15; existence within 15 must hold")
	}

	net2 := automata.MustNetwork(
		automata.CyclicPlant("plant", 3, []string{"a", "b", "c"}, 5),
		automata.ExistenceBoundedObserver("c", 14))
	holds2, _, _, err := NewChecker(net2).CheckErrorFree()
	if err != nil {
		t.Fatal(err)
	}
	if holds2 {
		t.Error("c cannot occur before 15; existence within 14 must fail")
	}
}

func TestMinSeparationObserver(t *testing.T) {
	// a occurs every 2*period = 20 ticks in a 2-ring.
	plant := automata.CyclicPlant("plant", 2, []string{"a", "b"}, 10)
	net := automata.MustNetwork(plant, automata.MinSeparationObserver("a", 20))
	holds, _, _, err := NewChecker(net).CheckErrorFree()
	if err != nil {
		t.Fatal(err)
	}
	if !holds {
		t.Error("separation is exactly 20; min-sep 20 must hold")
	}

	net2 := automata.MustNetwork(
		automata.CyclicPlant("plant", 2, []string{"a", "b"}, 10),
		automata.MinSeparationObserver("a", 21))
	holds2, _, _, err := NewChecker(net2).CheckErrorFree()
	if err != nil {
		t.Fatal(err)
	}
	if holds2 {
		t.Error("separation 20 < 21; min-sep 21 must fail")
	}
}

func TestAfterUntilAbsenceObserver(t *testing.T) {
	// Ring q, p, r: p occurs between q and r — violation.
	plant := automata.CyclicPlant("plant", 3, []string{"q", "p", "r"}, 5)
	net := automata.MustNetwork(plant, automata.AfterUntilAbsenceObserver("q", "p", "r"))
	holds, _, _, err := NewChecker(net).CheckErrorFree()
	if err != nil {
		t.Fatal(err)
	}
	if holds {
		t.Error("p inside [q,r): scoped absence must fail")
	}

	// Ring q, r, p: p occurs only outside the scope — holds.
	plant2 := automata.CyclicPlant("plant", 3, []string{"q", "r", "p"}, 5)
	net2 := automata.MustNetwork(plant2, automata.AfterUntilAbsenceObserver("q", "p", "r"))
	holds2, _, _, err := NewChecker(net2).CheckErrorFree()
	if err != nil {
		t.Fatal(err)
	}
	if !holds2 {
		t.Error("p outside [q,r): scoped absence must hold")
	}
}

func TestLocationReachable(t *testing.T) {
	plant := automata.CyclicPlant("plant", 3, []string{"a", "b", "c"}, 5)
	c := NewChecker(automata.MustNetwork(plant))
	res, err := c.LocationReachable("plant", "l2")
	if err != nil || !res.Reachable {
		t.Errorf("l2 must be reachable: %v %v", res.Reachable, err)
	}
	if _, err := c.LocationReachable("ghost", "l0"); err == nil {
		t.Error("unknown component must error")
	}
	if _, err := c.LocationReachable("plant", "ghost"); err == nil {
		t.Error("unknown location must error")
	}
}

func TestMaxStatesBudget(t *testing.T) {
	plant := automata.CyclicPlant("plant", 8, []string{"a"}, 5)
	c := NewChecker(automata.MustNetwork(plant))
	c.MaxStates = 2
	_, err := c.CheckReachable(func([]int) bool { return false })
	if err == nil {
		t.Error("exceeding the state budget must error")
	}
}

func TestDiscreteCheckerAgreesWithZones(t *testing.T) {
	// Cross-validate the two engines on deterministic deadline queries.
	for _, deadline := range []int64{18, 19, 20, 21, 25} {
		net := respNet(10, deadline)
		zHolds, _, _, err := NewChecker(net).CheckErrorFree()
		if err != nil {
			t.Fatal(err)
		}
		net2 := respNet(10, deadline)
		dHolds, _, _, err := NewDiscreteChecker(net2).CheckErrorFree()
		if err != nil {
			t.Fatal(err)
		}
		if zHolds != dHolds {
			t.Errorf("deadline %d: zone=%v discrete=%v", deadline, zHolds, dHolds)
		}
		if want := deadline >= 20; zHolds != want {
			t.Errorf("deadline %d: holds=%v, want %v", deadline, zHolds, want)
		}
	}
}

// Property-style cross-validation on random plants: zone-based and
// discrete-time reachability of observer error locations must agree.
func TestEnginesAgreeOnRandomPlants(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 10; iter++ {
		plant := automata.RandomPlant("plant", 3+rng.Intn(3), []string{"a", "b", "c"}, 3, 2, rng)
		deadline := 1 + rng.Int63n(8)
		mk := func() *automata.Network {
			cp := *plant // shallow copy is fine: checkers do not mutate
			return automata.MustNetwork(&cp, automata.ResponseTimedObserver("a", "b", deadline))
		}
		zHolds, _, _, err := NewChecker(mk()).CheckErrorFree()
		if err != nil {
			t.Fatal(err)
		}
		dHolds, _, _, err := NewDiscreteChecker(mk()).CheckErrorFree()
		if err != nil {
			t.Fatal(err)
		}
		if zHolds != dHolds {
			t.Fatalf("iter %d deadline %d: zone=%v discrete=%v", iter, deadline, zHolds, dHolds)
		}
	}
}

func TestZoneCheckerExploresFewerStatesThanDiscrete(t *testing.T) {
	net := respNet(10, 20)
	_, _, zStats, err := NewChecker(net).CheckErrorFree()
	if err != nil {
		t.Fatal(err)
	}
	_, _, dStats, err := NewDiscreteChecker(respNet(10, 20)).CheckErrorFree()
	if err != nil {
		t.Fatal(err)
	}
	if zStats.StatesExplored >= dStats.StatesExplored {
		t.Errorf("zone abstraction should explore fewer states: zone=%d discrete=%d",
			zStats.StatesExplored, dStats.StatesExplored)
	}
}
