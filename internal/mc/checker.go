package mc

import (
	"fmt"
	"strings"

	"veridevops/internal/automata"
)

// Stats reports the work a verification run performed.
type Stats struct {
	// StatesExplored counts symbolic states popped from the waiting list.
	StatesExplored int
	// ZonesStored counts zones retained in the passed list.
	ZonesStored int
	// Transitions counts successor computations that produced a non-empty
	// zone.
	Transitions int
}

// Result is the outcome of a reachability query.
type Result struct {
	// Reachable reports whether a goal state was found.
	Reachable bool
	// Witness is the sequence of transition labels leading to the goal
	// (internal steps render as "tau"), empty when unreachable.
	Witness []string
	Stats   Stats
}

// Checker verifies properties of a timed-automata network.
type Checker struct {
	net      *automata.Network
	clocks   []string
	clockIdx map[string]int // clock name -> DBM index (1-based)
	k        int64

	// MaxStates bounds exploration; 0 means unlimited. When exceeded,
	// CheckReachable returns an error.
	MaxStates int
}

// NewChecker prepares a checker for the network.
func NewChecker(net *automata.Network) *Checker {
	clocks := net.Clocks()
	idx := make(map[string]int, len(clocks))
	for i, c := range clocks {
		idx[c] = i + 1
	}
	return &Checker{net: net, clocks: clocks, clockIdx: idx, k: net.MaxConstant()}
}

// node is a symbolic state in the zone graph.
type node struct {
	locs   []int
	zone   *DBM
	parent *node
	via    string
}

func (c *Checker) locKey(locs []int) string {
	var b strings.Builder
	for i, l := range locs {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", l)
	}
	return b.String()
}

// applyGuard intersects the zone with a guard; returns false when the
// result is empty.
func (c *Checker) applyGuard(z *DBM, g automata.Guard) bool {
	for _, con := range g {
		x, ok := c.clockIdx[con.Clock]
		if !ok {
			// Unknown clock: treated as a modelling error surfaced loudly.
			panic(fmt.Sprintf("mc: guard references unknown clock %q", con.Clock))
		}
		z.constrain(x, con.Op, con.Bound)
	}
	z.close()
	return !z.empty()
}

// invariants returns the conjunction of location invariants for a location
// vector.
func (c *Checker) invariants(locs []int) automata.Guard {
	var g automata.Guard
	for ai, a := range c.net.Automata {
		g = append(g, a.Locations[locs[ai]].Invariant...)
	}
	return g
}

// initial returns the initial symbolic state: all components at their
// initial locations, clocks at zero, time-elapsed under the invariants.
func (c *Checker) initial() *node {
	locs := make([]int, len(c.net.Automata))
	for i, a := range c.net.Automata {
		li, _ := a.LocIndex(a.Initial)
		locs[i] = li
	}
	z := newDBM(len(c.clocks))
	z.up()
	if !c.applyGuard(z, c.invariants(locs)) {
		// Inconsistent initial invariants yield an empty initial zone.
		return nil
	}
	z.extrapolate(c.k)
	return &node{locs: locs, zone: z}
}

// participant is one component's edge taking part in a transition.
type participant struct {
	automaton int
	edge      automata.Edge
}

// successors enumerates the transitions enabled from n.
func (c *Checker) successors(n *node) []*node {
	var out []*node
	for ai, a := range c.net.Automata {
		for _, e := range a.Edges {
			from, _ := a.LocIndex(e.From)
			if from != n.locs[ai] {
				continue
			}
			if e.Label == "" {
				if s := c.fire(n, []participant{{ai, e}}, "tau"); s != nil {
					out = append(out, s)
				}
				continue
			}
			if a.Observer {
				continue // receive-only: labeled edges never emit
			}
			// Broadcast: ai emits e.Label; every other component that has
			// an enabled receiving edge participates. Receiver choices are
			// enumerated combinatorially (observers are deterministic, so
			// the fan-out is small in practice).
			combos := [][]participant{{{ai, e}}}
			for bi, b := range c.net.Automata {
				if bi == ai {
					continue
				}
				var recv []automata.Edge
				for _, be := range b.Edges {
					bf, _ := b.LocIndex(be.From)
					if bf == n.locs[bi] && be.Label == e.Label {
						recv = append(recv, be)
					}
				}
				if len(recv) == 0 {
					continue // component does not listen; stays put
				}
				var next [][]participant
				for _, combo := range combos {
					for _, be := range recv {
						withBe := append(append([]participant{}, combo...), participant{bi, be})
						next = append(next, withBe)
					}
				}
				combos = next
			}
			for _, combo := range combos {
				if s := c.fire(n, combo, e.Label); s != nil {
					out = append(out, s)
				}
			}
		}
	}
	return out
}

// fire computes the successor of n under the joint transition, or nil when
// the transition is disabled.
func (c *Checker) fire(n *node, parts []participant, label string) *node {
	z := n.zone.clone()
	for _, p := range parts {
		if !c.applyGuard(z, p.edge.Guard) {
			return nil
		}
	}
	locs := append([]int{}, n.locs...)
	for _, p := range parts {
		to, _ := c.net.Automata[p.automaton].LocIndex(p.edge.To)
		locs[p.automaton] = to
		for _, r := range p.edge.Resets {
			x, ok := c.clockIdx[r]
			if !ok {
				panic(fmt.Sprintf("mc: reset of unknown clock %q", r))
			}
			z.reset(x)
		}
	}
	if !c.applyGuard(z, c.invariants(locs)) {
		return nil
	}
	z.up()
	if !c.applyGuard(z, c.invariants(locs)) {
		return nil
	}
	z.extrapolate(c.k)
	return &node{locs: locs, zone: z, parent: n, via: label}
}

// CheckReachable explores the zone graph breadth-first and reports whether
// a state satisfying goal is reachable.
func (c *Checker) CheckReachable(goal func(locs []int) bool) (Result, error) {
	var res Result
	init := c.initial()
	if init == nil {
		return res, nil
	}
	passed := map[string][]*DBM{}
	store := func(n *node) bool {
		k := c.locKey(n.locs)
		for _, z := range passed[k] {
			if z.includes(n.zone) {
				return false
			}
		}
		passed[k] = append(passed[k], n.zone)
		res.Stats.ZonesStored++
		return true
	}
	queue := []*node{init}
	store(init)
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		res.Stats.StatesExplored++
		if c.MaxStates > 0 && res.Stats.StatesExplored > c.MaxStates {
			return res, fmt.Errorf("mc: state budget %d exceeded", c.MaxStates)
		}
		if goal(n.locs) {
			res.Reachable = true
			res.Witness = witness(n)
			return res, nil
		}
		for _, s := range c.successors(n) {
			res.Stats.Transitions++
			if store(s) {
				queue = append(queue, s)
			}
		}
	}
	return res, nil
}

// CheckErrorFree verifies the invariant "no component is in an error
// location" (A[] !err), the verdict PROPAS derives for pattern observers.
// It returns holds=false with the violating witness when an error location
// is reachable.
func (c *Checker) CheckErrorFree() (holds bool, witness []string, stats Stats, err error) {
	goal := func(locs []int) bool {
		for ai, a := range c.net.Automata {
			if a.Locations[locs[ai]].Error {
				return true
			}
		}
		return false
	}
	res, err := c.CheckReachable(goal)
	return !res.Reachable, res.Witness, res.Stats, err
}

// LocationReachable reports whether the named component can reach the
// named location.
func (c *Checker) LocationReachable(component, location string) (Result, error) {
	ci := -1
	for i, a := range c.net.Automata {
		if a.Name == component {
			ci = i
			break
		}
	}
	if ci < 0 {
		return Result{}, fmt.Errorf("mc: unknown component %q", component)
	}
	li, ok := c.net.Automata[ci].LocIndex(location)
	if !ok {
		return Result{}, fmt.Errorf("mc: unknown location %q in %q", location, component)
	}
	return c.CheckReachable(func(locs []int) bool { return locs[ci] == li })
}

func witness(n *node) []string {
	var rev []string
	for cur := n; cur != nil && cur.parent != nil; cur = cur.parent {
		rev = append(rev, cur.via)
	}
	out := make([]string, len(rev))
	for i := range rev {
		out[i] = rev[len(rev)-1-i]
	}
	return out
}
