package mc

import (
	"testing"

	"veridevops/internal/automata"
)

func TestBoundEncoding(t *testing.T) {
	if !(ltBound(5) < leBound(5)) {
		t.Error("x<5 must be tighter than x<=5")
	}
	if !(leBound(4) < ltBound(5)) {
		t.Error("x<=4 must be tighter than x<5")
	}
	if got := addBounds(leBound(3), leBound(4)); got != leBound(7) {
		t.Errorf("<=3 + <=4 = %s, want <=7", boundString(got))
	}
	if got := addBounds(ltBound(3), leBound(4)); got != ltBound(7) {
		t.Errorf("<3 + <=4 = %s, want <7", boundString(got))
	}
	if got := addBounds(infinity, leBound(1)); got != infinity {
		t.Error("inf + b must be inf")
	}
	if boundString(infinity) != "inf" || boundString(leBound(2)) != "<=2" || boundString(ltBound(2)) != "<2" {
		t.Error("boundString formatting wrong")
	}
}

func TestZeroZone(t *testing.T) {
	d := newDBM(2)
	d.close()
	if d.empty() {
		t.Fatal("zero zone must be non-empty")
	}
	// x1 == 0 in the zero zone: x1 - 0 <= 0 and 0 - x1 <= 0.
	if d.at(1, 0) != leBound(0) || d.at(0, 1) != leBound(0) {
		t.Error("zero zone does not pin clocks to 0")
	}
}

func TestUpAndConstrain(t *testing.T) {
	d := newDBM(1)
	d.up() // x in [0, inf)
	d.constrain(1, automata.OpGe, 5)
	d.constrain(1, automata.OpLe, 10)
	d.close()
	if d.empty() {
		t.Fatal("5 <= x <= 10 must be non-empty")
	}
	d.constrain(1, automata.OpLt, 5)
	d.close()
	if !d.empty() {
		t.Error("x >= 5 && x < 5 must be empty")
	}
}

func TestConstrainEq(t *testing.T) {
	d := newDBM(1)
	d.up()
	d.constrain(1, automata.OpEq, 7)
	d.close()
	if d.empty() {
		t.Fatal("x == 7 after delay must be non-empty")
	}
	if d.at(1, 0) != leBound(7) || d.at(0, 1) != leBound(-7) {
		t.Error("equality constraint not pinned")
	}
}

func TestReset(t *testing.T) {
	d := newDBM(2)
	d.up()
	d.constrain(1, automata.OpGe, 3)
	d.close()
	d.reset(2) // x2 := 0 while x1 >= 3
	if d.empty() {
		t.Fatal("reset zone must be non-empty")
	}
	// x2 is exactly 0.
	if d.at(2, 0) != leBound(0) || d.at(0, 2) != leBound(0) {
		t.Error("reset did not pin clock to 0")
	}
	// Difference x1 - x2 >= 3 preserved.
	if d.at(0, 1) > leBound(-3) {
		t.Errorf("lower bound on x1 lost: %s", boundString(d.at(0, 1)))
	}
}

func TestIncludes(t *testing.T) {
	big := newDBM(1)
	big.up()
	big.close()

	small := newDBM(1)
	small.up()
	small.constrain(1, automata.OpLe, 5)
	small.close()

	if !big.includes(small) {
		t.Error("unbounded zone must include bounded one")
	}
	if small.includes(big) {
		t.Error("bounded zone must not include unbounded one")
	}
	if !big.includes(big.clone()) {
		t.Error("zone must include its clone")
	}
}

func TestExtrapolation(t *testing.T) {
	d := newDBM(1)
	d.up()
	d.constrain(1, automata.OpGe, 100)
	d.close()
	d.extrapolate(10) // k = 10: lower bound beyond k is relaxed
	if d.empty() {
		t.Fatal("extrapolated zone must stay non-empty")
	}
	// After extrapolation the zone must include everything x > 10.
	probe := newDBM(1)
	probe.up()
	probe.constrain(1, automata.OpGe, 11)
	probe.close()
	if !d.includes(probe) {
		t.Error("extrapolation must relax bounds beyond k")
	}
}

func TestKeyStableAndDistinct(t *testing.T) {
	a := newDBM(1)
	a.up()
	a.close()
	b := newDBM(1)
	b.up()
	b.close()
	if a.key() != b.key() {
		t.Error("equal zones must share a key")
	}
	b.constrain(1, automata.OpLe, 3)
	b.close()
	if a.key() == b.key() {
		t.Error("different zones must have different keys")
	}
}

func TestDBMString(t *testing.T) {
	d := newDBM(1)
	d.close()
	if d.String() == "" {
		t.Error("String must render something")
	}
}
