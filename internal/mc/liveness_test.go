package mc

import (
	"testing"

	"veridevops/internal/automata"
)

func TestLeadsToHoldsOnRing(t *testing.T) {
	// Ring a,b,c,d: every a is inevitably followed by c.
	plant := automata.CyclicPlant("plant", 4, []string{"a", "b", "c", "d"}, 5)
	holds, stats, err := CheckLeadsToNetwork(automata.MustNetwork(plant), "a", "c")
	if err != nil {
		t.Fatal(err)
	}
	if !holds {
		t.Error("a --> c must hold on the ring")
	}
	if stats.StatesExplored == 0 {
		t.Error("no states explored")
	}
}

func TestLeadsToFailsWhenResponseMissing(t *testing.T) {
	plant := automata.CyclicPlant("plant", 4, []string{"a", "b", "c", "d"}, 5)
	holds, _, err := CheckLeadsToNetwork(automata.MustNetwork(plant), "a", "zz")
	if err != nil {
		t.Fatal(err)
	}
	if holds {
		t.Error("a --> zz must fail: zz is never emitted")
	}
}

func TestLeadsToFailsOnAvoidingBranch(t *testing.T) {
	// After a, the plant may loop on b forever, avoiding c.
	a := automata.New("plant")
	x := "x_p"
	inv := automata.Guard{{Clock: x, Op: automata.OpLe, Bound: 5}}
	a.AddLocation(automata.Location{Name: "s0", Invariant: inv})
	a.AddLocation(automata.Location{Name: "s1", Invariant: inv})
	step := func(from, to, label string) {
		a.AddEdge(automata.Edge{From: from, To: to, Label: label,
			Guard:  automata.Guard{{Clock: x, Op: automata.OpGe, Bound: 5}},
			Resets: []string{x}})
	}
	step("s0", "s1", "a")
	step("s1", "s1", "b") // may loop forever
	step("s1", "s0", "c") // or respond
	holds, _, err := CheckLeadsToNetwork(automata.MustNetwork(a), "a", "c")
	if err != nil {
		t.Fatal(err)
	}
	if holds {
		t.Error("a --> c must fail: the b self-loop avoids c forever")
	}
}

func TestLeadsToHoldsWhenBranchForcedToRespond(t *testing.T) {
	// Same shape, but the b-loop is removed: the only continuation is c.
	a := automata.New("plant")
	x := "x_p"
	inv := automata.Guard{{Clock: x, Op: automata.OpLe, Bound: 5}}
	a.AddLocation(automata.Location{Name: "s0", Invariant: inv})
	a.AddLocation(automata.Location{Name: "s1", Invariant: inv})
	step := func(from, to, label string) {
		a.AddEdge(automata.Edge{From: from, To: to, Label: label,
			Guard:  automata.Guard{{Clock: x, Op: automata.OpGe, Bound: 5}},
			Resets: []string{x}})
	}
	step("s0", "s1", "a")
	step("s1", "s0", "c")
	holds, _, err := CheckLeadsToNetwork(automata.MustNetwork(a), "a", "c")
	if err != nil {
		t.Fatal(err)
	}
	if !holds {
		t.Error("a --> c must hold: c is the only continuation")
	}
}

func TestLeadsToIdleStateIsCounterexample(t *testing.T) {
	// No invariant on s1: the system may idle forever after a, so the
	// response is not inevitable.
	a := automata.New("plant")
	x := "x_p"
	a.AddLocation(automata.Location{Name: "s0", Invariant: automata.Guard{{Clock: x, Op: automata.OpLe, Bound: 5}}})
	a.AddLocation(automata.Location{Name: "s1"}) // unbounded idling allowed
	a.AddEdge(automata.Edge{From: "s0", To: "s1", Label: "a",
		Guard: automata.Guard{{Clock: x, Op: automata.OpGe, Bound: 5}}, Resets: []string{x}})
	a.AddEdge(automata.Edge{From: "s1", To: "s0", Label: "c", Resets: []string{x}})
	holds, _, err := CheckLeadsToNetwork(automata.MustNetwork(a), "a", "c")
	if err != nil {
		t.Fatal(err)
	}
	if holds {
		t.Error("a --> c must fail: the system may idle in s1 forever")
	}
}

func TestLeadsToSameEvent(t *testing.T) {
	plant := automata.CyclicPlant("plant", 2, []string{"a", "b"}, 5)
	holds, _, err := CheckLeadsToNetwork(automata.MustNetwork(plant), "a", "a")
	if err != nil || !holds {
		t.Errorf("p --> p is trivially true: %v %v", holds, err)
	}
}

func TestLeadsToBudget(t *testing.T) {
	plant := automata.CyclicPlant("plant", 8, []string{"a", "b"}, 50)
	c := NewDiscreteChecker(automata.MustNetwork(plant))
	c.MaxStates = 3
	if _, _, err := c.CheckLeadsTo("a", "b"); err == nil {
		t.Error("budget exhaustion must error")
	}
}

// Cross-validation against the bounded observer: when the bounded response
// holds for some deadline, the unbounded leads-to must hold too.
func TestLeadsToConsistentWithBoundedObserver(t *testing.T) {
	plant := automata.CyclicPlant("plant", 4, []string{"a", "b", "c", "d"}, 10)
	net := automata.MustNetwork(plant, automata.ResponseTimedObserver("a", "c", 20))
	bounded, _, _, err := NewChecker(net).CheckErrorFree()
	if err != nil {
		t.Fatal(err)
	}
	plant2 := automata.CyclicPlant("plant", 4, []string{"a", "b", "c", "d"}, 10)
	unbounded, _, err := CheckLeadsToNetwork(automata.MustNetwork(plant2), "a", "c")
	if err != nil {
		t.Fatal(err)
	}
	if bounded && !unbounded {
		t.Error("bounded response implies unbounded leads-to")
	}
}
