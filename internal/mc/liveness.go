package mc

import (
	"fmt"

	"veridevops/internal/automata"
)

// Unbounded response ("p --> q") checking on the discrete-time semantics.
// The bounded patterns reduce to error-location reachability (observers),
// but the unbounded leads-to needs liveness: the property fails exactly
// when the system can reach a *pending lasso* — a state where p has
// occurred without a subsequent q, from which a cycle exists that never
// emits q. On the finite discrete-time graph (clocks capped beyond the
// maximal constant) this is decidable by cycle detection in the
// pending-restricted subgraph.
//
// Time-divergence note: states whose invariants permit unbounded delay
// have a delay self-loop in the capped graph; a pending such state is a
// genuine counterexample under the usual assumption that the environment
// may idle (matching the strong finite-trace semantics of internal/tctl).

// lnode is a liveness-graph node: discrete state + pending flag.
type lnode struct {
	locs    []int
	vals    []int64
	pending bool
}

// CheckLeadsTo verifies that every occurrence of event p is inevitably
// followed by an occurrence of event q. It returns holds=false when a
// pending lasso is reachable.
func (c *DiscreteChecker) CheckLeadsTo(p, q string) (holds bool, stats Stats, err error) {
	if p == q {
		return true, stats, nil // trivially served by the same event
	}
	// Phase 1: enumerate the reachable pending-annotated graph.
	locs := make([]int, len(c.net.Automata))
	for i, a := range c.net.Automata {
		li, _ := a.LocIndex(a.Initial)
		locs[i] = li
	}
	init := &lnode{locs: locs, vals: make([]int64, len(c.clocks))}
	if !c.invariantsHold(init.locs, init.vals) {
		return true, stats, nil
	}
	key := func(n *lnode) string {
		k := c.key(&dnode{locs: n.locs, vals: n.vals})
		if n.pending {
			return k + "P"
		}
		return k
	}
	index := map[string]int{key(init): 0}
	nodes := []*lnode{init}
	// adjacency within the pending subgraph (edges that keep pending).
	pendingAdj := map[int][]int{}
	queue := []int{0}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		n := nodes[cur]
		stats.StatesExplored++
		if c.MaxStates > 0 && stats.StatesExplored > c.MaxStates {
			return false, stats, fmt.Errorf("mc: liveness state budget %d exceeded", c.MaxStates)
		}
		push := func(succ *lnode) int {
			k := key(succ)
			id, ok := index[k]
			if !ok {
				id = len(nodes)
				index[k] = id
				nodes = append(nodes, succ)
				stats.ZonesStored++
				queue = append(queue, id)
			}
			return id
		}
		// Delay step.
		vals := make([]int64, len(n.vals))
		for i, v := range n.vals {
			if v < c.cap {
				v++
			}
			vals[i] = v
		}
		if c.invariantsHold(n.locs, vals) {
			stats.Transitions++
			id := push(&lnode{locs: n.locs, vals: vals, pending: n.pending})
			if n.pending {
				pendingAdj[cur] = append(pendingAdj[cur], id)
			}
		}
		// Action steps.
		for _, s := range c.dsuccessors(&dnode{locs: n.locs, vals: n.vals}) {
			stats.Transitions++
			label := s.via
			pending := n.pending
			switch label {
			case q:
				pending = false
			case p:
				pending = true
			}
			id := push(&lnode{locs: s.locs, vals: s.vals, pending: pending})
			if n.pending && pending {
				pendingAdj[cur] = append(pendingAdj[cur], id)
			}
		}
	}

	// Phase 2: cycle detection within the pending subgraph.
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := make([]int8, len(nodes))
	for start := range nodes {
		if !nodes[start].pending || color[start] != white {
			continue
		}
		// Iterative DFS with explicit post-processing.
		type frame struct {
			node int
			next int
		}
		frames := []frame{{node: start}}
		color[start] = grey
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			adj := pendingAdj[f.node]
			if f.next < len(adj) {
				succ := adj[f.next]
				f.next++
				switch color[succ] {
				case grey:
					return false, stats, nil // pending lasso found
				case white:
					color[succ] = grey
					frames = append(frames, frame{node: succ})
				}
				continue
			}
			color[f.node] = black
			frames = frames[:len(frames)-1]
		}
	}
	return true, stats, nil
}

// CheckLeadsToNetwork is a convenience wrapper building a discrete checker
// for the network and running CheckLeadsTo.
func CheckLeadsToNetwork(net *automata.Network, p, q string) (bool, Stats, error) {
	return NewDiscreteChecker(net).CheckLeadsTo(p, q)
}
