package mc

import (
	"fmt"
	"strings"

	"veridevops/internal/automata"
)

// DiscreteChecker is the ablation baseline for the zone-based checker: it
// explores the explicit discrete-time semantics where clocks advance in
// unit steps and are capped at k+1 (values beyond the maximal constant are
// indistinguishable). It decides the same reachability queries; the E4
// ablation benchmark compares its state counts and run time against DBMs.
type DiscreteChecker struct {
	net      *automata.Network
	clocks   []string
	clockIdx map[string]int // clock name -> slot (0-based)
	cap      int64

	MaxStates int
}

// NewDiscreteChecker prepares a discrete-time checker for the network.
func NewDiscreteChecker(net *automata.Network) *DiscreteChecker {
	clocks := net.Clocks()
	idx := make(map[string]int, len(clocks))
	for i, c := range clocks {
		idx[c] = i
	}
	return &DiscreteChecker{net: net, clocks: clocks, clockIdx: idx, cap: net.MaxConstant() + 1}
}

type dnode struct {
	locs   []int
	vals   []int64
	parent *dnode
	via    string
}

func (c *DiscreteChecker) key(n *dnode) string {
	var b strings.Builder
	for _, l := range n.locs {
		fmt.Fprintf(&b, "%d,", l)
	}
	b.WriteByte('|')
	for _, v := range n.vals {
		fmt.Fprintf(&b, "%d,", v)
	}
	return b.String()
}

func (c *DiscreteChecker) sat(vals []int64, g automata.Guard) bool {
	for _, con := range g {
		v := vals[c.clockIdx[con.Clock]]
		// A capped clock satisfies any lower-bound comparison with
		// constants <= k and violates upper bounds below the cap, which is
		// exact because guards never exceed the maximal constant.
		ok := false
		switch con.Op {
		case automata.OpLt:
			ok = v < con.Bound
		case automata.OpLe:
			ok = v <= con.Bound
		case automata.OpGt:
			ok = v > con.Bound
		case automata.OpGe:
			ok = v >= con.Bound
		case automata.OpEq:
			ok = v == con.Bound
		}
		if !ok {
			return false
		}
	}
	return true
}

func (c *DiscreteChecker) invariantsHold(locs []int, vals []int64) bool {
	for ai, a := range c.net.Automata {
		if !c.sat(vals, a.Locations[locs[ai]].Invariant) {
			return false
		}
	}
	return true
}

// CheckReachable explores the discrete-time state graph breadth-first.
func (c *DiscreteChecker) CheckReachable(goal func(locs []int) bool) (Result, error) {
	var res Result
	locs := make([]int, len(c.net.Automata))
	for i, a := range c.net.Automata {
		li, _ := a.LocIndex(a.Initial)
		locs[i] = li
	}
	init := &dnode{locs: locs, vals: make([]int64, len(c.clocks))}
	if !c.invariantsHold(init.locs, init.vals) {
		return res, nil
	}
	seen := map[string]struct{}{c.key(init): {}}
	queue := []*dnode{init}
	push := func(n *dnode) {
		k := c.key(n)
		if _, dup := seen[k]; dup {
			return
		}
		seen[k] = struct{}{}
		res.Stats.ZonesStored++
		queue = append(queue, n)
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		res.Stats.StatesExplored++
		if c.MaxStates > 0 && res.Stats.StatesExplored > c.MaxStates {
			return res, fmt.Errorf("mc: discrete state budget %d exceeded", c.MaxStates)
		}
		if goal(n.locs) {
			res.Reachable = true
			res.Witness = dwitness(n)
			return res, nil
		}
		// Delay step.
		vals := make([]int64, len(n.vals))
		for i, v := range n.vals {
			if v < c.cap {
				v++
			}
			vals[i] = v
		}
		if c.invariantsHold(n.locs, vals) {
			res.Stats.Transitions++
			push(&dnode{locs: n.locs, vals: vals, parent: n, via: "delay"})
		}
		// Action steps.
		for _, s := range c.dsuccessors(n) {
			res.Stats.Transitions++
			push(s)
		}
	}
	return res, nil
}

func (c *DiscreteChecker) dsuccessors(n *dnode) []*dnode {
	var out []*dnode
	for ai, a := range c.net.Automata {
		for _, e := range a.Edges {
			from, _ := a.LocIndex(e.From)
			if from != n.locs[ai] || !c.sat(n.vals, e.Guard) {
				continue
			}
			if e.Label == "" {
				out = append(out, c.dfire(n, []participant{{ai, e}}, "tau"))
				continue
			}
			if a.Observer {
				continue // receive-only: labeled edges never emit
			}
			combos := [][]participant{{{ai, e}}}
			for bi, b := range c.net.Automata {
				if bi == ai {
					continue
				}
				var recv []automata.Edge
				for _, be := range b.Edges {
					bf, _ := b.LocIndex(be.From)
					if bf == n.locs[bi] && be.Label == e.Label && c.sat(n.vals, be.Guard) {
						recv = append(recv, be)
					}
				}
				if len(recv) == 0 {
					continue
				}
				var next [][]participant
				for _, combo := range combos {
					for _, be := range recv {
						next = append(next, append(append([]participant{}, combo...), participant{bi, be}))
					}
				}
				combos = next
			}
			for _, combo := range combos {
				out = append(out, c.dfire(n, combo, e.Label))
			}
		}
	}
	// Filter successors whose target invariants fail.
	valid := out[:0]
	for _, s := range out {
		if s != nil && c.invariantsHold(s.locs, s.vals) {
			valid = append(valid, s)
		}
	}
	return valid
}

func (c *DiscreteChecker) dfire(n *dnode, parts []participant, label string) *dnode {
	locs := append([]int{}, n.locs...)
	vals := append([]int64{}, n.vals...)
	for _, p := range parts {
		to, _ := c.net.Automata[p.automaton].LocIndex(p.edge.To)
		locs[p.automaton] = to
		for _, r := range p.edge.Resets {
			vals[c.clockIdx[r]] = 0
		}
	}
	return &dnode{locs: locs, vals: vals, parent: n, via: label}
}

// CheckErrorFree mirrors Checker.CheckErrorFree for the discrete semantics.
func (c *DiscreteChecker) CheckErrorFree() (holds bool, witness []string, stats Stats, err error) {
	goal := func(locs []int) bool {
		for ai, a := range c.net.Automata {
			if a.Locations[locs[ai]].Error {
				return true
			}
		}
		return false
	}
	res, err := c.CheckReachable(goal)
	return !res.Reachable, res.Witness, res.Stats, err
}

func dwitness(n *dnode) []string {
	var rev []string
	for cur := n; cur != nil && cur.parent != nil; cur = cur.parent {
		rev = append(rev, cur.via)
	}
	out := make([]string, len(rev))
	for i := range rev {
		out[i] = rev[len(rev)-1-i]
	}
	return out
}
