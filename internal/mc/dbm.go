// Package mc is a zone-based model checker for the timed-automata networks
// of internal/automata: the stand-in for UPPAAL in the VeriDevOps
// reproduction. It decides reachability of observer error locations (and
// dually A[] invariants) using difference-bound matrices with
// k-extrapolation, plus an explicit discrete-time checker used as an
// ablation baseline.
package mc

import (
	"fmt"
	"math"

	"veridevops/internal/automata"
)

// bound encodes a DBM entry (v, strictness) as 2v+1 for "<= v" and 2v for
// "< v"; smaller encodings are tighter constraints. infinity is the absent
// constraint.
type bound = int64

const infinity bound = math.MaxInt64 / 4

func ltBound(v int64) bound { return 2 * v }
func leBound(v int64) bound { return 2*v + 1 }

// addBounds is the tropical addition of two bounds.
func addBounds(a, b bound) bound {
	if a == infinity || b == infinity {
		return infinity
	}
	// sum of values, strict unless both non-strict
	return (a &^ 1) + (b &^ 1) + (a & 1 & b)
}

func boundString(b bound) string {
	if b == infinity {
		return "inf"
	}
	op := "<"
	if b&1 == 1 {
		op = "<="
	}
	return fmt.Sprintf("%s%d", op, b>>1)
}

// DBM is a difference-bound matrix over n clocks plus the reference clock
// at index 0: entry (i,j) bounds x_i - x_j. A DBM in canonical form is
// obtained with close().
type DBM struct {
	n int // clocks + 1
	m []bound
}

// newDBM returns the zero zone (all clocks exactly 0) over n real clocks.
func newDBM(n int) *DBM {
	d := &DBM{n: n + 1, m: make([]bound, (n+1)*(n+1))}
	for i := range d.m {
		d.m[i] = leBound(0)
	}
	return d
}

func (d *DBM) at(i, j int) bound     { return d.m[i*d.n+j] }
func (d *DBM) set(i, j int, b bound) { d.m[i*d.n+j] = b }

// clone returns a deep copy.
func (d *DBM) clone() *DBM {
	c := &DBM{n: d.n, m: make([]bound, len(d.m))}
	copy(c.m, d.m)
	return c
}

// close canonicalises the matrix with Floyd-Warshall.
func (d *DBM) close() {
	n := d.n
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			dik := d.at(i, k)
			if dik == infinity {
				continue
			}
			for j := 0; j < n; j++ {
				if s := addBounds(dik, d.at(k, j)); s < d.at(i, j) {
					d.set(i, j, s)
				}
			}
		}
	}
}

// empty reports whether the (canonical) zone is empty.
func (d *DBM) empty() bool { return d.at(0, 0) < leBound(0) }

// up removes the upper bounds on all clocks: time elapse.
func (d *DBM) up() {
	for i := 1; i < d.n; i++ {
		d.set(i, 0, infinity)
	}
}

// constrain intersects the zone with an atomic constraint on clock index x
// (1-based; index into the DBM). It leaves the matrix non-canonical.
func (d *DBM) constrain(x int, op automata.Op, c int64) {
	apply := func(i, j int, b bound) {
		if b < d.at(i, j) {
			d.set(i, j, b)
		}
	}
	switch op {
	case automata.OpLt:
		apply(x, 0, ltBound(c))
	case automata.OpLe:
		apply(x, 0, leBound(c))
	case automata.OpGt:
		apply(0, x, ltBound(-c))
	case automata.OpGe:
		apply(0, x, leBound(-c))
	case automata.OpEq:
		apply(x, 0, leBound(c))
		apply(0, x, leBound(-c))
	}
}

// reset sets clock index x to zero (assumes canonical input, keeps
// canonical form).
func (d *DBM) reset(x int) {
	for j := 0; j < d.n; j++ {
		d.set(x, j, d.at(0, j))
		d.set(j, x, d.at(j, 0))
	}
	d.set(x, x, leBound(0))
}

// extrapolate applies k-normalisation: bounds beyond the maximal constant k
// are abstracted away, guaranteeing a finite zone graph.
func (d *DBM) extrapolate(k int64) {
	up := leBound(k)
	low := ltBound(-k)
	changed := false
	for i := 0; i < d.n; i++ {
		for j := 0; j < d.n; j++ {
			if i == j {
				continue
			}
			b := d.at(i, j)
			if b == infinity {
				continue
			}
			if b > up {
				d.set(i, j, infinity)
				changed = true
			} else if b < low {
				d.set(i, j, low)
				changed = true
			}
		}
	}
	if changed {
		d.close()
	}
}

// includes reports whether d contains other (every bound of d is at least
// as loose). Both must be canonical.
func (d *DBM) includes(other *DBM) bool {
	for i := range d.m {
		if other.m[i] > d.m[i] {
			return false
		}
	}
	return true
}

// key returns a hashable representation of the canonical matrix.
func (d *DBM) key() string {
	buf := make([]byte, 0, len(d.m)*8)
	for _, b := range d.m {
		for s := 0; s < 64; s += 8 {
			buf = append(buf, byte(b>>s))
		}
	}
	return string(buf)
}

// String renders the non-trivial bounds, for debugging and witnesses.
func (d *DBM) String() string {
	s := "{"
	first := true
	for i := 0; i < d.n; i++ {
		for j := 0; j < d.n; j++ {
			if i == j || d.at(i, j) == infinity {
				continue
			}
			if i == 0 && j == 0 {
				continue
			}
			if !first {
				s += ", "
			}
			first = false
			s += fmt.Sprintf("x%d-x%d %s", i, j, boundString(d.at(i, j)))
		}
	}
	return s + "}"
}
