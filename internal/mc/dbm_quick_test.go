package mc

import (
	"math/rand"
	"testing"

	"veridevops/internal/automata"
)

// Property-based tests over random constraint sequences, exercising the
// DBM invariants the checker relies on.

func randomZone(rng *rand.Rand, clocks, ops int) *DBM {
	d := newDBM(clocks)
	d.up()
	for i := 0; i < ops; i++ {
		x := 1 + rng.Intn(clocks)
		op := []automata.Op{automata.OpLt, automata.OpLe, automata.OpGe, automata.OpGt}[rng.Intn(4)]
		d.constrain(x, op, rng.Int63n(20))
		if rng.Intn(3) == 0 {
			d.close()
			if !d.empty() && rng.Intn(2) == 0 {
				d.reset(1 + rng.Intn(clocks))
			}
		}
	}
	d.close()
	return d
}

func TestDBMIncludesReflexive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		z := randomZone(rng, 1+rng.Intn(3), rng.Intn(6))
		if !z.includes(z) {
			t.Fatal("a zone must include itself")
		}
		if !z.includes(z.clone()) {
			t.Fatal("a zone must include its clone")
		}
	}
}

func TestDBMConstrainShrinks(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 100; i++ {
		clocks := 1 + rng.Intn(3)
		z := randomZone(rng, clocks, rng.Intn(5))
		if z.empty() {
			continue
		}
		smaller := z.clone()
		smaller.constrain(1+rng.Intn(clocks), automata.OpLe, rng.Int63n(20))
		smaller.close()
		if !z.includes(smaller) {
			t.Fatalf("constraining must shrink the zone (iteration %d)", i)
		}
	}
}

func TestDBMUpGrows(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 100; i++ {
		z := randomZone(rng, 1+rng.Intn(3), rng.Intn(6))
		if z.empty() {
			continue
		}
		delayed := z.clone()
		delayed.up()
		delayed.close()
		if !delayed.includes(z) {
			t.Fatal("time elapse must grow the zone")
		}
	}
}

func TestDBMExtrapolationGrows(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 100; i++ {
		z := randomZone(rng, 1+rng.Intn(3), rng.Intn(6))
		if z.empty() {
			continue
		}
		ex := z.clone()
		ex.extrapolate(5)
		if !ex.includes(z) {
			t.Fatalf("extrapolation must over-approximate (iteration %d):\n  z=%s\n  ex=%s", i, z, ex)
		}
		// Idempotence.
		again := ex.clone()
		again.extrapolate(5)
		if ex.key() != again.key() {
			t.Fatal("extrapolation must be idempotent")
		}
	}
}

func TestDBMResetPins(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 100; i++ {
		clocks := 2 + rng.Intn(2)
		z := randomZone(rng, clocks, rng.Intn(6))
		if z.empty() {
			continue
		}
		x := 1 + rng.Intn(clocks)
		z.reset(x)
		if z.at(x, 0) != leBound(0) || z.at(0, x) != leBound(0) {
			t.Fatal("reset clock must be exactly 0")
		}
		if z.empty() {
			t.Fatal("reset must not empty a non-empty zone")
		}
	}
}
