// Package extract implements the rule-based formalisation step of
// VeriDevOps WP2: mapping free-form natural-language security requirements
// onto specification patterns (internal/tctl). It first tries the strict
// ReSA boilerplates (internal/resa) and falls back to keyword heuristics,
// reporting a confidence level with each classification — the automated
// "extraction, formalization and verification of security requirements from
// natural language" pipeline the DATE 2021 paper positions as WP2's core.
package extract

import (
	"regexp"
	"strconv"
	"strings"

	"veridevops/internal/resa"
	"veridevops/internal/sps"
	"veridevops/internal/tctl"
)

// Confidence grades how the classification was obtained.
type Confidence int

// Confidence levels.
const (
	// None: no rule matched; the sentence needs manual formalisation.
	None Confidence = iota
	// Heuristic: a keyword rule matched free text.
	Heuristic
	// Boilerplate: the sentence parsed as a strict ReSA boilerplate.
	Boilerplate
)

func (c Confidence) String() string {
	switch c {
	case Boilerplate:
		return "boilerplate"
	case Heuristic:
		return "heuristic"
	default:
		return "none"
	}
}

// Extraction is the result of formalising one sentence.
type Extraction struct {
	Source     string
	Pattern    tctl.Pattern
	Formula    tctl.Formula
	Confidence Confidence
	// Rule names the heuristic that fired (empty for boilerplate hits).
	Rule string
}

var (
	deadlineRe = regexp.MustCompile(`(?i)\bwithin\s+(\d+)\s*(ms|milliseconds?|s|seconds?|minutes?|min)\b`)
	neverRe    = regexp.MustCompile(`(?i)\b(never|must not|shall not|may not|is prohibited)\b`)
	alwaysRe   = regexp.MustCompile(`(?i)\b(always|at all times|continuously|globally)\b`)
	eventualRe = regexp.MustCompile(`(?i)\b(eventually|at some point|finally)\b`)
	afterRe    = regexp.MustCompile(`(?i)\bafter\s+(.+?),\s*(.+?)\s+until\s+(.+)$`)
	whileRe    = regexp.MustCompile(`(?i)^while\s+(.+?),\s*(.+)$`)
	respondRe  = regexp.MustCompile(`(?i)\b(when|whenever|if|upon|on)\b\s+(.+?),\s*(.+)$`)
	beforeRe   = regexp.MustCompile(`(?i)^(.+?)\s+must\s+(?:be\s+)?precede[ds]?(?:\s+by)?\s+(.+)$`)
	requireRe  = regexp.MustCompile(`(?i)(.+?)\s+requires?\s+(?:prior\s+)?(.+)$`)
)

func deadlineOf(s string) (tctl.Bound, string) {
	m := deadlineRe.FindStringSubmatch(s)
	if m == nil {
		return tctl.Unbounded, s
	}
	n, err := strconv.ParseInt(m[1], 10, 64)
	if err != nil {
		return tctl.Unbounded, s
	}
	mult := int64(1)
	switch strings.ToLower(m[2])[0] {
	case 's':
		mult = 1000
	}
	if strings.HasPrefix(strings.ToLower(m[2]), "min") {
		mult = 60000
	}
	return tctl.Within(n * mult), deadlineRe.ReplaceAllString(s, "")
}

func prop(phrase string) tctl.Prop {
	return tctl.Prop{Name: resa.Slug(phrase)}
}

// stripModal removes leading subjects/modals from a clause so the
// proposition slug names the behaviour rather than the boilerplate glue.
func stripModal(s string) string {
	s = strings.TrimSpace(s)
	s = strings.TrimSuffix(s, ".")
	for _, pre := range []string{"then ", "the system shall ", "the system must ", "it shall ", "it must ", "shall ", "must ", "the "} {
		ls := strings.ToLower(s)
		if strings.HasPrefix(ls, pre) {
			s = s[len(pre):]
			ls = strings.ToLower(s)
		}
		_ = ls
	}
	return strings.TrimSpace(s)
}

// Extract formalises one sentence.
func Extract(sentence string) Extraction {
	ex := Extraction{Source: sentence}
	s := strings.TrimSpace(sentence)
	if s == "" {
		return ex
	}

	// 1a. Exact catalogue grammar: the SPS structured-English sentences of
	// the pattern catalogue parse with full confidence.
	if res, err := sps.Parse(s); err == nil {
		ex.Pattern, ex.Formula, ex.Confidence = res.Pattern, res.Formula, Boilerplate
		ex.Rule = "sps:" + res.Template
		return ex
	}

	// 1b. Strict boilerplate. A ubiquitous response opening with
	// "eventually" is an existence obligation, which the boilerplate
	// grammar has no kind for; route it to the heuristic layer instead.
	if r, err := resa.Parse(s); err == nil &&
		!(r.Kind == resa.Ubiquitous && strings.HasPrefix(strings.ToLower(r.Response), "eventually")) {
		if p, err := r.ToPattern(); err == nil {
			if f, err := p.Compile(); err == nil {
				ex.Pattern, ex.Formula, ex.Confidence = p, f, Boilerplate
				return ex
			}
		}
	}

	// 2. Keyword heuristics, most specific first.
	bound, stripped := deadlineOf(strings.TrimSuffix(s, "."))

	if m := afterRe.FindStringSubmatch(stripped); m != nil {
		p := tctl.Pattern{
			Behaviour: tctl.Universality, Scope: tctl.AfterUntil,
			Q: prop(m[1]), P: prop(stripModal(m[2])), R: prop(m[3]),
		}
		return heuristic(ex, p, "after-until")
	}
	if m := whileRe.FindStringSubmatch(stripped); m != nil {
		cond := prop(m[1])
		p := tctl.Pattern{
			Behaviour: tctl.Universality, Scope: tctl.AfterUntil,
			Q: cond, P: prop(stripModal(m[2])), R: tctl.Not{F: cond},
		}
		return heuristic(ex, p, "while-universality")
	}
	if neverRe.MatchString(stripped) {
		body := neverRe.ReplaceAllString(stripped, "")
		p := tctl.Pattern{Behaviour: tctl.Absence, Scope: tctl.Globally, P: prop(stripModal(body))}
		return heuristic(ex, p, "absence")
	}
	if m := respondRe.FindStringSubmatch(stripped); m != nil {
		p := tctl.Pattern{
			Behaviour: tctl.Response, Scope: tctl.Globally,
			P: prop(m[2]), S: prop(stripModal(m[3])), B: bound,
		}
		return heuristic(ex, p, "response")
	}
	if m := beforeRe.FindStringSubmatch(stripped); m != nil {
		p := tctl.Pattern{Behaviour: tctl.Precedence, Scope: tctl.Globally,
			P: prop(stripModal(m[1])), S: prop(stripModal(m[2]))}
		return heuristic(ex, p, "precedence")
	}
	if m := requireRe.FindStringSubmatch(stripped); m != nil {
		p := tctl.Pattern{Behaviour: tctl.Precedence, Scope: tctl.Globally,
			P: prop(stripModal(m[1])), S: prop(stripModal(m[2]))}
		return heuristic(ex, p, "precedence")
	}
	if eventualRe.MatchString(stripped) {
		body := eventualRe.ReplaceAllString(stripped, "")
		p := tctl.Pattern{Behaviour: tctl.Existence, Scope: tctl.Globally, P: prop(stripModal(body)), B: bound}
		return heuristic(ex, p, "existence")
	}
	if alwaysRe.MatchString(stripped) {
		body := alwaysRe.ReplaceAllString(stripped, "")
		p := tctl.Pattern{Behaviour: tctl.Universality, Scope: tctl.Globally, P: prop(stripModal(body))}
		return heuristic(ex, p, "universality")
	}
	if strings.Contains(strings.ToLower(stripped), " shall ") || strings.Contains(strings.ToLower(stripped), " must ") {
		// Plain imperative with no scope keywords: universal obligation.
		p := tctl.Pattern{Behaviour: tctl.Universality, Scope: tctl.Globally, P: prop(stripModal(stripped))}
		return heuristic(ex, p, "imperative-universality")
	}
	return ex
}

func heuristic(ex Extraction, p tctl.Pattern, rule string) Extraction {
	f, err := p.Compile()
	if err != nil {
		return ex
	}
	ex.Pattern, ex.Formula, ex.Confidence, ex.Rule = p, f, Heuristic, rule
	return ex
}

// ExtractAll formalises a list of sentences.
func ExtractAll(sentences []string) []Extraction {
	out := make([]Extraction, 0, len(sentences))
	for _, s := range sentences {
		out = append(out, Extract(s))
	}
	return out
}

// SplitSentences is a minimal sentence splitter for requirement documents:
// it splits on '.', '!' and '?' terminators while keeping decimal numbers
// and common abbreviations intact.
func SplitSentences(text string) []string {
	var out []string
	var cur strings.Builder
	runes := []rune(text)
	for i := 0; i < len(runes); i++ {
		r := runes[i]
		cur.WriteRune(r)
		if r == '.' || r == '!' || r == '?' {
			// keep decimals like "4.2" together
			if r == '.' && i+1 < len(runes) && runes[i+1] >= '0' && runes[i+1] <= '9' {
				continue
			}
			s := strings.TrimSpace(cur.String())
			if s != "" && s != "." {
				out = append(out, s)
			}
			cur.Reset()
		}
	}
	if s := strings.TrimSpace(cur.String()); s != "" {
		out = append(out, s)
	}
	return out
}

// LabelledSentence pairs a sentence with its expected pattern class, the
// ground truth of the E8 accuracy experiment.
type LabelledSentence struct {
	Text      string
	Behaviour tctl.Behaviour
	Scope     tctl.Scope
}

// Accuracy scores extraction against labelled ground truth: the fraction
// of sentences classified with the right behaviour and scope.
func Accuracy(corpus []LabelledSentence) float64 {
	if len(corpus) == 0 {
		return 1
	}
	ok := 0
	for _, ls := range corpus {
		ex := Extract(ls.Text)
		if ex.Confidence != None && ex.Pattern.Behaviour == ls.Behaviour && ex.Pattern.Scope == ls.Scope {
			ok++
		}
	}
	return float64(ok) / float64(len(corpus))
}

// AccuracyPerBehaviour breaks Accuracy down by expected behaviour class.
func AccuracyPerBehaviour(corpus []LabelledSentence) map[tctl.Behaviour]float64 {
	hit := map[tctl.Behaviour]int{}
	total := map[tctl.Behaviour]int{}
	for _, ls := range corpus {
		total[ls.Behaviour]++
		ex := Extract(ls.Text)
		if ex.Confidence != None && ex.Pattern.Behaviour == ls.Behaviour && ex.Pattern.Scope == ls.Scope {
			hit[ls.Behaviour]++
		}
	}
	out := map[tctl.Behaviour]float64{}
	for b, n := range total {
		out[b] = float64(hit[b]) / float64(n)
	}
	return out
}

// BenchmarkCorpus returns the labelled sentence corpus used by the E8
// experiment: security requirements phrased the way the VeriDevOps case
// studies write them, spanning every behaviour class.
func BenchmarkCorpus() []LabelledSentence {
	mk := func(b tctl.Behaviour, sc tctl.Scope, texts ...string) []LabelledSentence {
		out := make([]LabelledSentence, 0, len(texts))
		for _, t := range texts {
			out = append(out, LabelledSentence{Text: t, Behaviour: b, Scope: sc})
		}
		return out
	}
	var corpus []LabelledSentence
	corpus = append(corpus, mk(tctl.Universality, tctl.Globally,
		"The gateway shall encrypt all traffic.",
		"The firewall must drop packets from blacklisted hosts at all times.",
		"Audit logging shall always remain enabled.",
		"The session token must be signed.",
		"The boot loader shall verify signatures.",
		"The service must run with least privilege.",
		"Disk volumes shall be encrypted.",
		"The system shall enforce the password policy.",
		"TLS 1.2 or higher shall be used.",
		"Security patches must be applied.",
	)...)
	corpus = append(corpus, mk(tctl.Absence, tctl.Globally,
		"The server shall not store plaintext passwords.",
		"The device must not expose a telnet service.",
		"Debug interfaces must never be reachable from the internet.",
		"The application shall not log credit card numbers.",
		"Root login over SSH is prohibited.",
		"The kernel must not load unsigned modules.",
		"The agent shall not transmit credentials in clear text.",
		"Anonymous uploads must never be accepted.",
		"The backup job must not run with domain administrator rights.",
		"The container shall not mount the host filesystem.",
	)...)
	corpus = append(corpus, mk(tctl.Response, tctl.Globally,
		"When an intrusion is detected, the monitor shall raise an alarm within 5 seconds.",
		"When a login fails three times, the account shall be locked.",
		"If a checksum fails, then the loader shall abort the update.",
		"Upon certificate expiry, the broker shall reject new sessions.",
		"When tampering is sensed, the device shall zeroize its keys within 100 ms.",
		"If the audit disk fills up, the system shall alert the operator.",
		"When a session is idle for 15 minutes, the terminal shall lock.",
		"Whenever malware is quarantined, the agent shall notify the console within 2 seconds.",
		"If an unauthorized change is found, the verifier shall restore the baseline.",
		"On power restoration, the controller shall re-run the integrity check.",
	)...)
	corpus = append(corpus, mk(tctl.Precedence, tctl.Globally,
		"Privileged access requires prior multifactor authentication.",
		"Configuration changes require prior approval.",
		"Remote execution requires prior authentication.",
		"Database access must be preceded by authorization.",
		"Firmware installation requires prior signature verification.",
		"Key export requires prior dual control.",
		"Session establishment must be preceded by certificate validation.",
		"Account deletion requires prior confirmation.",
		"Log deletion requires prior archival.",
		"Production deployment requires prior security review.",
	)...)
	corpus = append(corpus, mk(tctl.Existence, tctl.Globally,
		"The scanner shall eventually complete a full system sweep.",
		"The rotation job shall eventually archive every log segment.",
		"A vulnerability report shall eventually be produced.",
		"The revoked certificate shall eventually be purged from all caches.",
		"Every quarantined file shall eventually be reviewed.",
		"The backup shall eventually be replicated off-site.",
		"The incident ticket shall eventually be closed.",
		"All pending patches shall eventually be installed.",
		"The audit trail shall eventually be sealed.",
		"The key ceremony shall eventually be completed.",
	)...)
	corpus = append(corpus, mk(tctl.Universality, tctl.AfterUntil,
		"After maintenance begins, diagnostics shall stay enabled until maintenance ends.",
		"After lockdown is declared, external ports shall remain closed until the all-clear is issued.",
		"After an incident is raised, enhanced logging shall stay active until the incident is closed.",
		"After a breach is confirmed, network isolation shall remain in force until forensics completes.",
		"After degraded mode starts, write access shall stay disabled until recovery finishes.",
		"While maintenance mode is active, the controller shall reject remote commands.",
		"While the vault is open, the camera shall record.",
		"While an update is in progress, the watchdog shall suppress restarts.",
		"While the debugger is attached, secrets shall stay masked.",
		"While the alarm is active, the door shall remain locked.",
	)...)
	return corpus
}
