package extract

import (
	"strings"
	"testing"

	"veridevops/internal/tctl"
)

func TestExtractBoilerplateConfidence(t *testing.T) {
	ex := Extract("When an intrusion is detected, the monitor shall raise an alarm within 5 seconds.")
	if ex.Confidence != Boilerplate {
		t.Errorf("Confidence = %v, want boilerplate", ex.Confidence)
	}
	if ex.Pattern.Behaviour != tctl.Response || ex.Pattern.Scope != tctl.Globally {
		t.Errorf("classified as %v/%v", ex.Pattern.Behaviour, ex.Pattern.Scope)
	}
	if !ex.Pattern.B.Valid || ex.Pattern.B.D != 5000 {
		t.Errorf("bound = %+v, want 5000", ex.Pattern.B)
	}
	if ex.Formula == nil {
		t.Fatal("formula missing")
	}
	if _, err := tctl.Parse(ex.Formula.String()); err != nil {
		t.Errorf("formula must re-parse: %v", err)
	}
}

func TestExtractHeuristicAbsence(t *testing.T) {
	ex := Extract("Debug interfaces must never be reachable from the internet.")
	if ex.Confidence != Heuristic || ex.Rule != "absence" {
		t.Errorf("got %v/%s", ex.Confidence, ex.Rule)
	}
	if ex.Pattern.Behaviour != tctl.Absence {
		t.Errorf("behaviour = %v", ex.Pattern.Behaviour)
	}
}

func TestExtractHeuristicResponseWithDeadline(t *testing.T) {
	ex := Extract("Upon certificate expiry, the broker shall reject new sessions within 2 seconds.")
	if ex.Confidence != Heuristic || ex.Rule != "response" {
		t.Fatalf("got %v/%s", ex.Confidence, ex.Rule)
	}
	if !ex.Pattern.B.Valid || ex.Pattern.B.D != 2000 {
		t.Errorf("bound = %+v", ex.Pattern.B)
	}
}

func TestExtractPrecedence(t *testing.T) {
	for _, s := range []string{
		"Privileged access requires prior multifactor authentication.",
		"Database access must be preceded by authorization.",
	} {
		ex := Extract(s)
		if ex.Pattern.Behaviour != tctl.Precedence {
			t.Errorf("%q -> %v (%s)", s, ex.Pattern.Behaviour, ex.Rule)
		}
	}
}

func TestExtractExistence(t *testing.T) {
	ex := Extract("The backup shall eventually be replicated off-site.")
	if ex.Pattern.Behaviour != tctl.Existence {
		t.Errorf("behaviour = %v", ex.Pattern.Behaviour)
	}
}

func TestExtractAfterUntil(t *testing.T) {
	ex := Extract("After lockdown is declared, external ports shall remain closed until the all-clear is issued.")
	if ex.Pattern.Behaviour != tctl.Universality || ex.Pattern.Scope != tctl.AfterUntil {
		t.Errorf("got %v/%v (%s)", ex.Pattern.Behaviour, ex.Pattern.Scope, ex.Rule)
	}
}

func TestExtractWhileHeuristic(t *testing.T) {
	ex := Extract("While the debugger is attached, secrets shall stay masked.")
	if ex.Pattern.Scope != tctl.AfterUntil || ex.Rule != "while-universality" {
		t.Errorf("got %v/%v (%s)", ex.Pattern.Behaviour, ex.Pattern.Scope, ex.Rule)
	}
}

func TestExtractSPSGrammar(t *testing.T) {
	ex := Extract("Globally, it is always the case that if intrusion holds, then alarm eventually holds within 50 time units.")
	if ex.Confidence != Boilerplate || ex.Rule != "sps:global-response-timed" {
		t.Fatalf("got %v/%s", ex.Confidence, ex.Rule)
	}
	if ex.Formula.String() != "intrusion -->[<=50] alarm" {
		t.Errorf("formula = %q", ex.Formula)
	}
}

func TestExtractNoMatch(t *testing.T) {
	for _, s := range []string{"", "hello world", "lorem ipsum dolor"} {
		ex := Extract(s)
		if ex.Confidence != None {
			t.Errorf("%q should not classify, got %v/%s", s, ex.Confidence, ex.Rule)
		}
	}
}

func TestExtractAllPreservesOrder(t *testing.T) {
	exs := ExtractAll([]string{
		"The gateway shall encrypt all traffic.",
		"garbage",
	})
	if len(exs) != 2 || exs[0].Confidence == None || exs[1].Confidence != None {
		t.Errorf("ExtractAll = %+v", exs)
	}
}

func TestSplitSentences(t *testing.T) {
	text := "The system shall comply with section 4.2 of the standard. It must not fail! Does it log? Yes"
	got := SplitSentences(text)
	if len(got) != 4 {
		t.Fatalf("SplitSentences = %d pieces: %q", len(got), got)
	}
	if !strings.Contains(got[0], "4.2") {
		t.Errorf("decimal split: %q", got[0])
	}
	if got[3] != "Yes" {
		t.Errorf("trailing fragment lost: %q", got[3])
	}
	if len(SplitSentences("")) != 0 {
		t.Error("empty text should yield no sentences")
	}
}

func TestBenchmarkCorpusAccuracy(t *testing.T) {
	corpus := BenchmarkCorpus()
	if len(corpus) < 60 {
		t.Fatalf("corpus has %d sentences, want >= 60", len(corpus))
	}
	acc := Accuracy(corpus)
	if acc < 0.9 {
		per := AccuracyPerBehaviour(corpus)
		t.Errorf("accuracy = %.2f, want >= 0.9 (per-behaviour: %v)", acc, per)
		for _, ls := range corpus {
			ex := Extract(ls.Text)
			if ex.Confidence == None || ex.Pattern.Behaviour != ls.Behaviour || ex.Pattern.Scope != ls.Scope {
				t.Logf("MISS %q -> %v/%v via %s", ls.Text, ex.Pattern.Behaviour, ex.Pattern.Scope, ex.Rule)
			}
		}
	}
}

func TestAccuracyDegenerate(t *testing.T) {
	if Accuracy(nil) != 1 {
		t.Error("empty corpus accuracy should be 1")
	}
}

func TestAccuracyPerBehaviourKeys(t *testing.T) {
	per := AccuracyPerBehaviour(BenchmarkCorpus())
	for _, b := range []tctl.Behaviour{tctl.Universality, tctl.Absence, tctl.Response, tctl.Precedence, tctl.Existence} {
		if _, ok := per[b]; !ok {
			t.Errorf("missing behaviour %v in breakdown", b)
		}
	}
}

func TestConfidenceString(t *testing.T) {
	if None.String() != "none" || Heuristic.String() != "heuristic" || Boilerplate.String() != "boilerplate" {
		t.Error("confidence names wrong")
	}
}

func TestEveryExtractionFormulaParses(t *testing.T) {
	for _, ls := range BenchmarkCorpus() {
		ex := Extract(ls.Text)
		if ex.Confidence == None {
			continue
		}
		if _, err := tctl.Parse(ex.Formula.String()); err != nil {
			t.Errorf("%q: formula %q does not parse: %v", ls.Text, ex.Formula.String(), err)
		}
	}
}
