// Package catalogue renders the patterns-catalogue reference document from
// the implementation itself — the Go analogue of VeriDevOps deliverable
// D2.7, whose Annex 1 documents the RQCODE concepts, the temporal patterns
// and the STIG instantiations. Because the document is generated from the
// registered types, it cannot drift from the code.
package catalogue

import (
	"fmt"
	"strings"

	"veridevops/internal/host"
	"veridevops/internal/stig"
	"veridevops/internal/temporal"
	"veridevops/internal/trace"
)

// Markdown renders the complete catalogue.
func Markdown() string {
	var b strings.Builder
	b.WriteString("# RQCODE Patterns Catalogue\n\n")
	b.WriteString("Generated from the implementation; the Go rendering of the D2.7 patterns catalogue.\n\n")
	concepts(&b)
	temporalPatterns(&b)
	ubuntu(&b)
	win10(&b)
	return b.String()
}

func concepts(b *strings.Builder) {
	b.WriteString("## Package core (rqcode.concepts)\n\n")
	b.WriteString("| Concept | Kind | Purpose |\n|---|---|---|\n")
	rows := [][3]string{
		{"Checkable", "interface", "requirements checked programmatically through `Check() CheckStatus` (PASS / FAIL / INCOMPLETE)"},
		{"Enforceable", "interface", "requirements enforced on the hosting environment through `Enforce() EnforcementStatus` (SUCCESS / FAILURE / INCOMPLETE)"},
		{"Requirement", "interface", "STIG-finding-shaped metadata: finding ID, rule, severity, check text, fix text, ..."},
		{"CheckableEnforceableRequirement", "interface", "the combination registered in catalogues"},
		{"Finding", "struct", "value implementation of Requirement for embedding"},
		{"Catalog", "struct", "registry + audit/enforce runner producing compliance reports"},
	}
	for _, r := range rows {
		fmt.Fprintf(b, "| `%s` | %s | %s |\n", r[0], r[1], r[2])
	}
	b.WriteString("\n")
}

// temporalPatterns documents each pattern through a throwaway instance, so
// descriptions and TCTL templates come from the code paths users run.
func temporalPatterns(b *strings.Builder) {
	b.WriteString("## Package temporal (rqcode.patterns.temporal)\n\n")
	clk := temporal.NewSimClock()
	opt := temporal.Options{Clock: clk, Period: 10, Boundary: 10}
	probe := func(n string) temporal.Probe {
		return temporal.BoolProbe(n, func() bool { return true })
	}
	entries := []struct {
		name string
		m    temporal.Monitor
	}{
		{"GlobalUniversality", temporal.NewGlobalUniversality(probe("P"), opt)},
		{"Eventually", temporal.NewEventually(probe("P"), opt)},
		{"GlobalResponseTimed", temporal.NewGlobalResponseTimed(probe("P"), probe("S"), trace.Time(50), opt)},
		{"GlobalResponseUntil", temporal.NewGlobalResponseUntil(probe("P"), probe("Q"), probe("R"), opt)},
		{"GlobalUniversalityTimed", temporal.NewGlobalUniversalityTimed(probe("P"), trace.Time(50), opt)},
		{"AfterUntilUniversality", temporal.NewAfterUntilUniversality(probe("Q"), probe("P"), probe("R"), opt)},
	}
	b.WriteString("| Pattern | Meaning | TCTL |\n|---|---|---|\n")
	for _, e := range entries {
		fmt.Fprintf(b, "| `%s` | %s | `%s` |\n", e.name, e.m.String(), e.m.TCTL())
	}
	b.WriteString("\nAll patterns are driven by `MonitoringLoop`: a polling service with precondition, invariant, exit-condition and postcondition hooks, a decreasing variant (`Boundary`) and a configurable period.\n\n")
}

func ubuntu(b *strings.Builder) {
	b.WriteString("## Package stig: Ubuntu 18.04 (rqcode.stigs.ubuntu)\n\n")
	b.WriteString("Reusable patterns: `UbuntuPackagePattern` (package present/absent), `UbuntuConfigPattern` (key=value in a config file), `UbuntuServicePattern` (service active/disabled).\n\n")
	h := host.NewLinux()
	cat := stig.UbuntuCatalog(h)
	b.WriteString("| Finding | Severity | Summary |\n|---|---|---|\n")
	for _, r := range cat.All() {
		fmt.Fprintf(b, "| `%s` | %s | %s |\n", r.FindingID(), r.Severity(), firstSentence(r.Description()))
	}
	b.WriteString("\n")
}

func win10(b *strings.Builder) {
	b.WriteString("## Package stig: Windows 10 (rqcode.stigs.win10)\n\n")
	b.WriteString("Pattern hierarchy: `AuditPolicyRequirement` drives the audit policy through the emulated `auditpol` text interface; category/subcategory refinements (`AccountManagement`, `LogonLogoff`, `PrivilegeUse`, ...) fix the taxonomy for the leaf findings. `RegistryRequirement` covers registry-valued findings.\n\n")
	w := host.NewWindows10()
	guide := stig.Windows10SecurityTechnicalImplementationGuide{Host: w}
	b.WriteString("| Finding | Category | Subcategory | Required setting |\n|---|---|---|---|\n")
	for _, r := range guide.AllSTIGs() {
		ap := r.(*stig.AuditPolicyRequirement)
		fmt.Fprintf(b, "| `%s` | %s | %s | %s |\n",
			ap.FindingID(), ap.GetCategory(), ap.GetSubcategory(), ap.GetInclusionSetting())
	}
	b.WriteString("\n")
}

func firstSentence(s string) string {
	if i := strings.IndexByte(s, '.'); i > 0 {
		return s[:i+1]
	}
	return s
}
