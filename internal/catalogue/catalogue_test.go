package catalogue

import (
	"strings"
	"testing"
)

func TestMarkdownCoversEverything(t *testing.T) {
	doc := Markdown()

	// Concepts.
	for _, want := range []string{
		"# RQCODE Patterns Catalogue",
		"`Checkable`", "`Enforceable`", "`CheckableEnforceableRequirement`", "`Catalog`",
	} {
		if !strings.Contains(doc, want) {
			t.Errorf("catalogue missing %q", want)
		}
	}

	// All six temporal patterns with their TCTL.
	for _, want := range []string{
		"GlobalUniversality", "Eventually", "GlobalResponseTimed",
		"GlobalResponseUntil", "GlobalUniversalityTimed", "AfterUntilUniversality",
		"`A[] P`", "`A<> P`", "P -->[<=50] S",
	} {
		if !strings.Contains(doc, want) {
			t.Errorf("catalogue missing temporal entry %q", want)
		}
	}

	// All 8 Ubuntu findings.
	for _, id := range []string{
		"V-219157", "V-219158", "V-219161", "V-219177",
		"V-219304", "V-219318", "V-219319", "V-219343",
	} {
		if !strings.Contains(doc, id) {
			t.Errorf("catalogue missing Ubuntu finding %s", id)
		}
	}

	// All 6 Windows findings with their taxonomy.
	for _, want := range []string{
		"V-63447", "V-63449", "V-63463", "V-63467", "V-63483", "V-63487",
		"Sensitive Privilege Use", "User Account Management", "Logon/Logoff",
	} {
		if !strings.Contains(doc, want) {
			t.Errorf("catalogue missing Windows entry %q", want)
		}
	}
}

func TestMarkdownIsDeterministic(t *testing.T) {
	if Markdown() != Markdown() {
		t.Error("catalogue generation must be deterministic")
	}
}

func TestFirstSentence(t *testing.T) {
	if firstSentence("One. Two.") != "One." {
		t.Error("firstSentence wrong")
	}
	if firstSentence("no terminator") != "no terminator" {
		t.Error("firstSentence should pass through")
	}
}
