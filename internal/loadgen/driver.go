package loadgen

import (
	"fmt"
	"time"

	"veridevops/internal/core"
	"veridevops/internal/fleet"
	"veridevops/internal/telemetry"
)

// The load driver: replays the churn stream through the token bucket
// while the fleet evaluates it — batch mode re-sweeps the coordinator
// every SweepEvery; push mode feeds a fleet.Streamer that re-runs only
// the checks each event's state key affects, flushing every Window —
// and measures change→verdict detection latency per event.
//
// Time is virtual — a plain time.Duration offset from replay start. The
// bucket computes each event's admission instant arithmetically and a
// sweep or flush is treated as atomic at the current virtual instant, so
// the detection latency of an event admitted at t and picked up at
// instant v is exactly v−t — bounded by SweepEvery in sweep mode and by
// Window in push mode, which is the whole point of the streaming
// evaluator. Everything downstream of the seed is deterministic; the
// wall clock is only read to report real replay throughput.

// DriverOptions parameterizes one load replay.
type DriverOptions struct {
	// Duration is the virtual replay length; SweepEvery the virtual
	// interval between incremental sweeps (default Duration/10). In push
	// mode SweepEvery is the fallback full-sweep interval — the safety
	// net for state the index cannot localise.
	Duration   time.Duration
	SweepEvery time.Duration
	// Rate is the offered churn load in events per virtual second;
	// Burst the token-bucket burst (default 1).
	Rate  float64
	Burst int
	// Shards/Workers configure each sweep (see fleet.Options).
	Shards  int
	Workers int
	// Push selects streaming evaluation: events mark hosts dirty through
	// EventLog subscriptions and a fleet.Streamer flushes the coalesced
	// deltas every Window, with a fallback sweep every SweepEvery.
	Push bool
	// Window is the push-mode coalescing window (default SweepEvery/10).
	Window time.Duration
	// Metrics, when non-nil, receives load.* counters and the
	// load.detect latency samples.
	Metrics *telemetry.Metrics
	// Trace, when non-nil, instruments every sweep and flush with spans
	// (sweep→shard→host, flush→delta). Attach a store via
	// telemetry.WithSink to keep the replay's traces queryable — the
	// straggler-search hook behind vdo-load -slowest.
	Trace *telemetry.Tracer
}

// LoadStats is the outcome of one replay.
type LoadStats struct {
	// Hosts is the fleet size when the replay ended (joins and leaves
	// move it); Down how many members were unreachable at the end.
	Hosts int
	Down  int

	// Events counts applied churn events; Skipped draws that found no
	// eligible target; Drift the subset of applied events that broke
	// compliance. Joins/Leaves/Outages/Restores break out membership and
	// connectivity events.
	Events   int
	Skipped  int
	Drift    int
	Joins    int
	Leaves   int
	Outages  int
	Restores int

	// Detected counts events whose verdict arrived (the samples under
	// Detect); Orphaned events whose host left before a sweep saw them;
	// Pending events still awaiting a verdict when the replay ended.
	Detected int
	Orphaned int
	Pending  int

	// Sweeps is how many incremental sweeps ran (the priming full sweep
	// excluded) — in push mode, the fallback sweeps; HostsReaudited how
	// many per-host audits executed across them; CacheReplays how many
	// were served from the incremental cache.
	Sweeps         int
	HostsReaudited int
	CacheReplays   int

	// Push-mode counters (zero in sweep mode; the priming flush is
	// excluded throughout). Flushes counts coalescing windows that
	// evaluated at least one dirty host; DeltaHosts the per-flush host
	// evaluations; ChecksEvaluated/ChecksExecuted the catalogue entries
	// the deltas resolved respectively actually executed (dedup replays
	// subtracted). ChecksPerEvent = ChecksEvaluated/Events is the
	// O(changed keys) headline: it must sit far below the catalogue
	// size. Alarms/Repairs count violation episodes the live view opened
	// and closed.
	Mode            string
	Window          time.Duration
	Flushes         int
	DeltaHosts      int
	ChecksEvaluated int
	ChecksExecuted  int
	ChecksPerEvent  float64
	Alarms          int
	Repairs         int

	// VirtualDuration is the replayed virtual time; OfferedRate the
	// bucket rate; AchievedRate applied events per virtual second.
	VirtualDuration time.Duration
	OfferedRate     float64
	AchievedRate    float64

	// ReplayWall is the real elapsed time of the whole replay (sweeps
	// included); RealEventsPerSec applied events per real second — the
	// harness's throughput figure.
	ReplayWall       time.Duration
	RealEventsPerSec float64

	// Detect summarizes change→verdict detection latency on the virtual
	// clock: how long an admitted event waited until a sweep produced a
	// verdict for its host.
	Detect telemetry.QuantileStats
}

// Run replays churn against the fleet. Sweep mode (the default) primes
// the coordinator with one full sweep at virtual instant 0 (not counted
// in the stats), then each SweepEvery tick admits the bucket's due
// events, applies them, and re-sweeps incrementally. Push mode
// (DriverOptions.Push) instead flushes a fleet.Streamer every Window —
// admitting the identical event stream, so the two modes are directly
// comparable on the same seed — with a fallback sweep every SweepEvery.
func Run(f *Fleet, c *Churn, opts DriverOptions) (LoadStats, error) {
	if opts.Duration <= 0 {
		return LoadStats{}, fmt.Errorf("loadgen: driver duration %v, need > 0", opts.Duration)
	}
	if opts.SweepEvery <= 0 {
		opts.SweepEvery = opts.Duration / 10
		if opts.SweepEvery <= 0 {
			opts.SweepEvery = opts.Duration
		}
	}
	if opts.Push {
		return runPush(f, c, opts)
	}
	return runSweep(f, c, opts)
}

// admitUpTo drains the bucket's due events up to virtual instant vnow,
// applying each through the churn engine and recording it in st and
// pending. onJoin/onLeave, when non-nil, observe membership changes (the
// push driver wires and unwires the streamer there). admitted is the
// last admission instant, threaded between calls.
func admitUpTo(c *Churn, bucket *TokenBucket, vnow, admitted time.Duration,
	st *LoadStats, pending map[string][]time.Duration,
	onJoin, onLeave func(name string)) time.Duration {
	for {
		at := bucket.When(admitted)
		if at > vnow {
			return admitted
		}
		bucket.Take(at)
		admitted = at
		ev, ok := c.Step()
		if !ok {
			st.Skipped++
			continue
		}
		st.Events++
		if ev.Drift {
			st.Drift++
		}
		switch ev.Kind {
		case HostJoin:
			st.Joins++
			if onJoin != nil {
				onJoin(ev.Host)
			}
		case HostLeave:
			st.Leaves++
		case HostDown:
			st.Outages++
		case HostUp:
			st.Restores++
		}
		if ev.Kind == HostLeave {
			// The member is gone: its verdict never arrives.
			st.Orphaned += len(pending[ev.Host])
			delete(pending, ev.Host)
			if onLeave != nil {
				onLeave(ev.Host)
			}
			continue
		}
		pending[ev.Host] = append(pending[ev.Host], at)
	}
}

// resolvePending delivers verdicts for one host's pending events at
// virtual instant vnow, observing each latency.
func resolvePending(pending map[string][]time.Duration, name string,
	vnow time.Duration, detect *telemetry.Quantiles, m *telemetry.Metrics, st *LoadStats) {
	times := pending[name]
	if len(times) == 0 {
		return
	}
	for _, t0 := range times {
		lat := vnow - t0
		detect.Observe(lat)
		m.Sample("load.detect", lat)
	}
	st.Detected += len(times)
	delete(pending, name)
}

// finishStats fills the end-of-replay roll-up shared by both modes.
func finishStats(st *LoadStats, f *Fleet, opts DriverOptions,
	pending map[string][]time.Duration, vend time.Duration,
	start time.Time, detect *telemetry.Quantiles) {
	for _, times := range pending {
		st.Pending += len(times)
	}
	st.Hosts = f.Size()
	st.Down = f.DownCount()
	st.VirtualDuration = vend
	st.OfferedRate = opts.Rate
	if s := vend.Seconds(); s > 0 {
		st.AchievedRate = float64(st.Events) / s
	}
	st.ReplayWall = time.Since(start)
	if s := st.ReplayWall.Seconds(); s > 0 {
		st.RealEventsPerSec = float64(st.Events) / s
	}
	st.Detect = detect.Snapshot()

	m := opts.Metrics
	m.Add("load.events", int64(st.Events))
	m.Add("load.events.skipped", int64(st.Skipped))
	m.Add("load.events.drift", int64(st.Drift))
	m.Add("load.events.orphaned", int64(st.Orphaned))
	m.Add("load.events.pending", int64(st.Pending))
	m.Add("load.sweeps", int64(st.Sweeps))
	m.Add("load.hosts.reaudited", int64(st.HostsReaudited))
	m.Add("load.hosts.cache-replays", int64(st.CacheReplays))
	m.SetGauge("load.hosts", float64(st.Hosts))
	m.SetGauge("load.rate.virtual", st.AchievedRate)
	m.SetGauge("load.rate.real", st.RealEventsPerSec)
}

// runSweep is the batch path: admit, sweep, repeat. Detection latency is
// bounded by SweepEvery — the floor push mode exists to break.
func runSweep(f *Fleet, c *Churn, opts DriverOptions) (LoadStats, error) {
	bucket, err := NewTokenBucket(opts.Rate, opts.Burst)
	if err != nil {
		return LoadStats{}, err
	}
	sweepOpts := fleet.Options{
		Mode:        core.CheckOnly,
		Shards:      opts.Shards,
		Workers:     opts.Workers,
		Incremental: true,
		Trace:       opts.Trace,
	}

	start := time.Now() // real clock: throughput reporting only
	coord := fleet.NewCoordinator()
	coord.Sweep(f.Targets(), sweepOpts) // prime the cache at vnow = 0

	detect := telemetry.NewQuantilesCap(1 << 16)
	// pending maps host name -> virtual admission times of its events
	// still awaiting a verdict.
	pending := map[string][]time.Duration{}
	st := LoadStats{Mode: "sweep"}

	admitted := time.Duration(0) // last admission instant
	vend := time.Duration(0)     // last sweep instant actually replayed
	for vnow := opts.SweepEvery; vnow <= opts.Duration; vnow += opts.SweepEvery {
		vend = vnow
		admitted = admitUpTo(c, bucket, vnow, admitted, &st, pending, nil, nil)

		// Sweep at virtual instant vnow; any executed (non-cached) host
		// audit delivers the verdicts for that host's pending events.
		rep, _ := coord.Sweep(f.Targets(), sweepOpts)
		st.Sweeps++
		for _, hr := range rep.Hosts {
			if hr.FromCache {
				st.CacheReplays++
				continue
			}
			st.HostsReaudited++
			resolvePending(pending, hr.Target, vnow, detect, opts.Metrics, &st)
		}
	}

	finishStats(&st, f, opts, pending, vend, start, detect)
	return st, nil
}

// runPush is the streaming path: every admitted event marks its host
// dirty through the EventLog subscription, and a fleet.Streamer flush at
// each Window tick re-runs only the affected checks, delivering verdicts
// with latency bounded by Window instead of SweepEvery. A fallback sweep
// still runs every SweepEvery as the safety net for state the dependency
// index cannot localise; on a healthy index it is all cache replays,
// because the streamer's deltas keep the incremental cache stamped.
func runPush(f *Fleet, c *Churn, opts DriverOptions) (LoadStats, error) {
	if opts.Window <= 0 {
		opts.Window = opts.SweepEvery / 10
		if opts.Window <= 0 {
			opts.Window = opts.SweepEvery
		}
	}
	bucket, err := NewTokenBucket(opts.Rate, opts.Burst)
	if err != nil {
		return LoadStats{}, err
	}
	sweepOpts := fleet.Options{
		Mode:        core.CheckOnly,
		Shards:      opts.Shards,
		Workers:     opts.Workers,
		Incremental: true,
		Trace:       opts.Trace,
	}

	start := time.Now() // real clock: throughput reporting only
	coord := fleet.NewCoordinator()
	s := fleet.NewStreamer(coord, fleet.StreamOptions{
		Mode:    core.CheckOnly,
		Shards:  opts.Shards,
		Workers: opts.Workers,
		Dedup:   true,
		Metrics: opts.Metrics,
		Trace:   opts.Trace,
	})
	for _, h := range f.Hosts() {
		s.Watch(h.Target(), h.Linux.Log())
	}
	s.Flush(0) // prime the verdict baseline at vnow = 0 (not counted)

	detect := telemetry.NewQuantilesCap(1 << 16)
	pending := map[string][]time.Duration{}
	st := LoadStats{Mode: "push", Window: opts.Window}

	onJoin := func(name string) {
		if h, ok := f.Get(name); ok {
			s.Watch(h.Target(), h.Linux.Log())
		}
	}
	onLeave := func(name string) { s.Unwatch(name) }

	admitted := time.Duration(0)
	vend := time.Duration(0)
	nextSweep := opts.SweepEvery
	for vnow := opts.Window; vnow <= opts.Duration; vnow += opts.Window {
		vend = vnow
		admitted = admitUpTo(c, bucket, vnow, admitted, &st, pending, onJoin, onLeave)

		fr := s.Flush(vnow)
		if len(fr.Hosts) > 0 {
			st.Flushes++
			st.DeltaHosts += len(fr.Hosts)
			st.ChecksEvaluated += fr.ChecksEvaluated
			st.ChecksExecuted += fr.ChecksExecuted
			st.Alarms += len(fr.Alarms)
			st.Repairs += fr.Repairs
			for _, d := range fr.Hosts {
				// Every flushed host's live view is now current — a
				// zero-check re-stamp is a verdict too (the change
				// provably touched nothing) — so its events resolve.
				resolvePending(pending, d.Host, vnow, detect, opts.Metrics, &st)
			}
		}

		if vnow >= nextSweep {
			nextSweep += opts.SweepEvery
			rep, _ := coord.Sweep(f.Targets(), sweepOpts)
			st.Sweeps++
			for _, hr := range rep.Hosts {
				if hr.FromCache {
					st.CacheReplays++
					continue
				}
				st.HostsReaudited++
				// A fallback-executed host caught state the stream
				// missed; resolve whatever is still waiting.
				resolvePending(pending, hr.Target, vnow, detect, opts.Metrics, &st)
			}
		}
	}

	finishStats(&st, f, opts, pending, vend, start, detect)
	if st.Events > 0 {
		st.ChecksPerEvent = float64(st.ChecksEvaluated) / float64(st.Events)
	}
	m := opts.Metrics
	m.Add("load.flushes", int64(st.Flushes))
	m.Add("load.delta-hosts", int64(st.DeltaHosts))
	m.Add("load.checks.evaluated", int64(st.ChecksEvaluated))
	m.Add("load.checks.executed", int64(st.ChecksExecuted))
	m.Add("load.alarms", int64(st.Alarms))
	m.Add("load.repairs", int64(st.Repairs))
	m.SetGauge("load.checks-per-event", st.ChecksPerEvent)
	return st, nil
}
