package loadgen

import (
	"fmt"
	"time"

	"veridevops/internal/core"
	"veridevops/internal/fleet"
	"veridevops/internal/telemetry"
)

// The load driver: replays the churn stream through the token bucket
// while incremental sweeps run on the fleet coordinator, and measures
// change→verdict detection latency per event.
//
// Time is virtual — a plain time.Duration offset from replay start. The
// bucket computes each event's admission instant arithmetically and a
// sweep is treated as atomic at the current virtual instant, so the
// detection latency of an event admitted at t and picked up by the
// sweep at instant v is exactly v−t ∈ (0, SweepEvery]. Everything
// downstream of the seed is deterministic; the wall clock is only read
// to report real replay throughput.

// DriverOptions parameterizes one load replay.
type DriverOptions struct {
	// Duration is the virtual replay length; SweepEvery the virtual
	// interval between incremental sweeps (default Duration/10).
	Duration   time.Duration
	SweepEvery time.Duration
	// Rate is the offered churn load in events per virtual second;
	// Burst the token-bucket burst (default 1).
	Rate  float64
	Burst int
	// Shards/Workers configure each sweep (see fleet.Options).
	Shards  int
	Workers int
	// Metrics, when non-nil, receives load.* counters and the
	// load.detect latency samples.
	Metrics *telemetry.Metrics
}

// LoadStats is the outcome of one replay.
type LoadStats struct {
	// Hosts is the fleet size when the replay ended (joins and leaves
	// move it); Down how many members were unreachable at the end.
	Hosts int
	Down  int

	// Events counts applied churn events; Skipped draws that found no
	// eligible target; Drift the subset of applied events that broke
	// compliance. Joins/Leaves/Outages/Restores break out membership and
	// connectivity events.
	Events   int
	Skipped  int
	Drift    int
	Joins    int
	Leaves   int
	Outages  int
	Restores int

	// Detected counts events whose verdict arrived (the samples under
	// Detect); Orphaned events whose host left before a sweep saw them;
	// Pending events still awaiting a verdict when the replay ended.
	Detected int
	Orphaned int
	Pending  int

	// Sweeps is how many incremental sweeps ran (the priming full sweep
	// excluded); HostsReaudited how many per-host audits executed across
	// them; CacheReplays how many were served from the incremental cache.
	Sweeps         int
	HostsReaudited int
	CacheReplays   int

	// VirtualDuration is the replayed virtual time; OfferedRate the
	// bucket rate; AchievedRate applied events per virtual second.
	VirtualDuration time.Duration
	OfferedRate     float64
	AchievedRate    float64

	// ReplayWall is the real elapsed time of the whole replay (sweeps
	// included); RealEventsPerSec applied events per real second — the
	// harness's throughput figure.
	ReplayWall       time.Duration
	RealEventsPerSec float64

	// Detect summarizes change→verdict detection latency on the virtual
	// clock: how long an admitted event waited until a sweep produced a
	// verdict for its host.
	Detect telemetry.QuantileStats
}

// Run replays churn against the fleet while sweeping it incrementally.
// The fleet is primed with one full sweep at virtual instant 0 (not
// counted in the stats), then each SweepEvery tick admits the bucket's
// due events, applies them, and sweeps.
func Run(f *Fleet, c *Churn, opts DriverOptions) (LoadStats, error) {
	if opts.Duration <= 0 {
		return LoadStats{}, fmt.Errorf("loadgen: driver duration %v, need > 0", opts.Duration)
	}
	if opts.SweepEvery <= 0 {
		opts.SweepEvery = opts.Duration / 10
		if opts.SweepEvery <= 0 {
			opts.SweepEvery = opts.Duration
		}
	}
	bucket, err := NewTokenBucket(opts.Rate, opts.Burst)
	if err != nil {
		return LoadStats{}, err
	}
	sweepOpts := fleet.Options{
		Mode:        core.CheckOnly,
		Shards:      opts.Shards,
		Workers:     opts.Workers,
		Incremental: true,
	}

	start := time.Now() // real clock: throughput reporting only
	coord := fleet.NewCoordinator()
	coord.Sweep(f.Targets(), sweepOpts) // prime the cache at vnow = 0

	detect := telemetry.NewQuantilesCap(1 << 16)
	// pending maps host name -> virtual admission times of its events
	// still awaiting a verdict.
	pending := map[string][]time.Duration{}
	var st LoadStats

	admitted := time.Duration(0) // last admission instant
	vend := time.Duration(0)     // last sweep instant actually replayed
	for vnow := opts.SweepEvery; ; vnow += opts.SweepEvery {
		if vnow > opts.Duration {
			break
		}
		vend = vnow
		// Admit every event the bucket releases up to this sweep instant.
		for {
			at := bucket.When(admitted)
			if at > vnow {
				break
			}
			bucket.Take(at)
			admitted = at
			ev, ok := c.Step()
			if !ok {
				st.Skipped++
				continue
			}
			st.Events++
			if ev.Drift {
				st.Drift++
			}
			switch ev.Kind {
			case HostJoin:
				st.Joins++
			case HostLeave:
				st.Leaves++
			case HostDown:
				st.Outages++
			case HostUp:
				st.Restores++
			}
			if ev.Kind == HostLeave {
				// The member is gone: its verdict never arrives.
				st.Orphaned += len(pending[ev.Host])
				delete(pending, ev.Host)
				continue
			}
			pending[ev.Host] = append(pending[ev.Host], at)
		}

		// Sweep at virtual instant vnow; any executed (non-cached) host
		// audit delivers the verdicts for that host's pending events.
		rep, _ := coord.Sweep(f.Targets(), sweepOpts)
		st.Sweeps++
		for _, hr := range rep.Hosts {
			if hr.FromCache {
				st.CacheReplays++
				continue
			}
			st.HostsReaudited++
			times := pending[hr.Target]
			if len(times) == 0 {
				continue
			}
			for _, t0 := range times {
				lat := vnow - t0
				detect.Observe(lat)
				opts.Metrics.Sample("load.detect", lat)
			}
			st.Detected += len(times)
			delete(pending, hr.Target)
		}
	}

	for _, times := range pending {
		st.Pending += len(times)
	}
	st.Hosts = f.Size()
	st.Down = f.DownCount()
	st.VirtualDuration = vend
	st.OfferedRate = opts.Rate
	if s := vend.Seconds(); s > 0 {
		st.AchievedRate = float64(st.Events) / s
	}
	st.ReplayWall = time.Since(start)
	if s := st.ReplayWall.Seconds(); s > 0 {
		st.RealEventsPerSec = float64(st.Events) / s
	}
	st.Detect = detect.Snapshot()

	m := opts.Metrics
	m.Add("load.events", int64(st.Events))
	m.Add("load.events.skipped", int64(st.Skipped))
	m.Add("load.events.drift", int64(st.Drift))
	m.Add("load.events.orphaned", int64(st.Orphaned))
	m.Add("load.events.pending", int64(st.Pending))
	m.Add("load.sweeps", int64(st.Sweeps))
	m.Add("load.hosts.reaudited", int64(st.HostsReaudited))
	m.Add("load.hosts.cache-replays", int64(st.CacheReplays))
	m.SetGauge("load.hosts", float64(st.Hosts))
	m.SetGauge("load.rate.virtual", st.AchievedRate)
	m.SetGauge("load.rate.real", st.RealEventsPerSec)
	return st, nil
}
