// Package loadgen is the mega-fleet load harness: it synthesizes
// 10k–1M simulated hosts from a declarative topology spec, replays a
// seeded churn stream against them through a token-bucket rate limiter,
// and drives continuous incremental sweeps on the fleet coordinator
// while measuring change→verdict detection latency per event — the
// scale harness behind cmd/vdo-load and BENCH_load.json.
//
// A topology spec describes the fleet as weighted host classes. Each
// class carries weighted package/service/config-file distributions plus
// cardinality knobs (how many of each a host of that class gets, how
// many distinct versions a package cycles through), so a small spec
// fans out into an arbitrarily large but statistically shaped fleet.
// Synthesis, churn and replay are all deterministic in one seed: the
// same spec, size and seed produce byte-identical event streams and
// detection-latency percentiles on the virtual clock, which is what
// lets BENCH_load.json act as a regression record.
package loadgen

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
)

// PackageDist is one weighted package in a host class. Versions is the
// cardinality knob: how many distinct versions ("1.0" .. "1.<n-1>") the
// package cycles through under upgrade/downgrade churn.
type PackageDist struct {
	Name     string `json:"name"`
	Weight   int    `json:"weight"`
	Versions int    `json:"versions,omitempty"`
}

// ServiceDist is one weighted service in a host class.
type ServiceDist struct {
	Name   string `json:"name"`
	Weight int    `json:"weight"`
}

// ConfigDist is one weighted configuration file in a host class. Keys is
// the cardinality knob: how many distinct "key-00".."key-NN" entries the
// file holds and churn edits.
type ConfigDist struct {
	Path   string `json:"path"`
	Weight int    `json:"weight"`
	Keys   int    `json:"keys,omitempty"`
}

// HostClass is one weighted host shape: web tier, database tier, edge
// box. A synthesized host of this class starts from the hardened STIG
// baseline and layers PackagesPerHost/ServicesPerHost/ConfigKeysPerHost
// weighted picks from the class distributions on top.
type HostClass struct {
	Name   string `json:"name"`
	Weight int    `json:"weight"`

	Packages        []PackageDist `json:"packages,omitempty"`
	PackagesPerHost int           `json:"packages_per_host,omitempty"`

	Services        []ServiceDist `json:"services,omitempty"`
	ServicesPerHost int           `json:"services_per_host,omitempty"`

	ConfigFiles       []ConfigDist `json:"config_files,omitempty"`
	ConfigKeysPerHost int          `json:"config_keys_per_host,omitempty"`

	// DriftedFraction of this class's hosts are born non-compliant
	// (seeded compliance-breaking mutations applied after provisioning),
	// so the first full sweep already has findings to report.
	DriftedFraction float64 `json:"drifted_fraction,omitempty"`
}

// Topology is the whole fleet spec: weighted host classes plus the
// churn mix the replay draws event kinds from (zero value: DefaultMix).
type Topology struct {
	Classes []HostClass `json:"classes"`
	Mix     ChurnMix    `json:"mix,omitempty"`
}

// Validate reports the first structural problem with the spec.
func (t Topology) Validate() error {
	if len(t.Classes) == 0 {
		return fmt.Errorf("loadgen: topology has no host classes")
	}
	total := 0
	seen := map[string]bool{}
	for i, c := range t.Classes {
		if c.Name == "" {
			return fmt.Errorf("loadgen: class %d has no name", i)
		}
		if seen[c.Name] {
			return fmt.Errorf("loadgen: duplicate class %q", c.Name)
		}
		seen[c.Name] = true
		if c.Weight < 0 {
			return fmt.Errorf("loadgen: class %q has negative weight", c.Name)
		}
		total += c.Weight
		if c.DriftedFraction < 0 || c.DriftedFraction > 1 {
			return fmt.Errorf("loadgen: class %q drifted_fraction %v outside [0,1]", c.Name, c.DriftedFraction)
		}
		if c.PackagesPerHost > 0 && len(c.Packages) == 0 {
			return fmt.Errorf("loadgen: class %q wants %d packages per host but has no package distribution", c.Name, c.PackagesPerHost)
		}
		if c.ServicesPerHost > 0 && len(c.Services) == 0 {
			return fmt.Errorf("loadgen: class %q wants %d services per host but has no service distribution", c.Name, c.ServicesPerHost)
		}
		if c.ConfigKeysPerHost > 0 && len(c.ConfigFiles) == 0 {
			return fmt.Errorf("loadgen: class %q wants %d config keys per host but has no config-file distribution", c.Name, c.ConfigKeysPerHost)
		}
	}
	if total <= 0 {
		return fmt.Errorf("loadgen: topology class weights sum to %d, need > 0", total)
	}
	if err := t.Mix.validate(); err != nil {
		return err
	}
	return nil
}

// ParseTopology decodes a JSON topology spec and validates it. Unknown
// fields are rejected so a typoed knob fails loudly instead of silently
// shaping the fleet differently.
func ParseTopology(r io.Reader) (Topology, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var t Topology
	if err := dec.Decode(&t); err != nil {
		return Topology{}, fmt.Errorf("loadgen: parse topology: %w", err)
	}
	if err := t.Validate(); err != nil {
		return Topology{}, err
	}
	return t, nil
}

// DefaultTopology is the built-in three-tier spec cmd/vdo-load uses when
// no -topology file is given: a package-heavy web tier, a config-heavy
// database tier and a lean edge tier, with 2% of web and db hosts born
// drifted.
func DefaultTopology() Topology {
	pkgs := func(prefix string, n, versions int) []PackageDist {
		out := make([]PackageDist, n)
		for i := range out {
			out[i] = PackageDist{
				Name:     fmt.Sprintf("%s-pkg-%02d", prefix, i),
				Weight:   1 + (n-i)/2, // mildly head-heavy
				Versions: versions,
			}
		}
		return out
	}
	svcs := func(prefix string, n int) []ServiceDist {
		out := make([]ServiceDist, n)
		for i := range out {
			out[i] = ServiceDist{Name: fmt.Sprintf("%s-svc-%02d", prefix, i), Weight: 1 + n - i}
		}
		return out
	}
	cfgs := func(prefix string, n, keys int) []ConfigDist {
		out := make([]ConfigDist, n)
		for i := range out {
			out[i] = ConfigDist{Path: fmt.Sprintf("/etc/%s/conf-%02d", prefix, i), Weight: 1, Keys: keys}
		}
		return out
	}
	return Topology{
		Classes: []HostClass{
			{
				Name: "web", Weight: 6,
				Packages: pkgs("web", 24, 4), PackagesPerHost: 12,
				Services: svcs("web", 8), ServicesPerHost: 4,
				ConfigFiles: cfgs("web", 4, 8), ConfigKeysPerHost: 6,
				DriftedFraction: 0.02,
			},
			{
				Name: "db", Weight: 3,
				Packages: pkgs("db", 12, 6), PackagesPerHost: 8,
				Services: svcs("db", 4), ServicesPerHost: 2,
				ConfigFiles: cfgs("db", 8, 16), ConfigKeysPerHost: 12,
				DriftedFraction: 0.02,
			},
			{
				Name: "edge", Weight: 1,
				Packages: pkgs("edge", 6, 2), PackagesPerHost: 3,
				Services: svcs("edge", 2), ServicesPerHost: 1,
				ConfigFiles: cfgs("edge", 2, 4), ConfigKeysPerHost: 2,
			},
		},
		Mix: DefaultMix(),
	}
}

// weightedPick returns an index into weights proportional to weight.
// Zero or negative total weight picks uniformly. Callers guarantee
// len(weights) > 0.
func weightedPick(rng *rand.Rand, weights []int) int {
	total := 0
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		return rng.Intn(len(weights))
	}
	n := rng.Intn(total)
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		if n < w {
			return i
		}
		n -= w
	}
	return len(weights) - 1
}
