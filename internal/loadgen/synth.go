package loadgen

import (
	"fmt"
	"math/rand"
	"sync"

	"veridevops/internal/core"
	"veridevops/internal/fleet"
	"veridevops/internal/host"
	"veridevops/internal/stig"
)

// Fleet synthesis. Per-mutation host construction logs tens of event-log
// entries per host, which at mega-fleet scale dominates both synthesis
// time and memory; instead each class hardens ONE reference host through
// the real STIG catalogue, snapshots it, and every synthesized host is
// bulk-provisioned (host.NewLinuxFromSnapshot, a single event) from that
// baseline merged with its seeded per-host picks.

// Host is one synthesized fleet member: the simulated machine, its
// class, and its audit catalogue.
type Host struct {
	Name  string
	Class string
	Linux *host.Linux

	cat  *core.Catalog
	down bool
}

// Target wires the host into the fleet coordinator: its own catalogue,
// cache-keyed by the host event-log version.
func (h *Host) Target() fleet.Target {
	return fleet.Target{Name: h.Name, Catalog: h.cat, Version: h.Linux.Log().Version}
}

// Down reports whether the host is currently marked unreachable.
func (h *Host) Down() bool { return h.down }

// Catalog returns the host's audit catalogue.
func (h *Host) Catalog() *core.Catalog { return h.cat }

// SetCatalog replaces the host's audit catalogue — the scenario
// executor's hook for wrapping requirements with fault injectors and
// restoring them afterwards. Swapping the catalogue does not advance the
// host's event-log version, so callers must invalidate any incremental
// cache entry keyed on it themselves.
func (h *Host) SetCatalog(c *core.Catalog) { h.cat = c }

// Fleet is a synthesized host population under churn: hosts join, leave
// and lose connectivity, so membership is mutable. Removal is
// swap-remove; name lookup stays O(1). Fleet is not goroutine-safe —
// the load driver alternates churn and sweeps, never overlapping them.
type Fleet struct {
	Topology Topology

	hosts   []*Host
	index   map[string]int // name -> position in hosts
	created []int          // per-class counter, names stay unique across leave/join
	downs   int
	rng     *rand.Rand // synthesis picks (class, packages, versions…)
}

// Synthesize builds n hosts from the topology spec, deterministically in
// seed. Classes are drawn by weight; DriftedFraction hosts per class are
// born non-compliant via seeded drift mutations.
func Synthesize(top Topology, n int, seed int64) (*Fleet, error) {
	if err := top.Validate(); err != nil {
		return nil, err
	}
	if n <= 0 {
		return nil, fmt.Errorf("loadgen: fleet size %d, need > 0", n)
	}
	f := &Fleet{
		Topology: top,
		hosts:    make([]*Host, 0, n),
		index:    make(map[string]int, n),
		created:  make([]int, len(top.Classes)),
		rng:      rand.New(rand.NewSource(seed)),
	}
	for i := 0; i < n; i++ {
		f.Join()
	}
	return f, nil
}

// baseline returns the hardened reference snapshot every synthesized
// host starts from, computed once per process: a stock Ubuntu host run
// through the STIG catalogue in enforce mode. Hardening one reference
// and cloning its snapshot is what makes 1M-host synthesis affordable —
// the catalogue runs once, not once per host.
var (
	baselineOnce sync.Once
	baselineSnap host.Snapshot
)

func baseline() host.Snapshot {
	baselineOnce.Do(func() {
		h := host.NewUbuntu1804()
		stig.UbuntuCatalog(h).Run(core.CheckAndEnforce)
		baselineSnap = h.Snapshot()
	})
	return baselineSnap
}

// Join synthesizes one new host (class drawn by weight) and adds it to
// the fleet. Also the churn engine's host-join event.
func (f *Fleet) Join() *Host {
	weights := make([]int, len(f.Topology.Classes))
	for i, c := range f.Topology.Classes {
		weights[i] = c.Weight
	}
	return f.joinClass(weightedPick(f.rng, weights))
}

// JoinClass synthesizes one new host of the named class — the scenario
// executor's forced-class join, bypassing the weighted draw. Returns nil
// when the topology has no such class.
func (f *Fleet) JoinClass(name string) *Host {
	for ci, c := range f.Topology.Classes {
		if c.Name == name {
			return f.joinClass(ci)
		}
	}
	return nil
}

// joinClass provisions one host of class index ci from the hardened
// baseline plus the class's seeded per-host picks.
func (f *Fleet) joinClass(ci int) *Host {
	class := f.Topology.Classes[ci]

	base := baseline()
	snap := host.Snapshot{
		Packages: make(map[string]string, len(base.Packages)+class.PackagesPerHost),
		Services: make(map[string]bool, len(base.Services)+class.ServicesPerHost),
		Config:   make(map[string]string, len(base.Config)+class.ConfigKeysPerHost),
	}
	for k, v := range base.Packages {
		snap.Packages[k] = v
	}
	for k, v := range base.Services {
		snap.Services[k] = v
	}
	for k, v := range base.Config {
		snap.Config[k] = v
	}

	pkgWeights := distWeights(class.Packages)
	for i := 0; i < class.PackagesPerHost; i++ {
		p := class.Packages[weightedPick(f.rng, pkgWeights)]
		snap.Packages[p.Name] = packageVersion(f.rng, p)
	}
	svcWeights := make([]int, len(class.Services))
	for i, s := range class.Services {
		svcWeights[i] = s.Weight
	}
	for i := 0; i < class.ServicesPerHost; i++ {
		snap.Services[class.Services[weightedPick(f.rng, svcWeights)].Name] = true
	}
	cfgWeights := make([]int, len(class.ConfigFiles))
	for i, c := range class.ConfigFiles {
		cfgWeights[i] = c.Weight
	}
	for i := 0; i < class.ConfigKeysPerHost; i++ {
		cf := class.ConfigFiles[weightedPick(f.rng, cfgWeights)]
		keys := cf.Keys
		if keys < 1 {
			keys = 1
		}
		item := fmt.Sprintf("%s:key-%02d", cf.Path, f.rng.Intn(keys))
		snap.Config[item] = fmt.Sprintf("v%d", f.rng.Intn(100))
	}

	l := host.NewLinuxFromSnapshot(snap)
	if f.rng.Float64() < class.DriftedFraction {
		host.DriftLinux(l, 1+f.rng.Intn(3), f.rng)
	}

	h := &Host{
		Name:  fmt.Sprintf("lg-%s-%06d", class.Name, f.created[ci]),
		Class: class.Name,
		Linux: l,
		cat:   stig.UbuntuCatalog(l),
	}
	f.created[ci]++
	f.index[h.Name] = len(f.hosts)
	f.hosts = append(f.hosts, h)
	return h
}

// Leave removes a host from the fleet (swap-remove) and reports whether
// it existed. A down host can leave; its pending events become orphans.
func (f *Fleet) Leave(name string) bool {
	i, ok := f.index[name]
	if !ok {
		return false
	}
	if f.hosts[i].down {
		f.downs--
	}
	last := len(f.hosts) - 1
	f.hosts[i] = f.hosts[last]
	f.index[f.hosts[i].Name] = i
	f.hosts = f.hosts[:last]
	delete(f.index, name)
	return true
}

// SetDown toggles a member's connectivity and reports whether anything
// changed.
func (f *Fleet) SetDown(name string, down bool) bool {
	i, ok := f.index[name]
	if !ok || f.hosts[i].down == down {
		return false
	}
	f.hosts[i].down = down
	f.hosts[i].Linux.SetUnreachable(down)
	if down {
		f.downs++
	} else {
		f.downs--
	}
	return true
}

// Size is the current member count; DownCount how many are unreachable.
func (f *Fleet) Size() int      { return len(f.hosts) }
func (f *Fleet) DownCount() int { return f.downs }

// Hosts exposes the live member slice; callers must not mutate it.
func (f *Fleet) Hosts() []*Host { return f.hosts }

// Get resolves a member by name — the push driver's hook for wiring a
// freshly joined host into the streaming evaluator.
func (f *Fleet) Get(name string) (*Host, bool) {
	i, ok := f.index[name]
	if !ok {
		return nil, false
	}
	return f.hosts[i], true
}

// Targets builds the coordinator target list for the current membership.
func (f *Fleet) Targets() []fleet.Target {
	out := make([]fleet.Target, len(f.hosts))
	for i, h := range f.hosts {
		out[i] = h.Target()
	}
	return out
}

// pick returns a uniformly random member, or nil if the fleet is empty.
func (f *Fleet) pick(rng *rand.Rand) *Host {
	if len(f.hosts) == 0 {
		return nil
	}
	return f.hosts[rng.Intn(len(f.hosts))]
}

// pickReachable returns a random reachable member, or nil when none can
// be found (mutating an unreachable host would panic, so churn must not
// target one). Bounded rejection sampling keeps the draw deterministic.
func (f *Fleet) pickReachable(rng *rand.Rand) *Host {
	if len(f.hosts) == 0 || f.downs == len(f.hosts) {
		return nil
	}
	for tries := 0; tries < 64; tries++ {
		if h := f.pick(rng); !h.down {
			return h
		}
	}
	for _, h := range f.hosts {
		if !h.down {
			return h
		}
	}
	return nil
}

// pickDown returns a random unreachable member, or nil when none exist.
func (f *Fleet) pickDown(rng *rand.Rand) *Host {
	if f.downs == 0 {
		return nil
	}
	for tries := 0; tries < 64; tries++ {
		if h := f.pick(rng); h.down {
			return h
		}
	}
	for _, h := range f.hosts {
		if h.down {
			return h
		}
	}
	return nil
}

func distWeights(dists []PackageDist) []int {
	out := make([]int, len(dists))
	for i, d := range dists {
		out[i] = d.Weight
	}
	return out
}

// packageVersion draws one of the package's version strings, "1.0" when
// the cardinality knob is unset.
func packageVersion(rng *rand.Rand, p PackageDist) string {
	if p.Versions <= 1 {
		return "1.0"
	}
	return fmt.Sprintf("1.%d", rng.Intn(p.Versions))
}
