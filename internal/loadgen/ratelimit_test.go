package loadgen

import (
	"testing"
	"time"
)

func TestTokenBucketSteadyRate(t *testing.T) {
	b, err := NewTokenBucket(10, 1) // 10 events/sec, no burst
	if err != nil {
		t.Fatal(err)
	}
	// Born full: first admission immediate, then exactly 100ms apart.
	last := time.Duration(0)
	for i := 0; i < 10; i++ {
		at := b.When(last)
		want := time.Duration(i) * 100 * time.Millisecond
		if at != want {
			t.Fatalf("admission %d at %v, want %v", i, at, want)
		}
		b.Take(at)
		last = at
	}
}

func TestTokenBucketBurst(t *testing.T) {
	b, err := NewTokenBucket(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Three tokens up front: all admit at instant 0.
	for i := 0; i < 3; i++ {
		if at := b.When(0); at != 0 {
			t.Fatalf("burst admission %d at %v, want 0", i, at)
		}
		b.Take(b.When(0))
	}
	// Fourth waits a full second.
	if at := b.When(0); at != time.Second {
		t.Errorf("post-burst admission at %v, want 1s", at)
	}
}

func TestTokenBucketWhenDoesNotConsume(t *testing.T) {
	b, err := NewTokenBucket(5, 1)
	if err != nil {
		t.Fatal(err)
	}
	first := b.When(0)
	if again := b.When(0); again != first {
		t.Errorf("repeated When moved: %v then %v", first, again)
	}
	b.Take(first)
	if after := b.When(first); after <= first {
		t.Errorf("When after Take = %v, want > %v", after, first)
	}
}

func TestTokenBucketRefillCapsAtBurst(t *testing.T) {
	b, err := NewTokenBucket(100, 2)
	if err != nil {
		t.Fatal(err)
	}
	b.Take(0)
	b.Take(0) // drained
	// An hour of virtual idle refills to burst, not beyond: only two
	// immediate admissions follow.
	idle := time.Hour
	for i := 0; i < 2; i++ {
		if at := b.When(idle); at != idle {
			t.Fatalf("post-idle admission %d at %v, want %v", i, at, idle)
		}
		b.Take(idle)
	}
	if at := b.When(idle); at == idle {
		t.Error("third post-idle admission immediate; burst cap not enforced")
	}
}

func TestTokenBucketLongRunRateNeverExceeded(t *testing.T) {
	// Regression: When used to truncate the wait toward zero, so each
	// admission landed fractionally early, the token level drifted
	// negative, and the admitted count over a long horizon crept past
	// rate*horizon. Rates with non-terminating binary periods (1/3 s,
	// 1/7 s) are the worst case; a power-of-two-friendly rate is the
	// control.
	for _, rate := range []float64{3, 7, 333.0, 1000.0 / 3.0, 256} {
		for _, burst := range []int{1, 16} {
			b, err := NewTokenBucket(rate, burst)
			if err != nil {
				t.Fatal(err)
			}
			const horizon = 1000 * time.Second
			admitted := 0
			last := time.Duration(0)
			for {
				at := b.When(last)
				if at > horizon {
					break
				}
				if at < last {
					t.Fatalf("rate %v: admission moved backwards: %v after %v", rate, at, last)
				}
				b.Take(at)
				last = at
				admitted++
				// The rounded-up wait means the token is fully refilled by
				// the time When hands out the instant: the level must never
				// drift negative (beyond float-evaluation dust). Truncation
				// broke exactly this — every admission landed ~1ns early
				// and left the bucket fractionally overdrawn.
				if b.tokens < -1e-12 {
					t.Fatalf("rate %v burst %d: token level %g negative after admission %d at %v",
						rate, burst, b.tokens, admitted, at)
				}
			}
			// The bucket is born full, so burst tokens admit at t=0 on
			// top of the refill budget.
			budget := float64(burst) + rate*horizon.Seconds()
			if float64(admitted) > budget {
				t.Errorf("rate %v burst %d: admitted %d events over %v, budget %.0f — admitted rate exceeds configured rate",
					rate, burst, admitted, horizon, budget)
			}
			// And rounding up must not starve the bucket either: the
			// admitted count should sit within one token of the budget.
			if float64(admitted) < budget-1 {
				t.Errorf("rate %v burst %d: admitted only %d events over %v, budget %.0f — wait over-rounded",
					rate, burst, admitted, horizon, budget)
			}
		}
	}
}

func TestTokenBucketRejectsBadRate(t *testing.T) {
	if _, err := NewTokenBucket(0, 1); err == nil {
		t.Error("rate 0 accepted")
	}
	if _, err := NewTokenBucket(-5, 1); err == nil {
		t.Error("negative rate accepted")
	}
}
