package loadgen

import (
	"testing"
	"time"
)

func TestTokenBucketSteadyRate(t *testing.T) {
	b, err := NewTokenBucket(10, 1) // 10 events/sec, no burst
	if err != nil {
		t.Fatal(err)
	}
	// Born full: first admission immediate, then exactly 100ms apart.
	last := time.Duration(0)
	for i := 0; i < 10; i++ {
		at := b.When(last)
		want := time.Duration(i) * 100 * time.Millisecond
		if at != want {
			t.Fatalf("admission %d at %v, want %v", i, at, want)
		}
		b.Take(at)
		last = at
	}
}

func TestTokenBucketBurst(t *testing.T) {
	b, err := NewTokenBucket(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Three tokens up front: all admit at instant 0.
	for i := 0; i < 3; i++ {
		if at := b.When(0); at != 0 {
			t.Fatalf("burst admission %d at %v, want 0", i, at)
		}
		b.Take(b.When(0))
	}
	// Fourth waits a full second.
	if at := b.When(0); at != time.Second {
		t.Errorf("post-burst admission at %v, want 1s", at)
	}
}

func TestTokenBucketWhenDoesNotConsume(t *testing.T) {
	b, err := NewTokenBucket(5, 1)
	if err != nil {
		t.Fatal(err)
	}
	first := b.When(0)
	if again := b.When(0); again != first {
		t.Errorf("repeated When moved: %v then %v", first, again)
	}
	b.Take(first)
	if after := b.When(first); after <= first {
		t.Errorf("When after Take = %v, want > %v", after, first)
	}
}

func TestTokenBucketRefillCapsAtBurst(t *testing.T) {
	b, err := NewTokenBucket(100, 2)
	if err != nil {
		t.Fatal(err)
	}
	b.Take(0)
	b.Take(0) // drained
	// An hour of virtual idle refills to burst, not beyond: only two
	// immediate admissions follow.
	idle := time.Hour
	for i := 0; i < 2; i++ {
		if at := b.When(idle); at != idle {
			t.Fatalf("post-idle admission %d at %v, want %v", i, at, idle)
		}
		b.Take(idle)
	}
	if at := b.When(idle); at == idle {
		t.Error("third post-idle admission immediate; burst cap not enforced")
	}
}

func TestTokenBucketRejectsBadRate(t *testing.T) {
	if _, err := NewTokenBucket(0, 1); err == nil {
		t.Error("rate 0 accepted")
	}
	if _, err := NewTokenBucket(-5, 1); err == nil {
		t.Error("negative rate accepted")
	}
}
