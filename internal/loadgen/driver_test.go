package loadgen

import (
	"testing"
	"time"

	"veridevops/internal/telemetry"
)

func replay(t *testing.T, seed int64) LoadStats {
	t.Helper()
	f, err := Synthesize(smallTopology(), 30, seed)
	if err != nil {
		t.Fatal(err)
	}
	c := NewChurn(f, DefaultMix(), seed+1)
	st, err := Run(f, c, DriverOptions{
		Duration:   10 * time.Second,
		SweepEvery: 500 * time.Millisecond,
		Rate:       40,
		Burst:      4,
		Shards:     4,
		Workers:    2,
	})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestDriverMeasuresDetectionLatency(t *testing.T) {
	st := replay(t, 17)
	if st.Events == 0 {
		t.Fatal("no events applied")
	}
	if st.Sweeps != 20 {
		t.Errorf("Sweeps = %d, want 20 (10s / 500ms)", st.Sweeps)
	}
	if st.Detected == 0 {
		t.Fatal("no detections recorded")
	}
	if int(st.Detect.Count) != st.Detected {
		t.Errorf("Detect.Count = %d, Detected = %d; must agree", st.Detect.Count, st.Detected)
	}
	// A sweep is atomic at its virtual instant: no event waits longer
	// than one sweep interval, and latency is never negative.
	if st.Detect.Max > 500*time.Millisecond {
		t.Errorf("max detection latency %v exceeds the sweep interval", st.Detect.Max)
	}
	if st.Detect.Min < 0 {
		t.Errorf("negative detection latency %v", st.Detect.Min)
	}
	if st.Detect.P50 > st.Detect.P95 || st.Detect.P95 > st.Detect.P99 || st.Detect.P99 > st.Detect.Max {
		t.Errorf("percentiles not monotone: %+v", st.Detect)
	}
	// Every applied non-leave event ends detected, orphaned or pending.
	if got := st.Detected + st.Orphaned + st.Pending; got != st.Events-st.Leaves {
		t.Errorf("detected %d + orphaned %d + pending %d = %d, want events %d - leaves %d",
			st.Detected, st.Orphaned, st.Pending, got, st.Events, st.Leaves)
	}
	if st.VirtualDuration != 10*time.Second {
		t.Errorf("VirtualDuration = %v, want 10s", st.VirtualDuration)
	}
	if st.AchievedRate <= 0 || st.AchievedRate > st.OfferedRate+1 {
		t.Errorf("AchievedRate = %v with OfferedRate %v", st.AchievedRate, st.OfferedRate)
	}
	if st.ReplayWall <= 0 || st.RealEventsPerSec <= 0 {
		t.Errorf("real-clock stats empty: wall=%v rate=%v", st.ReplayWall, st.RealEventsPerSec)
	}
	// Incremental sweeps must actually reuse the cache: most hosts are
	// untouched between consecutive sweeps at this rate.
	if st.CacheReplays == 0 {
		t.Error("no cache replays across incremental sweeps")
	}
}

// TestDriverDeterministic is the acceptance criterion: a fixed seed on
// the virtual clock reproduces the event stream and the full detection
// latency distribution exactly. Only the real-clock fields may differ.
func TestDriverDeterministic(t *testing.T) {
	a := replay(t, 23)
	b := replay(t, 23)
	a.ReplayWall, b.ReplayWall = 0, 0
	a.RealEventsPerSec, b.RealEventsPerSec = 0, 0
	if a != b {
		t.Fatalf("replays with identical seeds diverged:\n%+v\n%+v", a, b)
	}
}

func TestDriverFeedsMetrics(t *testing.T) {
	f, err := Synthesize(smallTopology(), 10, 4)
	if err != nil {
		t.Fatal(err)
	}
	m := telemetry.NewMetrics()
	st, err := Run(f, NewChurn(f, DefaultMix(), 5), DriverOptions{
		Duration:   2 * time.Second,
		SweepEvery: 200 * time.Millisecond,
		Rate:       20,
		Shards:     2,
		Workers:    1,
		Metrics:    m,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Counter("load.events"); got != int64(st.Events) {
		t.Errorf("load.events counter = %d, want %d", got, st.Events)
	}
	if got := m.Percentiles("load.detect"); got.Count != st.Detect.Count {
		t.Errorf("load.detect samples = %d, want %d", got.Count, st.Detect.Count)
	}
	if got := m.Counter("load.sweeps"); got != int64(st.Sweeps) {
		t.Errorf("load.sweeps counter = %d, want %d", got, st.Sweeps)
	}
}

func TestDriverRejectsBadOptions(t *testing.T) {
	f, err := Synthesize(smallTopology(), 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	c := NewChurn(f, DefaultMix(), 1)
	if _, err := Run(f, c, DriverOptions{Duration: 0, Rate: 10}); err == nil {
		t.Error("zero duration accepted")
	}
	if _, err := Run(f, c, DriverOptions{Duration: time.Second, Rate: 0}); err == nil {
		t.Error("zero rate accepted")
	}
}

func replayPush(t *testing.T, seed int64) LoadStats {
	t.Helper()
	f, err := Synthesize(smallTopology(), 30, seed)
	if err != nil {
		t.Fatal(err)
	}
	c := NewChurn(f, DefaultMix(), seed+1)
	st, err := Run(f, c, DriverOptions{
		Duration:   10 * time.Second,
		SweepEvery: 500 * time.Millisecond,
		Window:     50 * time.Millisecond,
		Push:       true,
		Rate:       40,
		Burst:      4,
		Shards:     4,
		Workers:    2,
	})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestDriverPushBreaksSweepFloor is the tentpole's acceptance property
// in miniature: with the streamer flushing every 50ms, no verdict waits
// anywhere near the 500ms sweep interval.
func TestDriverPushBreaksSweepFloor(t *testing.T) {
	st := replayPush(t, 17)
	if st.Mode != "push" || st.Window != 50*time.Millisecond {
		t.Fatalf("Mode/Window = %q/%v, want push/50ms", st.Mode, st.Window)
	}
	if st.Events == 0 || st.Detected == 0 {
		t.Fatalf("no traffic: %+v", st)
	}
	// Every event resolves at the next flush: latency is bounded by the
	// coalescing window, not the sweep interval.
	if st.Detect.Max > 50*time.Millisecond {
		t.Errorf("max detection latency %v exceeds the flush window", st.Detect.Max)
	}
	if st.Detect.Min < 0 {
		t.Errorf("negative detection latency %v", st.Detect.Min)
	}
	if st.Flushes == 0 || st.DeltaHosts == 0 || st.ChecksEvaluated == 0 {
		t.Errorf("push counters empty: flushes=%d deltaHosts=%d evaluated=%d",
			st.Flushes, st.DeltaHosts, st.ChecksEvaluated)
	}
	// Efficiency: the dependency index localises most events to far
	// fewer checks than the 8-requirement catalogue.
	if st.ChecksPerEvent <= 0 || st.ChecksPerEvent >= 8 {
		t.Errorf("ChecksPerEvent = %v, want in (0, 8)", st.ChecksPerEvent)
	}
	// The fallback sweep still fires on schedule, but the streamer's
	// deltas keep the incremental cache stamped, so it never re-audits.
	if st.Sweeps != 20 {
		t.Errorf("fallback Sweeps = %d, want 20 (10s / 500ms)", st.Sweeps)
	}
	if st.HostsReaudited != 0 {
		t.Errorf("fallback sweeps re-audited %d hosts; want pure cache replays", st.HostsReaudited)
	}
	if st.CacheReplays == 0 {
		t.Error("fallback sweeps recorded no cache replays")
	}
	// Same accounting identity as sweep mode.
	if got := st.Detected + st.Orphaned + st.Pending; got != st.Events-st.Leaves {
		t.Errorf("detected %d + orphaned %d + pending %d = %d, want events %d - leaves %d",
			st.Detected, st.Orphaned, st.Pending, got, st.Events, st.Leaves)
	}
}

// TestDriverPushDeterministic pins the determinism satellite end to end:
// seeded churn through subscription wake-ups, dirty-key coalescing and
// subset evaluation reproduces every counter and the full latency
// distribution exactly.
func TestDriverPushDeterministic(t *testing.T) {
	a := replayPush(t, 23)
	b := replayPush(t, 23)
	a.ReplayWall, b.ReplayWall = 0, 0
	a.RealEventsPerSec, b.RealEventsPerSec = 0, 0
	if a != b {
		t.Fatalf("push replays with identical seeds diverged:\n%+v\n%+v", a, b)
	}
}

// TestDriverPushMatchesSweepStream verifies head-to-head comparability:
// both modes admit the identical event stream from the same seed, so
// the bench's latency comparison measures evaluation strategy only.
func TestDriverPushMatchesSweepStream(t *testing.T) {
	sw := replay(t, 31)
	pu := replayPush(t, 31)
	if sw.Events != pu.Events || sw.Drift != pu.Drift ||
		sw.Joins != pu.Joins || sw.Leaves != pu.Leaves ||
		sw.Outages != pu.Outages || sw.Restores != pu.Restores {
		t.Errorf("event streams diverged:\nsweep %+v\npush  %+v", sw, pu)
	}
	if pu.Detect.P99 >= sw.Detect.P99 {
		t.Errorf("push p99 %v not below sweep p99 %v", pu.Detect.P99, sw.Detect.P99)
	}
}

func TestDriverPushFeedsMetrics(t *testing.T) {
	f, err := Synthesize(smallTopology(), 10, 4)
	if err != nil {
		t.Fatal(err)
	}
	m := telemetry.NewMetrics()
	st, err := Run(f, NewChurn(f, DefaultMix(), 5), DriverOptions{
		Duration:   2 * time.Second,
		SweepEvery: 200 * time.Millisecond,
		Push:       true,
		Rate:       20,
		Shards:     2,
		Workers:    1,
		Metrics:    m,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Window != 20*time.Millisecond {
		t.Errorf("Window = %v, want SweepEvery/10 = 20ms default", st.Window)
	}
	if got := m.Counter("load.flushes"); got != int64(st.Flushes) {
		t.Errorf("load.flushes counter = %d, want %d", got, st.Flushes)
	}
	if got := m.Counter("load.checks.evaluated"); got != int64(st.ChecksEvaluated) {
		t.Errorf("load.checks.evaluated counter = %d, want %d", got, st.ChecksEvaluated)
	}
	if got := m.Percentiles("load.detect"); got.Count != st.Detect.Count {
		t.Errorf("load.detect samples = %d, want %d", got.Count, st.Detect.Count)
	}
}
