package loadgen

import (
	"fmt"
	"math/rand"

	"veridevops/internal/host"
)

// The churn engine: a seeded stream of fleet-state mutations — package
// upgrades and downgrades, compliance-breaking installs/removals,
// service flapping, config edits, hosts joining and leaving, hosts
// losing and regaining connectivity — applied one event at a time so the
// load driver can admit them through the rate limiter at a target
// events/sec.

// EventKind classifies one churn event.
type EventKind int

const (
	// PackageUpgrade bumps an installed class package to another of its
	// versions; PackageDowngrade is the same draw framed as a rollback.
	// Both are compliance-neutral noise: they dirty the host's event-log
	// version (forcing a re-audit) without changing its verdicts — the
	// background churn a real fleet emits constantly.
	PackageUpgrade EventKind = iota
	PackageDowngrade
	// PackageInstall installs a STIG-banned package (real drift);
	// PackageRemove removes a STIG-required one (real drift).
	PackageInstall
	PackageRemove
	// ServiceFlap disables then re-enables one of the host's services.
	ServiceFlap
	// ConfigEdit rewrites a class config key; occasionally (1 in 8) it
	// weakens the password-encryption setting instead — real drift.
	ConfigEdit
	// HostJoin synthesizes a new member; HostLeave removes one.
	HostJoin
	HostLeave
	// HostDown marks a member unreachable (probes panic, audits degrade);
	// HostUp restores one.
	HostDown
	HostUp

	numEventKinds
)

var eventKindNames = [...]string{
	"package-upgrade", "package-downgrade", "package-install",
	"package-remove", "service-flap", "config-edit",
	"host-join", "host-leave", "host-down", "host-up",
}

func (k EventKind) String() string {
	if k < 0 || int(k) >= len(eventKindNames) {
		return fmt.Sprintf("event-%d", int(k))
	}
	return eventKindNames[k]
}

// ChurnMix weights the event kinds the churn engine draws from. Zero
// weights drop a kind entirely; the zero value is replaced by
// DefaultMix.
type ChurnMix struct {
	PackageUpgrade   int `json:"package_upgrade,omitempty"`
	PackageDowngrade int `json:"package_downgrade,omitempty"`
	PackageInstall   int `json:"package_install,omitempty"`
	PackageRemove    int `json:"package_remove,omitempty"`
	ServiceFlap      int `json:"service_flap,omitempty"`
	ConfigEdit       int `json:"config_edit,omitempty"`
	HostJoin         int `json:"host_join,omitempty"`
	HostLeave        int `json:"host_leave,omitempty"`
	HostDown         int `json:"host_down,omitempty"`
	HostUp           int `json:"host_up,omitempty"`
}

// DefaultMix models steady-state operations: mostly routine package and
// config churn, some real drift, rare membership and connectivity
// events.
func DefaultMix() ChurnMix {
	return ChurnMix{
		PackageUpgrade:   30,
		PackageDowngrade: 5,
		PackageInstall:   8,
		PackageRemove:    8,
		ServiceFlap:      10,
		ConfigEdit:       25,
		HostJoin:         2,
		HostLeave:        2,
		HostDown:         3,
		HostUp:           7,
	}
}

func (m ChurnMix) weights() []int {
	return []int{
		m.PackageUpgrade, m.PackageDowngrade, m.PackageInstall,
		m.PackageRemove, m.ServiceFlap, m.ConfigEdit,
		m.HostJoin, m.HostLeave, m.HostDown, m.HostUp,
	}
}

func (m ChurnMix) isZero() bool {
	for _, w := range m.weights() {
		if w != 0 {
			return false
		}
	}
	return true
}

func (m ChurnMix) validate() error {
	if m.isZero() {
		return nil // zero value means DefaultMix
	}
	total := 0
	for i, w := range m.weights() {
		if w < 0 {
			return fmt.Errorf("loadgen: churn mix weight %s is negative", EventKind(i))
		}
		total += w
	}
	if total <= 0 {
		return fmt.Errorf("loadgen: churn mix weights sum to %d, need > 0", total)
	}
	return nil
}

// Event is one applied churn mutation: which kind hit which host.
// Host is empty for events that found no eligible target and were
// skipped.
type Event struct {
	Kind EventKind
	// Host is the member whose audit-visible state changed. For
	// HostLeave it names the departed member (whose verdict will never
	// arrive); for skipped events it is empty.
	Host string
	// Drift marks events that push a host out of compliance (banned
	// install, required removal, weakened crypto config), as opposed to
	// compliance-neutral churn.
	Drift bool
}

// Churn draws seeded events from a mix and applies them to the fleet.
// Not goroutine-safe; the driver interleaves Step with sweeps.
type Churn struct {
	fleet   *Fleet
	weights []int
	rng     *rand.Rand

	// Applied counts applied events per kind; Skipped counts draws that
	// found no eligible target (e.g. HostUp with nothing down).
	Applied [numEventKinds]int
	Skipped [numEventKinds]int
}

// NewChurn builds a churn engine over the fleet, deterministic in seed.
// A zero mix falls back to DefaultMix.
func NewChurn(f *Fleet, mix ChurnMix, seed int64) *Churn {
	if mix.isZero() {
		mix = DefaultMix()
	}
	return &Churn{
		fleet:   f,
		weights: mix.weights(),
		rng:     rand.New(rand.NewSource(seed)),
	}
}

// Step draws one event kind from the mix, applies it, and returns what
// happened. ok is false when the drawn kind had no eligible target (the
// event is counted as skipped, nothing mutated).
func (c *Churn) Step() (ev Event, ok bool) {
	kind := EventKind(weightedPick(c.rng, c.weights))
	ev = c.apply(kind)
	if ev.Host == "" {
		c.Skipped[kind]++
		return ev, false
	}
	c.Applied[kind]++
	return ev, true
}

// Total returns applied and skipped event counts across all kinds.
func (c *Churn) Total() (applied, skipped int) {
	for k := 0; k < int(numEventKinds); k++ {
		applied += c.Applied[k]
		skipped += c.Skipped[k]
	}
	return applied, skipped
}

func (c *Churn) apply(kind EventKind) Event {
	ev := Event{Kind: kind}
	switch kind {
	case PackageUpgrade, PackageDowngrade:
		h := c.fleet.pickReachable(c.rng)
		if h == nil {
			return ev
		}
		class, ok := c.class(h)
		if !ok || len(class.Packages) == 0 {
			return ev
		}
		p := class.Packages[weightedPick(c.rng, distWeights(class.Packages))]
		h.Linux.Install(p.Name, packageVersion(c.rng, p))
		ev.Host = h.Name
	case PackageInstall:
		h := c.fleet.pickReachable(c.rng)
		if h == nil {
			return ev
		}
		banned := host.BannedPackages[c.rng.Intn(len(host.BannedPackages))]
		h.Linux.Install(banned, "0.legacy")
		ev.Host, ev.Drift = h.Name, true
	case PackageRemove:
		h := c.fleet.pickReachable(c.rng)
		if h == nil {
			return ev
		}
		req := host.RequiredPackages[c.rng.Intn(len(host.RequiredPackages))]
		h.Linux.Remove(req)
		ev.Host, ev.Drift = h.Name, true
	case ServiceFlap:
		h := c.fleet.pickReachable(c.rng)
		if h == nil {
			return ev
		}
		class, ok := c.class(h)
		if !ok || len(class.Services) == 0 {
			return ev
		}
		svc := class.Services[c.rng.Intn(len(class.Services))].Name
		h.Linux.DisableService(svc)
		h.Linux.EnableService(svc)
		ev.Host = h.Name
	case ConfigEdit:
		h := c.fleet.pickReachable(c.rng)
		if h == nil {
			return ev
		}
		if c.rng.Intn(8) == 0 {
			// Occasionally the edit is the classic compliance break.
			h.Linux.SetConfig("/etc/login.defs", "ENCRYPT_METHOD", "MD5")
			ev.Host, ev.Drift = h.Name, true
			return ev
		}
		class, ok := c.class(h)
		if !ok || len(class.ConfigFiles) == 0 {
			return ev
		}
		cf := class.ConfigFiles[c.rng.Intn(len(class.ConfigFiles))]
		keys := cf.Keys
		if keys < 1 {
			keys = 1
		}
		h.Linux.SetConfig(cf.Path, fmt.Sprintf("key-%02d", c.rng.Intn(keys)),
			fmt.Sprintf("v%d", c.rng.Intn(100)))
		ev.Host = h.Name
	case HostJoin:
		ev.Host = c.fleet.Join().Name
	case HostLeave:
		if c.fleet.Size() <= 1 {
			return ev // never shrink to empty
		}
		h := c.fleet.pick(c.rng) // a down host may leave too
		c.fleet.Leave(h.Name)
		ev.Host = h.Name
	case HostDown:
		h := c.fleet.pickReachable(c.rng)
		if h == nil || !c.fleet.SetDown(h.Name, true) {
			return ev
		}
		ev.Host = h.Name
	case HostUp:
		h := c.fleet.pickDown(c.rng)
		if h == nil || !c.fleet.SetDown(h.Name, false) {
			return ev
		}
		ev.Host = h.Name
	}
	return ev
}

// class resolves a host's class spec from the topology.
func (c *Churn) class(h *Host) (HostClass, bool) {
	for _, cl := range c.fleet.Topology.Classes {
		if cl.Name == h.Class {
			return cl, true
		}
	}
	return HostClass{}, false
}
