package loadgen

import (
	"testing"
	"time"
)

// The mega-fleet benchmarks behind `make bench-load`: synthesis cost per
// fleet size and end-to-end replay cost at a fixed churn rate.

func BenchmarkLoadSynthesize1k(b *testing.B)  { benchSynthesize(b, 1_000) }
func BenchmarkLoadSynthesize10k(b *testing.B) { benchSynthesize(b, 10_000) }

func benchSynthesize(b *testing.B, n int) {
	top := DefaultTopology()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := Synthesize(top, n, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		if f.Size() != n {
			b.Fatalf("size %d", f.Size())
		}
	}
}

func BenchmarkLoadReplay1k(b *testing.B) {
	top := DefaultTopology()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		f, err := Synthesize(top, 1_000, 42)
		if err != nil {
			b.Fatal(err)
		}
		c := NewChurn(f, DefaultMix(), 43)
		b.StartTimer()
		st, err := Run(f, c, DriverOptions{
			Duration:   5 * time.Second,
			SweepEvery: 250 * time.Millisecond,
			Rate:       500,
			Burst:      16,
			Shards:     8,
			Workers:    2,
		})
		if err != nil {
			b.Fatal(err)
		}
		if st.Detected == 0 {
			b.Fatal("replay detected nothing")
		}
	}
}
