package loadgen

import (
	"math/rand"
	"strings"
	"testing"
)

func TestDefaultTopologyValidates(t *testing.T) {
	if err := DefaultTopology().Validate(); err != nil {
		t.Fatalf("DefaultTopology invalid: %v", err)
	}
}

func TestParseTopology(t *testing.T) {
	spec := `{
		"classes": [
			{"name": "app", "weight": 3,
			 "packages": [{"name": "nginx", "weight": 2, "versions": 3}],
			 "packages_per_host": 1,
			 "services": [{"name": "nginx", "weight": 1}],
			 "services_per_host": 1,
			 "config_files": [{"path": "/etc/nginx/nginx.conf", "weight": 1, "keys": 4}],
			 "config_keys_per_host": 2,
			 "drifted_fraction": 0.1}
		],
		"mix": {"package_upgrade": 5, "config_edit": 5}
	}`
	top, err := ParseTopology(strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	if len(top.Classes) != 1 || top.Classes[0].Name != "app" {
		t.Fatalf("parsed classes = %+v", top.Classes)
	}
	if top.Mix.PackageUpgrade != 5 || top.Mix.ConfigEdit != 5 {
		t.Fatalf("parsed mix = %+v", top.Mix)
	}
}

func TestParseTopologyRejectsBadSpecs(t *testing.T) {
	cases := map[string]string{
		"unknown field":   `{"classes": [{"name": "a", "weight": 1}], "typo": true}`,
		"no classes":      `{"classes": []}`,
		"unnamed class":   `{"classes": [{"weight": 1}]}`,
		"duplicate class": `{"classes": [{"name": "a", "weight": 1}, {"name": "a", "weight": 1}]}`,
		"negative weight": `{"classes": [{"name": "a", "weight": -1}]}`,
		"zero weight sum": `{"classes": [{"name": "a", "weight": 0}]}`,
		"bad drift":       `{"classes": [{"name": "a", "weight": 1, "drifted_fraction": 1.5}]}`,
		"picks, no dist":  `{"classes": [{"name": "a", "weight": 1, "packages_per_host": 2}]}`,
		"negative mix":    `{"classes": [{"name": "a", "weight": 1}], "mix": {"host_down": -1}}`,
		"not json":        `{`,
	}
	for name, spec := range cases {
		if _, err := ParseTopology(strings.NewReader(spec)); err == nil {
			t.Errorf("%s: spec accepted, want error", name)
		}
	}
}

func TestWeightedPickRespectsWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	counts := [3]int{}
	for i := 0; i < 10000; i++ {
		counts[weightedPick(rng, []int{1, 0, 9})]++
	}
	if counts[1] != 0 {
		t.Errorf("zero-weight index picked %d times", counts[1])
	}
	if counts[2] < counts[0]*5 {
		t.Errorf("weight-9 picked %d, weight-1 picked %d; want heavy skew", counts[2], counts[0])
	}
}

func TestWeightedPickDeterministic(t *testing.T) {
	a, b := rand.New(rand.NewSource(7)), rand.New(rand.NewSource(7))
	for i := 0; i < 100; i++ {
		if x, y := weightedPick(a, []int{3, 1, 4}), weightedPick(b, []int{3, 1, 4}); x != y {
			t.Fatalf("draw %d diverged: %d vs %d", i, x, y)
		}
	}
}
