package loadgen

import (
	"testing"
)

func TestChurnDeterministic(t *testing.T) {
	run := func() ([]Event, [numEventKinds]int) {
		f, err := Synthesize(smallTopology(), 20, 5)
		if err != nil {
			t.Fatal(err)
		}
		c := NewChurn(f, DefaultMix(), 99)
		var events []Event
		for i := 0; i < 200; i++ {
			ev, _ := c.Step()
			events = append(events, ev)
		}
		return events, c.Applied
	}
	a, appliedA := run()
	b, appliedB := run()
	if appliedA != appliedB {
		t.Fatalf("applied counts diverged: %v vs %v", appliedA, appliedB)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d diverged: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestChurnNeverMutatesUnreachableHosts(t *testing.T) {
	// Mutating an unreachable host panics; a mix heavy on outages and
	// mutations exercises the reachable-only candidate selection hard.
	f, err := Synthesize(smallTopology(), 6, 2)
	if err != nil {
		t.Fatal(err)
	}
	mix := ChurnMix{PackageUpgrade: 10, ConfigEdit: 10, HostDown: 10, HostUp: 2}
	c := NewChurn(f, mix, 3)
	for i := 0; i < 500; i++ {
		c.Step() // panics if a mutation lands on a down host
	}
	if f.DownCount() == 0 {
		t.Error("outage-heavy mix left no host down; test exercised nothing")
	}
}

func TestChurnDriftEventsBreakCompliance(t *testing.T) {
	f, err := Synthesize(smallTopology(), 4, 6)
	if err != nil {
		t.Fatal(err)
	}
	c := NewChurn(f, ChurnMix{PackageInstall: 1}, 4)
	ev, ok := c.Step()
	if !ok || !ev.Drift {
		t.Fatalf("banned install event = %+v, ok=%v; want applied drift", ev, ok)
	}
	found := false
	for _, h := range f.Hosts() {
		if h.Name != ev.Host {
			continue
		}
		found = true
		banned := false
		for _, p := range []string{"nis", "rsh-server", "telnetd"} {
			banned = banned || h.Linux.Installed(p)
		}
		if !banned {
			t.Errorf("%s has no banned package after package-install event", h.Name)
		}
	}
	if !found {
		t.Fatalf("event host %s not in fleet", ev.Host)
	}
}

func TestChurnMembershipEvents(t *testing.T) {
	f, err := Synthesize(smallTopology(), 10, 8)
	if err != nil {
		t.Fatal(err)
	}
	c := NewChurn(f, ChurnMix{HostJoin: 1}, 5)
	if ev, ok := c.Step(); !ok || ev.Kind != HostJoin || f.Size() != 11 {
		t.Fatalf("join: ev=%+v ok=%v size=%d", ev, ok, f.Size())
	}
	c = NewChurn(f, ChurnMix{HostLeave: 1}, 5)
	if ev, ok := c.Step(); !ok || ev.Kind != HostLeave || f.Size() != 10 {
		t.Fatalf("leave: ev=%+v ok=%v size=%d", ev, ok, f.Size())
	}
}

func TestChurnSkipsWhenNoEligibleTarget(t *testing.T) {
	f, err := Synthesize(smallTopology(), 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Nothing is down, so host-up can never find a target.
	c := NewChurn(f, ChurnMix{HostUp: 1}, 2)
	if ev, ok := c.Step(); ok || ev.Host != "" {
		t.Fatalf("host-up with nothing down applied: %+v", ev)
	}
	if c.Skipped[HostUp] != 1 {
		t.Errorf("Skipped[HostUp] = %d, want 1", c.Skipped[HostUp])
	}
	applied, skipped := c.Total()
	if applied != 0 || skipped != 1 {
		t.Errorf("Total = %d applied, %d skipped; want 0, 1", applied, skipped)
	}
}

func TestEventKindString(t *testing.T) {
	if got := PackageUpgrade.String(); got != "package-upgrade" {
		t.Errorf("PackageUpgrade = %q", got)
	}
	if got := HostUp.String(); got != "host-up" {
		t.Errorf("HostUp = %q", got)
	}
	if got := EventKind(99).String(); got != "event-99" {
		t.Errorf("out of range = %q", got)
	}
}
