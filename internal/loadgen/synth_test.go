package loadgen

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"veridevops/internal/fleet"
)

// smallTopology is a cheap two-class spec the tests share.
func smallTopology() Topology {
	return Topology{
		Classes: []HostClass{
			{
				Name: "app", Weight: 3,
				Packages:          []PackageDist{{Name: "nginx", Weight: 2, Versions: 3}, {Name: "redis", Weight: 1}},
				PackagesPerHost:   2,
				Services:          []ServiceDist{{Name: "nginx", Weight: 1}},
				ServicesPerHost:   1,
				ConfigFiles:       []ConfigDist{{Path: "/etc/app/app.conf", Weight: 1, Keys: 4}},
				ConfigKeysPerHost: 2,
			},
			{Name: "bare", Weight: 1},
		},
	}
}

func TestSynthesizeShapesFleet(t *testing.T) {
	f, err := Synthesize(smallTopology(), 40, 42)
	if err != nil {
		t.Fatal(err)
	}
	if f.Size() != 40 {
		t.Fatalf("Size = %d, want 40", f.Size())
	}
	classes := map[string]int{}
	seen := map[string]bool{}
	for _, h := range f.Hosts() {
		if seen[h.Name] {
			t.Fatalf("duplicate host name %s", h.Name)
		}
		seen[h.Name] = true
		classes[h.Class]++
		if !strings.HasPrefix(h.Name, "lg-"+h.Class+"-") {
			t.Errorf("host name %s does not carry its class %s", h.Name, h.Class)
		}
	}
	// Weight 3:1 over 40 hosts: both classes must appear, app dominating.
	if classes["app"] == 0 || classes["bare"] == 0 {
		t.Fatalf("class split = %v, want both present", classes)
	}
	if classes["app"] <= classes["bare"] {
		t.Errorf("class split = %v, want app (weight 3) to dominate", classes)
	}
	// A synthesized app host carries class services on top of the baseline.
	for _, h := range f.Hosts() {
		if h.Class == "app" && !h.Linux.ServiceActive("nginx") {
			// ServicesPerHost picks with replacement from one service, so
			// every app host has it.
			t.Errorf("%s missing class service nginx", h.Name)
		}
	}
}

func TestSynthesizeDeterministic(t *testing.T) {
	a, err := Synthesize(smallTopology(), 25, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Synthesize(smallTopology(), 25, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Hosts() {
		ha, hb := a.Hosts()[i], b.Hosts()[i]
		if ha.Name != hb.Name {
			t.Fatalf("host %d name diverged: %s vs %s", i, ha.Name, hb.Name)
		}
		if !reflect.DeepEqual(ha.Linux.Snapshot(), hb.Linux.Snapshot()) {
			t.Fatalf("host %s state diverged between identical seeds", ha.Name)
		}
	}
	c, err := Synthesize(smallTopology(), 25, 8)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Hosts() {
		if !reflect.DeepEqual(a.Hosts()[i].Linux.Snapshot(), c.Hosts()[i].Linux.Snapshot()) {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical fleets")
	}
}

func TestSynthesizedFleetIsCompliantAndSweepable(t *testing.T) {
	top := smallTopology()
	f, err := Synthesize(top, 12, 3)
	if err != nil {
		t.Fatal(err)
	}
	rep, st := fleet.Sweep(f.Targets(), fleet.Options{Shards: 4, Workers: 2})
	if st.Hosts != 12 {
		t.Fatalf("sweep saw %d hosts, want 12", st.Hosts)
	}
	// DriftedFraction is 0 in smallTopology: everything passes.
	if c := rep.Compliance(); c != 1 {
		t.Errorf("compliance = %v, want 1 (no drifted hosts)\nfailing: %v", c, rep.Failing())
	}
}

func TestSynthesizeDriftedFraction(t *testing.T) {
	top := smallTopology()
	top.Classes[0].DriftedFraction = 1
	top.Classes[1].DriftedFraction = 1
	f, err := Synthesize(top, 10, 9)
	if err != nil {
		t.Fatal(err)
	}
	rep, _ := fleet.Sweep(f.Targets(), fleet.Options{Shards: 2, Workers: 1})
	if c := rep.Compliance(); c >= 1 {
		t.Errorf("compliance = %v, want < 1 with every host born drifted", c)
	}
}

func TestSynthesizeRejectsBadInputs(t *testing.T) {
	if _, err := Synthesize(smallTopology(), 0, 1); err == nil {
		t.Error("size 0 accepted")
	}
	if _, err := Synthesize(Topology{}, 5, 1); err == nil {
		t.Error("empty topology accepted")
	}
}

func TestFleetMembership(t *testing.T) {
	f, err := Synthesize(smallTopology(), 5, 11)
	if err != nil {
		t.Fatal(err)
	}
	h := f.Join()
	if f.Size() != 6 {
		t.Fatalf("Size after Join = %d, want 6", f.Size())
	}
	if !f.SetDown(h.Name, true) || f.DownCount() != 1 || !h.Down() {
		t.Fatal("SetDown(true) did not mark the host down")
	}
	if f.SetDown(h.Name, true) {
		t.Error("repeated SetDown(true) must report no change")
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		if got := f.pickReachable(rng); got == nil || got.Name == h.Name {
			t.Fatal("pickReachable returned a down host")
		}
		if got := f.pickDown(rng); got == nil || got.Name != h.Name {
			t.Fatal("pickDown missed the down host")
		}
	}
	// A down host can leave; the down count follows it out.
	if !f.Leave(h.Name) || f.Size() != 5 || f.DownCount() != 0 {
		t.Fatalf("Leave(down host): size=%d downs=%d, want 5/0", f.Size(), f.DownCount())
	}
	if f.Leave(h.Name) {
		t.Error("Leave of a departed host must report false")
	}
	// Swap-remove keeps the name index consistent.
	for i, m := range f.Hosts() {
		if j, ok := f.index[m.Name]; !ok || j != i {
			t.Fatalf("index[%s] = %d,%v; want %d", m.Name, j, ok, i)
		}
	}
}
