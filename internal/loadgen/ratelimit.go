package loadgen

import (
	"fmt"
	"time"
)

// TokenBucket is a deterministic rate limiter over the virtual clock:
// time is a plain time.Duration offset, refill is computed
// arithmetically, and admission instants are exact — so a fixed seed
// and rate produce an identical event-admission schedule on every run,
// which is what makes BENCH_load.json percentiles reproducible.
type TokenBucket struct {
	rate   float64 // tokens per second
	burst  float64
	tokens float64
	last   time.Duration
}

// NewTokenBucket returns a bucket admitting rate events/sec with the
// given burst capacity, born full.
func NewTokenBucket(rate float64, burst int) (*TokenBucket, error) {
	if rate <= 0 {
		return nil, fmt.Errorf("loadgen: token bucket rate %v, need > 0", rate)
	}
	if burst < 1 {
		burst = 1
	}
	return &TokenBucket{rate: rate, burst: float64(burst), tokens: float64(burst)}, nil
}

// refillAt returns the token level at virtual instant t without
// mutating state.
func (b *TokenBucket) refillAt(t time.Duration) float64 {
	if t <= b.last {
		return b.tokens
	}
	tokens := b.tokens + b.rate*(t-b.last).Seconds()
	if tokens > b.burst {
		tokens = b.burst
	}
	return tokens
}

// When peeks the earliest virtual instant ≥ now at which one token is
// available, without consuming it. The driver uses it to timestamp an
// event's admission exactly, then commits with Take.
func (b *TokenBucket) When(now time.Duration) time.Duration {
	if now < b.last {
		now = b.last
	}
	have := b.refillAt(now)
	if have >= 1 {
		return now
	}
	// Round the wait UP to the next nanosecond: truncation would land the
	// admission fractionally early, letting the token level drift negative
	// and the long-run admitted rate creep above the configured rate.
	need := (1 - have) / b.rate * float64(time.Second)
	wait := time.Duration(need)
	if float64(wait) < need {
		wait++
	}
	return now + wait
}

// Take consumes one token at virtual instant t. Callers pass a t from
// When, whose rounded-up wait guarantees the token has fully refilled by
// then, so the level stays non-negative (modulo float-evaluation dust).
func (b *TokenBucket) Take(t time.Duration) {
	b.tokens = b.refillAt(t) - 1
	if t > b.last {
		b.last = t
	}
}
