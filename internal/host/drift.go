package host

import "math/rand"

// Drift injection: the E1 and E6 experiments need hosts that have departed
// from their hardened baseline, the situation reactive protection exists to
// catch. Drift operations are deterministic in the provided rng.

// BannedPackages are the legacy packages whose presence violates the
// Ubuntu STIG findings implemented in internal/stig.
var BannedPackages = []string{"nis", "rsh-server", "telnetd"}

// RequiredPackages are the hardening packages whose absence violates the
// Ubuntu STIG findings implemented in internal/stig.
var RequiredPackages = []string{"openssh-server", "vlock", "libpam-pkcs11", "opensc-pkcs11", "aide"}

// DriftLinux applies n random compliance-breaking mutations to the host:
// installing a banned package, removing a required one, or weakening the
// password-encryption configuration.
func DriftLinux(l *Linux, n int, rng *rand.Rand) {
	for i := 0; i < n; i++ {
		switch rng.Intn(3) {
		case 0:
			l.Install(BannedPackages[rng.Intn(len(BannedPackages))], "0.legacy")
		case 1:
			l.Remove(RequiredPackages[rng.Intn(len(RequiredPackages))])
		case 2:
			l.SetConfig("/etc/login.defs", "ENCRYPT_METHOD", "MD5")
		}
	}
}

// DriftWindows flips n random audit-policy subcategories to "No Auditing",
// the typical misconfiguration the Windows 10 STIG findings detect.
func DriftWindows(w *Windows, n int, rng *rand.Rand) {
	subs := w.Subcategories()
	for i := 0; i < n; i++ {
		sub := subs[rng.Intn(len(subs))]
		// SetAudit on a known subcategory cannot fail.
		_ = w.SetAudit(sub, AuditSetting{})
	}
}
