package host

import (
	"sort"
	"sync"
)

// ReadRecorder captures which state slots a host's read accessors were
// asked for, as canonical StateKey strings. It is the dynamic
// counterpart of the static keyreads analyzer: attach one to a host
// (SetRecorder), run a check, and compare Keys() against the check's
// CheckStateKeys() declaration — any recorded key the declaration does
// not cover is a push-mode soundness hole the dependency index cannot
// see (fleet.VerifyReads automates the comparison over a catalogue).
//
// Whole-inventory accessors (Linux.Packages, Windows.Subcategories)
// record the wildcard key "<kind>:*", which no per-key declaration can
// cover — such checks are inherently non-localizable.
//
// A recorder may be shared by several hosts and is safe for concurrent
// use; recording costs one mutex acquisition per read, so recorders are
// test/verification instrumentation, not production default (hosts
// without a recorder pay a single nil check).
type ReadRecorder struct {
	mu   sync.Mutex
	keys map[string]int
}

// NewReadRecorder returns an empty recorder.
func NewReadRecorder() *ReadRecorder {
	return &ReadRecorder{keys: map[string]int{}}
}

// observe records one read. Nil receivers are no-ops so host accessors
// can call it unconditionally.
func (r *ReadRecorder) observe(key StateKey) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.keys[key.String()]++
	r.mu.Unlock()
}

// wildcard builds the whole-inventory key of a kind.
func wildcard(kind string) StateKey { return StateKey{Kind: kind, Name: "*"} }

// Keys returns the distinct recorded keys, sorted.
func (r *ReadRecorder) Keys() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.keys))
	for k := range r.keys {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Count returns how many times the given key was read.
func (r *ReadRecorder) Count(key string) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.keys[key]
}

// Reset clears the recording.
func (r *ReadRecorder) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	clear(r.keys)
}

// SetRecorder attaches (or with nil detaches) a read recorder to the
// host. Reads made while unreachable do not record: the accessor panics
// at the ping boundary before touching state.
func (l *Linux) SetRecorder(rec *ReadRecorder) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.rec = rec
}

// SetRecorder attaches (or with nil detaches) a read recorder.
func (w *Windows) SetRecorder(rec *ReadRecorder) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.rec = rec
}
