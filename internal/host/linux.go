// Package host simulates the hosting environments that RQCODE requirements
// check and enforce: an Ubuntu-like Linux host (package database, services,
// configuration files) and a Windows 10-like host (audit policy store,
// registry). The real VeriDevOps prototype shells out to dpkg/auditpol on
// live machines; this package reproduces the observable state those tools
// read and write so the whole STIG catalogue is exercisable offline and in
// tests (see DESIGN.md, substitution table).
package host

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Package is a dpkg-style package record.
type Package struct {
	Name      string
	Version   string
	Installed bool
}

// Service is a systemd-style service record.
type Service struct {
	Name    string
	Enabled bool
	Running bool
}

// Linux is a simulated Ubuntu host. The zero value is unusable; use
// NewLinux or NewUbuntu1804. All methods are safe for concurrent use.
type Linux struct {
	mu       sync.Mutex
	packages map[string]*Package
	services map[string]*Service
	// config maps file path -> key -> value, modelling the key-value style
	// configuration files STIG checks grep (sshd_config, login.defs, ...).
	config map[string]map[string]string
	log    *EventLog
	// readOnly makes every mutation a logged no-op, modelling hosts where
	// the enforcement agent lacks privileges — the failure-injection hook
	// for testing EnforcementStatus FAILURE paths.
	readOnly bool
	// unreachable makes every probe and mutation panic with ErrUnreachable,
	// modelling a host that dropped off the network mid-audit — the fault
	// hook that exercises the engine's panic isolation through real STIG
	// requirements (the check drivers of the VeriDevOps prototype fail this
	// way when ssh/WinRM transport dies).
	unreachable bool
	// rec, when attached, records every successful read's state key — the
	// dynamic declared-reads oracle (see record.go, fleet.VerifyReads).
	rec *ReadRecorder
}

// ErrUnreachable is the panic value every Linux operation raises while the
// host is marked unreachable. The fault-tolerant engine recovers it into a
// CheckError verdict; code calling hosts directly will crash, which is the
// point of the hook.
var ErrUnreachable = errors.New("host: unreachable")

// ErrCanceled is the panic value ctx-aware probes raise once the
// attempt's context is done: the execution engine has already abandoned
// the attempt (engine.Policy.AttemptTimeout), so unwinding here releases
// the probe goroutine early instead of letting it run to completion in
// the background. The engine's panic recovery absorbs the unwind; the
// discarded attempt's verdict was never going to be read.
var ErrCanceled = errors.New("host: probe canceled")

// SetUnreachable toggles the connectivity fault. While set, every probe
// and mutation panics with ErrUnreachable. Toggling back restores normal
// operation; host state is unaffected by the outage. Each transition is
// recorded in the event log (net.down / net.up) so post-mortem traces show
// when the transport was lost and regained — and so the fleet auditor's
// version-keyed cache re-audits the host after an outage.
func (l *Linux) SetUnreachable(down bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.unreachable == down {
		return
	}
	l.unreachable = down
	if down {
		l.log.AppendKeyed("net.down", "transport lost", NetKey())
	} else {
		l.log.AppendKeyed("net.up", "transport restored", NetKey())
	}
}

// ping panics when the host is unreachable; callers hold l.mu (every
// public method locks with a deferred unlock, so the panic unwinds
// cleanly and the host stays usable once reachable again).
func (l *Linux) ping() {
	if l.unreachable {
		panic(ErrUnreachable)
	}
}

// pingCtx is ping plus cooperative cancellation: an already-cancelled
// context means the engine abandoned this attempt, so the probe panics
// with ErrCanceled to unwind and release its goroutine. A nil context
// degrades to plain ping. Callers hold l.mu.
func (l *Linux) pingCtx(ctx context.Context) {
	if ctx != nil && ctx.Err() != nil {
		panic(ErrCanceled)
	}
	l.ping()
}

// SetReadOnly toggles mutation denial. While read-only, Install, Remove,
// service and config changes are logged as denied and have no effect.
func (l *Linux) SetReadOnly(ro bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.readOnly = ro
}

// denied logs and reports a blocked mutation; callers hold l.mu. The
// denied event keeps the mutation's state key: the slot did not change,
// but streaming consumers re-verify it so a blocked enforcement still
// produces a fresh verdict.
func (l *Linux) denied(action, detail string, key StateKey) bool {
	if !l.readOnly {
		return false
	}
	l.log.AppendKeyed(action+".denied", detail, key)
	return true
}

// NewLinux returns an empty Linux host.
func NewLinux() *Linux {
	return &Linux{
		packages: map[string]*Package{},
		services: map[string]*Service{},
		config:   map[string]map[string]string{},
		log:      NewEventLog(),
	}
}

// NewUbuntu1804 returns a host resembling a default Ubuntu 18.04 server
// install: the compliance-relevant hardening packages are absent and no
// banned legacy service is installed, i.e. the host starts in the state the
// STIG audit typically finds in the field.
func NewUbuntu1804() *Linux {
	l := NewLinux()
	for _, p := range []string{"openssh-server", "sudo", "apt", "systemd"} {
		l.Install(p, "1.0")
	}
	l.SetConfig("/etc/login.defs", "ENCRYPT_METHOD", "SHA512")
	l.SetConfig("/etc/ssh/sshd_config", "PermitEmptyPasswords", "no")
	return l
}

// Log returns the host event log.
func (l *Linux) Log() *EventLog { return l.log }

// Install marks a package installed (apt-get install).
func (l *Linux) Install(name, version string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.ping()
	if l.denied("apt.install", name, PackageKey(name)) {
		return
	}
	p, ok := l.packages[name]
	if !ok {
		p = &Package{Name: name}
		l.packages[name] = p
	}
	p.Version = version
	p.Installed = true
	l.log.AppendKeyed("apt.install", name, PackageKey(name))
}

// Remove marks a package uninstalled (apt-get remove). Removing an unknown
// package is a no-op, matching apt semantics with --ignore-missing.
func (l *Linux) Remove(name string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.ping()
	if l.denied("apt.remove", name, PackageKey(name)) {
		return
	}
	if p, ok := l.packages[name]; ok {
		p.Installed = false
	}
	l.log.AppendKeyed("apt.remove", name, PackageKey(name))
}

// Version returns the installed version of the named package, empty when
// the package is absent.
func (l *Linux) Version(name string) string {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.ping()
	l.rec.observe(PackageKey(name))
	if p, ok := l.packages[name]; ok && p.Installed {
		return p.Version
	}
	return ""
}

// Installed reports whether the named package is installed (dpkg -l).
func (l *Linux) Installed(name string) bool {
	return l.InstalledCtx(nil, name)
}

// InstalledCtx is Installed with cooperative cancellation: the probe
// checks ctx at its boundary and panics with ErrCanceled when the
// owning attempt was already abandoned (see engine.AttemptCtx).
func (l *Linux) InstalledCtx(ctx context.Context, name string) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.pingCtx(ctx)
	l.rec.observe(PackageKey(name))
	p, ok := l.packages[name]
	return ok && p.Installed
}

// Packages returns the installed package names, sorted.
func (l *Linux) Packages() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.ping()
	l.rec.observe(wildcard(KeyPackage))
	var out []string
	for _, p := range l.packages {
		if p.Installed {
			out = append(out, p.Name)
		}
	}
	sort.Strings(out)
	return out
}

// EnableService enables and starts a service (systemctl enable --now).
func (l *Linux) EnableService(name string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.ping()
	if l.denied("systemctl.enable", name, ServiceKey(name)) {
		return
	}
	s, ok := l.services[name]
	if !ok {
		s = &Service{Name: name}
		l.services[name] = s
	}
	s.Enabled = true
	s.Running = true
	l.log.AppendKeyed("systemctl.enable", name, ServiceKey(name))
}

// DisableService disables and stops a service.
func (l *Linux) DisableService(name string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.ping()
	if l.denied("systemctl.disable", name, ServiceKey(name)) {
		return
	}
	if s, ok := l.services[name]; ok {
		s.Enabled = false
		s.Running = false
	}
	l.log.AppendKeyed("systemctl.disable", name, ServiceKey(name))
}

// ServiceActive reports whether the service is enabled and running.
func (l *Linux) ServiceActive(name string) bool {
	return l.ServiceActiveCtx(nil, name)
}

// ServiceActiveCtx is ServiceActive with cooperative cancellation at the
// probe boundary (see InstalledCtx).
func (l *Linux) ServiceActiveCtx(ctx context.Context, name string) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.pingCtx(ctx)
	l.rec.observe(ServiceKey(name))
	s, ok := l.services[name]
	return ok && s.Enabled && s.Running
}

// SetConfig sets key=value in the given configuration file.
func (l *Linux) SetConfig(file, key, value string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.ping()
	if l.denied("config.set", file+":"+key, ConfigKey(file, key)) {
		return
	}
	f, ok := l.config[file]
	if !ok {
		f = map[string]string{}
		l.config[file] = f
	}
	f[key] = value
	l.log.AppendKeyed("config.set", fmt.Sprintf("%s:%s=%s", file, key, value), ConfigKey(file, key))
}

// Config returns the value of key in file, with ok=false when unset.
func (l *Linux) Config(file, key string) (string, bool) {
	return l.ConfigCtx(nil, file, key)
}

// ConfigCtx is Config with cooperative cancellation at the probe
// boundary (see InstalledCtx).
func (l *Linux) ConfigCtx(ctx context.Context, file, key string) (string, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.pingCtx(ctx)
	l.rec.observe(ConfigKey(file, key))
	f, ok := l.config[file]
	if !ok {
		return "", false
	}
	v, ok := f[key]
	return v, ok
}

// UnsetConfig removes a key from a configuration file.
func (l *Linux) UnsetConfig(file, key string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.ping()
	if l.denied("config.unset", file+":"+key, ConfigKey(file, key)) {
		return
	}
	if f, ok := l.config[file]; ok {
		delete(f, key)
	}
	l.log.AppendKeyed("config.unset", file+":"+key, ConfigKey(file, key))
}
