package host

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// AuditSetting is a Windows advanced-audit-policy setting for one
// subcategory: whether Success and/or Failure events are audited.
type AuditSetting struct {
	Success bool
	Failure bool
}

// String renders the setting the way auditpol.exe does.
func (s AuditSetting) String() string {
	switch {
	case s.Success && s.Failure:
		return "Success and Failure"
	case s.Success:
		return "Success"
	case s.Failure:
		return "Failure"
	default:
		return "No Auditing"
	}
}

// Windows is a simulated Windows 10 host: the advanced audit policy store
// that auditpol.exe manipulates, plus a string-valued registry. All methods
// are safe for concurrent use.
type Windows struct {
	mu sync.Mutex
	// audit maps subcategory -> setting; categories maps subcategory ->
	// category, mirroring the two-level auditpol taxonomy.
	audit      map[string]AuditSetting
	categories map[string]string
	registry   map[string]string
	log        *EventLog
	// rec, when attached, records every read's state key — the dynamic
	// declared-reads oracle (see record.go, fleet.VerifyReads).
	rec *ReadRecorder
}

// Audit-policy taxonomy used by the Windows 10 STIG findings implemented in
// internal/stig.
var win10Subcategories = map[string]string{
	"User Account Management":   "Account Management",
	"Security Group Management": "Account Management",
	"Logon":                     "Logon/Logoff",
	"Logoff":                    "Logon/Logoff",
	"Account Lockout":           "Logon/Logoff",
	"Sensitive Privilege Use":   "Privilege Use",
	"Audit Policy Change":       "Policy Change",
	"Security State Change":     "System",
}

// NewWindows10 returns a host resembling a fresh Windows 10 install: the
// default audit policy audits almost nothing, which is exactly the
// non-compliant state the STIG audit findings address.
func NewWindows10() *Windows {
	w := &Windows{
		audit:      map[string]AuditSetting{},
		categories: map[string]string{},
		registry:   map[string]string{},
		log:        NewEventLog(),
	}
	for sub, cat := range win10Subcategories {
		w.categories[sub] = cat
		w.audit[sub] = AuditSetting{} // No Auditing
	}
	// Windows defaults: success auditing of logon events is on.
	w.audit["Logon"] = AuditSetting{Success: true}
	return w
}

// Log returns the host event log.
func (w *Windows) Log() *EventLog { return w.log }

// Category returns the audit category owning the subcategory.
func (w *Windows) Category(subcategory string) (string, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	c, ok := w.categories[subcategory]
	if !ok {
		return "", fmt.Errorf("host: unknown audit subcategory %q", subcategory)
	}
	return c, nil
}

// GetAudit returns the audit setting of a subcategory.
func (w *Windows) GetAudit(subcategory string) (AuditSetting, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.rec.observe(AuditKey(subcategory))
	s, ok := w.audit[subcategory]
	if !ok {
		return AuditSetting{}, fmt.Errorf("host: unknown audit subcategory %q", subcategory)
	}
	return s, nil
}

// SetAudit sets the audit setting of a subcategory.
func (w *Windows) SetAudit(subcategory string, s AuditSetting) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if _, ok := w.audit[subcategory]; !ok {
		return fmt.Errorf("host: unknown audit subcategory %q", subcategory)
	}
	w.audit[subcategory] = s
	w.log.AppendKeyed("auditpol.set", subcategory+"="+s.String(), AuditKey(subcategory))
	return nil
}

// Subcategories returns all known subcategories, sorted.
func (w *Windows) Subcategories() []string {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.rec.observe(wildcard(KeyAudit))
	out := make([]string, 0, len(w.audit))
	for s := range w.audit {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// SetRegistry sets a registry value (path\name form).
func (w *Windows) SetRegistry(key, value string) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.registry[key] = value
	w.log.AppendKeyed("reg.set", key+"="+value, RegistryKey(key))
}

// Registry returns a registry value.
func (w *Windows) Registry(key string) (string, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.rec.observe(RegistryKey(key))
	v, ok := w.registry[key]
	return v, ok
}

// AuditPol emulates the auditpol.exe command-line interface that the
// reference AuditPolicyRequirement forks: Run accepts /get and /set
// invocations and produces (respectively parses) the same textual format.
// RQCODE's Windows requirements go through this text interface rather than
// the typed accessors, mirroring the paper's implementation note that
// checking "forks auditpol.exe and manipulates its input and output".
type AuditPol struct {
	W *Windows
}

// Run executes an auditpol-style command line. Supported forms:
//
//	/get /subcategory:"<name>"
//	/set /subcategory:"<name>" /success:enable|disable /failure:enable|disable
func (a AuditPol) Run(args ...string) (string, error) {
	if len(args) == 0 {
		return "", fmt.Errorf("auditpol: missing verb")
	}
	switch args[0] {
	case "/get":
		sub, err := argValue(args[1:], "/subcategory:")
		if err != nil {
			return "", err
		}
		s, err := a.W.GetAudit(sub)
		if err != nil {
			return "", err
		}
		cat, _ := a.W.Category(sub)
		// Mirrors the auditpol /get table layout.
		return fmt.Sprintf("Category/Subcategory                      Setting\n%s\n  %-40s%s\n", cat, sub, s), nil
	case "/set":
		sub, err := argValue(args[1:], "/subcategory:")
		if err != nil {
			return "", err
		}
		cur, err := a.W.GetAudit(sub)
		if err != nil {
			return "", err
		}
		if v, err := argValue(args[1:], "/success:"); err == nil {
			cur.Success = v == "enable"
		}
		if v, err := argValue(args[1:], "/failure:"); err == nil {
			cur.Failure = v == "enable"
		}
		if err := a.W.SetAudit(sub, cur); err != nil {
			return "", err
		}
		return "The command was successfully executed.\n", nil
	default:
		return "", fmt.Errorf("auditpol: unknown verb %q", args[0])
	}
}

// ParseSetting extracts the Setting column for a subcategory from an
// auditpol /get output.
func ParseSetting(output, subcategory string) (AuditSetting, error) {
	for _, line := range strings.Split(output, "\n") {
		trimmed := strings.TrimSpace(line)
		if !strings.HasPrefix(trimmed, subcategory) {
			continue
		}
		rest := strings.TrimSpace(strings.TrimPrefix(trimmed, subcategory))
		switch rest {
		case "Success and Failure":
			return AuditSetting{Success: true, Failure: true}, nil
		case "Success":
			return AuditSetting{Success: true}, nil
		case "Failure":
			return AuditSetting{Failure: true}, nil
		case "No Auditing":
			return AuditSetting{}, nil
		}
	}
	return AuditSetting{}, fmt.Errorf("auditpol: subcategory %q not found in output", subcategory)
}

func argValue(args []string, prefix string) (string, error) {
	for _, a := range args {
		if strings.HasPrefix(a, prefix) {
			return strings.Trim(strings.TrimPrefix(a, prefix), `"`), nil
		}
	}
	return "", fmt.Errorf("auditpol: missing %s argument", prefix)
}
