package host

import (
	"sync"
	"testing"
)

func TestEventLogVersionAdvancesPerAppend(t *testing.T) {
	l := NewEventLog()
	if v := l.Version(); v != 0 {
		t.Fatalf("fresh log Version = %d, want 0", v)
	}
	for i := 1; i <= 5; i++ {
		l.Append("op", "x")
		if v := l.Version(); v != uint64(i) {
			t.Fatalf("Version after %d appends = %d", i, v)
		}
	}
	if l.Len() != 5 {
		t.Errorf("Len = %d, want 5", l.Len())
	}
}

func TestEventLogVersionMonotonicUnderConcurrency(t *testing.T) {
	l := NewEventLog()
	const writers, per = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				l.Append("op", "x")
				l.Version()
			}
		}()
	}
	wg.Wait()
	if v := l.Version(); v != writers*per {
		t.Errorf("Version = %d, want %d", v, writers*per)
	}
}

func TestSetUnreachableLogsTransitions(t *testing.T) {
	l := NewLinux()
	v0 := l.Log().Version()

	l.SetUnreachable(true)
	l.SetUnreachable(true) // repeated flip must not re-log
	l.SetUnreachable(false)

	events := l.Log().Since(int(v0))
	if len(events) != 2 {
		t.Fatalf("got %d net events, want 2: %v", len(events), events)
	}
	if events[0].Action != "net.down" || events[1].Action != "net.up" {
		t.Errorf("events = %v, want net.down then net.up", events)
	}
	if l.Log().Version() != v0+2 {
		t.Errorf("Version = %d, want %d (one advance per transition)", l.Log().Version(), v0+2)
	}
	// The host must be fully usable after the outage ends.
	l.Install("aide", "1")
	if !l.Installed("aide") {
		t.Error("host unusable after outage cleared")
	}
}
