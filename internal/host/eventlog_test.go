package host

import (
	"sync"
	"testing"
)

func TestEventLogVersionAdvancesPerAppend(t *testing.T) {
	l := NewEventLog()
	if v := l.Version(); v != 0 {
		t.Fatalf("fresh log Version = %d, want 0", v)
	}
	for i := 1; i <= 5; i++ {
		l.Append("op", "x")
		if v := l.Version(); v != uint64(i) {
			t.Fatalf("Version after %d appends = %d", i, v)
		}
	}
	if l.Len() != 5 {
		t.Errorf("Len = %d, want 5", l.Len())
	}
}

func TestEventLogVersionMonotonicUnderConcurrency(t *testing.T) {
	l := NewEventLog()
	const writers, per = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				l.Append("op", "x")
				l.Version()
			}
		}()
	}
	wg.Wait()
	if v := l.Version(); v != writers*per {
		t.Errorf("Version = %d, want %d", v, writers*per)
	}
}

// TestEventLogSinceSnapshotImmutable pins the copy semantics of Since:
// the returned slice must never alias the log's internal storage, so a
// consumer iterating a snapshot while appends continue (the streamer's
// whole life) reads stable values.
func TestEventLogSinceSnapshotImmutable(t *testing.T) {
	l := NewEventLog()
	l.Append("a", "1")
	l.Append("b", "2")
	snap := l.Since(0)
	if len(snap) != 2 {
		t.Fatalf("Since(0) = %d events, want 2", len(snap))
	}
	// Mutating the snapshot must not leak into the log...
	snap[0].Action = "mutated"
	if got := l.Since(0)[0].Action; got != "a" {
		t.Errorf("log event mutated through snapshot: Action = %q, want %q", got, "a")
	}
	// ...and appends after the snapshot must not grow or change it.
	l.Append("c", "3")
	if len(snap) != 2 || snap[1].Action != "b" {
		t.Errorf("snapshot changed by later append: %v", snap)
	}
}

func TestEventLogSinceBounds(t *testing.T) {
	l := NewEventLog()
	if got := l.Since(0); got != nil {
		t.Errorf("Since(0) on empty log = %v, want nil", got)
	}
	l.Append("a", "1")
	l.Append("b", "2")
	if got := l.Since(-3); len(got) != 2 {
		t.Errorf("Since(-3) = %d events, want 2 (negative clamps to 0)", len(got))
	}
	if got := l.Since(2); got != nil {
		t.Errorf("Since(len) = %v, want nil", got)
	}
	if got := l.Since(99); got != nil {
		t.Errorf("Since(past end) = %v, want nil", got)
	}
}

// TestEventLogRaceAppendSinceVersion is the -race regression test for
// concurrent Append/Since/Version/Tail: it proves snapshots taken while
// writers append never observe torn events or alias live storage.
func TestEventLogRaceAppendSinceVersion(t *testing.T) {
	l := NewEventLog()
	const writers, per, readers = 4, 100, 4
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				l.AppendKeyed("op", "x", PackageKey("p"))
			}
		}()
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cursor := 0
			for i := 0; i < per; i++ {
				_ = l.Version()
				for _, ev := range l.Since(cursor / 2) {
					if ev.Action != "op" || ev.Key.Kind != KeyPackage {
						t.Errorf("torn event read: %+v", ev)
						return
					}
				}
				var evs []Event
				evs, cursor = l.Tail(cursor)
				for _, ev := range evs {
					// Mutate the snapshot: under -race this catches any
					// aliasing of the log's backing array by a writer.
					ev.Detail = "scribbled"
					_ = ev
				}
			}
		}()
	}
	wg.Wait()
	if v := l.Version(); v != writers*per {
		t.Errorf("Version = %d, want %d", v, writers*per)
	}
}

func TestEventLogTailCursor(t *testing.T) {
	l := NewEventLog()

	// Tail on an empty log: no events, cursor stays at 0.
	evs, next := l.Tail(0)
	if evs != nil || next != 0 {
		t.Fatalf("Tail(0) on empty log = (%v, %d), want (nil, 0)", evs, next)
	}

	l.Append("a", "1")
	l.Append("b", "2")
	l.Append("c", "3")

	// Tail from 0 returns everything and a cursor at the end.
	evs, next = l.Tail(0)
	if len(evs) != 3 || next != 3 {
		t.Fatalf("Tail(0) = (%d events, %d), want (3, 3)", len(evs), next)
	}
	if evs[0].Seq != 0 || evs[2].Seq != 2 {
		t.Errorf("Tail(0) seqs = %d..%d, want 0..2", evs[0].Seq, evs[2].Seq)
	}

	// Resuming from the returned cursor is empty until a new append.
	evs, next = l.Tail(next)
	if evs != nil || next != 3 {
		t.Fatalf("Tail(end) = (%v, %d), want (nil, 3)", evs, next)
	}
	l.Append("d", "4")
	evs, next = l.Tail(next)
	if len(evs) != 1 || evs[0].Action != "d" || next != 4 {
		t.Fatalf("Tail after append = (%v, %d), want ([d], 4)", evs, next)
	}

	// A cursor past the end must not go backwards or explode.
	evs, next = l.Tail(99)
	if evs != nil || next != 4 {
		t.Errorf("Tail(past end) = (%v, %d), want (nil, 4)", evs, next)
	}
	// A negative cursor reads from the beginning.
	evs, next = l.Tail(-1)
	if len(evs) != 4 || next != 4 {
		t.Errorf("Tail(-1) = (%d events, %d), want (4, 4)", len(evs), next)
	}
}

func TestEventLogSubscribe(t *testing.T) {
	l := NewEventLog()
	var got []Event
	cancel := l.Subscribe(func(ev Event) { got = append(got, ev) })
	l.AppendKeyed("apt.install", "aide", PackageKey("aide"))
	if len(got) != 1 || got[0].Key != PackageKey("aide") || got[0].Seq != 0 {
		t.Fatalf("subscriber saw %v, want one keyed apt.install event", got)
	}
	// A subscriber may call back into the log (notification runs
	// outside the lock).
	cancel2 := l.Subscribe(func(Event) { _ = l.Version() })
	l.Append("op", "x")
	if len(got) != 2 {
		t.Fatalf("subscriber saw %d events after second append, want 2", len(got))
	}
	cancel()
	cancel() // idempotent
	cancel2()
	l.Append("op", "y")
	if len(got) != 2 {
		t.Errorf("cancelled subscriber still notified: %v", got)
	}
}

func TestStateKeyForms(t *testing.T) {
	cases := []struct {
		key  StateKey
		want string
	}{
		{PackageKey("telnetd"), "pkg:telnetd"},
		{ServiceKey("rsh.socket"), "svc:rsh.socket"},
		{ConfigKey("/etc/ssh/sshd_config", "Ciphers"), "cfg:/etc/ssh/sshd_config:Ciphers"},
		{AuditKey("Logon"), "audit:Logon"},
		{RegistryKey(`HKLM\SOFTWARE\Policies\X`), `reg:HKLM\SOFTWARE\Policies\X`},
		{NetKey(), "net:transport"},
	}
	for _, c := range cases {
		if got := c.key.String(); got != c.want {
			t.Errorf("%+v.String() = %q, want %q", c.key, got, c.want)
		}
		if c.key.IsZero() {
			t.Errorf("%+v.IsZero() = true", c.key)
		}
	}
	if !(StateKey{}).IsZero() {
		t.Error("zero StateKey.IsZero() = false")
	}
}

// TestMutatorsEmitKeys pins the key every mutator attaches to its event:
// the reverse dependency index depends on these exact strings.
func TestMutatorsEmitKeys(t *testing.T) {
	l := NewLinux()
	l.Install("aide", "1")
	l.Remove("telnetd")
	l.EnableService("auditd")
	l.DisableService("rsh.socket")
	l.SetConfig("/etc/login.defs", "ENCRYPT_METHOD", "SHA512")
	l.UnsetConfig("/etc/login.defs", "ENCRYPT_METHOD")
	want := []StateKey{
		PackageKey("aide"),
		PackageKey("telnetd"),
		ServiceKey("auditd"),
		ServiceKey("rsh.socket"),
		ConfigKey("/etc/login.defs", "ENCRYPT_METHOD"),
		ConfigKey("/etc/login.defs", "ENCRYPT_METHOD"),
	}
	evs := l.Log().Since(0)
	if len(evs) != len(want) {
		t.Fatalf("got %d events, want %d: %v", len(evs), len(want), evs)
	}
	for i, ev := range evs {
		if ev.Key != want[i] {
			t.Errorf("event %d (%s) key = %v, want %v", i, ev.Action, ev.Key, want[i])
		}
	}

	// Denied mutations keep the key so push consumers still re-verify.
	l.SetReadOnly(true)
	l.Install("doas", "1")
	evs = l.Log().Since(len(want))
	if len(evs) != 1 || evs[0].Action != "apt.install.denied" || evs[0].Key != PackageKey("doas") {
		t.Errorf("denied install event = %v, want keyed apt.install.denied", evs)
	}

	w := NewWindows10()
	base := w.Log().Len()
	if err := w.SetAudit("Logon", AuditSetting{Success: true, Failure: true}); err != nil {
		t.Fatal(err)
	}
	w.SetRegistry(`HKLM\X`, "1")
	wevs := w.Log().Since(base)
	if len(wevs) != 2 || wevs[0].Key != AuditKey("Logon") || wevs[1].Key != RegistryKey(`HKLM\X`) {
		t.Errorf("windows events = %v, want audit + registry keys", wevs)
	}
}

func TestSetUnreachableLogsTransitions(t *testing.T) {
	l := NewLinux()
	v0 := l.Log().Version()

	l.SetUnreachable(true)
	l.SetUnreachable(true) // repeated flip must not re-log
	l.SetUnreachable(false)

	events := l.Log().Since(int(v0))
	if len(events) != 2 {
		t.Fatalf("got %d net events, want 2: %v", len(events), events)
	}
	if events[0].Action != "net.down" || events[1].Action != "net.up" {
		t.Errorf("events = %v, want net.down then net.up", events)
	}
	if l.Log().Version() != v0+2 {
		t.Errorf("Version = %d, want %d (one advance per transition)", l.Log().Version(), v0+2)
	}
	// The host must be fully usable after the outage ends.
	l.Install("aide", "1")
	if !l.Installed("aide") {
		t.Error("host unusable after outage cleared")
	}
}
