package host

import (
	"math/rand"
	"strings"
	"testing"
)

func TestSnapshotDiffEmpty(t *testing.T) {
	l := NewUbuntu1804()
	s := l.Snapshot()
	if got := Diff(s, l.Snapshot()); len(got) != 0 {
		t.Errorf("identical snapshots should not differ: %v", got)
	}
	if RenderDiff(nil) != "no changes\n" {
		t.Error("empty render wrong")
	}
}

func TestSnapshotDiffKinds(t *testing.T) {
	l := NewUbuntu1804()
	before := l.Snapshot()

	l.Install("nis", "3.17")                                // package added
	l.Remove("openssh-server")                              // package removed
	l.Install("sudo", "2.0")                                // version change
	l.EnableService("telnet")                               // service appears
	l.SetConfig("/etc/login.defs", "ENCRYPT_METHOD", "MD5") // config change
	l.SetConfig("/new", "k", "v")                           // config added
	after := l.Snapshot()

	changes := Diff(before, after)
	byItem := map[string]Change{}
	for _, c := range changes {
		byItem[c.Kind+"/"+c.Item] = c
	}
	if c := byItem["package/nis"]; c.Before != "absent" || c.After != "3.17" {
		t.Errorf("nis change = %+v", c)
	}
	if c := byItem["package/openssh-server"]; c.After != "absent" {
		t.Errorf("openssh-server change = %+v", c)
	}
	if c := byItem["package/sudo"]; c.Before != "1.0" || c.After != "2.0" {
		t.Errorf("sudo change = %+v", c)
	}
	if c := byItem["service/telnet"]; c.Before != "absent" || c.After != "active" {
		t.Errorf("telnet change = %+v", c)
	}
	if c := byItem["config//etc/login.defs:ENCRYPT_METHOD"]; c.Before != "SHA512" || c.After != "MD5" {
		t.Errorf("encrypt change = %+v", c)
	}
	if c := byItem["config//new:k"]; c.After != "v" {
		t.Errorf("new config change = %+v", c)
	}
	if len(changes) != 6 {
		t.Errorf("changes = %d, want 6:\n%s", len(changes), RenderDiff(changes))
	}
}

func TestSnapshotDiffServiceToggle(t *testing.T) {
	l := NewLinux()
	l.EnableService("auditd")
	before := l.Snapshot()
	l.DisableService("auditd")
	changes := Diff(before, l.Snapshot())
	if len(changes) != 1 || changes[0].Before != "active" || changes[0].After != "inactive" {
		t.Errorf("changes = %v", changes)
	}
}

func TestRenderDiffSortedAndCounted(t *testing.T) {
	l := NewUbuntu1804()
	before := l.Snapshot()
	DriftLinux(l, 6, rand.New(rand.NewSource(2)))
	out := RenderDiff(Diff(before, l.Snapshot()))
	if !strings.Contains(out, "changes\n") {
		t.Errorf("render = %q", out)
	}
	// Kinds appear grouped: config before package before service.
	ci, pi := strings.Index(out, "config"), strings.Index(out, "package")
	if ci >= 0 && pi >= 0 && ci > pi {
		t.Error("diff not sorted by kind")
	}
}

func TestSnapshotIsIsolatedCopy(t *testing.T) {
	l := NewUbuntu1804()
	s := l.Snapshot()
	l.Install("nis", "1")
	if _, ok := s.Packages["nis"]; ok {
		t.Error("snapshot must not alias live state")
	}
}

// TestNewLinuxFromSnapshotRoundTrip provisions a host from a reference
// host's snapshot and checks the observable state matches: the bulk path
// must be indistinguishable from per-mutation construction except for
// the single provision event it logs.
func TestNewLinuxFromSnapshotRoundTrip(t *testing.T) {
	ref := NewUbuntu1804()
	ref.Install("nginx", "1.24")
	ref.EnableService("nginx")
	ref.DisableService("telnet")
	ref.SetConfig("/etc/nginx/nginx.conf", "worker_processes", "4")

	got := NewLinuxFromSnapshot(ref.Snapshot())
	if d := Diff(ref.Snapshot(), got.Snapshot()); len(d) != 0 {
		t.Fatalf("provisioned host diverges from reference:\n%s", RenderDiff(d))
	}
	if got.Log().Len() != 1 {
		t.Errorf("bulk provision logged %d events, want 1", got.Log().Len())
	}
	if v := got.Log().Version(); v != 1 {
		t.Errorf("provisioned version = %d, want 1 (cache keys need a nonzero version)", v)
	}
	// The provisioned host stays mutable through the normal logged paths.
	got.Remove("nginx")
	if got.Installed("nginx") {
		t.Error("provisioned host must accept normal mutations")
	}
	if got.Log().Len() != 2 {
		t.Errorf("mutation after provision logged %d events, want 2", got.Log().Len())
	}
}

func TestNewLinuxFromSnapshotSkipsMalformedConfigKeys(t *testing.T) {
	l := NewLinuxFromSnapshot(Snapshot{
		Config: map[string]string{"no-separator": "x", "/etc/f:k": "v", ":empty": "y", "/etc/g:": "z"},
	})
	if v, ok := l.Config("/etc/f", "k"); !ok || v != "v" {
		t.Errorf("well-formed key lost: %q/%v", v, ok)
	}
	if _, ok := l.Config("no-separator", ""); ok {
		t.Error("malformed config item must be skipped")
	}
}
