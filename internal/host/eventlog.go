package host

import (
	"fmt"
	"sync"
	"time"
)

// Event is one entry of a host event log.
type Event struct {
	Seq    int
	At     time.Time
	Action string
	Detail string
}

func (e Event) String() string {
	return fmt.Sprintf("#%d %s %s", e.Seq, e.Action, e.Detail)
}

// EventLog is an append-only, concurrency-safe record of host mutations.
// The reactive-protection monitors consume it to detect drift at runtime,
// and the fleet auditor's incremental cache keys on its version counter.
type EventLog struct {
	mu     sync.Mutex
	events []Event
	// version counts appends ever made. It equals Len today, but stays
	// monotonic even if the log later gains truncation or compaction, so
	// cache keys built on it never go backwards.
	version uint64
}

// NewEventLog returns an empty log.
func NewEventLog() *EventLog { return &EventLog{} }

// Append records an event and returns its sequence number.
func (l *EventLog) Append(action, detail string) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	seq := len(l.events)
	l.events = append(l.events, Event{Seq: seq, At: time.Now(), Action: action, Detail: detail})
	l.version++
	return seq
}

// Version returns the log's monotonic state version: it advances on every
// Append and never decreases. Consumers that cache per-host results (the
// fleet auditor's incremental sweeps) compare versions to decide whether a
// host's state moved since the last audit.
func (l *EventLog) Version() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.version
}

// Len returns the number of recorded events.
func (l *EventLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.events)
}

// Since returns a copy of the events with sequence >= seq.
func (l *EventLog) Since(seq int) []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	if seq < 0 {
		seq = 0
	}
	if seq >= len(l.events) {
		return nil
	}
	out := make([]Event, len(l.events)-seq)
	copy(out, l.events[seq:])
	return out
}
