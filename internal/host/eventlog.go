package host

import (
	"fmt"
	"sync"
	"time"
)

// Kinds of state slots a StateKey can name. The kind strings are short
// because they appear in every rendered key ("pkg:nis") and in the
// reverse dependency index the fleet streamer builds from them.
const (
	// KeyPackage names a dpkg package ("pkg:<name>").
	KeyPackage = "pkg"
	// KeyService names a systemd service ("svc:<name>").
	KeyService = "svc"
	// KeyConfig names one key of one configuration file
	// ("cfg:<file>:<key>").
	KeyConfig = "cfg"
	// KeyAudit names a Windows advanced-audit-policy subcategory
	// ("audit:<subcategory>").
	KeyAudit = "audit"
	// KeyRegistry names a Windows registry value ("reg:<path\name>").
	KeyRegistry = "reg"
	// KeyNet is the host's transport connectivity ("net:transport").
	// Connectivity moves every probe's observability at once, so
	// consumers must treat a net-keyed event as touching the whole host,
	// not one state slot.
	KeyNet = "net"
)

// StateKey is the structured identity of the host-state slot an event
// touched: a kind plus the slot name within that kind. It is the machine-
// readable companion of Event.Detail — the fleet streamer maps keys
// through a reverse dependency index to the requirement checks that read
// them, re-evaluating O(changed keys) instead of whole hosts. The zero
// value marks an event with no structured key (bulk provisioning, legacy
// appends); consumers must treat such events as touching the whole host.
type StateKey struct {
	Kind string
	Name string
}

// IsZero reports whether the key is the unkeyed sentinel.
func (k StateKey) IsZero() bool { return k.Kind == "" && k.Name == "" }

// String renders the canonical "kind:name" form — the exact strings
// requirement checks declare via core.KeyReader, so index lookups are
// plain string equality.
func (k StateKey) String() string { return k.Kind + ":" + k.Name }

// PackageKey returns the state key of a package's installed state.
func PackageKey(name string) StateKey { return StateKey{Kind: KeyPackage, Name: name} }

// ServiceKey returns the state key of a service's enabled/running state.
func ServiceKey(name string) StateKey { return StateKey{Kind: KeyService, Name: name} }

// ConfigKey returns the state key of one configuration file key.
func ConfigKey(file, key string) StateKey {
	return StateKey{Kind: KeyConfig, Name: file + ":" + key}
}

// AuditKey returns the state key of a Windows audit-policy subcategory.
func AuditKey(subcategory string) StateKey {
	return StateKey{Kind: KeyAudit, Name: subcategory}
}

// RegistryKey returns the state key of a Windows registry value.
func RegistryKey(key string) StateKey { return StateKey{Kind: KeyRegistry, Name: key} }

// NetKey returns the whole-host transport-connectivity key.
func NetKey() StateKey { return StateKey{Kind: KeyNet, Name: "transport"} }

// Event is one entry of a host event log.
type Event struct {
	Seq    int
	At     time.Time
	Action string
	Detail string
	// Key is the structured identity of the state slot the event
	// touched; the zero value means the event carries no key and must be
	// treated as touching the whole host (see StateKey).
	Key StateKey
}

func (e Event) String() string {
	return fmt.Sprintf("#%d %s %s", e.Seq, e.Action, e.Detail)
}

// EventLog is an append-only, concurrency-safe record of host mutations.
// The reactive-protection monitors consume it to detect drift at runtime,
// the fleet auditor's incremental cache keys on its version counter, and
// the fleet streamer tails it (Tail, Subscribe) for push-based
// incremental evaluation.
type EventLog struct {
	mu     sync.Mutex
	events []Event
	// version counts appends ever made. It equals Len today, but stays
	// monotonic even if the log later gains truncation or compaction, so
	// cache keys built on it never go backwards.
	version uint64
	// subs holds the append subscribers keyed by registration id, so a
	// departed subscriber (Subscribe's cancel) leaves no hole to skip.
	subs    map[int]func(Event)
	nextSub int
}

// NewEventLog returns an empty log.
func NewEventLog() *EventLog { return &EventLog{} }

// Append records an event with no structured state key and returns its
// sequence number. Prefer AppendKeyed for mutations that touch one
// identifiable state slot: unkeyed events force streaming consumers to
// re-evaluate the whole host.
func (l *EventLog) Append(action, detail string) int {
	return l.AppendKeyed(action, detail, StateKey{})
}

// AppendKeyed records an event carrying the structured key of the state
// slot it touched and returns its sequence number. Subscribers are
// notified after the append is visible (outside the log's lock, so a
// subscriber may call back into the log).
func (l *EventLog) AppendKeyed(action, detail string, key StateKey) int {
	l.mu.Lock()
	seq := len(l.events)
	ev := Event{Seq: seq, At: time.Now(), Action: action, Detail: detail, Key: key}
	l.events = append(l.events, ev)
	l.version++
	var subs []func(Event)
	if len(l.subs) > 0 {
		subs = make([]func(Event), 0, len(l.subs))
		for _, fn := range l.subs {
			subs = append(subs, fn)
		}
	}
	l.mu.Unlock()
	for _, fn := range subs {
		fn(ev)
	}
	return seq
}

// Subscribe registers fn to be called after every subsequent append,
// with the appended event. Notifications run on the appending goroutine
// after the log's lock is released — fn may call back into the log but
// must not block, and concurrent appends may deliver notifications out
// of sequence order (tail the log with Tail for ordered consumption;
// subscriptions are the wake-up signal, not the data channel). The
// returned cancel function removes the subscription; it is idempotent.
func (l *EventLog) Subscribe(fn func(Event)) (cancel func()) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.subs == nil {
		l.subs = map[int]func(Event){}
	}
	id := l.nextSub
	l.nextSub++
	l.subs[id] = fn
	return func() {
		l.mu.Lock()
		defer l.mu.Unlock()
		delete(l.subs, id)
	}
}

// Version returns the log's monotonic state version: it advances on every
// Append and never decreases. Consumers that cache per-host results (the
// fleet auditor's incremental sweeps) compare versions to decide whether a
// host's state moved since the last audit.
func (l *EventLog) Version() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.version
}

// Len returns the number of recorded events.
func (l *EventLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.events)
}

// Since returns the events with sequence >= seq as an immutable
// snapshot: the returned slice is freshly allocated on every call and
// its Event elements are plain values, so later Appends (and anything
// the caller does to the slice) never alias the log's internal storage.
// A seq at or past the end returns nil; a negative seq is clamped to 0.
func (l *EventLog) Since(seq int) []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	if seq < 0 {
		seq = 0
	}
	if seq >= len(l.events) {
		return nil
	}
	out := make([]Event, len(l.events)-seq)
	copy(out, l.events[seq:])
	return out
}

// Tail is the cursor-style read the fleet streamer consumes deltas
// with: it returns the events with sequence >= from (same immutable-
// snapshot semantics as Since) plus the cursor to pass to the next call
// — the sequence number one past the last event returned, i.e. the
// log's current length. A from at or past the end returns (nil, Len):
// the caller's cursor never goes backwards. A negative from reads from
// the beginning.
func (l *EventLog) Tail(from int) (events []Event, next int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	next = len(l.events)
	if from < 0 {
		from = 0
	}
	if from >= next {
		return nil, next
	}
	events = make([]Event, next-from)
	copy(events, l.events[from:])
	return events, next
}
