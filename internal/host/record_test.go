package host

import (
	"reflect"
	"testing"
)

func TestReadRecorderCapturesLinuxReads(t *testing.T) {
	l := NewUbuntu1804()
	rec := NewReadRecorder()
	l.SetRecorder(rec)

	l.Installed("sudo")
	l.Installed("sudo")
	l.Version("apt")
	l.ServiceActive("sshd")
	l.Config("/etc/login.defs", "ENCRYPT_METHOD")
	l.Packages()

	want := []string{
		"cfg:/etc/login.defs:ENCRYPT_METHOD",
		"pkg:*",
		"pkg:apt",
		"pkg:sudo",
		"svc:sshd",
	}
	if got := rec.Keys(); !reflect.DeepEqual(got, want) {
		t.Fatalf("recorded keys = %v, want %v", got, want)
	}
	if n := rec.Count("pkg:sudo"); n != 2 {
		t.Fatalf("pkg:sudo read count = %d, want 2", n)
	}
	rec.Reset()
	if got := rec.Keys(); len(got) != 0 {
		t.Fatalf("keys after Reset = %v, want empty", got)
	}
	// Detached recorder: further reads do not record.
	l.SetRecorder(nil)
	l.Installed("sudo")
	if got := rec.Keys(); len(got) != 0 {
		t.Fatalf("detached recorder captured %v", got)
	}
}

func TestReadRecorderCapturesWindowsReads(t *testing.T) {
	w := NewWindows10()
	rec := NewReadRecorder()
	w.SetRecorder(rec)

	if _, err := w.GetAudit("Logon"); err != nil {
		t.Fatalf("GetAudit: %v", err)
	}
	w.Registry(`HKLM\Software\Policies\X`)
	w.Subcategories()
	// The auditpol text interface routes through GetAudit, so forked
	// /get invocations record too.
	ap := AuditPol{W: w}
	if _, err := ap.Run("/get", `/subcategory:"Account Lockout"`); err != nil {
		t.Fatalf("auditpol /get: %v", err)
	}

	want := []string{
		"audit:*",
		"audit:Account Lockout",
		"audit:Logon",
		`reg:HKLM\Software\Policies\X`,
	}
	if got := rec.Keys(); !reflect.DeepEqual(got, want) {
		t.Fatalf("recorded keys = %v, want %v", got, want)
	}
}

func TestReadRecorderUnreachableRecordsNothing(t *testing.T) {
	l := NewUbuntu1804()
	rec := NewReadRecorder()
	l.SetRecorder(rec)
	l.SetUnreachable(true)
	func() {
		defer func() {
			if r := recover(); r != ErrUnreachable {
				t.Fatalf("recovered %v, want ErrUnreachable", r)
			}
		}()
		l.Installed("sudo")
	}()
	if got := rec.Keys(); len(got) != 0 {
		t.Fatalf("unreachable probe recorded %v, want nothing", got)
	}
}
