package host

import (
	"fmt"
	"sort"
	"strings"
)

// State snapshots and forensic diffing: protection reports say *that* a
// host drifted; the diff says *what* changed, the evidence operators need
// to trace an alarm back to a change.

// Snapshot is an immutable capture of a Linux host's observable state.
type Snapshot struct {
	// Packages maps installed package name -> version.
	Packages map[string]string
	// Services maps service name -> active.
	Services map[string]bool
	// Config maps "file:key" -> value.
	Config map[string]string
}

// Snapshot captures the current state.
func (l *Linux) Snapshot() Snapshot {
	l.mu.Lock()
	defer l.mu.Unlock()
	s := Snapshot{
		Packages: map[string]string{},
		Services: map[string]bool{},
		Config:   map[string]string{},
	}
	for name, p := range l.packages {
		if p.Installed {
			s.Packages[name] = p.Version
		}
	}
	for name, sv := range l.services {
		s.Services[name] = sv.Enabled && sv.Running
	}
	for file, kv := range l.config {
		for k, v := range kv {
			s.Config[file+":"+k] = v
		}
	}
	return s
}

// NewLinuxFromSnapshot provisions a host in one step from a snapshot,
// recording a single "provision" event instead of one event per
// mutation. This is the bulk path the load generator uses to synthesize
// 10k–1M hosts: per-mutation construction would cost tens of event-log
// entries per host, which at mega-fleet scale dominates both synthesis
// time and memory. Services restore as enabled+running when active in
// the snapshot and present-but-stopped otherwise; config keys with a
// malformed "file:key" item are skipped.
func NewLinuxFromSnapshot(s Snapshot) *Linux {
	l := NewLinux()
	l.mu.Lock()
	defer l.mu.Unlock()
	for name, version := range s.Packages {
		l.packages[name] = &Package{Name: name, Version: version, Installed: true}
	}
	for name, active := range s.Services {
		l.services[name] = &Service{Name: name, Enabled: active, Running: active}
	}
	for item, value := range s.Config {
		file, key, ok := strings.Cut(item, ":")
		if !ok || file == "" || key == "" {
			continue
		}
		f := l.config[file]
		if f == nil {
			f = map[string]string{}
			l.config[file] = f
		}
		f[key] = value
	}
	l.log.Append("provision", fmt.Sprintf(
		"%d packages, %d services, %d config keys",
		len(s.Packages), len(s.Services), len(s.Config)))
	return l
}

// Change is one difference between two snapshots.
type Change struct {
	// Kind is "package", "service" or "config".
	Kind string
	// Item names the changed entity (package name, service name or
	// "file:key").
	Item string
	// Before and After are the values on each side; "" / "absent" marks
	// non-existence.
	Before, After string
}

func (c Change) String() string {
	return fmt.Sprintf("%-8s %-40s %q -> %q", c.Kind, c.Item, c.Before, c.After)
}

// Diff lists the changes from old to new, sorted by kind then item.
func Diff(old, new Snapshot) []Change {
	var out []Change
	diffMap := func(kind string, a, b map[string]string) {
		keys := map[string]struct{}{}
		for k := range a {
			keys[k] = struct{}{}
		}
		for k := range b {
			keys[k] = struct{}{}
		}
		for k := range keys {
			av, aok := a[k]
			bv, bok := b[k]
			switch {
			case aok && !bok:
				out = append(out, Change{Kind: kind, Item: k, Before: av, After: "absent"})
			case !aok && bok:
				out = append(out, Change{Kind: kind, Item: k, Before: "absent", After: bv})
			case av != bv:
				out = append(out, Change{Kind: kind, Item: k, Before: av, After: bv})
			}
		}
	}
	diffMap("package", old.Packages, new.Packages)
	diffMap("config", old.Config, new.Config)

	svc := map[string]struct{}{}
	for k := range old.Services {
		svc[k] = struct{}{}
	}
	for k := range new.Services {
		svc[k] = struct{}{}
	}
	for k := range svc {
		a, aok := old.Services[k]
		b, bok := new.Services[k]
		if aok == bok && a == b {
			continue
		}
		out = append(out, Change{
			Kind: "service", Item: k,
			Before: activeString(a, aok), After: activeString(b, bok),
		})
	}

	sort.Slice(out, func(i, j int) bool {
		if out[i].Kind != out[j].Kind {
			return out[i].Kind < out[j].Kind
		}
		return out[i].Item < out[j].Item
	})
	return out
}

func activeString(active, known bool) string {
	switch {
	case !known:
		return "absent"
	case active:
		return "active"
	default:
		return "inactive"
	}
}

// RenderDiff formats a change list.
func RenderDiff(changes []Change) string {
	if len(changes) == 0 {
		return "no changes\n"
	}
	var b strings.Builder
	for _, c := range changes {
		fmt.Fprintln(&b, c)
	}
	fmt.Fprintf(&b, "%d changes\n", len(changes))
	return b.String()
}
