package host

import (
	"context"
	"math/rand"
	"strings"
	"testing"
)

func TestLinuxPackageLifecycle(t *testing.T) {
	l := NewLinux()
	if l.Installed("nis") {
		t.Error("fresh host should not have nis")
	}
	l.Install("nis", "3.17")
	if !l.Installed("nis") {
		t.Error("nis should be installed")
	}
	l.Remove("nis")
	if l.Installed("nis") {
		t.Error("nis should be removed")
	}
	l.Remove("ghost") // no-op, must not panic
}

func TestLinuxPackagesSorted(t *testing.T) {
	l := NewLinux()
	l.Install("zsh", "1")
	l.Install("aide", "1")
	l.Install("mid", "1")
	l.Remove("mid")
	got := l.Packages()
	if len(got) != 2 || got[0] != "aide" || got[1] != "zsh" {
		t.Errorf("Packages = %v", got)
	}
}

func TestLinuxServices(t *testing.T) {
	l := NewLinux()
	if l.ServiceActive("sshd") {
		t.Error("unknown service should be inactive")
	}
	l.EnableService("sshd")
	if !l.ServiceActive("sshd") {
		t.Error("enabled service should be active")
	}
	l.DisableService("sshd")
	if l.ServiceActive("sshd") {
		t.Error("disabled service should be inactive")
	}
}

func TestLinuxConfig(t *testing.T) {
	l := NewLinux()
	if _, ok := l.Config("/etc/login.defs", "ENCRYPT_METHOD"); ok {
		t.Error("unset key should not be found")
	}
	l.SetConfig("/etc/login.defs", "ENCRYPT_METHOD", "SHA512")
	v, ok := l.Config("/etc/login.defs", "ENCRYPT_METHOD")
	if !ok || v != "SHA512" {
		t.Errorf("Config = %q,%v", v, ok)
	}
	l.UnsetConfig("/etc/login.defs", "ENCRYPT_METHOD")
	if _, ok := l.Config("/etc/login.defs", "ENCRYPT_METHOD"); ok {
		t.Error("unset key should be gone")
	}
	l.UnsetConfig("/missing", "key") // must not panic
}

func TestUbuntu1804Baseline(t *testing.T) {
	l := NewUbuntu1804()
	if !l.Installed("openssh-server") {
		t.Error("baseline should include openssh-server")
	}
	for _, banned := range BannedPackages {
		if l.Installed(banned) {
			t.Errorf("baseline should not include %s", banned)
		}
	}
	if v, _ := l.Config("/etc/login.defs", "ENCRYPT_METHOD"); v != "SHA512" {
		t.Errorf("ENCRYPT_METHOD = %q, want SHA512", v)
	}
}

func TestEventLog(t *testing.T) {
	l := NewEventLog()
	if l.Len() != 0 {
		t.Fatal("fresh log should be empty")
	}
	s1 := l.Append("a", "1")
	s2 := l.Append("b", "2")
	if s1 != 0 || s2 != 1 {
		t.Errorf("sequence numbers %d,%d", s1, s2)
	}
	evs := l.Since(1)
	if len(evs) != 1 || evs[0].Action != "b" {
		t.Errorf("Since(1) = %v", evs)
	}
	if l.Since(99) != nil {
		t.Error("Since past end should be nil")
	}
	if got := l.Since(-5); len(got) != 2 {
		t.Errorf("Since(-5) = %v", got)
	}
	if !strings.Contains(evs[0].String(), "b 2") {
		t.Errorf("Event.String = %q", evs[0].String())
	}
}

func TestLinuxActionsAreLogged(t *testing.T) {
	l := NewLinux()
	l.Install("nis", "1")
	l.Remove("nis")
	l.SetConfig("/f", "k", "v")
	if l.Log().Len() != 3 {
		t.Errorf("log has %d events, want 3", l.Log().Len())
	}
}

func TestWindowsAuditDefaults(t *testing.T) {
	w := NewWindows10()
	s, err := w.GetAudit("Logon")
	if err != nil {
		t.Fatal(err)
	}
	if !s.Success || s.Failure {
		t.Errorf("default Logon = %v, want Success only", s)
	}
	s, err = w.GetAudit("Sensitive Privilege Use")
	if err != nil || s.Success || s.Failure {
		t.Errorf("default Sensitive Privilege Use = %v, want No Auditing", s)
	}
	if _, err := w.GetAudit("Ghost"); err == nil {
		t.Error("unknown subcategory must error")
	}
}

func TestWindowsCategoryTaxonomy(t *testing.T) {
	w := NewWindows10()
	c, err := w.Category("User Account Management")
	if err != nil || c != "Account Management" {
		t.Errorf("Category = %q, %v", c, err)
	}
	if _, err := w.Category("Ghost"); err == nil {
		t.Error("unknown subcategory must error")
	}
	subs := w.Subcategories()
	if len(subs) != 8 {
		t.Errorf("Subcategories = %d entries, want 8", len(subs))
	}
}

func TestWindowsSetAudit(t *testing.T) {
	w := NewWindows10()
	if err := w.SetAudit("Logon", AuditSetting{Success: true, Failure: true}); err != nil {
		t.Fatal(err)
	}
	s, _ := w.GetAudit("Logon")
	if !s.Success || !s.Failure {
		t.Errorf("after set: %v", s)
	}
	if err := w.SetAudit("Ghost", AuditSetting{}); err == nil {
		t.Error("unknown subcategory must error")
	}
}

func TestAuditSettingString(t *testing.T) {
	cases := map[string]AuditSetting{
		"No Auditing":         {},
		"Success":             {Success: true},
		"Failure":             {Failure: true},
		"Success and Failure": {Success: true, Failure: true},
	}
	for want, s := range cases {
		if s.String() != want {
			t.Errorf("%+v prints %q, want %q", s, s.String(), want)
		}
	}
}

func TestWindowsRegistry(t *testing.T) {
	w := NewWindows10()
	if _, ok := w.Registry(`HKLM\X`); ok {
		t.Error("unset key found")
	}
	w.SetRegistry(`HKLM\X`, "1")
	if v, ok := w.Registry(`HKLM\X`); !ok || v != "1" {
		t.Errorf("Registry = %q,%v", v, ok)
	}
}

func TestAuditPolTextInterface(t *testing.T) {
	w := NewWindows10()
	ap := AuditPol{W: w}

	out, err := ap.Run("/get", `/subcategory:"Logon"`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Logon/Logoff") || !strings.Contains(out, "Logon") {
		t.Errorf("get output missing category/subcategory:\n%s", out)
	}
	s, err := ParseSetting(out, "Logon")
	if err != nil || !s.Success || s.Failure {
		t.Errorf("ParseSetting = %v, %v", s, err)
	}

	if _, err := ap.Run("/set", `/subcategory:"Logon"`, "/success:enable", "/failure:enable"); err != nil {
		t.Fatal(err)
	}
	out, _ = ap.Run("/get", `/subcategory:"Logon"`)
	s, err = ParseSetting(out, "Logon")
	if err != nil || !s.Success || !s.Failure {
		t.Errorf("after set: %v, %v", s, err)
	}
}

func TestAuditPolErrors(t *testing.T) {
	ap := AuditPol{W: NewWindows10()}
	if _, err := ap.Run(); err == nil {
		t.Error("missing verb must error")
	}
	if _, err := ap.Run("/frob"); err == nil {
		t.Error("unknown verb must error")
	}
	if _, err := ap.Run("/get"); err == nil {
		t.Error("missing subcategory must error")
	}
	if _, err := ap.Run("/get", `/subcategory:"Ghost"`); err == nil {
		t.Error("unknown subcategory must error")
	}
	if _, err := ap.Run("/set", `/subcategory:"Ghost"`, "/success:enable"); err == nil {
		t.Error("set on unknown subcategory must error")
	}
	if _, err := ParseSetting("garbage", "Logon"); err == nil {
		t.Error("ParseSetting on garbage must error")
	}
}

func TestParseSettingAllForms(t *testing.T) {
	w := NewWindows10()
	ap := AuditPol{W: w}
	forms := []AuditSetting{
		{},
		{Success: true},
		{Failure: true},
		{Success: true, Failure: true},
	}
	for _, want := range forms {
		if err := w.SetAudit("Logoff", want); err != nil {
			t.Fatal(err)
		}
		out, err := ap.Run("/get", `/subcategory:"Logoff"`)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ParseSetting(out, "Logoff")
		if err != nil || got != want {
			t.Errorf("round-trip %v -> %v (%v)", want, got, err)
		}
	}
}

func TestDriftLinuxBreaksCompliance(t *testing.T) {
	l := NewUbuntu1804()
	rng := rand.New(rand.NewSource(5))
	DriftLinux(l, 10, rng)
	broken := false
	for _, b := range BannedPackages {
		if l.Installed(b) {
			broken = true
		}
	}
	for _, r := range RequiredPackages {
		if !l.Installed(r) {
			broken = true
		}
	}
	if v, _ := l.Config("/etc/login.defs", "ENCRYPT_METHOD"); v != "SHA512" {
		broken = true
	}
	if !broken {
		t.Error("10 drift operations should break something")
	}
}

func TestDriftWindowsDisablesAuditing(t *testing.T) {
	w := NewWindows10()
	// Turn everything on first.
	for _, sub := range w.Subcategories() {
		if err := w.SetAudit(sub, AuditSetting{Success: true, Failure: true}); err != nil {
			t.Fatal(err)
		}
	}
	DriftWindows(w, 5, rand.New(rand.NewSource(7)))
	off := 0
	for _, sub := range w.Subcategories() {
		s, _ := w.GetAudit(sub)
		if !s.Success && !s.Failure {
			off++
		}
	}
	if off == 0 {
		t.Error("drift should have disabled some subcategory")
	}
}

func TestUnreachableHostPanicsAndRecovers(t *testing.T) {
	h := NewUbuntu1804()
	h.SetUnreachable(true)
	trap := func(f func()) (v interface{}) {
		defer func() { v = recover() }()
		f()
		return nil
	}
	if got := trap(func() { h.Installed("sudo") }); got != ErrUnreachable {
		t.Errorf("probe panic = %v, want ErrUnreachable", got)
	}
	if got := trap(func() { h.Install("nis", "1") }); got != ErrUnreachable {
		t.Errorf("mutation panic = %v, want ErrUnreachable", got)
	}
	if got := trap(func() { h.Config("/etc/login.defs", "ENCRYPT_METHOD") }); got != ErrUnreachable {
		t.Errorf("config probe panic = %v, want ErrUnreachable", got)
	}
	h.SetUnreachable(false)
	if !h.Installed("sudo") {
		t.Error("host state must survive the outage")
	}
}

func TestCtxProbesPanicOnCanceledContext(t *testing.T) {
	l := NewUbuntu1804()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for name, probe := range map[string]func(){
		"InstalledCtx":     func() { l.InstalledCtx(ctx, "sudo") },
		"ConfigCtx":        func() { l.ConfigCtx(ctx, "/etc/login.defs", "ENCRYPT_METHOD") },
		"ServiceActiveCtx": func() { l.ServiceActiveCtx(ctx, "sshd") },
	} {
		func() {
			defer func() {
				if r := recover(); r != ErrCanceled {
					t.Errorf("%s: recovered %v, want ErrCanceled", name, r)
				}
			}()
			probe()
			t.Errorf("%s: canceled probe did not panic", name)
		}()
	}
	// The unwind left the host lock released and the host usable.
	if !l.Installed("sudo") {
		t.Error("host unusable after canceled probe")
	}
}

func TestCtxProbesPassThroughLiveContext(t *testing.T) {
	l := NewUbuntu1804()
	if !l.InstalledCtx(context.Background(), "sudo") {
		t.Error("live-context probe diverges from Installed")
	}
	if v, ok := l.ConfigCtx(context.Background(), "/etc/login.defs", "ENCRYPT_METHOD"); !ok || v != "SHA512" {
		t.Errorf("ConfigCtx = %q,%t", v, ok)
	}
	// nil context degrades to the plain probe.
	if !l.InstalledCtx(nil, "sudo") {
		t.Error("nil-context probe diverges from Installed")
	}
}

func TestCtxProbeUnreachableStillPanicsUnreachable(t *testing.T) {
	l := NewUbuntu1804()
	l.SetUnreachable(true)
	defer func() {
		if r := recover(); r != ErrUnreachable {
			t.Errorf("recovered %v, want ErrUnreachable", r)
		}
	}()
	l.InstalledCtx(context.Background(), "sudo")
	t.Error("unreachable probe did not panic")
}
