package tctl

import (
	"strings"
	"testing"
)

func TestFormulaPrinting(t *testing.T) {
	cases := []struct {
		f    Formula
		want string
	}{
		{Prop{"p"}, "p"},
		{True{}, "true"},
		{False{}, "false"},
		{Not{Prop{"p"}}, "!p"},
		{And{Prop{"p"}, Prop{"q"}}, "p && q"},
		{Or{Prop{"p"}, Prop{"q"}}, "p || q"},
		{Imply{Prop{"p"}, Prop{"q"}}, "p -> q"},
		{AG{Prop{"p"}}, "A[] p"},
		{EG{Prop{"p"}}, "E[] p"},
		{AF{F: Prop{"p"}}, "A<> p"},
		{EF{F: Prop{"p"}}, "E<> p"},
		{AF{F: Prop{"p"}, B: Within(5)}, "A<>[<=5] p"},
		{AU{Prop{"p"}, Prop{"q"}}, "A[p U q]"},
		{EU{Prop{"p"}, Prop{"q"}}, "E[p U q]"},
		{LeadsTo{L: Prop{"p"}, R: Prop{"q"}}, "p --> q"},
		{LeadsTo{L: Prop{"p"}, R: Prop{"q"}, B: Within(9)}, "p -->[<=9] q"},
		{Cmp{Signal: "x", Op: Ge, Value: 2.5}, "x >= 2.5"},
		{AG{Imply{Prop{"p"}, AF{F: Prop{"q"}}}}, "A[] (p -> A<> q)"},
		{And{Or{Prop{"a"}, Prop{"b"}}, Prop{"c"}}, "(a || b) && c"},
		{Not{And{Prop{"a"}, Prop{"b"}}}, "!(a && b)"},
	}
	for _, c := range cases {
		if got := c.f.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestParsePrintRoundTrip(t *testing.T) {
	inputs := []string{
		"p",
		"!p",
		"p && q",
		"p || q && r",
		"p -> q -> r",
		"A[] p",
		"E<> !p",
		"A<>[<=5] p",
		"A[] (req -> A<>[<=10] ack)",
		"A[p U q]",
		"E[p U q && r]",
		"p --> q",
		"p -->[<=7] q",
		"x >= 2.5",
		"temp < 100 && A[] safe",
		"true",
		"false || p",
	}
	for _, in := range inputs {
		f, err := Parse(in)
		if err != nil {
			t.Errorf("Parse(%q): %v", in, err)
			continue
		}
		printed := f.String()
		f2, err := Parse(printed)
		if err != nil {
			t.Errorf("reparse of %q (printed %q): %v", in, printed, err)
			continue
		}
		if f2.String() != printed {
			t.Errorf("round-trip unstable: %q -> %q -> %q", in, printed, f2.String())
		}
	}
}

func TestParsePrecedence(t *testing.T) {
	f := MustParse("a || b && c")
	or, ok := f.(Or)
	if !ok {
		t.Fatalf("top level should be Or, got %T", f)
	}
	if _, ok := or.R.(And); !ok {
		t.Errorf("&& must bind tighter than ||, got %T", or.R)
	}

	f = MustParse("a -> b || c")
	imp, ok := f.(Imply)
	if !ok {
		t.Fatalf("top level should be Imply, got %T", f)
	}
	if _, ok := imp.R.(Or); !ok {
		t.Errorf("|| must bind tighter than ->, got %T", imp.R)
	}

	f = MustParse("p --> q -> r")
	if _, ok := f.(LeadsTo); !ok {
		t.Errorf("--> must bind loosest, got %T", f)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"p &&",
		"p & q",
		"p | q",
		"(p",
		"A[] ",
		"A[p q]",
		"A[p U q",
		"x = 3",
		"x >",
		"A<>[<=] p",
		"A<>[<=5 p",
		"p -",
		"p ) q",
		"x >= foo",
	}
	for _, in := range bad {
		if f, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) succeeded with %v, want error", in, f)
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse should panic on bad input")
		}
	}()
	MustParse("((")
}

func TestProps(t *testing.T) {
	f := MustParse("A[] (req -> A<>[<=10] ack) && temp < 100 || A[busy U done]")
	got := Props(f)
	want := []string{"ack", "busy", "done", "req", "temp"}
	if len(got) != len(want) {
		t.Fatalf("Props = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Props = %v, want %v", got, want)
		}
	}
}

func TestDesugar(t *testing.T) {
	f := Desugar(MustParse("p --> q"))
	want := "A[] (!p || A<> q)"
	if f.String() != want {
		t.Errorf("Desugar(p --> q) = %q, want %q", f.String(), want)
	}
	f = Desugar(MustParse("p -> q"))
	if f.String() != "!p || q" {
		t.Errorf("Desugar(p -> q) = %q", f.String())
	}
	// Desugar preserves bounds.
	f = Desugar(LeadsTo{L: Prop{"p"}, R: Prop{"q"}, B: Within(3)})
	if f.String() != "A[] (!p || A<>[<=3] q)" {
		t.Errorf("bounded desugar = %q", f.String())
	}
}

func TestEqual(t *testing.T) {
	a := MustParse("A[] (p -> q)")
	b := AG{Imply{Prop{"p"}, Prop{"q"}}}
	if !Equal(a, b) {
		t.Error("structurally equal formulas compare unequal")
	}
	if Equal(a, MustParse("A[] (p -> r)")) {
		t.Error("different formulas compare equal")
	}
}

func TestCmpOpString(t *testing.T) {
	ops := map[CmpOp]string{Lt: "<", Le: "<=", Gt: ">", Ge: ">=", Eq: "==", Ne: "!="}
	for op, want := range ops {
		if op.String() != want {
			t.Errorf("CmpOp(%d) = %q, want %q", int(op), op.String(), want)
		}
	}
	if !strings.Contains(CmpOp(99).String(), "?") {
		t.Error("unknown op should print '?'")
	}
}
