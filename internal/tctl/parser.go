package tctl

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// Parse parses a formula in the UPPAAL-like concrete syntax produced by the
// package's String methods:
//
//	phi ::= phi '-->' phi                     (leads-to, optional [<=N])
//	      | phi '->' phi | phi '||' phi | phi '&&' phi | '!' phi
//	      | 'A[]' phi | 'E[]' phi | 'A<>' [bound] phi | 'E<>' [bound] phi
//	      | 'A[' phi 'U' phi ']' | 'E[' phi 'U' phi ']'
//	      | ident | ident cmp number | 'true' | 'false' | '(' phi ')'
//	bound ::= '[<=' integer ']'
//	cmp  ::= '<' | '<=' | '>' | '>=' | '==' | '!='
func Parse(input string) (Formula, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	f, err := p.parseLeadsTo()
	if err != nil {
		return nil, err
	}
	if !p.eof() {
		return nil, fmt.Errorf("tctl: trailing input at %q", p.peek().text)
	}
	return f, nil
}

// MustParse is Parse that panics on error, for static formula tables.
func MustParse(input string) Formula {
	f, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return f
}

type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokLParen
	tokRParen
	tokNot     // !
	tokAnd     // &&
	tokOr      // ||
	tokImply   // ->
	tokLeadsTo // -->
	tokAG      // A[]
	tokEG      // E[]
	tokAF      // A<>
	tokEF      // E<>
	tokABr     // A[   (until form)
	tokEBr     // E[
	tokRBr     // ]
	tokU       // U
	tokBound   // [<=N]
	tokCmp     // < <= > >= == !=
	tokTrue
	tokFalse
)

type token struct {
	kind tokKind
	text string
	num  float64
}

func lex(s string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(s) {
		c := s[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '(':
			toks = append(toks, token{kind: tokLParen, text: "("})
			i++
		case c == ')':
			toks = append(toks, token{kind: tokRParen, text: ")"})
			i++
		case c == ']':
			toks = append(toks, token{kind: tokRBr, text: "]"})
			i++
		case c == '!':
			if i+1 < len(s) && s[i+1] == '=' {
				toks = append(toks, token{kind: tokCmp, text: "!="})
				i += 2
			} else {
				toks = append(toks, token{kind: tokNot, text: "!"})
				i++
			}
		case c == '&':
			if i+1 < len(s) && s[i+1] == '&' {
				toks = append(toks, token{kind: tokAnd, text: "&&"})
				i += 2
			} else {
				return nil, fmt.Errorf("tctl: stray '&' at offset %d", i)
			}
		case c == '|':
			if i+1 < len(s) && s[i+1] == '|' {
				toks = append(toks, token{kind: tokOr, text: "||"})
				i += 2
			} else {
				return nil, fmt.Errorf("tctl: stray '|' at offset %d", i)
			}
		case c == '-':
			switch {
			case strings.HasPrefix(s[i:], "-->"):
				toks = append(toks, token{kind: tokLeadsTo, text: "-->"})
				i += 3
			case strings.HasPrefix(s[i:], "->"):
				toks = append(toks, token{kind: tokImply, text: "->"})
				i += 2
			default:
				return nil, fmt.Errorf("tctl: stray '-' at offset %d", i)
			}
		case c == 'A' || c == 'E':
			rest := s[i+1:]
			switch {
			case strings.HasPrefix(rest, "[]"):
				k := tokAG
				if c == 'E' {
					k = tokEG
				}
				toks = append(toks, token{kind: k, text: string(c) + "[]"})
				i += 3
			case strings.HasPrefix(rest, "<>"):
				k := tokAF
				if c == 'E' {
					k = tokEF
				}
				toks = append(toks, token{kind: k, text: string(c) + "<>"})
				i += 3
			case strings.HasPrefix(rest, "["):
				k := tokABr
				if c == 'E' {
					k = tokEBr
				}
				toks = append(toks, token{kind: k, text: string(c) + "["})
				i += 2
			default:
				// plain identifier starting with A/E
				id, n := lexIdent(s[i:])
				toks = append(toks, identToken(id))
				i += n
			}
		case c == '[':
			// bound [<=N]
			if strings.HasPrefix(s[i:], "[<=") {
				j := strings.IndexByte(s[i:], ']')
				if j < 0 {
					return nil, fmt.Errorf("tctl: unterminated bound at offset %d", i)
				}
				numStr := s[i+3 : i+j]
				n, err := strconv.ParseInt(strings.TrimSpace(numStr), 10, 64)
				if err != nil {
					return nil, fmt.Errorf("tctl: bad bound %q: %v", numStr, err)
				}
				toks = append(toks, token{kind: tokBound, text: s[i : i+j+1], num: float64(n)})
				i += j + 1
			} else {
				return nil, fmt.Errorf("tctl: unexpected '[' at offset %d", i)
			}
		case c == '<' || c == '>' || c == '=':
			op := string(c)
			if i+1 < len(s) && s[i+1] == '=' {
				op += "="
				i++
			}
			i++
			if op == "=" {
				return nil, fmt.Errorf("tctl: use '==' for equality")
			}
			toks = append(toks, token{kind: tokCmp, text: op})
		case unicode.IsLetter(rune(c)) || c == '_':
			id, n := lexIdent(s[i:])
			toks = append(toks, identToken(id))
			i += n
		case c >= '0' && c <= '9' || c == '.':
			j := i
			for j < len(s) && (s[j] >= '0' && s[j] <= '9' || s[j] == '.') {
				j++
			}
			// Optional exponent: [eE][+-]?digits.
			if j < len(s) && (s[j] == 'e' || s[j] == 'E') {
				k := j + 1
				if k < len(s) && (s[k] == '+' || s[k] == '-') {
					k++
				}
				if k < len(s) && s[k] >= '0' && s[k] <= '9' {
					for k < len(s) && s[k] >= '0' && s[k] <= '9' {
						k++
					}
					j = k
				}
			}
			v, err := strconv.ParseFloat(s[i:j], 64)
			if err != nil {
				return nil, fmt.Errorf("tctl: bad number %q", s[i:j])
			}
			toks = append(toks, token{kind: tokNumber, text: s[i:j], num: v})
			i = j
		default:
			return nil, fmt.Errorf("tctl: unexpected character %q at offset %d", c, i)
		}
	}
	toks = append(toks, token{kind: tokEOF})
	return toks, nil
}

func lexIdent(s string) (string, int) {
	j := 0
	for j < len(s) {
		c := rune(s[j])
		if !unicode.IsLetter(c) && !unicode.IsDigit(c) && c != '_' && c != '.' {
			break
		}
		j++
	}
	return s[:j], j
}

func identToken(id string) token {
	switch id {
	case "true":
		return token{kind: tokTrue, text: id}
	case "false":
		return token{kind: tokFalse, text: id}
	case "U":
		return token{kind: tokU, text: id}
	default:
		return token{kind: tokIdent, text: id}
	}
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) eof() bool   { return p.peek().kind == tokEOF }

func (p *parser) expect(k tokKind, what string) error {
	if p.peek().kind != k {
		return fmt.Errorf("tctl: expected %s, got %q", what, p.peek().text)
	}
	p.next()
	return nil
}

func (p *parser) parseLeadsTo() (Formula, error) {
	l, err := p.parseImply()
	if err != nil {
		return nil, err
	}
	if p.peek().kind == tokLeadsTo {
		p.next()
		b := Unbounded
		if p.peek().kind == tokBound {
			b = Within(int64(p.next().num))
		}
		r, err := p.parseLeadsTo()
		if err != nil {
			return nil, err
		}
		return LeadsTo{L: l, R: r, B: b}, nil
	}
	return l, nil
}

func (p *parser) parseImply() (Formula, error) {
	l, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if p.peek().kind == tokImply {
		p.next()
		r, err := p.parseImply() // right associative
		if err != nil {
			return nil, err
		}
		return Imply{L: l, R: r}, nil
	}
	return l, nil
}

func (p *parser) parseOr() (Formula, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tokOr {
		p.next()
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = Or{L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Formula, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tokAnd {
		p.next()
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = And{L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseUnary() (Formula, error) {
	switch t := p.peek(); t.kind {
	case tokNot:
		p.next()
		f, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return Not{F: f}, nil
	case tokAG, tokEG:
		p.next()
		f, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		if t.kind == tokAG {
			return AG{F: f}, nil
		}
		return EG{F: f}, nil
	case tokAF, tokEF:
		p.next()
		b := Unbounded
		if p.peek().kind == tokBound {
			b = Within(int64(p.next().num))
		}
		f, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		if t.kind == tokAF {
			return AF{F: f, B: b}, nil
		}
		return EF{F: f, B: b}, nil
	case tokABr, tokEBr:
		p.next()
		l, err := p.parseLeadsTo()
		if err != nil {
			return nil, err
		}
		if err := p.expect(tokU, "'U'"); err != nil {
			return nil, err
		}
		r, err := p.parseLeadsTo()
		if err != nil {
			return nil, err
		}
		if err := p.expect(tokRBr, "']'"); err != nil {
			return nil, err
		}
		if t.kind == tokABr {
			return AU{L: l, R: r}, nil
		}
		return EU{L: l, R: r}, nil
	default:
		return p.parseAtom()
	}
}

func (p *parser) parseAtom() (Formula, error) {
	switch t := p.next(); t.kind {
	case tokTrue:
		return True{}, nil
	case tokFalse:
		return False{}, nil
	case tokIdent:
		if p.peek().kind == tokCmp {
			op := p.next().text
			num := p.peek()
			if num.kind != tokNumber {
				return nil, fmt.Errorf("tctl: expected number after %q, got %q", op, num.text)
			}
			p.next()
			return Cmp{Signal: t.text, Op: cmpOpOf(op), Value: num.num}, nil
		}
		return Prop{Name: t.text}, nil
	case tokLParen:
		f, err := p.parseLeadsTo()
		if err != nil {
			return nil, err
		}
		if err := p.expect(tokRParen, "')'"); err != nil {
			return nil, err
		}
		return f, nil
	default:
		return nil, fmt.Errorf("tctl: unexpected token %q", t.text)
	}
}

func cmpOpOf(s string) CmpOp {
	switch s {
	case "<":
		return Lt
	case "<=":
		return Le
	case ">":
		return Gt
	case ">=":
		return Ge
	case "==":
		return Eq
	default:
		return Ne
	}
}
