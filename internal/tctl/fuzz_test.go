package tctl

import "testing"

// FuzzParse checks the parser's total behaviour: it must never panic, and
// any accepted input must print-and-reparse stably.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"p", "!p", "p && q || !r", "A[] p", "E<> p", "A<>[<=5] p",
		"A[] (req -> A<>[<=10] ack)", "A[p U q]", "p --> q", "p -->[<=7] q",
		"x >= 2.5", "true && false", "((p))", "A[] E<> p", "p -> q -> r",
		"", "(", "&&", "A<>[<=", "-->", "x ==", "9p", "_x < 1e3",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		formula, err := Parse(input)
		if err != nil {
			return
		}
		printed := formula.String()
		again, err := Parse(printed)
		if err != nil {
			t.Fatalf("printed form %q of %q does not reparse: %v", printed, input, err)
		}
		if again.String() != printed {
			t.Fatalf("unstable print: %q -> %q", printed, again.String())
		}
		// Simplify must also be total and stable on accepted inputs.
		s := Simplify(formula)
		if Simplify(s).String() != s.String() {
			t.Fatalf("simplify not idempotent on %q", input)
		}
	})
}
