package tctl

import (
	"veridevops/internal/trace"

	"fmt"
)

// Evaluation over finite timed traces.
//
// A trace is a single linear execution, so the path quantifiers collapse:
// A[] and E[] coincide (there is exactly one path), as do A<> and E<>.
// Eventualities use the *strong* finite-trace semantics: A<> p is false if
// p never holds before the trace ends. This matches how the VeriDevOps
// runtime monitors report INCOMPLETE/FAIL when an expected response has not
// been observed by the time the monitoring window closes.
//
// Signals are step functions, so a formula's truth value can only change at
// a signal change point; evaluation therefore works on the vector of change
// points, giving O(|formula| * points) time for the nesting-free operators
// and O(points) extra per bounded eventuality via a sliding window.

// Verdict is the result of evaluating a formula on a trace.
type Verdict struct {
	Holds bool
	// FailAt is the earliest change point at which the top-level formula is
	// violated, meaningful when Holds is false and the formula is an
	// invariant (A[] ...) or leads-to.
	FailAt trace.Time
}

// Eval evaluates the formula at time 0 of the trace.
func Eval(tr *trace.Trace, f Formula) Verdict {
	e := newEvaluator(tr)
	sat := e.vec(Desugar(f))
	if len(sat) == 0 {
		return Verdict{Holds: true}
	}
	if sat[0] {
		return Verdict{Holds: true}
	}
	// Find the earliest witness of violation for invariants: first point
	// where the body is false. For non-invariant top-levels, report 0.
	v := Verdict{Holds: false, FailAt: 0}
	if g, ok := Desugar(f).(AG); ok {
		body := e.vec(g.F)
		for i, b := range body {
			if !b {
				v.FailAt = e.points[i]
				break
			}
		}
	}
	return v
}

// Holds is a convenience wrapper returning only the boolean verdict.
func Holds(tr *trace.Trace, f Formula) bool { return Eval(tr, f).Holds }

type evaluator struct {
	tr     *trace.Trace
	points []trace.Time
	memo   map[string][]bool
}

func newEvaluator(tr *trace.Trace) *evaluator {
	return &evaluator{tr: tr, points: tr.ChangePoints(), memo: map[string][]bool{}}
}

// vec returns the satisfaction vector of f over the change points.
func (e *evaluator) vec(f Formula) []bool {
	key := f.String()
	if v, ok := e.memo[key]; ok {
		return v
	}
	n := len(e.points)
	out := make([]bool, n)
	switch node := f.(type) {
	case True:
		for i := range out {
			out[i] = true
		}
	case False:
		// all false
	case Prop:
		for i, t := range e.points {
			out[i] = e.tr.BoolAt(node.Name, t)
		}
	case Cmp:
		for i, t := range e.points {
			out[i] = cmp(e.tr.NumAt(node.Signal, t), node.Op, node.Value)
		}
	case Not:
		in := e.vec(node.F)
		for i := range out {
			out[i] = !in[i]
		}
	case And:
		l, r := e.vec(node.L), e.vec(node.R)
		for i := range out {
			out[i] = l[i] && r[i]
		}
	case Or:
		l, r := e.vec(node.L), e.vec(node.R)
		for i := range out {
			out[i] = l[i] || r[i]
		}
	case AG:
		in := e.vec(node.F)
		acc := true
		for i := n - 1; i >= 0; i-- {
			acc = acc && in[i]
			out[i] = acc
		}
	case EG:
		// Single path: E[] == A[] on traces.
		return e.vecAs(key, AG{F: node.F})
	case AF:
		in := e.vec(node.F)
		if !node.B.Valid {
			acc := false
			for i := n - 1; i >= 0; i-- {
				acc = acc || in[i]
				out[i] = acc
			}
		} else {
			// Sliding window: out[i] = exists j>=i with points[j]-points[i] <= D and in[j].
			// Two-pointer with a count of true cells in the window.
			j, cnt := 0, 0
			for i := 0; i < n; i++ {
				if j < i {
					j, cnt = i, 0
				}
				for j < n && e.points[j]-e.points[i] <= node.B.D {
					if in[j] {
						cnt++
					}
					j++
				}
				out[i] = cnt > 0
				if in[i] {
					cnt--
				}
			}
		}
	case EF:
		return e.vecAs(key, AF{F: node.F, B: node.B})
	case AU:
		l, r := e.vec(node.L), e.vec(node.R)
		for i := n - 1; i >= 0; i-- {
			switch {
			case r[i]:
				out[i] = true
			case i == n-1:
				out[i] = false
			default:
				out[i] = l[i] && out[i+1]
			}
		}
	case EU:
		return e.vecAs(key, AU{L: node.L, R: node.R})
	default:
		panic(fmt.Sprintf("tctl: eval of non-desugared node %T", f))
	}
	e.memo[key] = out
	return out
}

// vecAs evaluates the replacement formula and memoizes it under the
// original key (used for the path-quantifier collapses).
func (e *evaluator) vecAs(key string, repl Formula) []bool {
	v := e.vec(repl)
	e.memo[key] = v
	return v
}

func cmp(x float64, op CmpOp, c float64) bool {
	switch op {
	case Lt:
		return x < c
	case Le:
		return x <= c
	case Gt:
		return x > c
	case Ge:
		return x >= c
	case Eq:
		return x == c
	default:
		return x != c
	}
}
