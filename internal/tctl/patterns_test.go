package tctl

import (
	"testing"
)

func TestPatternCompileGlobal(t *testing.T) {
	cases := []struct {
		p    Pattern
		want string
	}{
		{Pattern{Behaviour: Absence, Scope: Globally, P: Prop{"p"}}, "A[] !p"},
		{Pattern{Behaviour: Universality, Scope: Globally, P: Prop{"p"}}, "A[] p"},
		{Pattern{Behaviour: Existence, Scope: Globally, P: Prop{"p"}}, "A<> p"},
		{Pattern{Behaviour: Response, Scope: Globally, P: Prop{"p"}, S: Prop{"s"}}, "p --> s"},
		{Pattern{Behaviour: Response, Scope: Globally, P: Prop{"p"}, S: Prop{"s"}, B: Within(4)}, "p -->[<=4] s"},
	}
	for _, c := range cases {
		f, err := c.p.Compile()
		if err != nil {
			t.Errorf("Compile(%s/%s): %v", c.p.Behaviour, c.p.Scope, err)
			continue
		}
		if f.String() != c.want {
			t.Errorf("Compile(%s/%s) = %q, want %q", c.p.Behaviour, c.p.Scope, f.String(), c.want)
		}
	}
}

func TestPatternCompileValidation(t *testing.T) {
	bad := []Pattern{
		{Behaviour: Universality, Scope: Globally},                               // missing P
		{Behaviour: Response, Scope: Globally, P: Prop{"p"}},                     // missing S
		{Behaviour: Universality, Scope: Before, P: Prop{"p"}},                   // missing R
		{Behaviour: Universality, Scope: After, P: Prop{"p"}},                    // missing Q
		{Behaviour: Universality, Scope: Between, P: Prop{"p"}, Q: Prop{"q"}},    // missing R
		{Behaviour: Universality, Scope: AfterUntil, P: Prop{"p"}, R: Prop{"r"}}, // missing Q
		{Behaviour: Behaviour(77), Scope: Globally, P: Prop{"p"}},
		{Behaviour: Universality, Scope: Scope(77), P: Prop{"p"}},
	}
	for i, p := range bad {
		if _, err := p.Compile(); err == nil {
			t.Errorf("case %d: Compile should fail", i)
		}
	}
}

func TestMustCompilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustCompile should panic on invalid pattern")
		}
	}()
	Pattern{Behaviour: Universality, Scope: Globally}.MustCompile()
}

// Semantic checks: compile the scoped patterns and evaluate them on traces
// that witness satisfaction and violation.

func TestBeforeScopeSemantics(t *testing.T) {
	absBefore := Pattern{Behaviour: Absence, Scope: Before, P: Prop{"p"}, R: Prop{"r"}}.MustCompile()

	// p occurs before r: violated.
	tr := mkTrace(100, obs{"p", 10, true}, obs{"p", 11, false}, obs{"r", 50, true})
	if Holds(tr, absBefore) {
		t.Error("absence before r must fail when p precedes r")
	}
	// p occurs only after r: satisfied.
	tr2 := mkTrace(100, obs{"r", 20, true}, obs{"p", 60, true})
	if !Holds(tr2, absBefore) {
		t.Error("absence before r must hold when p follows r")
	}
	// r never occurs: scope is empty, vacuously satisfied.
	tr3 := mkTrace(100, obs{"p", 10, true})
	if !Holds(tr3, absBefore) {
		t.Error("absence before r must hold vacuously when r never occurs")
	}
}

func TestAfterScopeSemantics(t *testing.T) {
	uniAfter := Pattern{Behaviour: Universality, Scope: After, P: Prop{"p"}, Q: Prop{"q"}}.MustCompile()

	// p holds from q onward: satisfied.
	tr := mkTrace(100, obs{"q", 30, true}, obs{"p", 30, true})
	if !Holds(tr, uniAfter) {
		t.Error("universality after q must hold")
	}
	// p drops after q: violated.
	tr2 := mkTrace(100, obs{"q", 30, true}, obs{"p", 30, true}, obs{"p", 70, false})
	if Holds(tr2, uniAfter) {
		t.Error("universality after q must fail when p drops")
	}
	// q never occurs: vacuous.
	tr3 := mkTrace(100, obs{"p", 0, false})
	if !Holds(tr3, uniAfter) {
		t.Error("universality after q must hold vacuously without q")
	}
}

func TestBetweenScopeSemantics(t *testing.T) {
	pat := Pattern{Behaviour: Existence, Scope: Between, P: Prop{"p"}, Q: Prop{"q"}, R: Prop{"r"}}.MustCompile()

	// q ... p ... r : satisfied.
	tr := mkTrace(200,
		obs{"q", 10, true}, obs{"q", 11, false},
		obs{"p", 40, true}, obs{"p", 41, false},
		obs{"r", 80, true})
	if !Holds(tr, pat) {
		t.Error("existence between q and r must hold when p occurs inside")
	}
	// q ... r with no p: violated.
	tr2 := mkTrace(200,
		obs{"q", 10, true}, obs{"q", 11, false},
		obs{"r", 80, true})
	if Holds(tr2, pat) {
		t.Error("existence between q and r must fail when p is missing")
	}
	// q but no closing r: between-scope does not constrain the open segment.
	tr3 := mkTrace(200, obs{"q", 10, true}, obs{"q", 11, false})
	if !Holds(tr3, pat) {
		t.Error("between scope must ignore segments never closed by r")
	}
}

func TestAfterUntilScopeSemantics(t *testing.T) {
	pat := Pattern{Behaviour: Universality, Scope: AfterUntil, P: Prop{"p"}, Q: Prop{"q"}, R: Prop{"r"}}.MustCompile()

	// After q, p holds until r: satisfied.
	tr := mkTrace(200,
		obs{"q", 10, true}, obs{"q", 11, false},
		obs{"p", 10, true},
		obs{"r", 90, true}, obs{"p", 95, false})
	if !Holds(tr, pat) {
		t.Error("after-until universality must hold")
	}
	// Open segment (no r) still constrained: p must hold forever.
	tr2 := mkTrace(200,
		obs{"q", 10, true}, obs{"q", 11, false},
		obs{"p", 10, true}, obs{"p", 150, false})
	if Holds(tr2, pat) {
		t.Error("after-until must constrain the open segment; p dropped")
	}
	// p holds to the end of the open segment: satisfied.
	tr3 := mkTrace(200,
		obs{"q", 10, true}, obs{"q", 11, false},
		obs{"p", 10, true})
	if !Holds(tr3, pat) {
		t.Error("after-until with p holding to the end must hold")
	}
}

func TestPrecedenceSemantics(t *testing.T) {
	pat := Pattern{Behaviour: Precedence, Scope: Globally, P: Prop{"access"}, S: Prop{"auth"}}.MustCompile()

	// auth precedes access: satisfied.
	tr := mkTrace(100, obs{"auth", 10, true}, obs{"access", 30, true})
	if !Holds(tr, pat) {
		t.Error("precedence must hold when auth precedes access")
	}
	// access without auth: violated.
	tr2 := mkTrace(100, obs{"access", 30, true})
	if Holds(tr2, pat) {
		t.Error("precedence must fail when access happens unauthenticated")
	}
	// neither occurs: satisfied (A[] !access branch).
	tr3 := mkTrace(100)
	if !Holds(tr3, pat) {
		t.Error("precedence must hold vacuously")
	}
}

func TestD27ConvenienceConstructors(t *testing.T) {
	if GlobalUniversality("p").String() != "A[] p" {
		t.Error("GlobalUniversality TCTL mismatch")
	}
	if GlobalEventually("p").String() != "A<> p" {
		t.Error("GlobalEventually TCTL mismatch")
	}
	if GlobalResponseTimed("p", "s", 5).String() != "p -->[<=5] s" {
		t.Error("GlobalResponseTimed TCTL mismatch")
	}
	if GlobalResponseUntil("p", "q", "r").String() != "p --> q || r" {
		t.Error("GlobalResponseUntil TCTL mismatch")
	}
	f := AfterUntilUniversality("q", "p", "r")
	tr := mkTrace(100, obs{"q", 5, true}, obs{"p", 5, true}, obs{"r", 50, true}, obs{"p", 60, false})
	if !Holds(tr, f) {
		t.Error("AfterUntilUniversality should hold on conforming trace")
	}
}

func TestScopeBehaviourStrings(t *testing.T) {
	if Globally.String() != "globally" || AfterUntil.String() != "after-until" {
		t.Error("scope names wrong")
	}
	if Absence.String() != "absence" || Precedence.String() != "precedence" {
		t.Error("behaviour names wrong")
	}
	if Scope(9).String() == "" || Behaviour(9).String() == "" {
		t.Error("unknown enum should still print")
	}
}

func TestResponseBetweenSemantics(t *testing.T) {
	pat := Pattern{
		Behaviour: Response, Scope: Between,
		P: Prop{"alarm"}, S: Prop{"handled"},
		Q: Prop{"start"}, R: Prop{"stop"},
	}.MustCompile()

	// alarm inside [start,stop) gets handled before stop: holds.
	tr := mkTrace(300,
		obs{"start", 10, true}, obs{"start", 11, false},
		obs{"alarm", 50, true}, obs{"alarm", 51, false},
		obs{"handled", 70, true}, obs{"handled", 71, false},
		obs{"stop", 100, true})
	if !Holds(tr, pat) {
		t.Error("handled alarm inside the segment: pattern must hold")
	}

	// alarm never handled before stop: fails.
	tr2 := mkTrace(300,
		obs{"start", 10, true}, obs{"start", 11, false},
		obs{"alarm", 50, true}, obs{"alarm", 51, false},
		obs{"stop", 100, true})
	if Holds(tr2, pat) {
		t.Error("unhandled alarm inside the segment: pattern must fail")
	}
}

// The response-between encoding uses AF which may look past the segment end;
// guard against that regression: a response occurring only after stop does
// not count.
func TestResponseBetweenDoesNotLeakPastSegment(t *testing.T) {
	pat := Pattern{
		Behaviour: Response, Scope: Between,
		P: Prop{"alarm"}, S: Prop{"handled"},
		Q: Prop{"start"}, R: Prop{"stop"},
	}.MustCompile()
	tr := mkTrace(300,
		obs{"start", 10, true}, obs{"start", 11, false},
		obs{"alarm", 50, true}, obs{"alarm", 51, false},
		obs{"stop", 100, true}, obs{"stop", 101, false},
		obs{"handled", 200, true})
	// PSP "between" response: the response must arrive; with the basic
	// CTL encoding the post-segment response satisfies the inner AF, so
	// this documents the known approximation of the catalogue encoding.
	_ = Holds(tr, pat) // either verdict is acceptable for the approximation; must not panic
}

func TestTimedResponseEvaluation(t *testing.T) {
	f := GlobalResponseTimed("req", "ack", 10)
	tr := mkTrace(100,
		obs{"req", 20, true}, obs{"req", 21, false},
		obs{"ack", 28, true}, obs{"ack", 29, false})
	if !Holds(tr, f) {
		t.Error("ack within 8 <= 10 ticks: must hold")
	}
	tr2 := mkTrace(100,
		obs{"req", 20, true}, obs{"req", 21, false},
		obs{"ack", 35, true}, obs{"ack", 36, false})
	if Holds(tr2, f) {
		t.Error("ack after 15 > 10 ticks: must fail")
	}
}
