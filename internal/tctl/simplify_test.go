package tctl

import (
	"math/rand"
	"testing"

	"veridevops/internal/trace"
)

func TestSimplifyRewrites(t *testing.T) {
	cases := []struct{ in, want string }{
		{"!!p", "p"},
		{"!true", "false"},
		{"!false", "true"},
		{"p && true", "p"},
		{"true && p", "p"},
		{"p && false", "false"},
		{"p || true", "true"},
		{"p || false", "p"},
		{"p && p", "p"},
		{"p || p", "p"},
		{"false -> p", "true"},
		{"p -> true", "true"},
		{"true -> p", "p"},
		{"p -> false", "!p"},
		{"A[] true", "true"},
		{"A[] false", "false"},
		{"A[] A[] p", "A[] p"},
		{"A<> A<> p", "A<> p"},
		{"A<> true", "true"},
		{"E<> false", "false"},
		{"A[p U true]", "true"},
		{"A[p U false]", "false"},
		{"A[true U q]", "A<> q"},
		{"E[true U q]", "E<> q"},
		{"false --> q", "true"},
		{"p --> true", "true"},
		{"A[] (p && true)", "A[] p"},
		{"E[] !!p", "E[] p"},
	}
	for _, c := range cases {
		got := Simplify(MustParse(c.in)).String()
		if got != c.want {
			t.Errorf("Simplify(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestSimplifyPreservesBounds(t *testing.T) {
	f := Simplify(MustParse("A<>[<=5] A<>[<=5] p"))
	// Bounded eventualities must NOT collapse (the bounds compose, they
	// are not idempotent).
	if f.String() != "A<>[<=5] A<>[<=5] p" {
		t.Errorf("bounded A<> wrongly collapsed: %q", f.String())
	}
	g := Simplify(LeadsTo{L: Prop{"p"}, R: Prop{"q"}, B: Within(7)})
	if g.String() != "p -->[<=7] q" {
		t.Errorf("leads-to bound lost: %q", g.String())
	}
}

// randomFormula builds a random formula over props p/q with the given
// depth budget.
func randomFormula(rng *rand.Rand, depth int) Formula {
	if depth == 0 {
		switch rng.Intn(4) {
		case 0:
			return Prop{"p"}
		case 1:
			return Prop{"q"}
		case 2:
			return True{}
		default:
			return False{}
		}
	}
	sub := func() Formula { return randomFormula(rng, depth-1) }
	switch rng.Intn(8) {
	case 0:
		return Not{sub()}
	case 1:
		return And{sub(), sub()}
	case 2:
		return Or{sub(), sub()}
	case 3:
		return Imply{sub(), sub()}
	case 4:
		return AG{sub()}
	case 5:
		return AF{F: sub()}
	case 6:
		return AU{sub(), sub()}
	default:
		return EF{F: sub()}
	}
}

// Property: simplification preserves the verdict on random traces and
// never grows the formula.
func TestSimplifySemanticsPreserved(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for iter := 0; iter < 200; iter++ {
		f := randomFormula(rng, 3)
		s := Simplify(f)
		if Size(s) > Size(f) {
			t.Fatalf("Simplify grew %q (%d) to %q (%d)", f, Size(f), s, Size(s))
		}
		tr := trace.New()
		trace.GenRandomToggles(tr, "p", rng.Intn(5), 100, rng)
		trace.GenRandomToggles(tr, "q", rng.Intn(5), 100, rng)
		if Holds(tr, f) != Holds(tr, s) {
			t.Fatalf("verdict changed: %q vs %q", f, s)
		}
	}
}

// Property: simplification is idempotent.
func TestSimplifyIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for iter := 0; iter < 200; iter++ {
		f := Simplify(randomFormula(rng, 3))
		if again := Simplify(f); !Equal(f, again) {
			t.Fatalf("not idempotent: %q -> %q", f, again)
		}
	}
}

func TestSize(t *testing.T) {
	if Size(Prop{"p"}) != 1 {
		t.Error("atom size 1")
	}
	if Size(MustParse("A[] (p -> A<> q)")) != 5 {
		t.Errorf("Size = %d, want 5", Size(MustParse("A[] (p -> A<> q)")))
	}
}
