package tctl

import (
	"math/rand"
	"testing"

	"veridevops/internal/trace"
)

// Property: Desugar preserves trace semantics for every operator.
func TestDesugarPreservesSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for iter := 0; iter < 200; iter++ {
		f := randomFormula(rng, 3)
		d := Desugar(f)
		tr := trace.New()
		trace.GenRandomToggles(tr, "p", rng.Intn(6), 200, rng)
		trace.GenRandomToggles(tr, "q", rng.Intn(6), 200, rng)
		if Holds(tr, f) != Holds(tr, d) {
			t.Fatalf("desugaring changed the verdict: %q vs %q", f, d)
		}
	}
}

// Property: on any trace, A[] p and !(A<> !p) agree (duality under the
// linear-trace collapse).
func TestInvariantEventualityDuality(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for iter := 0; iter < 100; iter++ {
		tr := trace.New()
		trace.GenRandomToggles(tr, "p", rng.Intn(8), 300, rng)
		a := Holds(tr, AG{Prop{"p"}})
		b := !Holds(tr, AF{F: Not{Prop{"p"}}})
		if a != b {
			t.Fatalf("duality violated on iteration %d", iter)
		}
	}
}

// Property: widening a response bound can only flip verdicts from false to
// true (monotonicity in the deadline).
func TestBoundMonotonicity(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for iter := 0; iter < 50; iter++ {
		tr := trace.New()
		trace.GenResponsePairs(tr, "req", "ack", 10, 30, 1, 20, rng)
		prev := false
		for _, d := range []trace.Time{1, 5, 10, 15, 20, 40} {
			cur := Holds(tr, LeadsTo{L: Prop{"req"}, R: Prop{"ack"}, B: Within(d)})
			if prev && !cur {
				t.Fatalf("verdict regressed when widening the bound to %d", d)
			}
			prev = cur
		}
	}
}

// Property: evaluation is stable under re-evaluation (no hidden state in
// the evaluator).
func TestEvalStability(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	tr := trace.New()
	trace.GenRandomToggles(tr, "p", 10, 500, rng)
	f := MustParse("A[] (p -> A<>[<=50] !p)")
	first := Holds(tr, f)
	for i := 0; i < 10; i++ {
		if Holds(tr, f) != first {
			t.Fatal("verdict changed across evaluations")
		}
	}
}
