package tctl

// Simplify applies semantics-preserving rewrites to a formula: boolean
// constant folding, double-negation elimination, idempotent temporal
// collapses (A[] A[] f == A[] f, A<> A<> f == A<> f for unbounded
// eventualities) and implication normalisation. PROPAS applies the same
// normalisations before generating observers so that equivalent
// requirement phrasings map to identical automata.
func Simplify(f Formula) Formula {
	switch n := f.(type) {
	case Not:
		inner := Simplify(n.F)
		switch i := inner.(type) {
		case True:
			return False{}
		case False:
			return True{}
		case Not:
			return i.F
		}
		return Not{inner}
	case And:
		l, r := Simplify(n.L), Simplify(n.R)
		if isFalse(l) || isFalse(r) {
			return False{}
		}
		if isTrue(l) {
			return r
		}
		if isTrue(r) {
			return l
		}
		if Equal(l, r) {
			return l
		}
		return And{l, r}
	case Or:
		l, r := Simplify(n.L), Simplify(n.R)
		if isTrue(l) || isTrue(r) {
			return True{}
		}
		if isFalse(l) {
			return r
		}
		if isFalse(r) {
			return l
		}
		if Equal(l, r) {
			return l
		}
		return Or{l, r}
	case Imply:
		l, r := Simplify(n.L), Simplify(n.R)
		if isFalse(l) || isTrue(r) {
			return True{}
		}
		if isTrue(l) {
			return r
		}
		if isFalse(r) {
			return Simplify(Not{l})
		}
		return Imply{l, r}
	case AG:
		inner := Simplify(n.F)
		if isTrue(inner) {
			return True{}
		}
		if isFalse(inner) {
			return False{}
		}
		if g, ok := inner.(AG); ok {
			return g // A[] A[] f == A[] f
		}
		return AG{inner}
	case EG:
		inner := Simplify(n.F)
		if isTrue(inner) {
			return True{}
		}
		if isFalse(inner) {
			return False{}
		}
		return EG{inner}
	case AF:
		inner := Simplify(n.F)
		if isTrue(inner) {
			return True{}
		}
		if isFalse(inner) {
			return False{}
		}
		if af, ok := inner.(AF); ok && !n.B.Valid && !af.B.Valid {
			return af // A<> A<> f == A<> f (unbounded)
		}
		return AF{F: inner, B: n.B}
	case EF:
		inner := Simplify(n.F)
		if isTrue(inner) {
			return True{}
		}
		if isFalse(inner) {
			return False{}
		}
		return EF{F: inner, B: n.B}
	case AU:
		l, r := Simplify(n.L), Simplify(n.R)
		if isTrue(r) {
			return True{}
		}
		if isFalse(r) {
			return False{} // strong until: r must eventually hold
		}
		if isTrue(l) {
			return Simplify(AF{F: r})
		}
		return AU{l, r}
	case EU:
		l, r := Simplify(n.L), Simplify(n.R)
		if isTrue(r) {
			return True{}
		}
		if isFalse(r) {
			return False{}
		}
		if isTrue(l) {
			return Simplify(EF{F: r})
		}
		return EU{l, r}
	case LeadsTo:
		l, r := Simplify(n.L), Simplify(n.R)
		if isFalse(l) || isTrue(r) {
			return True{} // vacuous trigger / always-satisfied response
		}
		return LeadsTo{L: l, R: r, B: n.B}
	default:
		return f
	}
}

func isTrue(f Formula) bool {
	_, ok := f.(True)
	return ok
}

func isFalse(f Formula) bool {
	_, ok := f.(False)
	return ok
}

// Size returns the node count of a formula, used to assert that
// simplification never grows a formula.
func Size(f Formula) int {
	switch n := f.(type) {
	case Not:
		return 1 + Size(n.F)
	case And:
		return 1 + Size(n.L) + Size(n.R)
	case Or:
		return 1 + Size(n.L) + Size(n.R)
	case Imply:
		return 1 + Size(n.L) + Size(n.R)
	case AG:
		return 1 + Size(n.F)
	case EG:
		return 1 + Size(n.F)
	case AF:
		return 1 + Size(n.F)
	case EF:
		return 1 + Size(n.F)
	case AU:
		return 1 + Size(n.L) + Size(n.R)
	case EU:
		return 1 + Size(n.L) + Size(n.R)
	case LeadsTo:
		return 1 + Size(n.L) + Size(n.R)
	default:
		return 1
	}
}
