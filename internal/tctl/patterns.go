package tctl

import (
	"fmt"

	"veridevops/internal/trace"
)

// Specification-pattern compiler: Dwyer's specification patterns (the basis
// of the PSP-UPPAAL catalogue referenced by VeriDevOps D2.7) instantiated as
// TCTL formulas. A pattern is a behaviour (absence, universality, existence,
// response, precedence) combined with a scope (globally, before R, after Q,
// between Q and R, after Q until R).
//
// The compilation targets the linear/finite-trace evaluation of this
// package; scoped variants use the until-based encodings from the PSP
// catalogue.

// Scope identifies the portion of an execution a pattern constrains.
type Scope int

// Scopes in the order of the PSP catalogue.
const (
	Globally   Scope = iota
	Before           // before the first R
	After            // after the first Q
	Between          // between every Q and the following R
	AfterUntil       // after every Q until the following R (R may never come)
)

func (s Scope) String() string {
	switch s {
	case Globally:
		return "globally"
	case Before:
		return "before"
	case After:
		return "after"
	case Between:
		return "between"
	case AfterUntil:
		return "after-until"
	default:
		return fmt.Sprintf("scope(%d)", int(s))
	}
}

// Behaviour identifies what a pattern asserts inside its scope.
type Behaviour int

// Behaviours in the order of the PSP catalogue.
const (
	Absence Behaviour = iota
	Universality
	Existence
	Response
	Precedence
)

func (b Behaviour) String() string {
	switch b {
	case Absence:
		return "absence"
	case Universality:
		return "universality"
	case Existence:
		return "existence"
	case Response:
		return "response"
	case Precedence:
		return "precedence"
	default:
		return fmt.Sprintf("behaviour(%d)", int(b))
	}
}

// Pattern is a fully instantiated specification pattern. P is the primary
// proposition; S is the secondary one (response/precedence only); Q and R
// delimit the scope where applicable; B optionally bounds the response
// time.
type Pattern struct {
	Behaviour Behaviour
	Scope     Scope
	P, S      Formula
	Q, R      Formula
	B         Bound
}

// Compile translates the pattern into a TCTL formula.
func (p Pattern) Compile() (Formula, error) {
	if p.P == nil {
		return nil, fmt.Errorf("tctl: pattern %s/%s requires P", p.Behaviour, p.Scope)
	}
	needS := p.Behaviour == Response || p.Behaviour == Precedence
	if needS && p.S == nil {
		return nil, fmt.Errorf("tctl: pattern %s requires S", p.Behaviour)
	}
	switch p.Scope {
	case Globally:
		return p.compileGlobal()
	case Before:
		if p.R == nil {
			return nil, fmt.Errorf("tctl: scope %s requires R", p.Scope)
		}
	case After:
		if p.Q == nil {
			return nil, fmt.Errorf("tctl: scope %s requires Q", p.Scope)
		}
	case Between, AfterUntil:
		if p.Q == nil || p.R == nil {
			return nil, fmt.Errorf("tctl: scope %s requires Q and R", p.Scope)
		}
	default:
		return nil, fmt.Errorf("tctl: unknown scope %d", int(p.Scope))
	}
	return p.compileScoped()
}

// MustCompile is Compile that panics on error.
func (p Pattern) MustCompile() Formula {
	f, err := p.Compile()
	if err != nil {
		panic(err)
	}
	return f
}

func (p Pattern) compileGlobal() (Formula, error) {
	switch p.Behaviour {
	case Absence:
		return AG{F: Not{p.P}}, nil
	case Universality:
		return AG{F: p.P}, nil
	case Existence:
		return AF{F: p.P, B: p.B}, nil
	case Response:
		return LeadsTo{L: p.P, R: p.S, B: p.B}, nil
	case Precedence:
		// S precedes P: no P until the first S (weak until encoded via
		// until-or-globally).
		return Or{
			L: AU{L: Not{p.P}, R: p.S},
			R: AG{F: Not{p.P}},
		}, nil
	default:
		return nil, fmt.Errorf("tctl: unknown behaviour %d", int(p.Behaviour))
	}
}

func (p Pattern) compileScoped() (Formula, error) {
	switch p.Scope {
	case Before:
		// Constrain the prefix that ends at the first R. If R never occurs
		// the scope is empty (PSP convention for "before").
		switch p.Behaviour {
		case Absence:
			return Imply{L: AF{F: p.R}, R: AU{L: Not{p.P}, R: p.R}}, nil
		case Universality:
			return Imply{L: AF{F: p.R}, R: AU{L: p.P, R: p.R}}, nil
		case Existence:
			return Imply{L: AF{F: p.R}, R: AU{L: Not{p.R}, R: And{L: p.P, R: Not{p.R}}}}, nil
		case Response:
			// Every P before the first R is followed by S before that R.
			return Imply{
				L: AF{F: p.R},
				R: AU{L: Imply{L: And{L: p.P, R: Not{p.R}}, R: AU{L: Not{p.R}, R: And{L: p.S, R: Not{p.R}}}}, R: p.R},
			}, nil
		case Precedence:
			return Imply{L: AF{F: p.R}, R: AU{L: Not{p.P}, R: Or{L: p.S, R: p.R}}}, nil
		}
	case After:
		// Constrain the suffix that starts at the first Q. If Q never
		// occurs the property holds vacuously, which the implication
		// encodes.
		inner := Pattern{Behaviour: p.Behaviour, Scope: Globally, P: p.P, S: p.S, B: p.B}
		body, err := inner.compileGlobal()
		if err != nil {
			return nil, err
		}
		// first-Q anchoring: once Q holds, body must hold from there on.
		return AG{F: Imply{L: p.Q, R: body}}, nil
	case Between, AfterUntil:
		// Between Q and R: in every segment opened by Q and closed by R.
		// After-until additionally constrains segments R never closes.
		closes := AF{F: p.R}
		var body Formula
		switch p.Behaviour {
		case Absence:
			body = AU{L: Not{p.P}, R: p.R}
			if p.Scope == AfterUntil {
				body = Or{L: body, R: AG{F: Not{p.P}}}
			}
		case Universality:
			body = AU{L: p.P, R: p.R}
			if p.Scope == AfterUntil {
				body = Or{L: body, R: AG{F: p.P}}
			}
		case Existence:
			body = AU{L: Not{p.R}, R: And{L: p.P, R: Not{p.R}}}
			if p.Scope == AfterUntil {
				body = Or{L: body, R: AF{F: p.P}}
			}
		case Response:
			resp := Imply{L: p.P, R: AF{F: p.S, B: p.B}}
			body = AU{L: Formula(resp), R: p.R}
			if p.Scope == AfterUntil {
				body = Or{L: body, R: AG{F: resp}}
			}
		case Precedence:
			body = AU{L: Not{p.P}, R: Or{L: p.S, R: p.R}}
			if p.Scope == AfterUntil {
				body = Or{L: body, R: AG{F: Not{p.P}}}
			}
		default:
			return nil, fmt.Errorf("tctl: unknown behaviour %d", int(p.Behaviour))
		}
		if p.Scope == Between {
			// Only segments that R actually closes are constrained.
			return AG{F: Imply{L: And{L: p.Q, R: Not{p.R}}, R: Imply{L: closes, R: body}}}, nil
		}
		return AG{F: Imply{L: And{L: p.Q, R: Not{p.R}}, R: body}}, nil
	}
	return nil, fmt.Errorf("tctl: unsupported pattern %s/%s", p.Behaviour, p.Scope)
}

// Convenience constructors for the patterns named in VeriDevOps D2.7.

// GlobalUniversality is "Globally, it is always the case that P holds".
func GlobalUniversality(p string) Formula {
	return Pattern{Behaviour: Universality, Scope: Globally, P: Prop{p}}.MustCompile()
}

// GlobalEventually is "P always eventually holds".
func GlobalEventually(p string) Formula {
	return Pattern{Behaviour: Existence, Scope: Globally, P: Prop{p}}.MustCompile()
}

// GlobalResponseTimed is "Globally, if P holds then S eventually holds
// within T time units".
func GlobalResponseTimed(p, s string, t trace.Time) Formula {
	return Pattern{Behaviour: Response, Scope: Globally, P: Prop{p}, S: Prop{s}, B: Within(t)}.MustCompile()
}

// GlobalResponseUntil is "Globally, if P holds then, unless R holds, Q
// eventually holds".
func GlobalResponseUntil(p, q, r string) Formula {
	return LeadsTo{L: Prop{p}, R: Or{L: Prop{q}, R: Prop{r}}}
}

// AfterUntilUniversality is "After Q, it is always the case that P holds
// until R holds".
func AfterUntilUniversality(q, p, r string) Formula {
	return Pattern{Behaviour: Universality, Scope: AfterUntil, P: Prop{p}, Q: Prop{q}, R: Prop{r}}.MustCompile()
}
