package tctl

import (
	"math/rand"
	"testing"

	"veridevops/internal/trace"
)

// mkTrace builds a trace from (signal, time, bool) triples, with horizon end.
func mkTrace(end trace.Time, obs ...struct {
	sig string
	at  trace.Time
	v   bool
}) *trace.Trace {
	tr := trace.New()
	for _, o := range obs {
		tr.SetBool(o.sig, o.at, o.v)
	}
	tr.SetEnd(end)
	return tr
}

type obs = struct {
	sig string
	at  trace.Time
	v   bool
}

func TestEvalInvariantHolds(t *testing.T) {
	tr := mkTrace(100, obs{"p", 0, true})
	if !Holds(tr, MustParse("A[] p")) {
		t.Error("A[] p should hold on constantly-true p")
	}
}

func TestEvalInvariantViolatedWithWitness(t *testing.T) {
	tr := mkTrace(100, obs{"p", 0, true}, obs{"p", 40, false}, obs{"p", 60, true})
	v := Eval(tr, MustParse("A[] p"))
	if v.Holds {
		t.Fatal("A[] p should fail")
	}
	if v.FailAt != 40 {
		t.Errorf("FailAt = %d, want 40", v.FailAt)
	}
}

func TestEvalEventually(t *testing.T) {
	tr := mkTrace(100, obs{"p", 0, false}, obs{"p", 70, true})
	if !Holds(tr, MustParse("A<> p")) {
		t.Error("A<> p should hold when p eventually rises")
	}
	if Holds(tr, MustParse("A<> q")) {
		t.Error("A<> q must be false under strong finite-trace semantics")
	}
}

func TestEvalBoundedEventually(t *testing.T) {
	tr := mkTrace(100, obs{"p", 0, false}, obs{"p", 30, true})
	if !Holds(tr, MustParse("A<>[<=30] p")) {
		t.Error("p rises exactly at the bound; inclusive bound should hold")
	}
	if Holds(tr, MustParse("A<>[<=29] p")) {
		t.Error("bound 29 should fail when p rises at 30")
	}
}

func TestEvalLeadsTo(t *testing.T) {
	tr := trace.New()
	rng := rand.New(rand.NewSource(3))
	maxLat := trace.GenResponsePairs(tr, "req", "ack", 15, 40, 2, 12, rng)

	if !Holds(tr, LeadsTo{L: Prop{"req"}, R: Prop{"ack"}, B: Within(maxLat)}) {
		t.Errorf("req -->[<=%d] ack should hold (max observed latency)", maxLat)
	}
	if Holds(tr, LeadsTo{L: Prop{"req"}, R: Prop{"ack"}, B: Within(1)}) {
		t.Error("req -->[<=1] ack should fail (min latency is 2)")
	}
	if !Holds(tr, MustParse("req --> ack")) {
		t.Error("unbounded req --> ack should hold")
	}
}

func TestEvalLeadsToViolation(t *testing.T) {
	// req at 10 never acknowledged.
	tr := mkTrace(200,
		obs{"req", 10, true}, obs{"req", 11, false},
		obs{"ack", 0, false})
	if Holds(tr, MustParse("req --> ack")) {
		t.Error("response never happens; leads-to must fail")
	}
}

func TestEvalUntil(t *testing.T) {
	// p holds until q rises at 50.
	tr := mkTrace(100, obs{"p", 0, true}, obs{"q", 50, true}, obs{"p", 55, false})
	if !Holds(tr, MustParse("A[p U q]")) {
		t.Error("p U q should hold")
	}
	// p drops before q.
	tr2 := mkTrace(100, obs{"p", 0, true}, obs{"p", 20, false}, obs{"q", 50, true})
	if Holds(tr2, MustParse("A[p U q]")) {
		t.Error("p U q should fail when p drops before q")
	}
	// q never happens.
	tr3 := mkTrace(100, obs{"p", 0, true})
	if Holds(tr3, MustParse("A[p U q]")) {
		t.Error("p U q should fail when q never holds (strong until)")
	}
}

func TestEvalUntilImmediateR(t *testing.T) {
	// q holds at time 0: until is satisfied regardless of p.
	tr := mkTrace(10, obs{"q", 0, true})
	if !Holds(tr, MustParse("A[p U q]")) {
		t.Error("q at start satisfies p U q")
	}
}

func TestEvalBooleanConnectives(t *testing.T) {
	tr := mkTrace(10, obs{"p", 0, true}, obs{"q", 0, false})
	cases := []struct {
		f    string
		want bool
	}{
		{"p && !q", true},
		{"p && q", false},
		{"p || q", true},
		{"q -> p", true},
		{"p -> q", false},
		{"true", true},
		{"false", false},
		{"!false", true},
	}
	for _, c := range cases {
		if got := Holds(tr, MustParse(c.f)); got != c.want {
			t.Errorf("Holds(%q) = %v, want %v", c.f, got, c.want)
		}
	}
}

func TestEvalNumericAtoms(t *testing.T) {
	tr := trace.New()
	tr.SetNum("temp", 0, 20)
	tr.SetNum("temp", 50, 150)
	tr.SetEnd(100)

	if Holds(tr, MustParse("A[] temp < 100")) {
		t.Error("temp exceeds 100 at t=50")
	}
	if !Holds(tr, MustParse("A<> temp >= 150")) {
		t.Error("temp reaches 150")
	}
	if !Holds(tr, MustParse("temp == 20")) {
		t.Error("temp is 20 at time 0")
	}
	if !Holds(tr, MustParse("temp != 30")) {
		t.Error("temp is not 30 at time 0")
	}
}

func TestEvalPathQuantifierCollapse(t *testing.T) {
	// On a linear trace, E-quantified operators agree with A-quantified.
	tr := mkTrace(100, obs{"p", 0, false}, obs{"p", 10, true}, obs{"p", 90, false})
	pairs := [][2]string{
		{"E<> p", "A<> p"},
		{"E[] p", "A[] p"},
		{"E[p U q]", "A[p U q]"},
	}
	for _, pr := range pairs {
		if Holds(tr, MustParse(pr[0])) != Holds(tr, MustParse(pr[1])) {
			t.Errorf("%s and %s must agree on a linear trace", pr[0], pr[1])
		}
	}
}

func TestEvalEmptyTrace(t *testing.T) {
	tr := trace.New()
	if !Holds(tr, MustParse("A[] !p")) {
		t.Error("absent signal is false, so A[] !p should hold on an empty trace")
	}
	if Holds(tr, MustParse("A<> p")) {
		t.Error("A<> p should fail on an empty trace")
	}
}

// Property-style test: bounded eventually agrees with a brute-force scan on
// random traces.
func TestBoundedEventuallyAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for iter := 0; iter < 50; iter++ {
		tr := trace.New()
		trace.GenRandomToggles(tr, "p", 2+rng.Intn(10), 500, rng)
		bound := trace.Time(rng.Int63n(200))
		got := Holds(tr, AF{F: Prop{"p"}, B: Within(bound)})

		// Brute force on change points.
		want := false
		for _, cp := range tr.ChangePoints() {
			if cp <= bound && tr.BoolAt("p", cp) {
				want = true
				break
			}
		}
		if got != want {
			t.Fatalf("iter %d bound %d: eval=%v brute=%v", iter, bound, got, want)
		}
	}
}

func TestEvalMemoizationConsistency(t *testing.T) {
	// The same subformula appearing twice must evaluate consistently
	// (exercises the memo path).
	tr := mkTrace(50, obs{"p", 0, true})
	f := And{L: AG{Prop{"p"}}, R: Or{L: AG{Prop{"p"}}, R: Prop{"q"}}}
	if !Holds(tr, f) {
		t.Error("memoized duplicate subformula evaluated inconsistently")
	}
}
