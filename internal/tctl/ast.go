// Package tctl implements a timed computation-tree-logic (TCTL) subset in
// the style used by the PROPAS / PSP-UPPAAL pattern catalogue of the
// VeriDevOps project: path-quantified temporal operators (A[], E<>, A<>,
// E[], until, leads-to) over propositional atoms, with optional upper time
// bounds on the eventualities.
//
// The package provides the AST, a parser for a UPPAAL-like concrete syntax,
// a pretty-printer, an evaluator over finite timed traces (internal/trace),
// and the compiler from specification patterns (Dwyer's scopes x behaviours)
// to formulas.
package tctl

import (
	"fmt"
	"strings"

	"veridevops/internal/trace"
)

// Bound is an optional inclusive upper time bound on an eventuality
// ("within D ticks"). The zero value means unbounded.
type Bound struct {
	Valid bool
	D     trace.Time
}

// Unbounded is the absent bound.
var Unbounded = Bound{}

// Within returns an inclusive upper bound of d ticks.
func Within(d trace.Time) Bound { return Bound{Valid: true, D: d} }

func (b Bound) String() string {
	if !b.Valid {
		return ""
	}
	return fmt.Sprintf("[<=%d]", b.D)
}

// Formula is a TCTL formula node.
type Formula interface {
	fmt.Stringer
	// prec returns the printing precedence, used to minimize parentheses.
	prec() int
}

// Prop is a propositional atom naming a boolean signal.
type Prop struct{ Name string }

// True and False are the boolean constants.
type (
	True  struct{}
	False struct{}
)

// CmpOp is a comparison operator for numeric atoms.
type CmpOp int

// Comparison operators.
const (
	Lt CmpOp = iota
	Le
	Gt
	Ge
	Eq
	Ne
)

func (op CmpOp) String() string {
	switch op {
	case Lt:
		return "<"
	case Le:
		return "<="
	case Gt:
		return ">"
	case Ge:
		return ">="
	case Eq:
		return "=="
	case Ne:
		return "!="
	default:
		return "?"
	}
}

// Cmp is a numeric atom comparing a signal against a constant.
type Cmp struct {
	Signal string
	Op     CmpOp
	Value  float64
}

// Not is logical negation.
type Not struct{ F Formula }

// And is logical conjunction.
type And struct{ L, R Formula }

// Or is logical disjunction.
type Or struct{ L, R Formula }

// Imply is material implication.
type Imply struct{ L, R Formula }

// AG is "invariantly" (UPPAAL A[]).
type AG struct{ F Formula }

// EG is "potentially always" (UPPAAL E[]).
type EG struct{ F Formula }

// AF is "inevitably", optionally time-bounded (UPPAAL A<>).
type AF struct {
	F Formula
	B Bound
}

// EF is "possibly", optionally time-bounded (UPPAAL E<>).
type EF struct {
	F Formula
	B Bound
}

// AU is "for all paths, L until R".
type AU struct{ L, R Formula }

// EU is "for some path, L until R".
type EU struct{ L, R Formula }

// LeadsTo is the UPPAAL response operator L --> R, shorthand for
// A[] (L imply A<> R), optionally time-bounded.
type LeadsTo struct {
	L, R Formula
	B    Bound
}

// Printing precedences, larger binds tighter.
const (
	precLeadsTo = 1
	precImply   = 2
	precOr      = 3
	precAnd     = 4
	precUnary   = 5
	precAtom    = 6
)

func (Prop) prec() int    { return precAtom }
func (True) prec() int    { return precAtom }
func (False) prec() int   { return precAtom }
func (Cmp) prec() int     { return precAtom }
func (Not) prec() int     { return precUnary }
func (And) prec() int     { return precAnd }
func (Or) prec() int      { return precOr }
func (Imply) prec() int   { return precImply }
func (AG) prec() int      { return precUnary }
func (EG) prec() int      { return precUnary }
func (AF) prec() int      { return precUnary }
func (EF) prec() int      { return precUnary }
func (AU) prec() int      { return precAtom }
func (EU) prec() int      { return precAtom }
func (LeadsTo) prec() int { return precLeadsTo }

func wrap(parent int, f Formula) string {
	s := f.String()
	if f.prec() < parent {
		return "(" + s + ")"
	}
	return s
}

func (p Prop) String() string  { return p.Name }
func (True) String() string    { return "true" }
func (False) String() string   { return "false" }
func (c Cmp) String() string   { return fmt.Sprintf("%s %s %g", c.Signal, c.Op, c.Value) }
func (n Not) String() string   { return "!" + wrap(precUnary+1, n.F) }
func (a And) String() string   { return wrap(precAnd, a.L) + " && " + wrap(precAnd+1, a.R) }
func (o Or) String() string    { return wrap(precOr, o.L) + " || " + wrap(precOr+1, o.R) }
func (i Imply) String() string { return wrap(precImply+1, i.L) + " -> " + wrap(precImply, i.R) }
func (g AG) String() string    { return "A[] " + wrap(precUnary, g.F) }
func (g EG) String() string    { return "E[] " + wrap(precUnary, g.F) }
func (f AF) String() string    { return "A<>" + f.B.String() + " " + wrap(precUnary, f.F) }
func (f EF) String() string    { return "E<>" + f.B.String() + " " + wrap(precUnary, f.F) }
func (u AU) String() string    { return "A[" + u.L.String() + " U " + u.R.String() + "]" }
func (u EU) String() string    { return "E[" + u.L.String() + " U " + u.R.String() + "]" }
func (l LeadsTo) String() string {
	arrow := " --> "
	if l.B.Valid {
		arrow = fmt.Sprintf(" -->%s ", l.B.String())
	}
	return wrap(precLeadsTo+1, l.L) + arrow + wrap(precLeadsTo+1, l.R)
}

// Props returns the sorted set of signal names referenced by the formula.
func Props(f Formula) []string {
	set := map[string]struct{}{}
	var walk func(Formula)
	walk = func(f Formula) {
		switch n := f.(type) {
		case Prop:
			set[n.Name] = struct{}{}
		case Cmp:
			set[n.Signal] = struct{}{}
		case Not:
			walk(n.F)
		case And:
			walk(n.L)
			walk(n.R)
		case Or:
			walk(n.L)
			walk(n.R)
		case Imply:
			walk(n.L)
			walk(n.R)
		case AG:
			walk(n.F)
		case EG:
			walk(n.F)
		case AF:
			walk(n.F)
		case EF:
			walk(n.F)
		case AU:
			walk(n.L)
			walk(n.R)
		case EU:
			walk(n.L)
			walk(n.R)
		case LeadsTo:
			walk(n.L)
			walk(n.R)
		}
	}
	walk(f)
	out := make([]string, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	// small n; simple sort keeps the package dependency-light
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// Desugar rewrites derived operators (Imply, LeadsTo) into the kernel
// (Not/And/Or/AG/AF/AU...), which the evaluator and the observer-automata
// compiler consume.
func Desugar(f Formula) Formula {
	switch n := f.(type) {
	case Imply:
		return Or{L: Not{Desugar(n.L)}, R: Desugar(n.R)}
	case LeadsTo:
		return AG{F: Or{L: Not{Desugar(n.L)}, R: AF{F: Desugar(n.R), B: n.B}}}
	case Not:
		return Not{Desugar(n.F)}
	case And:
		return And{Desugar(n.L), Desugar(n.R)}
	case Or:
		return Or{Desugar(n.L), Desugar(n.R)}
	case AG:
		return AG{Desugar(n.F)}
	case EG:
		return EG{Desugar(n.F)}
	case AF:
		return AF{Desugar(n.F), n.B}
	case EF:
		return EF{Desugar(n.F), n.B}
	case AU:
		return AU{Desugar(n.L), Desugar(n.R)}
	case EU:
		return EU{Desugar(n.L), Desugar(n.R)}
	default:
		return f
	}
}

// Equal reports structural equality of two formulas (after printing; the
// printer is injective up to parenthesization).
func Equal(a, b Formula) bool {
	return strings.TrimSpace(a.String()) == strings.TrimSpace(b.String())
}
