//go:build race

package telemetry

// raceEnabled reports whether the race detector is compiled in; its
// instrumentation defeats sync.Pool reuse (Get intentionally drops items
// under -race), so allocation-budget assertions are skipped.
const raceEnabled = true
