// Package store is the embeddable trace backend behind the telemetry
// layer: a bounded, queryable ring of ended spans fed straight off the
// Tracer hot path through the telemetry.Sink seam. Where the JSONL
// export writes spans out and forgets them, the store keeps the recent
// window resident — columnar blocks of interned names and flat
// duration/outcome slices — so the load harness and the CLIs can answer
// "which host was the straggler", "p99 per check", "the five slowest
// timeout traces" in microseconds without re-parsing trace files.
//
// Ingestion is trace-buffered: spans accumulate in per-trace buffers
// (sharded 16 ways by trace ID, recycled through per-shard free lists)
// until the trace's root span ends, at which point the tail sampler
// decides the whole trace's fate — error-class traces (a span whose
// outcome is fail/incomplete/error/timeout/panic) are always kept, OK
// traces are kept one-in-N — and kept traces append atomically into the
// block ring. Head sampling (drop a trace at first sight by trace-ID
// hash) bounds even the buffering cost under extreme load. The ring
// holds a fixed span capacity; when full, the oldest block is recycled,
// so memory is bounded no matter how long the daemon runs.
//
// The query layer lives in query.go; rendering reuses report.Table and
// tree reassembly reuses telemetry.BuildTree.
package store

import (
	"sync"
	"sync/atomic"
	"time"

	"veridevops/internal/telemetry"
)

// Outcome classifies a span for sampling and filtering: the store's
// compact enum over the `outcome` tags the engine writes on attempt
// spans (ok/transient/timeout/panic/error) and the `status` tags the
// runner writes on check spans (PASS/FAIL/ERROR/INCOMPLETE). Ordering
// matters: everything >= OutcomeFail is error-class and exempt from
// tail sampling.
type Outcome uint8

const (
	OutcomeNone Outcome = iota // span carried no outcome/status tag
	OutcomeOK
	OutcomeTransient
	OutcomeFail
	OutcomeIncomplete
	OutcomeError
	OutcomeTimeout
	OutcomePanic
)

// ErrorClass reports whether the outcome marks a trace worth keeping
// unconditionally: failures, incompletes, errors, timeouts, panics.
func (o Outcome) ErrorClass() bool { return o >= OutcomeFail }

func (o Outcome) String() string {
	switch o {
	case OutcomeOK:
		return "ok"
	case OutcomeTransient:
		return "transient"
	case OutcomeFail:
		return "fail"
	case OutcomeIncomplete:
		return "incomplete"
	case OutcomeError:
		return "error"
	case OutcomeTimeout:
		return "timeout"
	case OutcomePanic:
		return "panic"
	default:
		return "none"
	}
}

// ParseOutcome maps both tag vocabularies — the engine's `outcome`
// values and the runner's `status` values — onto the store enum.
// Unknown strings (and "") parse as OutcomeNone.
func ParseOutcome(s string) Outcome {
	switch s {
	case "ok", "OK", "PASS", "pass":
		return OutcomeOK
	case "transient":
		return OutcomeTransient
	case "fail", "FAIL":
		return OutcomeFail
	case "incomplete", "INCOMPLETE":
		return OutcomeIncomplete
	case "error", "ERROR":
		return OutcomeError
	case "timeout", "TIMEOUT":
		return OutcomeTimeout
	case "panic", "PANIC":
		return OutcomePanic
	default:
		return OutcomeNone
	}
}

// Config sizes and tunes a Store. The zero value gets sane defaults
// from New.
type Config struct {
	// Capacity is the span budget of the ring: once this many spans are
	// resident, the oldest block is evicted to admit new ones. Default
	// 1<<18 (262144 spans, a few sweeps of a 10k-host fleet).
	Capacity int
	// BlockSpans is the columnar block granularity (capacity is rounded
	// up to whole blocks). Default 4096.
	BlockSpans int
	// HeadKeep1In, when > 1, head-samples traces: only trace IDs whose
	// salted hash lands in the 1-in-N keep set are buffered at all; the
	// rest are dropped at first sight, before any copying. 0 or 1 keeps
	// every trace at the head.
	HeadKeep1In int
	// TailKeepOK1In, when > 1, tail-samples healthy traces: when a trace
	// completes with no error-class span, it is stored only if its ID
	// hash lands in the 1-in-N keep set. Error-class traces (any span
	// fail/incomplete/error/timeout/panic) are always stored. 0 or 1
	// keeps every completed trace.
	TailKeepOK1In int
}

// Stats is a snapshot of the store's ingestion counters.
type Stats struct {
	Offered      uint64 // spans offered by the tracer
	HeadDropped  uint64 // spans dropped by head sampling
	TailDropped  uint64 // spans in healthy traces dropped by tail sampling
	Stored       uint64 // spans appended to the ring (lifetime)
	Evicted      uint64 // spans recycled with their block on ring wrap
	Traces       uint64 // completed traces stored (lifetime)
	ErrorTraces  uint64 // stored traces that were error-class
	OpenTraces   int    // trace buffers still waiting for their root
	Resident     int    // spans currently queryable in the ring
	ResidentData int    // bytes of tag arena currently resident
}

// rec is the per-span row of a trace buffer before block append: the
// SpanData with strings interned and tags flattened into the buffer's
// kv arena.
type rec struct {
	id, parent, trace uint64
	startUS, durUS    int64
	name              uint32
	outcome           Outcome
	tagOff, tagLen    uint32 // window into the traceBuf's kv slice (pairs)
}

// traceBuf accumulates one trace's spans between its first span's End
// and its root's End.
type traceBuf struct {
	recs  []rec
	kv    []uint32 // interned tag pairs, all spans concatenated
	bad   bool     // any error-class span seen
	runID uint64   // run epoch the buffer belongs to (Reset invalidates)
}

// traceShard is 1/16th of the open-trace map, independently locked so
// concurrent enders rarely contend.
type traceShard struct {
	mu   sync.Mutex
	bufs map[uint64]*traceBuf
	free []*traceBuf
}

const numShards = 16

// block is one columnar segment of the ring: parallel flat slices, one
// row per span, plus a shared tag arena. Blocks are written by exactly
// one appender at a time (the store's append lock) and become immutable
// once full; readers snapshot block boundaries under the same lock.
type block struct {
	ids     []uint64
	parents []uint64
	traces  []uint64
	starts  []int64
	durs    []int64
	names   []uint32
	outs    []Outcome
	tagOff  []uint32
	tagLen  []uint32
	arena   []uint32 // tag pairs: key-sym, val-sym, ...
}

func newBlock(spans int) *block {
	return &block{
		ids:     make([]uint64, 0, spans),
		parents: make([]uint64, 0, spans),
		traces:  make([]uint64, 0, spans),
		starts:  make([]int64, 0, spans),
		durs:    make([]int64, 0, spans),
		names:   make([]uint32, 0, spans),
		outs:    make([]Outcome, 0, spans),
		tagOff:  make([]uint32, 0, spans),
		tagLen:  make([]uint32, 0, spans),
		arena:   make([]uint32, 0, spans*4),
	}
}

func (b *block) reset() {
	b.ids = b.ids[:0]
	b.parents = b.parents[:0]
	b.traces = b.traces[:0]
	b.starts = b.starts[:0]
	b.durs = b.durs[:0]
	b.names = b.names[:0]
	b.outs = b.outs[:0]
	b.tagOff = b.tagOff[:0]
	b.tagLen = b.tagLen[:0]
	b.arena = b.arena[:0]
}

// Store is the bounded trace backend. It implements telemetry.Sink;
// attach it with telemetry.WithSink(store) and every ended span flows
// in. All methods are safe for concurrent use. A nil *Store is a valid
// disabled sink view for the helpers that tolerate it, but Offer
// requires a real store (the tracer never holds a typed-nil Sink).
type Store struct {
	cfg  Config
	salt uint64

	// symbols interns every span name and tag key/value into dense
	// uint32 symbols; the columnar blocks store only symbols.
	symMu   sync.RWMutex
	symOf   map[string]uint32
	strings []string

	shards [numShards]traceShard

	// appendMu orders trace appends into the ring and guards the
	// write-side block topology (readers take it briefly to snapshot).
	appendMu sync.Mutex
	blocks   []*block // ring order: blocks[0] oldest, last is write head
	freeBlk  []*block
	resident int

	offered     atomic.Uint64
	headDropped atomic.Uint64
	tailDropped atomic.Uint64
	stored      atomic.Uint64
	evicted     atomic.Uint64
	traces      atomic.Uint64
	errorTraces atomic.Uint64
	runID       atomic.Uint64
}

// New builds a store. Zero-value fields of cfg get defaults: 262144
// span capacity, 4096-span blocks, no sampling.
func New(cfg Config) *Store {
	if cfg.Capacity <= 0 {
		cfg.Capacity = 1 << 18
	}
	if cfg.BlockSpans <= 0 {
		cfg.BlockSpans = 4096
	}
	if cfg.BlockSpans > cfg.Capacity {
		cfg.BlockSpans = cfg.Capacity
	}
	s := &Store{
		cfg:   cfg,
		salt:  0x9e3779b97f4a7c15,
		symOf: make(map[string]uint32, 256),
	}
	for i := range s.shards {
		s.shards[i].bufs = make(map[uint64]*traceBuf, 64)
	}
	s.blocks = append(s.blocks, newBlock(cfg.BlockSpans))
	return s
}

// maxBlocks is the ring's block budget for the configured capacity.
func (s *Store) maxBlocks() int {
	n := (s.cfg.Capacity + s.cfg.BlockSpans - 1) / s.cfg.BlockSpans
	if n < 1 {
		n = 1
	}
	return n
}

// sym interns a string, returning its dense symbol.
func (s *Store) sym(str string) uint32 {
	s.symMu.RLock()
	id, ok := s.symOf[str]
	s.symMu.RUnlock()
	if ok {
		return id
	}
	s.symMu.Lock()
	defer s.symMu.Unlock()
	if id, ok = s.symOf[str]; ok {
		return id
	}
	id = uint32(len(s.strings))
	s.strings = append(s.strings, str)
	s.symOf[str] = id
	return id
}

// lookupSym resolves a string to its symbol without interning; ok is
// false when the store has never seen it (so no span can match it).
func (s *Store) lookupSym(str string) (uint32, bool) {
	s.symMu.RLock()
	id, ok := s.symOf[str]
	s.symMu.RUnlock()
	return id, ok
}

// str resolves a symbol back to its string.
func (s *Store) str(sym uint32) string {
	s.symMu.RLock()
	defer s.symMu.RUnlock()
	if int(sym) < len(s.strings) {
		return s.strings[sym]
	}
	return ""
}

// hashTrace mixes a trace ID with the store salt (splitmix64 finisher),
// so sampling keeps a stable, uncorrelated subset.
func (s *Store) hashTrace(id uint64) uint64 {
	z := id + s.salt
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (s *Store) headKeep(trace uint64) bool {
	n := s.cfg.HeadKeep1In
	if n <= 1 {
		return true
	}
	return s.hashTrace(trace)%uint64(n) == 0
}

func (s *Store) tailKeepOK(trace uint64) bool {
	n := s.cfg.TailKeepOK1In
	if n <= 1 {
		return true
	}
	// Re-mix so head and tail keep sets are independent.
	return s.hashTrace(trace^0xd1b54a32d192ed03)%uint64(n) == 0
}

// Offer ingests one ended span (the telemetry.Sink contract: d.Tags is
// valid only during the call — everything kept is interned here).
func (s *Store) Offer(d telemetry.SpanData) {
	s.offered.Add(1)
	if !s.headKeep(d.Trace) {
		s.headDropped.Add(1)
		return
	}
	sh := &s.shards[d.Trace%numShards]
	run := s.runID.Load()
	sh.mu.Lock()
	tb := sh.bufs[d.Trace]
	if tb == nil || tb.runID != run {
		if n := len(sh.free); n > 0 && sh.free[n-1].runID == run {
			tb = sh.free[n-1]
			sh.free = sh.free[:n-1]
		} else {
			tb = &traceBuf{runID: run}
		}
		tb.recs = tb.recs[:0]
		tb.kv = tb.kv[:0]
		tb.bad = false
		tb.runID = run
		sh.bufs[d.Trace] = tb
	}
	r := rec{
		id: d.ID, parent: d.Parent, trace: d.Trace,
		startUS: d.Start.UnixNano() / 1e3, durUS: int64(d.Dur) / 1e3,
		name:   s.sym(d.Name),
		tagOff: uint32(len(tb.kv)),
	}
	for i := 0; i+1 < len(d.Tags); i += 2 {
		k, v := d.Tags[i], d.Tags[i+1]
		if k == "outcome" || k == "status" {
			if o := ParseOutcome(v); o != OutcomeNone {
				r.outcome = o
			}
		}
		tb.kv = append(tb.kv, s.sym(k), s.sym(v))
	}
	r.tagLen = uint32(len(tb.kv)) - r.tagOff
	if r.outcome.ErrorClass() {
		tb.bad = true
	}
	tb.recs = append(tb.recs, r)
	rootDone := d.ID == d.Trace
	if rootDone {
		delete(sh.bufs, d.Trace)
	}
	sh.mu.Unlock()
	if rootDone {
		s.completeTrace(sh, tb)
	}
}

// completeTrace runs the tail sampler and, for kept traces, appends the
// buffered spans into the ring. Called without shard lock held; tb is
// exclusively owned here.
func (s *Store) completeTrace(sh *traceShard, tb *traceBuf) {
	keep := tb.bad || s.tailKeepOK(tb.recs[len(tb.recs)-1].trace)
	if keep {
		s.appendTrace(tb)
	} else {
		s.tailDropped.Add(uint64(len(tb.recs)))
	}
	sh.mu.Lock()
	if tb.runID == s.runID.Load() && len(sh.free) < 64 {
		sh.free = append(sh.free, tb)
	}
	sh.mu.Unlock()
}

// appendTrace moves a kept trace's rows into the write-head block,
// evicting the oldest block when the ring is at capacity.
func (s *Store) appendTrace(tb *traceBuf) {
	s.appendMu.Lock()
	defer s.appendMu.Unlock()
	head := s.blocks[len(s.blocks)-1]
	for i := range tb.recs {
		if len(head.ids) == cap(head.ids) {
			head = s.rotateLocked()
		}
		r := &tb.recs[i]
		base := uint32(len(head.arena))
		head.arena = append(head.arena, tb.kv[r.tagOff:r.tagOff+r.tagLen]...)
		head.ids = append(head.ids, r.id)
		head.parents = append(head.parents, r.parent)
		head.traces = append(head.traces, r.trace)
		head.starts = append(head.starts, r.startUS)
		head.durs = append(head.durs, r.durUS)
		head.names = append(head.names, r.name)
		head.outs = append(head.outs, r.outcome)
		head.tagOff = append(head.tagOff, base)
		head.tagLen = append(head.tagLen, r.tagLen)
		s.resident++
	}
	s.stored.Add(uint64(len(tb.recs)))
	s.traces.Add(1)
	if tb.bad {
		s.errorTraces.Add(1)
	}
}

// rotateLocked opens a fresh write-head block, evicting the oldest
// block if the ring is full. Caller holds appendMu.
func (s *Store) rotateLocked() *block {
	var nb *block
	if len(s.blocks) >= s.maxBlocks() {
		nb = s.blocks[0]
		s.evicted.Add(uint64(len(nb.ids)))
		s.resident -= len(nb.ids)
		copy(s.blocks, s.blocks[1:])
		s.blocks = s.blocks[:len(s.blocks)-1]
		nb.reset()
	} else if n := len(s.freeBlk); n > 0 {
		nb = s.freeBlk[n-1]
		s.freeBlk = s.freeBlk[:n-1]
	} else {
		nb = newBlock(s.cfg.BlockSpans)
	}
	s.blocks = append(s.blocks, nb)
	return nb
}

// Flush force-completes every open trace buffer: spans whose root never
// ended (a crashed sweep, a daemon shutting down mid-window) are
// appended as error-class partial traces rather than lost. Call after
// Tracer.Flush.
func (s *Store) Flush() {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		pending := make([]*traceBuf, 0, len(sh.bufs))
		for id, tb := range sh.bufs {
			delete(sh.bufs, id)
			pending = append(pending, tb)
		}
		sh.mu.Unlock()
		for _, tb := range pending {
			if len(tb.recs) == 0 {
				continue
			}
			tb.bad = true // partial: never sample away
			s.completeTrace(sh, tb)
		}
	}
}

// Reset empties the store — ring, open buffers, counters — keeping the
// interning table and block allocations for reuse. The run epoch bump
// invalidates in-flight trace buffers racing with the reset.
func (s *Store) Reset() {
	s.runID.Add(1)
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		clear(sh.bufs)
		sh.free = sh.free[:0]
		sh.mu.Unlock()
	}
	s.appendMu.Lock()
	for _, b := range s.blocks {
		b.reset()
		if len(s.freeBlk) < s.maxBlocks() {
			s.freeBlk = append(s.freeBlk, b)
		}
	}
	s.blocks = s.blocks[:0]
	s.blocks = append(s.blocks, s.rotateNewLocked())
	s.resident = 0
	s.appendMu.Unlock()
	s.offered.Store(0)
	s.headDropped.Store(0)
	s.tailDropped.Store(0)
	s.stored.Store(0)
	s.evicted.Store(0)
	s.traces.Store(0)
	s.errorTraces.Store(0)
}

func (s *Store) rotateNewLocked() *block {
	if n := len(s.freeBlk); n > 0 {
		nb := s.freeBlk[n-1]
		s.freeBlk = s.freeBlk[:n-1]
		return nb
	}
	return newBlock(s.cfg.BlockSpans)
}

// Stats snapshots the ingestion counters.
func (s *Store) Stats() Stats {
	open := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		open += len(sh.bufs)
		sh.mu.Unlock()
	}
	s.appendMu.Lock()
	resident := s.resident
	arena := 0
	for _, b := range s.blocks {
		arena += len(b.arena) * 4
	}
	s.appendMu.Unlock()
	return Stats{
		Offered:      s.offered.Load(),
		HeadDropped:  s.headDropped.Load(),
		TailDropped:  s.tailDropped.Load(),
		Stored:       s.stored.Load(),
		Evicted:      s.evicted.Load(),
		Traces:       s.traces.Load(),
		ErrorTraces:  s.errorTraces.Load(),
		OpenTraces:   open,
		Resident:     resident,
		ResidentData: arena,
	}
}

// scan hands fn the resident ring — oldest block first, write head
// last — holding the append lock for the duration, so every row fn can
// reach stays stable (no eviction, no block recycling) even while
// writers queue behind it. A full-ring name-filter scan completes in
// well under a millisecond (see BenchmarkQuery*), so writers stall
// briefly at worst. fn must not call back into the store's ingestion
// side.
func (s *Store) scan(fn func(blocks []*block)) {
	s.appendMu.Lock()
	defer s.appendMu.Unlock()
	fn(s.blocks)
}

// Resident reports how many spans are currently queryable.
func (s *Store) Resident() int {
	s.appendMu.Lock()
	defer s.appendMu.Unlock()
	return s.resident
}

// record rebuilds the JSONL view of row i in block b — the shape
// BuildTree and the renderers already understand.
func (s *Store) record(b *block, i int) telemetry.Record {
	rec := telemetry.Record{
		ID:      b.ids[i],
		Parent:  b.parents[i],
		Trace:   b.traces[i],
		Name:    s.str(b.names[i]),
		StartUS: b.starts[i],
		DurUS:   b.durs[i],
	}
	if n := b.tagLen[i]; n > 0 {
		tags := make(map[string]string, n/2)
		off := b.tagOff[i]
		for j := uint32(0); j+1 < n; j += 2 {
			tags[s.str(b.arena[off+j])] = s.str(b.arena[off+j+1])
		}
		rec.Tags = tags
	}
	return rec
}

var _ telemetry.Sink = (*Store)(nil)

// sinceUS converts a duration to the store's microsecond unit, rounding
// up so sub-microsecond thresholds still filter.
func sinceUS(d time.Duration) int64 {
	us := int64(d) / 1e3
	if int64(d)%1e3 != 0 {
		us++
	}
	return us
}
