package store

import (
	"sync"
	"testing"
	"time"

	"veridevops/internal/telemetry"
)

// span builds one SpanData row; tags alternate key, value.
func span(id, parent, trace uint64, name string, durUS int64, tags ...string) telemetry.SpanData {
	return telemetry.SpanData{
		ID: id, Parent: parent, Trace: trace, Name: name,
		Start: time.Unix(0, int64(id)*1000), Dur: time.Duration(durUS) * time.Microsecond,
		Tags: tags,
	}
}

// offerTrace feeds a whole trace, children first, root (id == trace)
// last — the order spans actually end.
func offerTrace(s *Store, spans ...telemetry.SpanData) {
	for _, d := range spans {
		s.Offer(d)
	}
}

func TestStoreKeepsCompletedTraces(t *testing.T) {
	s := New(Config{Capacity: 1024, BlockSpans: 64})
	offerTrace(s,
		span(2, 1, 1, "check", 500, "finding", "CIS-1.1", "status", "PASS"),
		span(3, 1, 1, "check", 700, "finding", "CIS-2.2", "status", "FAIL"),
		span(1, 0, 1, "host", 1500, "host", "web-0"),
	)
	st := s.Stats()
	if st.Offered != 3 || st.Stored != 3 || st.Traces != 1 || st.Resident != 3 {
		t.Fatalf("stats = %+v, want 3 offered/stored, 1 trace, 3 resident", st)
	}
	if st.ErrorTraces != 1 {
		t.Errorf("error traces = %d, want 1 (FAIL span makes the trace error-class)", st.ErrorTraces)
	}
	if st.OpenTraces != 0 {
		t.Errorf("open traces = %d, want 0 after root end", st.OpenTraces)
	}
}

func TestStoreBuffersUntilRootEnds(t *testing.T) {
	s := New(Config{Capacity: 1024})
	s.Offer(span(2, 1, 1, "check", 100))
	if st := s.Stats(); st.Resident != 0 || st.OpenTraces != 1 {
		t.Fatalf("stats before root end = %+v, want 0 resident / 1 open", st)
	}
	s.Offer(span(1, 0, 1, "host", 200))
	if st := s.Stats(); st.Resident != 2 || st.OpenTraces != 0 {
		t.Fatalf("stats after root end = %+v, want 2 resident / 0 open", st)
	}
}

func TestTailSamplingKeepsErrorClassAlways(t *testing.T) {
	s := New(Config{Capacity: 1 << 14, TailKeepOK1In: 1 << 30}) // effectively drop all OK
	errs := 0
	for i := uint64(1); i <= 100; i++ {
		root, child := i*2, i*2+1 // child id > root id, root still ends last
		outcome := "ok"
		if i%10 == 0 {
			outcome = "timeout"
			errs++
		}
		offerTrace(s,
			span(child, root, root, "attempt", 100, "outcome", outcome),
			span(root, 0, root, "check", 200),
		)
	}
	st := s.Stats()
	if st.Traces != uint64(errs) {
		t.Fatalf("stored traces = %d, want only the %d timeout traces", st.Traces, errs)
	}
	if st.ErrorTraces != uint64(errs) {
		t.Errorf("error traces = %d, want %d", st.ErrorTraces, errs)
	}
	if st.TailDropped != uint64((100-errs)*2) {
		t.Errorf("tail dropped = %d, want %d", st.TailDropped, (100-errs)*2)
	}
}

func TestTailSamplingKeepsSomeOKTraces(t *testing.T) {
	s := New(Config{Capacity: 1 << 14, TailKeepOK1In: 4})
	for i := uint64(1); i <= 400; i++ {
		offerTrace(s, span(i, 0, i, "check", 100, "outcome", "ok"))
	}
	st := s.Stats()
	if st.Traces == 0 || st.Traces == 400 {
		t.Fatalf("kept %d of 400 OK traces at 1-in-4, want a strict subset", st.Traces)
	}
	// Salted hashing should land in the same ballpark as 1/4.
	if st.Traces < 50 || st.Traces > 150 {
		t.Errorf("kept %d of 400 at 1-in-4, want roughly 100", st.Traces)
	}
}

func TestHeadSamplingDropsBeforeBuffering(t *testing.T) {
	s := New(Config{Capacity: 1 << 14, HeadKeep1In: 4})
	for i := uint64(1); i <= 400; i++ {
		offerTrace(s,
			span(i+1000, i, i, "attempt", 50, "outcome", "timeout"), // error-class...
			span(i, 0, i, "check", 100),
		)
	}
	st := s.Stats()
	if st.HeadDropped == 0 {
		t.Fatal("head sampler dropped nothing at 1-in-4")
	}
	// ...but head sampling drops before outcome is even seen: error
	// traces outside the keep set are gone too, by design.
	if st.Traces >= 400 {
		t.Errorf("stored %d traces, want a head-sampled subset", st.Traces)
	}
	if st.Offered != 800 {
		t.Errorf("offered = %d, want 800", st.Offered)
	}
}

func TestRingEvictsOldestBlocks(t *testing.T) {
	s := New(Config{Capacity: 128, BlockSpans: 32})
	for i := uint64(1); i <= 512; i++ {
		offerTrace(s, span(i, 0, i, "check", int64(i)))
	}
	st := s.Stats()
	if st.Stored != 512 {
		t.Fatalf("stored = %d, want 512", st.Stored)
	}
	if st.Resident > 128 {
		t.Fatalf("resident = %d, want <= capacity 128", st.Resident)
	}
	if st.Evicted != st.Stored-uint64(st.Resident) {
		t.Errorf("evicted = %d, want stored-resident = %d", st.Evicted, st.Stored-uint64(st.Resident))
	}
	// The survivors must be the newest spans: the slowest resident span
	// is the last one written (dur == id here).
	res, err := s.Query("| slowest 1")
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	if got := res.Table.Rows[0][4]; got != "512" {
		t.Errorf("newest resident span id = %s, want 512", got)
	}
}

func TestFlushForceCompletesPartialTraces(t *testing.T) {
	s := New(Config{Capacity: 1024, TailKeepOK1In: 1 << 30})
	s.Offer(span(2, 1, 1, "check", 100, "outcome", "ok"))
	// Root never ends (crashed sweep). Flush must store the partial
	// trace as error-class even though tail sampling would drop OK.
	s.Flush()
	st := s.Stats()
	if st.Resident != 1 || st.Traces != 1 || st.ErrorTraces != 1 {
		t.Fatalf("stats after flush = %+v, want the partial trace stored as error-class", st)
	}
}

func TestResetEmptiesStore(t *testing.T) {
	s := New(Config{Capacity: 1024})
	offerTrace(s, span(1, 0, 1, "check", 100))
	s.Offer(span(4, 3, 3, "check", 50)) // left open
	s.Reset()
	st := s.Stats()
	if st.Resident != 0 || st.OpenTraces != 0 || st.Stored != 0 || st.Offered != 0 {
		t.Fatalf("stats after reset = %+v, want all zero", st)
	}
	offerTrace(s, span(9, 0, 9, "check", 100))
	if st := s.Stats(); st.Resident != 1 {
		t.Fatalf("stats after re-ingest = %+v, want 1 resident", st)
	}
}

func TestOutcomeParsingBothVocabularies(t *testing.T) {
	cases := map[string]Outcome{
		"ok": OutcomeOK, "PASS": OutcomeOK, "transient": OutcomeTransient,
		"FAIL": OutcomeFail, "fail": OutcomeFail, "INCOMPLETE": OutcomeIncomplete,
		"error": OutcomeError, "ERROR": OutcomeError,
		"timeout": OutcomeTimeout, "panic": OutcomePanic, "bogus": OutcomeNone, "": OutcomeNone,
	}
	for in, want := range cases {
		if got := ParseOutcome(in); got != want {
			t.Errorf("ParseOutcome(%q) = %v, want %v", in, got, want)
		}
	}
	for _, o := range []Outcome{OutcomeFail, OutcomeIncomplete, OutcomeError, OutcomeTimeout, OutcomePanic} {
		if !o.ErrorClass() {
			t.Errorf("%v must be error-class", o)
		}
	}
	for _, o := range []Outcome{OutcomeNone, OutcomeOK, OutcomeTransient} {
		if o.ErrorClass() {
			t.Errorf("%v must not be error-class", o)
		}
	}
}

// TestStoreViaTracer is the integration seam: a real Tracer on a virtual
// clock with the store attached via WithSink, using ChildTrace the way
// the fleet does.
func TestStoreViaTracer(t *testing.T) {
	s := New(Config{Capacity: 1024})
	tr := telemetry.New(nil, telemetry.WithClock(telemetry.NewVirtualClock(time.Millisecond)), telemetry.WithSink(s))
	sweep := tr.Root("sweep")
	for i := 0; i < 3; i++ {
		host := sweep.ChildTrace("host")
		check := host.Child("check").Tag("status", "PASS")
		check.End()
		host.End()
	}
	sweep.End()
	s.Flush()
	st := s.Stats()
	// Three host traces plus the sweep's own trace (the sweep root span).
	if st.Traces != 4 {
		t.Fatalf("traces = %d, want 4 (3 hosts + sweep shell)", st.Traces)
	}
	if st.Resident != 7 {
		t.Fatalf("resident = %d, want 7 spans", st.Resident)
	}
	res, err := s.Query("name=check | count by status")
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	if len(res.Table.Rows) != 1 || res.Table.Rows[0][0] != "PASS" || res.Table.Rows[0][1] != "3" {
		t.Fatalf("count by status = %v, want PASS 3", res.Table.Rows)
	}
}

func TestStoreConcurrentIngest(t *testing.T) {
	s := New(Config{Capacity: 1 << 12, BlockSpans: 256})
	var wg sync.WaitGroup
	const workers, traces = 8, 200
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := uint64(w*traces*2 + 1)
			for i := uint64(0); i < traces; i++ {
				root := base + i*2
				offerTrace(s,
					span(root+1, root, root, "attempt", 100, "outcome", "ok"),
					span(root, 0, root, "check", 200),
				)
			}
		}(w)
	}
	wg.Wait()
	st := s.Stats()
	if st.Traces != workers*traces {
		t.Fatalf("traces = %d, want %d", st.Traces, workers*traces)
	}
	if st.Resident > 1<<12 {
		t.Fatalf("resident = %d exceeds capacity", st.Resident)
	}
}

func TestStatsResidentData(t *testing.T) {
	s := New(Config{Capacity: 64})
	offerTrace(s, span(1, 0, 1, "check", 100, "host", "web-0", "finding", "CIS-1.1"))
	if st := s.Stats(); st.ResidentData == 0 {
		t.Error("ResidentData = 0, want tag arena bytes counted")
	}
}

// BenchmarkStoreIngest measures raw Offer throughput: single-span
// traces, the worst case for per-trace bookkeeping (every span pays
// buffer open + complete + append).
func BenchmarkStoreIngest(b *testing.B) {
	s := New(Config{Capacity: 1 << 18})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := uint64(i + 1)
		s.Offer(telemetry.SpanData{
			ID: id, Trace: id, Name: "check",
			Start: time.Unix(0, int64(id)), Dur: time.Microsecond,
			Tags: []string{"host", "web-0", "status", "PASS"},
		})
	}
}

// BenchmarkStoreIngestDeepTraces is the fleet shape: 8-span traces
// buffered until the root ends.
func BenchmarkStoreIngestDeepTraces(b *testing.B) {
	s := New(Config{Capacity: 1 << 18})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		root := uint64(i)*8 + 1
		for c := uint64(1); c < 8; c++ {
			s.Offer(telemetry.SpanData{
				ID: root + c, Parent: root, Trace: root, Name: "check",
				Start: time.Unix(0, int64(root+c)), Dur: time.Microsecond,
				Tags: []string{"status", "PASS"},
			})
		}
		s.Offer(telemetry.SpanData{
			ID: root, Trace: root, Name: "host",
			Start: time.Unix(0, int64(root)), Dur: 8 * time.Microsecond,
			Tags: []string{"host", "web-0"},
		})
	}
}
