package store

import (
	"strings"
	"testing"
)

// fixture populates a store with a deterministic little fleet's worth
// of traces: three hosts, checks with mixed outcomes, one slow timeout.
func fixture(t *testing.T) *Store {
	t.Helper()
	s := New(Config{Capacity: 1 << 12})
	// host web-0: healthy, fast.
	offerTrace(s,
		span(11, 10, 10, "check", 200, "finding", "CIS-1.1", "status", "PASS"),
		span(12, 10, 10, "check", 300, "finding", "CIS-2.2", "status", "PASS"),
		span(10, 0, 10, "host", 600, "host", "web-0"),
	)
	// host web-1: one timeout check, slow.
	offerTrace(s,
		span(21, 20, 20, "check", 5000, "finding", "CIS-1.1", "status", "ERROR", "outcome", "timeout"),
		span(22, 20, 20, "check", 250, "finding", "CIS-2.2", "status", "PASS"),
		span(20, 0, 20, "host", 5400, "host", "web-1"),
	)
	// host db-0: a failing check.
	offerTrace(s,
		span(31, 30, 30, "check", 400, "finding", "CIS-3.3", "status", "FAIL"),
		span(30, 0, 30, "host", 500, "host", "db-0"),
	)
	return s
}

func TestQuerySlowestWithFilters(t *testing.T) {
	s := fixture(t)
	res, err := s.Query("name=check outcome=timeout | slowest 5")
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	if res.Matched != 1 || len(res.Table.Rows) != 1 {
		t.Fatalf("matched = %d rows = %d, want exactly the timeout check", res.Matched, len(res.Table.Rows))
	}
	row := res.Table.Rows[0]
	if row[0] != "check" || row[2] != "timeout" || row[3] != "20" {
		t.Errorf("row = %v, want check/timeout in trace 20", row)
	}
	if !strings.Contains(row[5], "finding=CIS-1.1") {
		t.Errorf("tags cell = %q, want finding=CIS-1.1", row[5])
	}
	if res.Scanned != 8 {
		t.Errorf("scanned = %d, want all 8 resident spans", res.Scanned)
	}
}

func TestQuerySlowestOrderingAndK(t *testing.T) {
	s := fixture(t)
	res, err := s.Query("name=check | slowest 2")
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	if len(res.Table.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(res.Table.Rows))
	}
	// 5000us timeout first, then the 400us FAIL.
	if res.Table.Rows[0][4] != "21" || res.Table.Rows[1][4] != "31" {
		t.Errorf("top-2 ids = %v/%v, want 21 then 31", res.Table.Rows[0][4], res.Table.Rows[1][4])
	}
	if res.Matched != 5 {
		t.Errorf("matched = %d, want all 5 checks", res.Matched)
	}
}

func TestQueryDurationFilter(t *testing.T) {
	s := fixture(t)
	res, err := s.Query("name=check dur>=400us | slowest 10")
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	if res.Matched != 2 {
		t.Fatalf("matched = %d, want 2 (5000us and 400us)", res.Matched)
	}
	res, err = s.Query("name=check dur>400us | slowest 10")
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	if res.Matched != 1 {
		t.Fatalf("matched = %d, want 1 (strict >400us)", res.Matched)
	}
}

func TestQueryTagEquality(t *testing.T) {
	s := fixture(t)
	res, err := s.Query("finding=CIS-1.1 | slowest 10")
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	if res.Matched != 2 {
		t.Fatalf("matched = %d, want the two CIS-1.1 checks", res.Matched)
	}
}

func TestQueryPercentileByHost(t *testing.T) {
	s := fixture(t)
	res, err := s.Query("name=host | p99 by host")
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	if len(res.Table.Rows) != 3 {
		t.Fatalf("rows = %d, want 3 hosts", len(res.Table.Rows))
	}
	// Sorted by p99 desc: web-1 (5400us) first.
	if res.Table.Rows[0][0] != "web-1" {
		t.Errorf("slowest host = %s, want web-1", res.Table.Rows[0][0])
	}
	if res.Table.Rows[0][4] != "5.40" { // p99_ms column
		t.Errorf("web-1 p99 = %s ms, want 5.40", res.Table.Rows[0][4])
	}
}

func TestQueryPercentileByName(t *testing.T) {
	s := fixture(t)
	res, err := s.Query("| p50 by name")
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	if len(res.Table.Rows) != 2 {
		t.Fatalf("rows = %d, want check + host", len(res.Table.Rows))
	}
}

func TestQueryCountByFinding(t *testing.T) {
	s := fixture(t)
	res, err := s.Query("name=check | count by finding")
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	if len(res.Table.Rows) != 3 {
		t.Fatalf("rows = %d, want 3 findings", len(res.Table.Rows))
	}
	// CIS-1.1 and CIS-2.2 both count 2; key ascending breaks the tie.
	if res.Table.Rows[0][0] != "CIS-1.1" || res.Table.Rows[0][1] != "2" {
		t.Errorf("top row = %v, want CIS-1.1 x2", res.Table.Rows[0])
	}
}

func TestQueryTracesReconstructsTrees(t *testing.T) {
	s := fixture(t)
	res, err := s.Query("name=check | traces 2")
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	if len(res.Traces) != 2 {
		t.Fatalf("traces = %d, want 2", len(res.Traces))
	}
	// Slowest trace root: web-1's host span (5400us).
	if res.Traces[0].Trace != 20 || res.Traces[0].DurUS != 5400 {
		t.Fatalf("slowest trace = %+v, want trace 20 / 5400us", res.Traces[0])
	}
	roots := res.Traces[0].Roots
	if len(roots) != 1 || roots[0].Name != "host" || len(roots[0].Children) != 2 {
		t.Fatalf("trace 20 tree = %+v, want host with 2 check children", roots)
	}
	var sb strings.Builder
	if err := res.WriteText(&sb); err != nil {
		t.Fatalf("render: %v", err)
	}
	out := sb.String()
	for _, want := range []string{"trace 20 (5.40ms)", "host 5.40ms", "check 5.00ms", "host=web-1"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered tree missing %q:\n%s", want, out)
		}
	}
}

func TestQueryDefaultsToSlowest5(t *testing.T) {
	s := fixture(t)
	res, err := s.Query("name=check")
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	if len(res.Table.Rows) != 5 {
		t.Fatalf("rows = %d, want default slowest 5", len(res.Table.Rows))
	}
}

func TestQueryUnknownNameIsEmptyNotError(t *testing.T) {
	s := fixture(t)
	for _, expr := range []string{"name=nosuchspan", "nosuchkey=nosuchval", "host=nosuchhost"} {
		res, err := s.Query(expr)
		if err != nil {
			t.Fatalf("query %q: %v", expr, err)
		}
		if res.Matched != 0 || len(res.Table.Rows) != 0 {
			t.Errorf("query %q matched %d, want empty result", expr, res.Matched)
		}
	}
}

func TestQueryParseErrors(t *testing.T) {
	s := fixture(t)
	for _, expr := range []string{
		"dur>banana",
		"outcome=sideways",
		"trace=notanumber",
		"justaword",
		"| p99 host",
		"| p50 by",
		"| count by",
		"| frobnicate",
		"| slowest zero",
		"| slowest 0",
		"| traces 1 2",
	} {
		if _, err := s.Query(expr); err == nil {
			t.Errorf("query %q: want parse error, got none", expr)
		}
	}
}

func TestQueryTraceFilter(t *testing.T) {
	s := fixture(t)
	res, err := s.Query("trace=30 | slowest 10")
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	if res.Matched != 2 {
		t.Fatalf("matched = %d, want trace 30's two spans", res.Matched)
	}
}

func TestQueryGroupedUnknownKey(t *testing.T) {
	s := fixture(t)
	res, err := s.Query("| p99 by nosuchkey")
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	if len(res.Table.Rows) != 0 {
		t.Fatalf("rows = %d, want empty for unknown group key", len(res.Table.Rows))
	}
}

// fullRing populates a store to its full capacity with fleet-shaped
// traces for query benchmarks: 8-span host traces, ~3% error class.
func fullRing(capacity int) *Store {
	s := New(Config{Capacity: capacity})
	hosts := []string{"web-0", "web-1", "web-2", "db-0", "db-1", "lb-0"}
	id := uint64(1)
	for s.Resident() < capacity {
		root := id
		id += 8
		host := hosts[root/8%uint64(len(hosts))]
		for c := uint64(1); c < 8; c++ {
			status := "PASS"
			if (root+c)%257 == 0 {
				status = "FAIL"
			}
			s.Offer(span(root+c, root, root, "check", int64(100+(root+c)%900),
				"finding", "CIS-1.1", "status", status))
		}
		s.Offer(span(root, 0, root, "host", 2000+int64(root%3000), "host", host))
	}
	return s
}

func BenchmarkQueryNameFilter(b *testing.B) {
	s := fullRing(1 << 18)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Query("name=host | slowest 5"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQueryOutcomeFilter(b *testing.B) {
	s := fullRing(1 << 18)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Query("outcome=fail | slowest 5"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQueryP99ByHost(b *testing.B) {
	s := fullRing(1 << 18)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Query("name=host | p99 by host"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQueryTraces(b *testing.B) {
	s := fullRing(1 << 18)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Query("name=check | traces 5"); err != nil {
			b.Fatal(err)
		}
	}
}
