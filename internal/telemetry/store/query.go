package store

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"

	"veridevops/internal/report"
	"veridevops/internal/telemetry"
)

// Query grammar — a deliberately small TraceQL-ish expression language
// over the resident ring:
//
//	EXPR    := FILTER* [ '|' OP ]
//	FILTER  := name=NAME | outcome=OUTCOME | trace=ID
//	         | dur>DUR | dur>=DUR | KEY=VALUE
//	OP      := slowest [K]            top-K matched spans by duration
//	         | p50|p95|p99 by KEY     per-group percentiles over matches
//	         | count by KEY           per-group counts over matches
//	         | traces [K]             top-K slowest traces, full trees
//
// Filters AND together. NAME/KEY/VALUE are whitespace-delimited tokens
// (span names and tag values in this codebase contain no spaces); DUR
// is a Go duration ("750us", "3ms"); OUTCOME is one of the store's
// outcome words (ok, transient, fail, incomplete, error, timeout,
// panic). A bare KEY=VALUE filter matches spans carrying that tag pair.
// KEY in a `by` clause may also be the builtin `name`. The default OP
// is `slowest 5`.
//
// Examples:
//
//	name=check outcome=timeout | slowest 5
//	name=attempt | p99 by host
//	outcome=fail | count by finding
//	name=host dur>2ms | traces 3

// Result is a query's answer: a rendered table for span/aggregate ops,
// reassembled trees for `traces`, and scan accounting.
type Result struct {
	Table   *report.Table
	Traces  []TraceTree
	Scanned int // resident spans examined
	Matched int // spans that passed the filters
}

// TraceTree is one reconstructed trace from a `traces` op, slowest
// first: the trace's spans reassembled into their forest (roots whose
// parents fell outside the trace or were evicted are promoted, so
// partial traces stay inspectable).
type TraceTree struct {
	Trace uint64
	DurUS int64
	Roots []*telemetry.Node
}

// WriteText renders the result the way the CLIs print it: the table
// and/or the trace trees.
func (r *Result) WriteText(w io.Writer) error {
	if r.Table != nil {
		if err := r.Table.WriteText(w); err != nil {
			return err
		}
	}
	for _, tt := range r.Traces {
		if err := WriteTraceTree(w, tt); err != nil {
			return err
		}
	}
	return nil
}

// WriteTraceTree prints one reconstructed trace as an indented tree.
func WriteTraceTree(w io.Writer, tt TraceTree) error {
	if _, err := fmt.Fprintf(w, "trace %d (%.2fms)\n", tt.Trace, float64(tt.DurUS)/1e3); err != nil {
		return err
	}
	var walk func(n *telemetry.Node, depth int) error
	walk = func(n *telemetry.Node, depth int) error {
		tags := ""
		if len(n.Tags) > 0 {
			keys := make([]string, 0, len(n.Tags))
			for k := range n.Tags {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			parts := make([]string, len(keys))
			for i, k := range keys {
				parts[i] = k + "=" + n.Tags[k]
			}
			tags = "  [" + strings.Join(parts, " ") + "]"
		}
		if _, err := fmt.Fprintf(w, "%s%s %.2fms%s\n",
			strings.Repeat("  ", depth+1), n.Name, float64(n.DurUS)/1e3, tags); err != nil {
			return err
		}
		for _, c := range n.Children {
			if err := walk(c, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	for _, root := range tt.Roots {
		if err := walk(root, 0); err != nil {
			return err
		}
	}
	return nil
}

// filter is the compiled AND-conjunction: symbols pre-resolved so the
// scan loop is pure integer compares.
type filter struct {
	nameSym    uint32
	hasName    bool
	nameMiss   bool // name never interned: nothing can match
	outcome    Outcome
	hasOutcome bool
	trace      uint64
	hasTrace   bool
	minDurUS   int64
	tagPairs   [][2]uint32 // key-sym, val-sym equality conjuncts
	tagMiss    bool
}

func (f *filter) match(b *block, i int) bool {
	if f.hasName && b.names[i] != f.nameSym {
		return false
	}
	if f.hasOutcome && b.outs[i] != f.outcome {
		return false
	}
	if f.hasTrace && b.traces[i] != f.trace {
		return false
	}
	if b.durs[i] < f.minDurUS {
		return false
	}
	return f.matchTags(b, i)
}

func (f *filter) matchTags(b *block, i int) bool {
	for _, kv := range f.tagPairs {
		off, n := b.tagOff[i], b.tagLen[i]
		found := false
		for j := uint32(0); j+1 < n; j += 2 {
			if b.arena[off+j] == kv[0] && b.arena[off+j+1] == kv[1] {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// forEach drives fn over every matching row. The reject tests are
// inlined over local column slices so the per-row cost is a couple of
// predictable compares — the difference between an ~0.8ms and a ~0.3ms
// full-ring scan; fn is only paid per candidate match. Must run inside
// a scan() hold.
func (f *filter) forEach(blocks []*block, scanned *int, fn func(b *block, i int)) {
	hasName, nameSym := f.hasName, f.nameSym
	hasOutcome, oc := f.hasOutcome, f.outcome
	hasTrace, tr := f.hasTrace, f.trace
	minDur := f.minDurUS
	hasTags := len(f.tagPairs) > 0
	for _, b := range blocks {
		n := len(b.ids)
		*scanned += n
		names, outs, durs, traces := b.names, b.outs, b.durs, b.traces
		_ = names[:n]
		for i := 0; i < n; i++ {
			if hasName && names[i] != nameSym {
				continue
			}
			if hasOutcome && outs[i] != oc {
				continue
			}
			if durs[i] < minDur {
				continue
			}
			if hasTrace && traces[i] != tr {
				continue
			}
			if hasTags && !f.matchTags(b, i) {
				continue
			}
			fn(b, i)
		}
	}
}

type opKind int

const (
	opSlowest opKind = iota
	opPercentile
	opCount
	opTraces
)

type op struct {
	kind opKind
	k    int     // slowest/traces top-K
	p    float64 // percentile rank for opPercentile
	pLbl string  // "p50" | "p95" | "p99"
	by   string  // group key for opPercentile/opCount
}

// Query parses and runs one expression against the resident ring. A
// query that references a name/tag the store has never seen returns an
// empty result, not an error (the store simply holds no such span).
func (s *Store) Query(expr string) (*Result, error) {
	f, o, err := s.parse(expr)
	if err != nil {
		return nil, err
	}
	if f.nameMiss || f.tagMiss {
		res := &Result{Scanned: s.Resident()}
		res.Table = report.New(fmt.Sprintf("trace-query: %s (no matches)", strings.TrimSpace(expr)), "span", "dur_ms")
		return res, nil
	}
	switch o.kind {
	case opSlowest:
		return s.querySlowest(expr, f, o)
	case opPercentile, opCount:
		return s.queryGrouped(expr, f, o)
	case opTraces:
		return s.queryTraces(expr, f, o)
	}
	return nil, fmt.Errorf("store: unreachable op %d", o.kind)
}

func (s *Store) parse(expr string) (*filter, op, error) {
	o := op{kind: opSlowest, k: 5}
	filterPart, opPart := expr, ""
	if i := strings.IndexByte(expr, '|'); i >= 0 {
		filterPart, opPart = expr[:i], expr[i+1:]
	}
	f := &filter{}
	for _, tok := range strings.Fields(filterPart) {
		switch {
		case strings.HasPrefix(tok, "dur>="):
			d, err := time.ParseDuration(tok[len("dur>="):])
			if err != nil {
				return nil, o, fmt.Errorf("store: bad duration in %q: %w", tok, err)
			}
			f.minDurUS = sinceUS(d)
		case strings.HasPrefix(tok, "dur>"):
			d, err := time.ParseDuration(tok[len("dur>"):])
			if err != nil {
				return nil, o, fmt.Errorf("store: bad duration in %q: %w", tok, err)
			}
			f.minDurUS = sinceUS(d) + 1
		case strings.HasPrefix(tok, "name="):
			f.hasName = true
			sym, ok := s.lookupSym(tok[len("name="):])
			f.nameSym, f.nameMiss = sym, !ok
		case strings.HasPrefix(tok, "outcome="):
			word := tok[len("outcome="):]
			oc := ParseOutcome(word)
			if oc == OutcomeNone && word != "none" {
				return nil, o, fmt.Errorf("store: unknown outcome %q", word)
			}
			f.hasOutcome = true
			f.outcome = oc
		case strings.HasPrefix(tok, "trace="):
			id, err := strconv.ParseUint(tok[len("trace="):], 10, 64)
			if err != nil {
				return nil, o, fmt.Errorf("store: bad trace id in %q: %w", tok, err)
			}
			f.hasTrace = true
			f.trace = id
		default:
			k, v, ok := strings.Cut(tok, "=")
			if !ok || k == "" {
				return nil, o, fmt.Errorf("store: cannot parse filter %q (want name=, outcome=, trace=, dur>, or KEY=VALUE)", tok)
			}
			ks, ok1 := s.lookupSym(k)
			vs, ok2 := s.lookupSym(v)
			if !ok1 || !ok2 {
				f.tagMiss = true
				continue
			}
			f.tagPairs = append(f.tagPairs, [2]uint32{ks, vs})
		}
	}
	if strings.TrimSpace(opPart) == "" {
		return f, o, nil
	}
	toks := strings.Fields(opPart)
	switch toks[0] {
	case "slowest", "traces":
		if toks[0] == "traces" {
			o.kind = opTraces
		}
		if len(toks) > 2 {
			return nil, o, fmt.Errorf("store: %s takes at most one argument", toks[0])
		}
		if len(toks) == 2 {
			k, err := strconv.Atoi(toks[1])
			if err != nil || k < 1 {
				return nil, o, fmt.Errorf("store: bad top-K %q", toks[1])
			}
			o.k = k
		}
	case "p50", "p95", "p99":
		if len(toks) != 3 || toks[1] != "by" {
			return nil, o, fmt.Errorf("store: want %q", toks[0]+" by KEY")
		}
		o.kind = opPercentile
		o.pLbl = toks[0]
		switch toks[0] {
		case "p50":
			o.p = 0.50
		case "p95":
			o.p = 0.95
		case "p99":
			o.p = 0.99
		}
		o.by = toks[2]
	case "count":
		if len(toks) != 3 || toks[1] != "by" {
			return nil, o, fmt.Errorf(`store: want "count by KEY"`)
		}
		o.kind = opCount
		o.by = toks[2]
	default:
		return nil, o, fmt.Errorf("store: unknown op %q (want slowest, p50/p95/p99 by, count by, traces)", toks[0])
	}
	return f, o, nil
}

// hit is one matched span during a slowest scan.
type hit struct {
	blk *block
	row int
}

func (s *Store) querySlowest(expr string, f *filter, o op) (*Result, error) {
	res := &Result{}
	// Bounded selection: keep the current top-K in a small slice; at
	// ring scale (256k spans, K=5) the insertion cost is negligible next
	// to the scan itself.
	top := make([]hit, 0, o.k)
	worst := int64(-1) // smallest duration currently in top
	better := func(a, b hit) bool {
		da, db := a.blk.durs[a.row], b.blk.durs[b.row]
		if da != db {
			return da > db
		}
		return a.blk.ids[a.row] < b.blk.ids[b.row] // deterministic ties
	}
	t := report.New(fmt.Sprintf("trace-query: %s", strings.TrimSpace(expr)),
		"span", "dur_ms", "outcome", "trace", "id", "tags")
	s.scan(func(blocks []*block) {
		// The reject tests and the top-K cutoff are inlined here rather
		// than routed through forEach's per-match callback: with a broad
		// filter most matched rows fall under the cutoff, and the
		// indirect call per match would cost more than the compare that
		// rejects them.
		hasName, nameSym := f.hasName, f.nameSym
		hasOutcome, oc := f.hasOutcome, f.outcome
		hasTrace, tr := f.hasTrace, f.trace
		minDur := f.minDurUS
		hasTags := len(f.tagPairs) > 0
		for _, b := range blocks {
			n := len(b.ids)
			res.Scanned += n
			names, outs, durs, traces := b.names, b.outs, b.durs, b.traces
			_ = names[:n]
			for i := 0; i < n; i++ {
				if hasName && names[i] != nameSym {
					continue
				}
				if hasOutcome && outs[i] != oc {
					continue
				}
				if durs[i] < minDur {
					continue
				}
				if hasTrace && traces[i] != tr {
					continue
				}
				if hasTags && !f.matchTags(b, i) {
					continue
				}
				res.Matched++
				if len(top) == o.k && durs[i] < worst {
					continue
				}
				h := hit{b, i}
				pos := len(top)
				for pos > 0 && better(h, top[pos-1]) {
					pos--
				}
				if len(top) < o.k {
					top = append(top, hit{})
				} else if pos == len(top) {
					continue // ties below the cut keep the earlier id
				}
				copy(top[pos+1:], top[pos:])
				top[pos] = h
				worst = top[len(top)-1].blk.durs[top[len(top)-1].row]
			}
		}
		// Materialise rows under the same lock hold: the hits point into
		// blocks a writer could otherwise recycle.
		for _, h := range top {
			rec := s.record(h.blk, h.row)
			t.AddRow(rec.Name, report.Millis(time.Duration(rec.DurUS)*time.Microsecond),
				h.blk.outs[h.row].String(), rec.Trace, rec.ID, compactTags(rec.Tags))
		}
	})
	t.Note = fmt.Sprintf("%d of %d resident spans matched", res.Matched, res.Scanned)
	res.Table = t
	return res, nil
}

func compactTags(tags map[string]string) string {
	if len(tags) == 0 {
		return "-"
	}
	keys := make([]string, 0, len(tags))
	for k := range tags {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = k + "=" + tags[k]
	}
	return strings.Join(parts, " ")
}

func (s *Store) queryGrouped(expr string, f *filter, o op) (*Result, error) {
	res := &Result{}
	byName := o.by == "name"
	var bySym uint32
	if !byName {
		sym, ok := s.lookupSym(o.by)
		if !ok {
			res.Table = report.New(fmt.Sprintf("trace-query: %s (no such tag key %q)", strings.TrimSpace(expr), o.by), o.by, "count")
			res.Scanned = s.Resident()
			return res, nil
		}
		bySym = sym
	}
	groups := map[uint32][]int64{} // group value sym -> matched durs (us)
	s.scan(func(blocks []*block) {
		f.forEach(blocks, &res.Scanned, func(b *block, i int) {
			res.Matched++
			var g uint32
			if byName {
				g = b.names[i]
			} else {
				off, tn := b.tagOff[i], b.tagLen[i]
				found := false
				for j := uint32(0); j+1 < tn; j += 2 {
					if b.arena[off+j] == bySym {
						g = b.arena[off+j+1]
						found = true
						break
					}
				}
				if !found {
					return // span has no such tag: outside the grouping
				}
			}
			groups[g] = append(groups[g], b.durs[i])
		})
	})
	type row struct {
		key    string
		count  int
		stats  telemetry.QuantileStats
		rankUS time.Duration
	}
	rows := make([]row, 0, len(groups))
	for g, durs := range groups {
		q := telemetry.NewQuantiles()
		for _, us := range durs {
			q.Observe(time.Duration(us) * time.Microsecond)
		}
		st := q.Snapshot()
		r := row{key: s.str(g), count: len(durs), stats: st}
		switch o.pLbl {
		case "p50":
			r.rankUS = st.P50
		case "p95":
			r.rankUS = st.P95
		default:
			r.rankUS = st.P99
		}
		rows = append(rows, r)
	}
	if o.kind == opCount {
		sort.Slice(rows, func(i, j int) bool {
			if rows[i].count != rows[j].count {
				return rows[i].count > rows[j].count
			}
			return rows[i].key < rows[j].key
		})
		t := report.New(fmt.Sprintf("trace-query: %s", strings.TrimSpace(expr)),
			o.by, "count", "total_ms", "mean_ms")
		for _, r := range rows {
			t.AddRow(r.key, r.count, report.Millis(r.stats.Total), report.Millis(r.stats.Mean))
		}
		t.Note = fmt.Sprintf("%d of %d resident spans matched", res.Matched, res.Scanned)
		res.Table = t
		return res, nil
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].rankUS != rows[j].rankUS {
			return rows[i].rankUS > rows[j].rankUS
		}
		return rows[i].key < rows[j].key
	})
	t := report.New(fmt.Sprintf("trace-query: %s", strings.TrimSpace(expr)),
		o.by, "count", "p50_ms", "p95_ms", "p99_ms", "max_ms")
	for _, r := range rows {
		t.AddRow(r.key, r.count, report.Millis(r.stats.P50), report.Millis(r.stats.P95),
			report.Millis(r.stats.P99), report.Millis(r.stats.Max))
	}
	t.Note = fmt.Sprintf("%d of %d resident spans matched; sorted by %s", res.Matched, res.Scanned, o.pLbl)
	res.Table = t
	return res, nil
}

func (s *Store) queryTraces(expr string, f *filter, o op) (*Result, error) {
	res := &Result{}
	// Pass 1: traces containing at least one matched span, ranked by the
	// trace root's duration (fallback: the trace's longest resident span
	// when the root was evicted or never ended).
	rootDur := map[uint64]int64{} // trace -> root span dur
	maxDur := map[uint64]int64{}  // trace -> longest matched-trace span dur
	matched := map[uint64]bool{}
	s.scan(func(blocks []*block) {
		// Root durations: one tight pass over the id/trace columns.
		for _, b := range blocks {
			ids, traces, durs := b.ids, b.traces, b.durs
			for i := 0; i < len(ids); i++ {
				if ids[i] == traces[i] {
					rootDur[traces[i]] = durs[i]
				}
			}
		}
		f.forEach(blocks, &res.Scanned, func(b *block, i int) {
			res.Matched++
			tr := b.traces[i]
			matched[tr] = true
			if b.durs[i] > maxDur[tr] {
				maxDur[tr] = b.durs[i]
			}
		})
	})
	type cand struct {
		trace uint64
		durUS int64
	}
	cands := make([]cand, 0, len(matched))
	for tr := range matched {
		d, ok := rootDur[tr]
		if !ok {
			d = maxDur[tr]
		}
		cands = append(cands, cand{tr, d})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].durUS != cands[j].durUS {
			return cands[i].durUS > cands[j].durUS
		}
		return cands[i].trace < cands[j].trace // deterministic ties
	})
	if len(cands) > o.k {
		cands = cands[:o.k]
	}
	want := make(map[uint64]int, len(cands))
	for rank, c := range cands {
		want[c.trace] = rank
	}
	// Pass 2: collect every resident span of the winning traces and
	// reassemble each trace's tree.
	recsByTrace := make(map[uint64][]telemetry.Record, len(cands))
	s.scan(func(blocks []*block) {
		for _, b := range blocks {
			for i := 0; i < len(b.ids); i++ {
				if _, ok := want[b.traces[i]]; ok {
					recsByTrace[b.traces[i]] = append(recsByTrace[b.traces[i]], s.record(b, i))
				}
			}
		}
	})
	res.Traces = make([]TraceTree, len(cands))
	for _, c := range cands {
		res.Traces[want[c.trace]] = TraceTree{
			Trace: c.trace,
			DurUS: c.durUS,
			Roots: telemetry.BuildTree(recsByTrace[c.trace]),
		}
	}
	t := report.New(fmt.Sprintf("trace-query: %s", strings.TrimSpace(expr)),
		"rank", "trace", "dur_ms", "spans")
	for rank, c := range cands {
		t.AddRow(rank+1, c.trace, report.Millis(time.Duration(c.durUS)*time.Microsecond), len(recsByTrace[c.trace]))
	}
	t.Note = fmt.Sprintf("%d of %d resident spans matched across %d trace(s)", res.Matched, res.Scanned, len(matched))
	res.Table = t
	return res, nil
}
