package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Record is the JSONL wire form of one ended span: the schema -trace
// files are written in. IDs are per-tracer counters starting at 1;
// Parent 0 marks a root span. Times are microseconds (start is a Unix
// timestamp, or k*step under a virtual clock).
type Record struct {
	ID     uint64 `json:"id"`
	Parent uint64 `json:"parent,omitempty"`
	// Trace is the span ID of the record's trace root (the record is
	// itself the root when Trace == ID). Span.ChildTrace starts a fresh
	// trace mid-tree, so Trace partitions a sweep's tree into per-host
	// units for the store's sampling and slowest-trace search.
	Trace   uint64            `json:"trace,omitempty"`
	Name    string            `json:"name"`
	StartUS int64             `json:"start_us"`
	DurUS   int64             `json:"dur_us"`
	Tags    map[string]string `json:"tags,omitempty"`
}

// ReadJSONL decodes a span stream written by a Tracer (one JSON object
// per line; blank lines are skipped).
func ReadJSONL(r io.Reader) ([]Record, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	var recs []Record
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(b, &rec); err != nil {
			return nil, fmt.Errorf("telemetry: line %d: %w", line, err)
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("telemetry: read: %w", err)
	}
	return recs, nil
}

// Node is one span of a reassembled trace tree.
type Node struct {
	Record
	Children []*Node
}

// Find returns the first descendant (depth-first, the node itself
// included) with the given name, or nil.
func (n *Node) Find(name string) *Node {
	if n == nil {
		return nil
	}
	if n.Name == name {
		return n
	}
	for _, c := range n.Children {
		if hit := c.Find(name); hit != nil {
			return hit
		}
	}
	return nil
}

// Walk visits the node and every descendant depth-first.
func (n *Node) Walk(visit func(*Node)) {
	if n == nil {
		return
	}
	visit(n)
	for _, c := range n.Children {
		c.Walk(visit)
	}
}

// BuildTree reassembles records into their span forest. Spans are
// emitted when they end, so a parent appears after its children in the
// stream; BuildTree links by ID regardless of order and returns the
// roots sorted by ID (children likewise). A record whose parent never
// ended (a span leaked without End) is treated as a root rather than
// dropped, so partial traces stay inspectable.
func BuildTree(recs []Record) []*Node {
	nodes := make(map[uint64]*Node, len(recs))
	for _, rec := range recs {
		nodes[rec.ID] = &Node{Record: rec}
	}
	var roots []*Node
	for _, rec := range recs {
		n := nodes[rec.ID]
		if p, ok := nodes[rec.Parent]; ok && rec.Parent != rec.ID {
			p.Children = append(p.Children, n)
		} else {
			roots = append(roots, n)
		}
	}
	sortNodes(roots)
	for _, n := range nodes {
		sortNodes(n.Children)
	}
	return roots
}

func sortNodes(ns []*Node) {
	sort.Slice(ns, func(i, j int) bool { return ns[i].ID < ns[j].ID })
}
