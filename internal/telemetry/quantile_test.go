package telemetry

import (
	"testing"
	"time"
)

func TestQuantilesExactPercentiles(t *testing.T) {
	q := NewQuantiles()
	// 1ms..100ms in shuffled-enough order (descending exercises sorting).
	for i := 100; i >= 1; i-- {
		q.Observe(time.Duration(i) * time.Millisecond)
	}
	if q.Count() != 100 {
		t.Fatalf("Count = %d, want 100", q.Count())
	}
	if q.Min() != time.Millisecond || q.Max() != 100*time.Millisecond {
		t.Errorf("min/max = %v/%v", q.Min(), q.Max())
	}
	for _, tc := range []struct {
		p    float64
		want time.Duration
	}{
		{0, time.Millisecond},
		{0.50, 50 * time.Millisecond},
		{0.95, 95 * time.Millisecond},
		{0.99, 99 * time.Millisecond},
		{1, 100 * time.Millisecond},
	} {
		if got := q.Quantile(tc.p); got != tc.want {
			t.Errorf("Quantile(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
	st := q.Snapshot()
	if st.P50 != 50*time.Millisecond || st.P95 != 95*time.Millisecond || st.P99 != 99*time.Millisecond {
		t.Errorf("snapshot percentiles = %+v", st)
	}
	if st.Mean != 50500*time.Microsecond {
		t.Errorf("Mean = %v, want 50.5ms", st.Mean)
	}
	if st.Total != 5050*time.Millisecond {
		t.Errorf("Total = %v, want 5.05s", st.Total)
	}
}

func TestQuantilesEmptyAndNil(t *testing.T) {
	var nilQ *Quantiles
	nilQ.Observe(time.Second) // must not panic
	if nilQ.Count() != 0 || nilQ.Quantile(0.5) != 0 || nilQ.Snapshot() != (QuantileStats{}) {
		t.Error("nil recorder must read as zero")
	}
	q := NewQuantiles()
	if q.Quantile(0.99) != 0 || q.Snapshot().Count != 0 {
		t.Error("empty recorder must read as zero")
	}
	q.Observe(-time.Second)
	if q.Min() != 0 || q.Max() != 0 || q.Count() != 1 {
		t.Errorf("negative sample must clamp to 0: min=%v max=%v count=%d", q.Min(), q.Max(), q.Count())
	}
}

// TestQuantilesCapDecimatesDeterministically drives two capped recorders
// through the same stream and checks they agree sample-for-sample, that
// retention stays bounded, and that the exact summary survives
// decimation.
func TestQuantilesCapDecimatesDeterministically(t *testing.T) {
	const n = 10000
	a, b := NewQuantilesCap(256), NewQuantilesCap(256)
	for i := 0; i < n; i++ {
		d := time.Duration(i%997) * time.Microsecond
		a.Observe(d)
		b.Observe(d)
	}
	if a.Count() != n {
		t.Fatalf("Count = %d, want %d (offered count must survive decimation)", a.Count(), n)
	}
	if len(a.samples) > 256 {
		t.Fatalf("retained %d samples, cap 256", len(a.samples))
	}
	sa, sb := a.Snapshot(), b.Snapshot()
	if sa != sb {
		t.Errorf("same stream, different snapshots:\n%+v\n%+v", sa, sb)
	}
	// Exact summary: min 0, max 996us over the i%997 ramp.
	if sa.Min != 0 || sa.Max != 996*time.Microsecond {
		t.Errorf("min/max = %v/%v", sa.Min, sa.Max)
	}
	// Decimated percentiles still land near truth (p50 of a uniform ramp
	// over [0, 996us] is ~498us; allow a loose window).
	if sa.P50 < 400*time.Microsecond || sa.P50 > 600*time.Microsecond {
		t.Errorf("decimated P50 = %v, want ~498us", sa.P50)
	}
}

func TestMetricsSamplePercentiles(t *testing.T) {
	m := NewMetrics()
	for i := 1; i <= 100; i++ {
		m.Sample("detect", time.Duration(i)*time.Millisecond)
	}
	st := m.Percentiles("detect")
	if st.Count != 100 || st.P50 != 50*time.Millisecond || st.P99 != 99*time.Millisecond {
		t.Errorf("Percentiles = %+v", st)
	}
	if m.Percentiles("absent") != (QuantileStats{}) {
		t.Error("absent recorder must read as zero")
	}
	var nilM *Metrics
	nilM.Sample("detect", time.Second) // must not panic
	if nilM.Percentiles("detect") != (QuantileStats{}) {
		t.Error("nil registry must read as zero")
	}
}
