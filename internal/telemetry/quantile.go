package telemetry

import (
	"sort"
	"sync"
	"time"
)

// Quantiles is a duration percentile recorder: where the fixed six-bucket
// histogram answers "roughly which decade", Quantiles answers "what is
// p99" — the question the load harness's change→verdict detection
// latencies need answered exactly. Samples are retained individually
// until an optional cap is reached, after which the recorder degrades to
// deterministic stride decimation: it keeps every 2nd retained sample and
// from then on records every 2nd (then 4th, 8th, ...) arrival, so memory
// stays bounded while the quantile estimate remains seeded-replay
// deterministic (no randomized reservoir). Count, Min, Max and Mean stay
// exact over every offered sample regardless of decimation.
//
// A nil *Quantiles is the disabled recorder: every method is a no-op or
// zero, matching the package's nil-receiver telemetry convention.
// Quantiles are safe for concurrent use.
type Quantiles struct {
	mu      sync.Mutex
	cap     int // retained-sample bound; 0 = unbounded (exact)
	stride  int64
	seen    int64 // offered samples, exact
	sum     time.Duration
	min     time.Duration
	max     time.Duration
	samples []time.Duration
	sorted  bool
}

// QuantileStats is the exported snapshot of one Quantiles recorder: the
// summary plus the three operational percentiles every BENCH table
// reports. Min/Max/Mean/Count are exact; P50/P95/P99 are exact until the
// retention cap forces decimation.
type QuantileStats struct {
	Count          int64
	Total          time.Duration
	Min, Max, Mean time.Duration
	P50, P95, P99  time.Duration
}

// NewQuantiles returns an unbounded (exact) recorder.
func NewQuantiles() *Quantiles { return &Quantiles{} }

// NewQuantilesCap returns a recorder that retains at most max samples,
// decimating deterministically beyond that. max < 2 is treated as 2.
func NewQuantilesCap(max int) *Quantiles {
	if max < 2 {
		max = 2
	}
	return &Quantiles{cap: max}
}

// Observe folds one duration into the recorder. Negative durations clamp
// to zero, matching Metrics.Observe.
func (q *Quantiles) Observe(d time.Duration) {
	if q == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	q.mu.Lock()
	if q.seen == 0 {
		q.min, q.max = d, d
		q.stride = 1
	}
	if d < q.min {
		q.min = d
	}
	if d > q.max {
		q.max = d
	}
	q.sum += d
	// Decimated recorders keep every stride-th arrival; the summary above
	// still saw every sample.
	if q.seen%q.stride == 0 {
		q.samples = append(q.samples, d)
		q.sorted = false
		if q.cap > 0 && len(q.samples) >= q.cap {
			// Halve retention: keep every 2nd retained sample (arrival
			// order) and double the stride for future arrivals.
			kept := q.samples[:0]
			for i := 0; i < len(q.samples); i += 2 {
				kept = append(kept, q.samples[i])
			}
			q.samples = kept
			q.stride *= 2
		}
	}
	q.seen++
	q.mu.Unlock()
}

// Count returns how many samples were offered (not how many are
// retained).
func (q *Quantiles) Count() int64 {
	if q == nil {
		return 0
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.seen
}

// Min returns the smallest observed duration; 0 when empty.
func (q *Quantiles) Min() time.Duration {
	if q == nil {
		return 0
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.min
}

// Max returns the largest observed duration; 0 when empty.
func (q *Quantiles) Max() time.Duration {
	if q == nil {
		return 0
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.max
}

// Mean returns the exact mean over every offered sample; 0 when empty.
func (q *Quantiles) Mean() time.Duration {
	if q == nil {
		return 0
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.seen == 0 {
		return 0
	}
	return q.sum / time.Duration(q.seen)
}

// Quantile returns the p-quantile (nearest-rank over retained samples)
// for p in [0,1]; 0 when empty. p outside [0,1] clamps.
func (q *Quantiles) Quantile(p float64) time.Duration {
	if q == nil {
		return 0
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.quantileLocked(p)
}

func (q *Quantiles) quantileLocked(p float64) time.Duration {
	n := len(q.samples)
	if n == 0 {
		return 0
	}
	if !q.sorted {
		sort.Slice(q.samples, func(i, j int) bool { return q.samples[i] < q.samples[j] })
		q.sorted = true
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	// Nearest-rank: the smallest retained sample with rank >= p*n.
	idx := int(p*float64(n)+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	return q.samples[idx]
}

// Snapshot returns the summary plus p50/p95/p99 in one consistent read.
func (q *Quantiles) Snapshot() QuantileStats {
	if q == nil {
		return QuantileStats{}
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	st := QuantileStats{Count: q.seen, Total: q.sum, Min: q.min, Max: q.max}
	if q.seen > 0 {
		st.Mean = q.sum / time.Duration(q.seen)
	}
	st.P50 = q.quantileLocked(0.50)
	st.P95 = q.quantileLocked(0.95)
	st.P99 = q.quantileLocked(0.99)
	return st
}
