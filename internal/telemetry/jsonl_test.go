package telemetry

import (
	"strings"
	"testing"
)

// ReadJSONL consumes files written by other processes — possibly
// killed mid-write, possibly corrupted. These tests pin down its
// behaviour on hostile input: fail loudly with the offending line
// number, never hang or panic, and accept benign irregularities
// (blank lines, a missing final newline).

func TestReadJSONLMissingFinalNewlineIsFine(t *testing.T) {
	in := `{"id":1,"name":"a","start_us":0,"dur_us":5}` + "\n" +
		`{"id":2,"parent":1,"name":"b","start_us":1,"dur_us":3}` // no trailing \n
	recs, err := ReadJSONL(strings.NewReader(in))
	if err != nil {
		t.Fatalf("ReadJSONL: %v", err)
	}
	if len(recs) != 2 || recs[1].ID != 2 || recs[1].Parent != 1 {
		t.Fatalf("recs = %+v, want both records", recs)
	}
}

func TestReadJSONLTruncatedLastLine(t *testing.T) {
	// A writer killed mid-record leaves a syntactically broken tail.
	in := `{"id":1,"name":"a","start_us":0,"dur_us":5}` + "\n" +
		`{"id":2,"name":"b","sta`
	_, err := ReadJSONL(strings.NewReader(in))
	if err == nil {
		t.Fatal("truncated record accepted")
	}
	if !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("error %q does not name line 2", err)
	}
}

func TestReadJSONLInterleavedGarbage(t *testing.T) {
	in := `{"id":1,"name":"a","start_us":0,"dur_us":5}` + "\n" +
		"\n" + // blank lines are skipped...
		"!!! not json at all\n" + // ...garbage is not
		`{"id":2,"name":"b","start_us":1,"dur_us":3}` + "\n"
	_, err := ReadJSONL(strings.NewReader(in))
	if err == nil {
		t.Fatal("garbage line accepted")
	}
	if !strings.Contains(err.Error(), "line 3") {
		t.Fatalf("error %q does not name line 3", err)
	}
}

func TestReadJSONLOversizedRecord(t *testing.T) {
	// One record bigger than the scanner's 1MB line cap must produce an
	// error, not a hang or a silent truncation.
	var sb strings.Builder
	sb.WriteString(`{"id":1,"name":"a","start_us":0,"dur_us":5}` + "\n")
	sb.WriteString(`{"id":2,"name":"`)
	sb.WriteString(strings.Repeat("x", 2*1024*1024))
	sb.WriteString(`","start_us":1,"dur_us":3}` + "\n")
	_, err := ReadJSONL(strings.NewReader(sb.String()))
	if err == nil {
		t.Fatal("2MB record accepted")
	}
	if !strings.Contains(err.Error(), "token too long") {
		t.Fatalf("error %q, want the scanner's too-long failure", err)
	}
}

func TestReadJSONLUnknownFieldsIgnored(t *testing.T) {
	// Forward compatibility: a newer writer may add fields.
	in := `{"id":7,"name":"a","start_us":0,"dur_us":5,"future_field":{"nested":true}}` + "\n"
	recs, err := ReadJSONL(strings.NewReader(in))
	if err != nil {
		t.Fatalf("ReadJSONL: %v", err)
	}
	if len(recs) != 1 || recs[0].ID != 7 {
		t.Fatalf("recs = %+v", recs)
	}
}
