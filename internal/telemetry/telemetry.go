// Package telemetry is the cross-cutting observability layer of the
// VeriDevOps reproduction: a hierarchical span tracer and a lightweight
// metrics registry threaded through the hot paths built in PRs 1–3 — the
// fault-tolerant engine (per-attempt spans), the fleet coordinator
// (sweep → shard → host → check → attempt) and the reactive-protection
// scheduler (poll → check/alarm → enforce). Where FleetStats and RunStats
// answer "how did the sweep do in aggregate", the span tree answers
// "where did this sweep spend its time" and "which attempt of which check
// on which host timed out" — the auditable how behind each verdict, not
// just the verdict.
//
// Spans export as JSONL (one object per line, written when the span ends)
// through any io.Writer, so a trace file is greppable and streamable; a
// deterministic virtual clock (NewVirtualClock) makes span timings exact
// in tests. The whole layer is designed to stay compiled into the hot
// loops: every entry point is a method on a possibly-nil *Tracer, *Span
// or *Metrics, and the nil path — telemetry disabled — is a zero-
// allocation early return (BenchmarkTelemetryDisabled proves 0 allocs/op),
// so callers never guard call sites with flags.
package telemetry

import (
	"bufio"
	"encoding/json"
	"io"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"veridevops/internal/report"
)

// Clock supplies span timestamps. The default is time.Now; tests use
// NewVirtualClock for deterministic durations.
type Clock func() time.Time

// NewVirtualClock returns a deterministic Clock that starts at the Unix
// epoch and advances by step on every reading, so the k-th clock reading
// of a run is always epoch + k*step regardless of machine speed. Spans
// read the clock once at start and once at end.
func NewVirtualClock(step time.Duration) Clock {
	var n atomic.Int64
	return func() time.Time {
		k := n.Add(1) - 1
		return time.Unix(0, k*int64(step))
	}
}

// Option configures a Tracer.
type Option func(*Tracer)

// WithClock substitutes the tracer's time source.
func WithClock(c Clock) Option {
	return func(t *Tracer) { t.clock = c }
}

// aggregate is the per-span-name roll-up behind Breakdown.
type aggregate struct {
	count int
	total time.Duration
	max   time.Duration
}

// Tracer records hierarchical spans and exports them as JSONL. A nil
// *Tracer is the disabled tracer: every method is a cheap no-op and
// Root returns a nil *Span whose whole subtree is free. Tracers are safe
// for concurrent use; span emission is serialised on one mutex.
type Tracer struct {
	clock  Clock
	nextID atomic.Uint64

	mu  sync.Mutex
	bw  *bufio.Writer // nil when w is nil (aggregate-only tracer)
	enc *json.Encoder
	agg map[string]*aggregate
	err error
}

// New returns a tracer writing JSONL span records to w as spans end. A
// nil w keeps the tracer enabled for in-memory aggregation (Breakdown)
// without exporting records. Call Flush before reading the output.
func New(w io.Writer, opts ...Option) *Tracer {
	t := &Tracer{clock: time.Now, agg: make(map[string]*aggregate)}
	if w != nil {
		t.bw = bufio.NewWriter(w)
		t.enc = json.NewEncoder(t.bw)
	}
	for _, o := range opts {
		o(t)
	}
	return t
}

// Root opens a top-level span. On a nil tracer it returns a nil span,
// whose children and tags are all no-ops.
func (t *Tracer) Root(name string) *Span {
	if t == nil {
		return nil
	}
	return t.newSpan(name, 0)
}

func (t *Tracer) newSpan(name string, parent uint64) *Span {
	return &Span{
		t:      t,
		id:     t.nextID.Add(1),
		parent: parent,
		name:   name,
		start:  t.clock(),
	}
}

// Flush drains buffered JSONL output and returns the first error the
// tracer hit while encoding or writing. Safe on a nil tracer.
func (t *Tracer) Flush() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.bw != nil {
		if err := t.bw.Flush(); err != nil && t.err == nil {
			t.err = err
		}
	}
	return t.err
}

// Breakdown returns the per-span-name time roll-up — the rows behind the
// "where the time went" summary — sorted by total duration descending
// (name ascending on ties). Nil tracers return nil.
func (t *Tracer) Breakdown() []report.SpanRow {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	rows := make([]report.SpanRow, 0, len(t.agg))
	for name, a := range t.agg {
		rows = append(rows, report.SpanRow{Name: name, Count: a.count, Total: a.total, Max: a.max})
	}
	t.mu.Unlock()
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Total != rows[j].Total {
			return rows[i].Total > rows[j].Total
		}
		return rows[i].Name < rows[j].Name
	})
	return rows
}

// finish stamps the span's end, folds it into the aggregate and emits its
// JSONL record.
func (t *Tracer) finish(s *Span) {
	end := t.clock()
	dur := end.Sub(s.start)
	if dur < 0 {
		dur = 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	a := t.agg[s.name]
	if a == nil {
		a = &aggregate{}
		t.agg[s.name] = a
	}
	a.count++
	a.total += dur
	if dur > a.max {
		a.max = dur
	}
	if t.enc == nil {
		return
	}
	if err := t.enc.Encode(Record{
		ID:      s.id,
		Parent:  s.parent,
		Name:    s.name,
		StartUS: s.start.UnixNano() / 1e3,
		DurUS:   int64(dur) / 1e3,
		Tags:    s.tagMap(),
	}); err != nil && t.err == nil {
		t.err = err
	}
}

// Span is one timed node of the trace tree. Spans are created by
// Tracer.Root and Span.Child, annotated with Tag/TagInt/TagBool, and
// emitted by End. A nil *Span (disabled telemetry, or a child of a nil
// span) accepts the whole API as zero-allocation no-ops. A span is meant
// to be owned by one goroutine; concurrent children each get their own
// span.
type Span struct {
	t      *Tracer
	id     uint64
	parent uint64
	name   string
	start  time.Time
	kv     []string // alternating key, value
}

// Child opens a sub-span. Children of a nil span are nil.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return s.t.newSpan(name, s.id)
}

// Tag annotates the span with a string key/value and returns it for
// chaining. Tags set after End are lost.
func (s *Span) Tag(k, v string) *Span {
	if s == nil {
		return nil
	}
	s.kv = append(s.kv, k, v)
	return s
}

// TagInt annotates the span with an integer value.
func (s *Span) TagInt(k string, v int) *Span {
	if s == nil {
		return nil
	}
	return s.Tag(k, strconv.Itoa(v))
}

// TagBool annotates the span with a boolean value.
func (s *Span) TagBool(k string, v bool) *Span {
	if s == nil {
		return nil
	}
	return s.Tag(k, strconv.FormatBool(v))
}

// End stamps the span's duration and emits its JSONL record. End on a
// nil span is a no-op; ending a span twice emits two records (don't).
func (s *Span) End() {
	if s == nil {
		return
	}
	s.t.finish(s)
}

// tagMap materialises the tag pairs; nil when the span has none.
func (s *Span) tagMap() map[string]string {
	if len(s.kv) == 0 {
		return nil
	}
	m := make(map[string]string, len(s.kv)/2)
	for i := 0; i+1 < len(s.kv); i += 2 {
		m[s.kv[i]] = s.kv[i+1]
	}
	return m
}
