// Package telemetry is the cross-cutting observability layer of the
// VeriDevOps reproduction: a hierarchical span tracer and a lightweight
// metrics registry threaded through the hot paths built in PRs 1–3 — the
// fault-tolerant engine (per-attempt spans), the fleet coordinator
// (sweep → shard → host → check → attempt) and the reactive-protection
// scheduler (poll → check/alarm → enforce). Where FleetStats and RunStats
// answer "how did the sweep do in aggregate", the span tree answers
// "where did this sweep spend its time" and "which attempt of which check
// on which host timed out" — the auditable how behind each verdict, not
// just the verdict.
//
// Spans export as JSONL (one object per line, written when the span ends)
// through any io.Writer, so a trace file is greppable and streamable, and
// can additionally be offered to an in-process Sink — the embeddable
// trace store (internal/telemetry/store) ingests them that way. A
// deterministic virtual clock (NewVirtualClock) makes span timings exact
// in tests. The whole layer is designed to stay compiled into the hot
// loops: every entry point is a method on a possibly-nil *Tracer, *Span
// or *Metrics, and the nil path — telemetry disabled — is a zero-
// allocation early return (BenchmarkTelemetryDisabled proves 0 allocs/op),
// so callers never guard call sites with flags.
//
// The enabled path is engineered to the same standard: spans live in a
// sync.Pool (a span allocates nothing steady-state, its tag storage is
// recycled with it), ended spans fold into per-collector shards — a
// small power-of-two set of independently locked aggregators — instead
// of serialising every goroutine through one tracer mutex, and JSONL
// records are marshalled by an append-based encoder into per-collector
// buffers (no reflection, no encoding/json on the hot path).
// TestEnabledTelemetryAllocBudget pins the steady-state budget at
// 0 allocs/op.
package telemetry

import (
	"bufio"
	"io"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"veridevops/internal/report"
)

// Clock supplies span timestamps. The default is time.Now; tests use
// NewVirtualClock for deterministic durations.
type Clock func() time.Time

// NewVirtualClock returns a deterministic Clock that starts at the Unix
// epoch and advances by step on every reading, so the k-th clock reading
// of a run is always epoch + k*step regardless of machine speed. Spans
// read the clock once at start and once at end.
func NewVirtualClock(step time.Duration) Clock {
	var n atomic.Int64
	return func() time.Time {
		k := n.Add(1) - 1
		return time.Unix(0, k*int64(step))
	}
}

// SpanData is the flattened view of one ended span handed to a Sink:
// everything the JSONL record carries, before any serialisation. Tags
// alternate key, value and — like the SpanData itself — are only valid
// for the duration of the Offer call: the span they belong to returns to
// the span pool immediately after, so a sink must copy (or intern) what
// it keeps.
type SpanData struct {
	ID     uint64
	Parent uint64
	// Trace groups the span with its trace: the span ID of the trace's
	// root. A span whose ID equals its Trace is that root, and its End is
	// the signal the whole trace is complete (children always end before
	// their parent in this codebase's instrumentation).
	Trace uint64
	Name  string
	Start time.Time
	Dur   time.Duration
	Tags  []string
}

// Sink receives every ended span in-process, in parallel with (or in
// place of) the JSONL export. Offer is called concurrently from whatever
// goroutines end spans and must be safe for concurrent use; it runs on
// the span hot path, so it should be cheap and must not retain the
// SpanData's Tags slice past the call.
type Sink interface {
	Offer(SpanData)
}

// Option configures a Tracer.
type Option func(*Tracer)

// WithClock substitutes the tracer's time source.
func WithClock(c Clock) Option {
	return func(t *Tracer) { t.clock = c }
}

// WithSink attaches an in-process span sink (the trace store); every
// ended span is offered to it after the aggregate roll-up.
func WithSink(s Sink) Option {
	return func(t *Tracer) { t.sink = s }
}

// WithCollectors overrides how many independently locked collector
// shards the tracer spreads ended spans over (rounded up to a power of
// two, clamped to [1, 256]). The default is 8; 1 restores the serialised
// single-mutex behaviour — the ablation knob behind the E18 row.
func WithCollectors(n int) Option {
	return func(t *Tracer) {
		if n < 1 {
			n = 1
		}
		if n > 256 {
			n = 256
		}
		t.ncols = n
	}
}

// WithPooling toggles the span pool (default on). Off means every span
// is a fresh allocation — the ablation knob quantifying what pooling
// buys on the enabled path.
func WithPooling(on bool) Option {
	return func(t *Tracer) { t.pool = on }
}

// aggregate is the per-span-name roll-up behind Breakdown.
type aggregate struct {
	count int
	total time.Duration
	max   time.Duration
}

// collector is one shard of the tracer's end-of-span work: its own
// mutex, its own per-name aggregate map, and its own pending JSONL
// bytes. Spans are routed by ID, so concurrent enders contend only
// 1/len(cols) of the time instead of serialising on one tracer mutex.
type collector struct {
	mu  sync.Mutex
	agg map[string]*aggregate
	buf []byte
}

// flushBytes is the per-collector JSONL high-water mark: past it the
// collector's pending bytes move to the shared writer (whole lines only,
// so the interleaving stays record-atomic).
const flushBytes = 32 * 1024

// defaultCollectors is the default collector shard count.
const defaultCollectors = 8

// Tracer records hierarchical spans, aggregates them per name, and
// exports them as JSONL and/or to an in-process Sink. A nil *Tracer is
// the disabled tracer: every method is a cheap no-op and Root returns a
// nil *Span whose whole subtree is free. Tracers are safe for concurrent
// use; ended spans shard over independently locked collectors.
type Tracer struct {
	clock  Clock
	nextID atomic.Uint64
	sink   Sink
	pool   bool
	ncols  int
	mask   uint64
	cols   []*collector

	// wmu guards the shared buffered writer; collectors take it only to
	// hand over a full buffer (memcpy of whole records), never per span.
	wmu  sync.Mutex
	bw   *bufio.Writer // nil when w is nil (aggregate/sink-only tracer)
	werr error
}

// New returns a tracer writing JSONL span records to w as spans end. A
// nil w keeps the tracer enabled for in-memory aggregation (Breakdown)
// and any attached Sink without exporting records. Call Flush before
// reading the output.
func New(w io.Writer, opts ...Option) *Tracer {
	t := &Tracer{clock: time.Now, pool: true, ncols: defaultCollectors}
	if w != nil {
		t.bw = bufio.NewWriterSize(w, 64*1024)
	}
	for _, o := range opts {
		o(t)
	}
	n := 1
	for n < t.ncols {
		n <<= 1
	}
	t.mask = uint64(n - 1)
	t.cols = make([]*collector, n)
	for i := range t.cols {
		t.cols[i] = &collector{agg: make(map[string]*aggregate)}
	}
	return t
}

// Root opens a top-level span: the root of a new trace. On a nil tracer
// it returns a nil span, whose children and tags are all no-ops.
func (t *Tracer) Root(name string) *Span {
	if t == nil {
		return nil
	}
	return t.newSpan(name, 0, 0)
}

// spanPool recycles ended spans (tag storage included) across all
// tracers, so the steady-state enabled path allocates nothing per span.
var spanPool = sync.Pool{New: func() any { return new(Span) }}

func (t *Tracer) newSpan(name string, parent, trace uint64) *Span {
	var s *Span
	if t.pool {
		s = spanPool.Get().(*Span)
	} else {
		s = new(Span)
	}
	s.t = t
	s.id = t.nextID.Add(1)
	s.parent = parent
	if trace == 0 {
		trace = s.id
	}
	s.trace = trace
	s.name = name
	s.kv = s.kv[:0]
	s.start = t.clock()
	return s
}

// Flush drains every collector's pending JSONL bytes and the shared
// buffer, and returns the first error the tracer hit while writing. Safe
// on a nil tracer.
func (t *Tracer) Flush() error {
	if t == nil {
		return nil
	}
	for _, c := range t.cols {
		c.mu.Lock()
		if t.bw != nil && len(c.buf) > 0 {
			t.drain(c)
		}
		c.mu.Unlock()
	}
	t.wmu.Lock()
	defer t.wmu.Unlock()
	if t.bw != nil {
		if err := t.bw.Flush(); err != nil && t.werr == nil {
			t.werr = err
		}
	}
	return t.werr
}

// drain hands one collector's pending bytes to the shared writer. Called
// with c.mu held; takes wmu (the only place the two locks nest).
func (t *Tracer) drain(c *collector) {
	t.wmu.Lock()
	if _, err := t.bw.Write(c.buf); err != nil && t.werr == nil {
		t.werr = err
	}
	t.wmu.Unlock()
	c.buf = c.buf[:0]
}

// Breakdown returns the per-span-name time roll-up — the rows behind the
// "where the time went" summary — merged across collectors and sorted by
// total duration descending (name ascending on ties). Nil tracers return
// nil.
func (t *Tracer) Breakdown() []report.SpanRow {
	if t == nil {
		return nil
	}
	merged := make(map[string]aggregate)
	for _, c := range t.cols {
		c.mu.Lock()
		for name, a := range c.agg {
			m := merged[name]
			m.count += a.count
			m.total += a.total
			if a.max > m.max {
				m.max = a.max
			}
			merged[name] = m
		}
		c.mu.Unlock()
	}
	rows := make([]report.SpanRow, 0, len(merged))
	for name, a := range merged {
		rows = append(rows, report.SpanRow{Name: name, Count: a.count, Total: a.total, Max: a.max})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Total != rows[j].Total {
			return rows[i].Total > rows[j].Total
		}
		return rows[i].Name < rows[j].Name
	})
	return rows
}

// finish stamps the span's end, folds it into its collector's aggregate,
// appends its JSONL record, and offers it to the sink.
func (t *Tracer) finish(s *Span) {
	end := t.clock()
	dur := end.Sub(s.start)
	if dur < 0 {
		dur = 0
	}
	c := t.cols[s.id&t.mask]
	c.mu.Lock()
	a := c.agg[s.name]
	if a == nil {
		a = &aggregate{}
		c.agg[s.name] = a
	}
	a.count++
	a.total += dur
	if dur > a.max {
		a.max = dur
	}
	if t.bw != nil {
		c.buf = appendRecord(c.buf, s, dur)
		if len(c.buf) >= flushBytes {
			t.drain(c)
		}
	}
	c.mu.Unlock()
	if t.sink != nil {
		t.sink.Offer(SpanData{
			ID: s.id, Parent: s.parent, Trace: s.trace,
			Name: s.name, Start: s.start, Dur: dur, Tags: s.kv,
		})
	}
}

const hexDigits = "0123456789abcdef"

// appendRecord marshals one ended span as a JSONL line without going
// through encoding/json: reflection-free, allocation-free into a
// recycled buffer. Duplicate tag keys keep the last value, matching the
// map semantics of the old encoder.
func appendRecord(b []byte, s *Span, dur time.Duration) []byte {
	b = append(b, `{"id":`...)
	b = strconv.AppendUint(b, s.id, 10)
	if s.parent != 0 {
		b = append(b, `,"parent":`...)
		b = strconv.AppendUint(b, s.parent, 10)
	}
	if s.trace != 0 {
		b = append(b, `,"trace":`...)
		b = strconv.AppendUint(b, s.trace, 10)
	}
	b = append(b, `,"name":`...)
	b = appendJSONString(b, s.name)
	b = append(b, `,"start_us":`...)
	b = strconv.AppendInt(b, s.start.UnixNano()/1e3, 10)
	b = append(b, `,"dur_us":`...)
	b = strconv.AppendInt(b, int64(dur)/1e3, 10)
	if len(s.kv) >= 2 {
		b = append(b, `,"tags":{`...)
		first := true
		for i := 0; i+1 < len(s.kv); i += 2 {
			dup := false
			for j := i + 2; j+1 < len(s.kv); j += 2 {
				if s.kv[j] == s.kv[i] {
					dup = true
					break
				}
			}
			if dup {
				continue
			}
			if !first {
				b = append(b, ',')
			}
			first = false
			b = appendJSONString(b, s.kv[i])
			b = append(b, ':')
			b = appendJSONString(b, s.kv[i+1])
		}
		b = append(b, '}')
	}
	b = append(b, '}', '\n')
	return b
}

// appendJSONString appends s as a JSON string literal, escaping quotes,
// backslashes and control characters (UTF-8 passes through raw, which
// JSON permits).
func appendJSONString(b []byte, s string) []byte {
	b = append(b, '"')
	start := 0
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c != '"' && c != '\\' && c >= 0x20 {
			continue
		}
		b = append(b, s[start:i]...)
		switch c {
		case '"':
			b = append(b, '\\', '"')
		case '\\':
			b = append(b, '\\', '\\')
		case '\n':
			b = append(b, '\\', 'n')
		case '\r':
			b = append(b, '\\', 'r')
		case '\t':
			b = append(b, '\\', 't')
		default:
			b = append(b, '\\', 'u', '0', '0', hexDigits[c>>4], hexDigits[c&0xF])
		}
		start = i + 1
	}
	b = append(b, s[start:]...)
	return append(b, '"')
}

// Span is one timed node of the trace tree. Spans are created by
// Tracer.Root and Span.Child/ChildTrace, annotated with
// Tag/TagInt/TagBool, and emitted by End. A nil *Span (disabled
// telemetry, or a child of a nil span) accepts the whole API as
// zero-allocation no-ops. A span is meant to be owned by one goroutine;
// concurrent children each get their own span.
//
// Ended spans return to a shared pool and may be reused immediately by
// another goroutine: a span must not be touched after End (Tag and Child
// on an ended span are no-ops as long as the span has not yet been
// reused, but that grace is best-effort, not a contract). Ending a span
// twice is a no-op.
type Span struct {
	t      *Tracer
	id     uint64
	parent uint64
	trace  uint64
	name   string
	start  time.Time
	kv     []string // alternating key, value; capacity recycled with the span
}

// Child opens a sub-span in the same trace. Children of a nil (or
// already ended) span are nil.
func (s *Span) Child(name string) *Span {
	if s == nil || s.t == nil {
		return nil
	}
	return s.t.newSpan(name, s.id, s.trace)
}

// ChildTrace opens a sub-span that roots a new trace: it stays linked to
// s in the span tree (its parent is s), but carries its own trace ID, so
// trace-granular consumers — the store's tail sampler, slowest-trace
// search — treat its subtree as one unit. The fleet coordinator roots
// each host's audit this way: the sweep is the tree, each host is a
// trace.
func (s *Span) ChildTrace(name string) *Span {
	if s == nil || s.t == nil {
		return nil
	}
	return s.t.newSpan(name, s.id, 0)
}

// Tag annotates the span with a string key/value and returns it for
// chaining. Tags on an ended span are dropped.
func (s *Span) Tag(k, v string) *Span {
	if s == nil || s.t == nil {
		return nil
	}
	s.kv = append(s.kv, k, v)
	return s
}

// TagInt annotates the span with an integer value.
func (s *Span) TagInt(k string, v int) *Span {
	if s == nil || s.t == nil {
		return nil
	}
	return s.Tag(k, strconv.Itoa(v))
}

// TagBool annotates the span with a boolean value.
func (s *Span) TagBool(k string, v bool) *Span {
	if s == nil || s.t == nil {
		return nil
	}
	return s.Tag(k, strconv.FormatBool(v))
}

// End stamps the span's duration, emits its record, and recycles the
// span. End on a nil span is a no-op; so is ending a span twice.
func (s *Span) End() {
	if s == nil || s.t == nil {
		return
	}
	t := s.t
	t.finish(s)
	s.t = nil
	s.name = ""
	if t.pool {
		spanPool.Put(s)
	}
}
