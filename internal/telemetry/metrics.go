package telemetry

import (
	"sort"
	"strconv"
	"sync"
	"time"

	"veridevops/internal/report"
)

// histoBounds are the duration histogram's bucket upper bounds; a sixth
// implicit bucket is unbounded. The range covers the repo's hot paths:
// sub-100µs simulated probes up through multi-second fleet sweeps.
var histoBounds = [...]time.Duration{
	100 * time.Microsecond,
	time.Millisecond,
	10 * time.Millisecond,
	100 * time.Millisecond,
	time.Second,
}

// histo is one duration histogram: a summary (count/sum/min/max) plus
// fixed exponential buckets.
type histo struct {
	count    int64
	sum      time.Duration
	min, max time.Duration
	buckets  [len(histoBounds) + 1]int64
}

// HistogramStats is the exported snapshot of one duration histogram.
// Buckets is indexed like HistogramBounds() with one extra unbounded
// bucket at the end.
type HistogramStats struct {
	Count    int64
	Total    time.Duration
	Min, Max time.Duration
	Buckets  []int64
}

// Mean is Total / Count; 0 when nothing was observed.
func (h HistogramStats) Mean() time.Duration {
	if h.Count == 0 {
		return 0
	}
	return h.Total / time.Duration(h.Count)
}

// HistogramBounds returns the bucket upper bounds shared by every
// duration histogram (the last bucket of HistogramStats.Buckets is
// unbounded).
func HistogramBounds() []time.Duration {
	out := make([]time.Duration, len(histoBounds))
	copy(out, histoBounds[:])
	return out
}

// Metrics is the lightweight registry half of the telemetry layer: named
// counters, gauges and duration histograms the engine, fleet and monitor
// hot paths feed (engine.checks, fleet.steals, monitor.alarms, ...) and
// the CLIs' -metrics flag renders. A nil *Metrics is the disabled
// registry: every method is a zero-allocation no-op, so instrumentation
// stays compiled into the hot loops unconditionally. Metrics are safe
// for concurrent use.
type Metrics struct {
	mu       sync.Mutex
	counters map[string]int64
	gauges   map[string]float64
	hists    map[string]*histo
	quants   map[string]*Quantiles
}

// quantilesCap bounds each named percentile recorder in the registry:
// enough retained samples for exact percentiles over any bench-sized
// stream, deterministic stride decimation beyond it.
const quantilesCap = 1 << 16

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{
		counters: make(map[string]int64),
		gauges:   make(map[string]float64),
		hists:    make(map[string]*histo),
		quants:   make(map[string]*Quantiles),
	}
}

// Add increments the named counter (negative deltas are allowed).
func (m *Metrics) Add(name string, delta int64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.counters[name] += delta
	m.mu.Unlock()
}

// SetGauge records the latest value of the named gauge.
func (m *Metrics) SetGauge(name string, v float64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.gauges[name] = v
	m.mu.Unlock()
}

// Observe folds one duration into the named histogram. Negative
// durations clamp to zero.
func (m *Metrics) Observe(name string, d time.Duration) {
	if m == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	m.mu.Lock()
	h := m.hists[name]
	if h == nil {
		h = &histo{min: d}
		m.hists[name] = h
	}
	h.count++
	h.sum += d
	if d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
	b := len(histoBounds)
	for i, bound := range histoBounds {
		if d <= bound {
			b = i
			break
		}
	}
	h.buckets[b]++
	m.mu.Unlock()
}

// Sample folds one duration into the named percentile recorder — the
// exact-quantile companion to Observe's fixed-bucket histogram, used
// where a table must answer p50/p95/p99 (the load harness's detection
// latencies). Negative durations clamp to zero.
func (m *Metrics) Sample(name string, d time.Duration) {
	if m == nil {
		return
	}
	m.mu.Lock()
	q := m.quants[name]
	if q == nil {
		q = NewQuantilesCap(quantilesCap)
		m.quants[name] = q
	}
	m.mu.Unlock()
	q.Observe(d)
}

// Percentiles returns a snapshot of the named percentile recorder; the
// zero QuantileStats when absent or on a nil registry.
func (m *Metrics) Percentiles(name string) QuantileStats {
	if m == nil {
		return QuantileStats{}
	}
	m.mu.Lock()
	q := m.quants[name]
	m.mu.Unlock()
	if q == nil {
		return QuantileStats{}
	}
	return q.Snapshot()
}

// Counter returns the named counter's current value; 0 when absent or on
// a nil registry.
func (m *Metrics) Counter(name string) int64 {
	if m == nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.counters[name]
}

// Gauge returns the named gauge's latest value and whether it was ever
// set.
func (m *Metrics) Gauge(name string) (float64, bool) {
	if m == nil {
		return 0, false
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	v, ok := m.gauges[name]
	return v, ok
}

// Histogram returns a snapshot of the named duration histogram; the zero
// HistogramStats when absent or on a nil registry.
func (m *Metrics) Histogram(name string) HistogramStats {
	if m == nil {
		return HistogramStats{}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	h := m.hists[name]
	if h == nil {
		return HistogramStats{}
	}
	buckets := make([]int64, len(h.buckets))
	copy(buckets, h.buckets[:])
	return HistogramStats{Count: h.count, Total: h.sum, Min: h.min, Max: h.max, Buckets: buckets}
}

// Table renders every metric, sorted by kind (counters, gauges,
// histograms, quantiles) then name. Histogram rows carry the summary
// (count/total/min/mean/max); quantile rows additionally carry
// p50/p95/p99. Nil registries render an empty table.
func (m *Metrics) Table(title string) *report.Table {
	t := report.New(title, "metric", "kind", "value", "count",
		"total-ms", "min-ms", "mean-ms", "p50-ms", "p95-ms", "p99-ms", "max-ms")
	if m == nil {
		return t
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, name := range sortedKeys(m.counters) {
		t.AddRow(name, "counter", strconv.FormatInt(m.counters[name], 10),
			"-", "-", "-", "-", "-", "-", "-", "-")
	}
	for _, name := range sortedKeys(m.gauges) {
		t.AddRow(name, "gauge", report.Float(m.gauges[name]),
			"-", "-", "-", "-", "-", "-", "-", "-")
	}
	for _, name := range sortedKeys(m.hists) {
		h := m.hists[name]
		mean := time.Duration(0)
		if h.count > 0 {
			mean = h.sum / time.Duration(h.count)
		}
		t.AddRow(name, "histogram", "-", strconv.FormatInt(h.count, 10),
			report.Millis(h.sum), report.Millis(h.min), report.Millis(mean),
			"-", "-", "-", report.Millis(h.max))
	}
	for _, name := range sortedKeys(m.quants) {
		q := m.quants[name].Snapshot()
		t.AddRow(name, "quantile", "-", strconv.FormatInt(q.Count, 10),
			report.Millis(q.Total), report.Millis(q.Min),
			report.Millis(q.Mean), report.Millis(q.P50), report.Millis(q.P95),
			report.Millis(q.P99), report.Millis(q.Max))
	}
	return t
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
