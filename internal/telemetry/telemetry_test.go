package telemetry

import (
	"bytes"
	"io"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestVirtualClockDeterministicDurations drives a small span tree on a
// virtual clock and checks the exported records have the exact durations
// the clock arithmetic implies: every span reads the clock once at start
// and once at end.
func TestVirtualClockDeterministicDurations(t *testing.T) {
	var buf bytes.Buffer
	tr := New(&buf, WithClock(NewVirtualClock(time.Millisecond)))
	root := tr.Root("sweep") // reads 0ms
	child := root.Child("host")
	child.Tag("host", "h0") // reads 1ms
	child.End()             // reads 2ms -> dur 1ms
	root.End()              // reads 3ms -> dur 3ms
	if err := tr.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	recs, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if len(recs) != 2 {
		t.Fatalf("records = %d, want 2", len(recs))
	}
	// Record order depends on collector drain order, not End order; look
	// spans up by name.
	byName := map[string]Record{}
	for _, r := range recs {
		byName[r.Name] = r
	}
	hostRec, sweepRec := byName["host"], byName["sweep"]
	if hostRec.DurUS != 1000 {
		t.Errorf("child record = %+v, want dur 1000us", hostRec)
	}
	if sweepRec.DurUS != 3000 {
		t.Errorf("root record = %+v, want dur 3000us", sweepRec)
	}
	if hostRec.Parent != sweepRec.ID {
		t.Errorf("child parent = %d, want root id %d", hostRec.Parent, sweepRec.ID)
	}
	if hostRec.Trace != sweepRec.ID || sweepRec.Trace != sweepRec.ID {
		t.Errorf("trace ids = %d/%d, want both %d", hostRec.Trace, sweepRec.Trace, sweepRec.ID)
	}
	if hostRec.Tags["host"] != "h0" {
		t.Errorf("child tags = %v, want host=h0", hostRec.Tags)
	}
}

func TestBuildTreeReassemblesHierarchy(t *testing.T) {
	var buf bytes.Buffer
	tr := New(&buf)
	root := tr.Root("sweep")
	for i := 0; i < 2; i++ {
		sh := root.Child("shard")
		h := sh.Child("host")
		h.End()
		sh.End()
	}
	root.End()
	tr.Flush()
	recs, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	roots := BuildTree(recs)
	if len(roots) != 1 || roots[0].Name != "sweep" {
		t.Fatalf("roots = %v, want one sweep", roots)
	}
	if len(roots[0].Children) != 2 {
		t.Fatalf("sweep children = %d, want 2 shards", len(roots[0].Children))
	}
	for _, sh := range roots[0].Children {
		if sh.Name != "shard" || len(sh.Children) != 1 || sh.Children[0].Name != "host" {
			t.Errorf("shard subtree wrong: %+v", sh)
		}
	}
	if roots[0].Find("host") == nil {
		t.Error("Find(host) = nil")
	}
	n := 0
	roots[0].Walk(func(*Node) { n++ })
	if n != 5 {
		t.Errorf("Walk visited %d nodes, want 5", n)
	}
}

// TestBuildTreeLeakedParent: a span whose parent never ended must surface
// as a root, not be dropped.
func TestBuildTreeLeakedParent(t *testing.T) {
	recs := []Record{{ID: 7, Parent: 3, Name: "orphan"}}
	roots := BuildTree(recs)
	if len(roots) != 1 || roots[0].Name != "orphan" {
		t.Fatalf("roots = %v, want the orphan promoted to root", roots)
	}
}

func TestBreakdownOrdersByTotal(t *testing.T) {
	tr := New(nil, WithClock(NewVirtualClock(time.Millisecond)))
	long := tr.Root("long") // 0
	short := tr.Root("short")
	short.End() // 1,2 -> 1ms
	long.End()  // 3 -> 3ms
	rows := tr.Breakdown()
	if len(rows) != 2 || rows[0].Name != "long" || rows[1].Name != "short" {
		t.Fatalf("breakdown = %+v, want long before short", rows)
	}
	if rows[0].Total != 3*time.Millisecond || rows[0].Count != 1 {
		t.Errorf("long row = %+v", rows[0])
	}
}

func TestTracerConcurrentChildren(t *testing.T) {
	var buf bytes.Buffer
	tr := New(&buf)
	root := tr.Root("sweep")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sp := root.Child("host").TagInt("i", i)
			sp.End()
		}(i)
	}
	wg.Wait()
	root.End()
	if err := tr.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	recs, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if len(recs) != 9 {
		t.Fatalf("records = %d, want 9", len(recs))
	}
}

func TestMetricsRegistry(t *testing.T) {
	m := NewMetrics()
	m.Add("sweeps", 1)
	m.Add("sweeps", 2)
	m.SetGauge("utilization", 0.5)
	m.Observe("wall", 50*time.Microsecond)
	m.Observe("wall", 5*time.Millisecond)
	if got := m.Counter("sweeps"); got != 3 {
		t.Errorf("counter = %d, want 3", got)
	}
	if v, ok := m.Gauge("utilization"); !ok || v != 0.5 {
		t.Errorf("gauge = %v/%v, want 0.5/true", v, ok)
	}
	h := m.Histogram("wall")
	if h.Count != 2 || h.Total != 50*time.Microsecond+5*time.Millisecond {
		t.Errorf("histogram summary = %+v", h)
	}
	if h.Min != 50*time.Microsecond || h.Max != 5*time.Millisecond {
		t.Errorf("histogram min/max = %v/%v", h.Min, h.Max)
	}
	if h.Mean() != (50*time.Microsecond+5*time.Millisecond)/2 {
		t.Errorf("mean = %v", h.Mean())
	}
	// 50us lands in the <=100us bucket, 5ms in the <=10ms bucket.
	if h.Buckets[0] != 1 || h.Buckets[2] != 1 {
		t.Errorf("buckets = %v", h.Buckets)
	}
	out := m.Table("metrics").String()
	for _, want := range []string{"sweeps", "counter", "utilization", "gauge", "wall", "histogram"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}

// TestNilTelemetryZeroAllocs is the disabled-path contract: the whole
// span and metrics API on nil receivers must allocate nothing, so the
// hot loops keep their instrumentation unconditionally.
func TestNilTelemetryZeroAllocs(t *testing.T) {
	var tr *Tracer
	var m *Metrics
	allocs := testing.AllocsPerRun(1000, func() {
		root := tr.Root("sweep")
		sp := root.Child("host").Tag("host", "h").TagInt("n", 3).TagBool("cached", true)
		sp.End()
		root.End()
		tr.Flush()
		if tr.Breakdown() != nil {
			t.Fatal("nil breakdown expected")
		}
		m.Add("c", 1)
		m.SetGauge("g", 1)
		m.Observe("h", time.Millisecond)
	})
	if allocs != 0 {
		t.Fatalf("nil telemetry path allocates %v allocs/op, want 0", allocs)
	}
}

// BenchmarkTelemetryDisabled measures the nil-receiver fast path the
// engine/fleet/monitor hot loops pay when telemetry is off. The
// acceptance bar is 0 allocs/op (see `make bench-telemetry`).
func BenchmarkTelemetryDisabled(b *testing.B) {
	var tr *Tracer
	var m *Metrics
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		root := tr.Root("sweep")
		sp := root.Child("host").Tag("host", "h").TagInt("n", i).TagBool("cached", false)
		sp.End()
		root.End()
		m.Add("c", 1)
		m.Observe("h", time.Microsecond)
	}
}

// BenchmarkTelemetryEnabledSpan is the enabled counterpart: one tagged
// span through an aggregate-only tracer, for the overhead comparison.
func BenchmarkTelemetryEnabledSpan(b *testing.B) {
	tr := New(nil)
	root := tr.Root("bench")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp := root.Child("host").Tag("host", "h").TagInt("n", i)
		sp.End()
	}
}

// recordingSink copies every offered span (SpanData.Tags is only valid
// during the call, per the Sink contract).
type recordingSink struct {
	mu    sync.Mutex
	spans []SpanData
}

func (rs *recordingSink) Offer(d SpanData) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	cp := d
	cp.Tags = append([]string(nil), d.Tags...)
	rs.spans = append(rs.spans, cp)
}

func TestSinkReceivesEndedSpans(t *testing.T) {
	rs := &recordingSink{}
	tr := New(nil, WithClock(NewVirtualClock(time.Millisecond)), WithSink(rs))
	root := tr.Root("sweep")
	child := root.Child("check").Tag("finding", "CIS-1.1").TagBool("cached", false)
	child.End()
	root.End()
	if len(rs.spans) != 2 {
		t.Fatalf("sink got %d spans, want 2", len(rs.spans))
	}
	c, r := rs.spans[0], rs.spans[1]
	if c.Name != "check" || r.Name != "sweep" {
		t.Fatalf("sink order = %s,%s, want check,sweep", c.Name, r.Name)
	}
	if c.Parent != r.ID || c.Trace != r.ID || r.Trace != r.ID {
		t.Errorf("links = parent %d trace %d/%d, want all %d", c.Parent, c.Trace, r.Trace, r.ID)
	}
	if c.Dur != time.Millisecond || r.Dur != 3*time.Millisecond {
		t.Errorf("durations = %v/%v, want 1ms/3ms", c.Dur, r.Dur)
	}
	want := []string{"finding", "CIS-1.1", "cached", "false"}
	if len(c.Tags) != len(want) {
		t.Fatalf("tags = %v, want %v", c.Tags, want)
	}
	for i := range want {
		if c.Tags[i] != want[i] {
			t.Fatalf("tags = %v, want %v", c.Tags, want)
		}
	}
}

// TestChildTraceRootsNewTrace: ChildTrace keeps the span-tree parent link
// but starts its own trace — the fleet's per-host trace boundary.
func TestChildTraceRootsNewTrace(t *testing.T) {
	rs := &recordingSink{}
	tr := New(nil, WithSink(rs))
	sweep := tr.Root("sweep")
	host := sweep.ChildTrace("host")
	check := host.Child("check")
	check.End()
	host.End()
	sweep.End()
	byName := map[string]SpanData{}
	for _, d := range rs.spans {
		byName[d.Name] = d
	}
	h, c, s := byName["host"], byName["check"], byName["sweep"]
	if h.Parent != s.ID {
		t.Errorf("host parent = %d, want sweep id %d (tree link preserved)", h.Parent, s.ID)
	}
	if h.Trace != h.ID {
		t.Errorf("host trace = %d, want own id %d (new trace root)", h.Trace, h.ID)
	}
	if c.Trace != h.ID || c.Trace == s.Trace {
		t.Errorf("check trace = %d, want host trace %d distinct from sweep trace %d", c.Trace, h.ID, s.Trace)
	}
}

// TestJSONStringEscaping: the manual marshaller must round-trip hostile
// tag content through encoding/json's decoder.
func TestJSONStringEscaping(t *testing.T) {
	var buf bytes.Buffer
	tr := New(&buf)
	sp := tr.Root(`na"me\with` + "\n\t\x01" + `controls`)
	sp.Tag(`k"ey`, "v\\al\r\x1f")
	sp.Tag("dup", "first").Tag("dup", "second") // keep-last, like the old map
	sp.End()
	if err := tr.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	recs, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if len(recs) != 1 {
		t.Fatalf("records = %d, want 1", len(recs))
	}
	if recs[0].Name != `na"me\with`+"\n\t\x01"+`controls` {
		t.Errorf("name = %q", recs[0].Name)
	}
	if recs[0].Tags[`k"ey`] != "v\\al\r\x1f" {
		t.Errorf("tag = %q", recs[0].Tags[`k"ey`])
	}
	if recs[0].Tags["dup"] != "second" {
		t.Errorf("dup tag = %q, want keep-last %q", recs[0].Tags["dup"], "second")
	}
}

// TestPoolingAblation: WithPooling(false) — the ablation knob — must
// still produce identical records.
func TestPoolingAblation(t *testing.T) {
	var buf bytes.Buffer
	tr := New(&buf, WithPooling(false), WithCollectors(1), WithClock(NewVirtualClock(time.Millisecond)))
	root := tr.Root("sweep")
	root.Child("host").Tag("host", "h1").End()
	root.End()
	if err := tr.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	recs, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if len(recs) != 2 {
		t.Fatalf("records = %d, want 2", len(recs))
	}
}

// TestDoubleEndIsNoOp: End twice must not fold the span into the
// aggregates twice or corrupt the pool.
func TestDoubleEndIsNoOp(t *testing.T) {
	tr := New(nil)
	sp := tr.Root("once")
	sp.End()
	sp.End()
	rows := tr.Breakdown()
	if len(rows) != 1 || rows[0].Count != 1 {
		t.Fatalf("breakdown = %+v, want a single count-1 row", rows)
	}
	if sp.Child("after") != nil || sp.Tag("k", "v") != nil {
		t.Error("Child/Tag on an ended span must return nil")
	}
}

// TestEnabledTelemetryAllocBudget pins the pooled enabled-path budget:
// steady-state Root/Child/Tag/End against a live tracer (aggregates +
// JSONL + sink) must not allocate. The warm-up run populates the span
// pool, tag capacity and aggregate map entries; everything after rides
// recycled memory.
func TestEnabledTelemetryAllocBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation defeats sync.Pool reuse; alloc budget measured without -race")
	}
	rs := nopSink{}
	tr := New(io.Discard, WithClock(NewVirtualClock(time.Microsecond)), WithSink(rs))
	span := func() {
		root := tr.Root("sweep")
		sp := root.Child("host").Tag("host", "h0").TagBool("cached", true).TagInt("n", 7)
		sp.End()
		root.End()
	}
	for i := 0; i < 64; i++ { // warm the pool and aggregate map
		span()
	}
	if allocs := testing.AllocsPerRun(1000, span); allocs > 0 {
		t.Fatalf("enabled span path allocates %v allocs/op steady-state, want 0", allocs)
	}
}

type nopSink struct{}

func (nopSink) Offer(SpanData) {}

// BenchmarkTelemetryEnabledSpanJSONL is the full enabled pipeline —
// pooled span, tags, aggregate fold, manual JSONL marshal — the cost a
// traced sweep pays per span.
func BenchmarkTelemetryEnabledSpanJSONL(b *testing.B) {
	tr := New(io.Discard)
	root := tr.Root("bench")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp := root.Child("host").Tag("host", "h0").TagBool("cached", true)
		sp.End()
	}
}

// BenchmarkTelemetryEnabledParallel measures collector-shard contention:
// many goroutines ending spans concurrently, the shape of a multi-shard
// sweep.
func BenchmarkTelemetryEnabledParallel(b *testing.B) {
	tr := New(io.Discard)
	root := tr.Root("bench")
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			sp := root.Child("host").Tag("host", "h0")
			sp.End()
		}
	})
}
