package telemetry

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestVirtualClockDeterministicDurations drives a small span tree on a
// virtual clock and checks the exported records have the exact durations
// the clock arithmetic implies: every span reads the clock once at start
// and once at end.
func TestVirtualClockDeterministicDurations(t *testing.T) {
	var buf bytes.Buffer
	tr := New(&buf, WithClock(NewVirtualClock(time.Millisecond)))
	root := tr.Root("sweep") // reads 0ms
	child := root.Child("host")
	child.Tag("host", "h0") // reads 1ms
	child.End()             // reads 2ms -> dur 1ms
	root.End()              // reads 3ms -> dur 3ms
	if err := tr.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	recs, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if len(recs) != 2 {
		t.Fatalf("records = %d, want 2", len(recs))
	}
	// Spans are emitted at End: child first, then root.
	if recs[0].Name != "host" || recs[0].DurUS != 1000 {
		t.Errorf("child record = %+v, want host / 1000us", recs[0])
	}
	if recs[1].Name != "sweep" || recs[1].DurUS != 3000 {
		t.Errorf("root record = %+v, want sweep / 3000us", recs[1])
	}
	if recs[0].Parent != recs[1].ID {
		t.Errorf("child parent = %d, want root id %d", recs[0].Parent, recs[1].ID)
	}
	if recs[0].Tags["host"] != "h0" {
		t.Errorf("child tags = %v, want host=h0", recs[0].Tags)
	}
}

func TestBuildTreeReassemblesHierarchy(t *testing.T) {
	var buf bytes.Buffer
	tr := New(&buf)
	root := tr.Root("sweep")
	for i := 0; i < 2; i++ {
		sh := root.Child("shard")
		h := sh.Child("host")
		h.End()
		sh.End()
	}
	root.End()
	tr.Flush()
	recs, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	roots := BuildTree(recs)
	if len(roots) != 1 || roots[0].Name != "sweep" {
		t.Fatalf("roots = %v, want one sweep", roots)
	}
	if len(roots[0].Children) != 2 {
		t.Fatalf("sweep children = %d, want 2 shards", len(roots[0].Children))
	}
	for _, sh := range roots[0].Children {
		if sh.Name != "shard" || len(sh.Children) != 1 || sh.Children[0].Name != "host" {
			t.Errorf("shard subtree wrong: %+v", sh)
		}
	}
	if roots[0].Find("host") == nil {
		t.Error("Find(host) = nil")
	}
	n := 0
	roots[0].Walk(func(*Node) { n++ })
	if n != 5 {
		t.Errorf("Walk visited %d nodes, want 5", n)
	}
}

// TestBuildTreeLeakedParent: a span whose parent never ended must surface
// as a root, not be dropped.
func TestBuildTreeLeakedParent(t *testing.T) {
	recs := []Record{{ID: 7, Parent: 3, Name: "orphan"}}
	roots := BuildTree(recs)
	if len(roots) != 1 || roots[0].Name != "orphan" {
		t.Fatalf("roots = %v, want the orphan promoted to root", roots)
	}
}

func TestBreakdownOrdersByTotal(t *testing.T) {
	tr := New(nil, WithClock(NewVirtualClock(time.Millisecond)))
	long := tr.Root("long") // 0
	short := tr.Root("short")
	short.End() // 1,2 -> 1ms
	long.End()  // 3 -> 3ms
	rows := tr.Breakdown()
	if len(rows) != 2 || rows[0].Name != "long" || rows[1].Name != "short" {
		t.Fatalf("breakdown = %+v, want long before short", rows)
	}
	if rows[0].Total != 3*time.Millisecond || rows[0].Count != 1 {
		t.Errorf("long row = %+v", rows[0])
	}
}

func TestTracerConcurrentChildren(t *testing.T) {
	var buf bytes.Buffer
	tr := New(&buf)
	root := tr.Root("sweep")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sp := root.Child("host").TagInt("i", i)
			sp.End()
		}(i)
	}
	wg.Wait()
	root.End()
	if err := tr.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	recs, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if len(recs) != 9 {
		t.Fatalf("records = %d, want 9", len(recs))
	}
}

func TestMetricsRegistry(t *testing.T) {
	m := NewMetrics()
	m.Add("sweeps", 1)
	m.Add("sweeps", 2)
	m.SetGauge("utilization", 0.5)
	m.Observe("wall", 50*time.Microsecond)
	m.Observe("wall", 5*time.Millisecond)
	if got := m.Counter("sweeps"); got != 3 {
		t.Errorf("counter = %d, want 3", got)
	}
	if v, ok := m.Gauge("utilization"); !ok || v != 0.5 {
		t.Errorf("gauge = %v/%v, want 0.5/true", v, ok)
	}
	h := m.Histogram("wall")
	if h.Count != 2 || h.Total != 50*time.Microsecond+5*time.Millisecond {
		t.Errorf("histogram summary = %+v", h)
	}
	if h.Min != 50*time.Microsecond || h.Max != 5*time.Millisecond {
		t.Errorf("histogram min/max = %v/%v", h.Min, h.Max)
	}
	if h.Mean() != (50*time.Microsecond+5*time.Millisecond)/2 {
		t.Errorf("mean = %v", h.Mean())
	}
	// 50us lands in the <=100us bucket, 5ms in the <=10ms bucket.
	if h.Buckets[0] != 1 || h.Buckets[2] != 1 {
		t.Errorf("buckets = %v", h.Buckets)
	}
	out := m.Table("metrics").String()
	for _, want := range []string{"sweeps", "counter", "utilization", "gauge", "wall", "histogram"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}

// TestNilTelemetryZeroAllocs is the disabled-path contract: the whole
// span and metrics API on nil receivers must allocate nothing, so the
// hot loops keep their instrumentation unconditionally.
func TestNilTelemetryZeroAllocs(t *testing.T) {
	var tr *Tracer
	var m *Metrics
	allocs := testing.AllocsPerRun(1000, func() {
		root := tr.Root("sweep")
		sp := root.Child("host").Tag("host", "h").TagInt("n", 3).TagBool("cached", true)
		sp.End()
		root.End()
		tr.Flush()
		if tr.Breakdown() != nil {
			t.Fatal("nil breakdown expected")
		}
		m.Add("c", 1)
		m.SetGauge("g", 1)
		m.Observe("h", time.Millisecond)
	})
	if allocs != 0 {
		t.Fatalf("nil telemetry path allocates %v allocs/op, want 0", allocs)
	}
}

// BenchmarkTelemetryDisabled measures the nil-receiver fast path the
// engine/fleet/monitor hot loops pay when telemetry is off. The
// acceptance bar is 0 allocs/op (see `make bench-telemetry`).
func BenchmarkTelemetryDisabled(b *testing.B) {
	var tr *Tracer
	var m *Metrics
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		root := tr.Root("sweep")
		sp := root.Child("host").Tag("host", "h").TagInt("n", i).TagBool("cached", false)
		sp.End()
		root.End()
		m.Add("c", 1)
		m.Observe("h", time.Microsecond)
	}
}

// BenchmarkTelemetryEnabledSpan is the enabled counterpart: one tagged
// span through an aggregate-only tracer, for the overhead comparison.
func BenchmarkTelemetryEnabledSpan(b *testing.B) {
	tr := New(nil)
	root := tr.Root("bench")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp := root.Child("host").Tag("host", "h").TagInt("n", i)
		sp.End()
	}
}
