package temporal

import (
	"fmt"

	"veridevops/internal/trace"
)

// Options configures a pattern monitor's loop.
type Options struct {
	// Clock supplies time; nil defaults to the wall clock.
	Clock Clock
	// Period is the polling period in ticks; 0 defaults to 10.
	Period trace.Time
	// Boundary is the maximum number of polling iterations; 0 defaults to 100.
	Boundary int
	// Weak selects weak finite-window semantics (see MonitoringLoop.Weak).
	Weak bool
}

func (o Options) normalize() Options {
	if o.Period <= 0 {
		o.Period = 10
	}
	if o.Boundary <= 0 {
		o.Boundary = 100
	}
	return o
}

func (o Options) loop() *MonitoringLoop {
	return &MonitoringLoop{
		Boundary: o.Boundary,
		Period:   o.Period,
		Clock:    o.Clock,
		Weak:     o.Weak,
	}
}

// GlobalUniversality monitors "Globally, it is always the case that P
// holds": the invariant pattern of D2.7.
type GlobalUniversality struct {
	*MonitoringLoop
	P Probe
}

// NewGlobalUniversality builds the monitor for probe p.
func NewGlobalUniversality(p Probe, opt Options) *GlobalUniversality {
	g := &GlobalUniversality{MonitoringLoop: opt.normalize().loop(), P: p}
	g.Inv = p.holds
	g.Post = p.holds
	return g
}

// TCTL renders the verified formula.
func (g *GlobalUniversality) TCTL() string { return fmt.Sprintf("A[] %s", g.P.Name) }

func (g *GlobalUniversality) String() string {
	return fmt.Sprintf("Globally, it is always the case that %s holds.", g.P.Name)
}

// Eventually monitors "P always eventually holds".
type Eventually struct {
	*MonitoringLoop
	P Probe
}

// NewEventually builds the monitor for probe p.
func NewEventually(p Probe, opt Options) *Eventually {
	e := &Eventually{MonitoringLoop: opt.normalize().loop(), P: p}
	e.Exit = p.holds
	e.Post = p.holds
	return e
}

// TCTL renders the verified formula.
func (e *Eventually) TCTL() string { return fmt.Sprintf("A<> %s", e.P.Name) }

func (e *Eventually) String() string {
	return fmt.Sprintf("%s eventually holds.", e.P.Name)
}

// GlobalResponseTimed monitors "Globally, it is always the case that if P
// holds, then S eventually holds within T time units".
type GlobalResponseTimed struct {
	*MonitoringLoop
	// P is the trigger, S the required response (the s and r constructor
	// parameters of the reference class).
	P, S Probe
	// T is the response deadline in ticks.
	T trace.Time

	pending  bool
	deadline trace.Time
	// Violations counts deadline misses observed during the window.
	Violations int
	// FirstViolationAt is the clock time of the first miss.
	FirstViolationAt trace.Time
}

// NewGlobalResponseTimed builds the monitor: trigger p, response s,
// deadline t ticks.
func NewGlobalResponseTimed(p, s Probe, t trace.Time, opt Options) *GlobalResponseTimed {
	g := &GlobalResponseTimed{MonitoringLoop: opt.normalize().loop(), P: p, S: s, T: t}
	g.Inv = g.step
	g.Post = func() bool { return g.step() && !g.pending }
	return g
}

// step advances the request/response state machine at the current instant
// and reports false on a deadline miss.
func (g *GlobalResponseTimed) step() bool {
	now := g.clock().Now()
	if g.pending && g.S.holds() {
		g.pending = false
	}
	if !g.pending && g.P.holds() && !g.S.holds() {
		g.pending = true
		g.deadline = now + g.T
	}
	if g.pending && now > g.deadline {
		g.Violations++
		if g.Violations == 1 {
			g.FirstViolationAt = now
		}
		return false
	}
	return true
}

// TCTL renders the verified formula.
func (g *GlobalResponseTimed) TCTL() string {
	return fmt.Sprintf("%s -->[<=%d] %s", g.P.Name, g.T, g.S.Name)
}

func (g *GlobalResponseTimed) String() string {
	return fmt.Sprintf("Globally, it is always the case that if %s holds, then %s eventually holds within %d time units.",
		g.P.Name, g.S.Name, g.T)
}

// GlobalResponseUntil monitors "Globally, it is always the case that if P
// holds then, unless R holds, Q will eventually hold".
type GlobalResponseUntil struct {
	*MonitoringLoop
	P, Q, R Probe

	pending bool
}

// NewGlobalResponseUntil builds the monitor: trigger p, response q,
// discharge r.
func NewGlobalResponseUntil(p, q, r Probe, opt Options) *GlobalResponseUntil {
	g := &GlobalResponseUntil{MonitoringLoop: opt.normalize().loop(), P: p, Q: q, R: r}
	g.Inv = func() bool { g.step(); return true }
	g.Post = func() bool { g.step(); return !g.pending }
	return g
}

func (g *GlobalResponseUntil) step() {
	if g.pending && (g.Q.holds() || g.R.holds()) {
		g.pending = false
	}
	if !g.pending && g.P.holds() && !g.Q.holds() && !g.R.holds() {
		g.pending = true
	}
}

// TCTL renders the verified formula.
func (g *GlobalResponseUntil) TCTL() string {
	return fmt.Sprintf("%s --> %s || %s", g.P.Name, g.Q.Name, g.R.Name)
}

func (g *GlobalResponseUntil) String() string {
	return fmt.Sprintf("Globally, it is always the case that if %s holds then, unless %s holds, %s will eventually hold.",
		g.P.Name, g.R.Name, g.Q.Name)
}

// GlobalUniversalityTimed monitors the timed invariant "P holds throughout
// a window of T time units". It inherits the GlobalUniversality behaviour
// with an explicit time bound derived from the loop boundary, mirroring the
// reference subclassing.
type GlobalUniversalityTimed struct {
	*GlobalUniversality
	// T is the window length in ticks.
	T trace.Time
}

// NewGlobalUniversalityTimed builds the windowed-invariant monitor. The
// loop boundary is derived from the window length and polling period.
func NewGlobalUniversalityTimed(p Probe, t trace.Time, opt Options) *GlobalUniversalityTimed {
	opt = opt.normalize()
	iters := int(t / opt.Period)
	if trace.Time(iters)*opt.Period < t {
		iters++
	}
	if iters <= 0 {
		iters = 1
	}
	opt.Boundary = iters
	return &GlobalUniversalityTimed{
		GlobalUniversality: NewGlobalUniversality(p, opt),
		T:                  t,
	}
}

// TCTL renders the verified formula; the bounded invariant is expressed
// through its dual bounded-possibly form, which the tctl parser accepts.
func (g *GlobalUniversalityTimed) TCTL() string {
	return fmt.Sprintf("!(E<>[<=%d] !%s)", g.T, g.P.Name)
}

func (g *GlobalUniversalityTimed) String() string {
	return fmt.Sprintf("It is always the case that %s holds during the first %d time units.", g.P.Name, g.T)
}

// AfterUntilUniversality monitors "After Q, it is always the case that P
// holds until R holds". The monitor re-arms on every Q occurrence after an
// R discharge.
type AfterUntilUniversality struct {
	*MonitoringLoop
	Q, P, R Probe

	armed bool
	// Activations counts how many times the scope opened.
	Activations int
}

// NewAfterUntilUniversality builds the monitor with scope opener q, body p
// and scope closer r (the constructor parameter order of the reference
// class).
func NewAfterUntilUniversality(q, p, r Probe, opt Options) *AfterUntilUniversality {
	a := &AfterUntilUniversality{MonitoringLoop: opt.normalize().loop(), Q: q, P: p, R: r}
	a.Inv = a.step
	a.Post = a.step
	return a
}

// step advances the scope state machine; false means p was violated inside
// an open scope.
func (a *AfterUntilUniversality) step() bool {
	if a.armed && a.R.holds() {
		a.armed = false
	}
	if !a.armed && a.Q.holds() && !a.R.holds() {
		a.armed = true
		a.Activations++
	}
	if a.armed && !a.P.holds() {
		return false
	}
	return true
}

// TCTL renders the verified formula.
func (a *AfterUntilUniversality) TCTL() string {
	return fmt.Sprintf("A[] (%s && !%s -> A[%s U %s] || A[] %s)",
		a.Q.Name, a.R.Name, a.P.Name, a.R.Name, a.P.Name)
}

func (a *AfterUntilUniversality) String() string {
	return fmt.Sprintf("After %s, it is always the case that %s holds until %s holds.",
		a.Q.Name, a.P.Name, a.R.Name)
}
