package temporal

import (
	"veridevops/internal/core"
	"veridevops/internal/trace"
)

// Probe is a named checkable condition: the P/Q/R/S parameters of the
// temporal patterns. The name appears in the TCTL rendering of the pattern;
// the Checkable supplies the live truth value.
type Probe struct {
	Name string
	C    core.Checkable
}

// NewProbe pairs a name with a checkable condition.
func NewProbe(name string, c core.Checkable) Probe { return Probe{Name: name, C: c} }

// BoolProbe makes a probe from a boolean thunk.
func BoolProbe(name string, f func() bool) Probe {
	return Probe{Name: name, C: core.Predicate(f)}
}

// TraceProbe makes a probe that reads the named boolean signal of a trace
// at the clock's current time. Combined with a SimClock it replays recorded
// executions through the live monitors in virtual time.
func TraceProbe(tr *trace.Trace, signal string, clk Clock) Probe {
	return Probe{
		Name: signal,
		C:    core.Predicate(func() bool { return tr.BoolAt(signal, clk.Now()) }),
	}
}

// holds reduces a probe check to a boolean: INCOMPLETE counts as not
// holding (the conservative reading used throughout the monitors).
func (p Probe) holds() bool { return p.C.Check() == core.CheckPass }
