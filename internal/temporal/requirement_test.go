package temporal

import (
	"testing"

	"veridevops/internal/core"
)

func TestTemporalRequirement(t *testing.T) {
	opt, _ := simOpts(10, 5)
	mon := NewGlobalUniversality(BoolProbe("p", func() bool { return true }), opt)
	req := NewRequirement(core.Finding{ID: "TMP-1", Sev: "medium", Desc: "p must always hold"}, mon)

	if req.FindingID() != "TMP-1" {
		t.Errorf("FindingID = %q", req.FindingID())
	}
	if req.Check() != core.CheckPass {
		t.Error("monitor passes; requirement must pass")
	}
	if req.Enforce() != core.EnforceIncomplete {
		t.Error("temporal requirements are not enforceable by mutation")
	}
	n := req.Notations()
	if n["tctl"] != "A[] p" {
		t.Errorf("tctl notation = %q", n["tctl"])
	}
	if n["text"] == "" {
		t.Error("text notation missing")
	}
}

func TestTemporalRequirementNilMonitor(t *testing.T) {
	req := NewRequirement(core.Finding{ID: "TMP-2", Desc: "d"}, nil)
	if req.Check() != core.CheckIncomplete {
		t.Error("nil monitor should be INCOMPLETE")
	}
	if req.Notations()["text"] != "d" {
		t.Error("nil monitor should fall back to the description")
	}
}

func TestTemporalRequirementInCatalog(t *testing.T) {
	opt, clk := simOpts(10, 10)
	mon := NewGlobalUniversality(BoolProbe("p", func() bool { return clk.Now() < 50 }), opt)
	req := NewRequirement(core.Finding{ID: "TMP-3"}, mon)
	cat := core.NewCatalog()
	cat.MustRegister(req)
	rep := cat.Run(core.CheckOnly)
	if _, fail, _ := rep.Counts(); fail != 1 {
		t.Errorf("violating temporal requirement must FAIL in catalogue runs:\n%s", rep)
	}
}
