// Package temporal implements the rqcode.patterns.temporal catalogue of
// VeriDevOps D2.7: temporal security-requirement patterns realised as
// polling monitors (MonitoringLoop and its specialisations
// GlobalUniversality, Eventually, GlobalResponseTimed, GlobalResponseUntil,
// GlobalUniversalityTimed and AfterUntilUniversality).
//
// Each pattern is a core.Checkable whose Check() drives a monitoring loop
// against a Clock, and additionally reports the TCTL formula it verifies,
// exactly as the Java reference classes expose a TCTL() operation. Monitors
// are clock-agnostic: production code uses the wall clock, tests and the
// benchmark harness a simulated clock in virtual time.
package temporal

import (
	"sync"
	"time"

	"veridevops/internal/trace"
)

// Clock supplies time to monitoring loops. One tick is one millisecond when
// backed by the wall clock.
type Clock interface {
	// Now returns the current time in ticks.
	Now() trace.Time
	// Sleep advances time by d ticks.
	Sleep(d trace.Time)
}

// WallClock is a Clock backed by the real time.Now, with millisecond ticks.
type WallClock struct{ start time.Time }

// NewWallClock returns a wall clock whose tick 0 is now.
func NewWallClock() *WallClock { return &WallClock{start: time.Now()} }

// Now returns elapsed wall milliseconds since the clock was created.
func (c *WallClock) Now() trace.Time { return time.Since(c.start).Milliseconds() }

// Sleep blocks for d milliseconds.
func (c *WallClock) Sleep(d trace.Time) { time.Sleep(time.Duration(d) * time.Millisecond) }

// SimClock is a deterministic virtual clock: Sleep advances Now without
// blocking. It is safe for concurrent use and supports wake callbacks so
// trace-driven probes can be fed as time advances.
type SimClock struct {
	mu  sync.Mutex
	now trace.Time
	// onAdvance, if set, runs after every advancement with the new time.
	onAdvance func(trace.Time)
}

// NewSimClock returns a virtual clock at tick 0.
func NewSimClock() *SimClock { return &SimClock{} }

// Now returns the current virtual time.
func (c *SimClock) Now() trace.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Sleep advances virtual time by d ticks immediately.
func (c *SimClock) Sleep(d trace.Time) {
	c.mu.Lock()
	c.now += d
	now := c.now
	cb := c.onAdvance
	c.mu.Unlock()
	if cb != nil {
		cb(now)
	}
}

// Advance is an explicit alias of Sleep for driver code readability.
func (c *SimClock) Advance(d trace.Time) { c.Sleep(d) }

// OnAdvance registers a callback invoked after every time advancement.
func (c *SimClock) OnAdvance(f func(trace.Time)) {
	c.mu.Lock()
	c.onAdvance = f
	c.mu.Unlock()
}
