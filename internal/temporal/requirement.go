package temporal

import (
	"fmt"

	"veridevops/internal/core"
)

// Monitor is the interface every temporal pattern of this package
// satisfies: a checkable with both a textual and a TCTL notation, the two
// representations the RQCODE approach says a requirement class should
// carry.
type Monitor interface {
	core.Checkable
	fmt.Stringer
	// TCTL renders the formula the monitor verifies.
	TCTL() string
}

var (
	_ Monitor = (*GlobalUniversality)(nil)
	_ Monitor = (*Eventually)(nil)
	_ Monitor = (*GlobalResponseTimed)(nil)
	_ Monitor = (*GlobalResponseUntil)(nil)
	_ Monitor = (*GlobalUniversalityTimed)(nil)
	_ Monitor = (*AfterUntilUniversality)(nil)
)

// Requirement pairs STIG-style finding metadata with a temporal monitor,
// making a temporal property a first-class RQCODE requirement that can be
// registered in catalogues alongside configuration findings. This mirrors
// the D2.7 example where temporal patterns are combined with Windows 10
// STIG requirements in one Main program.
type Requirement struct {
	core.Finding
	Monitor Monitor
}

// NewRequirement binds metadata to a monitor.
func NewRequirement(f core.Finding, m Monitor) *Requirement {
	return &Requirement{Finding: f, Monitor: m}
}

// Check runs the monitoring loop to a verdict.
func (r *Requirement) Check() core.CheckStatus {
	if r.Monitor == nil {
		return core.CheckIncomplete
	}
	return r.Monitor.Check()
}

// Enforce is declared so temporal requirements can live in enforceable
// catalogues; temporal properties cannot be enforced by mutation, so it
// reports INCOMPLETE, surfacing them in reports as needing manual action.
func (r *Requirement) Enforce() core.EnforcementStatus {
	return core.EnforceIncomplete
}

// Notations returns the requirement's representations: the natural-
// language reading and the TCTL formula.
func (r *Requirement) Notations() map[string]string {
	if r.Monitor == nil {
		return map[string]string{"text": r.Description()}
	}
	return map[string]string{
		"text": r.Monitor.String(),
		"tctl": r.Monitor.TCTL(),
	}
}

var _ core.CheckableEnforceableRequirement = (*Requirement)(nil)
