package temporal

import (
	"veridevops/internal/core"
	"veridevops/internal/trace"
)

// MonitoringLoop is the polling engine shared by all temporal patterns,
// mirroring the rqcode.patterns.temporal.MonitoringLoop reference class: a
// service that periodically evaluates hook predicates until an exit
// condition or an iteration boundary is reached.
//
// The hooks correspond one-to-one to the reference operations:
//
//	precondition  — must hold when the loop starts, otherwise INCOMPLETE
//	invariant     — must hold at every polling instant, otherwise FAIL
//	exitCondition — stops the loop early (goal observed / scope closed)
//	postcondition — decides the verdict when the loop stops
//	variant       — the decreasing iteration counter (Boundary down to 0)
//	sleepMilliseconds — the polling period
type MonitoringLoop struct {
	// Boundary is the maximum number of polling iterations (the initial
	// value of the loop variant).
	Boundary int
	// Period is the polling period in clock ticks (sleepMilliseconds in
	// the reference class).
	Period trace.Time
	// Clock supplies time; nil defaults to a wall clock.
	Clock Clock

	// Weak selects weak finite-window semantics: an exhausted boundary
	// with an unsatisfied postcondition yields INCOMPLETE ("not yet
	// observed") instead of FAIL. The VeriDevOps monitors use the strong
	// reading by default, matching tctl's finite-trace semantics.
	Weak bool

	// Hooks. Nil hooks default to: precondition true, invariant true,
	// exitCondition false, postcondition true.
	Pre, Inv, Exit, Post func() bool
}

func (m *MonitoringLoop) clock() Clock {
	if m.Clock == nil {
		m.Clock = NewWallClock()
	}
	return m.Clock
}

func (m *MonitoringLoop) pre() bool {
	return m.Pre == nil || m.Pre()
}

func (m *MonitoringLoop) inv() bool {
	return m.Inv == nil || m.Inv()
}

func (m *MonitoringLoop) exit() bool {
	return m.Exit != nil && m.Exit()
}

func (m *MonitoringLoop) post() bool {
	return m.Post == nil || m.Post()
}

// Variant returns the value of the loop variant after i iterations: the
// reference class exposes it to make termination evident.
func (m *MonitoringLoop) Variant(i int) int { return m.Boundary - i }

// Check runs the monitoring loop to a verdict. The loop polls at every
// Period ticks, at most Boundary times:
//
//	FAIL        — the invariant was violated at some polling instant
//	PASS        — the loop ended (exit or boundary) with the postcondition
//	INCOMPLETE  — the precondition did not hold, or (weak mode) the
//	              boundary was exhausted without the postcondition
func (m *MonitoringLoop) Check() core.CheckStatus {
	clk := m.clock()
	if !m.pre() {
		return core.CheckIncomplete
	}
	for i := 0; i < m.Boundary; i++ {
		if m.exit() {
			break
		}
		if !m.inv() {
			return core.CheckFail
		}
		clk.Sleep(m.Period)
	}
	if m.post() {
		return core.CheckPass
	}
	if m.Weak {
		return core.CheckIncomplete
	}
	return core.CheckFail
}

var _ core.Checkable = (*MonitoringLoop)(nil)
