package temporal

import (
	"strings"
	"testing"

	"veridevops/internal/core"
	"veridevops/internal/tctl"
	"veridevops/internal/trace"
)

// simOpts returns deterministic virtual-time options.
func simOpts(period trace.Time, boundary int) (Options, *SimClock) {
	clk := NewSimClock()
	return Options{Clock: clk, Period: period, Boundary: boundary}, clk
}

func TestSimClock(t *testing.T) {
	clk := NewSimClock()
	if clk.Now() != 0 {
		t.Fatal("fresh clock must be at 0")
	}
	var seen trace.Time
	clk.OnAdvance(func(now trace.Time) { seen = now })
	clk.Sleep(25)
	clk.Advance(5)
	if clk.Now() != 30 || seen != 30 {
		t.Errorf("Now=%d seen=%d, want 30", clk.Now(), seen)
	}
}

func TestWallClockMonotonic(t *testing.T) {
	clk := NewWallClock()
	a := clk.Now()
	clk.Sleep(1)
	if b := clk.Now(); b < a {
		t.Errorf("wall clock went backwards: %d -> %d", a, b)
	}
}

func TestGlobalUniversalityHolds(t *testing.T) {
	opt, _ := simOpts(10, 20)
	g := NewGlobalUniversality(BoolProbe("p", func() bool { return true }), opt)
	if got := g.Check(); got != core.CheckPass {
		t.Errorf("Check = %v, want PASS", got)
	}
}

func TestGlobalUniversalityDetectsViolation(t *testing.T) {
	opt, clk := simOpts(10, 20)
	// p drops at t=55.
	g := NewGlobalUniversality(BoolProbe("p", func() bool { return clk.Now() < 55 }), opt)
	if got := g.Check(); got != core.CheckFail {
		t.Errorf("Check = %v, want FAIL", got)
	}
	// Detection happens at the first poll after the drop: t=60.
	if clk.Now() != 60 {
		t.Errorf("violation detected at %d, want 60 (first poll after drop)", clk.Now())
	}
}

func TestGlobalUniversalityTCTL(t *testing.T) {
	opt, _ := simOpts(10, 10)
	g := NewGlobalUniversality(BoolProbe("p", func() bool { return true }), opt)
	if g.TCTL() != "A[] p" {
		t.Errorf("TCTL = %q", g.TCTL())
	}
	if _, err := tctl.Parse(g.TCTL()); err != nil {
		t.Errorf("TCTL output must parse: %v", err)
	}
	if !strings.Contains(g.String(), "always the case that p holds") {
		t.Errorf("String = %q", g.String())
	}
}

func TestEventuallyObserved(t *testing.T) {
	opt, clk := simOpts(10, 50)
	e := NewEventually(BoolProbe("p", func() bool { return clk.Now() >= 120 }), opt)
	if got := e.Check(); got != core.CheckPass {
		t.Errorf("Check = %v, want PASS", got)
	}
	if clk.Now() != 120 {
		t.Errorf("exit at %d, want 120", clk.Now())
	}
}

func TestEventuallyStrongFailure(t *testing.T) {
	opt, _ := simOpts(10, 10)
	e := NewEventually(BoolProbe("p", func() bool { return false }), opt)
	if got := e.Check(); got != core.CheckFail {
		t.Errorf("Check = %v, want FAIL (strong semantics)", got)
	}
}

func TestEventuallyWeakIncomplete(t *testing.T) {
	opt, _ := simOpts(10, 10)
	opt.Weak = true
	e := NewEventually(BoolProbe("p", func() bool { return false }), opt)
	if got := e.Check(); got != core.CheckIncomplete {
		t.Errorf("Check = %v, want INCOMPLETE (weak semantics)", got)
	}
	if _, err := tctl.Parse(e.TCTL()); err != nil {
		t.Errorf("TCTL output must parse: %v", err)
	}
}

func TestGlobalResponseTimedServedInTime(t *testing.T) {
	opt, clk := simOpts(10, 100)
	trigger := BoolProbe("req", func() bool { return clk.Now() == 100 })
	response := BoolProbe("ack", func() bool { return clk.Now() >= 140 })
	g := NewGlobalResponseTimed(trigger, response, 50, opt)
	if got := g.Check(); got != core.CheckPass {
		t.Errorf("Check = %v, want PASS (ack 40 ticks after req, deadline 50)", got)
	}
	if g.Violations != 0 {
		t.Errorf("Violations = %d, want 0", g.Violations)
	}
}

func TestGlobalResponseTimedDeadlineMiss(t *testing.T) {
	opt, clk := simOpts(10, 100)
	trigger := BoolProbe("req", func() bool { return clk.Now() == 100 })
	response := BoolProbe("ack", func() bool { return false })
	g := NewGlobalResponseTimed(trigger, response, 50, opt)
	if got := g.Check(); got != core.CheckFail {
		t.Errorf("Check = %v, want FAIL", got)
	}
	if g.Violations == 0 {
		t.Error("a violation must be recorded")
	}
	// First miss is detected at the first poll after deadline 150, i.e. 160.
	if g.FirstViolationAt != 160 {
		t.Errorf("FirstViolationAt = %d, want 160", g.FirstViolationAt)
	}
	if _, err := tctl.Parse(g.TCTL()); err != nil {
		t.Errorf("TCTL output must parse: %v", err)
	}
}

func TestGlobalResponseTimedSimultaneousAck(t *testing.T) {
	opt, clk := simOpts(10, 20)
	both := BoolProbe("x", func() bool { return clk.Now() == 50 })
	g := NewGlobalResponseTimed(both, both, 5, opt)
	if got := g.Check(); got != core.CheckPass {
		t.Errorf("Check = %v, want PASS (response simultaneous with trigger)", got)
	}
}

func TestGlobalResponseUntilServed(t *testing.T) {
	opt, clk := simOpts(10, 50)
	p := BoolProbe("p", func() bool { return clk.Now() == 50 })
	q := BoolProbe("q", func() bool { return clk.Now() >= 200 })
	r := BoolProbe("r", func() bool { return false })
	g := NewGlobalResponseUntil(p, q, r, opt)
	if got := g.Check(); got != core.CheckPass {
		t.Errorf("Check = %v, want PASS", got)
	}
}

func TestGlobalResponseUntilDischargedByR(t *testing.T) {
	opt, clk := simOpts(10, 50)
	p := BoolProbe("p", func() bool { return clk.Now() == 50 })
	q := BoolProbe("q", func() bool { return false })
	r := BoolProbe("r", func() bool { return clk.Now() >= 200 })
	g := NewGlobalResponseUntil(p, q, r, opt)
	if got := g.Check(); got != core.CheckPass {
		t.Errorf("Check = %v, want PASS (discharged by r)", got)
	}
}

func TestGlobalResponseUntilUnserved(t *testing.T) {
	opt, clk := simOpts(10, 50)
	p := BoolProbe("p", func() bool { return clk.Now() == 50 })
	never := BoolProbe("n", func() bool { return false })
	g := NewGlobalResponseUntil(p, never, never, opt)
	if got := g.Check(); got != core.CheckFail {
		t.Errorf("Check = %v, want FAIL", got)
	}
	if _, err := tctl.Parse(g.TCTL()); err != nil {
		t.Errorf("TCTL output must parse: %v", err)
	}
}

func TestGlobalUniversalityTimedWindow(t *testing.T) {
	opt, clk := simOpts(10, 0) // boundary derived from window
	g := NewGlobalUniversalityTimed(BoolProbe("p", func() bool { return clk.Now() <= 500 }), 200, opt)
	if g.Boundary != 20 {
		t.Errorf("Boundary = %d, want 20 (200 ticks / period 10)", g.Boundary)
	}
	if got := g.Check(); got != core.CheckPass {
		t.Errorf("Check = %v, want PASS (p holds past the window)", got)
	}
	if _, err := tctl.Parse(g.TCTL()); err != nil {
		t.Errorf("TCTL output must parse: %v", err)
	}
}

func TestGlobalUniversalityTimedViolation(t *testing.T) {
	opt, clk := simOpts(10, 0)
	g := NewGlobalUniversalityTimed(BoolProbe("p", func() bool { return clk.Now() < 100 }), 200, opt)
	if got := g.Check(); got != core.CheckFail {
		t.Errorf("Check = %v, want FAIL (p drops inside the window)", got)
	}
}

func TestGlobalUniversalityTimedBoundaryRounding(t *testing.T) {
	opt, _ := simOpts(30, 0)
	g := NewGlobalUniversalityTimed(BoolProbe("p", func() bool { return true }), 100, opt)
	if g.Boundary != 4 { // ceil(100/30)
		t.Errorf("Boundary = %d, want 4", g.Boundary)
	}
	g2 := NewGlobalUniversalityTimed(BoolProbe("p", func() bool { return true }), 0, opt)
	if g2.Boundary != 1 {
		t.Errorf("Boundary = %d, want 1 for zero window", g2.Boundary)
	}
}

func TestAfterUntilUniversality(t *testing.T) {
	opt, clk := simOpts(10, 100)
	q := BoolProbe("q", func() bool { return clk.Now() == 100 })
	p := BoolProbe("p", func() bool { return clk.Now() >= 100 && clk.Now() <= 500 })
	r := BoolProbe("r", func() bool { return clk.Now() >= 400 })
	a := NewAfterUntilUniversality(q, p, r, opt)
	if got := a.Check(); got != core.CheckPass {
		t.Errorf("Check = %v, want PASS", got)
	}
	if a.Activations != 1 {
		t.Errorf("Activations = %d, want 1", a.Activations)
	}
	if _, err := tctl.Parse(a.TCTL()); err != nil {
		t.Errorf("TCTL output must parse: %v", err)
	}
}

func TestAfterUntilUniversalityViolation(t *testing.T) {
	opt, clk := simOpts(10, 100)
	q := BoolProbe("q", func() bool { return clk.Now() == 100 })
	p := BoolProbe("p", func() bool { return clk.Now() < 300 }) // drops while armed
	r := BoolProbe("r", func() bool { return false })
	a := NewAfterUntilUniversality(q, p, r, opt)
	if got := a.Check(); got != core.CheckFail {
		t.Errorf("Check = %v, want FAIL", got)
	}
}

func TestAfterUntilUniversalityNeverArmed(t *testing.T) {
	opt, _ := simOpts(10, 20)
	never := BoolProbe("q", func() bool { return false })
	pFalse := BoolProbe("p", func() bool { return false })
	a := NewAfterUntilUniversality(never, pFalse, never, opt)
	if got := a.Check(); got != core.CheckPass {
		t.Errorf("Check = %v, want PASS (vacuous: scope never opens)", got)
	}
	if a.Activations != 0 {
		t.Errorf("Activations = %d, want 0", a.Activations)
	}
}

func TestAfterUntilUniversalityRearms(t *testing.T) {
	opt, clk := simOpts(10, 100)
	q := BoolProbe("q", func() bool { n := clk.Now(); return n == 100 || n == 500 })
	p := BoolProbe("p", func() bool { n := clk.Now(); return (n >= 100 && n < 300) || n >= 500 })
	r := BoolProbe("r", func() bool { n := clk.Now(); return n >= 300 && n < 500 })
	a := NewAfterUntilUniversality(q, p, r, opt)
	if got := a.Check(); got != core.CheckPass {
		t.Errorf("Check = %v, want PASS", got)
	}
	if a.Activations != 2 {
		t.Errorf("Activations = %d, want 2 (re-armed after discharge)", a.Activations)
	}
}

func TestMonitoringLoopPrecondition(t *testing.T) {
	m := &MonitoringLoop{Boundary: 5, Period: 1, Clock: NewSimClock(),
		Pre: func() bool { return false }}
	if got := m.Check(); got != core.CheckIncomplete {
		t.Errorf("Check = %v, want INCOMPLETE when precondition fails", got)
	}
}

func TestMonitoringLoopVariant(t *testing.T) {
	m := &MonitoringLoop{Boundary: 10}
	if m.Variant(0) != 10 || m.Variant(10) != 0 {
		t.Error("variant must decrease from Boundary to 0")
	}
}

func TestMonitoringLoopDefaultsPass(t *testing.T) {
	m := &MonitoringLoop{Boundary: 3, Period: 1, Clock: NewSimClock()}
	if got := m.Check(); got != core.CheckPass {
		t.Errorf("Check = %v, want PASS with default hooks", got)
	}
}

func TestTraceProbeReplay(t *testing.T) {
	tr := trace.New()
	tr.SetBool("p", 0, true)
	tr.SetBool("p", 55, false)
	tr.SetEnd(200)

	clk := NewSimClock()
	opt := Options{Clock: clk, Period: 10, Boundary: 20}
	g := NewGlobalUniversality(TraceProbe(tr, "p", clk), opt)
	if got := g.Check(); got != core.CheckFail {
		t.Errorf("Check = %v, want FAIL (trace violates at 55)", got)
	}
	if clk.Now() != 60 {
		t.Errorf("detected at %d, want 60", clk.Now())
	}

	// Offline evaluation agrees with the live monitor.
	if tctl.Holds(tr, tctl.GlobalUniversality("p")) {
		t.Error("offline evaluation must agree: A[] p fails on this trace")
	}
}

func TestLiveAndOfflineAgreeOnResponse(t *testing.T) {
	tr := trace.New()
	trace.GenPulse(tr, "req", 100, 10)
	trace.GenPulse(tr, "ack", 130, 10)
	tr.SetEnd(1000)

	clk := NewSimClock()
	opt := Options{Clock: clk, Period: 5, Boundary: 200}
	g := NewGlobalResponseTimed(TraceProbe(tr, "req", clk), TraceProbe(tr, "ack", clk), 50, opt)
	live := g.Check() == core.CheckPass
	offline := tctl.Holds(tr, tctl.GlobalResponseTimed("req", "ack", 50))
	if live != offline {
		t.Errorf("live=%v offline=%v must agree", live, offline)
	}
	if !live {
		t.Error("ack within 30 <= 50 ticks must pass")
	}
}
