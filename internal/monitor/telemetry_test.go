package monitor

import (
	"bytes"
	"testing"

	"veridevops/internal/host"
	"veridevops/internal/stig"
	"veridevops/internal/telemetry"
)

// TestSchedulerSpansAndMetrics runs a monitored violation through
// auto-enforcement with tracing on and checks the emitted span tree —
// monitor.run → poll → check/alarm → enforce/attempt — plus the metric
// counters the run should have bumped.
func TestSchedulerSpansAndMetrics(t *testing.T) {
	h := host.NewUbuntu1804()
	var buf bytes.Buffer
	s := NewScheduler(10)
	s.AutoEnforce = true
	s.Trace = telemetry.New(&buf)
	s.Metrics = telemetry.NewMetrics()
	s.WatchEnforceable("V-219157", stig.NewV219157(h))

	s.Run(100, []TimedAction{
		{At: 50, Do: func() { h.Install("nis", "1") }},
	})
	if err := s.Trace.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	if len(s.Alarms()) != 1 {
		t.Fatalf("alarms = %d, want 1", len(s.Alarms()))
	}

	recs, err := telemetry.ReadJSONL(&buf)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	roots := telemetry.BuildTree(recs)
	if len(roots) != 1 || roots[0].Name != "monitor.run" {
		t.Fatalf("roots = %+v, want one monitor.run span", roots)
	}

	counts := map[string]int{}
	var alarm *telemetry.Node
	roots[0].Walk(func(n *telemetry.Node) {
		counts[n.Name]++
		if n.Name == "alarm" {
			alarm = n
		}
	})
	// Polls at t=0,10,...,100: eleven polls, each with one check span;
	// the alarm poll adds a second check to confirm the repair.
	if counts["poll"] != 11 {
		t.Errorf("poll spans = %d, want 11", counts["poll"])
	}
	if counts["check"] < 11 {
		t.Errorf("check spans = %d, want >= 11", counts["check"])
	}
	if counts["alarm"] != 1 || counts["enforce"] != 1 {
		t.Errorf("alarm/enforce spans = %d/%d, want 1/1", counts["alarm"], counts["enforce"])
	}
	if counts["attempt"] < counts["check"] {
		t.Errorf("attempt spans = %d, want >= one per check", counts["attempt"])
	}
	if alarm.Tags["requirement"] != "V-219157" || alarm.Tags["repaired"] != "true" {
		t.Errorf("alarm tags = %v, want requirement + repaired=true", alarm.Tags)
	}
	if enf := alarm.Find("enforce"); enf == nil || enf.Tags["result"] != "SUCCESS" {
		t.Errorf("enforce under alarm = %+v, want result=SUCCESS", enf)
	}

	if got := s.Metrics.Counter("monitor.polls"); got != 11 {
		t.Errorf("monitor.polls = %d, want 11", got)
	}
	if got := s.Metrics.Counter("monitor.alarms"); got != 1 {
		t.Errorf("monitor.alarms = %d, want 1", got)
	}
	if got := s.Metrics.Counter("monitor.repairs"); got != 1 {
		t.Errorf("monitor.repairs = %d, want 1", got)
	}
	if got := s.Metrics.Counter("monitor.enforcements"); got != 1 {
		t.Errorf("monitor.enforcements = %d, want 1", got)
	}
	if h := s.Metrics.Histogram("monitor.check_wall"); int(h.Count) != counts["check"] {
		t.Errorf("monitor.check_wall count = %d, want %d", h.Count, counts["check"])
	}
}
