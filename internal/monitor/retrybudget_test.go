package monitor

import (
	"testing"
	"time"

	"veridevops/internal/core"
	"veridevops/internal/engine"
)

// panicky is a Checkable that panics until calm, then passes.
type panicky struct {
	calls int
	calm  bool
}

func (p *panicky) Check() core.CheckStatus {
	p.calls++
	if !p.calm {
		panic("probe exploded")
	}
	return core.CheckPass
}

func newBudgetScheduler(attempts int) *Scheduler {
	s := NewScheduler(10)
	s.Checks = engine.Policy{MaxAttempts: attempts, Sleep: func(time.Duration) {}}
	s.RetryBudget = &RetryBudgetPolicy{PanicStreak: 2}
	return s
}

func TestRetryBudgetShrinksForChronicPanics(t *testing.T) {
	s := newBudgetScheduler(8)
	p := &panicky{}
	s.Watch("V-BAD", p)

	// Each poll panics through the whole budget. PanicStreak=2 halves the
	// budget every second poll: 8 -> 4 -> 2 -> 1.
	for i := 0; i < 6; i++ {
		s.poll(0, nil)
	}
	if got := s.RetryBudgets()["V-BAD"]; got != 1 {
		t.Errorf("budget after 6 panicking polls = %d, want 1", got)
	}

	// At the floor, one poll costs exactly one attempt.
	before := s.CheckAttempts
	s.poll(0, nil)
	if spent := s.CheckAttempts - before; spent != 1 {
		t.Errorf("floored poll spent %d attempts, want 1", spent)
	}
}

func TestRetryBudgetRestoredByCleanPoll(t *testing.T) {
	s := newBudgetScheduler(4)
	p := &panicky{}
	s.Watch("V-FLAKY", p)

	for i := 0; i < 4; i++ {
		s.poll(0, nil) // shrink: 4 -> 2 -> 1
	}
	if got := s.RetryBudgets()["V-FLAKY"]; got != 1 {
		t.Fatalf("budget = %d, want 1 after chronic panics", got)
	}
	p.calm = true
	s.poll(0, nil)
	if got := s.RetryBudgets()["V-FLAKY"]; got != 4 {
		t.Errorf("budget after clean poll = %d, want base 4", got)
	}
}

func TestRetryBudgetLeavesHealthyEntriesAlone(t *testing.T) {
	s := newBudgetScheduler(4)
	s.Watch("V-OK", core.Const(core.CheckPass))
	s.Watch("V-BAD", &panicky{})
	for i := 0; i < 4; i++ {
		s.poll(0, nil)
	}
	budgets := s.RetryBudgets()
	if budgets["V-OK"] != 4 {
		t.Errorf("healthy entry budget = %d, want 4", budgets["V-OK"])
	}
	if budgets["V-BAD"] != 1 {
		t.Errorf("panicking entry budget = %d, want 1", budgets["V-BAD"])
	}
}

func TestRetryBudgetDisabledKeepsFullBudget(t *testing.T) {
	s := NewScheduler(10)
	s.Checks = engine.Policy{MaxAttempts: 4, Sleep: func(time.Duration) {}}
	p := &panicky{}
	s.Watch("V-BAD", p)
	for i := 0; i < 5; i++ {
		s.poll(0, nil)
	}
	// Without RetryBudget every poll burns the whole 4-attempt budget.
	if s.CheckAttempts != 20 {
		t.Errorf("CheckAttempts = %d, want 20 (no budget adaptation)", s.CheckAttempts)
	}
}

func TestRetryBudgetDefaults(t *testing.T) {
	p := &RetryBudgetPolicy{}
	minAttempts, streak := p.normalized()
	if minAttempts != 1 || streak != 3 {
		t.Errorf("defaults = (%d,%d), want (1,3)", minAttempts, streak)
	}
}
