package monitor

import (
	"testing"

	"veridevops/internal/host"
	"veridevops/internal/stig"
	"veridevops/internal/trace"
)

func TestAdaptiveBacksOffWhenHealthy(t *testing.T) {
	mk := func(adaptive bool) *Scheduler {
		h := host.NewUbuntu1804()
		s := NewScheduler(10)
		if adaptive {
			s.Adaptive = &AdaptivePolicy{}
		}
		s.Watch("V-219157", stig.NewV219157(h))
		s.Run(5000, nil)
		return s
	}
	fixed := mk(false)
	adaptive := mk(true)
	if adaptive.Polls >= fixed.Polls {
		t.Errorf("adaptive should poll less on a healthy host: %d vs %d",
			adaptive.Polls, fixed.Polls)
	}
	// Fixed polling: one poll per period across the horizon.
	if fixed.Polls < 490 || fixed.Polls > 510 {
		t.Errorf("fixed polls = %d, want ~500", fixed.Polls)
	}
	// Backoff caps at 8x: at steady state ~one poll per 80 ticks.
	if adaptive.Polls > 120 {
		t.Errorf("adaptive polls = %d, want well under fixed", adaptive.Polls)
	}
}

func TestAdaptiveStillDetects(t *testing.T) {
	h := host.NewUbuntu1804()
	s := NewScheduler(10)
	s.Adaptive = &AdaptivePolicy{MaxPeriod: 80, CleanStreak: 2}
	s.Watch("V-219157", stig.NewV219157(h))
	inject := trace.Time(1000)
	s.Run(2000, []TimedAction{{At: inject, Do: func() { h.Install("nis", "1") }}})
	alarms := s.Alarms()
	if len(alarms) != 1 {
		t.Fatalf("alarms = %d, want 1", len(alarms))
	}
	// Detection latency is bounded by the max period.
	if lat := alarms[0].At - inject; lat < 0 || lat > 80 {
		t.Errorf("latency = %d, want within the 80-tick max period", lat)
	}
}

func TestAdaptiveSnapsBackAfterViolation(t *testing.T) {
	h := host.NewUbuntu1804()
	s := NewScheduler(10)
	s.AutoEnforce = true
	s.Adaptive = &AdaptivePolicy{MaxPeriod: 160, CleanStreak: 2}
	s.WatchEnforceable("V-219157", stig.NewV219157(h))

	// Two injections: the second lands while the monitor would be backed
	// off had the first alarm not reset the period.
	s.Run(4000, []TimedAction{
		{At: 2000, Do: func() { h.Install("nis", "1") }},
		{At: 2100, Do: func() { h.Install("nis", "1") }},
	})
	alarms := s.Alarms()
	if len(alarms) != 2 {
		t.Fatalf("alarms = %d, want 2", len(alarms))
	}
	// After the first alarm the period snapped back to 10, so the second
	// detection is tight.
	if lat := alarms[1].At - 2100; lat > 40 {
		t.Errorf("post-reset latency = %d, want tight (<=40)", lat)
	}
}

func TestAdaptiveDefaults(t *testing.T) {
	s := NewScheduler(10)
	s.Adaptive = &AdaptivePolicy{}
	maxP, streak := s.adaptiveParams()
	if maxP != 80 || streak != 4 {
		t.Errorf("defaults = %d/%d, want 80/4", maxP, streak)
	}
	s.Adaptive = nil
	maxP, streak = s.adaptiveParams()
	if maxP != 10 || streak != 0 {
		t.Errorf("non-adaptive params = %d/%d", maxP, streak)
	}
}
