package monitor

import (
	"fmt"
	"sort"
	"strings"

	"veridevops/internal/trace"
)

// Per-requirement alarm summaries and alarm-trace export: operations teams
// consume protection results both as aggregate dashboards and as signal
// logs that the offline evaluators (tctl, tears) can audit.

// RequirementStats summarises alarms for one requirement.
type RequirementStats struct {
	Requirement string
	Alarms      int
	Repaired    int
	FirstAt     trace.Time
	LastAt      trace.Time
}

// PerRequirement groups alarms by requirement, sorted by requirement name.
func PerRequirement(alarms []Alarm) []RequirementStats {
	byReq := map[string]*RequirementStats{}
	for _, a := range alarms {
		st, ok := byReq[a.Requirement]
		if !ok {
			st = &RequirementStats{Requirement: a.Requirement, FirstAt: a.At}
			byReq[a.Requirement] = st
		}
		st.Alarms++
		if a.RepairedAt >= 0 {
			st.Repaired++
		}
		if a.At < st.FirstAt {
			st.FirstAt = a.At
		}
		if a.At > st.LastAt {
			st.LastAt = a.At
		}
	}
	out := make([]RequirementStats, 0, len(byReq))
	for _, st := range byReq {
		out = append(out, *st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Requirement < out[j].Requirement })
	return out
}

// Summary renders the per-requirement dashboard.
func Summary(alarms []Alarm) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %-8s %-10s %-10s %-10s\n", "REQUIREMENT", "ALARMS", "REPAIRED", "FIRST", "LAST")
	for _, st := range PerRequirement(alarms) {
		fmt.Fprintf(&b, "%-14s %-8d %-10d %-10d %-10d\n",
			st.Requirement, st.Alarms, st.Repaired, st.FirstAt, st.LastAt)
	}
	return b.String()
}

// AlarmTrace exports the alarm stream as a trace: one boolean pulse per
// alarm on the signal "alarm_<requirement>", plus an aggregated "alarm"
// signal. Requirement names are slugged into identifier-safe signal names
// ("V-219157" -> "V_219157") so the resulting trace feeds the offline
// evaluators directly, closing the loop between live protection and
// after-the-fact audit. Slugging is injective within one trace: distinct
// requirements whose naive slugs collide ("V-1" and "V_1" both map to
// "V_1") get a numeric disambiguation suffix in first-appearance order,
// so their pulse trains never merge.
func AlarmTrace(alarms []Alarm, end trace.Time) *trace.Trace {
	tr := trace.New()
	tr.SetBool("alarm", 0, false)
	slugs := newSlugger()
	for _, a := range alarms {
		slug := slugs.slug(a.Requirement)
		trace.GenPulse(tr, "alarm", a.At, 1)
		trace.GenPulse(tr, "alarm_"+slug, a.At, 1)
		if a.RepairedAt >= 0 {
			trace.GenPulse(tr, "repaired_"+slug, a.RepairedAt, 1)
		}
	}
	tr.SetEnd(end)
	return tr
}

// signalSlug maps a requirement name to an identifier-safe signal name.
// It is lossy ("V-1" and "V_1" both slug to "V_1"); slugger layers the
// collision handling that makes the assignment injective.
func signalSlug(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_':
			out = append(out, c)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}

// slugger assigns each requirement a stable, unique slug within one
// trace export. The first requirement to produce a given slug keeps it
// (so the common case matches the documented "V-219157" -> "V_219157"
// mapping and existing traces); later colliders get "_2", "_3", ...
// appended, probing further if the suffixed form is itself taken.
type slugger struct {
	byName map[string]string // requirement -> assigned slug
	owner  map[string]string // slug -> owning requirement
}

func newSlugger() *slugger {
	return &slugger{byName: map[string]string{}, owner: map[string]string{}}
}

func (s *slugger) slug(name string) string {
	if got, ok := s.byName[name]; ok {
		return got
	}
	base := signalSlug(name)
	slug := base
	for n := 2; ; n++ {
		if _, taken := s.owner[slug]; !taken {
			break
		}
		slug = fmt.Sprintf("%s_%d", base, n)
	}
	s.byName[name] = slug
	s.owner[slug] = name
	return slug
}
