package monitor

import (
	"strings"
	"testing"

	"veridevops/internal/core"
	"veridevops/internal/tctl"
	"veridevops/internal/tears"
	"veridevops/internal/trace"
)

func sampleAlarms() []Alarm {
	return []Alarm{
		{At: 10, Requirement: "V-1", RepairedAt: -1},
		{At: 30, Requirement: "V-1", Enforced: true, Enforcement: core.EnforceSuccess, RepairedAt: 30},
		{At: 20, Requirement: "V-2", RepairedAt: -1},
	}
}

func TestPerRequirement(t *testing.T) {
	stats := PerRequirement(sampleAlarms())
	if len(stats) != 2 {
		t.Fatalf("groups = %d", len(stats))
	}
	v1 := stats[0]
	if v1.Requirement != "V-1" || v1.Alarms != 2 || v1.Repaired != 1 {
		t.Errorf("V-1 stats = %+v", v1)
	}
	if v1.FirstAt != 10 || v1.LastAt != 30 {
		t.Errorf("V-1 times = %+v", v1)
	}
	if stats[1].Requirement != "V-2" || stats[1].Alarms != 1 {
		t.Errorf("V-2 stats = %+v", stats[1])
	}
}

func TestSummaryRendering(t *testing.T) {
	out := Summary(sampleAlarms())
	for _, want := range []string{"REQUIREMENT", "V-1", "V-2"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}

func TestAlarmTraceFeedsOfflineEvaluators(t *testing.T) {
	tr := AlarmTrace(sampleAlarms(), 100)

	// tctl: "some alarm eventually occurs" holds on this log.
	if !tctl.Holds(tr, tctl.GlobalEventually("alarm")) {
		t.Error("A<> alarm must hold on a log with alarms")
	}
	// tears: every V-1 alarm is repaired within 15 ticks. The t=10 alarm
	// is never repaired (the only repair pulse is at t=30, outside its
	// window), so the G/A must fail; the t=30 alarm is served on time.
	ga, err := tears.ParseGA("GA repair: when alarm_V_1 then repaired_V_1 within 15 ms")
	if err != nil {
		t.Fatal(err)
	}
	v := tears.Evaluate(tr, ga)
	if v.Passed() {
		t.Error("unrepaired alarm at t=10 must violate the repair G/A")
	}
	if v.Activations != 2 {
		t.Errorf("Activations = %d, want 2", v.Activations)
	}
}

// TestAlarmTraceSlugCollision is the regression test for the lossy
// signalSlug: "V-1" and "V_1" both naively slug to "V_1", which used to
// merge their pulse trains onto one alarm_V_1 signal. The slugger must
// keep them apart (first appearance keeps the plain slug, the collider
// is suffixed) and each signal must carry exactly its own pulses.
func TestAlarmTraceSlugCollision(t *testing.T) {
	tr := AlarmTrace([]Alarm{
		{At: 10, Requirement: "V-1", RepairedAt: -1},
		{At: 20, Requirement: "V_1", RepairedAt: -1},
		{At: 40, Requirement: "V-1", RepairedAt: -1},
	}, 100)

	if !tr.Has("alarm_V_1") || !tr.Has("alarm_V_1_2") {
		t.Fatalf("colliding requirements must get distinct signals, have %v", tr.Names())
	}
	// "V-1" appeared first and keeps the plain slug: pulses at 10 and 40.
	for at, want := range map[trace.Time]bool{10: true, 20: false, 40: true} {
		if got := tr.BoolAt("alarm_V_1", at); got != want {
			t.Errorf("alarm_V_1 at %d = %v, want %v", at, got, want)
		}
	}
	// "V_1" collided and was suffixed: only its own pulse at 20.
	for at, want := range map[trace.Time]bool{10: false, 20: true, 40: false} {
		if got := tr.BoolAt("alarm_V_1_2", at); got != want {
			t.Errorf("alarm_V_1_2 at %d = %v, want %v", at, got, want)
		}
	}
}

// TestSluggerStableAndInjective pins the assignment rules: repeated names
// reuse their slug, and a requirement literally named like a suffixed
// slug does not collide with the suffix probe.
func TestSluggerStableAndInjective(t *testing.T) {
	s := newSlugger()
	if a, b := s.slug("V-1"), s.slug("V-1"); a != b {
		t.Errorf("same requirement must keep its slug: %q vs %q", a, b)
	}
	got := map[string]bool{}
	for _, name := range []string{"V-1", "V_1_2", "V_1"} {
		slug := s.slug(name)
		if got[slug] {
			t.Errorf("slug %q assigned twice", slug)
		}
		got[slug] = true
	}
}

func TestAlarmTraceEmpty(t *testing.T) {
	tr := AlarmTrace(nil, 50)
	if tr.End() != 50 {
		t.Errorf("End = %d", tr.End())
	}
	if tctl.Holds(tr, tctl.GlobalEventually("alarm")) {
		t.Error("no alarms: A<> alarm must fail")
	}
}
