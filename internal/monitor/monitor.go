// Package monitor implements Reactive Protection at Operations (WP3 of the
// VeriDevOps framework): a scheduler that polls RQCODE requirements against
// the live environment, raises alarms on violations, optionally auto-
// remediates through the requirements' Enforce operation, and accounts
// detection/repair latencies — the measurements behind the E3 and E6
// experiments.
package monitor

import (
	"fmt"
	"sort"
	"strings"

	"veridevops/internal/core"
	"veridevops/internal/engine"
	"veridevops/internal/telemetry"
	"veridevops/internal/temporal"
	"veridevops/internal/trace"
)

// Alarm is one detected violation.
type Alarm struct {
	At          trace.Time
	Requirement string
	// Enforced reports whether auto-remediation ran.
	Enforced    bool
	Enforcement core.EnforcementStatus
	// RepairedAt is when a subsequent check passed again (only meaningful
	// when Enforced and the repair succeeded); -1 otherwise.
	RepairedAt trace.Time
}

func (a Alarm) String() string {
	s := fmt.Sprintf("t=%d %s VIOLATION", a.At, a.Requirement)
	if a.Enforced {
		s += fmt.Sprintf(" enforced=%s repaired_at=%d", a.Enforcement, a.RepairedAt)
	}
	return s
}

// entry is one monitored requirement.
type entry struct {
	name string
	c    core.Checkable
	e    core.Enforceable // nil when not auto-remediable
	// inViolation dedupes alarms: one alarm per violation episode.
	inViolation bool
	// budget is the entry's current attempt budget under RetryBudget; 0
	// means "not yet initialised from the base policy".
	budget int
	// panicStreak counts consecutive polls whose check panicked at least
	// once, the signal RetryBudget shrinks the budget on.
	panicStreak int
}

// TimedAction is an environment mutation scheduled at a virtual instant,
// used to inject violations during simulated runs.
type TimedAction struct {
	At trace.Time
	Do func()
}

// AdaptivePolicy backs polling off while the environment stays healthy:
// after CleanStreak consecutive violation-free polls the period doubles
// (capped at MaxPeriod); any violation snaps it back to the base period.
// The E3c ablation quantifies the polls-saved / latency-paid trade.
type AdaptivePolicy struct {
	// MaxPeriod caps the backoff (default 8x the base period).
	MaxPeriod trace.Time
	// CleanStreak is how many clean polls double the period (default 4).
	CleanStreak int
}

// RetryBudgetPolicy feeds the engine telemetry back into per-entry retry
// budgets, the retry analogue of AdaptivePolicy's period tuning: an entry
// whose checks keep panicking has its attempt budget halved after every
// PanicStreak consecutive panicking polls (floored at MinAttempts), so a
// chronically broken check stops burning retries the whole fleet pays
// for. A clean poll (no panics) snaps the budget back to the base policy,
// mirroring how AdaptivePolicy snaps the period back on a violation.
type RetryBudgetPolicy struct {
	// MinAttempts floors the shrinking budget (default 1).
	MinAttempts int
	// PanicStreak is how many consecutive panicking polls halve the budget
	// (default 3).
	PanicStreak int
}

func (p *RetryBudgetPolicy) normalized() (minAttempts, streak int) {
	minAttempts, streak = p.MinAttempts, p.PanicStreak
	if minAttempts < 1 {
		minAttempts = 1
	}
	if streak < 1 {
		streak = 3
	}
	return
}

// Scheduler polls registered requirements at a fixed period.
type Scheduler struct {
	// Clock supplies time; nil defaults to a simulated clock.
	Clock temporal.Clock
	// Period is the polling period in ticks (default 10).
	Period trace.Time
	// AutoEnforce turns on remediation of failing enforceable entries.
	AutoEnforce bool
	// Adaptive, when non-nil, enables backoff polling.
	Adaptive *AdaptivePolicy
	// RetryBudget, when non-nil, enables adaptive per-entry retry budgets:
	// chronically panicking checks get their Checks.MaxAttempts shrunk, a
	// clean poll restores it (see RetryBudgetPolicy).
	RetryBudget *RetryBudgetPolicy
	// Checks is the per-check resilience policy: every poll check runs
	// through the fault-tolerant engine, so a panicking requirement
	// raises an alarm (fail-closed, status ERROR) instead of killing the
	// scheduler. The zero value means one attempt, no timeout. Retry
	// backoff sleeps in real time — configure Policy.Sleep when driving a
	// virtual clock.
	Checks engine.Policy
	// Trace, when non-nil, records each Run as a span tree: a
	// "monitor.run" root, one "poll" span per round (tagged t and
	// violated), "check" spans per entry (tagged requirement and status,
	// with the engine's per-attempt spans below), an "alarm" span per
	// raised alarm and an "enforce" span around remediation. Nil —
	// telemetry disabled — adds zero allocations to the poll loop.
	Trace *telemetry.Tracer
	// Metrics, when non-nil, accumulates monitor.polls / monitor.checks /
	// monitor.alarms / monitor.repairs / monitor.enforcements counters
	// and the monitor.check_wall duration histogram.
	Metrics *telemetry.Metrics

	entries []*entry
	alarms  []Alarm
	// Polls counts polling rounds performed by Run.
	Polls int
	// CheckAttempts / CheckRetries / CheckPanics / EnforcePanics are the
	// engine telemetry accumulated over the run.
	CheckAttempts int
	CheckRetries  int
	CheckPanics   int
	EnforcePanics int
}

// NewScheduler returns a scheduler with the given polling period over a
// fresh simulated clock.
func NewScheduler(period trace.Time) *Scheduler {
	if period <= 0 {
		period = 10
	}
	return &Scheduler{Clock: temporal.NewSimClock(), Period: period}
}

// Watch registers a check-only requirement.
func (s *Scheduler) Watch(name string, c core.Checkable) {
	s.entries = append(s.entries, &entry{name: name, c: c})
}

// WatchEnforceable registers a requirement that AutoEnforce may remediate.
func (s *Scheduler) WatchEnforceable(name string, r core.CheckableEnforceableRequirement) {
	s.entries = append(s.entries, &entry{name: name, c: r, e: r})
}

// WatchCatalog registers every entry of an RQCODE catalogue.
func (s *Scheduler) WatchCatalog(c *core.Catalog) {
	for _, r := range c.All() {
		s.WatchEnforceable(r.FindingID(), r)
	}
}

// Alarms returns the alarms raised so far.
func (s *Scheduler) Alarms() []Alarm { return s.alarms }

// Run polls until the clock passes `until`, executing scheduled actions as
// their instants are reached. Actions due at or before a polling instant
// run before that poll.
func (s *Scheduler) Run(until trace.Time, actions []TimedAction) {
	acts := append([]TimedAction{}, actions...)
	sort.SliceStable(acts, func(i, j int) bool { return acts[i].At < acts[j].At })
	next := 0
	period := s.Period
	streak := 0
	maxPeriod, cleanStreak := s.adaptiveParams()
	root := s.Trace.Root("monitor.run").TagInt("entries", len(s.entries))
	defer root.End()
	for s.Clock.Now() <= until {
		now := s.Clock.Now()
		for next < len(acts) && acts[next].At <= now {
			acts[next].Do()
			next++
		}
		violated := s.poll(now, root)
		if s.Adaptive != nil {
			if violated {
				period = s.Period
				streak = 0
			} else {
				streak++
				if streak >= cleanStreak && period < maxPeriod {
					period *= 2
					if period > maxPeriod {
						period = maxPeriod
					}
					streak = 0
				}
			}
		}
		s.Clock.Sleep(period)
	}
	// Flush any trailing actions so callers can inspect final state.
	for next < len(acts) {
		acts[next].Do()
		next++
	}
}

func (s *Scheduler) adaptiveParams() (maxPeriod trace.Time, cleanStreak int) {
	if s.Adaptive == nil {
		return s.Period, 0
	}
	maxPeriod = s.Adaptive.MaxPeriod
	if maxPeriod <= 0 {
		maxPeriod = 8 * s.Period
	}
	cleanStreak = s.Adaptive.CleanStreak
	if cleanStreak <= 0 {
		cleanStreak = 4
	}
	return
}

// poll checks every entry once through the engine, handles violations,
// and reports whether any entry was in violation this round. A check that
// panics or times out yields ERROR and is treated as a violation
// (fail-closed): an unobservable requirement must alarm, not pass
// silently.
func (s *Scheduler) poll(now trace.Time, parent *telemetry.Span) bool {
	s.Polls++
	s.Metrics.Add("monitor.polls", 1)
	sp := parent.Child("poll").TagInt("t", int(now))
	violated := false
	for _, en := range s.entries {
		status := s.check(en, sp)
		switch {
		case status == core.CheckPass:
			en.inViolation = false
		case !en.inViolation:
			violated = true
			en.inViolation = true
			a := Alarm{At: now, Requirement: en.name, RepairedAt: -1}
			asp := sp.Child("alarm").Tag("requirement", en.name)
			s.Metrics.Add("monitor.alarms", 1)
			if s.AutoEnforce && en.e != nil {
				a.Enforced = true
				a.Enforcement = s.enforce(en, asp)
				if s.check(en, asp) == core.CheckPass {
					a.RepairedAt = now
					en.inViolation = false
					s.Metrics.Add("monitor.repairs", 1)
				}
			}
			asp.TagBool("repaired", a.RepairedAt >= 0).End()
			s.alarms = append(s.alarms, a)
		default:
			violated = true
		}
	}
	sp.TagBool("violated", violated).End()
	return violated
}

// check runs one entry's Check on the engine under s.Checks, with the
// entry's adaptive attempt budget applied when RetryBudget is enabled.
func (s *Scheduler) check(en *entry, parent *telemetry.Span) core.CheckStatus {
	sp := parent.Child("check").Tag("requirement", en.name)
	pol := s.Checks
	pol.Span = sp
	if s.RetryBudget != nil {
		if en.budget == 0 {
			en.budget = s.baseAttempts()
		}
		pol.MaxAttempts = en.budget
	}
	status, st := engine.Attempt(en.c.Check,
		func(v core.CheckStatus) bool { return v == core.CheckIncomplete },
		func(error) core.CheckStatus { return core.CheckError },
		pol)
	s.CheckAttempts += st.Attempts
	s.CheckRetries += st.Retries
	s.CheckPanics += st.Panics
	s.Metrics.Add("monitor.checks", 1)
	s.Metrics.Observe("monitor.check_wall", st.Duration)
	if s.RetryBudget != nil {
		s.tuneBudget(en, st)
	}
	sp.Tag("status", status.String()).End()
	return status
}

// baseAttempts is the configured attempt budget, floored at one.
func (s *Scheduler) baseAttempts() int {
	if s.Checks.MaxAttempts < 1 {
		return 1
	}
	return s.Checks.MaxAttempts
}

// tuneBudget applies the RetryBudget feedback from one poll's telemetry.
func (s *Scheduler) tuneBudget(en *entry, st engine.Stats) {
	minAttempts, streak := s.RetryBudget.normalized()
	if st.Panics == 0 {
		en.panicStreak = 0
		en.budget = s.baseAttempts()
		return
	}
	en.panicStreak++
	if en.panicStreak >= streak && en.budget > minAttempts {
		en.budget /= 2
		if en.budget < minAttempts {
			en.budget = minAttempts
		}
		en.panicStreak = 0
	}
}

// RetryBudgets reports the current per-entry attempt budgets, keyed by
// entry name (entries not yet polled map to the base budget). Diagnostic
// companion to the CheckPanics counters.
func (s *Scheduler) RetryBudgets() map[string]int {
	out := make(map[string]int, len(s.entries))
	for _, en := range s.entries {
		b := en.budget
		if b == 0 {
			b = s.baseAttempts()
		}
		out[en.name] = b
	}
	return out
}

// enforce runs one entry's Enforce panic-isolated (never retried: host
// mutations are not idempotent in general).
func (s *Scheduler) enforce(en *entry, parent *telemetry.Span) core.EnforcementStatus {
	sp := parent.Child("enforce").Tag("requirement", en.name)
	status, st := engine.Attempt(en.e.Enforce, nil,
		func(error) core.EnforcementStatus { return core.EnforceFailure },
		engine.Policy{Span: sp})
	s.EnforcePanics += st.Panics
	s.Metrics.Add("monitor.enforcements", 1)
	sp.Tag("result", status.String()).End()
	return status
}

// Stats summarises a run against known injection times.
type Stats struct {
	Alarms   int
	Repaired int
	// MeanDetectionLatency averages alarm time minus matching injection
	// time; -1 when nothing was matched.
	MeanDetectionLatency float64
}

// LatencyStats matches alarms against the injection times of violations
// (by requirement name) and computes detection statistics. Each injection
// is matched to its first subsequent alarm only: repeat violation
// episodes of the same requirement raise further alarms, and counting
// those against the one injection time would inflate the mean latency.
func LatencyStats(alarms []Alarm, injections map[string]trace.Time) Stats {
	multi := make(map[string][]trace.Time, len(injections))
	for req, at := range injections {
		multi[req] = []trace.Time{at}
	}
	return LatencyStatsMulti(alarms, multi)
}

// LatencyStatsMulti is LatencyStats for repeated violation episodes: each
// requirement maps to all of its injection times, and every injection is
// matched, in time order, to the first alarm at or after it that no
// earlier injection already claimed.
func LatencyStatsMulti(alarms []Alarm, injections map[string][]trace.Time) Stats {
	st := Stats{Alarms: len(alarms), MeanDetectionLatency: -1}
	alarmTimes := map[string][]trace.Time{}
	for _, a := range alarms {
		if a.RepairedAt >= 0 {
			st.Repaired++
		}
		alarmTimes[a.Requirement] = append(alarmTimes[a.Requirement], a.At)
	}
	total, matched := 0.0, 0
	for req, injs := range injections {
		times := alarmTimes[req]
		sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
		injs = append([]trace.Time{}, injs...)
		sort.Slice(injs, func(i, j int) bool { return injs[i] < injs[j] })
		next := 0
		for _, inj := range injs {
			for next < len(times) && times[next] < inj {
				next++
			}
			if next == len(times) {
				break
			}
			total += float64(times[next] - inj)
			matched++
			next++
		}
	}
	if matched > 0 {
		st.MeanDetectionLatency = total / float64(matched)
	}
	return st
}

// Report renders the alarm list.
func Report(alarms []Alarm) string {
	var b strings.Builder
	for _, a := range alarms {
		fmt.Fprintln(&b, a)
	}
	fmt.Fprintf(&b, "%d alarms\n", len(alarms))
	return b.String()
}
