package monitor

import (
	"math/rand"
	"strings"
	"testing"

	"veridevops/internal/core"
	"veridevops/internal/host"
	"veridevops/internal/stig"
	"veridevops/internal/temporal"
	"veridevops/internal/trace"
)

func TestSchedulerDetectsInjectedViolation(t *testing.T) {
	h := host.NewUbuntu1804()
	s := NewScheduler(10)
	s.Watch("V-219157", stig.NewV219157(h)) // nis must be absent

	s.Run(500, []TimedAction{
		{At: 123, Do: func() { h.Install("nis", "3.17") }},
	})
	alarms := s.Alarms()
	if len(alarms) != 1 {
		t.Fatalf("alarms = %d, want 1 (deduped episode)", len(alarms))
	}
	// Injection at 123; polls at 0,10,...,130: detection at 130.
	if alarms[0].At != 130 {
		t.Errorf("detected at %d, want 130", alarms[0].At)
	}
	st := LatencyStats(alarms, map[string]trace.Time{"V-219157": 123})
	if st.MeanDetectionLatency != 7 {
		t.Errorf("latency = %v, want 7", st.MeanDetectionLatency)
	}
}

func TestSchedulerAutoEnforceRepairs(t *testing.T) {
	h := host.NewUbuntu1804()
	s := NewScheduler(10)
	s.AutoEnforce = true
	s.WatchEnforceable("V-219157", stig.NewV219157(h))

	s.Run(300, []TimedAction{
		{At: 50, Do: func() { h.Install("nis", "1") }},
	})
	alarms := s.Alarms()
	if len(alarms) != 1 {
		t.Fatalf("alarms = %d, want 1", len(alarms))
	}
	a := alarms[0]
	if !a.Enforced || a.Enforcement != core.EnforceSuccess || a.RepairedAt != a.At {
		t.Errorf("alarm = %+v, want enforced and repaired immediately", a)
	}
	if h.Installed("nis") {
		t.Error("nis should have been removed by auto-enforcement")
	}
	st := LatencyStats(alarms, nil)
	if st.Repaired != 1 {
		t.Errorf("Repaired = %d", st.Repaired)
	}
}

func TestSchedulerReAlarmsAfterRepairAndReinjection(t *testing.T) {
	h := host.NewUbuntu1804()
	s := NewScheduler(10)
	s.AutoEnforce = true
	s.WatchEnforceable("V-219157", stig.NewV219157(h))

	s.Run(500, []TimedAction{
		{At: 50, Do: func() { h.Install("nis", "1") }},
		{At: 200, Do: func() { h.Install("nis", "1") }},
	})
	if len(s.Alarms()) != 2 {
		t.Errorf("alarms = %d, want 2 (one per episode)", len(s.Alarms()))
	}
}

func TestSchedulerDedupesPersistentViolation(t *testing.T) {
	h := host.NewUbuntu1804()
	h.Install("nis", "1") // violated from the start, never repaired
	s := NewScheduler(10)
	s.Watch("V-219157", stig.NewV219157(h))
	s.Run(300, nil)
	if len(s.Alarms()) != 1 {
		t.Errorf("alarms = %d, want 1 despite %d polls", len(s.Alarms()), 30)
	}
}

func TestWatchCatalog(t *testing.T) {
	h := host.NewUbuntu1804()
	cat := stig.UbuntuCatalog(h)
	cat.Run(core.CheckAndEnforce) // harden first

	s := NewScheduler(10)
	s.AutoEnforce = true
	s.WatchCatalog(cat)
	rng := rand.New(rand.NewSource(11))
	s.Run(400, []TimedAction{
		{At: 100, Do: func() { host.DriftLinux(h, 5, rng) }},
	})
	if len(s.Alarms()) == 0 {
		t.Fatal("drift should raise alarms")
	}
	// After the run the host must be compliant again.
	rep := cat.Run(core.CheckOnly)
	if rep.Compliance() != 1 {
		t.Errorf("post-run compliance = %.2f\n%s", rep.Compliance(), rep)
	}
}

func TestDetectionLatencyScalesWithPeriod(t *testing.T) {
	// E3's core claim: mean detection latency grows with the polling
	// period. Inject at a fixed phase and compare two periods.
	latency := func(period trace.Time) float64 {
		h := host.NewUbuntu1804()
		s := NewScheduler(period)
		s.Watch("V-219157", stig.NewV219157(h))
		inject := trace.Time(101)
		s.Run(inject+10*period, []TimedAction{{At: inject, Do: func() { h.Install("nis", "1") }}})
		st := LatencyStats(s.Alarms(), map[string]trace.Time{"V-219157": inject})
		return st.MeanDetectionLatency
	}
	fast, slow := latency(5), latency(100)
	if fast < 0 || slow < 0 {
		t.Fatal("violation not detected")
	}
	if fast >= slow {
		t.Errorf("latency(period=5)=%v should be below latency(period=100)=%v", fast, slow)
	}
}

func TestLatencyStatsUnmatched(t *testing.T) {
	st := LatencyStats([]Alarm{{At: 5, Requirement: "X", RepairedAt: -1}}, nil)
	if st.MeanDetectionLatency != -1 || st.Alarms != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestReportRendering(t *testing.T) {
	out := Report([]Alarm{
		{At: 10, Requirement: "V-1", RepairedAt: -1},
		{At: 20, Requirement: "V-2", Enforced: true, Enforcement: core.EnforceSuccess, RepairedAt: 20},
	})
	for _, want := range []string{"t=10 V-1 VIOLATION", "enforced=SUCCESS", "2 alarms"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestSchedulerWithTemporalPatternProbe(t *testing.T) {
	// A temporal monitor's probe can watch host state: "nis is absent"
	// globally, replayed in virtual time through the same clock.
	h := host.NewUbuntu1804()
	clk := temporal.NewSimClock()
	opt := temporal.Options{Clock: clk, Period: 10, Boundary: 30}
	g := temporal.NewGlobalUniversality(
		temporal.BoolProbe("nis_absent", func() bool { return !h.Installed("nis") }), opt)

	// Install nis when virtual time crosses 100 (driven by the monitor's
	// own polling through OnAdvance).
	clk.OnAdvance(func(now trace.Time) {
		if now >= 100 && !h.Installed("nis") {
			h.Install("nis", "1")
		}
	})
	if got := g.Check(); got != core.CheckFail {
		t.Errorf("Check = %v, want FAIL once the package appears", got)
	}
}

func TestDefaultPeriod(t *testing.T) {
	s := NewScheduler(0)
	if s.Period != 10 {
		t.Errorf("Period = %d, want default 10", s.Period)
	}
}

func TestTrailingActionsFlushed(t *testing.T) {
	ran := false
	s := NewScheduler(10)
	s.Run(5, []TimedAction{{At: 1000, Do: func() { ran = true }}})
	if !ran {
		t.Error("actions after the horizon must still be flushed")
	}
}
