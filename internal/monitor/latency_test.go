package monitor

import (
	"testing"
	"time"

	"veridevops/internal/core"
	"veridevops/internal/engine"
	"veridevops/internal/host"
	"veridevops/internal/stig"
	"veridevops/internal/trace"
)

// Regression for the latency-inflation bug: LatencyStats matched *every*
// alarm of a requirement against its single injection time, so a second
// violation episode (alarm long after the injection) dragged the mean up.
func TestLatencyStatsFirstAlarmOnly(t *testing.T) {
	alarms := []Alarm{
		{At: 105, Requirement: "V-1", RepairedAt: 105}, // episode 1: injected at 100
		{At: 505, Requirement: "V-1", RepairedAt: -1},  // episode 2: unrelated re-violation
	}
	st := LatencyStats(alarms, map[string]trace.Time{"V-1": 100})
	if st.MeanDetectionLatency != 5 {
		t.Errorf("latency = %v, want 5 (first subsequent alarm only; the old code averaged in 405)",
			st.MeanDetectionLatency)
	}
	if st.Alarms != 2 || st.Repaired != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestLatencyStatsMultiTwoEpisodes(t *testing.T) {
	// Both episodes known: each injection matches its own first alarm.
	alarms := []Alarm{
		{At: 105, Requirement: "V-1", RepairedAt: -1},
		{At: 505, Requirement: "V-1", RepairedAt: -1},
	}
	st := LatencyStatsMulti(alarms, map[string][]trace.Time{"V-1": {100, 500}})
	if st.MeanDetectionLatency != 5 {
		t.Errorf("latency = %v, want 5 ((5+5)/2)", st.MeanDetectionLatency)
	}
}

func TestLatencyStatsMultiMoreInjectionsThanAlarms(t *testing.T) {
	// The second injection was never detected: only the first matches.
	alarms := []Alarm{{At: 110, Requirement: "V-1", RepairedAt: -1}}
	st := LatencyStatsMulti(alarms, map[string][]trace.Time{"V-1": {100, 500}})
	if st.MeanDetectionLatency != 10 {
		t.Errorf("latency = %v, want 10", st.MeanDetectionLatency)
	}
}

func TestLatencyStatsEndToEndTwoEpisodes(t *testing.T) {
	// Full scheduler run with auto-repair: inject, repair, re-inject. The
	// single-injection stats must reflect only the first episode's
	// latency.
	h := host.NewUbuntu1804()
	s := NewScheduler(10)
	s.AutoEnforce = true
	s.WatchEnforceable("V-219157", stig.NewV219157(h))
	s.Run(500, []TimedAction{
		{At: 95, Do: func() { h.Install("nis", "1") }},
		{At: 395, Do: func() { h.Install("nis", "1") }},
	})
	if len(s.Alarms()) != 2 {
		t.Fatalf("alarms = %d, want one per episode", len(s.Alarms()))
	}
	// Episode 1: injected 95, detected at poll 100 -> latency 5. The old
	// code also matched the t=400 alarm against 95 (latency 305), giving
	// mean 155.
	st := LatencyStats(s.Alarms(), map[string]trace.Time{"V-219157": 95})
	if st.MeanDetectionLatency != 5 {
		t.Errorf("latency = %v, want 5", st.MeanDetectionLatency)
	}
	// With both injections declared, both episodes contribute 5.
	mst := LatencyStatsMulti(s.Alarms(), map[string][]trace.Time{"V-219157": {95, 395}})
	if mst.MeanDetectionLatency != 5 {
		t.Errorf("multi latency = %v, want 5", mst.MeanDetectionLatency)
	}
}

// panickyCheck fails by panicking on every call.
type panickyCheck struct{ calls int }

func (p *panickyCheck) Check() core.CheckStatus {
	p.calls++
	panic("probe driver crashed")
}

func TestSchedulerSurvivesPanickingCheck(t *testing.T) {
	s := NewScheduler(10)
	s.Watch("V-BROKEN", &panickyCheck{})
	h := host.NewUbuntu1804()
	s.Watch("V-219157", stig.NewV219157(h))
	s.Run(100, []TimedAction{
		{At: 35, Do: func() { h.Install("nis", "1") }},
	})
	// The broken check alarms once (fail-closed, status ERROR) and the
	// healthy entry still detects its own violation.
	byReq := map[string]int{}
	for _, a := range s.Alarms() {
		byReq[a.Requirement]++
	}
	if byReq["V-BROKEN"] != 1 {
		t.Errorf("broken check alarms = %d, want 1 (fail-closed, deduped)", byReq["V-BROKEN"])
	}
	if byReq["V-219157"] != 1 {
		t.Errorf("healthy entry alarms = %d, want 1", byReq["V-219157"])
	}
	if s.CheckPanics == 0 {
		t.Error("CheckPanics must count the recovered panics")
	}
}

func TestSchedulerRetriesFlakyCheck(t *testing.T) {
	// A check that returns INCOMPLETE once per poll and PASS on retry must
	// never alarm when the scheduler has a retry budget.
	calls := 0
	flaky := core.CheckFunc(func() core.CheckStatus {
		calls++
		if calls%2 == 1 {
			return core.CheckIncomplete
		}
		return core.CheckPass
	})
	s := NewScheduler(10)
	s.Checks = engine.Policy{MaxAttempts: 2, Sleep: func(time.Duration) {}}
	s.Watch("V-FLAKY", flaky)
	s.Run(100, nil)
	if len(s.Alarms()) != 0 {
		t.Errorf("alarms = %d, want 0 (retry hides the transient failure)", len(s.Alarms()))
	}
	if s.CheckRetries == 0 {
		t.Error("CheckRetries must count the retries")
	}
}

// panicEnforcer passes nothing and panics on enforcement.
type panicEnforcer struct{ Finding core.Finding }

func (p *panicEnforcer) FindingID() string               { return "V-ENF" }
func (p *panicEnforcer) Version() string                 { return "" }
func (p *panicEnforcer) RuleID() string                  { return "" }
func (p *panicEnforcer) IAControls() string              { return "" }
func (p *panicEnforcer) Severity() string                { return "high" }
func (p *panicEnforcer) Description() string             { return "" }
func (p *panicEnforcer) STIG() string                    { return "" }
func (p *panicEnforcer) Date() string                    { return "" }
func (p *panicEnforcer) CheckTextCode() string           { return "" }
func (p *panicEnforcer) CheckText() string               { return "" }
func (p *panicEnforcer) FixTextCode() string             { return "" }
func (p *panicEnforcer) FixText() string                 { return "" }
func (p *panicEnforcer) Check() core.CheckStatus         { return core.CheckFail }
func (p *panicEnforcer) Enforce() core.EnforcementStatus { panic("remediation agent crashed") }

func TestSchedulerSurvivesPanickingEnforce(t *testing.T) {
	s := NewScheduler(10)
	s.AutoEnforce = true
	s.WatchEnforceable("V-ENF", &panicEnforcer{})
	s.Run(50, nil)
	if len(s.Alarms()) != 1 {
		t.Fatalf("alarms = %d, want 1", len(s.Alarms()))
	}
	if a := s.Alarms()[0]; !a.Enforced || a.Enforcement != core.EnforceFailure {
		t.Errorf("alarm = %+v, want enforcement FAILURE", a)
	}
	if s.EnforcePanics == 0 {
		t.Error("EnforcePanics must count the recovered panic")
	}
}
