// Fixture for the spanend analyzer: flagged leaks and clean idioms.
package a

import (
	"errors"

	"veridevops/internal/telemetry"
)

var errFail = errors.New("fail")

// Clean: the canonical defer idiom.
func deferred(tr *telemetry.Tracer) {
	sp := tr.Root("ok")
	defer sp.End()
	sp.Tag("k", "v")
}

// Clean: explicit End after an annotation chain creation.
func explicit(tr *telemetry.Tracer) {
	sp := tr.Root("ok").Tag("k", "v")
	sp.TagInt("n", 1)
	sp.End()
}

// Clean: fire-and-forget chain that ends itself.
func chainEnd(tr *telemetry.Tracer) {
	tr.Root("fire").Tag("k", "v").End()
}

// Flagged: started, annotated, never ended.
func leaked(tr *telemetry.Tracer) {
	sp := tr.Root("leak") // want `span "sp" started at .*a\.go:\d+:\d+ is not ended on every path through its block`
	sp.Tag("k", "v")
}

// Flagged: creation result dropped on the floor.
func dropped(tr *telemetry.Tracer) {
	tr.Root("drop") // want `span started here is dropped without End`
}

// Flagged: the early return skips End.
func earlyReturn(tr *telemetry.Tracer, fail bool) error {
	sp := tr.Root("attempt")
	if fail {
		return errFail // want `span "sp" started at .* is not ended on this return path`
	}
	sp.End()
	return nil
}

// Flagged: reassignment loses the only reference before End.
func overwritten(tr *telemetry.Tracer) {
	sp := tr.Root("first")
	sp = tr.Root("second") // want `span "sp" started at .* is not ended before being overwritten`
	sp.End()
}

// Clean: ending on both branches of an if/else.
func bothBranches(tr *telemetry.Tracer, fast bool) {
	sp := tr.Root("branch")
	if fast {
		sp.End()
	} else {
		sp.Tag("slow", "yes")
		sp.End()
	}
}

// Flagged: only one branch ends the span.
func oneBranch(tr *telemetry.Tracer, fast bool) {
	sp := tr.Root("branch") // want `span "sp" started at .* is not ended on every path through its block`
	if fast {
		sp.End()
	}
}

// Clean: the fleet.go nil-guard idiom — a conditionally created span,
// ended under its nil guard. The nil path carries no obligation.
func nilGuarded(tr *telemetry.Tracer, verbose bool) {
	var sp *telemetry.Span
	if verbose {
		sp = tr.Root("verbose")
	}
	if sp != nil {
		sp.Tag("k", "v")
		sp.End()
	}
}

// Clean: deferred closure ends the span.
func deferredClosure(tr *telemetry.Tracer) {
	sp := tr.Root("closure")
	defer func() {
		sp.TagBool("done", true)
		sp.End()
	}()
}

// Clean escapes: passing the span onwards transfers the obligation.
func escapesToHelper(tr *telemetry.Tracer) {
	sp := tr.Root("handoff")
	finish(sp)
}

func escapesToChannel(tr *telemetry.Tracer, out chan *telemetry.Span) {
	sp := tr.Root("handoff")
	out <- sp
}

func escapesToReturn(tr *telemetry.Tracer) *telemetry.Span {
	sp := tr.Root("handoff")
	return sp
}

// finish is the named-helper escape: spanend does not follow the call,
// so ending through a helper is a documented false negative, not a
// report.
func finish(sp *telemetry.Span) {
	sp.End()
}

// Clean: terminator calls end the path; the panic route owes nothing.
func panics(tr *telemetry.Tracer, bad bool) {
	sp := tr.Root("guarded")
	if bad {
		panic("unreachable input")
	}
	sp.End()
}

// Clean: per-iteration child spans resolved inside the loop.
func perIteration(tr *telemetry.Tracer, names []string) {
	root := tr.Root("sweep")
	defer root.End()
	for _, n := range names {
		sp := root.Child(n)
		sp.End()
	}
}

// Flagged: a child span leaked every iteration.
func leakPerIteration(tr *telemetry.Tracer, names []string) {
	root := tr.Root("sweep")
	defer root.End()
	for _, n := range names {
		sp := root.Child(n) // want `span "sp" started at .* is not ended on every path through its block`
		sp.Tag("name", n)
	}
}

// Clean: function literals are their own scopes with their own
// obligations.
func inClosure(tr *telemetry.Tracer) func() {
	return func() {
		sp := tr.Root("inner")
		defer sp.End()
	}
}

// Flagged: the leak is inside the literal's scope.
func leakInClosure(tr *telemetry.Tracer) func() {
	return func() {
		sp := tr.Root("inner") // want `span "sp" started at .* is not ended on every path through its block`
		sp.Tag("k", "v")
	}
}

// Clean: suppression with a recorded reason silences the finding.
func suppressed(tr *telemetry.Tracer) {
	//lint:ignore spanend the span is ended by the monitor goroutine watching this tracer
	sp := tr.Root("watched")
	sp.Tag("k", "v")
}
