package spanend_test

import (
	"testing"

	"veridevops/internal/analysis/analysistest"
	"veridevops/internal/analysis/spanend"
)

func TestSpanend(t *testing.T) {
	analysistest.Run(t, spanend.Analyzer, "testdata/src/a", "a")
}
