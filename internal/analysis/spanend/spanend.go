// Package spanend verifies the telemetry contract "every started span
// ends": a *telemetry.Span obtained from Tracer.Root or Span.Child must
// have End called on every path out of the scope that owns it, either
// explicitly before each return or via defer. A span that is started but
// never ended silently vanishes from the JSONL export and skews the
// Breakdown aggregates — the trace claims the work never happened, which
// is the one lie an auditable pipeline must not tell.
//
// The analyzer runs a structured, path-sensitive walk over each function
// body (and each function literal as its own scope), tracking span
// variables from the assignment that creates them:
//
//   - sp := tr.Root("x") / sp := parent.Child("y").Tag(...) start
//     tracking (annotation chains through Tag/TagInt/TagBool are part of
//     the creation);
//   - sp.End(), sp.Tag(...).End() and defer sp.End() (also inside a
//     deferred closure) satisfy the obligation;
//   - a return, or falling off the end of the owning block, while a
//     tracked span is neither ended nor escaped is reported;
//   - a creation whose result is dropped on the floor
//     (tr.Root("x") as a statement) is reported immediately.
//
// A span that escapes — passed to a call, stored in a field, slice or
// map, captured by a go statement, returned — transfers the obligation
// to code the analyzer cannot see, and tracking stops without a report
// (the callee pattern is how core.RunOptions.Span and engine.Policy.Span
// hand spans down the stack legitimately). Nil-guard idiom is
// understood: in `if sp != nil { ... sp.End() }` the else path carries
// no obligation, matching the nil-receiver no-op API.
//
// Known false negatives, accepted to keep the pass local and
// report-free on correct code: obligations transferred via escape are
// not followed (a span ended via a named helper is simply an escape);
// break/continue paths are not charged; panic terminators are trusted.
package spanend

import (
	"go/ast"
	"go/token"
	"go/types"

	"veridevops/internal/analysis"
)

// Analyzer is the spanend pass.
var Analyzer = &analysis.Analyzer{
	Name: "spanend",
	Doc:  "every telemetry span started with Root/Child must be ended on all paths (defer or explicit End on every return)",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			walkFunc(pass, fd.Body)
			// Every function literal is its own ownership scope.
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					walkFunc(pass, lit.Body)
				}
				return true
			})
		}
	}
	return nil, nil
}

// state is the tracking record of one span variable on one path.
type state struct {
	obj     types.Object
	declPos token.Pos
	ended   bool
	escaped bool
}

type env map[types.Object]*state

func (e env) clone() env {
	c := make(env, len(e))
	for k, v := range e {
		cp := *v
		c[k] = &cp
	}
	return c
}

type walker struct {
	pass *analysis.Pass
}

func walkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	w := &walker{pass: pass}
	e := env{}
	if term := w.stmts(body.List, e, true); !term {
		for _, st := range e {
			w.unended(st, body.End(), "at function end")
		}
	}
}

func (w *walker) unended(st *state, pos token.Pos, where string) {
	if st.ended || st.escaped {
		return
	}
	st.ended = true // report once per path
	w.pass.Reportf(pos, "span %q started at %s is not ended %s (add a defer End or end it on this path)",
		st.obj.Name(), w.pass.Fset.Position(st.declPos), where)
}

// stmts walks a statement list. Variables whose tracking starts inside
// the list are resolved at its end (block scope); when scoped is false
// (loop bodies) that resolution doubles as the per-iteration check.
// Returns whether the list always transfers control out (return, panic,
// branch).
func (w *walker) stmts(list []ast.Stmt, e env, checkAtEnd bool) bool {
	before := make(map[types.Object]bool, len(e))
	for obj := range e {
		before[obj] = true
	}
	// A variable is owned by this block only when it is also declared in
	// it: `hs = tr.Root(...)` inside an if-body assigns an outer `var hs`,
	// whose obligation resolves in the enclosing scope, not here.
	var listStart, listEnd token.Pos
	if len(list) > 0 {
		listStart, listEnd = list[0].Pos(), list[len(list)-1].End()
	}
	ownedHere := func(obj types.Object) bool {
		return obj.Pos() >= listStart && obj.Pos() < listEnd
	}
	terminated := false
	for _, s := range list {
		if w.stmt(s, e) {
			terminated = true
			break
		}
	}
	if !terminated && checkAtEnd {
		for obj, st := range e {
			if !before[obj] && ownedHere(obj) {
				w.unended(st, st.declPos, "on every path through its block")
				delete(e, obj)
			}
		}
	}
	if !terminated {
		// Even without a check, scoped vars must not leak into the outer
		// walk once their block is gone.
		for obj := range e {
			if !before[obj] && ownedHere(obj) {
				delete(e, obj)
			}
		}
	}
	return terminated
}

func (w *walker) stmt(s ast.Stmt, e env) bool {
	switch s := s.(type) {
	case *ast.AssignStmt:
		w.assign(s, e)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					w.valueSpec(vs, e)
				}
			}
		}
	case *ast.ExprStmt:
		return w.exprStmt(s, e)
	case *ast.DeferStmt:
		w.deferStmt(s, e)
	case *ast.GoStmt:
		w.escapeRefs(s.Call, e, nil)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			w.escapeRefs(r, e, nil)
		}
		for _, st := range e {
			w.unended(st, s.Pos(), "on this return path")
		}
		return true
	case *ast.IfStmt:
		return w.ifStmt(s, e)
	case *ast.ForStmt:
		if s.Init != nil {
			w.stmt(s.Init, e)
		}
		w.loopBody(s.Body, e)
	case *ast.RangeStmt:
		w.loopBody(s.Body, e)
	case *ast.SwitchStmt:
		return w.caseStmt(s.Init, bodyClauses(s.Body), e, hasDefaultClause(s.Body), false)
	case *ast.TypeSwitchStmt:
		return w.caseStmt(s.Init, bodyClauses(s.Body), e, hasDefaultClause(s.Body), false)
	case *ast.SelectStmt:
		return w.caseStmt(nil, bodyClauses(s.Body), e, hasDefaultClause(s.Body), true)
	case *ast.BlockStmt:
		return w.stmts(s.List, e, true)
	case *ast.LabeledStmt:
		return w.stmt(s.Stmt, e)
	case *ast.BranchStmt:
		// break/continue/goto end this path without charging the
		// obligation (End may legitimately follow the loop).
		return true
	case *ast.SendStmt:
		w.escapeRefs(s, e, nil)
	case *ast.IncDecStmt, *ast.EmptyStmt:
	default:
		if s != nil {
			w.escapeRefs(s, e, nil)
		}
	}
	return false
}

// assign starts tracking on `x := <creation chain>` / `x = <creation
// chain>` and treats every other reference to a tracked span as an
// escape.
func (w *walker) assign(s *ast.AssignStmt, e env) {
	if len(s.Lhs) == 1 && len(s.Rhs) == 1 {
		if id, ok := ast.Unparen(s.Lhs[0]).(*ast.Ident); ok && id.Name != "_" {
			if creation, endsInChain := w.creationChain(s.Rhs[0]); creation {
				obj := w.pass.TypesInfo.Defs[id]
				if obj == nil {
					obj = w.pass.TypesInfo.Uses[id]
				}
				// Arguments of the chain may reference other spans.
				w.escapeRefs(s.Rhs[0], e, obj)
				if obj != nil {
					// A fresh creation over a still-tracked span loses the
					// only reference to the first one.
					if st, tracked := e[obj]; tracked {
						w.unended(st, s.Pos(), "before being overwritten")
					}
					if !endsInChain {
						e[obj] = &state{obj: obj, declPos: s.Pos()}
					} else {
						delete(e, obj)
					}
				}
				return
			}
		}
	}
	w.escapeRefs(s, e, nil)
	// Assigning anything else over a tracked variable unbinds it.
	for _, lhs := range s.Lhs {
		if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
			if obj := w.pass.TypesInfo.Uses[id]; obj != nil {
				if st, ok := e[obj]; ok && !st.ended {
					// Losing the only reference before End: report here.
					w.unended(st, s.Pos(), "before being overwritten")
					delete(e, obj)
				}
			}
		}
	}
}

func (w *walker) valueSpec(vs *ast.ValueSpec, e env) {
	for i, name := range vs.Names {
		if i >= len(vs.Values) {
			break
		}
		if creation, endsInChain := w.creationChain(vs.Values[i]); creation && name.Name != "_" {
			obj := w.pass.TypesInfo.Defs[name]
			w.escapeRefs(vs.Values[i], e, obj)
			if obj != nil && !endsInChain {
				e[obj] = &state{obj: obj, declPos: vs.Pos()}
			}
		} else {
			w.escapeRefs(vs.Values[i], e, nil)
		}
	}
}

// exprStmt handles End/annotation chains and dropped creations, and
// recognises terminator calls (panic, os.Exit, testing Fatal) as path
// ends.
func (w *walker) exprStmt(s *ast.ExprStmt, e env) bool {
	if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok && isTerminatorCall(w.pass.TypesInfo, call) {
		return true
	}
	base, methods := analysis.ChainBase(s.X)
	if len(methods) > 0 {
		creation, endsInChain := w.creationChain(s.X)
		if id, ok := base.(*ast.Ident); ok {
			if obj := w.pass.TypesInfo.Uses[id]; obj != nil {
				if st, tracked := e[obj]; tracked {
					w.escapeRefs(s.X, e, obj)
					if endsInChain {
						st.ended = true
					} else if creation {
						// sp.Child("x") dropped on the floor.
						w.pass.Reportf(s.Pos(), "span started here is dropped without End")
					}
					return false
				}
			}
		}
		if creation {
			if endsInChain {
				return false
			}
			w.pass.Reportf(s.Pos(), "span started here is dropped without End")
			w.escapeRefs(s.X, e, nil)
			return false
		}
	}
	w.escapeRefs(s.X, e, nil)
	return false
}

// deferStmt credits `defer sp.End()`, `defer sp.Tag(...).End()` and
// deferred closures that end a tracked span.
func (w *walker) deferStmt(s *ast.DeferStmt, e env) {
	if lit, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
		// A deferred closure ending the span covers every later exit.
		for obj, st := range e {
			if closureEnds(w.pass.TypesInfo, lit, obj) {
				st.ended = true
			}
		}
		w.escapeRefs(s.Call, e, nil)
		return
	}
	base, methods := analysis.ChainBase(s.Call)
	if id, ok := base.(*ast.Ident); ok && len(methods) > 0 && methods[len(methods)-1] == "End" {
		if obj := w.pass.TypesInfo.Uses[id]; obj != nil {
			if st, tracked := e[obj]; tracked {
				st.ended = true
				w.escapeRefs(s.Call, e, obj)
				return
			}
		}
	}
	w.escapeRefs(s.Call, e, nil)
}

func (w *walker) ifStmt(s *ast.IfStmt, e env) bool {
	if s.Init != nil {
		w.stmt(s.Init, e)
	}
	// Nil-guard idiom: `if sp != nil { ... }` / `if sp == nil { ... } else
	// { ... }` — the nil path carries no End obligation.
	guarded, negated := nilGuard(w.pass.TypesInfo, s.Cond, e)

	thenEnv := e.clone()
	thenTerm := w.stmts(s.Body.List, thenEnv, true)
	elseEnv := e.clone()
	elseTerm := false
	if s.Else != nil {
		elseTerm = w.stmt(s.Else, elseEnv)
	}
	if thenTerm && elseTerm && s.Else != nil {
		return true
	}
	// Merge the fall-through paths back into e.
	for obj := range union(thenEnv, elseEnv) {
		t, hasT := thenEnv[obj]
		el, hasE := elseEnv[obj]
		var merged state
		switch {
		case thenTerm && hasE:
			merged = *el
		case elseTerm && s.Else != nil && hasT:
			merged = *t
		case hasT && hasE:
			merged = state{obj: obj, declPos: t.declPos,
				ended:   t.ended && el.ended,
				escaped: t.escaped || el.escaped}
			if guarded == obj {
				// Only the non-nil branch carries the obligation.
				if negated {
					merged.ended, merged.escaped = el.ended, el.escaped
				} else {
					merged.ended, merged.escaped = t.ended, t.escaped
				}
			}
		case hasT && !thenTerm:
			merged = *t
		case hasE && !elseTerm:
			merged = *el
		default:
			continue
		}
		e[obj] = &merged
	}
	return false
}

// loopBody walks a loop body once. Ends inside the body do not count for
// code after the loop (zero iterations), and spans whose tracking starts
// inside the body must resolve within one iteration.
func (w *walker) loopBody(body *ast.BlockStmt, e env) {
	inner := e.clone()
	w.stmts(body.List, inner, true)
	for obj, st := range e {
		if in, ok := inner[obj]; ok && in.escaped {
			st.escaped = true
		}
	}
}

// caseStmt merges switch/select clause paths. For a switch without a
// default the zero-clause fall-through keeps the pre-state; a select
// without default always executes some clause.
func (w *walker) caseStmt(init ast.Stmt, clauses [][]ast.Stmt, e env, hasDefault, isSelect bool) bool {
	if init != nil {
		w.stmt(init, e)
	}
	if len(clauses) == 0 {
		return false
	}
	type path struct {
		env  env
		term bool
	}
	var paths []path
	for _, body := range clauses {
		pe := e.clone()
		paths = append(paths, path{pe, w.stmts(body, pe, true)})
	}
	exhaustive := hasDefault || isSelect
	allTerm := exhaustive
	for _, p := range paths {
		if !p.term {
			allTerm = false
		}
	}
	if allTerm {
		return true
	}
	for obj, st := range e {
		ended := exhaustive // start true only when some clause always runs
		escaped := st.escaped
		for _, p := range paths {
			if p.term {
				continue
			}
			ps := p.env[obj]
			if ps == nil {
				continue
			}
			ended = ended && ps.ended
			escaped = escaped || ps.escaped
		}
		if !exhaustive {
			ended = ended && st.ended
		}
		st.ended = st.ended || (ended && exhaustive)
		st.escaped = escaped
	}
	return false
}

// creationChain reports whether expr is a method chain that starts a
// span (contains a Root or Child call yielding *telemetry.Span) and
// whether the chain already ends it (terminal End).
func (w *walker) creationChain(expr ast.Expr) (creation, endsInChain bool) {
	e := ast.Unparen(expr)
	last := true
	for {
		call, ok := e.(*ast.CallExpr)
		if !ok {
			return creation, endsInChain
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return creation, endsInChain
		}
		switch sel.Sel.Name {
		case "Root", "Child":
			if isSpanType(w.pass.TypesInfo.Types[call].Type) {
				creation = true
			}
		case "End":
			if last {
				endsInChain = true
			}
		}
		last = false
		e = ast.Unparen(sel.X)
	}
}

// escapeRefs marks every tracked span referenced under n — except skip —
// as escaped: the obligation moved somewhere this walk cannot see.
func (w *walker) escapeRefs(n ast.Node, e env, skip types.Object) {
	ast.Inspect(n, func(node ast.Node) bool {
		id, ok := node.(*ast.Ident)
		if !ok {
			return true
		}
		obj := w.pass.TypesInfo.Uses[id]
		if obj == nil || obj == skip {
			return true
		}
		if st, tracked := e[obj]; tracked {
			st.escaped = true
		}
		return true
	})
}

func isSpanType(t types.Type) bool {
	return analysis.NamedTypeIs(t, analysis.TelemetryPath, "Span")
}

// closureEnds reports whether a deferred closure calls End on obj (an
// End-terminated chain based on obj anywhere in its body).
func closureEnds(info *types.Info, lit *ast.FuncLit, obj types.Object) bool {
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		base, methods := analysis.ChainBase(call)
		if len(methods) == 0 || methods[len(methods)-1] != "End" {
			return true
		}
		if id, ok := base.(*ast.Ident); ok && info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

// nilGuard recognises `x != nil` / `x == nil` conditions over a tracked
// span, returning the guarded object and whether the condition is the
// ==-nil (negated) form.
func nilGuard(info *types.Info, cond ast.Expr, e env) (types.Object, bool) {
	be, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || (be.Op != token.NEQ && be.Op != token.EQL) {
		return nil, false
	}
	x, y := ast.Unparen(be.X), ast.Unparen(be.Y)
	if isNilIdent(info, x) {
		x, y = y, x
	}
	if !isNilIdent(info, y) {
		return nil, false
	}
	id, ok := x.(*ast.Ident)
	if !ok {
		return nil, false
	}
	obj := info.Uses[id]
	if obj == nil {
		return nil, false
	}
	if _, tracked := e[obj]; !tracked {
		return nil, false
	}
	return obj, be.Op == token.EQL
}

func isNilIdent(info *types.Info, e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := info.Uses[id].(*types.Nil)
	return isNil
}

func union(a, b env) map[types.Object]bool {
	u := map[types.Object]bool{}
	for k := range a {
		u[k] = true
	}
	for k := range b {
		u[k] = true
	}
	return u
}

func bodyClauses(body *ast.BlockStmt) [][]ast.Stmt {
	var out [][]ast.Stmt
	for _, s := range body.List {
		switch c := s.(type) {
		case *ast.CaseClause:
			out = append(out, c.Body)
		case *ast.CommClause:
			out = append(out, c.Body)
		}
	}
	return out
}

func hasDefaultClause(body *ast.BlockStmt) bool {
	for _, s := range body.List {
		switch c := s.(type) {
		case *ast.CaseClause:
			if c.List == nil {
				return true
			}
		case *ast.CommClause:
			if c.Comm == nil {
				return true
			}
		}
	}
	return false
}

// isTerminatorCall recognises calls that never return: panic, os.Exit,
// log.Fatal*, runtime.Goexit and testing's Fatal/Fatalf/FailNow/Skip
// family.
func isTerminatorCall(info *types.Info, call *ast.CallExpr) bool {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			return true
		}
	}
	fn := analysis.CalleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Path() {
	case "os":
		return fn.Name() == "Exit"
	case "log":
		return fn.Name() == "Fatal" || fn.Name() == "Fatalf" || fn.Name() == "Fatalln"
	case "runtime":
		return fn.Name() == "Goexit"
	case "testing":
		switch fn.Name() {
		case "Fatal", "Fatalf", "FailNow", "Skip", "Skipf", "SkipNow":
			return true
		}
	}
	return false
}
