// Package lockedchan flags blocking operations performed while holding a
// sync.Mutex or sync.RWMutex: channel sends and receives, selects,
// ranging over a channel, and sync.WaitGroup.Wait. Holding a lock across
// a blocking point is the deadlock shape the fleet scheduler is one
// careless edit away from — a shard goroutine parks on a channel while
// holding the coordinator's mutex, every other shard queues up behind the
// lock, and the sweep freezes with no panic for the engine to recover.
// The single-flight CheckMemo shows the correct shape: unlock first,
// then block on the entry's done channel.
//
// The walk is per function body and syntactic: a lock is "held" from a
// successful x.Lock()/x.RLock() until x.Unlock()/x.RUnlock() on the same
// rendered receiver expression. A deferred unlock keeps the lock held
// for the remainder of the body (that is the point of the idiom), so
// blocking ops after `mu.Lock(); defer mu.Unlock()` are flagged.
// sync.Cond.Wait is deliberately not flagged — it requires the lock by
// contract.
//
// Known limits: the analyzer does not follow calls (a helper that blocks
// is invisible), does not track locks across function boundaries, and
// matches lock/unlock pairs by expression text, so aliased mutexes
// (p := &s.mu) are not paired. Function literals are analyzed as their
// own bodies with no inherited lock state (a closure usually runs on
// another goroutine; inheriting the parent's state would be wrong more
// often than right).
package lockedchan

import (
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"strings"

	"veridevops/internal/analysis"
)

// Analyzer is the lockedchan pass.
var Analyzer = &analysis.Analyzer{
	Name: "lockedchan",
	Doc:  "no channel operations, selects or WaitGroup.Wait while holding a sync.Mutex/RWMutex",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			w := &walker{pass: pass}
			w.stmts(fd.Body.List, held{})
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					lw := &walker{pass: pass}
					lw.stmts(lit.Body.List, held{})
				}
				return true
			})
		}
	}
	return nil, nil
}

// held maps a rendered mutex expression ("m.mu") to where it was locked.
type held map[string]token.Pos

func (h held) clone() held {
	c := make(held, len(h))
	for k, v := range h {
		c[k] = v
	}
	return c
}

type walker struct {
	pass *analysis.Pass
}

func (w *walker) stmts(list []ast.Stmt, h held) {
	for _, s := range list {
		w.stmt(s, h)
	}
}

func (w *walker) stmt(s ast.Stmt, h held) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok && w.lockOp(call, h, false) {
			return
		}
		w.checkExpr(s.X, h)
	case *ast.DeferStmt:
		// A deferred unlock releases at function end; the lock stays held
		// for the walk. Any other deferred expression is not a blocking
		// point now.
		w.lockOp(s.Call, h, true)
	case *ast.SendStmt:
		w.flag(s.Pos(), "channel send", h)
		w.checkExpr(s.Chan, h)
		w.checkExpr(s.Value, h)
	case *ast.SelectStmt:
		w.flag(s.Pos(), "select", h)
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				w.stmts(cc.Body, h.clone())
			}
		}
	case *ast.AssignStmt:
		for _, r := range s.Rhs {
			w.checkExpr(r, h)
		}
		for _, l := range s.Lhs {
			w.checkExpr(l, h)
		}
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			w.checkExpr(r, h)
		}
	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(s.Init, h)
		}
		w.checkExpr(s.Cond, h)
		thenH := h.clone()
		w.stmts(s.Body.List, thenH)
		elseH := h.clone()
		if s.Else != nil {
			w.stmt(s.Else, elseH)
		}
		// Conservative merge: held if held on any fall-through path.
		merge(h, thenH, elseH)
	case *ast.ForStmt:
		if s.Init != nil {
			w.stmt(s.Init, h)
		}
		if s.Cond != nil {
			w.checkExpr(s.Cond, h)
		}
		inner := h.clone()
		w.stmts(s.Body.List, inner)
		merge(h, inner)
	case *ast.RangeStmt:
		if t := w.pass.TypesInfo.Types[s.X].Type; t != nil {
			if _, isChan := t.Underlying().(*types.Chan); isChan {
				w.flag(s.Pos(), "range over channel", h)
			}
		}
		w.checkExpr(s.X, h)
		inner := h.clone()
		w.stmts(s.Body.List, inner)
		merge(h, inner)
	case *ast.SwitchStmt, *ast.TypeSwitchStmt:
		var body *ast.BlockStmt
		if sw, ok := s.(*ast.SwitchStmt); ok {
			if sw.Init != nil {
				w.stmt(sw.Init, h)
			}
			if sw.Tag != nil {
				w.checkExpr(sw.Tag, h)
			}
			body = sw.Body
		} else {
			ts := s.(*ast.TypeSwitchStmt)
			if ts.Init != nil {
				w.stmt(ts.Init, h)
			}
			body = ts.Body
		}
		var branches []held
		for _, c := range body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				bh := h.clone()
				w.stmts(cc.Body, bh)
				branches = append(branches, bh)
			}
		}
		merge(h, branches...)
	case *ast.BlockStmt:
		w.stmts(s.List, h)
	case *ast.LabeledStmt:
		w.stmt(s.Stmt, h)
	case *ast.GoStmt:
		// Runs on another goroutine; its body is analyzed separately.
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.checkExpr(v, h)
					}
				}
			}
		}
	}
}

// lockOp recognises Lock/RLock/Unlock/RUnlock calls on sync mutexes and
// updates the held set; deferred=true never releases (the release
// happens at function end). Reports true when the call was a lock op.
func (w *walker) lockOp(call *ast.CallExpr, h held, deferred bool) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := w.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return false
	}
	// sync.Once.Do etc. are not lock state; only mutex methods count.
	recv := w.pass.TypesInfo.Types[sel.X].Type
	isMutex := analysis.NamedTypeIs(recv, "sync", "Mutex") || analysis.NamedTypeIs(recv, "sync", "RWMutex") ||
		embedsMutex(recv)
	if !isMutex {
		return false
	}
	key := render(sel.X)
	switch fn.Name() {
	case "Lock", "RLock":
		if !deferred {
			h[key] = call.Pos()
		}
		return true
	case "Unlock", "RUnlock":
		if !deferred {
			delete(h, key)
		}
		return true
	}
	return false
}

// embedsMutex reports whether the (possibly pointered) named type embeds
// sync.Mutex/RWMutex, so promoted x.Lock() on a wrapper type is tracked
// too.
func embedsMutex(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if f.Embedded() && (analysis.NamedTypeIs(f.Type(), "sync", "Mutex") || analysis.NamedTypeIs(f.Type(), "sync", "RWMutex")) {
			return true
		}
	}
	return false
}

// checkExpr flags blocking expressions (channel receives, WaitGroup
// waits) under a held lock. Function literals are skipped: they execute
// later, typically on another goroutine.
func (w *walker) checkExpr(e ast.Expr, h held) {
	if e == nil || len(h) == 0 {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				w.flag(n.Pos(), "channel receive", h)
			}
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Wait" {
				if fn, ok := w.pass.TypesInfo.Uses[sel.Sel].(*types.Func); ok && fn.Pkg() != nil && fn.Pkg().Path() == "sync" {
					if analysis.NamedTypeIs(w.pass.TypesInfo.Types[sel.X].Type, "sync", "WaitGroup") {
						w.flag(n.Pos(), "WaitGroup.Wait", h)
					}
				}
			}
		}
		return true
	})
}

func (w *walker) flag(pos token.Pos, what string, h held) {
	if len(h) == 0 {
		return
	}
	var locks []string
	for k, p := range h {
		locks = append(locks, k+" (locked at "+w.pass.Fset.Position(p).String()+")")
	}
	// Deterministic order for stable output.
	sortStrings(locks)
	w.pass.Reportf(pos, "%s while holding %s: unlock before blocking, or hand the work to a goroutine that does not hold the lock",
		what, strings.Join(locks, ", "))
}

// merge folds branch lock states into h: a lock held on any branch stays
// held (conservative), one released on every branch is released.
func merge(h held, branches ...held) {
	for key := range h {
		releasedEverywhere := true
		for _, b := range branches {
			if _, still := b[key]; still {
				releasedEverywhere = false
				break
			}
		}
		if releasedEverywhere && len(branches) > 0 {
			delete(h, key)
		}
	}
	for _, b := range branches {
		for key, pos := range b {
			if _, ok := h[key]; !ok {
				h[key] = pos
			}
		}
	}
}

func render(e ast.Expr) string {
	var sb strings.Builder
	_ = printer.Fprint(&sb, token.NewFileSet(), e)
	return sb.String()
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
