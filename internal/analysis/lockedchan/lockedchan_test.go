package lockedchan_test

import (
	"testing"

	"veridevops/internal/analysis/analysistest"
	"veridevops/internal/analysis/lockedchan"
)

func TestLockedchan(t *testing.T) {
	analysistest.Run(t, lockedchan.Analyzer, "testdata/src/a", "a")
}
