// Fixture for the lockedchan analyzer: blocking while holding a mutex
// is flagged; the unlock-then-block single-flight shape is clean.
package a

import "sync"

type coordinator struct {
	mu      sync.Mutex
	rw      sync.RWMutex
	results chan int
	wg      sync.WaitGroup
}

// Flagged: send, receive, select and WaitGroup.Wait under the lock.
func (c *coordinator) blockUnderLock(v int) {
	c.mu.Lock()
	c.results <- v // want `channel send while holding c\.mu`
	c.mu.Unlock()
}

func (c *coordinator) receiveUnderLock() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return <-c.results // want `channel receive while holding c\.mu`
}

func (c *coordinator) selectUnderRLock() {
	c.rw.RLock()
	defer c.rw.RUnlock()
	select { // want `select while holding c\.rw`
	case <-c.results:
	default:
	}
}

func (c *coordinator) waitUnderLock() {
	c.mu.Lock()
	c.wg.Wait() // want `WaitGroup\.Wait while holding c\.mu`
	c.mu.Unlock()
}

// Flagged: ranging over a channel parks the goroutine under the lock.
func (c *coordinator) drainUnderLock() (sum int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for v := range c.results { // want `range over channel while holding c\.mu`
		sum += v
	}
	return sum
}

// Clean: the CheckMemo single-flight shape — unlock before blocking.
func (c *coordinator) singleFlight() int {
	c.mu.Lock()
	ch := c.results
	c.mu.Unlock()
	return <-ch
}

// Clean: the blocking op sits on the unlocked branch only.
func (c *coordinator) branchRelease(fast bool) int {
	c.mu.Lock()
	if fast {
		c.mu.Unlock()
		return <-c.results
	}
	c.mu.Unlock()
	return 0
}

// Flagged via merge: one branch forgets to unlock, so the lock is
// conservatively held at the receive after the if.
func (c *coordinator) leakyBranch(fast bool) int {
	c.mu.Lock()
	if fast {
		c.mu.Unlock()
	}
	return <-c.results // want `channel receive while holding c\.mu`
}

// Clean: sends inside a spawned goroutine do not run under the caller's
// lock; the closure body is analyzed with its own empty lock state.
func (c *coordinator) handoff(v int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	go func() {
		c.results <- v
	}()
}

// Clean: ranging over a slice under the lock is fine.
func (c *coordinator) snapshot(vals []int) (sum int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, v := range vals {
		sum += v
	}
	return sum
}

// promoted embeds the mutex; the promoted Lock is tracked too.
type promoted struct {
	sync.Mutex
	out chan int
}

func (p *promoted) sendPromoted(v int) {
	p.Lock()
	defer p.Unlock()
	p.out <- v // want `channel send while holding p`
}

// Clean: sync.Cond.Wait requires the lock by contract and is exempt.
type conditioned struct {
	mu   sync.Mutex
	cond *sync.Cond
	done bool
}

func (c *conditioned) await() {
	c.mu.Lock()
	for !c.done {
		c.cond.Wait()
	}
	c.mu.Unlock()
}

// Suppressed with a recorded reason: the channel is buffered and the
// send cannot block.
func (c *coordinator) buffered(v int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	//lint:ignore lockedchan results is buffered to len(shards); the send cannot block
	c.results <- v
}
