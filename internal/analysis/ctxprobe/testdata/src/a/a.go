// Fixture for the ctxprobe analyzer: probes that ignore their context
// or block without consulting it are flagged; forwarding and
// select-based consultation are clean.
package a

import (
	"context"
	"time"

	"veridevops/internal/core"
)

// ignoring implements core.ContextChecker but discards the context.
type ignoring struct{}

func (ignoring) CheckCtx(_ context.Context) core.CheckStatus { // want `CheckCtx discards its context parameter`
	return core.CheckPass
}

// unnamed declares the parameter without a name — same defect.
type unnamed struct{}

func (unnamed) CheckCtx(context.Context) core.CheckStatus { // want `CheckCtx discards its context parameter`
	return core.CheckPass
}

// unused names ctx and then never looks at it.
type unused struct{}

func (unused) CheckCtx(ctx context.Context) core.CheckStatus { // want `CheckCtx never uses its context`
	return core.CheckPass
}

// sleeper blocks without ever consulting ctx: the abandonment boundary
// cannot be observed. ctx is "used" (logged), so only the blocking
// finding fires.
type sleeper struct{ probe chan struct{} }

func (s sleeper) CheckCtx(ctx context.Context) core.CheckStatus {
	_ = ctx.Value("attempt")
	time.Sleep(time.Millisecond) // want `CheckCtx sleeps \(time.Sleep\) without consulting ctx.Done/ctx.Err`
	<-s.probe
	return core.CheckPass
}

// cooperative consults ctx at the blocking boundary — clean.
type cooperative struct{ probe chan struct{} }

func (c cooperative) CheckCtx(ctx context.Context) core.CheckStatus {
	select {
	case <-c.probe:
		return core.CheckPass
	case <-ctx.Done():
		return core.CheckIncomplete
	}
}

// errChecking consults ctx.Err between probe rounds — clean.
type errChecking struct{}

func (errChecking) CheckCtx(ctx context.Context) core.CheckStatus {
	for i := 0; i < 3; i++ {
		if ctx.Err() != nil {
			return core.CheckIncomplete
		}
	}
	return core.CheckPass
}

// forwarder passes ctx to its callee, which owns the blocking — clean.
type forwarder struct{ inner core.ContextChecker }

func (f forwarder) CheckCtx(ctx context.Context) core.CheckStatus {
	return probeCtx(ctx)
}

// probeCtx follows the *Ctx probe convention, so it is in scope itself:
// it uses ctx (so the use check passes) but blocks on a channel receive
// without ever consulting Done/Err.
func probeCtx(ctx context.Context) core.CheckStatus {
	_ = ctx.Value("attempt")
	ch := make(chan core.CheckStatus, 1)
	return <-ch // want `probeCtx blocks \(channel receive\) without consulting ctx.Done/ctx.Err`
}

// waitCtx is the clean shape of the same probe.
func waitCtx(ctx context.Context) core.CheckStatus {
	ch := make(chan core.CheckStatus, 1)
	select {
	case st := <-ch:
		return st
	case <-ctx.Done():
		return core.CheckIncomplete
	}
}

// helperCtx documents the accepted false negative: consultation hidden
// behind a helper that receives ctx. The analyzer accepts the forward,
// so nothing is reported here; the helper owns the blocking.
func helperCtx(ctx context.Context, ch chan struct{}) core.CheckStatus {
	return waitCtx(ctx)
}

// notAProbe has no context parameter and is out of scope.
func notAProbe(ch chan struct{}) {
	<-ch
}

// suppressedCtx records why a non-cooperative wait is acceptable.
type suppressedCtx struct{ done chan struct{} }

func (s suppressedCtx) CheckCtx(ctx context.Context) core.CheckStatus {
	_ = ctx.Value("attempt")
	//lint:ignore ctxprobe the channel is closed by the same goroutine that cancels ctx
	<-s.done
	return core.CheckPass
}

// serveCtx is the daemon loop shape (cmd/vdo-serve's shutdown path):
// ticks and a cancellation signal multiplexed through one select, every
// blocking branch racing ctx.Done. Clean — no finding.
func serveCtx(ctx context.Context, tick <-chan struct{}) int {
	flushes := 0
	for {
		select {
		case <-ctx.Done():
			return flushes
		case <-tick:
			flushes++
		}
	}
}

// drainCtx is the broken daemon shape: the loop selects on its tick
// channel alone, so a shutdown cannot interrupt a quiet tick source.
func drainCtx(ctx context.Context, tick <-chan struct{}) int {
	_ = ctx.Value("deadline")
	flushes := 0
	for range tick { // want `drainCtx blocks \(range over channel\) without consulting ctx.Done/ctx.Err`
		flushes++
	}
	return flushes
}
