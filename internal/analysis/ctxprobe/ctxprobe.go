// Package ctxprobe verifies cooperative cancellation is real, not
// decorative. The engine cancels each attempt's context at its timeout
// (engine.AttemptCtx) so a check implementing core.ContextChecker can
// unwind at the next probe boundary and release its worker goroutine; a
// CheckCtx that never looks at its context silently degrades back to
// abandon-in-background semantics while claiming otherwise.
//
// The analyzer inspects, in non-test files:
//
//   - every method implementing core.ContextChecker (a CheckCtx method
//     whose receiver satisfies the interface), and
//   - every function or method following the probe convention: a name
//     ending in "Ctx" with a context.Context parameter (the host-layer
//     probes InstalledCtx/ConfigCtx and the fault layer's stalls).
//
// Two findings:
//
//  1. the context parameter is unnamed, blank, or never used — the
//     probe ignores cancellation entirely;
//  2. the body blocks or sleeps (time.Sleep, a Sleep-seam call, a
//     channel operation) but never consults ctx.Done() or ctx.Err() —
//     the blocking branch cannot observe abandonment.
//
// A probe that merely forwards ctx to a callee passes check 1 and is
// accepted: the callee owns the blocking. Known false negatives,
// accepted to keep the pass local: consultation hidden behind a helper
// that receives ctx (e.g. ctx consulted through a select in a called
// function), and blocking hidden entirely inside a callee that does not
// take ctx.
package ctxprobe

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"veridevops/internal/analysis"
)

// Analyzer is the ctxprobe pass.
var Analyzer = &analysis.Analyzer{
	Name: "ctxprobe",
	Doc:  "ContextChecker implementations and *Ctx probes must consult ctx.Done/ctx.Err wherever they block or sleep",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	ctxChecker := analysis.InterfaceType(pass.Pkg, analysis.CorePath, "ContextChecker")
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if !isProbe(pass, fd, ctxChecker) {
				continue
			}
			checkProbe(pass, fd)
		}
	}
	return nil, nil
}

// isProbe reports whether fd is in scope: a ContextChecker CheckCtx
// implementation, or any *Ctx-named function taking a context.
func isProbe(pass *analysis.Pass, fd *ast.FuncDecl, ctxChecker *types.Interface) bool {
	if ctxParam(pass, fd) == nil && !blankCtxParam(pass, fd) {
		return false
	}
	if strings.HasSuffix(fd.Name.Name, "Ctx") {
		if fd.Name.Name != "CheckCtx" || ctxChecker == nil {
			return true
		}
		// CheckCtx counts when the receiver actually satisfies the
		// interface (free functions named CheckCtx still match the
		// generic *Ctx convention above).
		if fd.Recv == nil || len(fd.Recv.List) == 0 {
			return true
		}
		fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
		if !ok {
			return true
		}
		recv := fn.Type().(*types.Signature).Recv()
		return recv == nil || analysis.ImplementsIface(recv.Type(), ctxChecker)
	}
	return false
}

// ctxParam returns the named, non-blank context.Context parameter object
// of fd, nil when there is none.
func ctxParam(pass *analysis.Pass, fd *ast.FuncDecl) types.Object {
	for _, field := range fd.Type.Params.List {
		if t := pass.TypesInfo.Types[field.Type].Type; !analysis.NamedTypeIs(t, "context", "Context") {
			continue
		}
		for _, name := range field.Names {
			if name.Name == "_" {
				continue
			}
			return pass.TypesInfo.Defs[name]
		}
	}
	return nil
}

// blankCtxParam reports whether fd declares a context parameter it
// cannot possibly use (unnamed or blank).
func blankCtxParam(pass *analysis.Pass, fd *ast.FuncDecl) bool {
	for _, field := range fd.Type.Params.List {
		if t := pass.TypesInfo.Types[field.Type].Type; !analysis.NamedTypeIs(t, "context", "Context") {
			continue
		}
		if len(field.Names) == 0 {
			return true
		}
		for _, name := range field.Names {
			if name.Name == "_" {
				return true
			}
		}
	}
	return false
}

func checkProbe(pass *analysis.Pass, fd *ast.FuncDecl) {
	obj := ctxParam(pass, fd)
	if obj == nil {
		pass.Reportf(fd.Name.Pos(),
			"%s discards its context parameter: cooperative cancellation is defeated (name it and consult ctx.Done/ctx.Err, or pass it on)",
			fd.Name.Name)
		return
	}
	if !analysis.UsesObject(pass.TypesInfo, fd.Body, obj) {
		pass.Reportf(fd.Name.Pos(),
			"%s never uses its context: cooperative cancellation is defeated (consult ctx.Done/ctx.Err at probe boundaries, or pass ctx on)",
			fd.Name.Name)
		return
	}
	blockPos, blockWhat := firstBlockingOp(pass, fd.Body)
	if blockPos == token.NoPos {
		return
	}
	if consultsCtx(pass, fd.Body, obj) {
		return
	}
	pass.Reportf(blockPos,
		"%s %s without consulting ctx.Done/ctx.Err: an abandoned attempt cannot unwind at this boundary",
		fd.Name.Name, blockWhat)
}

// firstBlockingOp finds a blocking operation in the body: a time.Sleep
// call, a call through a Sleep-named seam, or a channel send, receive
// or range outside a select (selects are judged by whether a ctx case
// exists, which consultsCtx covers).
func firstBlockingOp(pass *analysis.Pass, body *ast.BlockStmt) (token.Pos, string) {
	pos, what := token.NoPos, ""
	ast.Inspect(body, func(n ast.Node) bool {
		if pos != token.NoPos {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if analysis.IsPkgFunc(pass.TypesInfo, n, "time", "Sleep") {
				pos, what = n.Pos(), "sleeps (time.Sleep)"
				return false
			}
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Sleep" {
				pos, what = n.Pos(), "sleeps (Sleep seam)"
				return false
			}
		case *ast.SendStmt:
			pos, what = n.Pos(), "blocks (channel send)"
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				pos, what = n.Pos(), "blocks (channel receive)"
				return false
			}
		case *ast.RangeStmt:
			// Ranging over a channel blocks between elements exactly
			// like a bare receive — the daemon-loop shape that must
			// select on ctx.Done instead.
			if t := pass.TypesInfo.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					pos, what = n.X.Pos(), "blocks (range over channel)"
					return false
				}
			}
		case *ast.SelectStmt:
			// A select's cases are the consultation mechanism; skip its
			// comm clauses and judge via consultsCtx.
			return false
		}
		return true
	})
	return pos, what
}

// consultsCtx reports whether the body calls Done or Err on the context
// parameter.
func consultsCtx(pass *analysis.Pass, body *ast.BlockStmt, obj types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if sel.Sel.Name != "Done" && sel.Sel.Name != "Err" {
			return true
		}
		if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}
