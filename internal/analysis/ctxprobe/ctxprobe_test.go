package ctxprobe_test

import (
	"testing"

	"veridevops/internal/analysis/analysistest"
	"veridevops/internal/analysis/ctxprobe"
)

func TestCtxprobe(t *testing.T) {
	analysistest.Run(t, ctxprobe.Analyzer, "testdata/src/a", "a")
}
