package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// parseSource builds a minimal Unit (no type information) from source,
// enough to drive the directive parser.
func parseSource(t *testing.T, src string) *Unit {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "src.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return &Unit{ImportPath: "p", Fset: fset, Files: []*ast.File{f}}
}

func TestCutDirective(t *testing.T) {
	for comment, want := range map[string]struct {
		payload string
		isFile  bool
	}{
		"//lint:ignore spanend reason here":       {"spanend reason here", false},
		"//lint:file-ignore clockuse real clock":  {"clockuse real clock", true},
		"// lint:ignore spanend spaced out":       {"", false},
		"//lint:ignored spanend wrong verb":       {"", false},
		"// ordinary comment":                     {"", false},
		"//lint:ignore  spanend,reqmeta  two  ws": {"spanend,reqmeta  two  ws", false},
	} {
		payload, isFile := cutDirective(comment)
		if payload != want.payload || isFile != want.isFile {
			t.Errorf("cutDirective(%q) = (%q, %v), want (%q, %v)",
				comment, payload, isFile, want.payload, want.isFile)
		}
	}
}

func TestParseDirectivesAndSuppression(t *testing.T) {
	src := `package p

//lint:file-ignore reqmeta generated catalogue data

func f() {
	//lint:ignore spanend,clockuse the span escapes to the watchdog
	x := 1
	_ = x
}

//lint:ignore directcheck
`
	u := parseSource(t, src)
	idx, bad := parseDirectives(u)

	if len(bad) != 1 || !strings.Contains(bad[0].Message, "malformed") {
		t.Fatalf("want exactly one malformed-directive finding, got %v", bad)
	}
	if bad[0].Analyzer != "lint" {
		t.Errorf("malformed finding attributed to %q, want \"lint\"", bad[0].Analyzer)
	}

	mk := func(analyzer, file string, line int) Finding {
		return Finding{Analyzer: analyzer, File: file, Line: line}
	}
	cases := []struct {
		f    Finding
		want bool
	}{
		{mk("reqmeta", "src.go", 42), true},     // file-ignore matches anywhere
		{mk("spanend", "src.go", 7), true},      // line below the ignore
		{mk("clockuse", "src.go", 7), true},     // second analyzer in the list
		{mk("spanend", "src.go", 6), true},      // the directive's own line
		{mk("spanend", "src.go", 8), false},     // two lines below: out of reach
		{mk("directcheck", "src.go", 12), false}, // malformed directives suppress nothing
		{mk("lockedchan", "src.go", 7), false},  // analyzer not listed
		{mk("spanend", "other.go", 7), false},   // wrong file
	}
	for _, c := range cases {
		if got := suppressed(idx, c.f); got != c.want {
			t.Errorf("suppressed(%s %s:%d) = %v, want %v", c.f.Analyzer, c.f.File, c.f.Line, got, c.want)
		}
	}
}

func TestFindingString(t *testing.T) {
	f := Finding{Analyzer: "spanend", File: "internal/fleet/fleet.go", Line: 12, Col: 3, Message: "span leaked"}
	want := "internal/fleet/fleet.go:12:3: spanend: span leaked"
	if got := f.String(); got != want {
		t.Errorf("Finding.String() = %q, want %q", got, want)
	}
}
