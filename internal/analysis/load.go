package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Unit is one type-checked body of code an analyzer runs over: a package
// together with its in-package test files, or a package's external test
// package (the *_test.go files declaring package foo_test). Test files
// are included deliberately — clockuse exists precisely to police tests.
type Unit struct {
	// ImportPath is the package's import path. External test units share
	// the base package's path (their files are all *_test.go, which is how
	// analyzers that exempt tests recognise them).
	ImportPath string
	// Dir is the package directory on disk.
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// listedPackage is the slice of `go list -json` output the loader reads.
type listedPackage struct {
	Dir           string
	ImportPath    string
	Name          string
	GoFiles       []string
	CgoFiles      []string
	TestGoFiles   []string
	XTestGoFiles  []string
	Incomplete    bool
	Error         *struct{ Err string }
}

// Load enumerates the packages matching patterns (go list syntax, e.g.
// "./...") relative to dir and type-checks each, returning one Unit per
// package plus one per non-empty external test package. All units share
// one FileSet. Load fails on the first package that does not type-check:
// the analyzers assume well-typed input, and the repository gates on
// `go build ./...` anyway.
func Load(dir string, patterns ...string) ([]*Unit, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cmd := exec.Command("go", append([]string{"list", "-json"}, patterns...)...)
	cmd.Dir = dir
	var out, errb bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("analysis: go list %s: %v\n%s", strings.Join(patterns, " "), err, errb.String())
	}
	var pkgs []listedPackage
	dec := json.NewDecoder(&out)
	for dec.More() {
		var p listedPackage
		if err := dec.Decode(&p); err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %v", err)
		}
		pkgs = append(pkgs, p)
	}

	fset := token.NewFileSet()
	imp := newChainImporter(fset)
	var units []*Unit
	for _, p := range pkgs {
		if p.Error != nil {
			return nil, fmt.Errorf("analysis: go list %s: %s", p.ImportPath, p.Error.Err)
		}
		if len(p.CgoFiles) > 0 {
			return nil, fmt.Errorf("analysis: %s: cgo packages are not supported", p.ImportPath)
		}
		if len(p.GoFiles)+len(p.TestGoFiles) > 0 {
			u, err := checkUnit(fset, imp, p.ImportPath, p.Dir, append(p.GoFiles, p.TestGoFiles...))
			if err != nil {
				return nil, err
			}
			units = append(units, u)
		}
		if len(p.XTestGoFiles) > 0 {
			u, err := checkUnit(fset, imp, p.ImportPath, p.Dir, p.XTestGoFiles)
			if err != nil {
				return nil, err
			}
			units = append(units, u)
		}
	}
	return units, nil
}

// LoadDir parses and type-checks every .go file directly inside dir as a
// single package under the given import path — the fixture loader behind
// analysistest. dir must sit inside the module so imports of real module
// packages resolve.
func LoadDir(dir, importPath string) (*Unit, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, e.Name())
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no .go files in %s", dir)
	}
	sort.Strings(files)
	fset := token.NewFileSet()
	return checkUnit(fset, newChainImporter(fset), importPath, dir, files)
}

// checkUnit parses the named files from dir and type-checks them as one
// package.
func checkUnit(fset *token.FileSet, imp types.ImporterFrom, importPath, dir string, names []string) (*Unit, error) {
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: %v", err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	var typeErrs []error
	conf := types.Config{
		Importer: &srcDirImporter{imp: imp, srcDir: dir},
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	pkg, _ := conf.Check(importPath, fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("analysis: %s does not type-check: %v", importPath, typeErrs[0])
	}
	return &Unit{ImportPath: importPath, Dir: dir, Fset: fset, Files: files, Pkg: pkg, Info: info}, nil
}

// chainImporter resolves imports from source via the stdlib "source"
// importer (go/internal/srcimporter), which understands module
// resolution through go/build. One instance is shared across all units
// of a Load so stdlib and module dependencies are type-checked once.
func newChainImporter(fset *token.FileSet) types.ImporterFrom {
	imp := importer.ForCompiler(fset, "source", nil)
	from, ok := imp.(types.ImporterFrom)
	if !ok {
		// The source importer has implemented ImporterFrom since it
		// appeared; this is a belt-and-braces fallback, not a real path.
		return fallbackImporter{imp}
	}
	return from
}

type fallbackImporter struct{ imp types.Importer }

func (f fallbackImporter) Import(path string) (*types.Package, error) { return f.imp.Import(path) }
func (f fallbackImporter) ImportFrom(path, _ string, _ types.ImportMode) (*types.Package, error) {
	return f.imp.Import(path)
}

// srcDirImporter pins the srcDir of every import to the importing
// package's directory, so module-relative resolution works regardless of
// the process working directory (go test runs with the package dir as
// cwd; cmd/vdolint runs from wherever the user invoked it).
type srcDirImporter struct {
	imp    types.ImporterFrom
	srcDir string
}

func (s *srcDirImporter) Import(path string) (*types.Package, error) {
	return s.imp.ImportFrom(path, s.srcDir, 0)
}

// LookupImport returns the named package from pkg's transitive import
// graph, or pkg itself when it has that path. Analyzers use it to fetch
// contract types (core.ContextChecker, telemetry.Span, ...) from the
// same type universe as the code under analysis, which keeps
// types.Implements sound. Returns nil when the package is not imported —
// in which case the contract cannot be referenced and there is nothing
// to check.
func LookupImport(pkg *types.Package, path string) *types.Package {
	if pkg == nil {
		return nil
	}
	if pkg.Path() == path {
		return pkg
	}
	seen := map[*types.Package]bool{pkg: true}
	queue := append([]*types.Package{}, pkg.Imports()...)
	for len(queue) > 0 {
		p := queue[0]
		queue = queue[1:]
		if seen[p] {
			continue
		}
		seen[p] = true
		if p.Path() == path {
			return p
		}
		queue = append(queue, p.Imports()...)
	}
	return nil
}
