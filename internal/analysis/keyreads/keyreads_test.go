package keyreads_test

import (
	"testing"

	"veridevops/internal/analysis/analysistest"
	"veridevops/internal/analysis/keyreads"
)

func TestKeyreads(t *testing.T) {
	analysistest.Run(t, keyreads.Analyzer, "testdata/src/a", "a")
}
