// Fixture for the keyreads analyzer: declared-reads contract between
// Check/CheckCtx bodies and CheckStateKeys declarations.
package a

import (
	"context"
	"fmt"

	"veridevops/internal/core"
	"veridevops/internal/host"
)

// UnderDeclared reads two package slots but declares only one: the
// hard-coded auditd read is invisible to the dependency index.
type UnderDeclared struct {
	H    *host.Linux
	Name string
}

func (u *UnderDeclared) Check() core.CheckStatus {
	if !u.H.Installed(u.Name) {
		return core.CheckBool(false)
	}
	return core.CheckBool(u.H.Installed("auditd")) // want `UnderDeclared reads pkg:auditd but CheckStateKeys does not declare it`
}

func (u *UnderDeclared) CheckStateKeys() []string {
	return []string{host.PackageKey(u.Name).String()}
}

// OverDeclared declares a service slot its body never reads.
type OverDeclared struct{ H *host.Linux }

func (o *OverDeclared) Check() core.CheckStatus {
	return core.CheckBool(o.H.ServiceActive("sshd"))
}

func (o *OverDeclared) CheckStateKeys() []string {
	return []string{
		host.ServiceKey("sshd").String(),
		host.ServiceKey("telnetd").String(), // want `OverDeclared declares svc:telnetd which Check never reads`
	}
}

// ViaHelper routes its config read through a helper method; the
// interprocedural summary still matches the declaration. Clean.
type ViaHelper struct {
	H             *host.Linux
	File, Setting string
}

func (v *ViaHelper) Check() core.CheckStatus {
	val, ok := v.lookup()
	return core.CheckBool(ok && val == "no")
}

func (v *ViaHelper) lookup() (string, bool) { return v.H.Config(v.File, v.Setting) }

func (v *ViaHelper) CheckStateKeys() []string {
	return []string{host.ConfigKey(v.File, v.Setting).String()}
}

// HelperLeak hides an undeclared service read behind a helper, and
// declares a package key it never reads.
type HelperLeak struct{ H *host.Linux }

func (h *HelperLeak) Check() core.CheckStatus {
	return core.CheckBool(h.probe()) // want `HelperLeak reads svc:cron \(via probe\) but CheckStateKeys does not declare it`
}

func (h *HelperLeak) probe() bool { return h.H.ServiceActive("cron") }

func (h *HelperLeak) CheckStateKeys() []string {
	return []string{"pkg:cron"} // want `HelperLeak declares pkg:cron which Check never reads`
}

// DynamicKey reads a package whose name is computed at runtime: the
// analyzer cannot resolve the key, so it warns instead of erroring.
type DynamicKey struct{ H *host.Linux }

func (d *DynamicKey) Check() core.CheckStatus {
	name := pick()
	return core.CheckBool(d.H.Installed(name)) // want `DynamicKey reads a "pkg" key the analyzer cannot resolve`
}

func pick() string { return "x" }

func (d *DynamicKey) CheckStateKeys() []string { return []string{"pkg:x"} }

// DeferRead reads inside a deferred closure; the read still happens
// during Check and must be declared.
type DeferRead struct{ H *host.Linux }

func (d *DeferRead) Check() core.CheckStatus {
	ok := true
	defer func() {
		ok = ok && d.H.Installed("sudo") // want `DeferRead reads pkg:sudo but CheckStateKeys does not declare it`
	}()
	return core.CheckBool(ok)
}

func (d *DeferRead) CheckStateKeys() []string { return nil }

// Inventory reads the whole package inventory: no per-key declaration
// can make push mode sound for it.
type Inventory struct{ H *host.Linux }

func (i *Inventory) Check() core.CheckStatus {
	return core.CheckBool(len(i.H.Packages()) > 0) // want `Inventory reads the whole "pkg" inventory`
}

func (i *Inventory) CheckStateKeys() []string { return []string{"pkg:bash"} }

// Escapes hands its host to a function value the analyzer cannot
// follow.
type Escapes struct {
	H     *host.Linux
	Probe func(*host.Linux) bool
}

func (e *Escapes) Check() core.CheckStatus {
	return core.CheckBool(e.Probe(e.H)) // want `Escapes may read host state through a call the analyzer cannot follow`
}

func (e *Escapes) CheckStateKeys() []string { return []string{"pkg:bash"} }

// Waived carries a recorded suppression: the undeclared read is
// acknowledged, so no finding surfaces.
type Waived struct{ H *host.Linux }

func (wv *Waived) Check() core.CheckStatus {
	//lint:ignore keyreads metrics-only probe, index soundness reviewed by hand in PR 10
	return core.CheckBool(wv.H.Installed("ntp"))
}

func (wv *Waived) CheckStateKeys() []string { return nil }

// NoDecl reads host state but implements no KeyReader at all: push
// mode must conservatively re-run it on every event.
type NoDecl struct{ H *host.Linux }

func (n *NoDecl) Check() core.CheckStatus { // want `NoDecl reads host state \(pkg:openssl\) but implements no core\.KeyReader`
	return core.CheckBool(n.H.Installed("openssl"))
}

// AuditCheck exercises the AuditPol.Run special case: the /subcategory
// flag built with fmt.Sprintf resolves to the audit slot. Clean.
type AuditCheck struct {
	AP  host.AuditPol
	Sub string
}

func (a *AuditCheck) Check() core.CheckStatus {
	out, err := a.AP.Run("/get", fmt.Sprintf("/subcategory:%q", a.Sub))
	return core.CheckBool(err == nil && out != "")
}

func (a *AuditCheck) CheckStateKeys() []string { return []string{host.AuditKey(a.Sub).String()} }

// Clean delegates Check to CheckCtx; the merged summary matches the
// declaration exactly. Clean.
type Clean struct {
	H   *host.Linux
	Pkg string
}

func (c *Clean) Check() core.CheckStatus { return c.CheckCtx(context.Background()) }

func (c *Clean) CheckCtx(ctx context.Context) core.CheckStatus {
	return core.CheckBool(c.H.InstalledCtx(ctx, c.Pkg))
}

func (c *Clean) CheckStateKeys() []string { return []string{host.PackageKey(c.Pkg).String()} }

// NoReads performs no host access at all; implementing no KeyReader is
// fine. Clean.
type NoReads struct{ Threshold int }

func (n *NoReads) Check() core.CheckStatus { return core.CheckBool(n.Threshold > 0) }
