// Package keyreads verifies the declared-reads contract behind
// push-mode evaluation: every core.KeyReader's CheckStateKeys() must
// cover each host-state slot its Check/CheckCtx body actually reads.
// Since PR 7 the fleet's reverse dependency index (fleet.BuildDepIndex)
// re-evaluates a check only when an event touches one of its declared
// keys — an under-declared read means push-mode verdicts silently go
// stale, the exact unsoundness the sweep-vs-push fuzzer can only catch
// by luck.
//
// For every named type of the package implementing core.Checkable or
// core.ContextChecker (methods declared in this package's non-test
// files), the analyzer compares the interprocedural read-effect summary
// of Check/CheckCtx (analysis.Summarizer: host accessor calls with
// symbolic key terms, helper indirection inlined bottom-up over the
// intra-package call graph) against the key terms CheckStateKeys
// returns (composite literals of "kind:name" constants or
// host.XxxKey(...).String() constructor chains, same-package helper
// returns followed with argument substitution). Verdicts:
//
//   - a provable read no declared key covers → ERROR (push-mode
//     unsoundness);
//   - a whole-inventory read (Packages, Subcategories) by a KeyReader →
//     ERROR (per-key declarations cannot cover it);
//   - a read with a key the analyzer cannot resolve, or a call it
//     cannot follow that receives a host value → warning;
//   - a declared key the body never provably reads → warning
//     (over-declaration: stale fan-out re-runs the check needlessly);
//   - a declared key the analyzer cannot resolve → warning;
//   - a Checkable that reads host state but implements no KeyReader at
//     all → warning (conservative every-delta fan-out, see
//     fleet.DepIndex.Unindexed).
//
// Known limits: the summarizer follows same-package calls only (bounded
// depth); host state reached through function values that close over a
// host, or through helpers in other packages, is invisible — the
// dynamic host.ReadRecorder oracle (make verify-reads) covers that
// hole. Keys read under short-circuit conditions are still required to
// be declared: the index must be sound for every reachable path.
package keyreads

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"veridevops/internal/analysis"
)

// Analyzer is the keyreads pass.
var Analyzer = &analysis.Analyzer{
	Name: "keyreads",
	Doc:  "CheckStateKeys() must declare every host-state slot Check/CheckCtx reads (push-mode soundness)",
	Run:  run,
}

// keyCtors maps host key-constructor names to kinds and arity.
var keyCtors = map[string]struct {
	kind string
	args int
}{
	"PackageKey":  {analysis.KindPackage, 1},
	"ServiceKey":  {analysis.KindService, 1},
	"ConfigKey":   {analysis.KindConfig, 2},
	"AuditKey":    {analysis.KindAudit, 1},
	"RegistryKey": {analysis.KindRegistry, 1},
	"NetKey":      {analysis.KindNet, 1},
}

func run(pass *analysis.Pass) (any, error) {
	checkable := analysis.InterfaceType(pass.Pkg, analysis.CorePath, "Checkable")
	ctxChecker := analysis.InterfaceType(pass.Pkg, analysis.CorePath, "ContextChecker")
	keyReader := analysis.InterfaceType(pass.Pkg, analysis.CorePath, "KeyReader")
	if checkable == nil || keyReader == nil {
		return nil, nil // package cannot reference the contract
	}
	sum := analysis.NewSummarizer(pass)
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		if !analysis.ImplementsIface(named, checkable) && !analysis.ImplementsIface(named, ctxChecker) {
			continue
		}
		checkType(pass, sum, named, keyReader)
	}
	return nil, nil
}

// methodDecl resolves the declaration of the named method in the
// receiver type's method set, nil when the method is absent, promoted
// from another package, or declared in a test file.
func methodDecl(pass *analysis.Pass, sum *analysis.Summarizer, named *types.Named, name string) (*types.Func, *ast.FuncDecl) {
	obj, _, _ := types.LookupFieldOrMethod(types.NewPointer(named), true, pass.Pkg, name)
	fn, ok := obj.(*types.Func)
	if !ok {
		return nil, nil
	}
	return fn, sum.Decl(fn)
}

func checkType(pass *analysis.Pass, sum *analysis.Summarizer, named *types.Named, keyReader *types.Interface) {
	checkFn, checkDecl := methodDecl(pass, sum, named, "Check")
	ctxFn, ctxDecl := methodDecl(pass, sum, named, "CheckCtx")
	if checkDecl == nil && ctxDecl == nil {
		return // methods promoted, embedded-interface, or test-only: out of scope
	}
	var reads []analysis.Read
	if checkDecl != nil {
		reads = mergeReads(reads, sum.Summarize(checkFn).Reads)
	}
	if ctxDecl != nil {
		reads = mergeReads(reads, sum.Summarize(ctxFn).Reads)
	}
	typeName := named.Obj().Name()

	if !analysis.ImplementsIface(named, keyReader) {
		if len(reads) > 0 {
			decl := checkDecl
			if decl == nil {
				decl = ctxDecl
			}
			pass.Warnf(decl.Name.Pos(),
				"%s reads host state (%s) but implements no core.KeyReader: push-mode evaluation must conservatively re-run it on every event of its host",
				typeName, readList(reads))
		}
		return
	}

	_, keysDecl := methodDecl(pass, sum, named, "CheckStateKeys")
	if keysDecl == nil {
		return // promoted declaration: the defining package's pass verifies it
	}
	declared := declaredKeys(pass, sum, keysDecl, 0)

	declResolved := true
	for _, d := range declared {
		if !d.Resolved() {
			declResolved = false
		}
	}
	readsResolved := true
	for _, r := range reads {
		if !r.Resolved() {
			readsResolved = false
		}
	}

	used := make([]bool, len(declared))
	for _, r := range reads {
		via := ""
		if r.Path != "" {
			via = " (via " + r.Path + ")"
		}
		switch {
		case r.Whole:
			pass.Reportf(r.Pos,
				"%s reads the whole %q inventory%s: no per-key CheckStateKeys declaration can cover it, so push-mode evaluation is unsound for this check",
				typeName, r.Kind, via)
		case r.Opaque && r.Kind == "":
			pass.Warnf(r.Pos,
				"%s may read host state through a call the analyzer cannot follow%s: declared reads cannot be verified statically (run the dynamic oracle: make verify-reads)",
				typeName, via)
		case !r.Resolved():
			pass.Warnf(r.Pos,
				"%s reads a %q key the analyzer cannot resolve (%s)%s: cannot prove it is declared in CheckStateKeys",
				typeName, r.Kind, r.Key(), via)
		default:
			matched := false
			for i, d := range declared {
				if d.Resolved() && r.Matches(d) {
					used[i] = true
					matched = true
				}
			}
			if matched {
				continue
			}
			if declResolved {
				pass.Reportf(r.Pos,
					"%s reads %s%s but CheckStateKeys does not declare it: push-mode evaluation will miss changes to this slot (under-declaration)",
					typeName, r.Key(), via)
			} else {
				pass.Warnf(r.Pos,
					"%s reads %s%s which no resolvable declared key covers",
					typeName, r.Key(), via)
			}
		}
	}
	for i, d := range declared {
		if !d.Resolved() {
			pass.Warnf(d.Pos,
				"%s declares a state key the analyzer cannot resolve (%s): cannot verify it against Check's reads",
				typeName, d.Key())
			continue
		}
		if used[i] || !readsResolved {
			continue
		}
		pass.Warnf(d.Pos,
			"%s declares %s which Check never reads: events on this key re-run the check needlessly (over-declaration)",
			typeName, d.Key())
	}
}

// mergeReads unions summaries, deduplicating structurally equal terms
// (Check delegating to CheckCtx would otherwise double every read).
func mergeReads(dst, src []analysis.Read) []analysis.Read {
	for _, r := range src {
		dup := false
		for _, have := range dst {
			if have.Opaque == r.Opaque && have.Matches(r) {
				dup = true
				break
			}
		}
		if !dup {
			dst = append(dst, r)
		}
	}
	return dst
}

// readList renders distinct read keys for the no-KeyReader warning.
func readList(reads []analysis.Read) string {
	seen := map[string]bool{}
	var keys []string
	for _, r := range reads {
		k := r.Key()
		if r.Opaque && r.Kind == "" {
			k = "unresolvable call"
		}
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return strings.Join(keys, ", ")
}

// maxDeclDepth bounds helper recursion on the declaration side.
const maxDeclDepth = 3

// declaredKeys parses the key terms a CheckStateKeys body returns:
// composite literals (directly, via a local built with append, or via a
// same-package helper call with arguments substituted), each element a
// constant "kind:name" string or a host.XxxKey(...).String() chain.
// Unparseable shapes degrade to opaque terms, never to silence.
func declaredKeys(pass *analysis.Pass, sum *analysis.Summarizer, fd *ast.FuncDecl, depth int) []analysis.Read {
	fr := analysis.NewFrame(pass.TypesInfo, fd)
	var out []analysis.Read
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		if len(ret.Results) != 1 {
			return true
		}
		out = append(out, resultTerms(pass, sum, fd, fr, ret.Results[0], depth)...)
		return true
	})
	return out
}

// resultTerms expands one returned expression into key terms.
func resultTerms(pass *analysis.Pass, sum *analysis.Summarizer, fd *ast.FuncDecl, fr *analysis.Frame, e ast.Expr, depth int) []analysis.Read {
	e = ast.Unparen(e)
	switch x := e.(type) {
	case *ast.CompositeLit:
		var out []analysis.Read
		for _, elt := range x.Elts {
			out = append(out, keyTerm(pass, sum, fr, elt))
		}
		return out
	case *ast.Ident:
		if pass.TypesInfo.Types[x].IsNil() {
			return nil
		}
		obj := pass.TypesInfo.Uses[x]
		if v, ok := obj.(*types.Var); ok {
			if terms, ok := localSliceTerms(pass, sum, fd, fr, v, depth); ok {
				return terms
			}
		}
	case *ast.CallExpr:
		if callee := analysis.CalleeFunc(pass.TypesInfo, x); callee != nil && callee.Pkg() == pass.Pkg && depth < maxDeclDepth {
			if inner := sum.Decl(callee); inner != nil {
				calleeTerms := declaredKeys(pass, sum, inner, depth+1)
				recvTerm := sum.CallRecvTerm(x, fr)
				var out []analysis.Read
				for _, t := range calleeTerms {
					nt := analysis.Read{Kind: t.Kind, Whole: t.Whole, Opaque: t.Opaque, Pos: e.Pos()}
					for _, p := range t.Parts {
						nt.Parts = append(nt.Parts, sum.SubstituteAtCall(p, x, recvTerm, fr)...)
					}
					nt.Parts = analysis.NormalizeParts(nt.Parts)
					out = append(out, nt)
				}
				return out
			}
		}
	}
	return []analysis.Read{{Opaque: true, Pos: e.Pos()}}
}

// localSliceTerms follows a returned local slice variable: its
// initializing composite literal plus every append(x, ...) element in
// the function body.
func localSliceTerms(pass *analysis.Pass, sum *analysis.Summarizer, fd *ast.FuncDecl, fr *analysis.Frame, v *types.Var, depth int) ([]analysis.Read, bool) {
	var out []analysis.Read
	found := false
	resolvedAll := true
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		asg, ok := n.(*ast.AssignStmt)
		if !ok || len(asg.Lhs) != 1 {
			return true
		}
		id, ok := asg.Lhs[0].(*ast.Ident)
		if !ok {
			return true
		}
		if pass.TypesInfo.Defs[id] != v && pass.TypesInfo.Uses[id] != v {
			return true
		}
		found = true
		rhs := ast.Unparen(asg.Rhs[0])
		switch r := rhs.(type) {
		case *ast.CompositeLit:
			for _, elt := range r.Elts {
				out = append(out, keyTerm(pass, sum, fr, elt))
			}
		case *ast.CallExpr:
			// append(x, elems...) keeps the accumulator shape; anything
			// else makes the slice unresolvable.
			if fun, ok := r.Fun.(*ast.Ident); ok && fun.Name == "append" && len(r.Args) > 0 && r.Ellipsis == 0 {
				for _, elt := range r.Args[1:] {
					out = append(out, keyTerm(pass, sum, fr, elt))
				}
			} else {
				resolvedAll = false
			}
		default:
			if !pass.TypesInfo.Types[rhs].IsNil() {
				resolvedAll = false
			}
		}
		return true
	})
	if !found {
		return nil, false
	}
	if !resolvedAll {
		out = append(out, analysis.Read{Opaque: true, Pos: fd.Pos()})
	}
	return out, true
}

// keyTerm parses one declared key expression.
func keyTerm(pass *analysis.Pass, sum *analysis.Summarizer, fr *analysis.Frame, e ast.Expr) analysis.Read {
	e = ast.Unparen(e)
	// Constant "kind:name" string (possibly via concatenation the
	// type-checker folds).
	if parts := sum.ExprTerm(e, fr); len(parts) == 1 && parts[0].Resolved() && len(parts[0].Fields) == 0 {
		kind, rest, ok := strings.Cut(parts[0].Const, ":")
		if ok && analysis.KnownKinds[kind] {
			return analysis.Read{Kind: kind, Parts: []analysis.Part{analysis.ConstPart(rest)}, Pos: e.Pos()}
		}
		return analysis.Read{Opaque: true, Pos: e.Pos()}
	}
	// host.XxxKey(args...).String()
	if call, ok := e.(*ast.CallExpr); ok && len(call.Args) == 0 {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "String" {
			if inner, ok := ast.Unparen(sel.X).(*ast.CallExpr); ok {
				if ctor := analysis.CalleeFunc(pass.TypesInfo, inner); ctor != nil &&
					ctor.Pkg() != nil && ctor.Pkg().Path() == analysis.HostPath {
					if spec, ok := keyCtors[ctor.Name()]; ok && len(inner.Args) == spec.args {
						r := analysis.Read{Kind: spec.kind, Pos: e.Pos()}
						for i, arg := range inner.Args {
							if i > 0 {
								r.Parts = append(r.Parts, analysis.ConstPart(":"))
							}
							r.Parts = append(r.Parts, sum.ExprTerm(arg, fr)...)
						}
						r.Parts = analysis.NormalizeParts(r.Parts)
						return r
					}
				}
			}
		}
	}
	return analysis.Read{Opaque: true, Pos: e.Pos()}
}
