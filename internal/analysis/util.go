package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Paths of the contract-bearing packages the analyzers reason about.
const (
	CorePath      = "veridevops/internal/core"
	EnginePath    = "veridevops/internal/engine"
	TelemetryPath = "veridevops/internal/telemetry"
	HostPath      = "veridevops/internal/host"
)

// IsTestFile reports whether pos lies in a *_test.go file.
func IsTestFile(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(fset.Position(pos).Filename, "_test.go")
}

// ImportsPath reports whether any of the files imports the given package
// path directly.
func ImportsPath(files []*ast.File, path string) bool {
	quoted := `"` + path + `"`
	for _, f := range files {
		for _, imp := range f.Imports {
			if imp.Path.Value == quoted {
				return true
			}
		}
	}
	return false
}

// InterfaceType resolves the named interface from pkg's import universe
// (pkg itself included). Nil when the package or name is absent — in
// which case the code under analysis cannot reference the contract and
// there is nothing to enforce.
func InterfaceType(pkg *types.Package, path, name string) *types.Interface {
	p := LookupImport(pkg, path)
	if p == nil {
		return nil
	}
	obj := p.Scope().Lookup(name)
	if obj == nil {
		return nil
	}
	iface, _ := obj.Type().Underlying().(*types.Interface)
	return iface
}

// ImplementsIface reports whether t or *t implements iface.
func ImplementsIface(t types.Type, iface *types.Interface) bool {
	if t == nil || iface == nil {
		return false
	}
	if types.Implements(t, iface) {
		return true
	}
	if _, isPtr := t.Underlying().(*types.Pointer); !isPtr {
		return types.Implements(types.NewPointer(t), iface)
	}
	return false
}

// CalleeFunc resolves the *types.Func a call invokes (method or package
// function); nil for calls through function values, conversions and
// builtins.
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// IsPkgFunc reports whether the call invokes the named function of the
// named package (e.g. time.Sleep), resolved through the type checker so
// renamed imports are seen through.
func IsPkgFunc(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	fn := CalleeFunc(info, call)
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == pkgPath && fn.Name() == name
}

// NamedTypeIs reports whether t (possibly behind a pointer) is the named
// type pkgPath.name.
func NamedTypeIs(t types.Type, pkgPath, name string) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// ChainBase peels a method-call chain x.M1(...).M2(...)...Mn(...) down to
// its base expression, returning the base and the method names in call
// order (M1 first). Non-chain expressions return themselves with no
// methods.
func ChainBase(expr ast.Expr) (ast.Expr, []string) {
	var methods []string
	e := ast.Unparen(expr)
	for {
		call, ok := e.(*ast.CallExpr)
		if !ok {
			break
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			break
		}
		methods = append(methods, sel.Sel.Name)
		e = ast.Unparen(sel.X)
	}
	// methods were collected outermost-first; reverse into call order.
	for i, j := 0, len(methods)-1; i < j; i, j = i+1, j-1 {
		methods[i], methods[j] = methods[j], methods[i]
	}
	return e, methods
}

// UsesObject reports whether the subtree references the given object.
func UsesObject(info *types.Info, node ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(node, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}
