package analysis

import (
	"go/token"
	"go/types"
	"testing"
)

func TestNormalizePartsMergesConstants(t *testing.T) {
	got := NormalizeParts([]Part{ConstPart("a"), ConstPart(""), ConstPart("b"), OpaquePart(), ConstPart("c")})
	if len(got) != 3 {
		t.Fatalf("want 3 parts, got %d: %v", len(got), got)
	}
	if got[0].Const != "ab" || !got[1].Opaque || got[2].Const != "c" {
		t.Fatalf("bad normalization: %v", got)
	}
}

func TestReadMatchesFoldsConcatenation(t *testing.T) {
	a := Read{Kind: KindConfig, Parts: []Part{ConstPart("/etc/ssh"), ConstPart(":"), ConstPart("PermitRootLogin")}}
	b := Read{Kind: KindConfig, Parts: []Part{ConstPart("/etc/ssh:PermitRootLogin")}}
	if !a.Matches(b) || !b.Matches(a) {
		t.Fatalf("folded constants should match: %s vs %s", a.Key(), b.Key())
	}
	c := Read{Kind: KindService, Parts: []Part{ConstPart("/etc/ssh:PermitRootLogin")}}
	if a.Matches(c) {
		t.Fatalf("kinds differ, must not match")
	}
}

func TestReadMatchesFieldPathsByIdentity(t *testing.T) {
	f1 := types.NewField(token.NoPos, nil, "Name", types.Typ[types.String], false)
	f2 := types.NewField(token.NoPos, nil, "Name", types.Typ[types.String], false)
	a := Read{Kind: KindPackage, Parts: []Part{{Param: -1, Fields: []*types.Var{f1}}}}
	same := Read{Kind: KindPackage, Parts: []Part{{Param: -1, Fields: []*types.Var{f1}}}}
	other := Read{Kind: KindPackage, Parts: []Part{{Param: -1, Fields: []*types.Var{f2}}}}
	if !a.Matches(same) {
		t.Fatalf("identical field objects should match")
	}
	if a.Matches(other) {
		t.Fatalf("distinct field objects (same name) must not match")
	}
	if a.Resolved() != true {
		t.Fatalf("field-path term is resolved")
	}
}

func TestReadResolvedAndKey(t *testing.T) {
	whole := Read{Kind: KindPackage, Whole: true}
	if whole.Resolved() || whole.Key() != "pkg:*" {
		t.Fatalf("whole read: resolved=%v key=%q", whole.Resolved(), whole.Key())
	}
	opaque := Read{Kind: KindAudit, Opaque: true}
	if opaque.Resolved() || opaque.Key() != "audit:<?>" {
		t.Fatalf("opaque read: resolved=%v key=%q", opaque.Resolved(), opaque.Key())
	}
	param := Read{Kind: KindService, Parts: []Part{{Param: 1}}}
	if param.Resolved() {
		t.Fatalf("parameter-rooted term is not resolved at the top frame")
	}
}
