package directcheck_test

import (
	"testing"

	"veridevops/internal/analysis/analysistest"
	"veridevops/internal/analysis/directcheck"
)

func TestDirectcheck(t *testing.T) {
	analysistest.Run(t, directcheck.Analyzer, "testdata/src/a", "a")
}

func TestExempt(t *testing.T) {
	for path, want := range map[string]bool{
		"veridevops/internal/core":    true,
		"veridevops/internal/engine":  true,
		"veridevops/examples/rqcode":  true,
		"veridevops/internal/fleet":   false,
		"veridevops/cmd/vulnscan":     false,
		"veridevops/internal/monitor": false,
	} {
		if got := directcheck.Exempt(path); got != want {
			t.Errorf("Exempt(%q) = %v, want %v", path, got, want)
		}
	}
}
