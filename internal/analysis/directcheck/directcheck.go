// Package directcheck enforces the repository's single-execution-path
// rule: audits route through the fault-tolerant engine (core.RunEngine /
// engine.Attempt), never by calling a requirement's Check, CheckCtx or
// Enforce method directly. A direct call has no panic recovery, no
// retry/backoff, no attempt timeout and no attempt span — one
// misbehaving STIG check crashes the whole audit and leaves no trace
// behind, which is precisely the failure mode PR 1 was built to remove.
//
// Flagged: a call x.Check() / x.CheckCtx(ctx) / x.Enforce() where x's
// static type implements core.Checkable, core.ContextChecker or
// core.Enforceable respectively, when the call appears in a free
// function (no receiver) of a non-exempt package's non-test file.
//
// Allowed:
//   - methods (functions with a receiver): requirement implementations
//     legitimately compose their own and their components' checks —
//     Enforce re-checking its own requirement, temporal combinators
//     probing their operands, String() rendering a verdict;
//   - test files: tests exercise requirement behaviour directly;
//   - exempt packages: internal/core and internal/engine are the
//     execution path, and examples/ mirrors the paper's API
//     pedagogically (see Exempt);
//   - method values (engine.Attempt(en.c.Check, ...)): passing the
//     method to the engine is the blessed pattern, and is not a call.
//
// Known limits: a free function can launder a call through a local
// helper type's method; the analyzer sees only the syntactic receiver.
package directcheck

import (
	"go/ast"
	"go/types"
	"strings"

	"veridevops/internal/analysis"
)

// Exempt decides whether a package import path is outside the rule:
// the engine-side packages that are the execution path, and the
// pedagogical examples. Kept as a function so the policy is testable.
func Exempt(importPath string) bool {
	if strings.HasSuffix(importPath, "internal/core") || strings.HasSuffix(importPath, "internal/engine") {
		return true
	}
	for _, seg := range strings.Split(importPath, "/") {
		if seg == "examples" {
			return true
		}
	}
	return false
}

// Analyzer is the directcheck pass.
var Analyzer = &analysis.Analyzer{
	Name: "directcheck",
	Doc:  "audits must route through the fault-tolerant engine: no direct Check/CheckCtx/Enforce calls outside internal/core, internal/engine, methods and tests",
	Run:  run,
}

// contract maps the method name of a flagged call to the core interface
// the receiver must implement for the call to count.
var contract = map[string]string{
	"Check":    "Checkable",
	"CheckCtx": "ContextChecker",
	"Enforce":  "Enforceable",
}

func run(pass *analysis.Pass) (any, error) {
	if Exempt(pass.Pkg.Path()) {
		return nil, nil
	}
	ifaces := map[string]*types.Interface{}
	for method, name := range contract {
		if i := analysis.InterfaceType(pass.Pkg, analysis.CorePath, name); i != nil {
			ifaces[method] = i
		}
	}
	if len(ifaces) == 0 {
		return nil, nil // the package cannot reference core's contracts
	}
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv != nil || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
				if !ok {
					return true
				}
				iface := ifaces[sel.Sel.Name]
				if iface == nil {
					return true
				}
				// Must be a method call on a value (not a package
				//-qualified function or a conversion).
				if pass.TypesInfo.Selections[sel] == nil {
					return true
				}
				recv := pass.TypesInfo.Types[sel.X].Type
				if recv == nil || !analysis.ImplementsIface(recv, iface) {
					return true
				}
				pass.Reportf(call.Pos(),
					"direct %s() call on %s bypasses the fault-tolerant engine: route it through core.RunEngine or engine.Attempt (panic recovery, retries, attempt spans)",
					sel.Sel.Name, types.TypeString(recv, types.RelativeTo(pass.Pkg)))
				return true
			})
		}
	}
	return nil, nil
}
