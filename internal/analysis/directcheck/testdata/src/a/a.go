// Fixture for the directcheck analyzer: direct contract calls in free
// functions are flagged; methods, engine handoffs and non-contract
// receivers are not.
package a

import (
	"context"
	"fmt"

	"veridevops/internal/core"
	"veridevops/internal/engine"
)

type req struct{}

func (req) Check() core.CheckStatus                   { return core.CheckPass }
func (req) CheckCtx(_ context.Context) core.CheckStatus { return core.CheckPass }
func (req) Enforce() core.EnforcementStatus           { return core.EnforceSuccess }

// Flagged: a free function calling the contract methods directly
// bypasses panic recovery, retries and attempt spans.
func direct(ctx context.Context) {
	var r req
	fmt.Println(r.Check())       // want `direct Check\(\) call on req bypasses the fault-tolerant engine`
	fmt.Println(r.CheckCtx(ctx)) // want `direct CheckCtx\(\) call on req bypasses the fault-tolerant engine`
	fmt.Println(r.Enforce())     // want `direct Enforce\(\) call on req bypasses the fault-tolerant engine`
}

// Clean: methods may compose their own and their components' checks.
type verdict struct{ r req }

func (v verdict) Render() string {
	return fmt.Sprint(v.r.Check())
}

// Clean: handing the method value to the engine is the blessed pattern —
// a method value is not a call.
func blessed(r req) core.CheckStatus {
	st, _ := engine.Attempt(r.Check, nil, nil, engine.Policy{})
	return st
}

// Clean: a Check method on a type that does not implement the contract
// (wrong return type) is somebody else's Check.
type unrelated struct{}

func (unrelated) Check() bool { return true }

func otherCheck(u unrelated) bool {
	return u.Check()
}

// Clean: suppression with a recorded reason.
func suppressedDirect(r req) core.CheckStatus {
	//lint:ignore directcheck bootstrap probe runs before the engine exists
	return r.Check()
}
