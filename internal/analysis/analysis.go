// Package analysis is the static-analysis substrate behind cmd/vdolint:
// a deliberately small, dependency-free mirror of the
// golang.org/x/tools/go/analysis API (Analyzer, Pass, Diagnostic) plus a
// package loader built on `go list` and go/types. The VeriDevOps thesis
// is that requirements become code so they can be verified before
// deployment; this package applies the same move to the repository's own
// engineering contracts — "every span ends", "audits route through the
// engine", "cooperative checks consult their context", "instrumented
// tests use the virtual clock", "no channel ops under a mutex",
// "catalogue requirements carry traceable metadata" — so a careless edit
// is caught by `make lint` instead of by -race or production.
//
// Why not golang.org/x/tools itself: this module is intentionally
// dependency-free (stdlib only), so the framework re-implements the thin
// slice of the x/tools API the analyzers need. Analyzer and Pass keep the
// upstream field names and shapes; migrating an analyzer to the real
// multichecker later is a mechanical import swap.
//
// Suppression: a finding can be silenced at the line level with
//
//	//lint:ignore <analyzer>[,<analyzer>...] reason
//
// placed on the flagged line or the line immediately above it, or for a
// whole file with //lint:file-ignore at the top of the file. The reason
// is mandatory; directives without one are reported as findings
// themselves. See directive.go.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check, mirroring
// golang.org/x/tools/go/analysis.Analyzer (minus the dependency and fact
// machinery the vdolint suite does not need).
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in //lint:ignore
	// directives. By convention a single lowercase word.
	Name string
	// Doc is the analyzer's documentation: first line is the summary, the
	// rest describes the contract it enforces and its known limits.
	Doc string
	// Run applies the analyzer to one package and reports findings through
	// pass.Report. The returned value is unused (kept for API parity).
	Run func(pass *Pass) (any, error)
}

// Pass holds the inputs and the report sink for one analyzer run over one
// type-checked package, mirroring golang.org/x/tools/go/analysis.Pass.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Report delivers one finding. The framework attaches the analyzer
	// name and applies //lint:ignore filtering after the run.
	Report func(Diagnostic)
}

// Reportf is the printf convenience over Report.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Severity levels for diagnostics. Errors are contract violations
// (push-mode unsoundness, leaked spans); warnings mark spots the
// analyzer cannot prove either way and a human should eyeball.
const (
	SeverityError   = "error"
	SeverityWarning = "warning"
)

// Diagnostic is one finding at one position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
	// Severity is SeverityError or SeverityWarning; empty means error.
	Severity string
}

// Warnf is the printf convenience for warning-level diagnostics.
func (p *Pass) Warnf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...), Severity: SeverityWarning})
}

// Finding is a resolved diagnostic as emitted by Run: position made
// concrete, analyzer attached. It is the unit cmd/vdolint prints (and
// marshals under -json).
type Finding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
	// Package is the import path of the package the finding was found in.
	Package string `json:"package"`
	// Severity is SeverityError or SeverityWarning (never empty once
	// resolved by Run).
	Severity string `json:"severity"`
}

func (f Finding) String() string {
	if f.Severity == SeverityWarning {
		return fmt.Sprintf("%s:%d:%d: %s: warning: %s", f.File, f.Line, f.Col, f.Analyzer, f.Message)
	}
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.File, f.Line, f.Col, f.Analyzer, f.Message)
}
