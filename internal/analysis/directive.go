package analysis

import (
	"go/token"
	"strings"
)

// Suppression directives, staticcheck-style:
//
//	//lint:ignore spanend,clockuse reason the span escapes to the pool
//	//lint:file-ignore clockuse reason this file measures the real clock
//
// An ignore directive suppresses matching findings on its own line or on
// the line directly below it (so it can trail the flagged statement or
// sit on its own line above). A file-ignore suppresses matching findings
// anywhere in its file. The analyzer list is comma-separated; "*"
// matches every analyzer. The reason is mandatory: a suppression without
// a recorded justification is itself reported as a finding, attributed
// to the pseudo-analyzer "lint".

// directive is one parsed //lint: comment.
type directive struct {
	file      bool
	analyzers []string
	reason    string
	line      int
	pos       token.Pos
}

func (d directive) matches(analyzer string) bool {
	for _, a := range d.analyzers {
		if a == "*" || a == analyzer {
			return true
		}
	}
	return false
}

// fileDirectives is the directive index of one file.
type fileDirectives struct {
	file   []directive
	byLine map[int][]directive
}

// parseDirectives indexes the //lint: directives of every file in the
// unit, keyed by filename. Malformed directives (no analyzer list, or no
// reason) are returned as findings.
func parseDirectives(u *Unit) (map[string]*fileDirectives, []Finding) {
	idx := map[string]*fileDirectives{}
	var bad []Finding
	for _, f := range u.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, isFile := cutDirective(c.Text)
				if text == "" {
					continue
				}
				pos := u.Fset.Position(c.Pos())
				fields := strings.Fields(text)
				d := directive{file: isFile, line: pos.Line, pos: c.Pos()}
				if len(fields) > 0 {
					d.analyzers = strings.Split(fields[0], ",")
					d.reason = strings.Join(fields[1:], " ")
				}
				if len(d.analyzers) == 0 || d.reason == "" {
					bad = append(bad, Finding{
						Analyzer: "lint",
						File:     pos.Filename,
						Line:     pos.Line,
						Col:      pos.Column,
						Message:  "malformed //lint: directive: want \"//lint:ignore <analyzer>[,<analyzer>] reason\"",
						Package:  u.ImportPath,
						Severity: SeverityError,
					})
					continue
				}
				fd := idx[pos.Filename]
				if fd == nil {
					fd = &fileDirectives{byLine: map[int][]directive{}}
					idx[pos.Filename] = fd
				}
				if d.file {
					fd.file = append(fd.file, d)
				} else {
					fd.byLine[d.line] = append(fd.byLine[d.line], d)
				}
			}
		}
	}
	return idx, bad
}

// cutDirective extracts the payload of a //lint:ignore or
// //lint:file-ignore comment; ok text is non-empty (further validation
// happens in parseDirectives via the reason check).
func cutDirective(comment string) (payload string, isFile bool) {
	if rest, ok := strings.CutPrefix(comment, "//lint:ignore "); ok {
		return strings.TrimSpace(rest), false
	}
	if rest, ok := strings.CutPrefix(comment, "//lint:file-ignore "); ok {
		return strings.TrimSpace(rest), true
	}
	return "", false
}

// suppressed reports whether a finding is covered by a directive: a
// file-ignore for its analyzer, or a line ignore on the finding's line
// or the line above it.
func suppressed(idx map[string]*fileDirectives, f Finding) bool {
	fd := idx[f.File]
	if fd == nil {
		return false
	}
	for _, d := range fd.file {
		if d.matches(f.Analyzer) {
			return true
		}
	}
	for _, line := range [2]int{f.Line, f.Line - 1} {
		for _, d := range fd.byLine[line] {
			if d.matches(f.Analyzer) {
				return true
			}
		}
	}
	return false
}
